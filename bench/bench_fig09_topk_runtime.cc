/// Reproduces Figure 9: CDFs of the scan-level top-k pruning ratio and the
/// relative query runtime change, bucketed by the query's runtime with
/// top-k pruning disabled. Paper buckets (1-10s / 10-60s / >60s) scale to
/// laptop-size buckets by table size.
#include "bench_util.h"
#include "exec/engine.h"
#include "expr/builder.h"
#include "workload/table_gen.h"

using namespace snowprune;           // NOLINT
using namespace snowprune::bench;    // NOLINT
using namespace snowprune::workload; // NOLINT

namespace {

struct Bucket {
  const char* label;
  StatsCollector pruning_ratios;  // scan-level
  StatsCollector runtime_change;  // (t_on - t_off) / t_off
};

}  // namespace

int main() {
  Banner("Figure 9",
         "Top-k pruning: scan-level pruning ratio and runtime change",
         "similar CDFs -> pruning correlates with runtime improvement; "
         ">99.9%% improvements exist in every bucket");
  Catalog catalog;
  // Three table sizes act as the three runtime buckets.
  struct Spec {
    const char* name;
    size_t partitions;
    const char* bucket;
  };
  Spec specs[] = {{"small", 60, "bucket-small  (paper 1s<t<=10s)"},
                  {"medium", 180, "bucket-medium (paper 10s<t<=60s)"},
                  {"large", 420, "bucket-large  (paper t>60s)"}};
  for (const auto& spec : specs) {
    TableGenConfig cfg;
    cfg.name = spec.name;
    cfg.num_partitions = spec.partitions;
    cfg.rows_per_partition = 600;
    cfg.layout = Layout::kClustered;
    cfg.overlap = 0.03;
    cfg.seed = 100 + spec.partitions;
    Status s = catalog.RegisterTable(SyntheticTable(cfg));
    if (!s.ok()) std::abort();
  }

  EngineConfig on_cfg;
  EngineConfig off_cfg;
  off_cfg.enable_topk_pruning = false;
  Engine engine_on(&catalog, on_cfg);
  Engine engine_off(&catalog, off_cfg);

  Rng rng(1113);
  std::vector<Bucket> buckets;
  for (const auto& spec : specs) buckets.push_back(Bucket{spec.bucket, {}, {}});

  for (int i = 0; i < 40; ++i) {
    for (size_t b = 0; b < 3; ++b) {
      int64_t k = rng.UniformInt(1, 50);
      ExprPtr pred;
      if (rng.Bernoulli(0.3)) {
        int64_t lo = rng.UniformInt(0, 700000);
        pred = Ge(Col("key"), Lit(Value(lo)));
      }
      auto plan = TopKPlan(ScanPlan(specs[b].name, std::move(pred)), "key",
                           /*descending=*/true, k);
      auto off = engine_off.Execute(plan);
      auto on = engine_on.Execute(plan);
      if (!off.ok() || !on.ok() || !on.value().topk_pruning_attached) continue;
      const auto& s_on = on.value().stats;
      double scan_ratio =
          s_on.total_partitions == 0
              ? 0.0
              : static_cast<double>(s_on.pruned_by_topk) /
                    static_cast<double>(s_on.total_partitions -
                                        s_on.pruned_by_filter);
      buckets[b].pruning_ratios.Add(scan_ratio);
      double t_off = off.value().wall_ms, t_on = on.value().wall_ms;
      if (t_off > 0) buckets[b].runtime_change.Add((t_on - t_off) / t_off);
    }
  }

  for (const auto& bucket : buckets) {
    std::printf("\n--- %s ---\n", bucket.label);
    PrintCdfTable("scan-level top-k pruning ratio", bucket.pruning_ratios, 10);
    PrintCdfTable("relative runtime change (negative = faster)",
                  bucket.runtime_change, 10, 100.0, "%");
    if (!bucket.runtime_change.empty()) {
      std::printf("best improvement: %.1f%%  (paper: better than -99.9%%)\n",
                  100.0 * bucket.runtime_change.Min());
    }
  }
  return 0;
}
