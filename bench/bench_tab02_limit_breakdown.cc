/// Reproduces Table 2: breakdown of LIMIT pruning applicability, split by
/// queries with and without predicates.
#include "bench_util.h"
#include "exec/engine.h"
#include "workload/query_gen.h"
#include "workload/simulator.h"

using namespace snowprune;           // NOLINT
using namespace snowprune::bench;    // NOLINT
using namespace snowprune::workload; // NOLINT

namespace {

void PrintColumn(const char* row, double without_pred, double with_pred,
                 double overall, const char* paper_overall) {
  std::printf("%-28s %9.2f%% %9.2f%% %9.2f%%   %s\n", row, without_pred,
              with_pred, overall, paper_overall);
}

double Pct(int64_t n, int64_t total) {
  return total == 0 ? 0.0 : 100.0 * static_cast<double>(n) /
                                static_cast<double>(total);
}

}  // namespace

int main() {
  Banner("Table 2", "Breakdown of LIMIT pruning applicability",
         "most LIMIT queries already minimal or unsupported; pruning, when "
         "possible, hits 1 partition");
  auto catalog = StandardCatalog();
  Engine engine(catalog.get());
  QueryGenerator::Config gcfg;
  gcfg.seed = 2;
  ProductionModel::Config pm;
  // LIMIT-only population, keeping the paper's with/without predicate ratio.
  pm.class_weights = {0, 0, 14.2, 85.8, 0, 0, 0, 0};
  QueryGenerator gen(catalog.get(),
                     {"probe_sorted", "probe_sorted", "probe_clustered",
                      "probe_clustered", "probe_random"},
                     {"build_small", "build_tiny"}, ProductionModel(pm), gcfg);
  Simulator sim(&gen, &engine);
  SimulationResult r = sim.Run(6000);

  const LimitBreakdown& no_pred = r.limit_without_predicate;
  const LimitBreakdown& with_pred = r.limit_with_predicate;
  LimitBreakdown overall;
  overall.already_minimal = no_pred.already_minimal + with_pred.already_minimal;
  overall.unsupported = no_pred.unsupported + with_pred.unsupported;
  overall.no_fully_matching =
      no_pred.no_fully_matching + with_pred.no_fully_matching;
  overall.pruned_to_one = no_pred.pruned_to_one + with_pred.pruned_to_one;
  overall.pruned_to_many = no_pred.pruned_to_many + with_pred.pruned_to_many;

  std::printf("%-28s %10s %10s %10s   %s\n", "Queries with...", "w/o pred",
              "w/ pred", "overall", "paper overall");
  PrintColumn("already minimal scan set",
              Pct(no_pred.already_minimal, no_pred.total()),
              Pct(with_pred.already_minimal, with_pred.total()),
              Pct(overall.already_minimal, overall.total()), "64.22%");
  PrintColumn("unsupported / no fully-m.",
              Pct(no_pred.unsupported + no_pred.no_fully_matching,
                  no_pred.total()),
              Pct(with_pred.unsupported + with_pred.no_fully_matching,
                  with_pred.total()),
              Pct(overall.unsupported + overall.no_fully_matching,
                  overall.total()),
              "31.28%");
  PrintColumn("pruning to = 1 partition",
              Pct(no_pred.pruned_to_one, no_pred.total()),
              Pct(with_pred.pruned_to_one, with_pred.total()),
              Pct(overall.pruned_to_one, overall.total()), "3.85%");
  PrintColumn("pruning to > 1 partitions",
              Pct(no_pred.pruned_to_many, no_pred.total()),
              Pct(with_pred.pruned_to_many, with_pred.total()),
              Pct(overall.pruned_to_many, overall.total()), "0.23%");
  std::printf(
      "\nnote: our single big tables make 'already minimal' rarer than in\n"
      "production (where most tables are small); the applicability shape —\n"
      "pruning lands on 1 partition when it fires, >1 only for large k —\n"
      "is the reproduced claim.\n");
  return 0;
}
