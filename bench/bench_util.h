#ifndef SNOWPRUNE_BENCH_BENCH_UTIL_H_
#define SNOWPRUNE_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "common/stats_collector.h"
#include "storage/catalog.h"
#include "workload/table_gen.h"

namespace snowprune {
namespace bench {

/// Shared command-line options for the population benches.
///   --smoke        tiny tables / few queries: a compile-and-run check for
///                  the perf-only paths (CI runs every bench this way under
///                  -Werror and TSan, where full-size runs would time out).
///   --json[=PATH]  additionally emit machine-readable results (query class,
///                  ns/row, pruning ratios) to PATH, or to stdout when no
///                  path is given — the BENCH_*.json perf trajectory files
///                  are produced from this.
struct BenchOptions {
  bool smoke = false;
  bool json = false;
  std::string json_path;  ///< Empty: print the JSON to stdout.
  /// --trace-sample=N: attach a per-query Trace to every N-th execution
  /// (1 = all, 0 = tracing off). The overhead-regression CI step compares a
  /// --trace-sample=1 run against a plain run of the same bench.
  size_t trace_sample = 0;
  /// --specialize=on|off|both: the expression-specialization tier for the
  /// per-class latency sweep. "both" (default) runs the sweep twice —
  /// interpreted into "classes", eagerly specialized into
  /// "classes_specialized" — so one JSON carries the comparison the
  /// specialization CI gate checks. "on"/"off" run one sweep into
  /// "classes".
  std::string specialize = "both";
};

inline BenchOptions ParseOptions(int argc, char** argv) {
  BenchOptions opts;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      opts.smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      opts.json = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      opts.json = true;
      opts.json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--trace-sample=", 15) == 0) {
      opts.trace_sample = static_cast<size_t>(std::strtoul(argv[i] + 15,
                                                           nullptr, 10));
    } else if (std::strncmp(argv[i], "--specialize=", 13) == 0) {
      opts.specialize = argv[i] + 13;
      if (opts.specialize != "on" && opts.specialize != "off" &&
          opts.specialize != "both") {
        std::fprintf(stderr, "bad --specialize=%s (expected on|off|both)\n",
                     opts.specialize.c_str());
        opts.specialize = "both";
      }
    } else {
      std::fprintf(
          stderr,
          "unknown option %s (expected --smoke, --json[=PATH], "
          "--trace-sample=N, --specialize=on|off|both)\n",
          argv[i]);
    }
  }
  return opts;
}

/// Minimal JSON emitter for the --json bench mode. Call Key() before each
/// value or container; strings are emitted verbatim (keys and values used
/// here are identifier-like, no escaping needed).
class JsonWriter {
 public:
  JsonWriter() { out_ = "{"; }

  JsonWriter& Key(const std::string& k) {
    MaybeComma();
    out_ += '"';
    out_ += k;
    out_ += "\":";
    return *this;
  }
  JsonWriter& String(const std::string& v) {
    MaybeComma();
    out_ += '"';
    out_ += v;
    out_ += '"';
    return *this;
  }
  JsonWriter& Int(int64_t v) {
    MaybeComma();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& Number(double v) {
    MaybeComma();
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.4f", v);
    out_ += buf;
    return *this;
  }
  /// Splices a pre-rendered JSON value (e.g. MetricsRegistry::SnapshotJson
  /// or Trace::ToJson output) in verbatim as the next value.
  JsonWriter& Raw(const std::string& json) {
    MaybeComma();
    out_ += json;
    return *this;
  }
  JsonWriter& BeginObject() {
    MaybeComma();
    out_ += '{';
    return *this;
  }
  JsonWriter& EndObject() {
    out_ += '}';
    return *this;
  }
  JsonWriter& BeginArray() {
    MaybeComma();
    out_ += '[';
    return *this;
  }
  JsonWriter& EndArray() {
    out_ += ']';
    return *this;
  }

  /// Closes the root object and writes it per the options (file or stdout).
  void Write(const BenchOptions& opts) {
    out_ += "}\n";
    if (!opts.json_path.empty()) {
      if (std::FILE* f = std::fopen(opts.json_path.c_str(), "w")) {
        std::fputs(out_.c_str(), f);
        std::fclose(f);
        std::printf("json results written to %s\n", opts.json_path.c_str());
        return;
      }
      std::fprintf(stderr, "cannot write %s; dumping to stdout\n",
                   opts.json_path.c_str());
    }
    std::printf("%s", out_.c_str());
  }

 private:
  void MaybeComma() {
    if (out_.empty()) return;
    const char last = out_.back();
    if (last != '{' && last != '[' && last != ':') out_ += ',';
  }

  std::string out_;
};

/// Prints the standard figure/table banner.
inline void Banner(const char* artifact, const char* title,
                   const char* paper_reference) {
  std::printf("==============================================================\n");
  std::printf("%s: %s\n", artifact, title);
  std::printf("paper reference: %s\n", paper_reference);
  std::printf("==============================================================\n");
}

/// Renders a Figure 1 / Figure 8 style box-plot row.
inline void PrintBoxRow(const char* label, const StatsCollector& c) {
  if (c.empty()) {
    std::printf("%-16s (no eligible queries)\n", label);
    return;
  }
  std::printf("%-16s %s  mean=%5.1f%% median=%5.1f%% n=%zu\n", label,
              c.BoxPlotRow(0.0, 1.0, 51).c_str(), 100.0 * c.Mean(),
              100.0 * c.Median(), c.count());
}

/// Prints a CDF as "percentile-of-queries -> value" rows (the paper's
/// Figure 4/9 axes).
inline void PrintCdfTable(const char* label, const StatsCollector& c,
                          int points = 20, double scale = 100.0,
                          const char* unit = "%") {
  std::printf("# %s (%zu samples)\n", label, c.count());
  std::printf("%22s %14s\n", "percentile of queries", "value");
  for (int i = 0; i <= points; ++i) {
    double p = 100.0 * i / points;
    std::printf("%21.1f%% %13.2f%s\n", p, c.empty() ? 0.0 : scale * c.Percentile(p),
                unit);
  }
}

/// The standard mixed-layout catalog used by the population benches:
/// three large probe tables spanning the layout spectrum plus two small
/// build tables. `scale` multiplies partition counts.
inline std::unique_ptr<Catalog> StandardCatalog(double scale = 1.0,
                                                uint64_t seed = 42) {
  auto catalog = std::make_unique<Catalog>();
  auto add = [&](const char* name, workload::Layout layout, size_t partitions,
                 size_t rows, double null_fraction = 0.0) {
    workload::TableGenConfig cfg;
    cfg.name = name;
    cfg.layout = layout;
    cfg.num_partitions = static_cast<size_t>(partitions * scale);
    cfg.rows_per_partition = rows;
    cfg.null_fraction = null_fraction;
    cfg.seed = seed++;
    Status s = catalog->RegisterTable(workload::SyntheticTable(cfg));
    if (!s.ok()) std::abort();
  };
  add("probe_sorted", workload::Layout::kSorted, 200, 500);
  add("probe_clustered", workload::Layout::kClustered, 200, 500, 0.02);
  add("probe_random", workload::Layout::kRandom, 80, 500);
  add("build_small", workload::Layout::kRandom, 2, 1500);
  add("build_tiny", workload::Layout::kClustered, 1, 800);
  return catalog;
}

}  // namespace bench
}  // namespace snowprune

#endif  // SNOWPRUNE_BENCH_BENCH_UTIL_H_
