/// Reproduces the headline numbers: 99.4% of micro-partitions pruned across
/// the platform (§1), and the per-technique averages for applicable queries
/// (§9: filter 99%, LIMIT 70%, top-k 77%, join 79%).
#include "bench_util.h"
#include "exec/engine.h"
#include "workload/query_gen.h"
#include "workload/simulator.h"

using namespace snowprune;           // NOLINT
using namespace snowprune::bench;    // NOLINT
using namespace snowprune::workload; // NOLINT

int main() {
  Banner("Headline", "Global partition-weighted pruning ratio",
         "99.4%% of micro-partitions pruned across all customer workloads");
  auto catalog = StandardCatalog();
  Engine engine(catalog.get());
  QueryGenerator::Config gcfg;
  gcfg.seed = 994;
  QueryGenerator gen(catalog.get(),
                     {"probe_sorted", "probe_sorted", "probe_clustered",
                      "probe_clustered", "probe_random"},
                     {"build_small", "build_tiny"}, ProductionModel(), gcfg);
  Simulator sim(&gen, &engine);
  SimulationResult r = sim.Run(6000);

  std::printf("partitions considered: %lld\n",
              static_cast<long long>(r.total_partitions));
  std::printf("partitions pruned:     %lld\n",
              static_cast<long long>(r.total_pruned));
  std::printf("global pruning ratio:  %5.1f%%   (paper: 99.4%%)\n\n",
              100.0 * r.OverallPruningRatio());
  std::printf("%-34s %9s   %s\n", "technique (applicable queries)", "mean",
              "paper");
  std::printf("%-34s %8.1f%%   %s\n", "filter pruning (partition-weighted)",
              100.0 * r.FilterPartitionWeightedRatio(), "99%");
  std::printf("%-34s %8.1f%%   %s\n", "filter pruning (query mean, applied)",
              100.0 * r.filter_ratios_applied.Mean(), "-");
  std::printf("%-34s %8.1f%%   %s\n", "LIMIT pruning (applied)",
              100.0 * r.limit_ratios_applied.Mean(), "70%");
  std::printf("%-34s %8.1f%%   %s\n", "top-k pruning",
              100.0 * r.topk_ratios.Mean(), "77%");
  std::printf("%-34s %8.1f%%   %s\n", "join pruning",
              100.0 * r.join_ratios.Mean(), "79%");
  std::printf(
      "\nnote: the absolute global ratio tracks the share of full-scan\n"
      "(ETL-style) queries in the mix; the reproduced claim is that the\n"
      "population's high predicate selectivity plus clustered layouts push\n"
      "the partition-weighted ratio far above what TPC-H suggests\n"
      "(compare bench_fig13_tpch).\n");

  // --- Partition-parallel execution sweep ---------------------------------
  // The headline scan workload: what pruning cannot skip, the execution
  // layer must chew through. An unprunable scan+aggregate over the random-
  // layout probe table (every zone map spans the domain) is pure per-
  // partition work, fanned out by ExecConfig::num_threads.
  std::printf("\n%-14s %12s %12s   %s\n", "num_threads", "wall ms",
              "speedup", "headline scan workload (aggregate over"
              " probe_random)");
  auto scan_workload = AggregatePlan(
      ScanPlan("probe_random"), {"cat"},
      {AggPlanSpec{AggFunc::kCount, "", "n"},
       AggPlanSpec{AggFunc::kSum, "key", "key_sum"},
       AggPlanSpec{AggFunc::kMin, "ts", "ts_min"},
       AggPlanSpec{AggFunc::kMax, "key", "key_max"}});
  struct SweepPoint {
    const char* label;
    int threads;
    bool force_parallel;
  };
  const SweepPoint sweep[] = {
      {"1 (serial)", 1, false},
      {"1 (parallel)", 1, true},  // full morsel machinery, one worker:
                                  // pure parallel-path overhead
      {"2", 2, false},
      {"4", 4, false},
      {"8", 8, false},
  };
  double serial_ms = 0.0;
  for (const SweepPoint& point : sweep) {
    EngineConfig config;
    config.exec.num_threads = point.threads;
    config.exec.force_parallel = point.force_parallel;
    Engine sweep_engine(catalog.get(), config);
    double best_ms = 0.0;
    for (int rep = 0; rep < 3; ++rep) {  // best-of-3 to damp scheduler noise
      auto result = sweep_engine.Execute(scan_workload);
      if (!result.ok()) {
        std::printf("sweep failed: %s\n", result.status().ToString().c_str());
        return 1;
      }
      double ms = result.value().wall_ms;
      if (rep == 0 || ms < best_ms) best_ms = ms;
    }
    if (serial_ms == 0.0) serial_ms = best_ms;
    std::printf("%-14s %12.1f %11.2fx\n", point.label, best_ms,
                serial_ms / best_ms);
  }
  std::printf(
      "(speedup tracks the machine's core count; \"1 (serial)\" is the\n"
      "bit-for-bit poolless path, \"1 (parallel)\" runs the morsel\n"
      "scheduler on a one-worker pool to expose pure scheduling overhead)\n");
  return 0;
}
