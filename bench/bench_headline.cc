/// Reproduces the headline numbers: 99.4% of micro-partitions pruned across
/// the platform (§1), and the per-technique averages for applicable queries
/// (§9: filter 99%, LIMIT 70%, top-k 77%, join 79%).
///
/// Also the engine's perf dashboard: a per-query-class ns/row section (the
/// residual execution cost pruning cannot remove) and the parallel sweep.
/// `--json[=PATH]` emits the measurements machine-readably so the perf
/// trajectory is tracked across PRs (BENCH_*.json); `--smoke` shrinks every
/// size for CI.
#include <memory>
#include <vector>

#include "bench_util.h"
#include "common/trace.h"
#include "exec/engine.h"
#include "exec/parallel/pipeline.h"
#include "expr/builder.h"
#include "workload/query_gen.h"
#include "workload/simulator.h"

using namespace snowprune;           // NOLINT
using namespace snowprune::bench;    // NOLINT
using namespace snowprune::workload; // NOLINT

namespace {

/// One measured query class: a fixed representative plan, timed serially
/// (best-of-N), normalized by the rows the execution layer actually chewed
/// through (scanned rows — what is left after pruning).
struct ClassPoint {
  const char* cls;
  double wall_ms = 0.0;
  int64_t scanned_rows = 0;
  int64_t result_rows = 0;

  double NsPerRow() const {
    return scanned_rows > 0 ? wall_ms * 1e6 / static_cast<double>(scanned_rows)
                            : 0.0;
  }
};

ClassPoint RunClass(Catalog* catalog, const char* cls, const PlanPtr& plan,
                    int reps, size_t trace_sample, bool specialize) {
  EngineConfig config;
  config.exec.num_threads = 1;  // single-thread ns/row: the kernel cost
  // Eager compilation (or the tier fully off): the sweep measures the
  // specialized steady state, not the promotion ramp.
  config.exec.specialize = specialize;
  config.exec.specialize_after = 0;
  Engine engine(catalog, config);
  ClassPoint point;
  point.cls = cls;
  for (int rep = 0; rep < reps; ++rep) {
    // --trace-sample=N: rep i runs traced when i % N == 0 (fresh Trace per
    // rep, discarded after — the point is measuring the traced-path cost,
    // not keeping the spans).
    std::unique_ptr<Trace> trace;
    ExecuteOptions eopts;
    if (trace_sample > 0 && rep % static_cast<int>(trace_sample) == 0) {
      trace = std::make_unique<Trace>();
      eopts.trace = trace.get();
    }
    auto result = engine.Execute(plan, eopts);
    if (!result.ok()) {
      std::printf("class %s failed: %s\n", cls,
                  result.status().ToString().c_str());
      std::abort();
    }
    if (rep == 0 || result.value().wall_ms < point.wall_ms) {
      point.wall_ms = result.value().wall_ms;
    }
    point.scanned_rows = result.value().stats.scanned_rows;
    point.result_rows = static_cast<int64_t>(result.value().rows.size());
  }
  return point;
}

/// The operator-pipeline latency sweep: one plan per query class, all over
/// the random-layout probe table (worst case for pruning, so the number is
/// pure execution cost). Join/top-k/sort are the classes the fully columnar
/// pipeline (PR 4) targets; scan+agg is the PR 2 reference point.
std::vector<ClassPoint> ClassLatencySweep(Catalog* catalog, int reps,
                                          size_t trace_sample,
                                          bool specialize) {
  std::vector<ClassPoint> points;
  auto filter = Between(Col("key"), Value(int64_t{100000}),
                        Value(int64_t{900000}));
  points.push_back(RunClass(catalog, "scan_filter",
                            ScanPlan("probe_random", filter), reps,
                            trace_sample, specialize));
  points.push_back(RunClass(
      catalog, "scan_agg",
      AggregatePlan(ScanPlan("probe_random"), {"cat"},
                    {AggPlanSpec{AggFunc::kCount, "", "n"},
                     AggPlanSpec{AggFunc::kSum, "key", "key_sum"},
                     AggPlanSpec{AggFunc::kMin, "ts", "ts_min"},
                     AggPlanSpec{AggFunc::kMax, "key", "key_max"}}),
      reps, trace_sample, specialize));
  points.push_back(RunClass(
      catalog, "arith_filter",
      ScanPlan("probe_random",
               Gt(Add(Mul(Col("key"), Lit(int64_t{3})), Col("ts")),
                  Lit(int64_t{2000000}))),
      reps, trace_sample, specialize));
  points.push_back(RunClass(
      catalog, "join",
      JoinPlan(ScanPlan("probe_random"), ScanPlan("build_small"), "key",
               "key"),
      reps, trace_sample, specialize));
  points.push_back(RunClass(
      catalog, "topk",
      TopKPlan(ScanPlan("probe_random", filter), "key", /*descending=*/true,
               100),
      reps, trace_sample, specialize));
  points.push_back(RunClass(catalog, "sort",
                            SortPlan(ScanPlan("probe_random", filter), "key",
                                     /*descending=*/false),
                            reps, trace_sample, specialize));
  return points;
}

/// One point of the pipeline-parallel operator sweep: a join/top-k/sort
/// class at a given thread count.
struct ParallelClassPoint {
  const char* cls;
  int num_threads;
  double wall_ms = 0.0;
  int64_t scanned_rows = 0;

  double NsPerRow() const {
    return scanned_rows > 0 ? wall_ms * 1e6 / static_cast<double>(scanned_rows)
                            : 0.0;
  }
};

/// The PR 5 sweep: the three operators whose per-row work now runs as
/// pipeline stages on the scan workers (join build, top-k candidate
/// filter, sorted runs), measured at 1/2/4 threads. Results and
/// PruningStats are byte-identical across the sweep (asserted in the fuzz
/// oracle); this reports the wall-clock side.
std::vector<ParallelClassPoint> ParallelClassSweep(Catalog* catalog,
                                                   int reps,
                                                   size_t trace_sample) {
  auto filter = Between(Col("key"), Value(int64_t{100000}),
                        Value(int64_t{900000}));
  struct NamedPlan {
    const char* cls;
    PlanPtr plan;
  };
  const NamedPlan plans[] = {
      {"join", JoinPlan(ScanPlan("probe_random"), ScanPlan("build_small"),
                        "key", "key")},
      {"topk", TopKPlan(ScanPlan("probe_random", filter), "key",
                        /*descending=*/true, 100)},
      {"sort", SortPlan(ScanPlan("probe_random", filter), "key",
                        /*descending=*/false)},
  };
  std::vector<ParallelClassPoint> points;
  for (const NamedPlan& np : plans) {
    for (int threads : {1, 2, 4}) {
      EngineConfig config;
      config.exec.num_threads = threads;
      Engine engine(catalog, config);
      ParallelClassPoint point;
      point.cls = np.cls;
      point.num_threads = threads;
      for (int rep = 0; rep < reps; ++rep) {
        std::unique_ptr<Trace> trace;
        ExecuteOptions eopts;
        if (trace_sample > 0 && rep % static_cast<int>(trace_sample) == 0) {
          trace = std::make_unique<Trace>();
          eopts.trace = trace.get();
        }
        auto result = engine.Execute(np.plan, eopts);
        if (!result.ok()) {
          std::printf("parallel class %s failed: %s\n", np.cls,
                      result.status().ToString().c_str());
          std::abort();
        }
        if (rep == 0 || result.value().wall_ms < point.wall_ms) {
          point.wall_ms = result.value().wall_ms;
        }
        point.scanned_rows = result.value().stats.scanned_rows;
      }
      points.push_back(point);
    }
  }
  return points;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = ParseOptions(argc, argv);
  Banner("Headline", "Global partition-weighted pruning ratio",
         "99.4%% of micro-partitions pruned across all customer workloads");
  auto catalog = StandardCatalog(opts.smoke ? 0.05 : 1.0);
  Engine engine(catalog.get());
  QueryGenerator::Config gcfg;
  gcfg.seed = 994;
  QueryGenerator gen(catalog.get(),
                     {"probe_sorted", "probe_sorted", "probe_clustered",
                      "probe_clustered", "probe_random"},
                     {"build_small", "build_tiny"}, ProductionModel(), gcfg);
  Simulator sim(&gen, &engine);
  SimulationResult r = sim.Run(opts.smoke ? 150 : 6000);

  std::printf("partitions considered: %lld\n",
              static_cast<long long>(r.total_partitions));
  std::printf("partitions pruned:     %lld\n",
              static_cast<long long>(r.total_pruned));
  std::printf("global pruning ratio:  %5.1f%%   (paper: 99.4%%)\n\n",
              100.0 * r.OverallPruningRatio());
  std::printf("%-34s %9s   %s\n", "technique (applicable queries)", "mean",
              "paper");
  std::printf("%-34s %8.1f%%   %s\n", "filter pruning (partition-weighted)",
              100.0 * r.FilterPartitionWeightedRatio(), "99%");
  std::printf("%-34s %8.1f%%   %s\n", "filter pruning (query mean, applied)",
              100.0 * r.filter_ratios_applied.Mean(), "-");
  std::printf("%-34s %8.1f%%   %s\n", "LIMIT pruning (applied)",
              100.0 * r.limit_ratios_applied.Mean(), "70%");
  std::printf("%-34s %8.1f%%   %s\n", "top-k pruning",
              100.0 * r.topk_ratios.Mean(), "77%");
  std::printf("%-34s %8.1f%%   %s\n", "join pruning",
              100.0 * r.join_ratios.Mean(), "79%");
  std::printf(
      "\nnote: the absolute global ratio tracks the share of full-scan\n"
      "(ETL-style) queries in the mix; the reproduced claim is that the\n"
      "population's high predicate selectivity plus clustered layouts push\n"
      "the partition-weighted ratio far above what TPC-H suggests\n"
      "(compare bench_fig13_tpch).\n");

  // --- Per-query-class execution cost ------------------------------------
  // Smoke still takes best-of-5: the class queries are microsecond-scale at
  // smoke size, and the CI trace-overhead gate compares two smoke runs, so
  // single-shot timings would be all scheduler noise.
  const int reps = 5;
  // --specialize: "both" (default) measures the sweep interpreted AND
  // eagerly specialized, so one run carries the comparison the CI
  // specialization gate checks; "on"/"off" measure a single variant.
  const bool sweep_interpreted = opts.specialize != "on";
  const bool sweep_specialized = opts.specialize != "off";
  std::vector<ClassPoint> classes;
  std::vector<ClassPoint> classes_specialized;
  if (sweep_interpreted) {
    std::printf("\n%-14s %12s %12s %14s   (serial, best of %d, "
                "specialize=off)\n",
                "class", "wall ms", "ns/row", "scanned rows", reps);
    classes = ClassLatencySweep(catalog.get(), reps, opts.trace_sample,
                                /*specialize=*/false);
    for (const ClassPoint& p : classes) {
      std::printf("%-14s %12.2f %12.1f %14lld\n", p.cls, p.wall_ms,
                  p.NsPerRow(), static_cast<long long>(p.scanned_rows));
    }
  }
  if (sweep_specialized) {
    std::printf("\n%-14s %12s %12s %14s   (serial, best of %d, "
                "specialize=on, eager)\n",
                "class", "wall ms", "ns/row", "scanned rows", reps);
    classes_specialized = ClassLatencySweep(catalog.get(), reps,
                                            opts.trace_sample,
                                            /*specialize=*/true);
    for (const ClassPoint& p : classes_specialized) {
      std::printf("%-14s %12.2f %12.1f %14lld\n", p.cls, p.wall_ms,
                  p.NsPerRow(), static_cast<long long>(p.scanned_rows));
    }
  }
  // Single-variant runs report their rows as "classes" (the trajectory and
  // trace-overhead tooling read that key regardless of mode).
  if (!sweep_interpreted) classes = std::move(classes_specialized);

  // --- Pipeline-parallel operator sweep -----------------------------------
  // Join build / top-k filter / sort runs as worker-side pipeline stages;
  // "1" is the serial (poolless) baseline. Every row of the sweep returns
  // byte-identical rows and stats — only the wall clock may move.
  const int64_t stage_tasks_before = PipelineCounters::stage_tasks();
  std::printf("\n%-10s %12s %12s %12s   (pipeline-parallel operators, "
              "best of %d)\n",
              "class", "threads", "wall ms", "ns/row", reps);
  std::vector<ParallelClassPoint> parallel_classes =
      ParallelClassSweep(catalog.get(), reps, opts.trace_sample);
  for (const ParallelClassPoint& p : parallel_classes) {
    std::printf("%-10s %12d %12.2f %12.1f\n", p.cls, p.num_threads, p.wall_ms,
                p.NsPerRow());
  }
  // CI tripwire: the threaded runs above must have executed worker-side
  // pipeline stages. A silently-serial regression (stages not installed,
  // operators falling back to consumer-thread loops) fails the smoke run.
  if (PipelineCounters::stage_tasks() == stage_tasks_before) {
    std::printf("FATAL: no pipeline stage tasks ran during the parallel "
                "operator sweep — the pipeline-parallel path regressed to "
                "serial\n");
    return 1;
  }

  // --- Partition-parallel execution sweep ---------------------------------
  // The headline scan workload: what pruning cannot skip, the execution
  // layer must chew through. An unprunable scan+aggregate over the random-
  // layout probe table (every zone map spans the domain) is pure per-
  // partition work, fanned out by ExecConfig::num_threads.
  std::printf("\n%-14s %12s %12s   %s\n", "num_threads", "wall ms",
              "speedup", "headline scan workload (aggregate over"
              " probe_random)");
  auto scan_workload = AggregatePlan(
      ScanPlan("probe_random"), {"cat"},
      {AggPlanSpec{AggFunc::kCount, "", "n"},
       AggPlanSpec{AggFunc::kSum, "key", "key_sum"},
       AggPlanSpec{AggFunc::kMin, "ts", "ts_min"},
       AggPlanSpec{AggFunc::kMax, "key", "key_max"}});
  struct SweepPoint {
    const char* label;
    int threads;
    bool force_parallel;
  };
  const SweepPoint sweep[] = {
      {"1 (serial)", 1, false},
      {"1 (parallel)", 1, true},  // full morsel machinery, one worker:
                                  // pure parallel-path overhead
      {"2", 2, false},
      {"4", 4, false},
      {"8", 8, false},
  };
  double serial_ms = 0.0;
  for (const SweepPoint& point : sweep) {
    EngineConfig config;
    config.exec.num_threads = point.threads;
    config.exec.force_parallel = point.force_parallel;
    Engine sweep_engine(catalog.get(), config);
    double best_ms = 0.0;
    for (int rep = 0; rep < 3; ++rep) {  // best-of-3 to damp scheduler noise
      auto result = sweep_engine.Execute(scan_workload);
      if (!result.ok()) {
        std::printf("sweep failed: %s\n", result.status().ToString().c_str());
        return 1;
      }
      double ms = result.value().wall_ms;
      if (rep == 0 || ms < best_ms) best_ms = ms;
    }
    if (serial_ms == 0.0) serial_ms = best_ms;
    std::printf("%-14s %12.1f %11.2fx\n", point.label, best_ms,
                serial_ms / best_ms);
  }
  std::printf(
      "(speedup tracks the machine's core count; \"1 (serial)\" is the\n"
      "bit-for-bit poolless path, \"1 (parallel)\" runs the morsel\n"
      "scheduler on a one-worker pool to expose pure scheduling overhead)\n");

  if (opts.json) {
    JsonWriter json;
    json.Key("bench").String("bench_headline");
    json.Key("smoke").Int(opts.smoke ? 1 : 0);
    json.Key("pruning").BeginObject();
    json.Key("global_ratio").Number(r.OverallPruningRatio());
    json.Key("filter_partition_weighted")
        .Number(r.FilterPartitionWeightedRatio());
    json.Key("filter_applied_mean").Number(r.filter_ratios_applied.Mean());
    json.Key("limit_applied_mean").Number(r.limit_ratios_applied.Mean());
    json.Key("topk_mean").Number(r.topk_ratios.Mean());
    json.Key("join_mean").Number(r.join_ratios.Mean());
    json.EndObject();
    json.Key("specialize_mode").String(opts.specialize);
    auto emit_classes = [&json](const char* key,
                                const std::vector<ClassPoint>& points) {
      json.Key(key).BeginArray();
      for (const ClassPoint& p : points) {
        json.BeginObject();
        json.Key("class").String(p.cls);
        json.Key("wall_ms").Number(p.wall_ms);
        json.Key("ns_per_row").Number(p.NsPerRow());
        json.Key("scanned_rows").Int(p.scanned_rows);
        json.Key("result_rows").Int(p.result_rows);
        json.EndObject();
      }
      json.EndArray();
    };
    emit_classes("classes", classes);
    if (sweep_interpreted && sweep_specialized) {
      emit_classes("classes_specialized", classes_specialized);
    }
    json.Key("parallel_classes").BeginArray();
    for (const ParallelClassPoint& p : parallel_classes) {
      json.BeginObject();
      json.Key("class").String(p.cls);
      json.Key("num_threads").Int(p.num_threads);
      json.Key("wall_ms").Number(p.wall_ms);
      json.Key("ns_per_row").Number(p.NsPerRow());
      json.EndObject();
    }
    json.EndArray();
    json.Write(opts);
  }
  return 0;
}
