/// Reproduces the headline numbers: 99.4% of micro-partitions pruned across
/// the platform (§1), and the per-technique averages for applicable queries
/// (§9: filter 99%, LIMIT 70%, top-k 77%, join 79%).
#include "bench_util.h"
#include "exec/engine.h"
#include "workload/query_gen.h"
#include "workload/simulator.h"

using namespace snowprune;           // NOLINT
using namespace snowprune::bench;    // NOLINT
using namespace snowprune::workload; // NOLINT

int main() {
  Banner("Headline", "Global partition-weighted pruning ratio",
         "99.4%% of micro-partitions pruned across all customer workloads");
  auto catalog = StandardCatalog();
  Engine engine(catalog.get());
  QueryGenerator::Config gcfg;
  gcfg.seed = 994;
  QueryGenerator gen(catalog.get(),
                     {"probe_sorted", "probe_sorted", "probe_clustered",
                      "probe_clustered", "probe_random"},
                     {"build_small", "build_tiny"}, ProductionModel(), gcfg);
  Simulator sim(&gen, &engine);
  SimulationResult r = sim.Run(6000);

  std::printf("partitions considered: %lld\n",
              static_cast<long long>(r.total_partitions));
  std::printf("partitions pruned:     %lld\n",
              static_cast<long long>(r.total_pruned));
  std::printf("global pruning ratio:  %5.1f%%   (paper: 99.4%%)\n\n",
              100.0 * r.OverallPruningRatio());
  std::printf("%-34s %9s   %s\n", "technique (applicable queries)", "mean",
              "paper");
  std::printf("%-34s %8.1f%%   %s\n", "filter pruning (partition-weighted)",
              100.0 * r.FilterPartitionWeightedRatio(), "99%");
  std::printf("%-34s %8.1f%%   %s\n", "filter pruning (query mean, applied)",
              100.0 * r.filter_ratios_applied.Mean(), "-");
  std::printf("%-34s %8.1f%%   %s\n", "LIMIT pruning (applied)",
              100.0 * r.limit_ratios_applied.Mean(), "70%");
  std::printf("%-34s %8.1f%%   %s\n", "top-k pruning",
              100.0 * r.topk_ratios.Mean(), "77%");
  std::printf("%-34s %8.1f%%   %s\n", "join pruning",
              100.0 * r.join_ratios.Mean(), "79%");
  std::printf(
      "\nnote: the absolute global ratio tracks the share of full-scan\n"
      "(ETL-style) queries in the mix; the reproduced claim is that the\n"
      "population's high predicate selectivity plus clustered layouts push\n"
      "the partition-weighted ratio far above what TPC-H suggests\n"
      "(compare bench_fig13_tpch).\n");
  return 0;
}
