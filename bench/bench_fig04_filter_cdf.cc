/// Reproduces Figure 4: CDF of the filter pruning ratio over SELECT queries
/// with at least one predicate, relative to all partitions of the query.
#include "bench_util.h"
#include "exec/engine.h"
#include "workload/query_gen.h"
#include "workload/simulator.h"

using namespace snowprune;           // NOLINT
using namespace snowprune::bench;    // NOLINT
using namespace snowprune::workload; // NOLINT

int main() {
  Banner("Figure 4", "Impact of filter pruning",
         "~36%% of queries prune >=90%%; ~27%% prune nothing");
  auto catalog = StandardCatalog();
  Engine engine(catalog.get());
  QueryGenerator::Config gcfg;
  gcfg.seed = 41105;
  ProductionModel::Config pm;
  // Focus the population on predicated SELECTs for a tight CDF.
  pm.class_weights = {0.0, 100.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
  QueryGenerator gen(catalog.get(),
                     {"probe_sorted", "probe_sorted", "probe_clustered",
                      "probe_clustered", "probe_random"},
                     {"build_small"}, ProductionModel(pm), gcfg);
  Simulator sim(&gen, &engine);
  SimulationResult r = sim.Run(5000);

  PrintCdfTable("filter pruning ratio", r.filter_ratios);
  double at_least_90 = 0, none = 0;
  for (double v : r.filter_ratios.samples()) {
    if (v >= 0.9) ++at_least_90;
    if (v <= 0.0) ++none;
  }
  std::printf("\nqueries pruning >= 90%% of partitions: %5.1f%%  (paper: ~36%%)\n",
              100.0 * at_least_90 / r.filter_ratios.count());
  std::printf("queries pruning nothing:               %5.1f%%  (paper: ~27%%)\n",
              100.0 * none / r.filter_ratios.count());
  return 0;
}
