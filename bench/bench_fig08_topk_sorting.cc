/// Reproduces Figure 8: influence of partition processing order (no sorting
/// vs full sort) on the top-k pruning ratio.
#include "bench_util.h"
#include "exec/engine.h"
#include "expr/builder.h"
#include "workload/query_gen.h"

using namespace snowprune;           // NOLINT
using namespace snowprune::bench;    // NOLINT
using namespace snowprune::workload; // NOLINT

namespace {

StatsCollector RunPopulation(Catalog* catalog, OrderStrategy strategy,
                             uint64_t seed) {
  EngineConfig cfg;
  cfg.topk_order_strategy = strategy;
  // Isolate the §5.3 ordering effect from §5.4 initialization.
  cfg.topk_boundary_init = BoundaryInitMode::kNone;
  Engine engine(catalog, cfg);
  Rng rng(seed);
  StatsCollector ratios;
  const char* tables[] = {"probe_sorted", "probe_clustered", "probe_random"};
  for (int i = 0; i < 400; ++i) {
    const char* table = tables[rng.UniformInt(0, 2)];
    int64_t k = rng.UniformInt(1, 100);
    ExprPtr pred;
    if (rng.Bernoulli(0.4)) {
      int64_t lo = rng.UniformInt(0, 900000);
      pred = Between(Col("key"), Value(lo), Value(lo + 200000));
    }
    auto plan = TopKPlan(ScanPlan(table, std::move(pred)), "key",
                         /*descending=*/true, k);
    auto r = engine.Execute(plan);
    if (!r.ok() || !r.value().topk_pruning_attached) continue;
    ratios.Add(r.value().stats.TopKRatio());
  }
  return ratios;
}

}  // namespace

int main() {
  Banner("Figure 8", "Influence of sorting on the top-k pruning ratio",
         "full sort beats no sorting in median and distribution tails");
  auto catalog = StandardCatalog();
  StatsCollector none = RunPopulation(catalog.get(), OrderStrategy::kRandom, 7);
  StatsCollector sorted =
      RunPopulation(catalog.get(), OrderStrategy::kFullSort, 7);

  std::printf("\n%-16s %s\n", "", "0%        25%        50%        75%     100%");
  PrintBoxRow("no sorting", none);
  PrintBoxRow("full sort", sorted);
  std::printf("\nfull-sort mean must dominate: %5.1f%% vs %5.1f%%\n",
              100.0 * sorted.Mean(), 100.0 * none.Mean());
  return 0;
}
