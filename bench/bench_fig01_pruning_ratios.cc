/// Reproduces Figure 1: pruning ratios of the four techniques for eligible
/// queries, as box plots with mean markers ('v'; '#' is the median).
#include "bench_util.h"
#include "exec/engine.h"
#include "workload/query_gen.h"
#include "workload/simulator.h"

using namespace snowprune;           // NOLINT
using namespace snowprune::bench;    // NOLINT
using namespace snowprune::workload; // NOLINT

int main() {
  Banner("Figure 1", "Pruning ratios of different pruning techniques",
         "filter/limit/top-k/join box plots; means marked");
  auto catalog = StandardCatalog();
  Engine engine(catalog.get());
  QueryGenerator::Config gcfg;
  gcfg.seed = 20241105;
  QueryGenerator gen(catalog.get(),
                     {"probe_sorted", "probe_sorted", "probe_clustered",
                      "probe_clustered", "probe_random"},
                     {"build_small", "build_tiny"}, ProductionModel(), gcfg);
  Simulator sim(&gen, &engine);
  SimulationResult r = sim.Run(4000);

  std::printf("\n%-16s %s\n", "", "0%        25%        50%        75%     100%");
  PrintBoxRow("Filter Pruning", r.filter_ratios);
  PrintBoxRow("LIMIT Pruning", r.limit_ratios);
  PrintBoxRow("Top-k Pruning", r.topk_ratios);
  PrintBoxRow("Join Pruning", r.join_ratios);
  std::printf(
      "\npaper shape: all four techniques reach high ratios for eligible\n"
      "queries; LIMIT pruning has a high mean relative to a low median\n"
      "(few queries benefit, but strongly).\n");
  return 0;
}
