/// Ablation for §6.1: build-side summary structures — size vs partition
/// pruning power vs row-level CPU savings.
#include "bench_util.h"
#include "core/join_pruner.h"
#include "common/rng.h"
#include "workload/table_gen.h"

using namespace snowprune;           // NOLINT
using namespace snowprune::bench;    // NOLINT
using namespace snowprune::workload; // NOLINT

int main() {
  Banner("Ablation §6.1", "Join summary structures",
         "accuracy vs memory trade-off; bloom answers rows, not ranges");
  TableGenConfig pcfg;
  pcfg.name = "probe";
  pcfg.num_partitions = 1000;
  pcfg.rows_per_partition = 200;
  pcfg.layout = Layout::kClustered;
  pcfg.seed = 61;
  auto probe = SyntheticTable(pcfg);

  // Build side: three clusters of keys across the domain.
  Rng rng(62);
  SummaryBuilder builder;
  std::vector<Value> build_keys;
  for (int64_t base : {50000, 400000, 900000}) {
    for (int i = 0; i < 300; ++i) {
      build_keys.push_back(Value(base + rng.UniformInt(0, 2000)));
      builder.Add(build_keys.back());
    }
  }

  std::printf("%-14s %-10s %12s %14s %14s\n", "summary", "budget", "bytes",
              "probe-pruned", "row-fp-rate");
  struct Config {
    SummaryKind kind;
    size_t budget;
  };
  Config configs[] = {{SummaryKind::kMinMax, 0},
                      {SummaryKind::kRangeSet, 64},
                      {SummaryKind::kRangeSet, 256},
                      {SummaryKind::kRangeSet, 1024},
                      {SummaryKind::kExactSet, 0},
                      {SummaryKind::kBloom, 256},
                      {SummaryKind::kBloom, 4096}};
  for (const auto& cfg : configs) {
    auto summary = builder.Build(cfg.kind, cfg.budget);
    auto result =
        JoinPruner::PruneProbe(*probe, probe->FullScanSet(), 1, *summary);
    // Row-level false-positive rate over keys absent from the build side.
    int64_t fp = 0, probes = 20000;
    Rng frng(63);
    for (int64_t i = 0; i < probes; ++i) {
      Value v(frng.UniformInt(0, 1000000) * 7 + 3);  // mostly absent
      bool present = false;
      for (const auto& k : build_keys) {
        if (Value::Compare(k, v) == 0) present = true;
      }
      if (!present && summary->MayContain(v)) ++fp;
    }
    std::printf("%-14s %-10zu %12zu %13.1f%% %13.2f%%\n", ToString(cfg.kind),
                cfg.budget, summary->SizeBytes(),
                100.0 * result.PruningRatio(),
                100.0 * static_cast<double>(fp) / static_cast<double>(probes));
  }
  std::printf(
      "\nexpected: minmax prunes only domain edges; rangeset approaches\n"
      "exactset as the budget grows ('small fraction of the build-side\n"
      "size', §6.1); bloom prunes zero partitions but filters rows.\n");
  return 0;
}
