/// Ablation for §8.2: predicate caching for repeated top-k queries vs pure
/// pruning, including DML invalidation behaviour.
#include "bench_util.h"
#include "core/predicate_cache.h"
#include "exec/engine.h"
#include "workload/table_gen.h"

using namespace snowprune;           // NOLINT
using namespace snowprune::bench;    // NOLINT
using namespace snowprune::workload; // NOLINT

int main() {
  Banner("Ablation §8.2", "Predicate caching for top-k vs pruning",
         "cache wins on random layouts where min/max pruning struggles");
  Catalog catalog;
  // Random layout: overlapping zone maps, the pruning worst case the paper
  // says predicate caching could beat.
  TableGenConfig cfg;
  cfg.name = "random";
  cfg.num_partitions = 400;
  cfg.rows_per_partition = 300;
  cfg.layout = Layout::kRandom;
  cfg.seed = 82;
  auto table = SyntheticTable(cfg);
  if (!catalog.RegisterTable(table).ok()) return 1;

  PredicateCache cache;
  EngineConfig ecfg;
  ecfg.predicate_cache = &cache;
  Engine engine(&catalog, ecfg);
  auto plan = TopKPlan(ScanPlan("random"), "key", /*descending=*/true, 10);

  auto run = [&](const char* label) {
    table->ResetMeters();
    auto r = engine.Execute(plan);
    if (!r.ok()) std::abort();
    std::printf("%-34s scanned=%4lld  topk-pruned=%4lld  cache-hit=%s\n",
                label,
                static_cast<long long>(r.value().stats.scanned_partitions),
                static_cast<long long>(r.value().stats.pruned_by_topk),
                r.value().predicate_cache_hit ? "yes" : "no");
    return r.value();
  };

  QueryResult first = run("cold run (pruning only)");
  QueryResult second = run("repeat run (cache hit)");
  if (second.stats.scanned_partitions > first.stats.scanned_partitions) {
    std::printf("ERROR: cache made things worse\n");
    return 1;
  }

  // INSERT: safe — appended partitions are scanned on the next hit.
  {
    ColumnVector id(DataType::kInt64), key(DataType::kInt64),
        val(DataType::kFloat64), cat(DataType::kString), ts(DataType::kInt64);
    id.AppendInt64(1 << 20);
    key.AppendInt64(999999999);  // a new global maximum
    val.AppendFloat64(1.0);
    cat.AppendString("c0000");
    ts.AppendInt64(1 << 20);
    table->AppendPartition(
        MicroPartition(static_cast<PartitionId>(table->num_partitions()),
                       {std::move(id), std::move(key), std::move(val),
                        std::move(cat), std::move(ts)}));
    cache.OnInsert(*table);
  }
  QueryResult after_insert = run("after INSERT (cache still valid)");
  if (after_insert.rows[0][1].int64_value() != 999999999) {
    std::printf("ERROR: inserted maximum missing from cached top-k\n");
    return 1;
  }

  // UPDATE to the ordering column: invalidates.
  cache.OnUpdate(*table, "key");
  QueryResult after_update = run("after UPDATE(key) (invalidated)");
  if (after_update.predicate_cache_hit) {
    std::printf("ERROR: stale cache entry survived an order-column update\n");
    return 1;
  }
  (void)run("repeat after re-caching");

  std::printf("\ncache stats: hits=%lld misses=%lld entries=%zu\n",
              static_cast<long long>(cache.hits()),
              static_cast<long long>(cache.misses()), cache.size());
  return 0;
}
