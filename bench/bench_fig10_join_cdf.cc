/// Reproduces Figure 10: CDF of the join pruning ratio for SELECT queries
/// that successfully used join pruning.
#include "bench_util.h"
#include "exec/engine.h"
#include "workload/query_gen.h"
#include "workload/simulator.h"

using namespace snowprune;           // NOLINT
using namespace snowprune::bench;    // NOLINT
using namespace snowprune::workload; // NOLINT

int main() {
  Banner("Figure 10", "Impact of join pruning",
         "median ~72%%; ~13%% of queries at 100%% (empty build side)");
  auto catalog = StandardCatalog();
  Engine engine(catalog.get());
  QueryGenerator::Config gcfg;
  gcfg.seed = 610;
  ProductionModel::Config pm;
  pm.class_weights = {0, 0, 0, 0, 0, 0, 0, 100.0};  // joins only
  QueryGenerator gen(catalog.get(),
                     {"probe_sorted", "probe_sorted", "probe_clustered",
                      "probe_clustered", "probe_random"},
                     {"build_small", "build_tiny"}, ProductionModel(pm), gcfg);
  Simulator sim(&gen, &engine);
  SimulationResult r = sim.Run(800);

  PrintCdfTable("join pruning ratio (probe scan level)", r.join_ratios);
  double at_full = 0;
  for (double v : r.join_ratios.samples()) {
    if (v >= 0.999) ++at_full;  // probe scan entirely pruned
  }
  std::printf("\nqueries with ~100%% probe pruning: %4.1f%%  (paper: ~13%%)\n",
              100.0 * at_full / r.join_ratios.count());
  std::printf("median: %4.1f%%  (paper: >= 72%%)\n",
              100.0 * r.join_ratios.Median());
  return 0;
}
