/// Ablation for §3.2: adaptive filter reordering and pruning cutoff.
/// Grid {reorder on/off} x {cutoff on/off} over a population with skewed
/// per-leaf cost and selectivity.
#include <chrono>

#include "bench_util.h"
#include "core/filter_pruner.h"
#include "expr/builder.h"
#include "workload/table_gen.h"

using namespace snowprune;           // NOLINT
using namespace snowprune::bench;    // NOLINT
using namespace snowprune::workload; // NOLINT

namespace {

double NowMs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
             .count() /
         1e6;
}

}  // namespace

int main() {
  Banner("Ablation §3.2", "Pruning-tree reordering and cutoff",
         "reordering promotes decisive leaves; cutoff disables useless ones");
  TableGenConfig tcfg;
  tcfg.name = "t";
  tcfg.num_partitions = 4000;
  tcfg.rows_per_partition = 50;
  tcfg.layout = Layout::kClustered;
  tcfg.seed = 32;
  auto table = SyntheticTable(tcfg);

  // Leaf 1: wide, useless range (never prunes, evaluated first by default).
  // Leaf 2: selective range (prunes most partitions).
  // Leaf 3: categorical equality via LIKE (string machinery, medium cost).
  auto predicate = And({Between(Col("key"), Value(int64_t{-1}),
                                Value(int64_t{2000000})),
                        Between(Col("key"), Value(int64_t{10000}),
                                Value(int64_t{30000})),
                        Like(Col("cat"), "c00%")});
  if (!BindExpr(predicate, table->schema()).ok()) return 1;

  std::printf("%-10s %-10s %12s %12s %10s %10s\n", "reorder", "cutoff",
              "prune-ratio", "time-ms", "leaves", "disabled");
  for (bool reorder : {false, true}) {
    for (bool cutoff : {false, true}) {
      FilterPrunerConfig cfg;
      cfg.tree.enable_reorder = reorder;
      cfg.tree.enable_cutoff = cutoff;
      cfg.tree.reorder_interval = 64;
      cfg.tree.cutoff_min_observations = 128;
      // Leaves must beat a cheap modeled scan to stay active.
      cfg.tree.partition_scan_cost_ns = 500.0;
      FilterPruner pruner(predicate, cfg);
      double t0 = NowMs();
      FilterPruneResult result = pruner.Prune(*table, table->FullScanSet());
      double elapsed = NowMs() - t0;
      std::printf("%-10s %-10s %11.1f%% %12.2f %10zu %10zu\n",
                  reorder ? "on" : "off", cutoff ? "on" : "off",
                  100.0 * result.PruningRatio(), elapsed,
                  pruner.mutable_tree()->num_leaves(),
                  pruner.mutable_tree()->disabled_leaves());
    }
  }
  std::printf(
      "\nexpected: identical pruning ratios (cutoff only drops leaves that\n"
      "cannot pay off) with lower evaluation time when adaptivity is on.\n");
  return 0;
}
