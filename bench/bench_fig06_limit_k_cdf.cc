/// Reproduces Figure 6: CDF of k in LIMIT clauses (k > 0), log-decade view.
#include <cmath>

#include "bench_util.h"
#include "common/rng.h"
#include "workload/production_model.h"

using namespace snowprune;           // NOLINT
using namespace snowprune::bench;    // NOLINT
using namespace snowprune::workload; // NOLINT

int main() {
  Banner("Figure 6", "Distribution of k in LIMIT queries",
         "97%% of k <= 10,000; 99.9%% <= 2,000,000; mass at 0 and 1");
  ProductionModel model;
  Rng rng(981);
  StatsCollector k_values;
  int64_t zeros = 0, total = 200000;
  for (int64_t i = 0; i < total; ++i) {
    int64_t k = model.SampleLimitK(&rng);
    if (k == 0) {
      ++zeros;
      continue;
    }
    k_values.Add(static_cast<double>(k));
  }
  std::printf("queries with k = 0 (schema probes): %4.1f%%\n\n",
              100.0 * zeros / total);
  std::printf("%12s %16s\n", "k <=", "CDF (k > 0)");
  for (double decade : {1.0, 10.0, 100.0, 1e3, 1e4, 1e5, 1e6, 2e6, 1e7}) {
    std::printf("%12.0f %15.2f%%\n", decade, 100.0 * k_values.CdfAt(decade));
  }
  std::printf("\npaper reference points: CDF(10^4) ~= 97%%, CDF(2*10^6) ~= 99.9%%\n");
  return 0;
}
