/// Reproduces Figure 11: how many queries are subject to which pruning
/// technique(s), in the order Snowflake applies them
/// (filter -> LIMIT -> join -> top-k).
#include "bench_util.h"
#include "exec/engine.h"
#include "workload/query_gen.h"
#include "workload/simulator.h"

using namespace snowprune;           // NOLINT
using namespace snowprune::bench;    // NOLINT
using namespace snowprune::workload; // NOLINT

int main() {
  Banner("Figure 11", "Pruning-technique flow over the whole workload",
         "filter ~58.7%% of all queries; other techniques rare but potent");
  auto catalog = StandardCatalog(0.5);
  Engine engine(catalog.get());
  QueryGenerator::Config gcfg;
  gcfg.seed = 325;
  QueryGenerator gen(catalog.get(),
                     {"probe_sorted", "probe_sorted", "probe_clustered",
                      "probe_clustered", "probe_random"},
                     {"build_small", "build_tiny"}, ProductionModel(), gcfg);
  Simulator sim(&gen, &engine);
  SimulationResult r = sim.Run(10000);

  auto pct = [&](int64_t n) {
    return 100.0 * static_cast<double>(n) /
           static_cast<double>(r.total_queries);
  };
  std::printf("queries total: %lld (100%%)\n",
              static_cast<long long>(r.total_queries));
  std::printf("%-28s %9s   %s\n", "technique pruned >=1 part.", "measured",
              "paper");
  std::printf("%-28s %8.2f%%   %s\n", "Filter", pct(r.flow_filter), "58.7%");
  std::printf("%-28s %8.2f%%   %s\n", "LIMIT", pct(r.flow_limit), "0.2%");
  std::printf("%-28s %8.2f%%   %s\n", "Join", pct(r.flow_join), "~0.1%");
  std::printf("%-28s %8.2f%%   %s\n", "Top-k", pct(r.flow_topk), "~0.1%");
  std::printf("\ntechnique combinations (share of all queries):\n");
  for (const auto& [combo, count] : r.flow_combinations) {
    std::printf("  %-26s %8.2f%%\n", combo.c_str(), pct(count));
  }
  std::printf(
      "\npaper shape: most pruning-eligible queries use filter pruning "
      "alone;\ncombinations are rare but strictly ordered "
      "filter->limit->join->top-k.\n");
  return 0;
}
