/// Headline service bench: the concurrent query service under a
/// multi-stream closed-loop production workload. Sweeps the number of
/// client streams over one shared worker pool and reports QPS and latency
/// percentiles (p50/p95/p99), the admission picture (peak in-flight /
/// queue depth), and — with identical repetitive streams — predicate-cache
/// hit amplification under concurrency (§7/§8.2: repetitive concurrent
/// traffic is what makes the cache worth building).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "core/predicate_cache.h"
#include "exec/profile.h"
#include "expr/builder.h"
#include "service/query_service.h"
#include "workload/production_model.h"
#include "workload/simulator.h"

using namespace snowprune;            // NOLINT
using namespace snowprune::bench;     // NOLINT
using namespace snowprune::workload;  // NOLINT

namespace {

constexpr size_t kPoolWidth = 4;

/// Set from --smoke (tiny CI sizes) in main().
size_t g_queries_per_stream = 150;
std::vector<size_t> g_stream_counts = {1, 2, 4, 8};
/// Set from --trace-sample=N: forwarded to QueryServiceConfig::trace_every
/// so every N-th query through the service runs with a Trace attached.
size_t g_trace_sample = 0;

void PrintHeader() {
  std::printf("%8s %9s %9s %9s %9s %9s %7s %7s %8s\n", "streams", "qps",
              "p50 ms", "p95 ms", "p99 ms", "queue p95", "peak-q",
              "peak-x", "backlog");
}

void PrintRow(size_t streams, const StreamDriverResult& r,
              const service::ServiceStats& stats, size_t max_backlog) {
  std::printf("%8zu %9.0f %9.3f %9.3f %9.3f %9.3f %7lld %7lld %8zu\n",
              streams, r.Qps(), r.latency_ms.Percentile(50.0),
              r.latency_ms.Percentile(95.0), r.latency_ms.Percentile(99.0),
              r.queue_ms.Percentile(95.0),
              static_cast<long long>(stats.peak_queue_depth),
              static_cast<long long>(stats.peak_in_flight), max_backlog);
}

/// Samples the shared pool's pending-morsel backlog while `fn` runs; the
/// observed maximum is how deep the shared queue ever got — bounded by the
/// per-query morsel windows times the admitted query count.
template <typename Fn>
size_t MaxPoolBacklogWhile(service::QueryService* service, Fn&& fn) {
  std::atomic<bool> stop{false};
  size_t max_backlog = 0;
  std::thread sampler([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      max_backlog = std::max(max_backlog, service->scan_pool()->queue_depth());
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  fn();
  stop.store(true);
  sampler.join();
  return max_backlog;
}

/// Throughput sweep: independent streams (distinct seeds), no cache — the
/// pure admission/shared-pool picture.
void ThroughputSweep(Catalog* catalog, JsonWriter* json) {
  std::printf("\n--- closed-loop stream sweep (shared pool width %zu, "
              "%zu queries/stream) ---\n",
              kPoolWidth, g_queries_per_stream);
  PrintHeader();
  MultiStreamDriver driver(catalog, {"probe_sorted", "probe_clustered",
                                     "probe_random"},
                           {"build_small", "build_tiny"}, ProductionModel());
  if (json != nullptr) json->Key("stream_sweep").BeginArray();
  for (size_t streams : g_stream_counts) {
    service::QueryServiceConfig scfg;
    scfg.num_threads = kPoolWidth;
    scfg.max_in_flight = streams;
    scfg.trace_every = g_trace_sample;
    service::QueryService service(catalog, scfg);

    StreamDriverConfig dcfg;
    dcfg.num_streams = streams;
    dcfg.queries_per_stream = g_queries_per_stream;
    dcfg.gen.seed = 4242;
    dcfg.print_service_stats = true;
    StreamDriverResult result;
    const size_t max_backlog = MaxPoolBacklogWhile(
        &service, [&] { result = driver.Run(&service, dcfg); });
    PrintRow(streams, result, service.stats(), max_backlog);
    if (result.queries_failed > 0) {
      std::printf("         (%lld failed)\n",
                  static_cast<long long>(result.queries_failed));
    }
    if (json != nullptr) {
      json->BeginObject();
      json->Key("streams").Int(static_cast<int64_t>(streams));
      json->Key("qps").Number(result.Qps());
      json->Key("p50_ms").Number(result.latency_ms.Percentile(50.0));
      json->Key("p95_ms").Number(result.latency_ms.Percentile(95.0));
      json->Key("p99_ms").Number(result.latency_ms.Percentile(99.0));
      json->Key("queue_p95_ms").Number(result.queue_ms.Percentile(95.0));
      json->Key("peak_in_flight")
          .Int(static_cast<int64_t>(service.stats().peak_in_flight));
      json->EndObject();
    }
  }
  if (json != nullptr) json->EndArray();
  std::printf("peak-q = deepest admission queue, peak-x = most queries "
              "executing at once,\nbacklog = deepest shared-pool morsel "
              "queue observed (bounded by the per-query\nmorsel windows). "
              "demonstrates >1 query in flight: peak-x climbs with the\n"
              "stream count while per-query results stay byte-identical to "
              "solo serial runs\n(see tests/service_concurrency_test.cc for "
              "the assertion).\n");
}

/// Per-class p95 under mixed load: the morsel-window budget keeps point
/// lookups (LIMIT probes) responsive while full scans grind.
void StarvationCheck(Catalog* catalog) {
  std::printf("\n--- per-class latency @ 8 streams (morsel-window budget "
              "caps head-of-line blocking) ---\n");
  MultiStreamDriver driver(catalog, {"probe_sorted", "probe_clustered",
                                     "probe_random"},
                           {"build_small", "build_tiny"}, ProductionModel());
  service::QueryServiceConfig scfg;
  scfg.num_threads = kPoolWidth;
  scfg.max_in_flight = 8;
  service::QueryService service(catalog, scfg);
  std::printf("per-query morsel window: %zu morsels\n",
              service.per_query_morsel_window());

  StreamDriverConfig dcfg;
  dcfg.num_streams = 8;
  dcfg.queries_per_stream = g_queries_per_stream;
  dcfg.gen.seed = 99;
  StreamDriverResult result = driver.Run(&service, dcfg);
  std::printf("%24s %8s %9s %9s\n", "class", "n", "p50 ms", "p95 ms");
  for (const auto& [cls, collector] : result.latency_by_class) {
    std::printf("%24s %8zu %9.3f %9.3f\n", ToString(cls), collector.count(),
                collector.Percentile(50.0), collector.Percentile(95.0));
  }
}

/// Open-loop (Poisson-arrival) sweep: offered load is set externally
/// instead of self-throttling, so this is the probe that shows *latency
/// under overload* — below capacity the p95 sits near solo latency; past
/// capacity queueing delay explodes and, with a bounded admission queue,
/// spills into rejections instead of unbounded waiting.
void OpenLoopSweep(Catalog* catalog, JsonWriter* json) {
  MultiStreamDriver driver(catalog, {"probe_sorted", "probe_clustered",
                                     "probe_random"},
                           {"build_small", "build_tiny"}, ProductionModel());

  // Calibrate: a short closed-loop run measures this machine's capacity.
  double capacity_qps;
  {
    service::QueryServiceConfig scfg;
    scfg.num_threads = kPoolWidth;
    scfg.max_in_flight = 4;
    service::QueryService service(catalog, scfg);
    StreamDriverConfig dcfg;
    dcfg.num_streams = 4;
    dcfg.queries_per_stream = g_queries_per_stream;
    dcfg.gen.seed = 777;
    capacity_qps = driver.Run(&service, dcfg).Qps();
  }

  std::printf("\n--- open-loop Poisson arrivals (capacity ≈ %.0f qps "
              "closed-loop, admission queue bounded at 64) ---\n",
              capacity_qps);
  std::printf("%10s %9s %9s %9s %9s %9s %9s\n", "offered", "served",
              "rejected", "p50 ms", "p95 ms", "p99 ms", "queue p95");
  const double kLoadFactors[] = {0.5, 0.9, 1.5, 3.0};
  if (json != nullptr) json->Key("open_loop").BeginArray();
  for (double load : kLoadFactors) {
    service::QueryServiceConfig scfg;
    scfg.num_threads = kPoolWidth;
    scfg.max_in_flight = 4;
    scfg.queue_capacity = 64;  // overload spills into rejections
    service::QueryService service(catalog, scfg);

    StreamDriverConfig dcfg;
    dcfg.num_streams = 4;
    dcfg.queries_per_stream = g_queries_per_stream;
    dcfg.gen.seed = 778;
    dcfg.open_loop = true;
    dcfg.offered_qps = std::max(1.0, capacity_qps * load);
    StreamDriverResult r = driver.Run(&service, dcfg);
    std::printf("%7.2fx %9.0f %9lld %9.3f %9.3f %9.3f %9.3f\n", load,
                r.Qps(), static_cast<long long>(r.queries_rejected),
                r.latency_ms.Percentile(50.0), r.latency_ms.Percentile(95.0),
                r.latency_ms.Percentile(99.0), r.queue_ms.Percentile(95.0));
    if (json != nullptr) {
      json->BeginObject();
      json->Key("load_factor").Number(load);
      json->Key("offered_qps").Number(dcfg.offered_qps);
      json->Key("served_qps").Number(r.Qps());
      json->Key("rejected").Int(r.queries_rejected);
      json->Key("p50_ms").Number(r.latency_ms.Percentile(50.0));
      json->Key("p95_ms").Number(r.latency_ms.Percentile(95.0));
      json->Key("p99_ms").Number(r.latency_ms.Percentile(99.0));
      json->EndObject();
    }
  }
  if (json != nullptr) json->EndArray();
  std::printf("offered = multiple of measured capacity. Latency includes "
              "queueing from arrival to\ncompletion — the closed-loop sweep "
              "above cannot show the >1x regime at all.\n");
}

/// Identical repetitive streams + shared predicate cache: concurrency
/// amplifies hits (stream 2 rides entries stream 1 populated; simultaneous
/// identical queries coalesce into one population).
void CacheAmplification(Catalog* catalog, JsonWriter* json) {
  std::printf("\n--- predicate-cache hit amplification (identical top-k-heavy "
              "streams, shared cache) ---\n");
  std::printf("%8s %10s %8s %8s %10s %12s %14s\n", "streams", "hit-rate",
              "hits", "misses", "coalesced", "cache-hit q", "loads/query");

  // Top-k heavy mix: the §8.2 cache only serves top-k scan/project shapes.
  ProductionModel::Config mcfg;
  mcfg.class_weights = {2.0, 8.0, 0.0, 0.0, 85.0, 2.0, 1.0, 2.0};
  MultiStreamDriver driver(catalog, {"probe_sorted", "probe_clustered",
                                     "probe_random"},
                           {"build_small", "build_tiny"},
                           ProductionModel(mcfg));
  if (json != nullptr) json->Key("cache_amplification").BeginArray();
  for (size_t streams : g_stream_counts) {
    PredicateCache cache(4096);
    service::QueryServiceConfig scfg;
    scfg.num_threads = kPoolWidth;
    scfg.max_in_flight = streams;
    scfg.engine.predicate_cache = &cache;
    service::QueryService service(catalog, scfg);

    StreamDriverConfig dcfg;
    dcfg.num_streams = streams;
    dcfg.queries_per_stream = g_queries_per_stream;
    dcfg.identical_streams = true;  // every stream replays one sequence
    dcfg.gen.seed = 7;
    dcfg.gen.shape_pool_size = 60;  // dashboard-style repetitive traffic
    catalog->ResetMeters();
    StreamDriverResult result = driver.Run(&service, dcfg);
    PredicateCache::Counters c = cache.snapshot();
    const int64_t executed = result.queries_ok + result.queries_failed;
    const double loads_per_query =
        executed > 0 ? static_cast<double>(catalog->TotalLoads()) /
                           static_cast<double>(executed)
                     : 0.0;
    std::printf("%8zu %9.1f%% %8lld %8lld %10lld %12lld %14.1f\n", streams,
                100.0 * c.HitRate(), static_cast<long long>(c.hits),
                static_cast<long long>(c.misses),
                static_cast<long long>(c.coalesced_waits),
                static_cast<long long>(result.cache_hit_queries),
                loads_per_query);
    if (json != nullptr) {
      json->BeginObject();
      json->Key("streams").Int(static_cast<int64_t>(streams));
      json->Key("hit_rate").Number(c.HitRate());
      json->Key("loads_per_query").Number(loads_per_query);
      json->EndObject();
    }
  }
  if (json != nullptr) json->EndArray();
  std::printf("more streams replaying the same traffic -> higher hit rate "
              "and fewer partition\nloads per query: concurrency amplifies "
              "what one stream's first pass populated.\n");
}

/// Sharded scatter-gather sweep: the same closed-loop production workload
/// across shard counts. The interesting columns are the cross-shard level's
/// own meters — how many shard contacts the merged-zone-map probe and the
/// scan-set slicing avoided — next to QPS, which should hold (the work is
/// the same partitions, just routed).
void ShardSweep(Catalog* catalog, JsonWriter* json) {
  std::printf("\n--- sharded scatter-gather sweep (range shards, "
              "%zu queries/stream) ---\n",
              g_queries_per_stream);
  std::printf("%7s %8s %9s %12s %13s %11s\n", "shards", "streams", "qps",
              "shard-total", "shard-pruned", "prune-ratio");
  MultiStreamDriver driver(catalog, {"probe_sorted", "probe_clustered",
                                     "probe_random"},
                           {"build_small", "build_tiny"}, ProductionModel());
  if (json != nullptr) json->Key("shard_sweep").BeginArray();
  for (size_t shards : {1u, 2u, 4u}) {
    for (size_t streams : g_stream_counts) {
      service::QueryServiceConfig scfg;
      scfg.num_threads = kPoolWidth;
      scfg.max_in_flight = streams;
      scfg.num_shards = shards;
      service::QueryService service(catalog, scfg);

      StreamDriverConfig dcfg;
      dcfg.num_streams = streams;
      dcfg.queries_per_stream = g_queries_per_stream;
      dcfg.gen.seed = 4242;
      StreamDriverResult r = driver.Run(&service, dcfg);
      const double ratio =
          r.shards_total > 0 ? static_cast<double>(r.shards_pruned) /
                                   static_cast<double>(r.shards_total)
                             : 0.0;
      std::printf("%7zu %8zu %9.0f %12lld %13lld %10.1f%%\n", shards,
                  streams, r.Qps(), static_cast<long long>(r.shards_total),
                  static_cast<long long>(r.shards_pruned), 100.0 * ratio);
      if (json != nullptr) {
        json->BeginObject();
        json->Key("num_shards").Int(static_cast<int64_t>(shards));
        json->Key("streams").Int(static_cast<int64_t>(streams));
        json->Key("qps").Number(r.Qps());
        json->Key("p95_ms").Number(r.latency_ms.Percentile(95.0));
        json->Key("shards_total").Int(r.shards_total);
        json->Key("shards_pruned").Int(r.shards_pruned);
        json->EndObject();
      }
    }
  }
  if (json != nullptr) json->EndArray();
  std::printf("shard-pruned = shards a query never contacted (merged-zone-map "
              "exclusion + empty\nscan-set slices); 1 shard = the coordinator "
              "path with nothing to prune away.\n");
}

/// Deterministic guard: narrow-range predicates on the sorted-layout table
/// through a 2-shard service MUST exclude at least one shard via the
/// cross-shard level. Returns false (bench exits 1) if shards_pruned stays
/// 0 — the cross-shard level silently dead is a failure, not a number.
bool ShardPruneGuard(Catalog* catalog, JsonWriter* json) {
  service::QueryServiceConfig scfg;
  scfg.num_threads = kPoolWidth;
  scfg.max_in_flight = 2;
  scfg.num_shards = 2;
  service::QueryService service(catalog, scfg);

  // probe_sorted's key column ascends over its domain, so a range shard
  // covers a contiguous key band: any band-sized predicate misses ~half
  // the table's shards. 40 disjoint narrow bands across the domain.
  int64_t shards_total = 0;
  int64_t shards_pruned = 0;
  int64_t failed = 0;
  for (int64_t q = 0; q < 40; ++q) {
    const int64_t lo = q * 25000;
    auto plan = ScanPlan("probe_sorted",
                         Between(Col("key"), Value(lo), Value(lo + 1000)));
    auto result = service.Execute(std::move(plan));
    if (!result.ok()) {
      ++failed;
      continue;
    }
    shards_total += result.value().stats.shards_total;
    shards_pruned += result.value().stats.shards_pruned;
  }
  std::printf("\n--- cross-shard prune guard (2 range shards, 40 narrow-band "
              "scans on probe_sorted) ---\n");
  std::printf("shards total %lld, pruned %lld, failed queries %lld\n",
              static_cast<long long>(shards_total),
              static_cast<long long>(shards_pruned),
              static_cast<long long>(failed));
  if (json != nullptr) {
    json->Key("shard_prune_guard").BeginObject();
    json->Key("shards_total").Int(shards_total);
    json->Key("shards_pruned").Int(shards_pruned);
    json->Key("failed").Int(failed);
    json->EndObject();
  }
  if (failed > 0 || shards_pruned == 0) {
    std::printf("FAIL: selective workload pruned no shards — the cross-shard "
                "pruning level is not firing\n");
    return false;
  }
  return true;
}


/// Percentile over a possibly-empty collector: an all-shed deadline rung or
/// an all-failed injection rung has no latency samples at all.
double PctOrZero(const StatsCollector& c, double p) {
  return c.empty() ? 0.0 : c.Percentile(p);
}

/// Fault-injection ladder: the closed-loop production workload through a
/// 2-shard service while shard.scatter_launch fires with probability 0 / 1%
/// / 5% / 20%, crossed with retries off (max_attempts=1) and on. Reports
/// goodput (ok-queries/sec), p99, retries per successful query, and the
/// failure count. The guard is a *ratio* check, immune to machine speed:
/// with retries on, 1% injected faults must not dent success below 99% —
/// that is the retry overhead bound the layer promises (a 1% launch fault
/// needs max_attempts consecutive hits to kill a query, ~1e-6) — and the
/// 5% rung must actually observe retries, or the layer is dead. Returns
/// false (bench exits 1) on either.
bool FaultInjectionLadder(Catalog* catalog, JsonWriter* json) {
  std::printf("\n--- fault-injection ladder (2 shards, "
              "shard.scatter_launch armed, %zu queries/stream) ---\n",
              g_queries_per_stream);
  std::printf("%8s %8s %9s %9s %9s %8s %13s\n", "inject", "retries",
              "goodput", "p99 ms", "ok", "failed", "retries/query");
  MultiStreamDriver driver(catalog, {"probe_sorted", "probe_clustered",
                                     "probe_random"},
                           {"build_small", "build_tiny"}, ProductionModel());
  FailPoint* fp =
      FailPointRegistry::Instance().Register("shard.scatter_launch");

  bool guard_ok = true;
  const double kRates[] = {0.0, 0.01, 0.05, 0.20};
  if (json != nullptr) json->Key("fault_ladder").BeginArray();
  for (bool retries_on : {false, true}) {
    for (double rate : kRates) {
      service::QueryServiceConfig scfg;
      scfg.num_threads = kPoolWidth;
      scfg.max_in_flight = 4;
      scfg.num_shards = 2;
      if (!retries_on) scfg.retry.max_attempts = 1;
      scfg.retry.base_backoff_us = 50;
      scfg.retry.max_backoff_us = 2000;
      service::QueryService service(catalog, scfg);

      if (rate > 0.0) {
        fp->ArmProbability(rate, /*seed=*/1234);
      } else {
        fp->Disarm();
      }
      StreamDriverConfig dcfg;
      dcfg.num_streams = 4;
      dcfg.queries_per_stream = g_queries_per_stream;
      dcfg.gen.seed = 4242;
      StreamDriverResult r = driver.Run(&service, dcfg);
      fp->Disarm();

      const double retries_per_query =
          r.queries_ok > 0 ? static_cast<double>(r.shard_retries) /
                                 static_cast<double>(r.queries_ok)
                           : 0.0;
      const int64_t finished = r.queries_ok + r.queries_failed;
      const double success_ratio =
          finished > 0 ? static_cast<double>(r.queries_ok) /
                             static_cast<double>(finished)
                       : 0.0;
      std::printf("%7.0f%% %8s %9.0f %9.3f %9lld %8lld %13.3f\n",
                  100.0 * rate, retries_on ? "on" : "off", r.Qps(),
                  PctOrZero(r.latency_ms, 99.0),
                  static_cast<long long>(r.queries_ok),
                  static_cast<long long>(r.queries_failed),
                  retries_per_query);
      if (json != nullptr) {
        json->BeginObject();
        json->Key("inject_rate").Number(rate);
        json->Key("retries_on").Int(retries_on ? 1 : 0);
        json->Key("goodput_qps").Number(r.Qps());
        json->Key("p99_ms").Number(PctOrZero(r.latency_ms, 99.0));
        json->Key("ok").Int(r.queries_ok);
        json->Key("failed").Int(r.queries_failed);
        json->Key("shard_retries").Int(r.shard_retries);
        json->Key("success_ratio").Number(success_ratio);
        json->EndObject();
      }
      if (retries_on && rate == 0.01 && success_ratio < 0.99) {
        std::printf("FAIL: 1%% injected faults with retries on dropped the "
                    "success ratio to %.4f (< 0.99) — retries are not "
                    "absorbing transient faults\n", success_ratio);
        guard_ok = false;
      }
      if (retries_on && rate == 0.05 && r.shard_retries == 0) {
        std::printf("FAIL: 5%% injected faults produced zero shard retries — "
                    "the retry layer never engaged\n");
        guard_ok = false;
      }
    }
  }
  if (json != nullptr) json->EndArray();
  std::printf("inject = per-scatter-launch fault probability. With retries "
              "off, every injected fault\nkills its query; with retries on, "
              "goodput holds and the cost surfaces as retries/query.\n");
  return guard_ok;
}

/// Deadline sweep: the same workload under per-query deadlines from
/// generous to hopeless. Generous deadlines change nothing; tight ones
/// convert slow queries into kDeadlineExceeded (bounded-latency shedding);
/// an already-expired deadline sheds everything from the queue without
/// consuming a single pool share (shed_expired == completed).
void DeadlineSweep(Catalog* catalog, JsonWriter* json) {
  std::printf("\n--- per-query deadline sweep (closed loop, 4 streams) ---\n");
  std::printf("%12s %9s %9s %9s %10s %9s\n", "deadline", "ok", "deadline",
              "shed", "goodput", "p99 ms");
  MultiStreamDriver driver(catalog, {"probe_sorted", "probe_clustered",
                                     "probe_random"},
                           {"build_small", "build_tiny"}, ProductionModel());
  struct Rung {
    const char* label;
    std::chrono::nanoseconds deadline;
  };
  const Rung rungs[] = {
      {"none", std::chrono::nanoseconds(0)},
      {"1s", std::chrono::seconds(1)},
      {"5ms", std::chrono::milliseconds(5)},
      {"1ns", std::chrono::nanoseconds(1)},  // expired at Submit: shed-only
  };
  if (json != nullptr) json->Key("deadline_sweep").BeginArray();
  for (const Rung& rung : rungs) {
    service::QueryServiceConfig scfg;
    scfg.num_threads = kPoolWidth;
    scfg.max_in_flight = 4;
    scfg.default_deadline = rung.deadline;
    service::QueryService service(catalog, scfg);

    StreamDriverConfig dcfg;
    dcfg.num_streams = 4;
    dcfg.queries_per_stream = g_queries_per_stream;
    dcfg.gen.seed = 4243;
    StreamDriverResult r = driver.Run(&service, dcfg);
    const service::ServiceStats stats = service.stats();
    std::printf("%12s %9lld %9lld %9lld %10.0f %9.3f\n", rung.label,
                static_cast<long long>(r.queries_ok),
                static_cast<long long>(r.queries_deadline_exceeded),
                static_cast<long long>(stats.shed_expired), r.Qps(),
                PctOrZero(r.latency_ms, 99.0));
    if (json != nullptr) {
      json->BeginObject();
      json->Key("deadline").String(rung.label);
      json->Key("ok").Int(r.queries_ok);
      json->Key("deadline_exceeded").Int(r.queries_deadline_exceeded);
      json->Key("shed_expired").Int(stats.shed_expired);
      json->Key("goodput_qps").Number(r.Qps());
      json->Key("p99_ms").Number(PctOrZero(r.latency_ms, 99.0));
      json->EndObject();
    }
  }
  if (json != nullptr) json->EndArray();
  std::printf("deadline column counts kDeadlineExceeded completions; shed = "
              "the subset that never\nstarted executing (expired while "
              "queued, zero pool share consumed).\n");
}

/// EXPLAIN ANALYZE demo: one sharded top-k query through a traced service,
/// its per-operator profile printed verbatim. The report shows every level
/// of the pruning hierarchy with its count (cross-shard shards_pruned,
/// filter, LIMIT, top-k, join) on the source node, per-operator rows/
/// batches/time on every node, and the per-query pipeline-task counters —
/// the worked example the README's Observability section reproduces.
void ExplainAnalyzeDemo(Catalog* catalog, JsonWriter* json) {
  std::printf("\n--- EXPLAIN ANALYZE (sharded top-k, 2 range shards, traced) "
              "---\n");
  service::QueryServiceConfig scfg;
  scfg.num_threads = kPoolWidth;
  scfg.max_in_flight = 1;
  scfg.num_shards = 2;
  scfg.trace_every = 1;  // trace every query: the demo query is sampled
  service::QueryService service(catalog, scfg);

  auto plan = TopKPlan(
      ScanPlan("probe_sorted", Between(Col("key"), Value(int64_t{200000}),
                                       Value(int64_t{400000}))),
      "key", /*descending=*/true, 10);
  auto submitted = service.Submit(std::move(plan));
  if (!submitted.ok()) {
    std::printf("submit failed: %s\n", submitted.status().ToString().c_str());
    return;
  }
  auto handle = submitted.value();
  auto result = handle.Await();
  if (!result.ok()) {
    std::printf("query failed: %s\n", result.status().ToString().c_str());
    return;
  }
  std::shared_ptr<const QueryProfile> profile = handle.profile();
  if (profile == nullptr) {
    std::printf("FATAL: traced query produced no profile\n");
    std::abort();
  }
  std::printf("%s", profile->ToText().c_str());
  if (const Trace* trace = handle.trace()) {
    std::printf("trace: %zu spans recorded\n", trace->spans().size());
  }
  if (json != nullptr) {
    json->Key("explain_analyze").Raw(profile->ToJson());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = ParseOptions(argc, argv);
  if (opts.smoke) {
    g_queries_per_stream = 10;
    g_stream_counts = {1, 2};
  }
  g_trace_sample = opts.trace_sample;
  Banner("service", "Concurrent query service under multi-stream load",
         "§7 production setting: many repetitive queries in flight at once");
  auto catalog = StandardCatalog(/*scale=*/opts.smoke ? 0.1 : 0.5,
                                 /*seed=*/42);
  JsonWriter json;
  JsonWriter* jp = opts.json ? &json : nullptr;
  if (jp != nullptr) {
    json.Key("bench").String("bench_service");
    json.Key("smoke").Int(opts.smoke ? 1 : 0);
  }
  ThroughputSweep(catalog.get(), jp);
  StarvationCheck(catalog.get());
  OpenLoopSweep(catalog.get(), jp);
  CacheAmplification(catalog.get(), jp);
  ShardSweep(catalog.get(), jp);
  const bool fault_guard_ok = FaultInjectionLadder(catalog.get(), jp);
  DeadlineSweep(catalog.get(), jp);
  const bool shard_guard_ok = ShardPruneGuard(catalog.get(), jp);
  ExplainAnalyzeDemo(catalog.get(), jp);
  if (jp != nullptr) {
    // Process-wide instrument snapshot: everything the run just incremented
    // (pool/service/predcache/shard counters, latency histograms) in one
    // schema-checked JSON object (tools/check_metrics_schema.py).
    json.Key("metrics").Raw(MetricsRegistry::Instance().SnapshotJson());
    json.Write(opts);
  }
  return (shard_guard_ok && fault_guard_ok) ? 0 : 1;
}
