/// Ablation for §5.4: upfront boundary initialization strategies across
/// layouts. Reports partitions scanned for a top-k query per strategy.
#include "bench_util.h"
#include "exec/engine.h"
#include "expr/builder.h"
#include "workload/table_gen.h"

using namespace snowprune;           // NOLINT
using namespace snowprune::bench;    // NOLINT
using namespace snowprune::workload; // NOLINT

int main() {
  Banner("Ablation §5.4", "Upfront boundary initialization",
         "k-th max wins on overlapping data; largest-min wins on sorted");
  Catalog catalog;
  for (auto [name, layout] :
       {std::pair{"sorted", Layout::kSorted},
        std::pair{"clustered", Layout::kClustered},
        std::pair{"random", Layout::kRandom}}) {
    TableGenConfig cfg;
    cfg.name = name;
    cfg.num_partitions = 300;
    cfg.rows_per_partition = 400;
    cfg.layout = layout;
    cfg.seed = 54;
    if (!catalog.RegisterTable(SyntheticTable(cfg)).ok()) return 1;
  }

  std::printf("%-12s %-16s %10s %12s %12s\n", "layout", "init-mode",
              "k", "scanned", "topk-pruned");
  for (const char* table : {"sorted", "clustered", "random"}) {
    for (auto mode :
         {BoundaryInitMode::kNone, BoundaryInitMode::kKthMax,
          BoundaryInitMode::kCumulativeMin, BoundaryInitMode::kStricter}) {
      EngineConfig cfg;
      cfg.topk_boundary_init = mode;
      // Keep arrival order so initialization is the only variable.
      cfg.topk_order_strategy = OrderStrategy::kNone;
      Engine engine(&catalog, cfg);
      auto plan = TopKPlan(ScanPlan(table), "key", /*descending=*/true, 25);
      auto r = engine.Execute(plan);
      if (!r.ok()) return 1;
      std::printf("%-12s %-16s %10d %12lld %11.1f%%\n", table, ToString(mode),
                  25,
                  static_cast<long long>(r.value().stats.scanned_partitions),
                  100.0 * r.value().stats.TopKRatio());
    }
  }
  std::printf(
      "\nexpected: on sorted/clustered layouts cumulative-min initializes a\n"
      "tight boundary and skips nearly everything even in arrival order; on\n"
      "random layouts k-th max is the better of two weak bounds; 'stricter'\n"
      "always matches the best single strategy.\n");
  return 0;
}
