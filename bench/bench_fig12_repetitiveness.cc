/// Reproduces Figure 12: repetitiveness of top-k query plan shapes over a
/// 3-day and a 1-month window (most shapes appear exactly once).
#include <map>

#include "bench_util.h"
#include "common/rng.h"
#include "workload/query_gen.h"

using namespace snowprune;           // NOLINT
using namespace snowprune::bench;    // NOLINT
using namespace snowprune::workload; // NOLINT

namespace {

void Window(const char* label, size_t num_queries, const char* paper_row) {
  // Shape pool scales with the window (longer windows see more distinct
  // dashboards/users), matching the paper's near-identical histograms.
  QueryGenerator::Config gcfg;
  gcfg.seed = 1107;
  gcfg.shape_pool_size = num_queries * 2;
  gcfg.shape_zipf_s = 1.05;
  Rng rng(gcfg.seed);
  ZipfSampler sampler(gcfg.shape_pool_size, gcfg.shape_zipf_s);
  std::map<size_t, int64_t> occurrences;
  for (size_t i = 0; i < num_queries; ++i) ++occurrences[sampler.Sample(&rng)];

  std::map<int, int64_t> histogram;  // occurrence-count -> #shapes
  for (const auto& [shape, count] : occurrences) {
    histogram[count >= 6 ? 6 : static_cast<int>(count)] += 1;
  }
  int64_t total_shapes = static_cast<int64_t>(occurrences.size());
  std::printf("\n--- %s (%zu top-k queries, %lld distinct shapes) ---\n", label,
              num_queries, static_cast<long long>(total_shapes));
  std::printf("%14s %10s   %s\n", "#occurrences", "measured", "paper");
  const char* paper[] = {"", "85%/87%", "9%/8%", "3%/2%", "1%/1%", "1%/0%",
                         "2%/2%"};
  for (int occ = 1; occ <= 6; ++occ) {
    double pct = 100.0 * static_cast<double>(histogram[occ]) /
                 static_cast<double>(total_shapes);
    std::printf("%13s%s %9.1f%%   %s\n", occ == 6 ? ">=6" : "",
                occ == 6 ? "" : std::to_string(occ).c_str(), pct, paper[occ]);
  }
  (void)paper_row;
}

}  // namespace

int main() {
  Banner("Figure 12", "Repetitiveness of top-k query plan shapes",
         "~85%% of shapes appear once over 3 days; ~87%% over 1 month");
  Window("3-day window", 30000, "85/9/3/1/1/2");
  Window("1-month window", 300000, "87/8/2/1/0/2");
  std::printf(
      "\ntakeaway (§8.2): top-k queries are not repetitive, which limits\n"
      "predicate caching and favors ad-hoc-capable pruning.\n");
  return 0;
}
