/// Google-benchmark microbenchmarks: the per-partition costs that the
/// compile-time/runtime balance of §3.2 trades off.
#include <benchmark/benchmark.h>

#include "core/filter_pruner.h"
#include "core/join_pruner.h"
#include "core/pruning_tree.h"
#include "expr/builder.h"
#include "expr/like.h"
#include "expr/range_analysis.h"
#include "workload/table_gen.h"

namespace snowprune {
namespace {

using workload::Layout;
using workload::SyntheticTable;
using workload::TableGenConfig;

std::shared_ptr<Table> BenchTable() {
  static std::shared_ptr<Table> table = [] {
    TableGenConfig cfg;
    cfg.name = "bench";
    cfg.num_partitions = 2000;
    cfg.rows_per_partition = 100;
    cfg.layout = Layout::kClustered;
    cfg.seed = 7;
    return SyntheticTable(cfg);
  }();
  return table;
}

ExprPtr SimplePredicate() {
  auto table = BenchTable();
  auto pred = Between(Col("key"), Value(int64_t{100000}), Value(int64_t{200000}));
  (void)BindExpr(pred, table->schema());
  return pred;
}

ExprPtr ComplexPredicate() {
  auto table = BenchTable();
  // The §3 guiding-example shape: IF + arithmetic + LIKE.
  auto pred = And({Gt(If(Eq(Col("cat"), Lit("c0000")),
                         Mul(Col("key"), Lit(0.3048)), Col("key")),
                      Lit(150000)),
                   Like(Col("cat"), "c0%")});
  (void)BindExpr(pred, table->schema());
  return pred;
}

void BM_RangeAnalysisSimple(benchmark::State& state) {
  auto table = BenchTable();
  auto pred = SimplePredicate();
  const auto& stats = table->partition_metadata(42).all_stats();
  for (auto _ : state) {
    benchmark::DoNotOptimize(AnalyzePredicate(*pred, stats));
  }
}
BENCHMARK(BM_RangeAnalysisSimple);

void BM_RangeAnalysisComplex(benchmark::State& state) {
  auto table = BenchTable();
  auto pred = ComplexPredicate();
  const auto& stats = table->partition_metadata(42).all_stats();
  for (auto _ : state) {
    benchmark::DoNotOptimize(AnalyzePredicate(*pred, stats));
  }
}
BENCHMARK(BM_RangeAnalysisComplex);

void BM_FilterPrunerFullScanSet(benchmark::State& state) {
  auto table = BenchTable();
  auto pred = SimplePredicate();
  for (auto _ : state) {
    FilterPruner pruner(pred);
    benchmark::DoNotOptimize(pruner.Prune(*table, table->FullScanSet()));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(table->num_partitions()));
}
BENCHMARK(BM_FilterPrunerFullScanSet);

void BM_PruningTreeAdaptive(benchmark::State& state) {
  auto table = BenchTable();
  auto pred = ComplexPredicate();
  PruningTreeConfig cfg;
  cfg.enable_reorder = state.range(0) != 0;
  PruningTree tree(pred, cfg);
  size_t pid = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tree.Evaluate(table->partition_metadata(
                             static_cast<PartitionId>(pid)).all_stats()));
    pid = (pid + 1) % table->num_partitions();
  }
}
BENCHMARK(BM_PruningTreeAdaptive)->Arg(0)->Arg(1);

void BM_SummaryBuild(benchmark::State& state) {
  Rng rng(5);
  SummaryBuilder builder;
  for (int i = 0; i < 10000; ++i) {
    builder.Add(Value(rng.UniformInt(0, 1000000)));
  }
  auto kind = static_cast<SummaryKind>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(builder.Build(kind, 1024));
  }
}
BENCHMARK(BM_SummaryBuild)
    ->Arg(static_cast<int>(SummaryKind::kMinMax))
    ->Arg(static_cast<int>(SummaryKind::kRangeSet))
    ->Arg(static_cast<int>(SummaryKind::kBloom));

void BM_SummaryProbePartition(benchmark::State& state) {
  Rng rng(6);
  SummaryBuilder builder;
  for (int i = 0; i < 10000; ++i) {
    builder.Add(Value(rng.UniformInt(0, 1000000)));
  }
  auto summary = builder.Build(SummaryKind::kRangeSet, 1024);
  Value lo(int64_t{500000}), hi(int64_t{501000});
  for (auto _ : state) {
    benchmark::DoNotOptimize(summary->MayContainInRange(lo, hi));
  }
}
BENCHMARK(BM_SummaryProbePartition);

void BM_LikeMatch(benchmark::State& state) {
  std::string text = "Marked-North-West-Ridge";
  std::string pattern = "Marked-%-Ridge";
  for (auto _ : state) {
    benchmark::DoNotOptimize(LikeMatch(text, pattern));
  }
}
BENCHMARK(BM_LikeMatch);

}  // namespace
}  // namespace snowprune

BENCHMARK_MAIN();
