/// Google-benchmark microbenchmarks: the per-partition costs that the
/// compile-time/runtime balance of §3.2 trades off.
#include <benchmark/benchmark.h>

#include "core/filter_pruner.h"
#include "core/join_pruner.h"
#include "core/pruning_tree.h"
#include "exec/column_batch.h"
#include "exec/engine.h"
#include "expr/builder.h"
#include "expr/evaluator.h"
#include "expr/jit/compiler.h"
#include "expr/jit/executor.h"
#include "expr/like.h"
#include "expr/range_analysis.h"
#include "workload/table_gen.h"

namespace snowprune {
namespace {

using workload::Layout;
using workload::SyntheticTable;
using workload::TableGenConfig;

std::shared_ptr<Table> BenchTable() {
  static std::shared_ptr<Table> table = [] {
    TableGenConfig cfg;
    cfg.name = "bench";
    cfg.num_partitions = 2000;
    cfg.rows_per_partition = 100;
    cfg.layout = Layout::kClustered;
    cfg.seed = 7;
    return SyntheticTable(cfg);
  }();
  return table;
}

ExprPtr SimplePredicate() {
  auto table = BenchTable();
  auto pred = Between(Col("key"), Value(int64_t{100000}), Value(int64_t{200000}));
  (void)BindExpr(pred, table->schema());
  return pred;
}

ExprPtr ComplexPredicate() {
  auto table = BenchTable();
  // The §3 guiding-example shape: IF + arithmetic + LIKE.
  auto pred = And({Gt(If(Eq(Col("cat"), Lit("c0000")),
                         Mul(Col("key"), Lit(0.3048)), Col("key")),
                      Lit(150000)),
                   Like(Col("cat"), "c0%")});
  (void)BindExpr(pred, table->schema());
  return pred;
}

void BM_RangeAnalysisSimple(benchmark::State& state) {
  auto table = BenchTable();
  auto pred = SimplePredicate();
  const auto& stats = table->partition_metadata(42).all_stats();
  for (auto _ : state) {
    benchmark::DoNotOptimize(AnalyzePredicate(*pred, stats));
  }
}
BENCHMARK(BM_RangeAnalysisSimple);

void BM_RangeAnalysisComplex(benchmark::State& state) {
  auto table = BenchTable();
  auto pred = ComplexPredicate();
  const auto& stats = table->partition_metadata(42).all_stats();
  for (auto _ : state) {
    benchmark::DoNotOptimize(AnalyzePredicate(*pred, stats));
  }
}
BENCHMARK(BM_RangeAnalysisComplex);

void BM_FilterPrunerFullScanSet(benchmark::State& state) {
  auto table = BenchTable();
  auto pred = SimplePredicate();
  for (auto _ : state) {
    FilterPruner pruner(pred);
    benchmark::DoNotOptimize(pruner.Prune(*table, table->FullScanSet()));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(table->num_partitions()));
}
BENCHMARK(BM_FilterPrunerFullScanSet);

void BM_PruningTreeAdaptive(benchmark::State& state) {
  auto table = BenchTable();
  auto pred = ComplexPredicate();
  PruningTreeConfig cfg;
  cfg.enable_reorder = state.range(0) != 0;
  PruningTree tree(pred, cfg);
  size_t pid = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tree.Evaluate(table->partition_metadata(
                             static_cast<PartitionId>(pid)).all_stats()));
    pid = (pid + 1) % table->num_partitions();
  }
}
BENCHMARK(BM_PruningTreeAdaptive)->Arg(0)->Arg(1);

void BM_SummaryBuild(benchmark::State& state) {
  Rng rng(5);
  SummaryBuilder builder;
  for (int i = 0; i < 10000; ++i) {
    builder.Add(Value(rng.UniformInt(0, 1000000)));
  }
  auto kind = static_cast<SummaryKind>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(builder.Build(kind, 1024));
  }
}
BENCHMARK(BM_SummaryBuild)
    ->Arg(static_cast<int>(SummaryKind::kMinMax))
    ->Arg(static_cast<int>(SummaryKind::kRangeSet))
    ->Arg(static_cast<int>(SummaryKind::kBloom));

void BM_SummaryProbePartition(benchmark::State& state) {
  Rng rng(6);
  SummaryBuilder builder;
  for (int i = 0; i < 10000; ++i) {
    builder.Add(Value(rng.UniformInt(0, 1000000)));
  }
  auto summary = builder.Build(SummaryKind::kRangeSet, 1024);
  Value lo(int64_t{500000}), hi(int64_t{501000});
  for (auto _ : state) {
    benchmark::DoNotOptimize(summary->MayContainInRange(lo, hi));
  }
}
BENCHMARK(BM_SummaryProbePartition);

void BM_LikeMatch(benchmark::State& state) {
  std::string text = "Marked-North-West-Ridge";
  std::string pattern = "Marked-%-Ridge";
  for (auto _ : state) {
    benchmark::DoNotOptimize(LikeMatch(text, pattern));
  }
}
BENCHMARK(BM_LikeMatch);

// ---------------------------------------------------------------------------
// The ColumnBatch hot path: unboxed scan/filter/aggregate vs the boxed
// equivalents it replaced.
// ---------------------------------------------------------------------------

/// The cost the unboxed path avoids: boxing every value of a partition into
/// Rows (what TableScanOp did per partition before ColumnBatch).
void BM_MaterializePartitionBoxed(benchmark::State& state) {
  auto table = BenchTable();
  const MicroPartition& part = table->partition_metadata(42);
  ColumnBatch columns = ColumnBatch::AllOf(part, 42);
  for (auto _ : state) {
    Batch batch = columns.Materialize(false);
    benchmark::DoNotOptimize(batch);
  }
  state.SetItemsProcessed(state.iterations() * part.row_count());
}
BENCHMARK(BM_MaterializePartitionBoxed);

/// Row-at-a-time predicate evaluation over boxed values (the old filter).
void BM_FilterPartitionScalar(benchmark::State& state) {
  auto table = BenchTable();
  auto pred = state.range(0) == 0 ? SimplePredicate() : ComplexPredicate();
  const MicroPartition& part = table->partition_metadata(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvalPredicateMask(*pred, part));
  }
  state.SetItemsProcessed(state.iterations() * part.row_count());
}
BENCHMARK(BM_FilterPartitionScalar)->Arg(0)->Arg(1);

/// Vectorized selection-vector fill (the ColumnBatch filter). Arg 1 is the
/// §3 guiding-example shape whose IF/arithmetic terms take the scalar
/// fallback — the gap between Arg 0 and Arg 1 shows what vectorization
/// buys on the shapes it covers.
void BM_FilterPartitionVectorized(benchmark::State& state) {
  auto table = BenchTable();
  auto pred = state.range(0) == 0 ? SimplePredicate() : ComplexPredicate();
  const MicroPartition& part = table->partition_metadata(42);
  std::vector<uint32_t> selection;
  for (auto _ : state) {
    ComputeSelection(*pred, part, &selection);
    benchmark::DoNotOptimize(selection);
  }
  state.SetItemsProcessed(state.iterations() * part.row_count());
}
BENCHMARK(BM_FilterPartitionVectorized)->Arg(0)->Arg(1);

/// Typed arithmetic lanes (PR 4): a pure-arithmetic comparison that used to
/// take the per-row scalar fallback. Arg 0 = vectorized ComputeSelection,
/// Arg 1 = the brute-force scalar oracle it replaced on this shape.
void BM_ArithCompare(benchmark::State& state) {
  auto table = BenchTable();
  auto pred = Gt(Add(Mul(Col("key"), Lit(int64_t{3})), Col("key")),
                 Lit(int64_t{500000}));
  (void)BindExpr(pred, table->schema());
  const MicroPartition& part = table->partition_metadata(42);
  std::vector<uint32_t> selection;
  EvalScratch scratch;
  for (auto _ : state) {
    if (state.range(0) == 0) {
      ComputeSelection(*pred, part, &selection, &scratch);
      benchmark::DoNotOptimize(selection);
    } else {
      benchmark::DoNotOptimize(EvalPredicateMask(*pred, part));
    }
  }
  state.SetItemsProcessed(state.iterations() * part.row_count());
}
BENCHMARK(BM_ArithCompare)->Arg(0)->Arg(1);

/// The specialization tier (PR 10) on the arith_filter shape. Arg 0 = the
/// fused bytecode program (kSelectCmp root: compare straight into the
/// selection vector), Arg 1 = the vectorized interpreter it replaces
/// (identical to BM_ArithCompare/0), Arg 2 = a hand-written raw loop over
/// the key column — the ceiling a specialized kernel could reach. The gap
/// 0↔1 is what fusion buys; the gap 0↔2 is the remaining dispatch cost.
void BM_FusedPredicate(benchmark::State& state) {
  auto table = BenchTable();
  auto pred = Gt(Add(Mul(Col("key"), Lit(int64_t{3})), Col("key")),
                 Lit(int64_t{500000}));
  (void)BindExpr(pred, table->schema());
  const MicroPartition& part = table->partition_metadata(42);
  jit::CompileResult compiled = jit::CompilePredicate(pred, table->schema());
  if (compiled.program == nullptr) {
    state.SkipWithError("arith_filter shape did not compile");
    return;
  }
  std::vector<uint32_t> selection;
  EvalScratch scratch;
  const uint32_t n = static_cast<uint32_t>(part.row_count());
  const int64_t* key = part.column(1).int64_data().data();
  for (auto _ : state) {
    if (state.range(0) == 0) {
      jit::ExecuteSelection(*compiled.program, part, &selection, &scratch);
    } else if (state.range(0) == 1) {
      ComputeSelection(*pred, part, &selection, &scratch);
    } else {
      selection.clear();
      for (uint32_t r = 0; r < n; ++r) {
        if (key[r] * 3 + key[r] > 500000) selection.push_back(r);
      }
    }
    benchmark::DoNotOptimize(selection);
  }
  state.SetItemsProcessed(state.iterations() * part.row_count());
}
BENCHMARK(BM_FusedPredicate)->Arg(0)->Arg(1)->Arg(2);

/// A fused projection kernel (value program): arithmetic over two columns
/// materialized into typed lanes. Arg 0 = the bytecode program, Arg 1 = the
/// per-row scalar evaluation a boxed projection performs on this shape.
void BM_FusedArithProject(benchmark::State& state) {
  auto table = BenchTable();
  auto expr = Add(Mul(Col("key"), Lit(int64_t{3})), Col("ts"));
  (void)BindExpr(expr, table->schema());
  const MicroPartition& part = table->partition_metadata(42);
  jit::CompileResult compiled =
      jit::CompileValueProgram(expr, table->schema());
  if (compiled.program == nullptr) {
    state.SkipWithError("projection shape did not compile");
    return;
  }
  NumericLanes lanes;
  EvalScratch scratch;
  for (auto _ : state) {
    if (state.range(0) == 0) {
      jit::ExecuteValue(*compiled.program, part, &lanes, &scratch);
      benchmark::DoNotOptimize(lanes);
    } else {
      for (size_t r = 0; r < part.row_count(); ++r) {
        benchmark::DoNotOptimize(EvalScalar(*expr, part, r));
      }
    }
  }
  state.SetItemsProcessed(state.iterations() * part.row_count());
}
BENCHMARK(BM_FusedArithProject)->Arg(0)->Arg(1);

/// Vectorized IF as a value (the §3 guiding-example shape) — previously the
/// scalar fallback, now condition-split typed lanes.
void BM_IfValueCompare(benchmark::State& state) {
  auto table = BenchTable();
  auto pred = Gt(If(Eq(Col("cat"), Lit("c0000")),
                    Mul(Col("key"), Lit(0.3048)), Col("key")),
                 Lit(150000));
  (void)BindExpr(pred, table->schema());
  const MicroPartition& part = table->partition_metadata(42);
  std::vector<uint32_t> selection;
  EvalScratch scratch;
  for (auto _ : state) {
    ComputeSelection(*pred, part, &selection, &scratch);
    benchmark::DoNotOptimize(selection);
  }
  state.SetItemsProcessed(state.iterations() * part.row_count());
}
BENCHMARK(BM_IfValueCompare);

/// Selection-aware AND: the first term decides almost every row FALSE, so
/// the expensive later terms (LIKE, arithmetic) now see only survivors.
/// Arg 0 = selective leading term, Arg 1 = same terms, unselective leader
/// (the worst case: selection-awareness saves nothing).
void BM_SelectiveAnd(benchmark::State& state) {
  auto table = BenchTable();
  auto selective = Between(Col("key"), Value(int64_t{100000}),
                           Value(int64_t{101000}));  // ~0.1% of the domain
  auto wide = Between(Col("key"), Value(int64_t{0}),
                      Value(int64_t{10000000}));  // everything
  auto pred = And({state.range(0) == 0 ? selective : wide,
                   Like(Col("cat"), "c0%"),
                   Gt(Mul(Col("key"), Lit(int64_t{2})), Lit(int64_t{150000}))});
  (void)BindExpr(pred, table->schema());
  const MicroPartition& part = table->partition_metadata(42);
  std::vector<uint32_t> selection;
  EvalScratch scratch;
  for (auto _ : state) {
    ComputeSelection(*pred, part, &selection, &scratch);
    benchmark::DoNotOptimize(selection);
  }
  state.SetItemsProcessed(state.iterations() * part.row_count());
}
BENCHMARK(BM_SelectiveAnd)->Arg(0)->Arg(1);

/// End-to-end hash join through the engine: columnar build + columnar
/// probe (PR 4), the full scan→join pipeline with no Materialize().
void BM_JoinProbeColumnar(benchmark::State& state) {
  TableGenConfig probe_cfg;
  probe_cfg.name = "probe";
  probe_cfg.num_partitions = 40;
  probe_cfg.rows_per_partition = 1000;
  probe_cfg.layout = Layout::kRandom;  // unprunable: pure probe cost
  probe_cfg.seed = 21;
  TableGenConfig build_cfg;
  build_cfg.name = "build";
  build_cfg.num_partitions = 2;
  build_cfg.rows_per_partition = 1500;
  build_cfg.seed = 22;
  Catalog catalog;
  if (!catalog.RegisterTable(SyntheticTable(probe_cfg)).ok()) return;
  if (!catalog.RegisterTable(SyntheticTable(build_cfg)).ok()) return;
  EngineConfig config;
  config.exec.num_threads = 1;
  Engine engine(&catalog, config);
  auto plan = JoinPlan(ScanPlan("probe"), ScanPlan("build"), "key", "key");
  for (auto _ : state) {
    auto result = engine.Execute(plan);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * 40 * 1000);
}
BENCHMARK(BM_JoinProbeColumnar);

/// End-to-end top-k through the engine over an unprunable layout: the heap
/// insert/boundary-reject path reads unboxed key cells (PR 4); only rows
/// entering the heap are boxed.
void BM_TopKInsertColumnar(benchmark::State& state) {
  TableGenConfig cfg;
  cfg.name = "topk_bench";
  cfg.num_partitions = 40;
  cfg.rows_per_partition = 1000;
  cfg.layout = Layout::kRandom;
  cfg.seed = 23;
  Catalog catalog;
  if (!catalog.RegisterTable(SyntheticTable(cfg)).ok()) return;
  EngineConfig config;
  config.exec.num_threads = 1;
  Engine engine(&catalog, config);
  auto plan = TopKPlan(ScanPlan("topk_bench"), "key", /*descending=*/true,
                       static_cast<int64_t>(state.range(0)));
  for (auto _ : state) {
    auto result = engine.Execute(plan);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * 40 * 1000);
}
BENCHMARK(BM_TopKInsertColumnar)->Arg(10)->Arg(1000);

/// End-to-end scan→filter→aggregate through the engine (the acceptance
/// workload: unboxed from storage to the partial-aggregate maps).
void BM_ScanFilterAggregate(benchmark::State& state) {
  TableGenConfig cfg;
  cfg.name = "agg_bench";
  cfg.num_partitions = 50;
  cfg.rows_per_partition = 1000;
  cfg.layout = Layout::kRandom;  // unprunable: pure execution cost
  cfg.num_categories = 16;
  cfg.seed = 13;
  Catalog catalog;
  if (!catalog.RegisterTable(SyntheticTable(cfg)).ok()) return;
  EngineConfig config;
  config.exec.num_threads = 1;
  Engine engine(&catalog, config);
  auto plan = AggregatePlan(
      ScanPlan("agg_bench", Gt(Col("key"), Lit(int64_t{100000}))), {"cat"},
      {AggPlanSpec{AggFunc::kCount, "", "n"},
       AggPlanSpec{AggFunc::kSum, "key", "key_sum"},
       AggPlanSpec{AggFunc::kMin, "ts", "ts_min"},
       AggPlanSpec{AggFunc::kMax, "key", "key_max"}});
  for (auto _ : state) {
    auto result = engine.Execute(plan);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * 50 * 1000);
}
BENCHMARK(BM_ScanFilterAggregate);

}  // namespace
}  // namespace snowprune

BENCHMARK_MAIN();
