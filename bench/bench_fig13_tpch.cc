/// Reproduces Figure 13: per-query pruning ratios for TPC-H clustered on
/// l_shipdate / o_orderdate. Scale factor via SNOWPRUNE_TPCH_SF (default
/// 0.02 for the smoke run; the paper used SF100 — ratios, not bytes, are
/// the reproduced quantity).
#include <cstdlib>
#include <map>

#include "bench_util.h"
#include "core/filter_pruner.h"
#include "workload/tpch/tpch_gen.h"
#include "workload/tpch/tpch_queries.h"

using namespace snowprune;                 // NOLINT
using namespace snowprune::bench;          // NOLINT
using namespace snowprune::workload::tpch; // NOLINT

int main() {
  Banner("Figure 13", "TPC-H pruning ratios (clustered layout)",
         "avg 28.7%%, median 8.3%%; Q6/Q14/Q15 high, many queries ~0%%");
  TpchConfig cfg;
  if (const char* sf = std::getenv("SNOWPRUNE_TPCH_SF")) {
    cfg.scale_factor = std::atof(sf);
  } else {
    cfg.scale_factor = 0.02;
  }
  cfg.lineitem_rows_per_partition =
      std::max<size_t>(200, static_cast<size_t>(120000 * cfg.scale_factor));
  cfg.orders_rows_per_partition =
      std::max<size_t>(100, static_cast<size_t>(60000 * cfg.scale_factor));
  std::printf("scale factor %.3f\n", cfg.scale_factor);
  auto tables = GenerateTpch(cfg);
  Catalog catalog;
  if (!tables.RegisterAll(&catalog).ok()) return 1;
  std::printf("lineitem: %lld rows / %zu partitions; orders: %lld rows / %zu "
              "partitions\n\n",
              static_cast<long long>(tables.lineitem->num_rows()),
              tables.lineitem->num_partitions(),
              static_cast<long long>(tables.orders->num_rows()),
              tables.orders->num_partitions());

  // Paper Figure 13 reference values (percent pruned per query).
  const std::map<int, int> kPaper = {{1, 1},   {2, 0},  {3, 45}, {4, 19},
                                     {5, 16},  {6, 84}, {7, 53}, {8, 13},
                                     {9, 0},   {10, 57}, {11, 0}, {12, 67},
                                     {13, 0},  {14, 96}, {15, 96}, {16, 0},
                                     {17, 0},  {18, 0},  {19, 0},  {20, 72},
                                     {21, 4},  {22, 0}};

  std::printf("%5s %10s %10s\n", "query", "measured", "paper");
  StatsCollector per_query;
  for (const auto& profile : AllQueryProfiles()) {
    int64_t total = 0, pruned = 0;
    for (const auto& scan : profile.scans) {
      auto table = catalog.GetTable(scan.table);
      if (scan.predicate &&
          !BindExpr(scan.predicate, table->schema()).ok()) {
        std::printf("Q%d: bind error\n", profile.id);
        return 1;
      }
      FilterPruner pruner(scan.predicate);
      auto result = pruner.Prune(*table, table->FullScanSet());
      total += result.input_partitions;
      pruned += result.pruned;
    }
    double ratio = total == 0 ? 0.0 : static_cast<double>(pruned) / total;
    per_query.Add(ratio);
    std::printf("%5d %9.1f%% %9d%%\n", profile.id, 100.0 * ratio,
                kPaper.at(profile.id));
  }
  std::printf("\naverage pruning ratio: %5.1f%%  (paper: 28.7%%)\n",
              100.0 * per_query.Mean());
  std::printf("median pruning ratio:  %5.1f%%  (paper: 8.3%%)\n",
              100.0 * per_query.Median());
  std::printf(
      "\ntakeaway (§8.3): TPC-H pruning is far below the >99%% seen on the\n"
      "production-like population — synthetic benchmarks understate pruning.\n");
  return 0;
}
