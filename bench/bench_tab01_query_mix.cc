/// Reproduces Table 1: relative frequency of LIMIT-query types among
/// SELECT queries.
#include "bench_util.h"
#include "exec/engine.h"
#include "workload/query_gen.h"
#include "workload/simulator.h"

using namespace snowprune;           // NOLINT
using namespace snowprune::bench;    // NOLINT
using namespace snowprune::workload; // NOLINT

int main() {
  Banner("Table 1", "Relative frequency of LIMIT query types",
         "LIMIT 2.60%% (0.37 / 2.23), top-k 5.55%% (4.47 / 0.12 / 0.96)");
  auto catalog = StandardCatalog(0.2);
  Engine engine(catalog.get());
  QueryGenerator::Config gcfg;
  gcfg.seed = 11;
  QueryGenerator gen(catalog.get(),
                     {"probe_sorted", "probe_sorted", "probe_clustered",
                      "probe_clustered", "probe_random"},
                     {"build_small"}, ProductionModel(), gcfg);
  Simulator sim(&gen, &engine);
  SimulationResult r = sim.Run(20000);

  auto pct = [&](QueryClass c) {
    auto it = r.class_counts.find(c);
    int64_t n = it == r.class_counts.end() ? 0 : it->second;
    return 100.0 * static_cast<double>(n) /
           static_cast<double>(r.total_queries);
  };
  double limit_total = pct(QueryClass::kLimitNoPredicate) +
                       pct(QueryClass::kLimitWithPredicate);
  double topk_total = pct(QueryClass::kTopK) + pct(QueryClass::kTopKGroupBySame) +
                      pct(QueryClass::kTopKGroupByAgg);
  std::printf("%-44s %9s %9s\n", "Type", "measured", "paper");
  std::printf("%-44s %8.2f%% %8s\n", "LIMIT queries", limit_total, "2.60%");
  std::printf("%-44s %8.2f%% %8s\n", "  LIMIT without predicate",
              pct(QueryClass::kLimitNoPredicate), "0.37%");
  std::printf("%-44s %8.2f%% %8s\n", "  LIMIT with predicate",
              pct(QueryClass::kLimitWithPredicate), "2.23%");
  std::printf("%-44s %8.2f%% %8s\n", "Top-k queries", topk_total, "5.55%");
  std::printf("%-44s %8.2f%% %8s\n", "  ORDER BY x LIMIT k",
              pct(QueryClass::kTopK), "4.47%");
  std::printf("%-44s %8.2f%% %8s\n", "  GROUP BY x ORDER BY x LIMIT k",
              pct(QueryClass::kTopKGroupBySame), "0.12%");
  std::printf("%-44s %8.2f%% %8s\n", "  GROUP BY y ORDER BY agg(x) LIMIT k",
              pct(QueryClass::kTopKGroupByAgg), "0.96%");
  return 0;
}
