/// The paper's guiding example (§3-§6): the IUCN searches for an animal
/// observation post. One dataset, four queries, four pruning techniques —
/// ending with the §6.1 query that exercises filter, join, and top-k
/// pruning on the same table scan.
#include <cstdio>

#include "exec/engine.h"
#include "expr/builder.h"
#include "storage/catalog.h"
#include "storage/table.h"

using namespace snowprune;  // NOLINT

namespace {

void Report(const char* title, const QueryResult& r) {
  std::printf("\n--- %s ---\n", title);
  std::printf("rows=%zu  total-partitions=%lld  filter=%lld limit=%lld "
              "join=%lld topk=%lld  scanned=%lld\n",
              r.rows.size(), static_cast<long long>(r.stats.total_partitions),
              static_cast<long long>(r.stats.pruned_by_filter),
              static_cast<long long>(r.stats.pruned_by_limit),
              static_cast<long long>(r.stats.pruned_by_join),
              static_cast<long long>(r.stats.pruned_by_topk),
              static_cast<long long>(r.stats.scanned_partitions));
}

std::shared_ptr<Table> BuildTrails() {
  Schema schema({Field{"mountain", DataType::kString, false},
                 Field{"name", DataType::kString, false},
                 Field{"unit", DataType::kString, false},
                 Field{"altit", DataType::kFloat64, false}});
  TableBuilder builder("trails", schema, 4);
  struct Trail {
    const char* mountain, *name, *unit;
    double altit;
  };
  const Trail kTrails[] = {
      {"Eiger", "Marked-North-Ridge", "meters", 2300},
      {"Eiger", "Basecamp-Loop", "meters", 900},
      {"Matterhorn", "Marked-East-Ridge", "feet", 7200},
      {"Matterhorn", "Unmarked-Scramble", "feet", 9000},
      {"Rigi", "Marked-South-Ridge", "meters", 1200},
      {"Rigi", "Panorama-Walk", "meters", 1100},
      {"Säntis", "Marked-West-Ridge", "feet", 6200},
      {"Säntis", "Gondola-Path", "meters", 1300},
  };
  for (const auto& t : kTrails) {
    (void)builder.AppendRow({Value(t.mountain), Value(t.name), Value(t.unit),
                             Value(t.altit)});
  }
  return builder.Finish();
}

std::shared_ptr<Table> BuildTrackingData() {
  Schema schema({Field{"area", DataType::kString, false},
                 Field{"species", DataType::kString, false},
                 Field{"s", DataType::kInt64, false},
                 Field{"num_sightings", DataType::kInt64, false}});
  TableBuilder builder("tracking_data", schema, 3);
  struct Obs {
    const char* area, *species;
    int64_t s, sightings;
  };
  // Partition layout mirrors the paper's Figure 5 (partition 3 is fully
  // matching for the Alpine query), plus area/sightings data for §5/§6.
  const Obs kObs[] = {
      // Partition 1 — not matching.
      {"Rigi", "Snow Vole", 7, 12},
      {"Rigi", "Brown Bear", 133, 2},
      {"Rigi", "Gray Wolf", 82, 5},
      // Partition 2 — partially matching.
      {"Eiger", "Lynx", 71, 8},
      {"Eiger", "Red Fox", 40, 21},
      {"Eiger", "Alpine Bat", 6, 9},
      // Partition 3 — fully matching.
      {"Matterhorn", "Alpine Ibex", 101, 44},
      {"Matterhorn", "Alpine Goat", 76, 31},
      {"Matterhorn", "Alpine Sheep", 83, 18},
      // Partition 4 — partially matching.
      {"Säntis", "Europ. Mole", 4, 3},
      {"Säntis", "Polecat", 16, 7},
      {"Säntis", "Alpine Ibex", 97, 52},
  };
  for (const auto& o : kObs) {
    (void)builder.AppendRow(
        {Value(o.area), Value(o.species), Value(o.s), Value(o.sightings)});
  }
  return builder.Finish();
}

ExprPtr TrailPredicate() {
  // WHERE IF(unit='feet', altit*0.3048, altit) > 1500
  //   AND name LIKE 'Marked-%-Ridge'
  return And({Gt(If(Eq(Col("unit"), Lit("feet")),
                    Mul(Col("altit"), Lit(0.3048)), Col("altit")),
                 Lit(1500)),
              Like(Col("name"), "Marked-%-Ridge")});
}

ExprPtr TrackingPredicate() {
  // WHERE species LIKE 'Alpine%' AND s >= 50
  return And({Like(Col("species"), "Alpine%"), Ge(Col("s"), Lit(50))});
}

}  // namespace

int main() {
  Catalog catalog;
  if (!catalog.RegisterTable(BuildTrails()).ok()) return 1;
  if (!catalog.RegisterTable(BuildTrackingData()).ok()) return 1;
  Engine engine(&catalog);

  // §3 — Filter pruning: candidate trails above 1500m on a marked ridge.
  auto q1 = ScanPlan("trails", TrailPredicate());
  auto r1 = engine.Execute(q1);
  if (!r1.ok()) return 1;
  Report("§3 filter pruning: candidate trails", r1.value());
  for (const auto& row : r1.value().rows) {
    std::printf("  %s / %s\n", row[0].string_value().c_str(),
                row[1].string_value().c_str());
  }

  // §4 — LIMIT pruning: a first glance at alpine animals (Figure 5).
  auto q2 = LimitPlan(ScanPlan("tracking_data", TrackingPredicate()), 3);
  auto r2 = engine.Execute(q2);
  if (!r2.ok()) return 1;
  Report("§4 LIMIT pruning: LIMIT 3 served by the fully-matching partition",
         r2.value());
  std::printf("  limit classification: %s\n", ToString(r2.value().limit_class));

  // §5 — Top-k pruning: best chances of a sighting.
  auto q3 = TopKPlan(ScanPlan("tracking_data", TrackingPredicate()),
                     "num_sightings", /*descending=*/true, 3);
  auto r3 = engine.Execute(q3);
  if (!r3.ok()) return 1;
  Report("§5 top-k pruning: ORDER BY num_sightings DESC LIMIT 3", r3.value());
  for (const auto& row : r3.value().rows) {
    std::printf("  %-12s %-14s sightings=%lld\n", row[0].string_value().c_str(),
                row[1].string_value().c_str(),
                static_cast<long long>(row[3].int64_value()));
  }

  // §6 — Join pruning: the full observatory query. Selective trail filters
  // shrink the build side; its summary prunes tracking_data partitions; the
  // TopK boundary prunes more — "three distinct pruning techniques being
  // used on the tracking_data table" (§6.1).
  auto q4 = TopKPlan(
      JoinPlan(ScanPlan("tracking_data", TrackingPredicate()),
               ScanPlan("trails", TrailPredicate()), "area", "mountain"),
      "num_sightings", /*descending=*/true, 3);
  auto r4 = engine.Execute(q4);
  if (!r4.ok()) return 1;
  Report("§6 the observatory query: filter + join + top-k on one scan",
         r4.value());
  for (const auto& row : r4.value().rows) {
    std::printf("  observe %-14s from %-18s (%lld sightings)\n",
                row[1].string_value().c_str(), row[5].string_value().c_str(),
                static_cast<long long>(row[3].int64_value()));
  }
  return 0;
}
