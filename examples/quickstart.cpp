/// Quickstart: build a table, run a filtered query, inspect pruning stats.
///
///   $ ./build/examples/quickstart
///
/// Demonstrates the three-line happy path of the public API: a Catalog, a
/// plan built with the expression DSL, and Engine::Execute().
#include <cstdio>

#include "exec/engine.h"
#include "expr/builder.h"
#include "storage/catalog.h"
#include "workload/table_gen.h"

using namespace snowprune;  // NOLINT

int main() {
  // 1. Create a table: 100 micro-partitions x 1000 rows, clustered by `key`
  //    (think: event time). Zone maps are computed automatically.
  workload::TableGenConfig cfg;
  cfg.name = "events";
  cfg.num_partitions = 100;
  cfg.rows_per_partition = 1000;
  cfg.layout = workload::Layout::kClustered;
  Catalog catalog;
  if (!catalog.RegisterTable(workload::SyntheticTable(cfg)).ok()) return 1;

  // 2. Build a query: SELECT * FROM events WHERE key BETWEEN 100000 AND
  //    120000 — a ~2% slice of the key domain.
  auto plan = ScanPlan(
      "events", Between(Col("key"), Value(int64_t{100000}),
                        Value(int64_t{120000})));

  // 3. Execute. The engine prunes partitions from zone maps at compile time
  //    and only loads what might match.
  Engine engine(&catalog);
  auto result = engine.Execute(plan);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  const QueryResult& r = result.value();
  std::printf("rows returned:        %zu\n", r.rows.size());
  std::printf("partitions total:     %lld\n",
              static_cast<long long>(r.stats.total_partitions));
  std::printf("pruned by filter:     %lld (%.1f%%)\n",
              static_cast<long long>(r.stats.pruned_by_filter),
              100.0 * r.stats.FilterRatio());
  std::printf("partitions scanned:   %lld\n",
              static_cast<long long>(r.stats.scanned_partitions));
  std::printf("wall time:            %.2f ms\n", r.wall_ms);

  // The same query without pruning, for contrast.
  EngineConfig no_pruning;
  no_pruning.enable_filter_pruning = false;
  Engine slow_engine(&catalog, no_pruning);
  auto slow = slow_engine.Execute(plan);
  if (slow.ok()) {
    std::printf("\nwithout pruning:      %lld partitions scanned, %.2f ms\n",
                static_cast<long long>(slow.value().stats.scanned_partitions),
                slow.value().wall_ms);
  }
  return 0;
}
