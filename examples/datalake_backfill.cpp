/// Data-lake metadata backfill (§8.1): external Parquet-style files may
/// arrive without zone-map metadata. Without it no pruning is possible; the
/// engine can reconstruct it with one full scan and prune every query after
/// that. "Metadata is the cornerstone of pruning."
#include <cstdio>

#include "exec/engine.h"
#include "expr/builder.h"
#include "storage/catalog.h"
#include "workload/table_gen.h"

using namespace snowprune;  // NOLINT

int main() {
  // An Iceberg-style external table: clustered data, but 60% of its files
  // were written by an engine that emitted no min/max statistics.
  workload::TableGenConfig cfg;
  cfg.name = "lake_events";
  cfg.num_partitions = 120;
  cfg.rows_per_partition = 800;
  cfg.layout = workload::Layout::kClustered;
  cfg.seed = 81;
  auto table = workload::SyntheticTable(cfg);
  size_t dropped = table->DropStatsOnFraction(0.6, /*seed=*/7);
  Catalog catalog;
  if (!catalog.RegisterTable(table).ok()) return 1;
  std::printf("external table: %zu partitions, %zu without metadata\n\n",
              table->num_partitions(), dropped);

  Engine engine(&catalog);
  auto query = ScanPlan("lake_events",
                        Between(Col("key"), Value(int64_t{400000}),
                                Value(int64_t{430000})));

  // 1. Query the raw lake: files without stats can never be pruned.
  auto before = engine.Execute(query);
  if (!before.ok()) return 1;
  std::printf("before backfill: pruned %lld / %lld partitions, scanned %lld\n",
              static_cast<long long>(before.value().stats.pruned_by_filter),
              static_cast<long long>(before.value().stats.total_partitions),
              static_cast<long long>(before.value().stats.scanned_partitions));

  // 2. Backfill: one metered full scan per metadata-less file (§8.1 — the
  //    engine "can reconstruct it by performing a full table scan").
  table->ResetMeters();
  size_t backfilled = table->BackfillMissingStats();
  std::printf("\nbackfill pass: reconstructed zone maps for %zu partitions "
              "(%lld loads)\n\n",
              backfilled, static_cast<long long>(table->load_count()));

  // 3. The same query now prunes like a native table.
  table->ResetMeters();
  auto after = engine.Execute(query);
  if (!after.ok()) return 1;
  std::printf("after backfill:  pruned %lld / %lld partitions, scanned %lld\n",
              static_cast<long long>(after.value().stats.pruned_by_filter),
              static_cast<long long>(after.value().stats.total_partitions),
              static_cast<long long>(after.value().stats.scanned_partitions));
  std::printf("\nrows agree: %s (%zu rows)\n",
              before.value().rows.size() == after.value().rows.size() ? "yes"
                                                                      : "NO",
              after.value().rows.size());
  std::printf("break-even: the backfill pays for itself after ~%zu selective "
              "queries\n",
              static_cast<size_t>(1));
  return 0;
}
