/// A security-analytics scenario from the paper's motivation (§3, §4, §5):
/// a threat-detection dashboard over an append-only (time-clustered)
/// connection log. Shows the BI patterns the paper calls out — default
/// LIMITs, top-k "recent log-in attempts", needle-in-haystack IP filters —
/// and how each maps to a pruning technique.
#include <cstdio>

#include "exec/engine.h"
#include "expr/builder.h"
#include "storage/catalog.h"
#include "workload/table_gen.h"

using namespace snowprune;  // NOLINT

namespace {

std::shared_ptr<Table> BuildConnectionLog() {
  // 200 partitions x 2000 rows of connection events; `ts` ascends (append
  // order), `src_ip` is an int-encoded address, `bytes` a measure, `status`
  // a small enum.
  Schema schema({Field{"ts", DataType::kInt64, false},
                 Field{"src_ip", DataType::kInt64, false},
                 Field{"status", DataType::kString, false},
                 Field{"bytes", DataType::kInt64, false}});
  TableBuilder builder("connections", schema, 2000);
  Rng rng(443);
  const char* kStatus[] = {"OK", "OK", "OK", "OK", "DENIED", "TIMEOUT"};
  for (int64_t i = 0; i < 200 * 2000; ++i) {
    (void)builder.AppendRow({
        Value(i),  // event time: naturally clustered
        Value(rng.UniformInt(0, 1 << 24)),
        Value(std::string(kStatus[rng.UniformInt(0, 5)])),
        Value(rng.UniformInt(40, 1500)),
    });
  }
  return builder.Finish();
}

void Show(const char* title, const QueryResult& r) {
  std::printf("%-52s rows=%6zu scanned=%4lld/%-4lld filter=%4lld limit=%4lld "
              "topk=%4lld  %6.2f ms\n",
              title, r.rows.size(),
              static_cast<long long>(r.stats.scanned_partitions),
              static_cast<long long>(r.stats.total_partitions),
              static_cast<long long>(r.stats.pruned_by_filter),
              static_cast<long long>(r.stats.pruned_by_limit),
              static_cast<long long>(r.stats.pruned_by_topk), r.wall_ms);
}

}  // namespace

int main() {
  Catalog catalog;
  if (!catalog.RegisterTable(BuildConnectionLog()).ok()) return 1;
  Engine engine(&catalog);

  std::printf("connection log: 400k events, 200 micro-partitions, clustered "
              "by time\n\n");

  // 1. "Investigate a few connections from a specific time window" (§4's
  //    cybersecurity framing): a needle time filter + LIMIT. Filter pruning
  //    isolates the window; the fully-matching interior partition serves
  //    the LIMIT alone.
  auto investigate = LimitPlan(
      ScanPlan("connections", Between(Col("ts"), Value(int64_t{150000}),
                                      Value(int64_t{158000}))),
      20);
  auto r1 = engine.Execute(investigate);
  if (!r1.ok()) return 1;
  Show("investigate window + LIMIT 20", r1.value());

  // 2. Dashboard tool auto-appending LIMIT 0 to learn the schema (§4.1
  //    footnote): zero partitions read.
  auto schema_probe = LimitPlan(ScanPlan("connections"), 0);
  auto r2 = engine.Execute(schema_probe);
  if (!r2.ok()) return 1;
  Show("BI tool schema probe (LIMIT 0)", r2.value());

  // 3. "Recent log-in attempts" (§5): top-k on event time. The boundary
  //    value plus full-sort processing order reads only the newest
  //    partitions.
  auto recent = TopKPlan(ScanPlan("connections"), "ts", /*descending=*/true,
                         100);
  auto r3 = engine.Execute(recent);
  if (!r3.ok()) return 1;
  Show("recent events (ORDER BY ts DESC LIMIT 100)", r3.value());

  // 4. Recent *denied* connections: top-k above a filter (Figure 7a).
  auto denied = TopKPlan(
      ScanPlan("connections", Eq(Col("status"), Lit("DENIED"))), "ts",
      /*descending=*/true, 50);
  auto r4 = engine.Execute(denied);
  if (!r4.ok()) return 1;
  Show("recent DENIED connections (filter + top-k)", r4.value());

  // 5. The non-prunable shape for contrast: top talkers by total bytes —
  //    ORDER BY an aggregate (§5.2 excludes it from pruning).
  auto top_talkers = TopKPlan(
      AggregatePlan(ScanPlan("connections"), {"src_ip"},
                    {{AggFunc::kSum, "bytes", "total_bytes"}}),
      "total_bytes", /*descending=*/true, 10);
  auto r5 = engine.Execute(top_talkers);
  if (!r5.ok()) return 1;
  Show("top talkers by bytes (agg order: unprunable)", r5.value());

  std::printf("\ntakeaway: time-clustered security logs make filter, LIMIT\n"
              "and top-k pruning nearly free; only aggregate-ordered\n"
              "queries must scan everything.\n");
  return 0;
}
