#!/usr/bin/env python3
"""Tracing-overhead regression gate.

Compares two bench_headline JSON dumps — one plain, one run with
--trace-sample=1 (every rep traced) — and fails if the traced run's
scanned-row-weighted mean ns/row regresses by more than the threshold.

The per-query instrumentation is designed to be a pointer test away from
free when tracing is off and cheap when on (per-operator wrappers time one
Next call per *batch*, not per row), so a large gap here means a hot-path
regression, not noise.

Usage: check_trace_overhead.py PLAIN.json TRACED.json [--threshold=0.05]
"""

import json
import sys


def weighted_ns_per_row(path):
    """Scanned-row-weighted mean ns/row over the serial class sweep."""
    with open(path) as f:
        data = json.load(f)
    classes = data.get("classes")
    if not classes:
        raise SystemExit(f"{path}: no 'classes' section — wrong bench JSON?")
    total_ns = 0.0
    total_rows = 0
    for point in classes:
        rows = int(point["scanned_rows"])
        total_ns += float(point["ns_per_row"]) * rows
        total_rows += rows
    if total_rows == 0:
        raise SystemExit(f"{path}: zero scanned rows across all classes")
    return total_ns / total_rows


def main(argv):
    threshold = 0.05
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--threshold="):
            threshold = float(arg.split("=", 1)[1])
        else:
            paths.append(arg)
    if len(paths) != 2:
        raise SystemExit(__doc__)
    plain_path, traced_path = paths

    plain = weighted_ns_per_row(plain_path)
    traced = weighted_ns_per_row(traced_path)
    overhead = (traced - plain) / plain
    print(f"plain:  {plain:8.2f} ns/row  ({plain_path})")
    print(f"traced: {traced:8.2f} ns/row  ({traced_path})")
    print(f"overhead: {100.0 * overhead:+.1f}% (threshold +{100.0 * threshold:.0f}%)")
    if overhead > threshold:
        print("FAIL: tracing overhead exceeds threshold — the traced hot "
              "path regressed")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
