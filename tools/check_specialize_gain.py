#!/usr/bin/env python3
"""Expression-specialization perf gate.

The bytecode tier (src/expr/jit/) exists to make hot filter shapes cheaper
than the vectorized interpreter; if a specialized sweep is ever *slower*
than the interpreted one on the shapes it natively compiles, the tier is
costing instead of paying and the change must not land.

Reads bench_headline JSON and fails unless, for every gated query class,
  specialized ns/row <= interpreted ns/row * (1 + tolerance).
The gated classes are the sweep's natively-compiled filter shapes
(scan_filter's BETWEEN and arith_filter's arithmetic compare); the other
classes are dominated by non-filter work and stay informational.

Usage:
  check_specialize_gain.py DUAL.json [--tolerance=0.10]
      DUAL.json from a default (--specialize=both) run: compares the
      "classes" (interpreted) and "classes_specialized" arrays.
  check_specialize_gain.py OFF.json ON.json [--tolerance=0.10]
      Two single-mode runs (--specialize=off / --specialize=on): compares
      OFF.json's "classes" against ON.json's "classes".

The default tolerance absorbs scheduler noise on smoke-sized CI runs; the
expectation on full-size runs is a clear win, not parity.
"""

import json
import sys

GATED_CLASSES = ("scan_filter", "arith_filter")


def load_classes(path, key):
    with open(path) as f:
        data = json.load(f)
    classes = data.get(key)
    if not classes:
        raise SystemExit(f"{path}: no '{key}' section — run bench_headline "
                         "--json with the matching --specialize mode")
    return {point["class"]: float(point["ns_per_row"]) for point in classes}


def main(argv):
    tolerance = 0.10
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--tolerance="):
            tolerance = float(arg.split("=", 1)[1])
        else:
            paths.append(arg)
    if len(paths) == 1:
        interpreted = load_classes(paths[0], "classes")
        specialized = load_classes(paths[0], "classes_specialized")
    elif len(paths) == 2:
        interpreted = load_classes(paths[0], "classes")
        specialized = load_classes(paths[1], "classes")
    else:
        raise SystemExit(__doc__)

    failed = False
    for cls in sorted(set(interpreted) | set(specialized)):
        off = interpreted.get(cls)
        on = specialized.get(cls)
        if off is None or on is None:
            raise SystemExit(f"class {cls}: present in only one sweep")
        gated = cls in GATED_CLASSES
        verdict = ""
        if gated and off > 0 and on > off * (1.0 + tolerance):
            verdict = "  <-- FAIL: specialization made this slower"
            failed = True
        ratio = on / off if off > 0 else float("nan")
        print(f"{cls:<14} interpreted {off:8.1f} ns/row   "
              f"specialized {on:8.1f} ns/row   ratio {ratio:5.2f}"
              f"{'   [gated]' if gated else ''}{verdict}")

    if failed:
        print(f"\nFAIL: specialized ns/row exceeds interpreted by more than "
              f"{tolerance:.0%} on a gated class")
        return 1
    print(f"\nOK: specialized filter classes within {tolerance:.0%} of "
          "interpreted or faster")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
