#!/usr/bin/env python3
"""Schema check for the MetricsRegistry snapshot embedded in bench JSON.

Reads a bench_service --json dump, extracts its "metrics" object (the
verbatim MetricsRegistry::SnapshotJson() output), and verifies:

  * the three sections exist with the right value shapes
    (counters/gauges: name -> number; histograms: name -> object),
  * every histogram has count/sum/buckets, bucket bounds strictly ascend
    and end with "+Inf", and the (non-cumulative) bucket counts sum to the
    histogram's count,
  * the instrument names the engine registers are all present — a missing
    name means someone's wiring silently stopped firing.

Usage: check_metrics_schema.py BENCH_SERVICE.json
"""

import json
import sys

REQUIRED_COUNTERS = [
    "pool.tasks",
    "predcache.hits",
    "predcache.misses",
    "predcache.coalesced_waits",
    "service.submitted",
    "service.rejected",
    "service.completed",
    "service.ok",
    "service.failed",
    "service.cancelled",
    "service.deadline_exceeded",
    "service.shed_expired",
    "shard.queries_sharded",
    "shard.scatter_fanout",
    "shard.shards_pruned",
    "shard.retries",
    "shard.retry_exhausted",
    "failpoint.trips",
    "jit.compiles",
    "jit.hits",
    "jit.fallbacks",
    "jit.invalidations",
]
REQUIRED_GAUGES = [
    "pool.queue_depth",
    "pipeline.stage_tasks",
    "pipeline.barrier_tasks",
]
REQUIRED_HISTOGRAMS = [
    "pool.task_queue_us",
    "service.queue_ms",
    "service.exec_ms",
]


def fail(msg):
    print(f"FAIL: {msg}")
    sys.exit(1)


def check_histogram(name, hist):
    for key in ("count", "sum", "buckets"):
        if key not in hist:
            fail(f"histogram {name}: missing '{key}'")
    buckets = hist["buckets"]
    if not isinstance(buckets, list) or not buckets:
        fail(f"histogram {name}: 'buckets' must be a non-empty array")
    prev_le = None
    total = 0
    for i, bucket in enumerate(buckets):
        le = bucket.get("le")
        count = bucket.get("count")
        if not isinstance(count, int) or count < 0:
            fail(f"histogram {name} bucket {i}: bad count {count!r}")
        total += count
        last = i == len(buckets) - 1
        if last:
            if le != "+Inf":
                fail(f"histogram {name}: final bucket le={le!r}, want '+Inf'")
        else:
            if not isinstance(le, (int, float)):
                fail(f"histogram {name} bucket {i}: le={le!r} is not a number")
            if prev_le is not None and le <= prev_le:
                fail(f"histogram {name}: bucket bounds not strictly "
                     f"ascending at index {i} ({prev_le} -> {le})")
            prev_le = le
    if total != hist["count"]:
        fail(f"histogram {name}: bucket counts sum to {total}, "
             f"count says {hist['count']}")


def main(argv):
    if len(argv) != 2:
        raise SystemExit(__doc__)
    with open(argv[1]) as f:
        data = json.load(f)
    metrics = data.get("metrics")
    if metrics is None:
        fail(f"{argv[1]}: no 'metrics' key — bench_service not run "
             "with --json?")

    for section in ("counters", "gauges", "histograms"):
        if section not in metrics:
            fail(f"metrics snapshot missing section '{section}'")

    for section, required in (("counters", REQUIRED_COUNTERS),
                              ("gauges", REQUIRED_GAUGES)):
        values = metrics[section]
        for name, value in values.items():
            if not isinstance(value, (int, float)):
                fail(f"{section}[{name}] = {value!r} is not a number")
        for name in required:
            if name not in values:
                fail(f"{section}: required instrument '{name}' absent")

    histograms = metrics["histograms"]
    for name, hist in histograms.items():
        if not isinstance(hist, dict):
            fail(f"histograms[{name}] is not an object")
        check_histogram(name, hist)
    for name in REQUIRED_HISTOGRAMS:
        if name not in histograms:
            fail(f"histograms: required instrument '{name}' absent")

    print(f"OK: {len(metrics['counters'])} counters, "
          f"{len(metrics['gauges'])} gauges, "
          f"{len(histograms)} histograms, all shapes valid")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
