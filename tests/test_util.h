#ifndef SNOWPRUNE_TESTS_TEST_UTIL_H_
#define SNOWPRUNE_TESTS_TEST_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "exec/engine.h"
#include "expr/evaluator.h"
#include "expr/expr.h"
#include "storage/table.h"

namespace snowprune {
namespace testing_util {

/// Serializes a result's row stream so byte-identity across configurations
/// is a string comparison. Type tags distinguish e.g. int64 1 from bool
/// true and from "1"; NULLs (which have no type — Value::type() asserts)
/// get an out-of-band tag.
inline std::string Serialize(const QueryResult& r) {
  std::string s;
  for (const auto& row : r.rows) {
    for (const auto& v : row) {
      s += v.is_null() ? "null" : std::to_string(static_cast<int>(v.type()));
      s += ':';
      s += v.ToString();
      s += ',';
    }
    s += '\n';
  }
  return s;
}

/// Compares every deterministic PruningStats counter (speculative_loads is
/// the one legitimately nondeterministic field under parallel execution).
/// Returns an empty string on match, a description of the first divergence
/// otherwise — usable as `EXPECT_EQ(DiffStats(a, b), "")`.
inline std::string DiffStats(const PruningStats& a, const PruningStats& b) {
  auto diff = [](const char* name, int64_t x, int64_t y) {
    return std::string(name) + ": " + std::to_string(x) +
           " != " + std::to_string(y);
  };
  if (a.total_partitions != b.total_partitions) {
    return diff("total_partitions", a.total_partitions, b.total_partitions);
  }
  if (a.pruned_by_filter != b.pruned_by_filter) {
    return diff("pruned_by_filter", a.pruned_by_filter, b.pruned_by_filter);
  }
  if (a.pruned_by_limit != b.pruned_by_limit) {
    return diff("pruned_by_limit", a.pruned_by_limit, b.pruned_by_limit);
  }
  if (a.pruned_by_join != b.pruned_by_join) {
    return diff("pruned_by_join", a.pruned_by_join, b.pruned_by_join);
  }
  if (a.pruned_by_topk != b.pruned_by_topk) {
    return diff("pruned_by_topk", a.pruned_by_topk, b.pruned_by_topk);
  }
  if (a.scanned_partitions != b.scanned_partitions) {
    return diff("scanned_partitions", a.scanned_partitions,
                b.scanned_partitions);
  }
  if (a.scanned_rows != b.scanned_rows) {
    return diff("scanned_rows", a.scanned_rows, b.scanned_rows);
  }
  return "";
}

/// Builds a table from boxed rows, cutting partitions at
/// `rows_per_partition`.
inline std::shared_ptr<Table> MakeTable(
    const std::string& name, const Schema& schema,
    const std::vector<std::vector<Value>>& rows, size_t rows_per_partition) {
  TableBuilder builder(name, schema, rows_per_partition);
  for (const auto& row : rows) {
    Status s = builder.AppendRow(row);
    if (!s.ok()) std::abort();
  }
  return builder.Finish();
}

/// Brute-force oracle: number of rows matching `predicate` per partition.
/// The predicate must be bound to the table's schema.
inline std::vector<int64_t> MatchCountsPerPartition(const Table& table,
                                                    const ExprPtr& predicate) {
  std::vector<int64_t> counts;
  for (size_t pid = 0; pid < table.num_partitions(); ++pid) {
    const MicroPartition& part =
        table.partition_metadata(static_cast<PartitionId>(pid));
    counts.push_back(predicate ? CountMatches(*predicate, part)
                               : part.row_count());
  }
  return counts;
}

/// A compact single-column int64 table: `partitions` lists each partition's
/// values in order.
inline std::shared_ptr<Table> IntTable(
    const std::string& name, const std::string& column,
    const std::vector<std::vector<int64_t>>& partitions) {
  Schema schema({Field{column, DataType::kInt64, true}});
  size_t max_rows = 1;
  for (const auto& p : partitions) max_rows = std::max(max_rows, p.size());
  TableBuilder builder(name, schema, max_rows);
  std::shared_ptr<Table> table = std::make_shared<Table>(name, schema);
  for (const auto& p : partitions) {
    ColumnVector col(DataType::kInt64);
    for (int64_t v : p) col.AppendInt64(v);
    table->AppendPartition(
        MicroPartition(static_cast<PartitionId>(table->num_partitions()),
                       {std::move(col)}));
  }
  return table;
}

}  // namespace testing_util
}  // namespace snowprune

#endif  // SNOWPRUNE_TESTS_TEST_UTIL_H_
