#ifndef SNOWPRUNE_TESTS_TEST_UTIL_H_
#define SNOWPRUNE_TESTS_TEST_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "expr/evaluator.h"
#include "expr/expr.h"
#include "storage/table.h"

namespace snowprune {
namespace testing_util {

/// Builds a table from boxed rows, cutting partitions at
/// `rows_per_partition`.
inline std::shared_ptr<Table> MakeTable(
    const std::string& name, const Schema& schema,
    const std::vector<std::vector<Value>>& rows, size_t rows_per_partition) {
  TableBuilder builder(name, schema, rows_per_partition);
  for (const auto& row : rows) {
    Status s = builder.AppendRow(row);
    if (!s.ok()) std::abort();
  }
  return builder.Finish();
}

/// Brute-force oracle: number of rows matching `predicate` per partition.
/// The predicate must be bound to the table's schema.
inline std::vector<int64_t> MatchCountsPerPartition(const Table& table,
                                                    const ExprPtr& predicate) {
  std::vector<int64_t> counts;
  for (size_t pid = 0; pid < table.num_partitions(); ++pid) {
    const MicroPartition& part =
        table.partition_metadata(static_cast<PartitionId>(pid));
    counts.push_back(predicate ? CountMatches(*predicate, part)
                               : part.row_count());
  }
  return counts;
}

/// A compact single-column int64 table: `partitions` lists each partition's
/// values in order.
inline std::shared_ptr<Table> IntTable(
    const std::string& name, const std::string& column,
    const std::vector<std::vector<int64_t>>& partitions) {
  Schema schema({Field{column, DataType::kInt64, true}});
  size_t max_rows = 1;
  for (const auto& p : partitions) max_rows = std::max(max_rows, p.size());
  TableBuilder builder(name, schema, max_rows);
  std::shared_ptr<Table> table = std::make_shared<Table>(name, schema);
  for (const auto& p : partitions) {
    ColumnVector col(DataType::kInt64);
    for (int64_t v : p) col.AppendInt64(v);
    table->AppendPartition(
        MicroPartition(static_cast<PartitionId>(table->num_partitions()),
                       {std::move(col)}));
  }
  return table;
}

}  // namespace testing_util
}  // namespace snowprune

#endif  // SNOWPRUNE_TESTS_TEST_UTIL_H_
