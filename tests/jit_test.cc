// Specialization-tier tests: bytecode compiler shape coverage, executor
// exactness against the interpreter on crafted edge-case data (overflow,
// div-by-zero, NULLs, NaN), value-program semantics against the scalar
// evaluator, promotion concurrency (one compile under N threads — the TSan
// matrix runs this), and DML invalidation accounting.

#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/trace.h"
#include "core/predicate_cache.h"
#include "exec/engine.h"
#include "exec/plan.h"
#include "exec/profile.h"
#include "expr/builder.h"
#include "expr/evaluator.h"
#include "expr/jit/bytecode.h"
#include "expr/jit/compiler.h"
#include "expr/jit/executor.h"
#include "storage/catalog.h"
#include "storage/table.h"
#include "tests/test_util.h"

namespace snowprune {
namespace {

using testing_util::MakeTable;

Schema NumericSchema() {
  return Schema({Field{"a", DataType::kInt64, false},
                 Field{"b", DataType::kInt64, true},
                 Field{"x", DataType::kFloat64, true},
                 Field{"s", DataType::kString, true}});
}

/// A table exercising every numeric edge the executor special-cases:
/// int64 overflow boundaries, zero divisors, NULLs in both lanes, NaN and
/// infinities, plus strings to force per-term fallbacks.
std::shared_ptr<Table> EdgeTable() {
  const int64_t kMax = std::numeric_limits<int64_t>::max();
  const int64_t kMin = std::numeric_limits<int64_t>::min();
  const double kNan = std::numeric_limits<double>::quiet_NaN();
  const double kInf = std::numeric_limits<double>::infinity();
  std::vector<std::vector<Value>> rows;
  const std::vector<int64_t> as = {0, 1, -1, 7, kMax, kMin, kMax - 1, 100};
  const std::vector<Value> bs = {Value(int64_t{0}), Value::Null(),
                                 Value(int64_t{3}), Value(kMax),
                                 Value(int64_t{-5}), Value(int64_t{2}),
                                 Value::Null(), Value(kMin + 1)};
  const std::vector<Value> xs = {Value(kNan), Value(0.5), Value::Null(),
                                 Value(kInf), Value(-kInf), Value(-0.0),
                                 Value(1e18), Value(3.25)};
  for (size_t i = 0; i < 64; ++i) {
    rows.push_back({Value(as[i % as.size()]), bs[(i / 3) % bs.size()],
                    xs[(i / 5) % xs.size()],
                    i % 4 == 0 ? Value::Null()
                               : Value("row" + std::to_string(i % 6))});
  }
  return MakeTable("edges", NumericSchema(), rows, 9);
}

ExprPtr Bind(ExprPtr expr, const Schema& schema) {
  Status s = BindExpr(expr, schema);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return expr;
}

/// Asserts the compiled program selects byte-identically to the vectorized
/// interpreter on every partition of `table`.
void ExpectSelectionIdentical(const std::shared_ptr<Table>& table,
                              const ExprPtr& predicate) {
  jit::CompileResult compiled =
      jit::CompilePredicate(predicate, table->schema());
  ASSERT_NE(compiled.program, nullptr);
  EvalScratch scratch;
  for (size_t pid = 0; pid < table->num_partitions(); ++pid) {
    const MicroPartition& part =
        table->partition_metadata(static_cast<PartitionId>(pid));
    std::vector<uint32_t> jit_sel;
    ASSERT_TRUE(
        jit::ExecuteSelection(*compiled.program, part, &jit_sel, &scratch));
    std::vector<uint32_t> interp_sel;
    ComputeSelection(*predicate, part, &interp_sel, &scratch);
    EXPECT_EQ(jit_sel, interp_sel) << "partition " << pid;
    EXPECT_EQ(scratch.term_depth, 0u);
    EXPECT_EQ(scratch.lane_depth, 0u);
    EXPECT_EQ(scratch.row_depth, 0u);
  }
}

TEST(JitCompiler, NativeShapesCompile) {
  const Schema schema = NumericSchema();
  const std::vector<ExprPtr> shapes = {
      Bind(Gt(Col("a"), Lit(int64_t{10})), schema),
      Bind(Gt(Add(Mul(Col("a"), Lit(int64_t{3})), Col("b")),
              Lit(int64_t{500})),
           schema),
      Bind(And({Ge(Col("a"), Lit(int64_t{0})), Lt(Col("x"), Lit(2.5))}),
           schema),
      Bind(Or({Eq(Col("b"), Lit(int64_t{3})), IsNull(Col("x"))}), schema),
      Bind(In(Col("a"), {Value(int64_t{1}), Value(int64_t{7}), Value(2.0)}),
           schema),
      Bind(Not(Le(Col("a"), Col("b"))), schema),
      Bind(Gt(If(Gt(Col("a"), Lit(int64_t{0})), Col("a"), Col("b")),
              Lit(int64_t{5})),
           schema),
      Bind(Gt(Div(Col("x"), Col("b")), Lit(0.25)), schema),
  };
  for (const ExprPtr& p : shapes) {
    jit::CompileResult compiled = jit::CompilePredicate(p, schema);
    ASSERT_NE(compiled.program, nullptr);
    EXPECT_EQ(compiled.reason, jit::RejectReason::kNone);
    EXPECT_EQ(compiled.fallback_terms, 0);
    EXPECT_FALSE(compiled.program->code.empty());
  }
}

TEST(JitCompiler, StringTermsFallBackPerTerm) {
  const Schema schema = NumericSchema();
  // LIKE cannot compile, but the AND still should — with one fallback term
  // driven through the vectorized interpreter per batch.
  ExprPtr mixed = Bind(
      And({Gt(Col("a"), Lit(int64_t{2})), Like(Col("s"), "row%")}), schema);
  jit::CompileResult compiled = jit::CompilePredicate(mixed, schema);
  ASSERT_NE(compiled.program, nullptr);
  EXPECT_EQ(compiled.fallback_terms, 1);
  EXPECT_EQ(compiled.program->fallback_terms.size(), 1u);

  // A predicate with no native structure at all is rejected whole: running
  // it as bytecode would only re-drive the interpreter with extra overhead.
  ExprPtr opaque = Bind(Like(Col("s"), "row%"), schema);
  jit::CompileResult rejected = jit::CompilePredicate(opaque, schema);
  EXPECT_EQ(rejected.program, nullptr);
  EXPECT_EQ(rejected.reason, jit::RejectReason::kNoNativeStructure);
}

TEST(JitCompiler, RegisterCapRejectsTooComplex) {
  const Schema schema = NumericSchema();
  // Nested IF tower in predicate position: every level holds its condition
  // mask live while the then-branch subtree compiles, so mask-register
  // demand grows with nesting depth past the executor's cap.
  ExprPtr deep = Gt(Col("a"), Lit(int64_t{0}));
  for (int i = 0; i < 80; ++i) {
    deep = If(Gt(Col("b"), Lit(int64_t{i})), deep,
              Le(Col("a"), Lit(int64_t{i})));
  }
  deep = Bind(deep, schema);
  jit::CompileResult compiled = jit::CompilePredicate(deep, schema);
  EXPECT_EQ(compiled.program, nullptr);
  EXPECT_EQ(compiled.reason, jit::RejectReason::kTooComplex);
}

TEST(JitExecutor, MatchesInterpreterOnNumericEdges) {
  auto table = EdgeTable();
  const Schema& schema = table->schema();
  const std::vector<ExprPtr> predicates = {
      // int64 overflow boundary: a*3+b overflows for kMax rows, falling to
      // double per row exactly like NumericLanes.
      Bind(Gt(Add(Mul(Col("a"), Lit(int64_t{3})), Col("b")),
              Lit(int64_t{500000})),
           schema),
      // Division by zero divisor rows -> NULL, not a crash or a match.
      Bind(Gt(Div(Col("a"), Col("b")), Lit(int64_t{2})), schema),
      // NaN compares: every ordering against NaN must behave exactly like
      // the interpreter's CmpDouble (x<y / x>y tests).
      Bind(Le(Col("x"), Lit(0.5)), schema),
      Bind(Eq(Col("x"), Col("x")), schema),
      Bind(Ne(Col("x"), Lit(0.0)), schema),
      // Mixed int/double comparison and arithmetic.
      Bind(Lt(Add(Col("a"), Col("x")), Lit(100.0)), schema),
      // Subtraction underflow (kMin - positive).
      Bind(Lt(Sub(Col("a"), Lit(int64_t{5})), Lit(int64_t{0})), schema),
      // Connectives with NULL-heavy terms and short-circuit jumps.
      Bind(And({Gt(Col("a"), Lit(int64_t{-10})), Le(Col("b"), Lit(int64_t{7})),
                Ge(Col("x"), Lit(-1.0))}),
           schema),
      Bind(Or({IsNull(Col("b")), Gt(Col("a"), Col("b")),
               Lt(Col("x"), Lit(0.0))}),
           schema),
      Bind(NotTrue(Gt(Col("a"), Lit(int64_t{50}))), schema),
      // IS NULL / IS NOT NULL over both lanes.
      Bind(And({IsNotNull(Col("x")), IsNull(Col("b"))}), schema),
      // IN over a mixed numeric list (the 2.0 candidate matches a==2 rows).
      Bind(In(Col("a"), {Value(int64_t{7}), Value(2.0), Value(int64_t{0})}),
           schema),
      // IF in value position splitting on a nullable condition.
      Bind(Gt(If(IsNull(Col("b")), Lit(int64_t{-1}), Col("b")),
              Lit(int64_t{1})),
           schema),
      // Per-term fallback (string) merged with native terms.
      Bind(And({Gt(Col("a"), Lit(int64_t{0})), StartsWith(Col("s"), "row")}),
           schema),
      Bind(Or({Like(Col("s"), "%5"), Le(Col("a"), Lit(int64_t{1}))}), schema),
  };
  for (size_t i = 0; i < predicates.size(); ++i) {
    SCOPED_TRACE("predicate " + std::to_string(i));
    ExpectSelectionIdentical(table, predicates[i]);
  }
}

TEST(JitExecutor, ValueProgramMatchesScalarOracle) {
  auto table = EdgeTable();
  const Schema& schema = table->schema();
  const std::vector<ExprPtr> exprs = {
      Bind(Add(Mul(Col("a"), Lit(int64_t{3})), Col("b")), schema),
      Bind(Div(Col("x"), Col("b")), schema),
      Bind(If(Gt(Col("a"), Lit(int64_t{0})), Add(Col("a"), Col("x")),
              Sub(Col("b"), Lit(int64_t{1}))),
           schema),
  };
  EvalScratch scratch;
  for (const ExprPtr& e : exprs) {
    jit::CompileResult compiled = jit::CompileValueProgram(e, schema);
    ASSERT_NE(compiled.program, nullptr);
    ASSERT_GE(compiled.program->root_value_reg, 0);
    for (size_t pid = 0; pid < table->num_partitions(); ++pid) {
      const MicroPartition& part =
          table->partition_metadata(static_cast<PartitionId>(pid));
      NumericLanes lanes;
      ASSERT_TRUE(jit::ExecuteValue(*compiled.program, part, &lanes, &scratch));
      for (size_t r = 0; r < part.row_count(); ++r) {
        const Value v = EvalScalar(*e, part, r);
        if (v.is_null()) {
          EXPECT_EQ(lanes.kind[r], kLaneNull) << "row " << r;
        } else if (lanes.kind[r] == kLaneInt64) {
          ASSERT_TRUE(v.is_int64()) << "row " << r;
          EXPECT_EQ(lanes.i64[r], v.int64_value()) << "row " << r;
        } else {
          ASSERT_EQ(lanes.kind[r], kLaneDouble) << "row " << r;
          ASSERT_TRUE(v.is_float64()) << "row " << r;
          const double got = lanes.f64[r];
          const double want = v.float64_value();
          if (std::isnan(want)) {
            EXPECT_TRUE(std::isnan(got)) << "row " << r;
          } else {
            EXPECT_EQ(got, want) << "row " << r;
          }
        }
      }
    }
  }
}

TEST(JitExecutor, ColumnDriftFallsBackToInterpreter) {
  auto table = EdgeTable();
  ExprPtr p = Bind(Gt(Col("a"), Lit(int64_t{3})), table->schema());
  jit::CompileResult compiled = jit::CompilePredicate(p, table->schema());
  ASSERT_NE(compiled.program, nullptr);
  // A partition whose column layout does not satisfy the program's reqs
  // (wrong arity) must be refused, not misread.
  ColumnVector only(DataType::kFloat64);
  only.AppendFloat64(1.0);
  MicroPartition drifted(0, {std::move(only)});
  std::vector<uint32_t> selection{99};
  EvalScratch scratch;
  jit::CompiledPredicate widened = *compiled.program;
  widened.schema_columns = 1;
  widened.column_reqs[0].index = 0;  // exists, but float64 != int64 req
  EXPECT_FALSE(jit::ExecuteSelection(widened, drifted, &selection, &scratch));
}

TEST(JitPromotion, ConcurrentPromotionCompilesExactlyOnce) {
  auto table = EdgeTable();
  ExprPtr p = Bind(Gt(Col("a"), Lit(int64_t{3})), table->schema());
  PredicateCache cache;
  cache.Insert("fp", *table, "a", {0, 1});
  const int64_t compiles_before = jit::Counters().compiles->Value();
  std::atomic<int> callback_runs{0};
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<std::shared_ptr<const jit::CompiledPredicate>> got(kThreads);
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      got[t] = cache.GetOrCompileProgram("fp", *table, [&]() {
        callback_runs.fetch_add(1, std::memory_order_relaxed);
        jit::CompileResult compiled =
            jit::CompilePredicate(p, table->schema());
        if (compiled.program != nullptr) {
          compiled.program->table_instance = table->instance_id();
        }
        return std::shared_ptr<const jit::CompiledPredicate>(
            std::move(compiled.program));
      });
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(callback_runs.load(), 1);
  EXPECT_EQ(jit::Counters().compiles->Value() - compiles_before, 1);
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_NE(got[t], nullptr);
    EXPECT_EQ(got[t], got[0]);  // all threads share the one program
  }
}

TEST(JitPromotion, NoteHitCountsAndDeclineIsSticky) {
  auto table = EdgeTable();
  PredicateCache cache;
  EXPECT_EQ(cache.NoteHit("absent"), 0);
  cache.Insert("fp", *table, "a", {0});
  EXPECT_EQ(cache.NoteHit("fp"), 1);
  EXPECT_EQ(cache.NoteHit("fp"), 2);
  int calls = 0;
  auto decline = [&]() {
    ++calls;
    return std::shared_ptr<const jit::CompiledPredicate>();
  };
  EXPECT_EQ(cache.GetOrCompileProgram("fp", *table, decline), nullptr);
  EXPECT_EQ(cache.GetOrCompileProgram("fp", *table, decline), nullptr);
  EXPECT_EQ(calls, 1);  // the failed promotion is remembered
}

TEST(JitInvalidation, DmlAndInstanceMismatchDropPrograms) {
  auto table = EdgeTable();
  ExprPtr p = Bind(Gt(Col("a"), Lit(int64_t{3})), table->schema());
  auto compile = [&](const Table& against) {
    jit::CompileResult compiled = jit::CompilePredicate(p, against.schema());
    compiled.program->table_instance = against.instance_id();
    return std::shared_ptr<const jit::CompiledPredicate>(
        std::move(compiled.program));
  };
  PredicateCache cache;
  cache.Insert("fp", *table, "a", {0, 1});
  ASSERT_NE(cache.GetOrCompileProgram("fp", *table, [&]() {
    return compile(*table);
  }), nullptr);

  // UPDATE on the order column erases the entry; its program counts as
  // invalidated.
  const int64_t invalidations_before = jit::Counters().invalidations->Value();
  cache.OnUpdate(*table, "a");
  EXPECT_EQ(jit::Counters().invalidations->Value() - invalidations_before, 1);
  EXPECT_EQ(cache.GetProgram("fp", *table), nullptr);

  // Re-populate, then swap the table version under the same name: the
  // program's instance claim no longer holds, so the lookup drops it (and
  // counts the drop) instead of serving stale bytecode.
  cache.Insert("fp", *table, "a", {0, 1});
  ASSERT_NE(cache.GetOrCompileProgram("fp", *table, [&]() {
    return compile(*table);
  }), nullptr);
  auto replacement = EdgeTable();  // fresh instance_id, same name/schema
  const int64_t before_swap = jit::Counters().invalidations->Value();
  EXPECT_EQ(cache.GetProgram("fp", *replacement), nullptr);
  EXPECT_EQ(jit::Counters().invalidations->Value() - before_swap, 1);
  // A promotion against the new instance compiles fresh.
  ASSERT_NE(cache.GetOrCompileProgram("fp", *replacement, [&]() {
    return compile(*replacement);
  }), nullptr);
}

TEST(JitEngine, EagerSpecializationIsByteIdenticalAndAttributed) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterTable(EdgeTable()).ok());
  PlanPtr plan = ScanPlan(
      "edges", Gt(Add(Mul(Col("a"), Lit(int64_t{3})), Col("b")),
                  Lit(int64_t{50})));

  EngineConfig off;
  off.exec.specialize = false;
  off.exec.num_threads = 1;
  Engine interpreted(&catalog, off);
  auto base = interpreted.Execute(plan, nullptr);
  ASSERT_TRUE(base.ok());

  EngineConfig on;
  on.exec.specialize = true;
  on.exec.specialize_after = 0;  // eager
  on.exec.num_threads = 1;
  Engine specialized(&catalog, on);
  ExecuteOptions opts;
  Trace trace;
  opts.trace = &trace;
  auto fast = specialized.Execute(plan, opts);
  ASSERT_TRUE(fast.ok());

  EXPECT_EQ(testing_util::Serialize(base.value()),
            testing_util::Serialize(fast.value()));
  EXPECT_EQ(testing_util::DiffStats(base.value().stats, fast.value().stats),
            "");

  // EXPLAIN ANALYZE attribution: the scan node reports how many batches ran
  // specialized, and the compile span has a compile.specialize child.
  ASSERT_NE(fast.value().profile, nullptr);
  EXPECT_NE(fast.value().profile->ToText().find("[specialized"),
            std::string::npos)
      << fast.value().profile->ToText();
  bool specialize_span = false;
  for (const TraceSpan& span : trace.spans()) {
    if (span.name == "compile.specialize") specialize_span = true;
  }
  EXPECT_TRUE(specialize_span);
}

}  // namespace
}  // namespace snowprune
