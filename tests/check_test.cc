// Tests for the SNOW_CHECK / SNOW_DCHECK invariant layer (common/check.h):
// pass paths are side-effect-exact (operands evaluated exactly once),
// failure paths abort with the expression and operand values on stderr, and
// release-mode DCHECKs compile their operands without evaluating them.

#include "common/check.h"

#include <cstdint>
#include <string>

#include <gtest/gtest.h>

namespace snowprune {
namespace {

TEST(CheckTest, PassingChecksAreNoOps) {
  SNOW_CHECK(true);
  SNOW_CHECK(1 + 1 == 2);
  SNOW_CHECK_EQ(4, 4);
  SNOW_CHECK_NE(4, 5);
  SNOW_CHECK_LT(4, 5);
  SNOW_CHECK_LE(4, 4);
  SNOW_CHECK_GT(5, 4);
  SNOW_CHECK_GE(5, 5);
}

TEST(CheckTest, OperandsEvaluateExactlyOnce) {
  int a = 0;
  int b = 10;
  SNOW_CHECK_LT(++a, ++b);
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 11);
  SNOW_CHECK(++a == 2);
  EXPECT_EQ(a, 2);
}

TEST(CheckTest, WorksOnMixedValueCategories) {
  // The operand capture is auto&&: prvalues, lvalues, and const refs must
  // all bind.
  const int64_t lhs = 7;
  SNOW_CHECK_EQ(lhs, 7);
  SNOW_CHECK_LE(lhs, static_cast<int64_t>(8));
  std::string s = "abc";
  SNOW_CHECK_EQ(s, "abc");
}

TEST(CheckDeathTest, CheckFailureAbortsWithExpression) {
  EXPECT_DEATH(SNOW_CHECK(2 + 2 == 5), "SNOW_CHECK\\(2 \\+ 2 == 5\\)");
}

TEST(CheckDeathTest, ComparisonFailureReportsBothOperands) {
  // The message carries the stringified expression and both runtime values
  // — the part that makes a fuzz-run failure diagnosable from the log.
  const int64_t total = 3;
  const int64_t pruned = 5;
  EXPECT_DEATH(SNOW_CHECK_LE(pruned, total),
               "SNOW_CHECK\\(pruned <= total\\).*lhs = 5.*rhs = 3");
}

TEST(CheckDeathTest, EveryComparisonFlavorDies) {
  EXPECT_DEATH(SNOW_CHECK_EQ(1, 2), "1 == 2");
  EXPECT_DEATH(SNOW_CHECK_NE(3, 3), "3 != 3");
  EXPECT_DEATH(SNOW_CHECK_LT(2, 2), "2 < 2");
  EXPECT_DEATH(SNOW_CHECK_LE(3, 2), "3 <= 2");
  EXPECT_DEATH(SNOW_CHECK_GT(2, 2), "2 > 2");
  EXPECT_DEATH(SNOW_CHECK_GE(2, 3), "2 >= 3");
}

#if SNOW_DCHECK_IS_ON

TEST(CheckDeathTest, DebugDChecksAreLive) {
  SNOW_DCHECK(true);
  SNOW_DCHECK_EQ(1, 1);
  EXPECT_DEATH(SNOW_DCHECK(false), "SNOW_CHECK\\(false\\)");
  EXPECT_DEATH(SNOW_DCHECK_GE(1, 2), "1 >= 2");
}

TEST(CheckTest, DebugDCheckEvaluatesOperandsOnce) {
  int n = 0;
  SNOW_DCHECK(++n > 0);
  EXPECT_EQ(n, 1);
  int a = 0, b = 0;
  SNOW_DCHECK_LE(++a, ++b + 1);
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 1);
}

#else  // release build: DCHECKs compile but never evaluate.

TEST(CheckTest, ReleaseDChecksEvaluateNothing) {
  int n = 0;
  SNOW_DCHECK(++n > 0);          // would set n = 1 if evaluated
  SNOW_DCHECK(false);            // would abort if evaluated
  SNOW_DCHECK_EQ(++n, 99);       // would abort (and bump n) if evaluated
  SNOW_DCHECK_LT(++n, -1);
  EXPECT_EQ(n, 0);
}

#endif  // SNOW_DCHECK_IS_ON

}  // namespace
}  // namespace snowprune
