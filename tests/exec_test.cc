#include <gtest/gtest.h>

#include <limits>

#include "exec/column_batch.h"
#include "exec/engine.h"
#include "exec/row_eval.h"
#include "exec/scan_op.h"
#include "expr/builder.h"
#include "expr/evaluator.h"
#include "test_util.h"
#include "workload/table_gen.h"

namespace snowprune {
namespace {

using testing_util::IntTable;
using testing_util::MakeTable;

/// A catalog with one clustered fact table and one small dimension table.
class ExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::TableGenConfig fact_cfg;
    fact_cfg.name = "fact";
    fact_cfg.num_partitions = 50;
    fact_cfg.rows_per_partition = 200;
    fact_cfg.layout = workload::Layout::kSorted;
    fact_cfg.domain_min = 0;
    fact_cfg.domain_max = 100000;
    fact_cfg.seed = 11;
    fact_ = workload::SyntheticTable(fact_cfg);
    ASSERT_TRUE(catalog_.RegisterTable(fact_).ok());

    // Dimension: 20 rows keyed into a narrow slice of fact's key domain.
    Schema dim_schema({Field{"dkey", DataType::kInt64, false},
                       Field{"dname", DataType::kString, false}});
    std::vector<std::vector<Value>> rows;
    for (int i = 0; i < 20; ++i) {
      rows.push_back({Value(int64_t{500 + i}), Value("d" + std::to_string(i))});
    }
    dim_ = MakeTable("dim", dim_schema, rows, 20);
    ASSERT_TRUE(catalog_.RegisterTable(dim_).ok());
  }

  QueryResult Run(const PlanPtr& plan) {
    Engine engine(&catalog_, config_);
    auto result = engine.Execute(plan);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(result).value();
  }

  Catalog catalog_;
  EngineConfig config_;
  std::shared_ptr<Table> fact_;
  std::shared_ptr<Table> dim_;
};

TEST_F(ExecTest, ScanWithFilterPruning) {
  auto plan = ScanPlan("fact", Between(Col("key"), Value(int64_t{1000}),
                                       Value(int64_t{1999})));
  QueryResult r = Run(plan);
  EXPECT_GT(r.stats.pruned_by_filter, 40);
  EXPECT_LT(r.stats.scanned_partitions, 5);
  for (const auto& row : r.rows) {
    int64_t key = row[1].int64_value();
    EXPECT_GE(key, 1000);
    EXPECT_LE(key, 1999);
  }
  // Pruning off yields the same rows but scans everything.
  config_.enable_filter_pruning = false;
  QueryResult r2 = Run(plan);
  EXPECT_EQ(r2.rows.size(), r.rows.size());
  EXPECT_EQ(r2.stats.scanned_partitions, 50);
}

TEST_F(ExecTest, ProjectComputesExpressions) {
  auto plan = ProjectPlan(
      ScanPlan("fact", Lt(Col("id"), Lit(3))),
      {Col("id"), Mul(Col("key"), Lit(2))}, {"id", "double_key"});
  QueryResult r = Run(plan);
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.schema.field(1).name, "double_key");
  for (const auto& row : r.rows) {
    EXPECT_EQ(row.size(), 2u);
  }
}

TEST_F(ExecTest, LimitPruningReducesScanSet) {
  auto plan = LimitPlan(ScanPlan("fact"), 5);
  QueryResult r = Run(plan);
  EXPECT_EQ(r.rows.size(), 5u);
  EXPECT_EQ(r.limit_class, LimitClassification::kPrunedToOne);
  EXPECT_EQ(r.stats.pruned_by_limit, 49);
  EXPECT_EQ(r.stats.scanned_partitions, 1);
}

TEST_F(ExecTest, LimitWithOffsetSkipsPrefixAndPrunesForBoth) {
  auto plan = LimitPlan(ScanPlan("fact"), /*k=*/5, /*offset=*/3);
  QueryResult r = Run(plan);
  ASSERT_EQ(r.rows.size(), 5u);
  // OFFSET semantics: rows 3..7 of the equivalent offset-free LIMIT 8.
  QueryResult base = Run(LimitPlan(ScanPlan("fact"), /*k=*/8));
  ASSERT_EQ(base.rows.size(), 8u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(r.rows[i][0].int64_value(), base.rows[i + 3][0].int64_value());
  }
  // Pruning covered offset + k = 8 rows: still one partition.
  EXPECT_EQ(r.limit_class, LimitClassification::kPrunedToOne);
  EXPECT_EQ(r.stats.scanned_partitions, 1);
}

TEST_F(ExecTest, LimitZeroScansNothing) {
  auto plan = LimitPlan(ScanPlan("fact"), 0);
  QueryResult r = Run(plan);
  EXPECT_TRUE(r.rows.empty());
  EXPECT_EQ(r.limit_class, LimitClassification::kPrunedToZero);
  EXPECT_EQ(r.stats.scanned_partitions, 0);
}

TEST_F(ExecTest, LimitWithSelectivePredicateUsesFullyMatching) {
  // Predicate covers partitions [10..20) fully; LIMIT needs one of them.
  auto plan = LimitPlan(
      ScanPlan("fact", Between(Col("key"), Value(int64_t{20000}),
                               Value(int64_t{40000}))),
      10);
  QueryResult r = Run(plan);
  EXPECT_EQ(r.rows.size(), 10u);
  EXPECT_EQ(r.limit_class, LimitClassification::kPrunedToOne);
  EXPECT_EQ(r.stats.scanned_partitions, 1);
  for (const auto& row : r.rows) {
    EXPECT_GE(row[1].int64_value(), 20000);
    EXPECT_LE(row[1].int64_value(), 40000);
  }
}

TEST_F(ExecTest, LimitOverAggregateIsUnsupportedShape) {
  auto agg = AggregatePlan(ScanPlan("fact"), {"cat"},
                           {{AggFunc::kCount, "", "n"}});
  QueryResult r = Run(LimitPlan(agg, 3));
  EXPECT_EQ(r.limit_class, LimitClassification::kUnsupportedShape);
  EXPECT_EQ(r.rows.size(), 3u);
}

// ------------------------------------------------ Figure 7 top-k shapes ----

TEST_F(ExecTest, TopKOverScan_Fig7a) {
  auto plan = TopKPlan(ScanPlan("fact"), "key", /*descending=*/true, 10);
  QueryResult r = Run(plan);
  ASSERT_EQ(r.rows.size(), 10u);
  EXPECT_TRUE(r.topk_pruning_attached);
  // Sorted table + full-sort processing: nearly everything pruned at runtime.
  EXPECT_GE(r.stats.pruned_by_topk, 45);
  // Results must equal the full-sort baseline.
  EngineConfig no_prune = config_;
  no_prune.enable_topk_pruning = false;
  Engine baseline_engine(&catalog_, no_prune);
  auto baseline = baseline_engine.Execute(plan);
  ASSERT_TRUE(baseline.ok());
  ASSERT_EQ(baseline.value().rows.size(), 10u);
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(r.rows[i][1].int64_value(),
              baseline.value().rows[i][1].int64_value());
  }
}

TEST_F(ExecTest, TopKWithFilter_Fig7a) {
  auto plan = TopKPlan(
      ScanPlan("fact", Lt(Col("key"), Lit(int64_t{50000}))), "key",
      /*descending=*/true, 5);
  QueryResult r = Run(plan);
  ASSERT_EQ(r.rows.size(), 5u);
  for (const auto& row : r.rows) EXPECT_LT(row[1].int64_value(), 50000);
  EXPECT_GT(r.stats.pruned_by_filter + r.stats.pruned_by_topk, 40);
}

TEST_F(ExecTest, TopKOnJoinProbeSide_Fig7b) {
  auto join = JoinPlan(ScanPlan("fact"), ScanPlan("dim"), "key", "dkey");
  auto plan = TopKPlan(join, "key", /*descending=*/true, 3);
  QueryResult r = Run(plan);
  // dim keys are 500..519 -> join pruning keeps only the low fact partition;
  // top-k orders by the probe column.
  EXPECT_GT(r.stats.pruned_by_join, 40);
  for (const auto& row : r.rows) {
    EXPECT_GE(row[1].int64_value(), 500);
    EXPECT_LE(row[1].int64_value(), 519);
  }
}

TEST_F(ExecTest, TopKOnBuildOuterJoinBuildSide_Fig7c) {
  // Build side preserved: TopK on a build column replicates to the build
  // input and prunes the build scan.
  auto join = JoinPlan(ScanPlan("dim"), ScanPlan("fact"), "dkey", "key",
                       JoinKind::kBuildOuter);
  auto plan = TopKPlan(join, "key", /*descending=*/true, 4);
  QueryResult r = Run(plan);
  ASSERT_EQ(r.rows.size(), 4u);
  EXPECT_TRUE(r.topk_pruning_attached);
  EXPECT_GT(r.stats.pruned_by_topk, 40);
  // Top keys of fact are the global maxima.
  EngineConfig no_prune = config_;
  no_prune.enable_topk_pruning = false;
  Engine baseline_engine(&catalog_, no_prune);
  auto baseline = baseline_engine.Execute(plan);
  ASSERT_TRUE(baseline.ok());
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(r.rows[i][3].int64_value(),
              baseline.value().rows[i][3].int64_value());
  }
}

TEST_F(ExecTest, TopKOverGroupBy_Fig7d) {
  auto agg = AggregatePlan(ScanPlan("fact"), {"key"},
                           {{AggFunc::kCount, "", "n"}});
  auto plan = TopKPlan(agg, "key", /*descending=*/true, 5);
  QueryResult r = Run(plan);
  ASSERT_EQ(r.rows.size(), 5u);
  EXPECT_TRUE(r.topk_pruning_attached);
  EXPECT_GT(r.stats.pruned_by_topk, 30);
  // Group keys descend.
  for (size_t i = 1; i < r.rows.size(); ++i) {
    EXPECT_GE(r.rows[i - 1][0].int64_value(), r.rows[i][0].int64_value());
  }
  // Aggregates must match the unpruned run exactly (ties feed groups).
  EngineConfig no_prune = config_;
  no_prune.enable_topk_pruning = false;
  Engine baseline_engine(&catalog_, no_prune);
  auto baseline = baseline_engine.Execute(plan);
  ASSERT_TRUE(baseline.ok());
  ASSERT_EQ(baseline.value().rows.size(), r.rows.size());
  for (size_t i = 0; i < r.rows.size(); ++i) {
    EXPECT_EQ(r.rows[i][0].int64_value(),
              baseline.value().rows[i][0].int64_value());
    EXPECT_EQ(r.rows[i][1].int64_value(),
              baseline.value().rows[i][1].int64_value());
  }
}

TEST_F(ExecTest, TopKOrderByAggregateIsNotPruned) {
  auto agg = AggregatePlan(ScanPlan("fact"), {"cat"},
                           {{AggFunc::kSum, "val", "total"}});
  auto plan = TopKPlan(agg, "total", /*descending=*/true, 3);
  QueryResult r = Run(plan);
  EXPECT_FALSE(r.topk_pruning_attached);  // §5.2: unsupported
  EXPECT_EQ(r.stats.pruned_by_topk, 0);
  EXPECT_EQ(r.rows.size(), 3u);
}

// ----------------------------------------------------------------- Join ----

TEST_F(ExecTest, JoinPruningAndCorrectness) {
  auto plan = JoinPlan(ScanPlan("fact"), ScanPlan("dim"), "key", "dkey");
  QueryResult r = Run(plan);
  EXPECT_GT(r.stats.pruned_by_join, 40);
  // Cross-check row count against a no-pruning run.
  config_.enable_join_pruning = false;
  QueryResult full = Run(plan);
  EXPECT_EQ(full.stats.pruned_by_join, 0);
  EXPECT_EQ(full.rows.size(), r.rows.size());
  EXPECT_GT(full.stats.scanned_partitions, r.stats.scanned_partitions);
}

TEST_F(ExecTest, EmptyBuildSidePrunesWholeProbe) {
  auto plan = JoinPlan(ScanPlan("fact"),
                       ScanPlan("dim", Lt(Col("dkey"), Lit(0))), "key", "dkey");
  QueryResult r = Run(plan);
  EXPECT_TRUE(r.rows.empty());
  // Probe scan never loads a single partition (Figure 10's 100% group).
  EXPECT_EQ(fact_->load_count(), 0);
  fact_->ResetMeters();
}

TEST_F(ExecTest, ProbeOuterJoinKeepsUnmatchedProbeRows) {
  auto probe = ScanPlan("fact", Lt(Col("id"), Lit(5)));
  auto build = ScanPlan("dim", Lt(Col("dkey"), Lit(0)));  // empty build
  auto plan = JoinPlan(probe, build, "key", "dkey", JoinKind::kProbeOuter);
  // With join pruning enabled (the default) AND disabled: the engine must
  // not wire §6 summary pruning onto the probe scan of a probe-preserved
  // join — every probe row survives null-padded even when the build side
  // proves it unmatchable.
  for (bool pruning : {true, false}) {
    EngineConfig cfg;
    cfg.enable_join_pruning = pruning;
    Engine engine(&catalog_, cfg);
    auto r = engine.Execute(plan);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().rows.size(), 5u) << "join pruning " << pruning;
    for (const auto& row : r.value().rows) {
      EXPECT_TRUE(row.back().is_null());  // dim columns null-padded
    }
  }
}

TEST_F(ExecTest, RowLevelBloomSkipsHashProbes) {
  config_.join_row_level_bloom = true;
  config_.enable_join_pruning = false;  // isolate the row-level effect
  auto plan = JoinPlan(ScanPlan("fact"), ScanPlan("dim"), "key", "dkey");
  QueryResult r = Run(plan);
  EXPECT_FALSE(r.rows.empty());
  // Correctness: same rows as without bloom.
  config_.join_row_level_bloom = false;
  QueryResult base = Run(plan);
  EXPECT_EQ(base.rows.size(), r.rows.size());
}

// ------------------------------------------------------------ Row eval ----

TEST(RowEvalTest, AgreesWithPartitionEvaluator) {
  Schema schema({Field{"x", DataType::kInt64, true},
                 Field{"s", DataType::kString, true}});
  auto table = MakeTable("t", schema,
                         {{Value(int64_t{4}), Value("abc")},
                          {Value::Null(), Value("zzz")},
                          {Value(int64_t{-2}), Value::Null()}},
                         3);
  std::vector<ExprPtr> exprs = {
      Gt(Col("x"), Lit(0)),
      And({Like(Col("s"), "a%"), IsNotNull(Col("x"))}),
      If(IsNull(Col("x")), Lit(-1), Add(Col("x"), Lit(1))),
      NotTrue(Eq(Col("s"), Lit("abc"))),
  };
  const MicroPartition& part = table->partition_metadata(0);
  for (const auto& e : exprs) {
    ASSERT_TRUE(BindExpr(e, schema).ok());
    for (size_t i = 0; i < 3; ++i) {
      Row row = {part.column(0).ValueAt(i), part.column(1).ValueAt(i)};
      EXPECT_EQ(EvalRow(*e, row), EvalScalar(*e, part, i)) << e->ToString();
    }
  }
}

// ------------------------------------- ColumnBatch (unboxed scan path) ----

/// A small mixed-type partition: int64 (with NULL), string (with NULL),
/// bool.
std::shared_ptr<Table> MixedTable() {
  Schema schema({Field{"x", DataType::kInt64, true},
                 Field{"s", DataType::kString, true},
                 Field{"b", DataType::kBool, true}});
  return MakeTable("mix", schema,
                   {{Value(int64_t{4}), Value("abc"), Value(true)},
                    {Value::Null(), Value("zzz"), Value(false)},
                    {Value(int64_t{-2}), Value::Null(), Value(true)},
                    {Value(int64_t{7}), Value("abd"), Value::Null()}},
                   4);
}

TEST(ColumnBatchTest, AllOfCoversEveryRowAndMaterializesBoxed) {
  auto table = MixedTable();
  const MicroPartition& part = table->partition_metadata(0);
  ColumnBatch batch = ColumnBatch::AllOf(part, /*source=*/0);
  ASSERT_EQ(batch.num_rows(), 4u);
  EXPECT_EQ(batch.num_columns(), 3u);
  EXPECT_EQ(batch.source(), PartitionId{0});
  for (size_t i = 0; i < 4; ++i) EXPECT_EQ(batch.row_index(i), i);

  Batch boxed = batch.Materialize(/*track_source=*/true);
  ASSERT_EQ(boxed.rows.size(), 4u);
  ASSERT_TRUE(boxed.has_source());
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(boxed.source[i], PartitionId{0});
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_TRUE(boxed.rows[i][c] == part.column(c).ValueAt(i))
          << "row " << i << " col " << c;
    }
  }
}

TEST(ColumnBatchTest, SelectionSubsetsAndPreservesOrder) {
  auto table = MixedTable();
  const MicroPartition& part = table->partition_metadata(0);
  ColumnBatch batch = ColumnBatch::Selected(part, /*source=*/0, {1, 3});
  ASSERT_EQ(batch.num_rows(), 2u);
  EXPECT_EQ(batch.row_index(0), 1u);
  EXPECT_EQ(batch.row_index(1), 3u);

  Batch boxed = batch.Materialize(/*track_source=*/false);
  ASSERT_EQ(boxed.rows.size(), 2u);
  EXPECT_FALSE(boxed.has_source());
  EXPECT_TRUE(boxed.rows[0][1] == Value("zzz"));
  EXPECT_TRUE(boxed.rows[1][0] == Value(int64_t{7}));
}

TEST(ColumnBatchTest, EmptySelectionAndDefaultBatch) {
  auto table = MixedTable();
  const MicroPartition& part = table->partition_metadata(0);
  ColumnBatch empty_sel = ColumnBatch::Selected(part, /*source=*/0, {});
  EXPECT_EQ(empty_sel.num_rows(), 0u);
  Batch boxed = empty_sel.Materialize(true);
  EXPECT_TRUE(boxed.rows.empty());
  EXPECT_TRUE(boxed.source.empty());

  ColumnBatch unset;
  EXPECT_FALSE(unset.valid());
  EXPECT_EQ(unset.num_rows(), 0u);
  unset.MaterializeInto(&boxed, true);
  EXPECT_TRUE(boxed.rows.empty());
}

/// The vectorized selection path must agree row-for-row with the scalar
/// oracle, across vectorized shapes (comparisons, connectives, IN, LIKE,
/// IS NULL, column-column, bool column) AND shapes that take the scalar
/// fallback (arithmetic, IF).
TEST(ColumnBatchTest, VectorizedSelectionAgreesWithScalarMask) {
  auto table = MixedTable();
  Schema schema({Field{"x", DataType::kInt64, true},
                 Field{"s", DataType::kString, true},
                 Field{"b", DataType::kBool, true}});
  std::vector<ExprPtr> preds = {
      Gt(Col("x"), Lit(0)),
      Lt(Lit(0), Col("x")),                      // literal on the left
      Eq(Col("s"), Lit("abc")),
      Eq(Col("x"), Lit("abc")),                  // cross-kind → NULL
      Eq(Col("b"), Lit(true)),
      Col("b"),                                  // bare bool column
      And({Gt(Col("x"), Lit(-10)), Like(Col("s"), "ab%")}),
      Or({IsNull(Col("x")), StartsWith(Col("s"), "z")}),
      Not(Eq(Col("s"), Lit("abc"))),
      NotTrue(Gt(Col("x"), Lit(5))),
      In(Col("x"), {Value(int64_t{4}), Value(2.0), Value("x")}),
      In(Col("s"), {Value("zzz"), Value(int64_t{1})}),
      Eq(Col("x"), Col("x")),
      Lt(Col("x"), Col("x")),
      Gt(Add(Col("x"), Lit(1)), Lit(2)),         // arithmetic → fallback
      Gt(If(Col("b"), Col("x"), Lit(0)), Lit(1)),  // IF → fallback
      Le(Col("x"), Lit(4.5)),                    // int column vs float lit
  };
  const MicroPartition& part = table->partition_metadata(0);
  for (const auto& p : preds) {
    ASSERT_TRUE(BindExpr(p, schema).ok());
    std::vector<uint8_t> oracle = EvalPredicateMask(*p, part);
    std::vector<uint32_t> selection;
    ComputeSelection(*p, part, &selection);
    std::vector<uint32_t> expected;
    for (uint32_t r = 0; r < oracle.size(); ++r) {
      if (oracle[r]) expected.push_back(r);
    }
    EXPECT_EQ(selection, expected) << p->ToString();
    // The three-valued outcomes must also match the scalar evaluator.
    std::vector<uint8_t> outcomes;
    EvalPredicateOutcomes(*p, part, &outcomes);
    for (size_t r = 0; r < outcomes.size(); ++r) {
      auto scalar = EvalPredicate(*p, part, r);
      uint8_t want = !scalar.has_value() ? kPredNull
                                         : (*scalar ? kPredTrue : kPredFalse);
      EXPECT_EQ(outcomes[r], want) << p->ToString() << " row " << r;
    }
  }
}

/// TableScanOp's native output: one ColumnBatch per partition whose
/// selection equals the scalar predicate mask.
TEST_F(ExecTest, ScanEmitsColumnBatchesMatchingScalarOracle) {
  auto pred = Between(Col("key"), Value(int64_t{10000}), Value(int64_t{30000}));
  ASSERT_TRUE(BindExpr(pred, fact_->schema()).ok());
  PruningStats stats;
  TableScanOp scan(fact_, fact_->FullScanSet(), pred, &stats);
  scan.Open();
  ColumnBatch batch;
  size_t batches = 0;
  int64_t selected_rows = 0;
  while (scan.NextColumns(&batch)) {
    ++batches;
    ASSERT_TRUE(batch.valid());
    std::vector<uint8_t> oracle =
        EvalPredicateMask(*pred, *batch.partition());
    size_t oracle_count = 0;
    for (size_t r = 0; r < oracle.size(); ++r) {
      if (oracle[r]) ++oracle_count;
    }
    ASSERT_EQ(batch.num_rows(), oracle_count);
    for (size_t i = 0; i < batch.num_rows(); ++i) {
      EXPECT_TRUE(oracle[batch.row_index(i)]);
    }
    selected_rows += static_cast<int64_t>(batch.num_rows());
  }
  scan.Close();
  EXPECT_EQ(batches, fact_->num_partitions());  // one batch per partition
  EXPECT_GT(selected_rows, 0);
  EXPECT_EQ(stats.scanned_partitions,
            static_cast<int64_t>(fact_->num_partitions()));
}

// ----------------------------------------------------- Engine misc ----------

TEST_F(ExecTest, SortAscendingAndDescending) {
  auto plan = SortPlan(ScanPlan("fact", Lt(Col("id"), Lit(100))), "key", false);
  QueryResult r = Run(plan);
  ASSERT_EQ(r.rows.size(), 100u);
  for (size_t i = 1; i < r.rows.size(); ++i) {
    EXPECT_LE(r.rows[i - 1][1].int64_value(), r.rows[i][1].int64_value());
  }
}

/// NaN join keys: Value::Compare reports 0 for NaN against anything
/// (neither < nor >), so the boxed path joins them; the columnar cell
/// equality must make the identical decision rather than IEEE's
/// NaN != NaN. Forced-boxed (via identity projection) and columnar
/// pipelines must agree row-for-row.
TEST_F(ExecTest, NanJoinKeysMatchBetweenColumnarAndBoxed) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  Schema schema({Field{"k", DataType::kFloat64, true},
                 Field{"tag", DataType::kString, false}});
  auto make = [&](const char* name, const char* prefix) {
    std::vector<std::vector<Value>> rows;
    rows.push_back({Value(nan), Value(std::string(prefix) + "_nan")});
    rows.push_back({Value(1.5), Value(std::string(prefix) + "_a")});
    rows.push_back({Value(2.5), Value(std::string(prefix) + "_b")});
    return MakeTable(name, schema, rows, 2);
  };
  ASSERT_TRUE(catalog_.RegisterTable(make("njp", "p")).ok());
  ASSERT_TRUE(catalog_.RegisterTable(make("njb", "b")).ok());

  auto columnar = JoinPlan(ScanPlan("njp"), ScanPlan("njb"), "k", "k");
  auto boxed = JoinPlan(
      ProjectPlan(ScanPlan("njp"), {Col("k"), Col("tag")}, {"k", "tag"}),
      ProjectPlan(ScanPlan("njb"), {Col("k"), Col("tag")}, {"k", "tag"}),
      "k", "k");
  QueryResult rc = Run(columnar);
  QueryResult rb = Run(boxed);
  EXPECT_EQ(testing_util::Serialize(rc), testing_util::Serialize(rb));
  EXPECT_FALSE(rc.rows.empty());
}

/// PR 4 acceptance: the boxed-row adapter must be gone from scan→join,
/// scan→top-k, scan→sort, and scan→aggregate pipelines — ColumnBatch flows
/// end to end and rows are boxed only at each pipeline's output boundary
/// (which is plain row construction, not Materialize()). Verified with the
/// process-wide Materialize() call counter, serially and in parallel.
TEST_F(ExecTest, ColumnarPipelinesNeverMaterializeScanBatches) {
  auto pred = Between(Col("key"), Value(int64_t{100}), Value(int64_t{90000}));
  const std::vector<std::pair<const char*, PlanPtr>> plans = {
      {"scan->join", JoinPlan(ScanPlan("fact", pred), ScanPlan("dim"), "key",
                              "dkey")},
      {"scan->topk", TopKPlan(ScanPlan("fact", pred), "key", true, 25)},
      {"scan->sort", SortPlan(ScanPlan("fact", pred), "key", false)},
      {"scan->agg",
       AggregatePlan(ScanPlan("fact", pred), {"cat"},
                     {AggPlanSpec{AggFunc::kCount, "", "n"},
                      AggPlanSpec{AggFunc::kMax, "key", "key_max"}})},
  };
  for (int threads : {1, 4}) {
    config_.exec.num_threads = threads;
    for (const auto& [name, plan] : plans) {
      const int64_t before = ColumnBatch::materialize_calls();
      QueryResult r = Run(plan);
      EXPECT_GT(r.rows.size(), 0u) << name;
      EXPECT_EQ(ColumnBatch::materialize_calls(), before)
          << name << " materialized a scan batch at num_threads=" << threads;
    }
  }
  // A bare scan, by contrast, must box at the result boundary — the adapter
  // still exists, it has just moved to the end of every pipeline.
  const int64_t before = ColumnBatch::materialize_calls();
  Run(ScanPlan("fact", pred));
  EXPECT_GT(ColumnBatch::materialize_calls(), before);
}

TEST_F(ExecTest, MissingTableFails) {
  Engine engine(&catalog_, config_);
  auto r = engine.Execute(ScanPlan("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST_F(ExecTest, ScanSetBytesShrinkWithPruning) {
  auto plan = ScanPlan("fact", Between(Col("key"), Value(int64_t{0}),
                                       Value(int64_t{999})));
  QueryResult pruned = Run(plan);
  config_.enable_filter_pruning = false;
  QueryResult full = Run(plan);
  EXPECT_LT(pruned.scan_set_bytes, full.scan_set_bytes);
}

TEST_F(ExecTest, RuntimeFilterPruningMatchesCompileTime) {
  auto plan = ScanPlan("fact", Between(Col("key"), Value(int64_t{5000}),
                                       Value(int64_t{9000})));
  QueryResult compile_time = Run(plan);
  config_.filter_pruning_phase = FilterPruningPhase::kRuntime;
  QueryResult runtime = Run(plan);
  // Same rows, same partitions pruned — just at a different phase.
  EXPECT_EQ(runtime.rows.size(), compile_time.rows.size());
  EXPECT_EQ(runtime.stats.pruned_by_filter,
            compile_time.stats.pruned_by_filter);
  EXPECT_EQ(runtime.stats.scanned_partitions,
            compile_time.stats.scanned_partitions);
  // The trade-off (§2.1): the runtime phase ships the unpruned scan set.
  EXPECT_GT(runtime.scan_set_bytes, compile_time.scan_set_bytes);
  // And it cannot feed LIMIT pruning (no fully-matching set at compile time).
  auto limit_plan = LimitPlan(
      ScanPlan("fact", Between(Col("key"), Value(int64_t{20000}),
                               Value(int64_t{40000}))),
      10);
  QueryResult limit_runtime = Run(limit_plan);
  EXPECT_EQ(limit_runtime.limit_class, LimitClassification::kNoFullyMatching);
  EXPECT_EQ(limit_runtime.rows.size(), 10u);
}

/// End-to-end top-k property: across layouts, directions, k, strategies and
/// predicates, the pruned engine returns exactly the baseline's key column.
struct TopKPropertyParam {
  workload::Layout layout;
  bool descending;
  OrderStrategy strategy;
};

class TopKPropertyTest : public ::testing::TestWithParam<TopKPropertyParam> {};

TEST_P(TopKPropertyTest, PrunedEqualsBaselineAcrossConfigs) {
  const TopKPropertyParam& param = GetParam();
  workload::TableGenConfig tcfg;
  tcfg.name = "t";
  tcfg.num_partitions = 30;
  tcfg.rows_per_partition = 80;
  tcfg.layout = param.layout;
  tcfg.null_fraction = 0.05;
  tcfg.seed = 77;
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterTable(workload::SyntheticTable(tcfg)).ok());

  EngineConfig on;
  on.topk_order_strategy = param.strategy;
  EngineConfig off;
  off.enable_topk_pruning = false;
  Engine engine_on(&catalog, on);
  Engine engine_off(&catalog, off);

  Rng rng(31);
  for (int round = 0; round < 8; ++round) {
    int64_t k = rng.UniformInt(1, 40);
    ExprPtr pred;
    if (rng.Bernoulli(0.5)) {
      int64_t lo = rng.UniformInt(0, 800000);
      pred = Between(Col("key"), Value(lo), Value(lo + 300000));
    }
    auto plan = TopKPlan(ScanPlan("t", std::move(pred)), "key",
                         param.descending, k);
    auto a = engine_on.Execute(plan);
    auto b = engine_off.Execute(plan);
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_EQ(a.value().rows.size(), b.value().rows.size());
    for (size_t i = 0; i < a.value().rows.size(); ++i) {
      EXPECT_EQ(a.value().rows[i][1].int64_value(),
                b.value().rows[i][1].int64_value())
          << "k=" << k << " row " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TopKPropertyTest,
    ::testing::Values(
        TopKPropertyParam{workload::Layout::kSorted, true,
                          OrderStrategy::kFullSort},
        TopKPropertyParam{workload::Layout::kSorted, false,
                          OrderStrategy::kFullSort},
        TopKPropertyParam{workload::Layout::kClustered, true,
                          OrderStrategy::kFullSort},
        TopKPropertyParam{workload::Layout::kClustered, true,
                          OrderStrategy::kNone},
        TopKPropertyParam{workload::Layout::kClustered, false,
                          OrderStrategy::kRandom},
        TopKPropertyParam{workload::Layout::kRandom, true,
                          OrderStrategy::kFullSort},
        TopKPropertyParam{workload::Layout::kRandom, false,
                          OrderStrategy::kNone}));

TEST_F(ExecTest, PredicateCacheRoundTrip) {
  PredicateCache cache;
  config_.predicate_cache = &cache;
  auto plan = TopKPlan(ScanPlan("fact"), "key", true, 5);
  QueryResult first = Run(plan);
  EXPECT_FALSE(first.predicate_cache_hit);
  QueryResult second = Run(plan);
  EXPECT_TRUE(second.predicate_cache_hit);
  ASSERT_EQ(second.rows.size(), first.rows.size());
  for (size_t i = 0; i < first.rows.size(); ++i) {
    EXPECT_EQ(first.rows[i][1].int64_value(), second.rows[i][1].int64_value());
  }
  // The cached run scans at most as many partitions.
  EXPECT_LE(second.stats.scanned_partitions, first.stats.scanned_partitions);
}

}  // namespace
}  // namespace snowprune
