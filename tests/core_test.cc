#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/filter_pruner.h"
#include "core/join_pruner.h"
#include "core/limit_pruner.h"
#include "core/predicate_cache.h"
#include "core/pruning_tree.h"
#include "core/topk_pruner.h"
#include "expr/builder.h"
#include "test_util.h"

namespace snowprune {
namespace {

using testing_util::IntTable;
using testing_util::MakeTable;
using testing_util::MatchCountsPerPartition;

// --------------------------------------------------------- PruningTree ----

TEST(PruningTreeTest, EvaluatesConnectives) {
  Schema schema({Field{"x", DataType::kInt64, true}});
  auto expr = And({Ge(Col("x"), Lit(0)), Le(Col("x"), Lit(10))});
  ASSERT_TRUE(BindExpr(expr, schema).ok());
  PruningTree tree(expr, PruningTreeConfig{});
  std::vector<ColumnStats> in_range(1);
  in_range[0] = {true, Value(int64_t{2}), Value(int64_t{8}), 0, 5};
  EXPECT_TRUE(tree.Evaluate(in_range).fully_matching());
  std::vector<ColumnStats> outside(1);
  outside[0] = {true, Value(int64_t{50}), Value(int64_t{99}), 0, 5};
  EXPECT_TRUE(tree.Evaluate(outside).prunable());
  EXPECT_EQ(tree.num_leaves(), 2u);
}

TEST(PruningTreeTest, ReorderPutsDecisiveLeafFirst) {
  Schema schema({Field{"x", DataType::kInt64, true},
                 Field{"y", DataType::kInt64, true}});
  // First leaf never prunes; second always does.
  auto weak = Ge(Col("x"), Lit(int64_t{-1000000}));
  auto strong = Gt(Col("y"), Lit(int64_t{1000000}));
  auto expr = And({weak, strong});
  ASSERT_TRUE(BindExpr(expr, schema).ok());
  PruningTreeConfig cfg;
  cfg.enable_reorder = true;
  cfg.reorder_interval = 8;
  PruningTree tree(expr, cfg);
  std::vector<ColumnStats> stats(2);
  stats[0] = {true, Value(int64_t{0}), Value(int64_t{100}), 0, 5};
  stats[1] = {true, Value(int64_t{0}), Value(int64_t{100}), 0, 5};
  auto before = tree.LeafOrder();
  EXPECT_EQ(before[0], weak->ToString());
  for (int i = 0; i < 64; ++i) (void)tree.Evaluate(stats);
  auto after = tree.LeafOrder();
  EXPECT_EQ(after[0], strong->ToString());  // decisive leaf promoted
}

TEST(PruningTreeTest, CutoffDisablesIneffectiveLeafUnderAnd) {
  Schema schema({Field{"x", DataType::kInt64, true}});
  auto useless = Ge(Col("x"), Lit(int64_t{-1000000}));  // never prunes
  auto expr = And({useless});
  ASSERT_TRUE(BindExpr(expr, schema).ok());
  PruningTreeConfig cfg;
  cfg.enable_cutoff = true;
  cfg.cutoff_min_observations = 4;
  cfg.reorder_interval = 4;
  cfg.partition_scan_cost_ns = 0.0;  // pruning can never pay off
  PruningTree tree(expr, cfg);
  std::vector<ColumnStats> stats(1);
  stats[0] = {true, Value(int64_t{0}), Value(int64_t{100}), 0, 5};
  for (int i = 0; i < 16; ++i) (void)tree.Evaluate(stats);
  EXPECT_EQ(tree.disabled_leaves(), 1u);
  // Disabled tree keeps everything (conservative).
  EXPECT_FALSE(tree.Evaluate(stats).prunable());
  EXPECT_FALSE(tree.Evaluate(stats).fully_matching());
}

TEST(PruningTreeTest, CutoffNeverFiresUnderOr) {
  Schema schema({Field{"x", DataType::kInt64, true}});
  auto expr = Or({Ge(Col("x"), Lit(int64_t{-1000000})),
                  Gt(Col("x"), Lit(int64_t{1000000}))});
  ASSERT_TRUE(BindExpr(expr, schema).ok());
  PruningTreeConfig cfg;
  cfg.enable_cutoff = true;
  cfg.cutoff_min_observations = 2;
  cfg.reorder_interval = 2;
  cfg.partition_scan_cost_ns = 0.0;
  PruningTree tree(expr, cfg);
  std::vector<ColumnStats> stats(1);
  stats[0] = {true, Value(int64_t{0}), Value(int64_t{100}), 0, 5};
  for (int i = 0; i < 32; ++i) (void)tree.Evaluate(stats);
  // §3.2: only leaves below an AND may be removed.
  EXPECT_EQ(tree.disabled_leaves(), 0u);
}

// -------------------------------------------------------- FilterPruner ----

Schema TrackingSchema() {
  return Schema({Field{"species", DataType::kString, true},
                 Field{"s", DataType::kInt64, true}});
}

/// The paper's Figure 5 table: four partitions of tracking data.
std::shared_ptr<Table> Figure5Table() {
  return MakeTable(
      "tracking_data", TrackingSchema(),
      {
          // Partition 1: not matching (species range B..S misses Alpine).
          {Value("Snow Vole"), Value(int64_t{7})},
          {Value("Brown Bear"), Value(int64_t{133})},
          {Value("Gray Wolf"), Value(int64_t{82})},
          // Partition 2: partially matching.
          {Value("Lynx"), Value(int64_t{71})},
          {Value("Red Fox"), Value(int64_t{40})},
          {Value("Alpine Bat"), Value(int64_t{6})},
          // Partition 3: fully matching.
          {Value("Alpine Ibex"), Value(int64_t{101})},
          {Value("Alpine Goat"), Value(int64_t{76})},
          {Value("Alpine Sheep"), Value(int64_t{83})},
          // Partition 4: partially matching.
          {Value("Europ. Mole"), Value(int64_t{4})},
          {Value("Polecat"), Value(int64_t{16})},
          {Value("Alpine Ibex"), Value(int64_t{97})},
      },
      3);
}

ExprPtr Figure5Predicate() {
  return And({Like(Col("species"), "Alpine%"), Ge(Col("s"), Lit(50))});
}

class FilterPrunerModeTest : public ::testing::TestWithParam<FullyMatchingMode> {};

TEST_P(FilterPrunerModeTest, PaperFigure5Example) {
  auto table = Figure5Table();
  auto pred = Figure5Predicate();
  ASSERT_TRUE(BindExpr(pred, table->schema()).ok());
  FilterPrunerConfig cfg;
  cfg.fully_matching_mode = GetParam();
  FilterPruner pruner(pred, cfg);
  FilterPruneResult result = pruner.Prune(*table, table->FullScanSet());
  // Partition 1 pruned; 2, 3, 4 kept; 3 fully matching.
  EXPECT_EQ(result.pruned, 1);
  ASSERT_EQ(result.scan_set.size(), 3u);
  EXPECT_EQ(result.scan_set[0], 1u);
  ASSERT_EQ(result.fully_matching.size(), 1u);
  EXPECT_EQ(result.fully_matching[0], 2u);
  EXPECT_EQ(result.fully_matching_rows, 3);
}

INSTANTIATE_TEST_SUITE_P(Modes, FilterPrunerModeTest,
                         ::testing::Values(FullyMatchingMode::kInvertedTwoPass,
                                           FullyMatchingMode::kDirectAnalysis));

TEST(FilterPrunerTest, NullPredicateKeepsEverythingFullyMatching) {
  auto table = IntTable("t", "x", {{1, 2}, {3, 4}});
  FilterPruner pruner(nullptr);
  auto result = pruner.Prune(*table, table->FullScanSet());
  EXPECT_EQ(result.pruned, 0);
  EXPECT_EQ(result.fully_matching.size(), 2u);
  EXPECT_EQ(result.fully_matching_rows, 4);
}

TEST(FilterPrunerTest, EmptyPartitionIsPruned) {
  auto table = IntTable("t", "x", {{1, 2}, {}});
  auto pred = Ge(Col("x"), Lit(0));
  ASSERT_TRUE(BindExpr(pred, table->schema()).ok());
  FilterPruner pruner(pred);
  auto result = pruner.Prune(*table, table->FullScanSet());
  EXPECT_EQ(result.pruned, 1);
  EXPECT_EQ(result.scan_set.size(), 1u);
}

TEST(FilterPrunerTest, MissingMetadataIsNeverPruned) {
  auto table = IntTable("t", "x", {{100, 200}, {300, 400}});
  table->DropStatsOnFraction(1.0, 1);
  auto pred = Lt(Col("x"), Lit(0));  // matches nothing
  ASSERT_TRUE(BindExpr(pred, table->schema()).ok());
  FilterPruner pruner(pred);
  auto result = pruner.Prune(*table, table->FullScanSet());
  EXPECT_EQ(result.pruned, 0);  // no metadata, no pruning (§8.1)
  // After backfill, pruning works again.
  table->BackfillMissingStats();
  FilterPruner pruner2(pred);
  EXPECT_EQ(pruner2.Prune(*table, table->FullScanSet()).pruned, 2);
}

class FilterPrunerPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FilterPrunerPropertyTest, NoFalseNegativesOnRandomData) {
  Rng rng(GetParam() * 31 + 7);
  Schema schema({Field{"x", DataType::kInt64, true}});
  for (int round = 0; round < 20; ++round) {
    std::vector<std::vector<Value>> rows;
    int n = static_cast<int>(rng.UniformInt(4, 60));
    for (int i = 0; i < n; ++i) {
      rows.push_back({rng.Bernoulli(0.1) ? Value::Null()
                                         : Value(rng.UniformInt(0, 100))});
    }
    auto table = MakeTable("t", schema, rows, 5);
    int64_t lo = rng.UniformInt(0, 80), hi = lo + rng.UniformInt(0, 40);
    auto pred = Between(Col("x"), Value(lo), Value(hi));
    ASSERT_TRUE(BindExpr(pred, schema).ok());
    FilterPruner pruner(pred);
    auto result = pruner.Prune(*table, table->FullScanSet());
    auto oracle = MatchCountsPerPartition(*table, pred);
    // Every partition with matches must be in the scan set.
    std::vector<bool> kept(table->num_partitions(), false);
    for (PartitionId pid : result.scan_set) kept[pid] = true;
    for (size_t pid = 0; pid < oracle.size(); ++pid) {
      if (oracle[pid] > 0) EXPECT_TRUE(kept[pid]) << "partition " << pid;
    }
    // Fully-matching partitions must match on every row.
    for (PartitionId pid : result.fully_matching) {
      EXPECT_EQ(oracle[pid], table->partition_metadata(pid).row_count());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FilterPrunerPropertyTest,
                         ::testing::Range(uint64_t{1}, uint64_t{11}));

// --------------------------------------------------------- LimitPruner ----

FilterPruneResult RunFilter(const std::shared_ptr<Table>& table, ExprPtr pred) {
  if (pred) {
    Status s = BindExpr(pred, table->schema());
    EXPECT_TRUE(s.ok());
  }
  FilterPruner pruner(std::move(pred));
  return pruner.Prune(*table, table->FullScanSet());
}

TEST(LimitPrunerTest, PaperSection41Example) {
  auto table = Figure5Table();
  auto filtered = RunFilter(table, Figure5Predicate());
  // LIMIT 3 is covered by fully-matching partition 3 alone.
  auto result = LimitPruner::Prune(*table, filtered, 3);
  EXPECT_EQ(result.outcome, LimitPruneOutcome::kPrunedToOne);
  ASSERT_EQ(result.scan_set.size(), 1u);
  EXPECT_EQ(result.scan_set[0], 2u);
  EXPECT_EQ(result.pruned, 2);
}

TEST(LimitPrunerTest, LimitZeroEmptiesScanSet) {
  auto table = IntTable("t", "x", {{1}, {2}, {3}});
  auto filtered = RunFilter(table, nullptr);
  auto result = LimitPruner::Prune(*table, filtered, 0);
  EXPECT_EQ(result.outcome, LimitPruneOutcome::kPrunedToZero);
  EXPECT_TRUE(result.scan_set.empty());
}

TEST(LimitPrunerTest, AlreadyMinimal) {
  auto table = IntTable("t", "x", {{1, 2, 3}});
  auto filtered = RunFilter(table, nullptr);
  auto result = LimitPruner::Prune(*table, filtered, 2);
  EXPECT_EQ(result.outcome, LimitPruneOutcome::kAlreadyMinimal);
}

TEST(LimitPrunerTest, InsufficientFullyMatchingReordersScanSet) {
  auto table = Figure5Table();
  auto filtered = RunFilter(table, Figure5Predicate());
  // k = 100 > 3 fully-matching rows: no pruning, but partition 3 first.
  auto result = LimitPruner::Prune(*table, filtered, 100);
  EXPECT_EQ(result.outcome, LimitPruneOutcome::kNoFullyMatching);
  ASSERT_EQ(result.scan_set.size(), 3u);
  EXPECT_EQ(result.scan_set[0], 2u);
}

TEST(LimitPrunerTest, LargeKRequiresMultiplePartitions) {
  auto table = IntTable("t", "x", {{1, 2, 3}, {4, 5}, {6, 7, 8, 9}});
  auto filtered = RunFilter(table, nullptr);  // everything fully matching
  auto result = LimitPruner::Prune(*table, filtered, 6);
  EXPECT_EQ(result.outcome, LimitPruneOutcome::kPrunedToMany);
  // Greedy: biggest partitions first (4 rows + 3 rows >= 6).
  ASSERT_EQ(result.scan_set.size(), 2u);
  EXPECT_EQ(result.scan_set[0], 2u);
  EXPECT_EQ(result.scan_set[1], 0u);
}

// ---------------------------------------------------------- TopKPruner ----

TEST(TopKPrunerTest, FullSortOrdersByMaxDesc) {
  auto table = IntTable("t", "x", {{1, 5}, {90, 99}, {40, 50}});
  TopKPrunerConfig cfg;
  cfg.k = 1;
  cfg.order_strategy = OrderStrategy::kFullSort;
  cfg.boundary_init = BoundaryInitMode::kNone;
  TopKPruner pruner(cfg, 0);
  ScanSet prepared = pruner.Prepare(*table, table->FullScanSet(), {});
  ASSERT_EQ(prepared.size(), 3u);
  EXPECT_EQ(prepared[0], 1u);
  EXPECT_EQ(prepared[1], 2u);
  EXPECT_EQ(prepared[2], 0u);
}

TEST(TopKPrunerTest, RuntimeBoundarySkipsInclusively) {
  auto table = IntTable("t", "x", {{1, 5}, {90, 99}, {40, 50}});
  TopKPrunerConfig cfg;
  cfg.k = 1;
  TopKPruner pruner(cfg, 0);
  (void)pruner.Prepare(*table, table->FullScanSet(), {});
  EXPECT_FALSE(pruner.ShouldSkip(*table, 0));  // no boundary yet
  pruner.UpdateBoundary(Value(int64_t{50}));
  EXPECT_TRUE(pruner.ShouldSkip(*table, 0));   // max 5 < 50
  EXPECT_TRUE(pruner.ShouldSkip(*table, 2));   // max 50 == 50, inclusive
  EXPECT_FALSE(pruner.ShouldSkip(*table, 1));  // max 99 > 50
}

TEST(TopKPrunerTest, AscendingMirrorsLogic) {
  auto table = IntTable("t", "x", {{10, 20}, {1, 3}, {50, 60}});
  TopKPrunerConfig cfg;
  cfg.k = 1;
  cfg.descending = false;
  TopKPruner pruner(cfg, 0);
  ScanSet prepared = pruner.Prepare(*table, table->FullScanSet(), {});
  EXPECT_EQ(prepared[0], 1u);  // smallest min first
  pruner.UpdateBoundary(Value(int64_t{3}));
  EXPECT_TRUE(pruner.ShouldSkip(*table, 0));   // min 10 > 3
  EXPECT_FALSE(pruner.ShouldSkip(*table, 1));  // min 1 < 3
}

TEST(TopKPrunerTest, UpfrontInitFromFullyMatching) {
  // Partitions: [0..9], [10..19], [20..29]; all fully matching; k = 2.
  auto table = IntTable("t", "x",
                        {{0, 5, 9}, {10, 15, 19}, {20, 25, 29}});
  TopKPrunerConfig cfg;
  cfg.k = 2;
  cfg.boundary_init = BoundaryInitMode::kStricter;
  cfg.order_strategy = OrderStrategy::kNone;
  TopKPruner pruner(cfg, 0);
  (void)pruner.Prepare(*table, table->FullScanSet(), {0, 1, 2});
  // Cumulative-min: partition 2 alone has 3 >= 2 rows, all >= 20.
  ASSERT_TRUE(pruner.boundary().has_value());
  EXPECT_EQ(pruner.boundary()->int64_value(), 20);
  EXPECT_FALSE(pruner.boundary_inclusive());  // init boundary: strict skip
  EXPECT_TRUE(pruner.ShouldSkip(*table, 0));  // max 9 < 20
  EXPECT_TRUE(pruner.ShouldSkip(*table, 1));  // max 19 < 20
  EXPECT_FALSE(pruner.ShouldSkip(*table, 2)); // its own partition survives
}

TEST(TopKPrunerTest, KthMaxInitWhenPartitionsOverlap) {
  // Heavily overlapping: cumulative-min gives a weak bound, k-th max wins.
  auto table = IntTable("t", "x", {{0, 100}, {0, 90}, {0, 80}});
  TopKPrunerConfig cfg;
  cfg.k = 2;
  cfg.boundary_init = BoundaryInitMode::kKthMax;
  TopKPruner pruner(cfg, 0);
  (void)pruner.Prepare(*table, table->FullScanSet(), {0, 1, 2});
  ASSERT_TRUE(pruner.boundary().has_value());
  EXPECT_EQ(pruner.boundary()->int64_value(), 90);  // 2nd largest max
}

TEST(TopKPrunerTest, AllNullPartitionAlwaysSkipped) {
  Schema schema({Field{"x", DataType::kInt64, true}});
  auto table = MakeTable("t", schema,
                         {{Value::Null()}, {Value(int64_t{5})}}, 1);
  TopKPrunerConfig cfg;
  cfg.k = 1;
  TopKPruner pruner(cfg, 0);
  EXPECT_TRUE(pruner.ShouldSkip(*table, 0));
  EXPECT_FALSE(pruner.ShouldSkip(*table, 1));
}

TEST(TopKPrunerTest, StrictUpdatesForAggregationShape) {
  auto table = IntTable("t", "x", {{10, 50}});
  TopKPrunerConfig cfg;
  cfg.k = 1;
  cfg.inclusive_updates = false;  // Figure 7d: ties still feed aggregates
  TopKPruner pruner(cfg, 0);
  pruner.UpdateBoundary(Value(int64_t{50}));
  EXPECT_FALSE(pruner.boundary_inclusive());
  EXPECT_FALSE(pruner.ShouldSkip(*table, 0));  // max == boundary, keep
}

// ---------------------------------------------------------- JoinPruner ----

TEST(SummaryTest, MinMaxSummary) {
  SummaryBuilder builder;
  builder.Add(Value(int64_t{10}));
  builder.Add(Value(int64_t{90}));
  builder.Add(Value::Null());  // ignored
  auto summary = builder.Build(SummaryKind::kMinMax);
  EXPECT_EQ(summary->num_values(), 2);
  EXPECT_TRUE(summary->MayContainInRange(Value(int64_t{50}), Value(int64_t{60})));
  EXPECT_FALSE(summary->MayContainInRange(Value(int64_t{91}), Value(int64_t{95})));
  EXPECT_TRUE(summary->MayContain(Value(int64_t{42})));  // false positive, OK
}

TEST(SummaryTest, RangeSetIsExactWithinBudget) {
  SummaryBuilder builder;
  for (int64_t v : {5, 10, 100}) builder.Add(Value(v));
  auto summary = builder.Build(SummaryKind::kRangeSet, 1024);
  EXPECT_TRUE(summary->MayContain(Value(int64_t{10})));
  EXPECT_FALSE(summary->MayContain(Value(int64_t{50})));  // gap excluded
  EXPECT_TRUE(summary->MayContainInRange(Value(int64_t{90}), Value(int64_t{200})));
  EXPECT_FALSE(summary->MayContainInRange(Value(int64_t{11}), Value(int64_t{99})));
}

TEST(SummaryTest, RangeSetMergesLargestGapsLast) {
  SummaryBuilder builder;
  // Two tight clusters with a huge gap; budget of 2 ranges must keep the
  // gap as the separator.
  for (int64_t v : {1, 2, 3, 1000, 1001, 1002}) builder.Add(Value(v));
  auto summary = builder.Build(SummaryKind::kRangeSet, /*budget_bytes=*/32);
  EXPECT_LE(summary->SizeBytes(), 48u);
  EXPECT_TRUE(summary->MayContain(Value(int64_t{2})));
  EXPECT_TRUE(summary->MayContain(Value(int64_t{1001})));
  EXPECT_FALSE(summary->MayContain(Value(int64_t{500})));
}

TEST(SummaryTest, EmptyBuildPrunesEverything) {
  SummaryBuilder builder;
  auto summary = builder.Build(SummaryKind::kRangeSet);
  EXPECT_FALSE(summary->MayContainInRange(Value(int64_t{0}), Value(int64_t{100})));
  EXPECT_EQ(summary->num_values(), 0);
}

TEST(SummaryTest, BloomAnswersPointsOnly) {
  SummaryBuilder builder;
  for (int64_t v = 0; v < 50; ++v) builder.Add(Value(v * 2));
  auto bloom = builder.Build(SummaryKind::kBloom, 1024);
  for (int64_t v = 0; v < 50; ++v) {
    EXPECT_TRUE(bloom->MayContain(Value(v * 2)));  // no false negatives
  }
  // Ranges are always "maybe" for a bloom filter.
  EXPECT_TRUE(bloom->MayContainInRange(Value(int64_t{-10}), Value(int64_t{-5})));
  int fp = 0;
  for (int64_t v = 0; v < 50; ++v) {
    if (bloom->MayContain(Value(v * 2 + 1))) ++fp;
  }
  EXPECT_LT(fp, 10);  // low false-positive rate at this sizing
}

TEST(SummaryTest, StringRangeSet) {
  SummaryBuilder builder;
  for (const char* s : {"apple", "apricot", "banana", "cherry"}) {
    builder.Add(Value(s));
  }
  auto summary = builder.Build(SummaryKind::kRangeSet, /*budget_bytes=*/32);
  EXPECT_TRUE(summary->MayContain(Value("banana")));
  EXPECT_FALSE(summary->MayContainInRange(Value("x"), Value("z")));
}

TEST(JoinPrunerTest, PrunesProbePartitionsOutsideSummary) {
  auto probe = IntTable("probe", "k", {{0, 9}, {10, 19}, {20, 29}, {30, 39}});
  SummaryBuilder builder;
  builder.Add(Value(int64_t{12}));
  builder.Add(Value(int64_t{35}));
  auto summary = builder.Build(SummaryKind::kRangeSet);
  auto result = JoinPruner::PruneProbe(*probe, probe->FullScanSet(), 0, *summary);
  EXPECT_EQ(result.pruned, 2);
  ASSERT_EQ(result.scan_set.size(), 2u);
  EXPECT_EQ(result.scan_set[0], 1u);
  EXPECT_EQ(result.scan_set[1], 3u);
}

class JoinPrunerPropertyTest : public ::testing::TestWithParam<SummaryKind> {};

TEST_P(JoinPrunerPropertyTest, NeverPrunesJoinablePartitions) {
  Rng rng(99);
  for (int round = 0; round < 15; ++round) {
    // Random probe table and build values.
    std::vector<std::vector<int64_t>> parts;
    int np = static_cast<int>(rng.UniformInt(1, 12));
    for (int p = 0; p < np; ++p) {
      std::vector<int64_t> vals;
      int n = static_cast<int>(rng.UniformInt(1, 10));
      for (int i = 0; i < n; ++i) vals.push_back(rng.UniformInt(0, 200));
      parts.push_back(std::move(vals));
    }
    auto probe = IntTable("probe", "k", parts);
    SummaryBuilder builder;
    std::vector<int64_t> build_vals;
    int nb = static_cast<int>(rng.UniformInt(0, 20));
    for (int i = 0; i < nb; ++i) {
      build_vals.push_back(rng.UniformInt(0, 200));
      builder.Add(Value(build_vals.back()));
    }
    auto summary = builder.Build(GetParam(), /*budget_bytes=*/64);
    auto result =
        JoinPruner::PruneProbe(*probe, probe->FullScanSet(), 0, *summary);
    std::vector<bool> kept(probe->num_partitions(), false);
    for (PartitionId pid : result.scan_set) kept[pid] = true;
    for (size_t pid = 0; pid < parts.size(); ++pid) {
      bool joinable = false;
      for (int64_t v : parts[pid]) {
        for (int64_t b : build_vals) {
          if (v == b) joinable = true;
        }
      }
      if (joinable) EXPECT_TRUE(kept[pid]) << "partition " << pid;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, JoinPrunerPropertyTest,
                         ::testing::Values(SummaryKind::kMinMax,
                                           SummaryKind::kRangeSet,
                                           SummaryKind::kExactSet,
                                           SummaryKind::kBloom));

// ------------------------------------------------------ PredicateCache ----

TEST(PredicateCacheTest, HitReturnsCachedPlusNewPartitions) {
  auto table = IntTable("t", "x", {{1}, {2}, {3}});
  PredicateCache cache;
  cache.Insert("q1", *table, "x", {1});
  auto hit = cache.Lookup("q1", *table);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->size(), 1u);
  // INSERT: new partitions are appended at lookup (safe per §8.2).
  ColumnVector col(DataType::kInt64);
  col.AppendInt64(9);
  table->AppendPartition(MicroPartition(3, {std::move(col)}));
  cache.OnInsert(*table);
  hit = cache.Lookup("q1", *table);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->size(), 2u);
  EXPECT_EQ((*hit)[1], 3u);
}

TEST(PredicateCacheTest, UpdateToOrderColumnInvalidates) {
  auto table = IntTable("t", "x", {{1}, {2}});
  PredicateCache cache;
  cache.Insert("q", *table, "x", {0});
  cache.OnUpdate(*table, "other_column");
  EXPECT_TRUE(cache.Lookup("q", *table).has_value());  // safe update
  cache.OnUpdate(*table, "x");
  EXPECT_FALSE(cache.Lookup("q", *table).has_value());  // reordering update
}

TEST(PredicateCacheTest, DeleteOfContributingPartitionInvalidates) {
  auto table = IntTable("t", "x", {{1}, {2}, {3}});
  PredicateCache cache;
  cache.Insert("q", *table, "x", {1});
  cache.Insert("other", *table, "x", {2});
  table->DeletePartition(1);
  cache.OnDelete(*table, 1);
  EXPECT_FALSE(cache.Lookup("q", *table).has_value());
  // The other entry survives with remapped ids (2 -> 1).
  auto hit = cache.Lookup("other", *table);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ((*hit)[0], 1u);
}

TEST(PredicateCacheTest, CapacityEvictsOldest) {
  auto table = IntTable("t", "x", {{1}});
  PredicateCache cache(2);
  cache.Insert("a", *table, "x", {0});
  cache.Insert("b", *table, "x", {0});
  cache.Insert("c", *table, "x", {0});
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_FALSE(cache.Lookup("a", *table).has_value());
  EXPECT_TRUE(cache.Lookup("c", *table).has_value());
}

}  // namespace
}  // namespace snowprune
