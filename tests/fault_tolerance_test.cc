/// Fault-tolerance suite: every failure path is a tested path. Covers the
/// failpoint firing semantics (once-after-K / every-Nth / probability, all
/// deterministic under a seed), retry backoff determinism, per-query
/// deadlines (queued sheds never execute; running queries stop on the
/// cancellation plumbing), retry byte-identity across shard × thread
/// configurations, budget exhaustion surfacing the underlying error, the
/// failpoint wiring self-tests CI depends on (a disarmed registry never
/// fires; every armed reachable site trips during a storm), and a
/// TSan-registered injection storm asserting the service leaks no in-flight
/// or pool slots. Runs under ThreadSanitizer in CI (build-tsan).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/failpoint.h"
#include "common/metrics.h"
#include "exec/engine.h"
#include "exec/plan.h"
#include "service/query_service.h"
#include "shard/coordinator.h"
#include "storage/catalog.h"
#include "test_util.h"
#include "workload/table_gen.h"

namespace snowprune {
namespace {

using service::QueryService;
using service::QueryServiceConfig;
using service::ServiceStats;
using shard::RetryBackoffUs;
using shard::RetryPolicy;
using shard::ShardCoordinator;
using shard::ShardExecConfig;
using testing_util::DiffStats;
using testing_util::Serialize;

std::shared_ptr<Table> Synthetic(const char* name, workload::Layout layout,
                                 size_t partitions, size_t rows,
                                 uint64_t seed) {
  workload::TableGenConfig cfg;
  cfg.name = name;
  cfg.layout = layout;
  cfg.num_partitions = partitions;
  cfg.rows_per_partition = rows;
  cfg.null_fraction = 0.05;
  cfg.num_categories = 20;
  cfg.seed = seed;
  return workload::SyntheticTable(cfg);
}

/// All six production failpoint sites, in one place so the wiring
/// self-tests and the storm arm exactly what ships.
const char* const kAllSites[] = {
    "scan.partition_load",   "pool.dispatch",          "predcache.populate",
    "shard.scatter_launch",  "shard.scatter_complete", "shard.gather_replay",
};

/// Registers (without arming) every production site so tests can Find and
/// arm them before any query has executed the macro's registration path.
void RegisterAllSites() {
  for (const char* site : kAllSites) {
    FailPointRegistry::Instance().Register(site);
  }
}

class FaultToleranceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FailPointRegistry::Instance().DisarmAll();
    ASSERT_TRUE(catalog_
                    .RegisterTable(Synthetic("fact", workload::Layout::kClustered,
                                             40, 120, 77))
                    .ok());
    ASSERT_TRUE(catalog_
                    .RegisterTable(Synthetic("dim", workload::Layout::kSorted, 8,
                                             200, 78))
                    .ok());
  }

  void TearDown() override { FailPointRegistry::Instance().DisarmAll(); }

  /// Solo serial reference run: fresh single-threaded engine.
  Result<QueryResult> RunSolo(const PlanPtr& plan) {
    EngineConfig config;
    config.exec.num_threads = 1;
    Engine engine(&catalog_, config);
    return engine.Execute(plan);
  }

  Catalog catalog_;
};

// ---------------------------------------------------------------------------
// FailPoint firing semantics
// ---------------------------------------------------------------------------

TEST_F(FaultToleranceTest, FailPointOnceAfterKFiresExactlyOnce) {
  FailPoint* fp = FailPointRegistry::Instance().Register("test.once");
  fp->ArmOnceAfterK(3);
  std::vector<bool> fires;
  for (int i = 0; i < 10; ++i) fires.push_back(fp->ShouldFire());
  EXPECT_EQ(fires, (std::vector<bool>{false, false, false, true, false, false,
                                      false, false, false, false}));
  EXPECT_EQ(fp->trips(), 1u);
  EXPECT_EQ(fp->evaluations(), 10u);
  fp->Disarm();
  EXPECT_FALSE(fp->ShouldFire());
}

TEST_F(FaultToleranceTest, FailPointEveryNthFiresOnSchedule) {
  FailPoint* fp = FailPointRegistry::Instance().Register("test.nth");
  fp->ArmEveryNth(3);
  std::vector<bool> fires;
  for (int i = 0; i < 9; ++i) fires.push_back(fp->ShouldFire());
  EXPECT_EQ(fires, (std::vector<bool>{false, false, true, false, false, true,
                                      false, false, true}));
  EXPECT_EQ(fp->trips(), 3u);
  // Re-arming resets the sequence: the next fire is three evaluations away.
  fp->ArmEveryNth(3);
  EXPECT_FALSE(fp->ShouldFire());
  EXPECT_FALSE(fp->ShouldFire());
  EXPECT_TRUE(fp->ShouldFire());
}

TEST_F(FaultToleranceTest, FailPointProbabilityIsSeededDeterministic) {
  FailPoint* fp = FailPointRegistry::Instance().Register("test.prob");

  // p = 0 never fires; p = 1 always fires (the bit-pattern comparison is
  // exact at both endpoints).
  fp->ArmProbability(0.0, /*seed=*/7);
  for (int i = 0; i < 200; ++i) EXPECT_FALSE(fp->ShouldFire());
  fp->ArmProbability(1.0, /*seed=*/7);
  for (int i = 0; i < 200; ++i) EXPECT_TRUE(fp->ShouldFire());

  // Same (p, seed) → the exact same fire pattern on replay.
  fp->ArmProbability(0.5, /*seed=*/7);
  std::vector<bool> first;
  for (int i = 0; i < 500; ++i) first.push_back(fp->ShouldFire());
  fp->ArmProbability(0.5, /*seed=*/7);
  std::vector<bool> second;
  for (int i = 0; i < 500; ++i) second.push_back(fp->ShouldFire());
  EXPECT_EQ(first, second);

  // The empirical rate lands near p (splitmix64 is a decent mixer; a 500-
  // draw binomial at p=0.5 stays within ±0.15 with overwhelming margin).
  const uint64_t trips = fp->trips();
  EXPECT_GT(trips, 175u);
  EXPECT_LT(trips, 325u);

  // A different seed draws a different pattern.
  fp->ArmProbability(0.5, /*seed=*/8);
  std::vector<bool> other;
  for (int i = 0; i < 500; ++i) other.push_back(fp->ShouldFire());
  EXPECT_NE(first, other);
}

TEST_F(FaultToleranceTest, InjectedFaultIsRetryable) {
  Status s = InjectedFault("test.site");
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(IsRetryable(s.code()));
  EXPECT_FALSE(s.message().empty());
  // The deadline and cancellation outcomes are terminal by design: retrying
  // past a deadline or a user cancel would defeat both.
  EXPECT_FALSE(IsRetryable(StatusCode::kDeadlineExceeded));
  EXPECT_FALSE(IsRetryable(StatusCode::kCancelled));
  EXPECT_FALSE(IsRetryable(StatusCode::kInvalidArgument));
}

// ---------------------------------------------------------------------------
// Retry backoff determinism
// ---------------------------------------------------------------------------

TEST_F(FaultToleranceTest, RetryBackoffIsDeterministicCappedExponential) {
  RetryPolicy policy;
  policy.base_backoff_us = 100;
  policy.max_backoff_us = 1000;
  policy.jitter_seed = 42;

  std::vector<int64_t> first, second;
  for (int r = 1; r <= 8; ++r) first.push_back(RetryBackoffUs(policy, r));
  for (int r = 1; r <= 8; ++r) second.push_back(RetryBackoffUs(policy, r));
  EXPECT_EQ(first, second) << "backoff schedule must be a pure function";

  // Jitter is ±25% around the capped exponential: retry r's uncapped base
  // is base << (r-1), capped at max.
  for (int r = 1; r <= 8; ++r) {
    int64_t base = policy.base_backoff_us;
    for (int i = 1; i < r && base < policy.max_backoff_us; ++i) base *= 2;
    if (base > policy.max_backoff_us) base = policy.max_backoff_us;
    EXPECT_GE(first[r - 1], base * 3 / 4) << "retry " << r;
    EXPECT_LE(first[r - 1], base * 5 / 4) << "retry " << r;
  }

  // A different jitter seed perturbs the schedule (same envelope).
  RetryPolicy reseeded = policy;
  reseeded.jitter_seed = 43;
  std::vector<int64_t> other;
  for (int r = 1; r <= 8; ++r) other.push_back(RetryBackoffUs(reseeded, r));
  EXPECT_NE(first, other);
}

// ---------------------------------------------------------------------------
// Per-query deadlines
// ---------------------------------------------------------------------------

TEST_F(FaultToleranceTest, ExpiredQueuedQueriesAreShedWithoutExecuting) {
  QueryServiceConfig scfg;
  scfg.num_threads = 1;
  scfg.max_in_flight = 1;
  // Already expired at Submit: every query sheds at (or before) dequeue.
  scfg.default_deadline = std::chrono::nanoseconds(1);
  QueryService service(&catalog_, scfg);

  constexpr int kQueries = 8;
  std::vector<QueryService::Handle> handles;
  for (int i = 0; i < kQueries; ++i) {
    auto submitted = service.Submit(ScanPlan("fact"));
    ASSERT_TRUE(submitted.ok());
    handles.push_back(std::move(submitted).value());
  }
  for (auto& h : handles) {
    auto result = h.Await();
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
    EXPECT_FALSE(result.status().message().empty());
  }
  service.Drain();

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed, kQueries);
  EXPECT_EQ(stats.deadline_exceeded, kQueries);
  EXPECT_EQ(stats.shed_expired, kQueries)
      << "an already-expired queued query must never start executing";
  EXPECT_EQ(stats.ok, 0);
  EXPECT_EQ(stats.failed, 0);
  EXPECT_EQ(stats.completed,
            stats.ok + stats.failed + stats.cancelled + stats.deadline_exceeded);
  // Shed queries consume zero pool share: no execution latency samples.
  EXPECT_EQ(stats.exec_ms.count(), 0u);
  EXPECT_EQ(stats.queue_wait_ms.count(), static_cast<size_t>(kQueries));
}

TEST_F(FaultToleranceTest, RunningQueryDeadlineStopsExecutionCleanly) {
  // Entry check: a deadline already in the past never starts the query.
  Engine engine(&catalog_, EngineConfig());
  ExecuteOptions expired;
  expired.deadline_ns = SteadyNowNs() - 1;
  auto at_entry = engine.Execute(ScanPlan("fact"), expired);
  ASSERT_FALSE(at_entry.ok());
  EXPECT_EQ(at_entry.status().code(), StatusCode::kDeadlineExceeded);

  // Mid-execution: one forced-parallel worker grinding 40 one-partition
  // morsels through a sort takes several milliseconds; a 200µs deadline
  // expires during execution (or, worst case, before entry — either way the
  // status is kDeadlineExceeded and nothing hangs or leaks).
  EngineConfig slow;
  slow.exec.num_threads = 1;
  slow.exec.force_parallel = true;
  slow.exec.morsel_min_rows = 0;
  Engine slow_engine(&catalog_, slow);
  ExecuteOptions opts;
  opts.deadline_ns = SteadyNowNs() + 200 * 1000;
  auto mid = slow_engine.Execute(
      SortPlan(ScanPlan("fact"), "val", /*descending=*/true), opts);
  ASSERT_FALSE(mid.ok());
  EXPECT_EQ(mid.status().code(), StatusCode::kDeadlineExceeded);

  // The engine (and its pool) stays healthy: the same query without a
  // deadline matches the solo serial reference.
  auto reference = RunSolo(SortPlan(ScanPlan("fact"), "val", true));
  ASSERT_TRUE(reference.ok());
  auto after = slow_engine.Execute(SortPlan(ScanPlan("fact"), "val", true));
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(Serialize(after.value()), Serialize(reference.value()));
}

// ---------------------------------------------------------------------------
// Retrying scatter-gather
// ---------------------------------------------------------------------------

TEST_F(FaultToleranceTest, RetriedShardIsByteIdenticalAcrossConfigs) {
  RegisterAllSites();
  auto plan = [] {
    return TopKPlan(ScanPlan("fact"), "key", /*descending=*/true, 25);
  };
  auto reference = RunSolo(plan());
  ASSERT_TRUE(reference.ok());
  const std::string ref_rows = Serialize(reference.value());

  for (size_t shards : {size_t{2}, size_t{4}}) {
    for (int threads : {1, 4}) {
      for (const char* site : {"shard.scatter_launch",
                               "shard.scatter_complete"}) {
        ShardExecConfig cfg;
        cfg.num_shards = shards;
        cfg.engine.exec.num_threads = threads;
        ShardCoordinator coordinator(&catalog_, cfg);

        // The first evaluation fires: exactly one shard sub-query fails
        // once (at launch, or by poisoning its completed result) and is
        // retried against the same snapshot and scan-set slice.
        FailPoint* fp = FailPointRegistry::Instance().Find(site);
        ASSERT_NE(fp, nullptr);
        fp->ArmOnceAfterK(0);

        auto result = coordinator.Execute(plan());
        fp->Disarm();
        ASSERT_TRUE(result.ok())
            << site << " shards=" << shards << " threads=" << threads << ": "
            << result.status().ToString();
        EXPECT_TRUE(coordinator.last_exec().sharded);
        EXPECT_GE(coordinator.last_exec().retries, 1)
            << site << ": the injected fault must have forced a retry";
        EXPECT_EQ(result.value().shard_retries,
                  coordinator.last_exec().retries);
        EXPECT_EQ(Serialize(result.value()), ref_rows)
            << "retried run diverged: " << site << " shards=" << shards
            << " threads=" << threads;
        EXPECT_EQ(DiffStats(result.value().stats, reference.value().stats), "")
            << "retried stats diverged: " << site << " shards=" << shards
            << " threads=" << threads;
      }
    }
  }
}

TEST_F(FaultToleranceTest, RetryExhaustionSurfacesUnderlyingError) {
  RegisterAllSites();
  ShardExecConfig cfg;
  cfg.num_shards = 2;
  cfg.engine.exec.num_threads = 1;
  cfg.retry.max_attempts = 3;
  cfg.retry.base_backoff_us = 10;  // keep the doomed retries fast
  cfg.retry.max_backoff_us = 50;
  ShardCoordinator coordinator(&catalog_, cfg);

  FailPoint* fp = FailPointRegistry::Instance().Find("shard.scatter_launch");
  ASSERT_NE(fp, nullptr);
  fp->ArmProbability(1.0);  // every attempt fails: the budget must give up

  Counter* exhausted =
      MetricsRegistry::Instance().GetCounter("shard.retry_exhausted");
  const int64_t exhausted_before = exhausted->Value();

  auto result = coordinator.Execute(ScanPlan("fact"));
  fp->Disarm();
  ASSERT_FALSE(result.ok());
  // The underlying error surfaces — not a generic "retries exhausted".
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(result.status().message().find("injected fault"),
            std::string::npos)
      << result.status().ToString();
  EXPECT_GT(exhausted->Value(), exhausted_before);

  // The coordinator recovers once the fault clears — and matches serial.
  auto reference = RunSolo(ScanPlan("fact"));
  ASSERT_TRUE(reference.ok());
  auto after = coordinator.Execute(ScanPlan("fact"));
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(Serialize(after.value()), Serialize(reference.value()));
}

TEST_F(FaultToleranceTest, EngineSurfacesInjectedScanFaultCleanly) {
  RegisterAllSites();
  auto reference = RunSolo(ScanPlan("fact"));
  ASSERT_TRUE(reference.ok());

  for (int threads : {1, 4}) {
    EngineConfig config;
    config.exec.num_threads = threads;
    Engine engine(&catalog_, config);

    FailPoint* fp = FailPointRegistry::Instance().Find("scan.partition_load");
    ASSERT_NE(fp, nullptr);
    fp->ArmOnceAfterK(0);
    auto faulted = engine.Execute(ScanPlan("fact"));
    fp->Disarm();
    ASSERT_FALSE(faulted.ok()) << "threads=" << threads;
    EXPECT_EQ(faulted.status().code(), StatusCode::kUnavailable);
    EXPECT_FALSE(faulted.status().message().empty());

    // Same engine, fault cleared: byte-identical to the serial reference.
    auto after = engine.Execute(ScanPlan("fact"));
    ASSERT_TRUE(after.ok()) << after.status().ToString();
    EXPECT_EQ(Serialize(after.value()), Serialize(reference.value()));
  }
}

// ---------------------------------------------------------------------------
// Failpoint wiring self-tests (CI gates on these)
// ---------------------------------------------------------------------------

TEST_F(FaultToleranceTest, DisarmedRegistryNeverFiresDuringWorkload) {
  FailPointRegistry::Instance().DisarmAll();
  const uint64_t trips_before = FailPointRegistry::Instance().TotalTrips();

  // Drive every site's code path with the registry disarmed: parallel
  // engine scans, a predicate-cache population, and a sharded scatter.
  PredicateCache cache;
  EngineConfig ecfg;
  ecfg.exec.num_threads = 2;
  ecfg.predicate_cache = &cache;
  Engine engine(&catalog_, ecfg);
  ASSERT_TRUE(
      engine.Execute(TopKPlan(ScanPlan("fact"), "key", true, 10)).ok());
  ASSERT_TRUE(engine.Execute(ScanPlan("fact")).ok());

  ShardExecConfig scfg;
  scfg.num_shards = 2;
  ShardCoordinator coordinator(&catalog_, scfg);
  ASSERT_TRUE(coordinator.Execute(ScanPlan("fact")).ok());
  EXPECT_EQ(coordinator.last_exec().retries, 0);

  EXPECT_EQ(FailPointRegistry::Instance().TotalTrips(), trips_before)
      << "a disarmed failpoint fired — the disabled fast path is broken";
}

TEST_F(FaultToleranceTest, EveryArmedReachableSiteTripsWhenDriven) {
  RegisterAllSites();
  // One site armed at a time: arming everything at once lets the upstream
  // scan faults starve the downstream sites (a query that dies at partition
  // load never populates the cache or reaches the gather), so each site is
  // armed in isolation and driven by a workload that reaches it. This is
  // the wiring self-test CI gates on — an armed site that never trips means
  // the production code path lost its SNOW_FAILPOINT check.
  auto drive_engine = [&](bool with_cache) {
    PredicateCache cache;
    EngineConfig ecfg;
    ecfg.exec.num_threads = 2;
    if (with_cache) ecfg.predicate_cache = &cache;
    Engine engine(&catalog_, ecfg);
    for (int k = 1; k <= 4; ++k) {
      auto result = engine.Execute(TopKPlan(ScanPlan("fact"), "key", true, k));
      if (!result.ok()) EXPECT_FALSE(result.status().message().empty());
    }
  };
  auto drive_sharded = [&] {
    ShardExecConfig cfg;
    cfg.num_shards = 2;
    cfg.engine.exec.num_threads = 2;
    cfg.retry.base_backoff_us = 10;
    cfg.retry.max_backoff_us = 50;
    ShardCoordinator coordinator(&catalog_, cfg);
    for (int i = 0; i < 4; ++i) {
      auto result = coordinator.Execute(ScanPlan("fact"));
      if (!result.ok()) EXPECT_FALSE(result.status().message().empty());
    }
  };

  struct SiteDrill {
    const char* site;
    bool sharded;  ///< Reached through the coordinator vs a plain engine.
  };
  const SiteDrill drills[] = {
      {"scan.partition_load", false}, {"pool.dispatch", false},
      {"predcache.populate", false},  {"shard.scatter_launch", true},
      {"shard.scatter_complete", true}, {"shard.gather_replay", true},
  };
  for (const SiteDrill& drill : drills) {
    FailPoint* fp = FailPointRegistry::Instance().Find(drill.site);
    ASSERT_NE(fp, nullptr) << drill.site;
    fp->ArmEveryNth(2);
    if (drill.sharded) {
      drive_sharded();
    } else {
      drive_engine(/*with_cache=*/true);
    }
    EXPECT_GT(fp->evaluations(), 0u)
        << drill.site
        << " was armed but never evaluated — the site is unreachable";
    EXPECT_GT(fp->trips(), 0u)
        << drill.site << " was armed and evaluated but never tripped";
    fp->Disarm();
  }

  // Recovery: with everything disarmed, queries are healthy again.
  Engine engine(&catalog_, EngineConfig());
  auto after = engine.Execute(ScanPlan("fact"));
  ASSERT_TRUE(after.ok()) << after.status().ToString();
}

// ---------------------------------------------------------------------------
// Injection storm through the service: no crash, no hang, no leaked slot.
// ---------------------------------------------------------------------------

TEST_F(FaultToleranceTest, InjectionStormLeaksNoSlotsAndKeepsStatsConsistent) {
  RegisterAllSites();
  ASSERT_TRUE(catalog_.RegisterTable(Synthetic(
      "churn", workload::Layout::kRandom, 6, 80, 99)).ok());

  QueryServiceConfig scfg;
  scfg.num_threads = 2;
  scfg.max_in_flight = 3;
  scfg.num_shards = 2;
  scfg.retry.base_backoff_us = 10;
  scfg.retry.max_backoff_us = 100;
  scfg.default_deadline = std::chrono::seconds(30);  // generous: no shedding
  QueryService service(&catalog_, scfg);

  // 20% injection at every site, deterministic per site via distinct seeds.
  uint64_t seed = 1;
  for (const char* site : kAllSites) {
    FailPointRegistry::Instance().Find(site)->ArmProbability(0.2, seed++);
  }

  std::atomic<bool> stop{false};
  std::thread churner([&] {
    for (uint64_t gen = 100; !stop.load(); ++gen) {
      ASSERT_TRUE(catalog_
                      .ReplaceTable(Synthetic("churn",
                                              workload::Layout::kRandom, 6, 80,
                                              gen))
                      .ok());
      std::this_thread::yield();
    }
  });

  constexpr int kSubmitters = 3;
  constexpr int kQueriesPerSubmitter = 20;
  std::vector<std::thread> submitters;
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      for (int i = 0; i < kQueriesPerSubmitter; ++i) {
        PlanPtr plan;
        switch ((s + i) % 3) {
          case 0: plan = ScanPlan("fact"); break;
          case 1: plan = TopKPlan(ScanPlan("fact"), "key", true, 10); break;
          default: plan = ScanPlan("churn"); break;
        }
        auto submitted = service.Submit(std::move(plan));
        ASSERT_TRUE(submitted.ok());  // queue is unbounded here
        auto result = submitted.value().Await();
        if (!result.ok()) {
          // Clean, well-typed failure only — never a crash, hang, or
          // partial result dressed up as success.
          EXPECT_FALSE(result.status().message().empty());
          EXPECT_TRUE(result.status().code() == StatusCode::kUnavailable ||
                      result.status().code() ==
                          StatusCode::kDeadlineExceeded ||
                      result.status().code() == StatusCode::kInternal)
              << result.status().ToString();
        }
      }
    });
  }
  for (auto& t : submitters) t.join();
  stop.store(true);
  churner.join();

  service.Drain();
  FailPointRegistry::Instance().DisarmAll();

  // Slot reconciliation: nothing in flight, nothing queued, no task stuck
  // in the shared pool's backlog.
  EXPECT_EQ(service.in_flight(), 0u);
  EXPECT_EQ(service.queue_depth(), 0u);
  EXPECT_EQ(service.scan_pool()->queue_depth(), 0u)
      << "a faulted query left tasks stranded in the shared pool queue";

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, kSubmitters * kQueriesPerSubmitter);
  EXPECT_EQ(stats.completed, stats.submitted);
  EXPECT_EQ(stats.completed,
            stats.ok + stats.failed + stats.cancelled + stats.deadline_exceeded)
      << "service accounting lost a query during the storm";
  EXPECT_GT(FailPointRegistry::Instance().TotalTrips(), 0u)
      << "the storm never injected a single fault — 20% at six sites";

  // The service still serves cleanly after the storm.
  auto reference = RunSolo(ScanPlan("fact"));
  ASSERT_TRUE(reference.ok());
  auto after = service.Execute(ScanPlan("fact"));
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(Serialize(after.value()), Serialize(reference.value()));
}

}  // namespace
}  // namespace snowprune
