#include <gtest/gtest.h>

#include "storage/catalog.h"
#include "storage/scan_set.h"
#include "storage/table.h"
#include "test_util.h"

namespace snowprune {
namespace {

Schema TwoColSchema() {
  return Schema({Field{"a", DataType::kInt64, true},
                 Field{"b", DataType::kString, true}});
}

TEST(ColumnVectorTest, AppendAndRead) {
  ColumnVector col(DataType::kInt64);
  col.AppendInt64(3);
  col.AppendNull();
  col.AppendInt64(-1);
  EXPECT_EQ(col.size(), 3u);
  EXPECT_FALSE(col.IsNull(0));
  EXPECT_TRUE(col.IsNull(1));
  EXPECT_EQ(col.Int64At(2), -1);
  EXPECT_TRUE(col.ValueAt(1).is_null());
  EXPECT_EQ(col.ValueAt(0).int64_value(), 3);
}

TEST(ColumnVectorTest, StatsIncludeNullsAndBounds) {
  ColumnVector col(DataType::kInt64);
  col.AppendInt64(10);
  col.AppendNull();
  col.AppendInt64(-5);
  ColumnStats stats = col.ComputeStats();
  EXPECT_TRUE(stats.has_stats);
  EXPECT_EQ(stats.row_count, 3);
  EXPECT_EQ(stats.null_count, 1);
  EXPECT_EQ(stats.min.int64_value(), -5);
  EXPECT_EQ(stats.max.int64_value(), 10);
  Interval iv = stats.ToInterval();
  EXPECT_TRUE(iv.maybe_null);
  EXPECT_EQ(iv.lo->int64_value(), -5);
}

TEST(ColumnVectorTest, AllNullStats) {
  ColumnVector col(DataType::kString);
  col.AppendNull();
  col.AppendNull();
  ColumnStats stats = col.ComputeStats();
  EXPECT_TRUE(stats.min.is_null());
  EXPECT_TRUE(stats.ToInterval().all_null);
}

TEST(TableBuilderTest, CutsPartitionsAtTarget) {
  std::vector<std::vector<Value>> rows;
  for (int i = 0; i < 25; ++i) {
    rows.push_back({Value(int64_t{i}), Value("r" + std::to_string(i))});
  }
  auto table = testing_util::MakeTable("t", TwoColSchema(), rows, 10);
  EXPECT_EQ(table->num_partitions(), 3u);
  EXPECT_EQ(table->num_rows(), 25);
  EXPECT_EQ(table->partition_metadata(0).row_count(), 10);
  EXPECT_EQ(table->partition_metadata(2).row_count(), 5);
  // Zone maps are per partition.
  EXPECT_EQ(table->stats(0, 0).max.int64_value(), 9);
  EXPECT_EQ(table->stats(1, 0).min.int64_value(), 10);
}

TEST(TableBuilderTest, RejectsArityAndTypeMismatch) {
  TableBuilder builder("t", TwoColSchema(), 10);
  EXPECT_FALSE(builder.AppendRow({Value(int64_t{1})}).ok());
  EXPECT_FALSE(builder.AppendRow({Value("str"), Value("b")}).ok());
  EXPECT_TRUE(builder.AppendRow({Value(int64_t{1}), Value("b")}).ok());
  // Int literals may land in float columns.
  Schema float_schema({Field{"f", DataType::kFloat64, true}});
  TableBuilder fb("f", float_schema, 4);
  EXPECT_TRUE(fb.AppendRow({Value(int64_t{3})}).ok());
}

TEST(TableBuilderTest, RejectsNullInNonNullableColumn) {
  Schema schema({Field{"a", DataType::kInt64, false}});
  TableBuilder builder("t", schema, 4);
  EXPECT_FALSE(builder.AppendRow({Value::Null()}).ok());
}

TEST(TableTest, LoadMetering) {
  auto table = testing_util::IntTable("t", "x", {{1, 2}, {3, 4}, {5}});
  EXPECT_EQ(table->load_count(), 0);
  table->LoadPartition(1);
  table->LoadPartition(2);
  EXPECT_EQ(table->load_count(), 2);
  EXPECT_EQ(table->loaded_rows(), 3);
  // Metadata access does not meter.
  (void)table->stats(0, 0);
  EXPECT_EQ(table->load_count(), 2);
  table->ResetMeters();
  EXPECT_EQ(table->load_count(), 0);
}

TEST(TableTest, DmlBumpsVersion) {
  auto table = testing_util::IntTable("t", "x", {{1}, {2}, {3}});
  uint64_t v0 = table->dml_version();
  table->DeletePartition(1);
  EXPECT_GT(table->dml_version(), v0);
  EXPECT_EQ(table->num_partitions(), 2u);
  ColumnVector col(DataType::kInt64);
  col.AppendInt64(42);
  table->ReplacePartition(0, MicroPartition(0, {std::move(col)}));
  EXPECT_EQ(table->stats(0, 0).max.int64_value(), 42);
}

TEST(TableTest, DropAndBackfillStats) {
  auto table = testing_util::IntTable("t", "x", {{1, 2}, {3, 4}, {5, 6}, {7}});
  size_t dropped = table->DropStatsOnFraction(1.0, /*seed=*/1);
  EXPECT_EQ(dropped, 4u);
  EXPECT_FALSE(table->partition_metadata(0).has_stats());
  EXPECT_FALSE(table->stats(0, 0).has_stats);
  // Backfill performs metered loads (§8.1) and restores zone maps.
  table->ResetMeters();
  size_t backfilled = table->BackfillMissingStats();
  EXPECT_EQ(backfilled, 4u);
  EXPECT_EQ(table->load_count(), 4);
  EXPECT_TRUE(table->stats(0, 0).has_stats);
  EXPECT_EQ(table->stats(3, 0).min.int64_value(), 7);
  // Second backfill is a no-op.
  EXPECT_EQ(table->BackfillMissingStats(), 0u);
}

TEST(ScanSetTest, AllOfAndSerializedBytes) {
  ScanSet s = ScanSet::AllOf(3);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s[2], 2u);
  EXPECT_EQ(s.SerializedBytes(), 8u + 12u);
  s.Clear();
  EXPECT_TRUE(s.empty());
}

TEST(CatalogTest, RegisterLookupDrop) {
  Catalog catalog;
  auto t = testing_util::IntTable("orders", "x", {{1}});
  EXPECT_TRUE(catalog.RegisterTable(t).ok());
  EXPECT_FALSE(catalog.RegisterTable(t).ok());  // duplicate
  EXPECT_NE(catalog.GetTable("orders"), nullptr);
  EXPECT_EQ(catalog.GetTable("missing"), nullptr);
  EXPECT_EQ(catalog.TotalPartitions(), 1);
  t->LoadPartition(0);
  EXPECT_EQ(catalog.TotalLoads(), 1);
  EXPECT_TRUE(catalog.DropTable("orders").ok());
  EXPECT_FALSE(catalog.DropTable("orders").ok());
}

}  // namespace
}  // namespace snowprune
