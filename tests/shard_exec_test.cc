/// Sharded scatter-gather execution: the coordinator's cross-shard pruning
/// level (shard-summary exclusion before any shard is contacted), the
/// single-survivor fast path, gather-side merge determinism for the
/// stateful operators, cancellation fan-out, DML snapshot atomicity
/// through the query service, and the service's shard-aware morsel-window
/// budgeting.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "expr/builder.h"
#include "service/query_service.h"
#include "shard/coordinator.h"
#include "shard/shard_map.h"
#include "test_util.h"
#include "workload/table_gen.h"

namespace snowprune {
namespace {

using shard::ShardCoordinator;
using shard::ShardExecConfig;
using shard::ShardMap;
using shard::ShardPolicy;
using testing_util::DiffStats;
using testing_util::IntTable;
using testing_util::MakeTable;
using testing_util::Serialize;

/// A clustered int table whose partitions hold disjoint key ranges — the
/// layout where range shards get tight merged zone maps, i.e. where the
/// cross-shard level can actually fire.
std::shared_ptr<Table> RangedTable(const std::string& name,
                                   size_t partitions = 8,
                                   size_t rows_per_partition = 10) {
  std::vector<std::vector<int64_t>> parts;
  int64_t v = 0;
  for (size_t p = 0; p < partitions; ++p) {
    std::vector<int64_t> rows;
    for (size_t r = 0; r < rows_per_partition; ++r) rows.push_back(v++);
    parts.push_back(std::move(rows));
  }
  return IntTable(name, "key", parts);
}

QueryResult RunSerial(Catalog* catalog, const PlanPtr& plan) {
  EngineConfig config;
  config.exec.num_threads = 1;
  Engine engine(catalog, config);
  auto result = engine.Execute(plan);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

// ---------------------------------------------------------------------------
// Cross-shard pruning level
// ---------------------------------------------------------------------------

/// A predicate excluded by every shard's merged zone map must answer from
/// shard summaries alone: no shard contacted, no scatter thread spawned, no
/// partition loaded — and rows + deterministic stats still identical to a
/// serial single-engine run (shard counters additive on top).
TEST(ShardExecTest, AllShardsPrunedAnswersFromSummariesAlone) {
  Catalog catalog;
  auto table = RangedTable("t", 8, 10);  // keys 0..79
  ASSERT_TRUE(catalog.RegisterTable(table).ok());
  auto plan = ScanPlan("t", Gt(Col("key"), Lit(int64_t{1000})));
  QueryResult serial = RunSerial(&catalog, plan);

  ShardExecConfig config;
  config.num_shards = 4;
  ShardCoordinator coordinator(&catalog, config);
  table->ResetMeters();
  auto result = coordinator.Execute(plan);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const QueryResult& r = result.value();

  EXPECT_TRUE(r.rows.empty());
  EXPECT_EQ(Serialize(serial), Serialize(r));
  EXPECT_EQ(DiffStats(serial.stats, r.stats), "");
  EXPECT_EQ(table->load_count(), 0);

  const auto& info = coordinator.last_exec();
  EXPECT_TRUE(info.sharded);
  EXPECT_EQ(info.shards_contacted, 0u);
  EXPECT_EQ(info.scatter_threads, 0u);
  // Every shard was excluded by its merged zone map, not merely by the
  // per-partition pass.
  for (uint8_t pruned : info.summary_pruned) EXPECT_EQ(pruned, 1);
  EXPECT_EQ(r.stats.shards_total, 4);
  EXPECT_EQ(r.stats.shards_pruned, 4);
  // The cross-shard level is additive: the serial run has no shard counters.
  EXPECT_EQ(serial.stats.shards_total, 0);
  EXPECT_EQ(serial.stats.shards_pruned, 0);
}

/// A predicate matching exactly one range shard takes the single-survivor
/// fast path: the sub-query runs inline on the coordinator's thread.
TEST(ShardExecTest, SingleSurvivingShardRunsInline) {
  Catalog catalog;
  auto table = RangedTable("t", 8, 10);  // keys 0..79, 2 partitions/shard
  ASSERT_TRUE(catalog.RegisterTable(table).ok());
  auto plan = ScanPlan("t", Between(Col("key"), Value(int64_t{0}),
                                    Value(int64_t{5})));
  QueryResult serial = RunSerial(&catalog, plan);

  ShardExecConfig config;
  config.num_shards = 4;
  ShardCoordinator coordinator(&catalog, config);
  auto result = coordinator.Execute(plan);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_EQ(Serialize(serial), Serialize(result.value()));
  EXPECT_EQ(DiffStats(serial.stats, result.value().stats), "");
  const auto& info = coordinator.last_exec();
  EXPECT_TRUE(info.sharded);
  EXPECT_EQ(info.shards_contacted, 1u);
  EXPECT_EQ(info.scatter_threads, 0u);
  EXPECT_EQ(result.value().stats.shards_total, 4);
  EXPECT_EQ(result.value().stats.shards_pruned, 3);
}

/// shards_total counts shards that actually hold partitions: with more
/// shards than partitions the empty ones are never assigned, never counted,
/// never contacted.
TEST(ShardExecTest, EmptyShardsAreNeverAssignedOrCounted) {
  Catalog catalog;
  auto table = RangedTable("t", 3, 4);
  ASSERT_TRUE(catalog.RegisterTable(table).ok());
  ShardMap map = ShardMap::Build(*table, 8, ShardPolicy::kRange);
  EXPECT_LE(map.assigned_shards(), 3u);

  ShardExecConfig config;
  config.num_shards = 8;
  ShardCoordinator coordinator(&catalog, config);
  auto plan = ScanPlan("t");
  auto result = coordinator.Execute(plan);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().stats.shards_total,
            static_cast<int64_t>(map.assigned_shards()));
  EXPECT_EQ(result.value().stats.shards_pruned, 0);
}

// ---------------------------------------------------------------------------
// Gather-side merge determinism
// ---------------------------------------------------------------------------

/// Aggregate / top-k / sort results must be byte-identical (rows AND
/// deterministic stats) to a serial single-engine run at every shard count
/// × shard-engine thread count — including Float64 order keys with NaN,
/// where the sort's comparator fallback decides placement.
TEST(ShardExecTest, GatherMergeIsDeterministicAcrossShardAndThreadCounts) {
  Catalog catalog;
  Schema schema({Field{"key", DataType::kInt64, false},
                 Field{"val", DataType::kFloat64, true},
                 Field{"cat", DataType::kString, false}});
  std::vector<std::vector<Value>> rows;
  const double nan = std::nan("");
  for (int64_t i = 0; i < 96; ++i) {
    Value val = i % 7 == 0 ? Value(nan)
                           : (i % 5 == 0 ? Value() : Value(i * 0.75 - 20.0));
    rows.push_back({Value(i), val, Value("c" + std::to_string(i % 4))});
  }
  auto table = MakeTable("g", schema, rows, 8);
  ASSERT_TRUE(catalog.RegisterTable(table).ok());

  ExprPtr pred = Gt(Col("key"), Lit(int64_t{10}));
  ASSERT_TRUE(BindExpr(pred, table->schema()).ok());
  const PlanPtr plans[] = {
      AggregatePlan(ScanPlan("g", pred), {"cat"},
                    {AggPlanSpec{AggFunc::kCount, "", "n"},
                     AggPlanSpec{AggFunc::kSum, "key", "key_sum"},
                     AggPlanSpec{AggFunc::kMin, "val", "val_min"}}),
      TopKPlan(ScanPlan("g", pred), "key", true, 7),
      TopKPlan(ScanPlan("g", pred), "val", false, 9),
      SortPlan(ScanPlan("g", pred), "val", true),
      SortPlan(ScanPlan("g"), "key", false),
      LimitPlan(ScanPlan("g", pred), 13),
  };
  for (size_t i = 0; i < sizeof(plans) / sizeof(plans[0]); ++i) {
    QueryResult serial = RunSerial(&catalog, plans[i]);
    for (size_t shards : {1u, 2u, 4u}) {
      for (int threads : {1, 2, 4}) {
        ShardExecConfig config;
        config.num_shards = shards;
        config.engine.exec.num_threads = threads;
        ShardCoordinator coordinator(&catalog, config);
        auto result = coordinator.Execute(plans[i]);
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        const std::string ctx = "plan " + std::to_string(i) + " shards " +
                                std::to_string(shards) + " threads " +
                                std::to_string(threads);
        EXPECT_TRUE(coordinator.last_exec().sharded) << ctx;
        ASSERT_EQ(Serialize(serial), Serialize(result.value())) << ctx;
        ASSERT_EQ(DiffStats(serial.stats, result.value().stats), "") << ctx;
      }
    }
  }
}

/// Joins are not a scatter-gather shape — they must fall back to the plain
/// single-engine path, byte-identically, with no shard counters.
TEST(ShardExecTest, JoinsFallBackToSingleEngine) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterTable(RangedTable("probe", 6, 8)).ok());
  ASSERT_TRUE(catalog.RegisterTable(RangedTable("build", 2, 8)).ok());
  auto plan = JoinPlan(ScanPlan("probe"), ScanPlan("build"), "key", "key");
  QueryResult serial = RunSerial(&catalog, plan);

  ShardExecConfig config;
  config.num_shards = 4;
  ShardCoordinator coordinator(&catalog, config);
  auto result = coordinator.Execute(plan);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(coordinator.last_exec().sharded);
  EXPECT_EQ(Serialize(serial), Serialize(result.value()));
  EXPECT_EQ(DiffStats(serial.stats, result.value().stats), "");
  EXPECT_EQ(result.value().stats.shards_total, 0);
}

// ---------------------------------------------------------------------------
// Cancellation fan-out
// ---------------------------------------------------------------------------

TEST(ShardExecTest, CancelledBeforeScatterLoadsNothing) {
  Catalog catalog;
  auto table = RangedTable("t", 8, 10);
  ASSERT_TRUE(catalog.RegisterTable(table).ok());
  ShardExecConfig config;
  config.num_shards = 4;
  ShardCoordinator coordinator(&catalog, config);

  std::atomic<bool> cancel{true};
  table->ResetMeters();
  auto plan = ScanPlan("t");
  auto result = coordinator.Execute(plan, &cancel);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(table->load_count(), 0);
}

/// Cancelling mid-run from another thread must fan out to every in-flight
/// shard sub-query and surface as Cancelled (or complete, if the race is
/// lost) — never crash, deadlock, or return a partial result as OK.
TEST(ShardExecTest, MidRunCancelFansOutToShards) {
  Catalog catalog;
  auto table = RangedTable("t", 64, 64);
  ASSERT_TRUE(catalog.RegisterTable(table).ok());
  ShardExecConfig config;
  config.num_shards = 4;
  config.engine.exec.num_threads = 2;
  ShardCoordinator coordinator(&catalog, config);
  auto plan = ScanPlan("t");
  QueryResult serial = RunSerial(&catalog, plan);

  for (int round = 0; round < 8; ++round) {
    std::atomic<bool> cancel{false};
    std::thread canceller([&] {
      std::this_thread::sleep_for(std::chrono::microseconds(50 * round));
      cancel.store(true, std::memory_order_relaxed);
    });
    auto result = coordinator.Execute(plan, &cancel);
    canceller.join();
    if (result.ok()) {
      // The query won the race: the result must still be the full answer.
      EXPECT_EQ(Serialize(serial), Serialize(result.value())) << round;
    } else {
      EXPECT_EQ(result.status().code(), StatusCode::kCancelled) << round;
    }
  }
}

// ---------------------------------------------------------------------------
// DML snapshot atomicity across shards (through the query service)
// ---------------------------------------------------------------------------

/// ReplaceTable concurrent with sharded queries: every query must see ONE
/// table version across all its shard sub-queries — all rows from the old
/// version or all from the new, never a mix — and the shard map must follow
/// the version it reads.
TEST(ShardExecTest, ReplaceTableIsSnapshotAtomicAcrossShards) {
  auto version_table = [](int64_t version) {
    // 8 partitions of 16 rows, every row = the version number.
    std::vector<std::vector<int64_t>> parts(
        8, std::vector<int64_t>(16, version));
    return IntTable("v", "key", parts);
  };
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterTable(version_table(0)).ok());

  service::QueryServiceConfig config;
  config.num_threads = 4;
  config.max_in_flight = 2;
  config.num_shards = 2;
  service::QueryService service(&catalog, config);

  std::atomic<bool> stop{false};
  std::thread dml([&] {
    for (int64_t version = 1; !stop.load(); ++version) {
      ASSERT_TRUE(catalog.ReplaceTable(version_table(version)).ok());
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  for (int i = 0; i < 200; ++i) {
    auto result = service.Execute(ScanPlan("v"));
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    const auto& rows = result.value().rows;
    ASSERT_EQ(rows.size(), 128u) << "query " << i << " saw a partial table";
    for (const auto& row : rows) {
      ASSERT_EQ(row[0].int64_value(), rows[0][0].int64_value())
          << "query " << i << " mixed two table versions";
    }
  }
  stop.store(true);
  dml.join();
}

// ---------------------------------------------------------------------------
// Shard-aware morsel-window budgeting
// ---------------------------------------------------------------------------

/// Regression: the per-query morsel window must divide the service budget
/// by (max_in_flight × num_shards) — a sharded query fans out into up to
/// num_shards concurrent sub-scans, each owning a window. The old divisor
/// (max_in_flight alone) let one sharded query claim num_shards shares.
TEST(ShardExecTest, MorselWindowBudgetDividesByShardFanOut) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterTable(RangedTable("t", 16, 8)).ok());

  service::QueryServiceConfig unsharded;
  unsharded.num_threads = 4;  // default budget 4 * 4 = 16
  unsharded.max_in_flight = 2;
  service::QueryService plain(&catalog, unsharded);
  EXPECT_EQ(plain.per_query_morsel_window(), 8u);

  service::QueryServiceConfig sharded = unsharded;
  sharded.num_shards = 4;
  service::QueryService service(&catalog, sharded);
  EXPECT_EQ(service.per_query_morsel_window(), 2u);

  // An explicit per-engine window still wins over the budget.
  service::QueryServiceConfig pinned = sharded;
  pinned.engine.exec.morsel_window = 5;
  service::QueryService pinned_service(&catalog, pinned);
  EXPECT_EQ(pinned_service.per_query_morsel_window(), 5u);

  // The floor of 2 still applies at extreme fan-out.
  service::QueryServiceConfig floored = unsharded;
  floored.num_shards = 64;
  service::QueryService floored_service(&catalog, floored);
  EXPECT_EQ(floored_service.per_query_morsel_window(), 2u);

  // And the sharded service still answers correctly through the budgeted
  // window (driver routing + coordinator + gather end to end).
  auto plan = ScanPlan("t", Gt(Col("key"), Lit(int64_t{100})));
  QueryResult serial = RunSerial(&catalog, plan);
  auto result = service.Execute(plan);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(Serialize(serial), Serialize(result.value()));
  EXPECT_EQ(DiffStats(serial.stats, result.value().stats), "");
  EXPECT_GT(result.value().stats.shards_pruned, 0);
}

/// Sanity on the placement policies: every partition owned by exactly one
/// shard, range shards contiguous, hash spreading across shards.
TEST(ShardExecTest, ShardMapPoliciesPartitionTheTable) {
  auto table = RangedTable("t", 12, 5);
  for (ShardPolicy policy : {ShardPolicy::kRange, ShardPolicy::kHash}) {
    ShardMap map = ShardMap::Build(*table, 4, policy);
    std::vector<int> owners(table->num_partitions(), 0);
    size_t total = 0;
    for (size_t s = 0; s < map.num_shards(); ++s) {
      for (PartitionId pid : map.shard_partitions(s)) {
        EXPECT_EQ(map.shard_of(pid), s) << ToString(policy);
        ++owners[pid];
        ++total;
      }
    }
    EXPECT_EQ(total, table->num_partitions()) << ToString(policy);
    for (int count : owners) EXPECT_EQ(count, 1) << ToString(policy);
    if (policy == ShardPolicy::kRange) {
      for (size_t s = 0; s < map.num_shards(); ++s) {
        const auto& pids = map.shard_partitions(s);
        for (size_t i = 1; i < pids.size(); ++i) {
          EXPECT_EQ(pids[i], pids[i - 1] + 1) << "range shard not contiguous";
        }
      }
    }
  }
}

}  // namespace
}  // namespace snowprune
