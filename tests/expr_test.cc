#include <gtest/gtest.h>

#include "common/rng.h"
#include "expr/builder.h"
#include "expr/evaluator.h"
#include "expr/like.h"
#include "expr/range_analysis.h"
#include "expr/rewrite.h"
#include "test_util.h"

namespace snowprune {
namespace {

using testing_util::MakeTable;

// ----------------------------------------------------------------- LIKE ----

TEST(LikeTest, BasicWildcards) {
  EXPECT_TRUE(LikeMatch("Marked-North-Ridge", "Marked-%-Ridge"));
  EXPECT_FALSE(LikeMatch("Marked-North-Peak", "Marked-%-Ridge"));
  EXPECT_TRUE(LikeMatch("abc", "a_c"));
  EXPECT_FALSE(LikeMatch("abbc", "a_c"));
  EXPECT_TRUE(LikeMatch("anything", "%"));
  EXPECT_TRUE(LikeMatch("", "%"));
  EXPECT_FALSE(LikeMatch("", "_"));
  EXPECT_TRUE(LikeMatch("Alpine Ibex", "Alpine%"));
  EXPECT_TRUE(LikeMatch("a%b", "a%b"));  // % in text matches literally via %
}

TEST(LikeTest, GreedyBacktracking) {
  EXPECT_TRUE(LikeMatch("xayaz", "%a%z"));
  EXPECT_TRUE(LikeMatch("aaa", "%a"));
  EXPECT_FALSE(LikeMatch("abc", "%d%"));
}

TEST(LikeTest, PrefixExtraction) {
  EXPECT_EQ(LikePrefix("Marked-%-Ridge"), "Marked-");
  EXPECT_EQ(LikePrefix("%suffix"), "");
  EXPECT_EQ(LikePrefix("exact"), "exact");
  EXPECT_TRUE(IsPurePrefixPattern("Alpine%"));
  EXPECT_FALSE(IsPurePrefixPattern("Alpine%x"));
  EXPECT_FALSE(IsPurePrefixPattern("Al%pine%"));
  EXPECT_TRUE(IsExactPattern("exact"));
  EXPECT_FALSE(IsExactPattern("ex_ct"));
}

TEST(LikeTest, PrefixSuccessor) {
  EXPECT_EQ(PrefixSuccessor("abc").value(), "abd");
  EXPECT_EQ(PrefixSuccessor(std::string("a\xff")).value(), "b");
  EXPECT_FALSE(PrefixSuccessor(std::string("\xff\xff")).has_value());
  // Every string with prefix p is < successor(p).
  EXPECT_LT(std::string("abczzzz"), PrefixSuccessor("abc").value());
}

// ----------------------------------------------------------- Evaluation ----

Schema TrailSchema() {
  return Schema({Field{"unit", DataType::kString, true},
                 Field{"altit", DataType::kFloat64, true},
                 Field{"name", DataType::kString, true}});
}

TEST(EvalTest, PaperGuidingExample) {
  // The §3 query: IF(unit='feet', altit*0.3048, altit) > 1500
  //               AND name LIKE 'Marked-%-Ridge'
  auto pred = And(
      {Gt(If(Eq(Col("unit"), Lit("feet")), Mul(Col("altit"), Lit(0.3048)),
             Col("altit")),
          Lit(1500)),
       Like(Col("name"), "Marked-%-Ridge")});
  auto table = MakeTable(
      "trails", TrailSchema(),
      {
          {Value("feet"), Value(6000.0), Value("Marked-East-Ridge")},   // 1828m
          {Value("meters"), Value(1400.0), Value("Marked-East-Ridge")}, // low
          {Value("feet"), Value(6000.0), Value("Unmarked-Path")},       // name
          {Value("meters"), Value(2000.0), Value("Marked-West-Ridge")}, // match
      },
      4);
  ASSERT_TRUE(BindExpr(pred, table->schema()).ok());
  const MicroPartition& part = table->partition_metadata(0);
  EXPECT_EQ(CountMatches(*pred, part), 2);
  auto mask = EvalPredicateMask(*pred, part);
  EXPECT_EQ(mask[0], 1);
  EXPECT_EQ(mask[1], 0);
  EXPECT_EQ(mask[2], 0);
  EXPECT_EQ(mask[3], 1);
}

TEST(EvalTest, NullPropagation) {
  Schema schema({Field{"x", DataType::kInt64, true}});
  auto table = MakeTable("t", schema, {{Value::Null()}, {Value(int64_t{5})}}, 2);
  const MicroPartition& part = table->partition_metadata(0);
  auto gt = Gt(Col("x"), Lit(3));
  ASSERT_TRUE(BindExpr(gt, schema).ok());
  EXPECT_FALSE(EvalPredicate(*gt, part, 0).has_value());  // NULL
  EXPECT_TRUE(*EvalPredicate(*gt, part, 1));
  // x IS NULL never returns NULL.
  auto isnull = IsNull(Col("x"));
  ASSERT_TRUE(BindExpr(isnull, schema).ok());
  EXPECT_TRUE(*EvalPredicate(*isnull, part, 0));
  EXPECT_FALSE(*EvalPredicate(*isnull, part, 1));
}

TEST(EvalTest, ThreeValuedConnectives) {
  Schema schema({Field{"x", DataType::kInt64, true}});
  auto table = MakeTable("t", schema, {{Value::Null()}}, 1);
  const MicroPartition& part = table->partition_metadata(0);
  // NULL AND FALSE = FALSE; NULL OR TRUE = TRUE; NULL AND TRUE = NULL.
  auto null_cmp = Gt(Col("x"), Lit(0));
  ASSERT_TRUE(BindExpr(null_cmp, schema).ok());
  EXPECT_FALSE(*EvalPredicate(*And({null_cmp, Lit(false)}), part, 0));
  EXPECT_TRUE(*EvalPredicate(*Or({null_cmp, Lit(true)}), part, 0));
  EXPECT_FALSE(EvalPredicate(*And({null_cmp, Lit(true)}), part, 0).has_value());
  // NOT NULL = NULL; (NULL) IS NOT TRUE = TRUE.
  EXPECT_FALSE(EvalPredicate(*Not(null_cmp), part, 0).has_value());
  EXPECT_TRUE(*EvalPredicate(*NotTrue(null_cmp), part, 0));
}

TEST(EvalTest, DivisionByZeroIsNull) {
  Schema schema({Field{"x", DataType::kInt64, true}});
  auto table = MakeTable("t", schema, {{Value(int64_t{10})}}, 1);
  auto expr = Div(Col("x"), Lit(0));
  ASSERT_TRUE(BindExpr(expr, schema).ok());
  EXPECT_TRUE(EvalScalar(*expr, table->partition_metadata(0), 0).is_null());
}

TEST(EvalTest, InListAndStartsWith) {
  Schema schema({Field{"s", DataType::kString, true}});
  auto table = MakeTable("t", schema, {{Value("MAIL")}, {Value("TRUCK")}}, 2);
  const MicroPartition& part = table->partition_metadata(0);
  auto in = In(Col("s"), {Value("MAIL"), Value("SHIP")});
  ASSERT_TRUE(BindExpr(in, schema).ok());
  EXPECT_TRUE(*EvalPredicate(*in, part, 0));
  EXPECT_FALSE(*EvalPredicate(*in, part, 1));
  auto sw = StartsWith(Col("s"), "TRU");
  ASSERT_TRUE(BindExpr(sw, schema).ok());
  EXPECT_FALSE(*EvalPredicate(*sw, part, 0));
  EXPECT_TRUE(*EvalPredicate(*sw, part, 1));
}

TEST(EvalTest, BindFailsOnMissingColumn) {
  EXPECT_FALSE(BindExpr(Col("nope"), TrailSchema()).ok());
  EXPECT_TRUE(BindExpr(Col("unit"), TrailSchema()).ok());
}

TEST(EvalTest, ReferencedColumnsDeduplicates) {
  auto e = And({Gt(Col("a"), Lit(1)), Lt(Col("a"), Col("b"))});
  auto cols = ReferencedColumns(e);
  EXPECT_EQ(cols.size(), 2u);
}

// -------------------------------------------------------- Range analysis ----

std::vector<ColumnStats> StatsOf(const Table& table, PartitionId pid) {
  return table.partition_metadata(pid).all_stats();
}

TEST(RangeAnalysisTest, PaperSection31WorkedExample) {
  // Metadata from the paper's table: unit in ["feet","meters"],
  // altit in [934, 7674], name in ["Basecamp-...", "Unmarked-..."].
  Schema schema = TrailSchema();
  std::vector<ColumnStats> stats(3);
  stats[0] = {true, Value("feet"), Value("meters"), 0, 100};
  stats[1] = {true, Value(934.0), Value(7674.0), 0, 100};
  stats[2] = {true, Value("Basecamp-Trail"), Value("Unmarked-Peak"), 0, 100};

  auto altitude = If(Eq(Col("unit"), Lit("feet")),
                     Mul(Col("altit"), Lit(0.3048)), Col("altit"));
  auto pred = And({Gt(altitude, Lit(1500)), Like(Col("name"), "Marked-%-Ridge")});
  ASSERT_TRUE(BindExpr(pred, schema).ok());

  // The altitude range must be the union of both branches:
  // [934*0.3048, 7674] ~= [284.68, 7674].
  Interval alt = DeriveInterval(*altitude, stats);
  EXPECT_NEAR(alt.lo->AsDouble(), 284.68, 0.01);
  EXPECT_NEAR(alt.hi->AsDouble(), 7674.0, 0.01);

  // The paper's conclusion: this partition cannot be pruned.
  BoolRange r = AnalyzePredicate(*pred, stats);
  EXPECT_FALSE(r.prunable());
  EXPECT_FALSE(r.fully_matching());

  // With unit pinned to 'meters' (min == max) the IF branch is decided and
  // altit > 1500 becomes possible but not certain.
  stats[0] = {true, Value("meters"), Value("meters"), 0, 100};
  alt = DeriveInterval(*altitude, stats);
  EXPECT_NEAR(alt.lo->AsDouble(), 934.0, 0.01);

  // Pin unit to 'feet' and lower the altitude so no row converts above 1500m:
  // 4000ft * 0.3048 = 1219m -> prunable.
  stats[0] = {true, Value("feet"), Value("feet"), 0, 100};
  stats[1] = {true, Value(934.0), Value(4000.0), 0, 100};
  r = AnalyzePredicate(*pred, stats);
  EXPECT_TRUE(r.prunable());
}

TEST(RangeAnalysisTest, FullyMatchingDetection) {
  std::vector<ColumnStats> stats(1);
  stats[0] = {true, Value(int64_t{50}), Value(int64_t{80}), 0, 10};
  auto schema = Schema({Field{"s", DataType::kInt64, true}});
  auto pred = Ge(Col("s"), Lit(50));
  ASSERT_TRUE(BindExpr(pred, schema).ok());
  BoolRange r = AnalyzePredicate(*pred, stats);
  EXPECT_TRUE(r.fully_matching());
  // NULLs spoil fully-matching but not pruning.
  stats[0].null_count = 1;
  r = AnalyzePredicate(*pred, stats);
  EXPECT_FALSE(r.fully_matching());
  EXPECT_FALSE(r.prunable());
}

TEST(RangeAnalysisTest, LikePrefixPruning) {
  Schema schema({Field{"species", DataType::kString, true}});
  auto pred = Like(Col("species"), "Alpine%");
  ASSERT_TRUE(BindExpr(pred, schema).ok());
  // Partition entirely within the Alpine prefix: fully matching.
  std::vector<ColumnStats> stats(1);
  stats[0] = {true, Value("Alpine Goat"), Value("Alpine Sheep"), 0, 3};
  EXPECT_TRUE(AnalyzePredicate(*pred, stats).fully_matching());
  // Partition below the prefix range: prunable.
  stats[0] = {true, Value("Aardvark"), Value("Albatross"), 0, 3};
  EXPECT_TRUE(AnalyzePredicate(*pred, stats).prunable());
  // Partition above: prunable.
  stats[0] = {true, Value("Bear"), Value("Zebra"), 0, 3};
  EXPECT_TRUE(AnalyzePredicate(*pred, stats).prunable());
  // Straddling: partially matching.
  stats[0] = {true, Value("Aardvark"), Value("Bear"), 0, 3};
  BoolRange r = AnalyzePredicate(*pred, stats);
  EXPECT_FALSE(r.prunable());
  EXPECT_FALSE(r.fully_matching());
}

TEST(RangeAnalysisTest, ImpreciseLikeNeverClaimsFullyMatching) {
  Schema schema({Field{"name", DataType::kString, true}});
  auto pred = Like(Col("name"), "Marked-%-Ridge");
  ASSERT_TRUE(BindExpr(pred, schema).ok());
  std::vector<ColumnStats> stats(1);
  // All values start with "Marked-" but may not end with "-Ridge".
  stats[0] = {true, Value("Marked-A"), Value("Marked-Z"), 0, 5};
  BoolRange r = AnalyzePredicate(*pred, stats);
  EXPECT_FALSE(r.prunable());
  EXPECT_FALSE(r.fully_matching());  // widening must not certify
}

TEST(RangeAnalysisTest, MissingStatsMeanUnknown) {
  Schema schema({Field{"x", DataType::kInt64, true}});
  auto pred = Gt(Col("x"), Lit(100));
  ASSERT_TRUE(BindExpr(pred, schema).ok());
  std::vector<ColumnStats> stats(1);  // has_stats = false (§8.1)
  stats[0].row_count = 7;
  BoolRange r = AnalyzePredicate(*pred, stats);
  EXPECT_FALSE(r.prunable());
  EXPECT_FALSE(r.fully_matching());
}

TEST(RangeAnalysisTest, InListAndIsNull) {
  Schema schema({Field{"x", DataType::kInt64, true}});
  auto in = In(Col("x"), {Value(int64_t{5}), Value(int64_t{50})});
  ASSERT_TRUE(BindExpr(in, schema).ok());
  std::vector<ColumnStats> stats(1);
  stats[0] = {true, Value(int64_t{10}), Value(int64_t{20}), 0, 4};
  EXPECT_TRUE(AnalyzePredicate(*in, stats).prunable());
  stats[0] = {true, Value(int64_t{5}), Value(int64_t{5}), 0, 4};
  EXPECT_TRUE(AnalyzePredicate(*in, stats).fully_matching());

  auto isnull = IsNull(Col("x"));
  ASSERT_TRUE(BindExpr(isnull, schema).ok());
  stats[0] = {true, Value(int64_t{1}), Value(int64_t{2}), 0, 4};
  EXPECT_TRUE(AnalyzePredicate(*isnull, stats).prunable());
  stats[0].null_count = 4;
  stats[0].min = Value::Null();
  stats[0].max = Value::Null();
  EXPECT_TRUE(AnalyzePredicate(*isnull, stats).fully_matching());
}

TEST(RangeAnalysisTest, BoolRangeCombinators) {
  BoolRange t = BoolRange::Exactly(true);
  BoolRange f = BoolRange::Exactly(false);
  BoolRange n = BoolRange::AlwaysNull();
  EXPECT_TRUE(AndRanges(t, t).fully_matching());
  EXPECT_TRUE(AndRanges(t, f).prunable());
  EXPECT_TRUE(AndRanges(f, n).prunable());   // FALSE dominates NULL
  EXPECT_TRUE(OrRanges(t, n).fully_matching());  // TRUE dominates NULL
  EXPECT_TRUE(OrRanges(f, n).prunable());
  EXPECT_FALSE(OrRanges(f, n).can_false);    // outcome is NULL, not FALSE
  EXPECT_TRUE(NotRange(f).fully_matching());
  EXPECT_TRUE(NotTrueRange(n).fully_matching());
  EXPECT_TRUE(NotTrueRange(t).prunable());
}

// --------------------------------------------------------------- Rewrite ----

TEST(RewriteTest, LikeRewrites) {
  auto pure = RewriteForPruning(Like(Col("s"), "Alpine%"));
  EXPECT_EQ(pure->kind(), ExprKind::kStartsWith);
  auto widened = RewriteForPruning(Like(Col("s"), "Marked-%-Ridge"));
  EXPECT_EQ(widened->kind(), ExprKind::kStartsWith);
  EXPECT_EQ(static_cast<StartsWithExpr&>(*widened).prefix(), "Marked-");
  auto exact = RewriteForPruning(Like(Col("s"), "exact"));
  EXPECT_EQ(exact->kind(), ExprKind::kCompare);
  auto hopeless = RewriteForPruning(Like(Col("s"), "%Ridge"));
  EXPECT_EQ(hopeless->kind(), ExprKind::kLiteral);
}

TEST(RewriteTest, NotSubtreesAreLeftIntact) {
  auto e = Not(Like(Col("s"), "a%b"));
  auto rewritten = RewriteForPruning(e);
  EXPECT_EQ(rewritten.get(), e.get());
}

TEST(RewriteTest, InvertedPredicateDeMorgan) {
  auto pred = And({Gt(Col("a"), Lit(1)), Lt(Col("b"), Lit(2))});
  auto inverted = BuildInvertedPredicate(pred);
  EXPECT_EQ(inverted->kind(), ExprKind::kOr);
  auto terms = inverted->children();
  ASSERT_EQ(terms.size(), 2u);
  EXPECT_EQ(terms[0]->kind(), ExprKind::kNotTrue);
}

TEST(RewriteTest, SimplifyFlattensAndFolds) {
  auto e = And({And({Gt(Col("a"), Lit(1)), Lit(true)}), Gt(Col("b"), Lit(2))});
  auto s = Simplify(e);
  EXPECT_EQ(s->kind(), ExprKind::kAnd);
  EXPECT_EQ(s->children().size(), 2u);
  EXPECT_EQ(Simplify(Not(Not(Col("x"))))->kind(), ExprKind::kColumnRef);
  EXPECT_EQ(Simplify(Or({Lit(false), Lit(false)}))->kind(), ExprKind::kLiteral);
  // Dominating element collapses the whole connective.
  auto dom = Simplify(And({Gt(Col("a"), Lit(1)), Lit(false)}));
  ASSERT_EQ(dom->kind(), ExprKind::kLiteral);
  EXPECT_FALSE(static_cast<LiteralExpr&>(*dom).value().bool_value());
}

// ------------------------------------------- Property: no false negatives ----

/// Generates a random predicate over schema {x int64, s string}.
ExprPtr RandomPredicate(Rng* rng, int depth) {
  if (depth <= 0 || rng->Bernoulli(0.45)) {
    switch (rng->UniformInt(0, 5)) {
      case 0:
        return Cmp(static_cast<CompareOp>(rng->UniformInt(0, 5)), Col("x"),
                   Lit(rng->UniformInt(-50, 150)));
      case 1:
        return Between(Col("x"), Value(rng->UniformInt(-50, 50)),
                       Value(rng->UniformInt(50, 150)));
      case 2:
        return Like(Col("s"), rng->Bernoulli(0.5) ? "a%" : "a%z");
      case 3:
        return In(Col("x"), {Value(rng->UniformInt(0, 99)),
                             Value(rng->UniformInt(0, 99))});
      case 4:
        return rng->Bernoulli(0.5) ? IsNull(Col("x")) : IsNotNull(Col("x"));
      default:
        return Gt(Add(Col("x"), Lit(rng->UniformInt(-10, 10))),
                  Lit(rng->UniformInt(-40, 140)));
    }
  }
  switch (rng->UniformInt(0, 2)) {
    case 0:
      return And({RandomPredicate(rng, depth - 1), RandomPredicate(rng, depth - 1)});
    case 1:
      return Or({RandomPredicate(rng, depth - 1), RandomPredicate(rng, depth - 1)});
    default:
      return Not(RandomPredicate(rng, depth - 1));
  }
}

class RangeAnalysisPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RangeAnalysisPropertyTest, AnalysisIsSoundAgainstBruteForce) {
  Rng rng(GetParam());
  Schema schema({Field{"x", DataType::kInt64, true},
                 Field{"s", DataType::kString, true}});
  // Random partition contents.
  for (int round = 0; round < 40; ++round) {
    std::vector<std::vector<Value>> rows;
    int n = static_cast<int>(rng.UniformInt(1, 30));
    for (int i = 0; i < n; ++i) {
      Value x = rng.Bernoulli(0.15) ? Value::Null()
                                    : Value(rng.UniformInt(-60, 160));
      std::string s(1, static_cast<char>('a' + rng.UniformInt(0, 25)));
      if (rng.Bernoulli(0.5)) s += static_cast<char>('a' + rng.UniformInt(0, 25));
      rows.push_back({x, rng.Bernoulli(0.1) ? Value::Null() : Value(s)});
    }
    auto table = testing_util::MakeTable("t", schema, rows, rows.size());
    const MicroPartition& part = table->partition_metadata(0);

    ExprPtr pred = RandomPredicate(&rng, 2);
    ASSERT_TRUE(BindExpr(pred, schema).ok());
    BoolRange r = AnalyzePredicate(*pred, part.all_stats());
    int64_t matches = CountMatches(*pred, part);

    // Soundness: a prunable verdict implies zero matching rows.
    if (r.prunable()) {
      EXPECT_EQ(matches, 0) << pred->ToString();
    }
    // A fully-matching verdict implies every row matches.
    if (r.fully_matching()) {
      EXPECT_EQ(matches, part.row_count()) << pred->ToString();
    }
    // Sound outcome sets: observed row outcomes must be contained.
    for (int i = 0; i < n; ++i) {
      auto outcome = EvalPredicate(*pred, part, static_cast<size_t>(i));
      if (!outcome.has_value()) {
        EXPECT_TRUE(r.can_null) << pred->ToString();
      } else if (*outcome) {
        EXPECT_TRUE(r.can_true) << pred->ToString();
      } else {
        EXPECT_TRUE(r.can_false) << pred->ToString();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RangeAnalysisPropertyTest,
                         ::testing::Range(uint64_t{1}, uint64_t{21}));

/// The §4.2 equivalence: two-pass inverted-predicate identification agrees
/// with direct tri-state analysis.
class InvertedPassPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(InvertedPassPropertyTest, InvertedPassMatchesDirectAnalysis) {
  Rng rng(GetParam() * 977);
  Schema schema({Field{"x", DataType::kInt64, true},
                 Field{"s", DataType::kString, true}});
  for (int round = 0; round < 40; ++round) {
    std::vector<std::vector<Value>> rows;
    int n = static_cast<int>(rng.UniformInt(1, 20));
    for (int i = 0; i < n; ++i) {
      rows.push_back({rng.Bernoulli(0.1) ? Value::Null()
                                         : Value(rng.UniformInt(-30, 130)),
                      Value(std::string(1, static_cast<char>(
                                               'a' + rng.UniformInt(0, 25))))});
    }
    auto table = testing_util::MakeTable("t", schema, rows, rows.size());
    const auto& stats = table->partition_metadata(0).all_stats();

    ExprPtr pred = RandomPredicate(&rng, 2);
    ASSERT_TRUE(BindExpr(pred, schema).ok());
    ExprPtr inverted = BuildInvertedPredicate(pred);
    ASSERT_TRUE(BindExpr(inverted, schema).ok());

    bool direct_fully = AnalyzePredicate(*pred, stats).fully_matching();
    bool twopass_fully = AnalyzePredicate(*inverted, stats).prunable();
    // The inverted pass may be more conservative on widened/complex shapes
    // but must never claim fully-matching when the direct analysis (which
    // is itself validated against brute force above) denies it.
    if (twopass_fully) {
      EXPECT_TRUE(direct_fully) << pred->ToString();
      int64_t matches = CountMatches(*pred, table->partition_metadata(0));
      EXPECT_EQ(matches, table->partition_metadata(0).row_count())
          << pred->ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InvertedPassPropertyTest,
                         ::testing::Range(uint64_t{1}, uint64_t{11}));

}  // namespace
}  // namespace snowprune
