/// Pipeline-parallel operator suite: the task-pipeline layer (ParallelFor,
/// morsel stages, the deterministic JoinHashTable) plus the three operators
/// that run worker-side stages — join build, top-k candidate filter, sorted
/// runs — must produce rows AND PruningStats byte-identical to serial
/// execution at every thread count, and per-query cancellation must abort
/// promptly and release the pool. Runs under ThreadSanitizer in CI
/// (build-tsan).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "exec/engine.h"
#include "exec/join_op.h"
#include "exec/parallel/pipeline.h"
#include "exec/parallel/thread_pool.h"
#include "exec/plan.h"
#include "expr/builder.h"
#include "storage/catalog.h"
#include "test_util.h"
#include "workload/table_gen.h"

namespace snowprune {
namespace {

using testing_util::DiffStats;
using testing_util::Serialize;

// ---------------------------------------------------------------------------
// ParallelFor
// ---------------------------------------------------------------------------

TEST(ParallelForTest, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  std::atomic<int64_t> sum{0};
  std::vector<std::atomic<int>> runs(100);
  const size_t ran = ParallelFor(&pool, 100, 8, [&](size_t i) {
    sum.fetch_add(static_cast<int64_t>(i));
    runs[i].fetch_add(1);
  });
  EXPECT_EQ(ran, 100u);
  EXPECT_EQ(sum.load(), 4950);
  for (const auto& r : runs) EXPECT_EQ(r.load(), 1);
}

TEST(ParallelForTest, PreSetCancelRunsNothing) {
  ThreadPool pool(2);
  std::atomic<bool> cancel{true};
  std::atomic<int> runs{0};
  const size_t ran =
      ParallelFor(&pool, 50, 4, [&](size_t) { runs.fetch_add(1); }, &cancel);
  EXPECT_EQ(ran, 0u);
  EXPECT_EQ(runs.load(), 0);
}

TEST(ParallelForTest, CancelMidRunStopsScheduling) {
  ThreadPool pool(2);
  std::atomic<bool> cancel{false};
  std::atomic<int> runs{0};
  // Window 1: after the first task flips the flag, no further task starts.
  const size_t ran = ParallelFor(
      &pool, 100, 1,
      [&](size_t) {
        runs.fetch_add(1);
        cancel.store(true);
      },
      &cancel);
  EXPECT_EQ(ran, 1u);
  EXPECT_EQ(runs.load(), 1);
}

// ---------------------------------------------------------------------------
// JoinHashTable
// ---------------------------------------------------------------------------

std::vector<size_t> Matches(const JoinHashTable& table, uint64_t hash) {
  std::vector<size_t> out;
  table.ForEachMatch(hash, [&](size_t index) { out.push_back(index); });
  return out;
}

TEST(JoinHashTableTest, MatchesComeOutInBuildOrder) {
  JoinHashTable table;
  // Duplicate hashes interleaved with others; matches must ascend by index.
  std::vector<JoinHashTable::Entry> entries;
  for (uint64_t i = 0; i < 100; ++i) {
    entries.push_back(JoinHashTable::Entry{i % 7, i});
  }
  table.Build(entries);
  for (uint64_t h = 0; h < 7; ++h) {
    std::vector<size_t> m = Matches(table, h);
    ASSERT_FALSE(m.empty());
    for (size_t i = 1; i < m.size(); ++i) EXPECT_LT(m[i - 1], m[i]);
    for (size_t index : m) EXPECT_EQ(index % 7, h);
  }
}

TEST(JoinHashTableTest, ParallelBuildIsByteIdenticalToSerial) {
  // Above the parallel threshold (2^15) with adversarial hash patterns:
  // heavy duplicates plus a random spread.
  Rng rng(7771);
  std::vector<JoinHashTable::Entry> entries;
  const size_t n = 50'000;
  for (size_t i = 0; i < n; ++i) {
    const uint64_t h = rng.Bernoulli(0.2)
                           ? static_cast<uint64_t>(rng.UniformInt(0, 15))
                           : rng.Next();
    entries.push_back(JoinHashTable::Entry{h, i});
  }
  JoinHashTable serial;
  serial.Build(entries);
  ThreadPool pool(4);
  JoinHashTable parallel;
  parallel.Build(entries, &pool, 8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (const JoinHashTable::Entry& e : entries) {
    ASSERT_EQ(Matches(serial, e.hash), Matches(parallel, e.hash))
        << "hash " << e.hash;
  }
}

// ---------------------------------------------------------------------------
// Pipeline-parallel operators: byte identity vs. serial
// ---------------------------------------------------------------------------

std::shared_ptr<Catalog> PipelineCatalog() {
  auto catalog = std::make_shared<Catalog>();
  workload::TableGenConfig probe;
  probe.name = "probe";
  probe.num_partitions = 40;
  probe.rows_per_partition = 200;
  probe.layout = workload::Layout::kRandom;  // worst case: nothing prunes
  probe.null_fraction = 0.1;
  probe.num_categories = 12;
  probe.seed = 99;
  EXPECT_TRUE(catalog->RegisterTable(workload::SyntheticTable(probe)).ok());
  workload::TableGenConfig build;
  build.name = "build";
  build.num_partitions = 6;
  build.rows_per_partition = 80;
  build.domain_min = 0;
  build.domain_max = 1'000'000;
  build.null_fraction = 0.05;
  build.seed = 100;
  EXPECT_TRUE(catalog->RegisterTable(workload::SyntheticTable(build)).ok());
  return catalog;
}

QueryResult RunWith(Catalog* catalog, const PlanPtr& plan, int threads,
                    bool force_parallel) {
  EngineConfig config;
  config.exec.num_threads = threads;
  config.exec.force_parallel = force_parallel;
  config.exec.morsel_min_rows = 0;  // one partition per morsel: many stages
  Engine engine(catalog, config);
  auto result = engine.Execute(plan);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

TEST(PipelineParallelTest, OperatorsMatchSerialByteForByte) {
  auto catalog = PipelineCatalog();
  ExprPtr filter = Between(Col("key"), Value(int64_t{100000}),
                           Value(int64_t{900000}));
  struct Shape {
    const char* name;
    PlanPtr plan;
  };
  const Shape shapes[] = {
      {"join", JoinPlan(ScanPlan("probe"), ScanPlan("build"), "key", "key")},
      {"join_dup_keys",
       JoinPlan(ScanPlan("probe"), ScanPlan("build"), "cat", "cat")},
      {"topk", TopKPlan(ScanPlan("probe", filter), "val",
                        /*descending=*/true, 50)},
      {"topk_asc", TopKPlan(ScanPlan("probe"), "key",
                            /*descending=*/false, 17)},
      {"sort", SortPlan(ScanPlan("probe", filter), "val",
                        /*descending=*/false)},
      {"sort_dup_keys", SortPlan(ScanPlan("probe"), "cat",
                                 /*descending=*/true)},
  };
  for (const Shape& shape : shapes) {
    const QueryResult serial = RunWith(catalog.get(), shape.plan, 1, false);
    const std::string serial_rows = Serialize(serial);
    struct Mode {
      int threads;
      bool force;
    };
    for (const Mode mode : {Mode{1, true}, Mode{2, false}, Mode{4, false}}) {
      const int64_t stages_before = PipelineCounters::stage_tasks();
      const QueryResult parallel =
          RunWith(catalog.get(), shape.plan, mode.threads, mode.force);
      ASSERT_EQ(serial_rows, Serialize(parallel))
          << shape.name << " rows diverged at threads=" << mode.threads
          << " force=" << mode.force;
      ASSERT_EQ(DiffStats(serial.stats, parallel.stats), "")
          << shape.name << " stats diverged at threads=" << mode.threads
          << " force=" << mode.force;
      // The parallel path must actually have run worker-side stages (a
      // silently-serial regression is a perf bug this suite must catch).
      ASSERT_GT(PipelineCounters::stage_tasks(), stages_before)
          << shape.name << " ran no pipeline stages at threads="
          << mode.threads << " force=" << mode.force;
    }
  }
}

/// Duplicate-heavy sort keys across partitions: the k-way merge's tie
/// breaking (earlier run first) must reproduce stable_sort order exactly.
TEST(PipelineParallelTest, SortStabilityUnderDuplicatesAndNulls) {
  Schema schema({Field{"k", DataType::kInt64, true},
                 Field{"tag", DataType::kInt64, false}});
  std::vector<std::vector<Value>> rows;
  Rng rng(4242);
  for (int64_t i = 0; i < 600; ++i) {
    // Keys from a tiny domain (lots of cross-partition ties), 15% NULLs.
    Value key = rng.Bernoulli(0.15) ? Value::Null()
                                    : Value(rng.UniformInt(0, 4));
    rows.push_back({std::move(key), Value(i)});
  }
  auto catalog = std::make_shared<Catalog>();
  ASSERT_TRUE(catalog
                  ->RegisterTable(testing_util::MakeTable(
                      "dups", schema, rows, /*rows_per_partition=*/16))
                  .ok());
  for (bool desc : {false, true}) {
    auto plan = SortPlan(ScanPlan("dups"), "k", desc);
    const QueryResult serial = RunWith(catalog.get(), plan, 1, false);
    for (int threads : {2, 4}) {
      const QueryResult parallel =
          RunWith(catalog.get(), plan, threads, false);
      ASSERT_EQ(Serialize(serial), Serialize(parallel))
          << "desc=" << desc << " threads=" << threads;
    }
  }
}

/// NaN order keys: '<' on doubles is not a strict weak ordering with NaN in
/// the mix, so neither per-run sorting + merge (sort) nor the local-heap /
/// snapshot filter proofs (top-k) are valid around NaNs. The operators must
/// detect this and fall back so parallel output stays byte-identical to
/// serial — this reproduces the review's divergence case: partitions
/// [5, NaN] [3, NaN] [1, 4] sorted ascending.
TEST(PipelineParallelTest, NanOrderKeysStayByteIdenticalToSerial) {
  const double kNan = std::nan("");
  Schema schema({Field{"v", DataType::kFloat64, true},
                 Field{"tag", DataType::kInt64, false}});
  std::vector<std::vector<Value>> rows = {
      {Value(5.0), Value(int64_t{0})},  {Value(kNan), Value(int64_t{1})},
      {Value(3.0), Value(int64_t{2})},  {Value(kNan), Value(int64_t{3})},
      {Value(1.0), Value(int64_t{4})},  {Value(4.0), Value(int64_t{5})},
  };
  // A second helping with more NaNs scattered across partitions.
  Rng rng(515);
  for (int64_t i = 6; i < 200; ++i) {
    Value v = rng.Bernoulli(0.2)
                  ? Value(kNan)
                  : (rng.Bernoulli(0.1) ? Value::Null()
                                        : Value(rng.Uniform() * 100.0));
    rows.push_back({std::move(v), Value(i)});
  }
  auto catalog = std::make_shared<Catalog>();
  ASSERT_TRUE(catalog
                  ->RegisterTable(testing_util::MakeTable(
                      "nans", schema, rows, /*rows_per_partition=*/2))
                  .ok());
  struct Shape {
    const char* name;
    PlanPtr plan;
  };
  const Shape shapes[] = {
      {"sort_asc", SortPlan(ScanPlan("nans"), "v", false)},
      {"sort_desc", SortPlan(ScanPlan("nans"), "v", true)},
      {"topk_desc", TopKPlan(ScanPlan("nans"), "v", true, 7)},
      {"topk_asc", TopKPlan(ScanPlan("nans"), "v", false, 7)},
  };
  for (const Shape& shape : shapes) {
    const QueryResult serial = RunWith(catalog.get(), shape.plan, 1, false);
    struct Mode {
      int threads;
      bool force;
    };
    for (const Mode mode : {Mode{1, true}, Mode{2, false}, Mode{4, false}}) {
      const QueryResult parallel =
          RunWith(catalog.get(), shape.plan, mode.threads, mode.force);
      ASSERT_EQ(Serialize(serial), Serialize(parallel))
          << shape.name << " diverged with NaN keys at threads="
          << mode.threads << " force=" << mode.force;
      ASSERT_EQ(DiffStats(serial.stats, parallel.stats), "")
          << shape.name << " stats diverged with NaN keys at threads="
          << mode.threads << " force=" << mode.force;
    }
  }
}

// ---------------------------------------------------------------------------
// Cancellation
// ---------------------------------------------------------------------------

TEST(PipelineParallelTest, PreSetCancelAbortsBeforeAnyLoad) {
  auto catalog = PipelineCatalog();
  auto plan = AggregatePlan(ScanPlan("probe"), {"cat"},
                            {AggPlanSpec{AggFunc::kCount, "", "n"}});
  EngineConfig config;
  config.exec.num_threads = 4;
  Engine engine(catalog.get(), config);
  std::atomic<bool> cancel{true};
  catalog->ResetMeters();
  auto result = engine.Execute(plan, &cancel);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  // Cancelled before Open: no partition was ever loaded.
  EXPECT_EQ(catalog->TotalLoads(), 0);
}

TEST(PipelineParallelTest, MidRunCancelReturnsCancelledAndJoinsWorkers) {
  auto catalog = PipelineCatalog();
  auto plan = SortPlan(ScanPlan("probe"), "val", /*descending=*/true);
  EngineConfig config;
  config.exec.num_threads = 2;
  config.exec.morsel_min_rows = 0;
  Engine engine(catalog.get(), config);
  std::atomic<bool> cancel{false};
  Result<QueryResult> result = Status::Internal("pending");
  std::thread runner([&] { result = engine.Execute(plan, &cancel); });
  std::this_thread::sleep_for(std::chrono::microseconds(200));
  cancel.store(true);
  runner.join();  // must return promptly — no hang on abandoned morsels
  // Depending on timing the query either finished first or was cancelled;
  // both are valid, nothing may crash, leak workers, or deadlock.
  if (!result.ok()) {
    EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  }
  // The engine (and its pool) stay usable for the next query.
  auto again = engine.Execute(plan);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_FALSE(again.value().rows.empty());
}

}  // namespace
}  // namespace snowprune
