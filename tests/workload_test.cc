#include <gtest/gtest.h>

#include "core/filter_pruner.h"
#include "exec/engine.h"
#include "workload/production_model.h"
#include "workload/query_gen.h"
#include "workload/simulator.h"
#include "workload/table_gen.h"
#include "workload/tpch/tpch_gen.h"
#include "workload/tpch/tpch_queries.h"

namespace snowprune {
namespace {

using namespace snowprune::workload;  // NOLINT

TEST(TableGenTest, LayoutsControlZoneMapOverlap) {
  TableGenConfig cfg;
  cfg.num_partitions = 20;
  cfg.rows_per_partition = 100;
  cfg.seed = 5;

  cfg.layout = Layout::kSorted;
  cfg.name = "sorted";
  auto sorted = SyntheticTable(cfg);
  cfg.layout = Layout::kRandom;
  cfg.name = "random";
  auto random = SyntheticTable(cfg);

  ASSERT_EQ(sorted->num_partitions(), 20u);
  ASSERT_EQ(sorted->num_rows(), 2000);
  // Sorted layout: consecutive partitions have non-overlapping key ranges.
  for (size_t p = 1; p < sorted->num_partitions(); ++p) {
    EXPECT_LE(sorted->stats(p - 1, 1).max.int64_value(),
              sorted->stats(p, 1).min.int64_value());
  }
  // Random layout: partitions span nearly the whole domain.
  int64_t span0 = random->stats(0, 1).max.int64_value() -
                  random->stats(0, 1).min.int64_value();
  EXPECT_GT(span0, (cfg.domain_max - cfg.domain_min) / 2);
}

TEST(TableGenTest, NullFractionIsHonored) {
  TableGenConfig cfg;
  cfg.num_partitions = 5;
  cfg.rows_per_partition = 200;
  cfg.null_fraction = 0.3;
  auto table = SyntheticTable(cfg);
  int64_t nulls = 0;
  for (size_t p = 0; p < table->num_partitions(); ++p) {
    nulls += table->stats(static_cast<PartitionId>(p), 2).null_count;
  }
  double frac = static_cast<double>(nulls) / table->num_rows();
  EXPECT_NEAR(frac, 0.3, 0.05);
}

TEST(ProductionModelTest, LimitKMatchesFigure6Shape) {
  ProductionModel model;
  Rng rng(17);
  int64_t le_10k = 0, le_2m = 0, total = 20000;
  for (int64_t i = 0; i < total; ++i) {
    int64_t k = model.SampleLimitK(&rng);
    ASSERT_GE(k, 0);
    if (k <= 10000) ++le_10k;
    if (k <= 2000000) ++le_2m;
  }
  // Paper: 97% of k <= 10,000 and 99.9% <= 2,000,000.
  EXPECT_NEAR(static_cast<double>(le_10k) / total, 0.97, 0.02);
  EXPECT_GT(static_cast<double>(le_2m) / total, 0.99);
}

TEST(ProductionModelTest, SelectivityIsHeavilySkewedHigh) {
  ProductionModel model;
  Rng rng(18);
  int highly_selective = 0, total = 10000;
  for (int i = 0; i < total; ++i) {
    if (model.SampleSelectivity(&rng) < 0.01) ++highly_selective;
  }
  EXPECT_GT(highly_selective, total / 3);
}

TEST(ProductionModelTest, ClassMixFollowsTable1) {
  ProductionModel model;
  Rng rng(19);
  std::map<QueryClass, int> counts;
  const int total = 50000;
  for (int i = 0; i < total; ++i) ++counts[model.SampleClass(&rng)];
  auto pct = [&](QueryClass c) {
    return 100.0 * counts[c] / total;
  };
  EXPECT_NEAR(pct(QueryClass::kLimitWithPredicate), 2.23, 0.5);
  EXPECT_NEAR(pct(QueryClass::kTopK), 4.47, 0.7);
  EXPECT_NEAR(pct(QueryClass::kLimitNoPredicate), 0.37, 0.2);
}

class SimulatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TableGenConfig cfg;
    cfg.num_partitions = 40;
    cfg.rows_per_partition = 100;
    cfg.seed = 3;
    cfg.name = "probe_clustered";
    cfg.layout = Layout::kClustered;
    ASSERT_TRUE(catalog_.RegisterTable(SyntheticTable(cfg)).ok());
    cfg.name = "probe_random";
    cfg.layout = Layout::kRandom;
    cfg.seed = 4;
    ASSERT_TRUE(catalog_.RegisterTable(SyntheticTable(cfg)).ok());
    cfg.name = "build_small";
    cfg.num_partitions = 2;
    cfg.layout = Layout::kRandom;
    cfg.seed = 5;
    ASSERT_TRUE(catalog_.RegisterTable(SyntheticTable(cfg)).ok());
  }
  Catalog catalog_;
};

TEST_F(SimulatorTest, EndToEndPopulationRun) {
  Engine engine(&catalog_);
  QueryGenerator::Config gcfg;
  gcfg.seed = 99;
  QueryGenerator gen(&catalog_, {"probe_clustered", "probe_random"},
                     {"build_small"}, ProductionModel(), gcfg);
  Simulator sim(&gen, &engine);
  SimulationResult result = sim.Run(300);
  EXPECT_EQ(result.total_queries, 300);
  EXPECT_GT(result.filter_ratios.count(), 100u);
  EXPECT_GT(result.total_partitions, 0);
  // The population is dominated by selective predicates on clusterable
  // layouts: the global pruning ratio must be substantial.
  EXPECT_GT(result.OverallPruningRatio(), 0.3);
  // Flow: filter pruning fires for more queries than any other technique.
  EXPECT_GE(result.flow_filter, result.flow_limit);
  EXPECT_GE(result.flow_filter, result.flow_topk);
}

TEST_F(SimulatorTest, TechniquesProduceNoFalseResults) {
  // Every generated query must produce identical results with and without
  // pruning — the end-to-end no-false-negatives property.
  EngineConfig off;
  off.enable_filter_pruning = false;
  off.enable_limit_pruning = false;
  off.enable_topk_pruning = false;
  off.enable_join_pruning = false;
  Engine pruned_engine(&catalog_);
  Engine raw_engine(&catalog_, off);
  QueryGenerator::Config gcfg;
  gcfg.seed = 1234;
  QueryGenerator gen(&catalog_, {"probe_clustered", "probe_random"},
                     {"build_small"}, ProductionModel(), gcfg);
  for (int i = 0; i < 60; ++i) {
    GeneratedQuery q = gen.Generate();
    auto a = pruned_engine.Execute(q.plan);
    auto b = raw_engine.Execute(q.plan);
    ASSERT_TRUE(a.ok() && b.ok());
    const bool is_plain_limit =
        q.query_class == QueryClass::kLimitNoPredicate ||
        q.query_class == QueryClass::kLimitWithPredicate;
    if (is_plain_limit) {
      // LIMIT picks arbitrary rows; only the count is deterministic.
      EXPECT_EQ(a.value().rows.size(), b.value().rows.size());
    } else if (q.query_class == QueryClass::kTopK) {
      // Tie-breaks may differ; compare the ordered key multiset.
      ASSERT_EQ(a.value().rows.size(), b.value().rows.size());
      auto key_idx = a.value().schema.FindColumn(
          static_cast<const PlanNode&>(*q.plan).order_column);
      ASSERT_TRUE(key_idx.has_value());
      for (size_t r = 0; r < a.value().rows.size(); ++r) {
        EXPECT_EQ(Value::Compare(a.value().rows[r][*key_idx],
                                 b.value().rows[r][*key_idx]),
                  0);
      }
    } else {
      EXPECT_EQ(a.value().rows.size(), b.value().rows.size())
          << ToString(q.query_class);
    }
  }
}

// --------------------------------------------------------------- TPC-H ----

TEST(TpchTest, DateToDaysIsCivil) {
  using workload::tpch::DateToDays;
  EXPECT_EQ(DateToDays(1992, 1, 1), 0);
  EXPECT_EQ(DateToDays(1992, 1, 2), 1);
  EXPECT_EQ(DateToDays(1993, 1, 1), 366);  // 1992 is a leap year
  EXPECT_EQ(DateToDays(1998, 12, 1) - 90, DateToDays(1998, 9, 2));
}

TEST(TpchTest, GeneratedTablesHaveExpectedShape) {
  workload::tpch::TpchConfig cfg;
  cfg.scale_factor = 0.002;
  auto tables = workload::tpch::GenerateTpch(cfg);
  EXPECT_EQ(tables.nation->num_rows(), 25);
  EXPECT_EQ(tables.region->num_rows(), 5);
  EXPECT_GT(tables.lineitem->num_rows(), tables.orders->num_rows());
  // Clustered: lineitem partitions are ordered by shipdate.
  auto col = tables.lineitem->schema().FindColumn("l_shipdate");
  ASSERT_TRUE(col.has_value());
  for (size_t p = 1; p < tables.lineitem->num_partitions(); ++p) {
    EXPECT_LE(tables.lineitem->stats(p - 1, *col).max.int64_value(),
              tables.lineitem->stats(p, *col).min.int64_value());
  }
  Catalog catalog;
  EXPECT_TRUE(tables.RegisterAll(&catalog).ok());
  EXPECT_EQ(catalog.num_tables(), 8u);
}

TEST(TpchTest, Figure13ShapeHolds) {
  workload::tpch::TpchConfig cfg;
  cfg.scale_factor = 0.01;
  cfg.lineitem_rows_per_partition = 500;
  cfg.orders_rows_per_partition = 250;
  auto tables = workload::tpch::GenerateTpch(cfg);
  Catalog catalog;
  ASSERT_TRUE(tables.RegisterAll(&catalog).ok());

  std::map<int, double> ratios;
  for (const auto& profile : workload::tpch::AllQueryProfiles()) {
    int64_t total = 0, pruned = 0;
    for (const auto& scan : profile.scans) {
      auto table = catalog.GetTable(scan.table);
      ASSERT_NE(table, nullptr) << scan.table;
      if (scan.predicate) {
        ASSERT_TRUE(BindExpr(scan.predicate, table->schema()).ok())
            << "Q" << profile.id;
      }
      FilterPruner pruner(scan.predicate);
      auto result = pruner.Prune(*table, table->FullScanSet());
      total += result.input_partitions;
      pruned += result.pruned;
    }
    ratios[profile.id] = total == 0 ? 0.0 : static_cast<double>(pruned) / total;
  }
  ASSERT_EQ(ratios.size(), 22u);
  // Paper Figure 13 shape: Q6/Q14/Q15 prune heavily on the clustered dates;
  // Q1/Q9/Q13/Q16/Q17/Q18 prune (almost) nothing.
  EXPECT_GT(ratios[6], 0.6);
  EXPECT_GT(ratios[14], 0.8);
  EXPECT_GT(ratios[15], 0.8);
  EXPECT_LT(ratios[1], 0.1);
  EXPECT_LT(ratios[9], 0.05);
  EXPECT_LT(ratios[13], 0.05);
  EXPECT_LT(ratios[18], 0.05);
  // Date-range queries land in between.
  EXPECT_GT(ratios[3], 0.2);
  EXPECT_GT(ratios[12], 0.4);
  // Whole-workload average far below the production model's (§8.3 takeaway).
  double avg = 0;
  for (auto& [id, r] : ratios) avg += r;
  avg /= 22.0;
  EXPECT_LT(avg, 0.5);
  EXPECT_GT(avg, 0.1);
}

TEST(TpchTest, UnclusteredLayoutKillsPruning) {
  workload::tpch::TpchConfig cfg;
  cfg.scale_factor = 0.005;
  cfg.clustered = false;
  auto tables = workload::tpch::GenerateTpch(cfg);
  Catalog catalog;
  ASSERT_TRUE(tables.RegisterAll(&catalog).ok());
  // Q6 on unclustered lineitem: zone maps all span the full date range.
  auto profiles = workload::tpch::AllQueryProfiles();
  const auto& q6 = profiles[5];
  ASSERT_EQ(q6.id, 6);
  auto table = catalog.GetTable("lineitem");
  ASSERT_TRUE(BindExpr(q6.scans[0].predicate, table->schema()).ok());
  FilterPruner pruner(q6.scans[0].predicate);
  auto result = pruner.Prune(*table, table->FullScanSet());
  EXPECT_EQ(result.pruned, 0);  // "no pruning happened with default
                                // data clustering" (§8.3)
}

}  // namespace
}  // namespace snowprune
