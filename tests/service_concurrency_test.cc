/// Inter-query concurrency suite: N client streams submitting mixed query
/// classes through one QueryService must leave every query's rows AND
/// PruningStats byte-identical to a serial solo run of the same query, at
/// every stream count; admission control must bound in-flight queries; and
/// catalog DML churn (table replace between queries) under load must stay
/// snapshot-atomic per query. Runs under ThreadSanitizer in CI (build-tsan).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "exec/engine.h"
#include "exec/plan.h"
#include "expr/builder.h"
#include "service/query_service.h"
#include "storage/catalog.h"
#include "test_util.h"
#include "workload/query_gen.h"
#include "workload/table_gen.h"

namespace snowprune {
namespace {

using service::QueryService;
using service::QueryServiceConfig;
using service::ServiceStats;
using testing_util::DiffStats;
using testing_util::Serialize;
using workload::GeneratedQuery;
using workload::ProductionModel;
using workload::QueryGenerator;

std::shared_ptr<Table> Synthetic(const char* name, workload::Layout layout,
                                 size_t partitions, size_t rows,
                                 uint64_t seed) {
  workload::TableGenConfig cfg;
  cfg.name = name;
  cfg.layout = layout;
  cfg.num_partitions = partitions;
  cfg.rows_per_partition = rows;
  cfg.null_fraction = 0.05;
  cfg.num_categories = 20;
  cfg.seed = seed;
  return workload::SyntheticTable(cfg);
}

/// A MULTI-partition table (16-row partitions) whose rows all carry
/// generation `gen` in the `g` column, with a generation-dependent row
/// count — so a scan proves which catalog snapshot it ran against, and a
/// non-atomic replacement (e.g. re-resolving the table name mid-scan)
/// would surface as torn generations across the scan's partitions.
std::shared_ptr<Table> ChurnTable(int64_t gen) {
  Schema schema({Field{"g", DataType::kInt64, false}});
  TableBuilder builder("churn", schema, /*target_partition_rows=*/16);
  const int64_t rows = 100 + gen;
  for (int64_t i = 0; i < rows; ++i) {
    Status s = builder.AppendRow({Value(gen)});
    if (!s.ok()) std::abort();
  }
  return builder.Finish();
}

class ServiceConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(catalog_
                    .RegisterTable(Synthetic("fact", workload::Layout::kClustered,
                                             40, 120, 77))
                    .ok());
    ASSERT_TRUE(catalog_
                    .RegisterTable(Synthetic("probe2", workload::Layout::kSorted,
                                             24, 150, 78))
                    .ok());
    ASSERT_TRUE(catalog_
                    .RegisterTable(Synthetic("dim", workload::Layout::kRandom, 2,
                                             400, 79))
                    .ok());
  }

  QueryGenerator MakeGenerator(uint64_t seed) {
    QueryGenerator::Config gcfg;
    gcfg.seed = seed;
    gcfg.shape_pool_size = 64;
    return QueryGenerator(&catalog_, {"fact", "probe2"}, {"dim"},
                          ProductionModel(), gcfg);
  }

  /// Solo serial run: fresh single-threaded engine, no pool, no cache.
  Result<QueryResult> RunSolo(const PlanPtr& plan) {
    EngineConfig config;
    config.exec.num_threads = 1;
    Engine engine(&catalog_, config);
    return engine.Execute(plan);
  }

  Catalog catalog_;
};

// ---------------------------------------------------------------------------
// The correctness bar: byte-identity to solo serial runs at every stream
// count. Each stream replays a reproducible query sequence (generator seeded
// per stream); the reference pass replays the same seeds solo and serial.
// ---------------------------------------------------------------------------

TEST_F(ServiceConcurrencyTest, MixedClassesByteIdenticalAcrossStreamCounts) {
  constexpr size_t kQueriesPerStream = 30;

  for (size_t num_streams : {size_t{1}, size_t{2}, size_t{4}}) {
    // Reference pass: same seeds, solo serial engine.
    std::vector<std::vector<std::string>> ref_rows(num_streams);
    std::vector<std::vector<PruningStats>> ref_stats(num_streams);
    std::vector<std::vector<bool>> ref_ok(num_streams);
    for (size_t s = 0; s < num_streams; ++s) {
      QueryGenerator generator = MakeGenerator(1000 + s);
      for (size_t i = 0; i < kQueriesPerStream; ++i) {
        GeneratedQuery q = generator.Generate();
        auto solo = RunSolo(q.plan);
        ref_ok[s].push_back(solo.ok());
        ref_rows[s].push_back(solo.ok() ? Serialize(solo.value()) : "");
        ref_stats[s].push_back(solo.ok() ? solo.value().stats
                                         : PruningStats());
      }
    }

    QueryServiceConfig scfg;
    scfg.num_threads = 4;
    scfg.max_in_flight = num_streams;
    QueryService service(&catalog_, scfg);

    std::vector<std::thread> streams;
    for (size_t s = 0; s < num_streams; ++s) {
      streams.emplace_back([&, s] {
        QueryGenerator generator = MakeGenerator(1000 + s);
        for (size_t i = 0; i < kQueriesPerStream; ++i) {
          GeneratedQuery q = generator.Generate();
          auto served = service.Execute(std::move(q.plan));
          ASSERT_EQ(served.ok(), ref_ok[s][i])
              << "stream " << s << " query " << i;
          if (!served.ok()) continue;
          EXPECT_EQ(Serialize(served.value()), ref_rows[s][i])
              << "rows diverged from solo serial: stream " << s << " query "
              << i << " at " << num_streams << " streams";
          EXPECT_EQ(DiffStats(served.value().stats, ref_stats[s][i]), "")
              << "stats diverged from solo serial: stream " << s << " query "
              << i << " at " << num_streams << " streams";
        }
      });
    }
    for (auto& t : streams) t.join();

    ServiceStats stats = service.stats();
    EXPECT_EQ(stats.submitted,
              static_cast<int64_t>(num_streams * kQueriesPerStream));
    EXPECT_EQ(stats.completed, stats.submitted);
    EXPECT_EQ(stats.failed, 0);
    // Every completion is exactly one of ok/failed/cancelled/deadline.
    EXPECT_EQ(stats.completed, stats.ok + stats.failed + stats.cancelled +
                                   stats.deadline_exceeded);
    EXPECT_LE(stats.peak_in_flight, static_cast<int64_t>(num_streams));
  }
}

// ---------------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------------

TEST_F(ServiceConcurrencyTest, AdmissionBoundsInFlightQueries) {
  QueryServiceConfig scfg;
  scfg.num_threads = 2;
  scfg.max_in_flight = 2;
  QueryService service(&catalog_, scfg);
  ASSERT_EQ(service.pool_width(), 2u);

  constexpr int kQueries = 32;
  std::vector<QueryService::Handle> handles;
  for (int i = 0; i < kQueries; ++i) {
    auto submitted = service.Submit(ScanPlan("fact"));
    ASSERT_TRUE(submitted.ok());
    handles.push_back(std::move(submitted).value());
  }
  // Drain's contract: once it returns, every admitted query's handle
  // reports done and the admission queue is empty.
  service.Drain();
  EXPECT_EQ(service.queue_depth(), 0u);
  EXPECT_EQ(service.in_flight(), 0u);
  for (auto& h : handles) EXPECT_TRUE(h.done());
  int64_t total_rows = 0;
  for (auto& h : handles) {
    auto result = h.Await();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    total_rows += static_cast<int64_t>(result.value().rows.size());
  }
  EXPECT_EQ(total_rows, kQueries * 40 * 120);

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, kQueries);
  EXPECT_EQ(stats.completed, kQueries);
  // The admission bound is a hard ceiling; with a deep backlog and two live
  // drivers it is also reached.
  EXPECT_LE(stats.peak_in_flight, 2);
  EXPECT_GE(stats.peak_in_flight, 2);
  EXPECT_GE(stats.peak_queue_depth, 1);
  EXPECT_EQ(stats.completed, stats.ok + stats.failed + stats.cancelled +
                                 stats.deadline_exceeded);
}

TEST_F(ServiceConcurrencyTest, BoundedQueueRejectsWithResourceExhausted) {
  QueryServiceConfig scfg;
  scfg.num_threads = 1;
  scfg.max_in_flight = 1;
  scfg.queue_capacity = 1;
  QueryService service(&catalog_, scfg);

  // Back-to-back submits: by the third, at most one query is executing and
  // one is queued, so it must bounce (unless the first finished within the
  // microseconds between submits, which a 40-partition scan prevents).
  std::vector<QueryService::Handle> accepted;
  int rejected = 0;
  for (int i = 0; i < 3; ++i) {
    auto submitted = service.Submit(ScanPlan("fact"));
    if (submitted.ok()) {
      accepted.push_back(std::move(submitted).value());
    } else {
      EXPECT_EQ(submitted.status().code(), StatusCode::kResourceExhausted);
      ++rejected;
    }
  }
  EXPECT_GE(rejected, 1);
  for (auto& h : accepted) {
    auto result = h.Await();
    EXPECT_TRUE(result.ok()) << result.status().ToString();
  }
  EXPECT_EQ(service.stats().rejected, rejected);
}

TEST_F(ServiceConcurrencyTest, HandleSemantics) {
  QueryService::Handle empty;
  EXPECT_FALSE(empty.done());
  EXPECT_FALSE(empty.Await().ok());

  QueryServiceConfig scfg;
  scfg.num_threads = 1;
  QueryService service(&catalog_, scfg);
  auto submitted = service.Submit(ScanPlan("fact"));
  ASSERT_TRUE(submitted.ok());
  QueryService::Handle handle = submitted.value();
  auto first = handle.Await();
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(handle.done());
  EXPECT_GE(handle.queue_ms(), 0.0);
  auto second = handle.Await();  // single-shot: the result moved out
  EXPECT_FALSE(second.ok());
}

TEST_F(ServiceConcurrencyTest, ShutdownFailsQueuedQueriesAndNeverHangs) {
  std::vector<QueryService::Handle> handles;
  {
    QueryServiceConfig scfg;
    scfg.num_threads = 1;
    scfg.max_in_flight = 1;
    QueryService service(&catalog_, scfg);
    for (int i = 0; i < 8; ++i) {
      auto submitted = service.Submit(ScanPlan("fact"));
      ASSERT_TRUE(submitted.ok());
      handles.push_back(std::move(submitted).value());
    }
    // Let the driver pick up at least one query so the destructor's
    // "executing queries finish" path is actually exercised.
    while (service.in_flight() == 0 && service.stats().completed == 0) {
      std::this_thread::yield();
    }
  }  // destructor: executing queries finish, queued ones fail Unavailable
  int ok = 0, unavailable = 0;
  for (auto& h : handles) {
    auto result = h.Await();
    if (result.ok()) {
      ++ok;
    } else {
      EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
      ++unavailable;
    }
  }
  EXPECT_EQ(ok + unavailable, 8);
  EXPECT_GE(ok, 1);  // the in-flight query completes, never cancelled
}

TEST_F(ServiceConcurrencyTest, MorselWindowBudgetSplitsAcrossAdmitted) {
  QueryServiceConfig scfg;
  scfg.num_threads = 4;
  scfg.max_in_flight = 4;
  scfg.morsel_window_budget = 32;
  QueryService service(&catalog_, scfg);
  EXPECT_EQ(service.per_query_morsel_window(), 8u);  // 32 / 4

  QueryServiceConfig tight = scfg;
  tight.morsel_window_budget = 2;  // floor engages
  QueryService tight_service(&catalog_, tight);
  EXPECT_EQ(tight_service.per_query_morsel_window(), 2u);

  // Explicit per-query window wins over the budget.
  QueryServiceConfig explicit_cfg = scfg;
  explicit_cfg.engine.exec.morsel_window = 5;
  QueryService explicit_service(&catalog_, explicit_cfg);
  EXPECT_EQ(explicit_service.per_query_morsel_window(), 5u);
}

// ---------------------------------------------------------------------------
// DML churn under load: catalog table replacement is snapshot-atomic per
// query, and load on other tables stays byte-identical throughout.
// ---------------------------------------------------------------------------

TEST_F(ServiceConcurrencyTest, TableReplaceUnderLoadIsSnapshotAtomic) {
  ASSERT_TRUE(catalog_.RegisterTable(ChurnTable(0)).ok());

  auto fact_reference = RunSolo(ScanPlan("fact"));
  ASSERT_TRUE(fact_reference.ok());
  const std::string fact_rows = Serialize(fact_reference.value());

  QueryServiceConfig scfg;
  scfg.num_threads = 2;
  scfg.max_in_flight = 3;
  QueryService service(&catalog_, scfg);

  std::atomic<bool> stop{false};
  std::thread churner([&] {
    // CREATE OR REPLACE churn generation g (cycled to keep builds small);
    // in-flight readers keep their snapshot alive via the catalog's
    // shared_ptr handoff.
    for (int64_t iter = 0; !stop.load(); ++iter) {
      ASSERT_TRUE(catalog_.ReplaceTable(ChurnTable(1 + iter % 50)).ok());
      std::this_thread::yield();
    }
  });

  std::thread fact_load([&] {
    for (int i = 0; i < 20; ++i) {
      auto result = service.Execute(ScanPlan("fact"));
      ASSERT_TRUE(result.ok());
      EXPECT_EQ(Serialize(result.value()), fact_rows)
          << "stable-table query diverged during DML churn";
    }
  });

  for (int i = 0; i < 40; ++i) {
    // Alternate plain scans and top-k plans: the latter exercise the
    // engine's plan analysis (TraceColumnToScan) against the snapshot —
    // pre-snapshot, a replacement landing between the analysis' and the
    // scan compile's name lookups could hand one query two table versions.
    const bool topk = (i % 2) == 1;
    auto result = service.Execute(
        topk ? TopKPlan(ScanPlan("churn"), "g", /*descending=*/true, 5)
             : ScanPlan("churn"));
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    const auto& rows = result.value().rows;
    ASSERT_FALSE(rows.empty());
    // Atomic snapshot: one generation only, and exactly that generation's
    // row count — no torn reads across a replacement.
    const int64_t gen = rows[0][0].int64_value();
    for (const auto& row : rows) {
      ASSERT_EQ(row[0].int64_value(), gen) << "torn generations in one scan";
    }
    EXPECT_EQ(static_cast<int64_t>(rows.size()), topk ? 5 : 100 + gen);
  }

  fact_load.join();
  stop.store(true);
  churner.join();
}

TEST_F(ServiceConcurrencyTest, ReplaceTableInvalidatesPredicateCache) {
  ASSERT_TRUE(catalog_.RegisterTable(
      Synthetic("vtab", workload::Layout::kClustered, 20, 100, 500)).ok());
  auto topk_plan = [] {
    return TopKPlan(ScanPlan("vtab"), "key", /*descending=*/true, 8);
  };

  PredicateCache cache;
  QueryServiceConfig scfg;
  scfg.num_threads = 2;
  scfg.engine.predicate_cache = &cache;
  QueryService service(&catalog_, scfg);

  // Populate, then confirm a repeat hits the cache.
  ASSERT_TRUE(service.Execute(topk_plan()).ok());
  auto repeat = service.Execute(topk_plan());
  ASSERT_TRUE(repeat.ok());
  EXPECT_TRUE(repeat.value().predicate_cache_hit);

  // CREATE OR REPLACE with different data: the cached contributing
  // partitions describe the old version and must not restrict scans of the
  // new one — the query must return the new version's true top-k.
  ASSERT_TRUE(catalog_.ReplaceTable(
      Synthetic("vtab", workload::Layout::kRandom, 20, 100, 501)).ok());
  auto fresh_reference = RunSolo(topk_plan());
  ASSERT_TRUE(fresh_reference.ok());
  auto after_replace = service.Execute(topk_plan());
  ASSERT_TRUE(after_replace.ok());
  EXPECT_FALSE(after_replace.value().predicate_cache_hit)
      << "stale cache entry served across a table replacement";
  EXPECT_EQ(Serialize(after_replace.value()),
            Serialize(fresh_reference.value()));
}

// ---------------------------------------------------------------------------
// Shared predicate cache across concurrent identical queries: rows stay
// byte-identical to solo runs while the cache amplifies hits and coalesces
// concurrent populations.
// ---------------------------------------------------------------------------

// ---------------------------------------------------------------------------
// Per-query cancellation (PR 5): a cancelled queued query completes with
// Status::Cancelled without executing; a cancelled running query aborts and
// releases its pool share; the service keeps serving afterwards.
// ---------------------------------------------------------------------------

TEST_F(ServiceConcurrencyTest, CancelQueuedQueryCompletesWithCancelled) {
  QueryServiceConfig scfg;
  scfg.num_threads = 1;
  scfg.max_in_flight = 1;  // one driver: strict FIFO behind the first query
  scfg.engine.exec.force_parallel = true;
  scfg.engine.exec.morsel_min_rows = 0;  // one morsel per partition
  QueryService service(&catalog_, scfg);

  auto filler = [] {
    // A full sort of the 40-partition table, one morsel per partition on a
    // width-1 forced-parallel pool: several milliseconds of work each.
    return SortPlan(ScanPlan("fact"), "val", /*descending=*/true);
  };
  // Four fillers occupy the single driver long enough that Cancel() — one
  // call away on this thread — always lands while C is still queued.
  std::vector<Result<QueryService::Handle>> fillers;
  for (int i = 0; i < 4; ++i) fillers.push_back(service.Submit(filler()));
  auto c = service.Submit(filler());
  for (auto& f : fillers) ASSERT_TRUE(f.ok());
  ASSERT_TRUE(c.ok());
  c.value().Cancel();

  for (auto& f : fillers) {
    auto r = f.value().Await();
    EXPECT_TRUE(r.ok()) << r.status().ToString();
  }
  auto rc = c.value().Await();
  ASSERT_FALSE(rc.ok());
  EXPECT_EQ(rc.status().code(), StatusCode::kCancelled);

  service.Drain();
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed, 5);
  EXPECT_EQ(stats.cancelled, 1);
  EXPECT_EQ(stats.failed, 0);
  EXPECT_EQ(stats.ok, 4);
  EXPECT_EQ(stats.completed, stats.ok + stats.failed + stats.cancelled +
                                 stats.deadline_exceeded);

  // The service still serves: a fresh query after the cancellation runs OK.
  auto after = service.Execute(filler());
  ASSERT_TRUE(after.ok()) << after.status().ToString();
}

TEST_F(ServiceConcurrencyTest, CancelRunningQueryReleasesServiceForOthers) {
  QueryServiceConfig scfg;
  scfg.num_threads = 2;
  scfg.max_in_flight = 2;
  scfg.engine.exec.force_parallel = true;
  scfg.engine.exec.morsel_min_rows = 0;  // one partition per morsel
  QueryService service(&catalog_, scfg);

  auto victim = service.Submit(
      SortPlan(ScanPlan("fact"), "val", /*descending=*/true));
  ASSERT_TRUE(victim.ok());
  victim.value().Cancel();
  auto rv = victim.value().Await();
  // Depending on timing the query may have finished before the flag landed;
  // either way the handle resolves and the service stays healthy.
  if (!rv.ok()) EXPECT_EQ(rv.status().code(), StatusCode::kCancelled);

  auto after = service.Execute(
      TopKPlan(ScanPlan("probe2"), "key", /*descending=*/true, 10));
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_FALSE(after.value().rows.empty());
  service.Drain();
  EXPECT_EQ(service.stats().completed, 2);
}

// ---------------------------------------------------------------------------
// ThreadPool::queue_depth was sampled but never surfaced per service — the
// high-water gauge must report the shared pool's deepest backlog.
// ---------------------------------------------------------------------------

TEST_F(ServiceConcurrencyTest, PoolQueueDepthHighWaterIsSurfaced) {
  QueryServiceConfig scfg;
  scfg.num_threads = 1;  // one worker: submitted morsels must queue
  scfg.max_in_flight = 2;
  scfg.engine.exec.force_parallel = true;
  scfg.engine.exec.morsel_min_rows = 0;  // 40 partitions → 40 morsel tasks
  QueryService service(&catalog_, scfg);

  // Before any query the gauge reads zero.
  EXPECT_EQ(service.stats().peak_pool_queue_depth, 0);

  auto result = service.Execute(AggregatePlan(
      ScanPlan("fact"), {"cat"}, {AggPlanSpec{AggFunc::kCount, "", "n"}}));
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Every morsel passed through the pool queue (ThreadPool::Submit updates
  // the high-water after the push, so the first submission already counts).
  ServiceStats stats = service.stats();
  EXPECT_GE(stats.peak_pool_queue_depth, 1);
  // Bounded by what this workload could ever enqueue: the scan's morsels
  // plus pipeline barrier tasks, far below any runaway figure.
  EXPECT_LE(stats.peak_pool_queue_depth, 200);
}

TEST_F(ServiceConcurrencyTest, SharedPredicateCacheKeepsRowsIdentical) {
  auto topk_plan = [] {
    return TopKPlan(ScanPlan("fact"), "key", /*descending=*/true, 10);
  };
  auto reference = RunSolo(topk_plan());
  ASSERT_TRUE(reference.ok());
  const std::string expected_rows = Serialize(reference.value());

  PredicateCache cache;
  QueryServiceConfig scfg;
  scfg.num_threads = 2;
  scfg.max_in_flight = 4;
  scfg.engine.predicate_cache = &cache;
  QueryService service(&catalog_, scfg);

  constexpr int kStreams = 4;
  constexpr int kRepeats = 8;
  std::vector<std::thread> streams;
  for (int s = 0; s < kStreams; ++s) {
    streams.emplace_back([&] {
      for (int i = 0; i < kRepeats; ++i) {
        auto result = service.Execute(topk_plan());
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        EXPECT_EQ(Serialize(result.value()), expected_rows)
            << "cache-restricted scan changed the top-k result";
      }
    });
  }
  for (auto& t : streams) t.join();

  PredicateCache::Counters counters = cache.snapshot();
  EXPECT_EQ(counters.size, 1u);  // one fingerprint
  // Every execution after the first population is a hit; concurrent racers
  // either hit, wait coalesced, or (rarely) take over an abandoned ticket.
  EXPECT_GE(counters.hits, kStreams * kRepeats / 2);
  EXPECT_GE(counters.misses, 1);
}

}  // namespace
}  // namespace snowprune
