// Self-test for the Clang Thread Safety Analysis wiring — this file is NOT
// part of any build target. CI compiles it twice with
//   clang++ -std=c++17 -Isrc -Wthread-safety -Werror=thread-safety \
//       -fsyntax-only tests/thread_safety_misuse.cc
// once without any define (the control: the well-behaved code below must
// compile cleanly, proving failures are not due to unrelated breakage) and
// once with -DSNOW_THREAD_SAFETY_MISUSE, which enables three canonical
// lock-discipline violations. The second compile MUST fail; if it ever
// succeeds, the analysis has been silently disabled (a broken macro, a
// wrapper that lost its annotations) and CI turns red.

#include <cstdint>

#include "common/mutex.h"

namespace snowprune {
namespace {

class Account {
 public:
  void Deposit(int64_t amount) SNOW_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    balance_ += amount;
  }

  int64_t balance() const SNOW_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    return balance_;
  }

  void TransferLocked(Account* to, int64_t amount) SNOW_REQUIRES(mutex_) {
    balance_ -= amount;
    to->Deposit(amount);
  }

#if defined(SNOW_THREAD_SAFETY_MISUSE)
  // Violation 1: writing a guarded member without its mutex
  // (-Wthread-safety-analysis: "writing variable ... requires holding
  // mutex").
  void UnlockedWrite(int64_t amount) { balance_ = amount; }

  // Violation 2: calling a REQUIRES function without holding the lock.
  void CallWithoutLock(Account* to) { TransferLocked(to, 1); }

  // Violation 3: acquiring without releasing on every path ("mutex is still
  // held at the end of function").
  void ForgottenUnlock() {
    mutex_.Lock();
    balance_ += 1;
  }
#endif  // SNOW_THREAD_SAFETY_MISUSE

 private:
  mutable Mutex mutex_;
  int64_t balance_ SNOW_GUARDED_BY(mutex_) = 0;
};

// Keep the control compile honest: instantiate the well-behaved surface so
// -fsyntax-only cannot skip it.
inline int64_t Use() {
  Account a, b;
  a.Deposit(10);
  return a.balance() + b.balance();
}

}  // namespace
}  // namespace snowprune
