/// Randomized pruning-oracle suite: generates hundreds of random tables and
/// predicates and checks, against the brute-force row-level oracle
/// (MatchCountsPerPartition / full unpruned execution), that no pruning
/// technique ever drops a micro-partition the query still needs — the
/// paper's core "no false negatives" invariant — and that partition-parallel
/// execution returns byte-identical results to serial.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "common/rng.h"
#include "common/trace.h"
#include "core/filter_pruner.h"
#include "core/limit_pruner.h"
#include "shard/coordinator.h"
#include "shard/shard_map.h"
#include "exec/column_batch.h"
#include "exec/engine.h"
#include "exec/parallel/pipeline.h"
#include "exec/row_eval.h"
#include "expr/evaluator.h"
#include "expr/range_analysis.h"
#include "expr/builder.h"
#include "expr/jit/compiler.h"
#include "expr/jit/executor.h"
#include "test_util.h"
#include "workload/production_model.h"
#include "workload/query_gen.h"
#include "workload/table_gen.h"

namespace snowprune {
namespace {

using testing_util::MatchCountsPerPartition;

// --------------------------------------------------------------------------
// Random tables and predicates
// --------------------------------------------------------------------------

std::shared_ptr<Table> RandomTable(Rng* rng, const std::string& name) {
  workload::TableGenConfig cfg;
  cfg.name = name;
  cfg.num_partitions = static_cast<size_t>(rng->UniformInt(3, 40));
  cfg.rows_per_partition = static_cast<size_t>(rng->UniformInt(5, 60));
  switch (rng->UniformInt(0, 2)) {
    case 0: cfg.layout = workload::Layout::kSorted; break;
    case 1: cfg.layout = workload::Layout::kClustered; break;
    default: cfg.layout = workload::Layout::kRandom; break;
  }
  cfg.overlap = rng->Uniform() * 0.2;
  // Narrow domains make exact boundary collisions (predicate constant ==
  // partition min/max) common — the classic false-pruning hot spot.
  cfg.domain_min = rng->UniformInt(-50, 50);
  cfg.domain_max = cfg.domain_min + rng->UniformInt(10, 2000);
  double nf = rng->Uniform();
  cfg.null_fraction = nf < 0.4 ? 0.0 : (nf < 0.8 ? 0.15 : 0.6);
  cfg.num_categories = static_cast<size_t>(rng->UniformInt(2, 30));
  cfg.seed = rng->Next();
  return workload::SyntheticTable(cfg);
}

/// A literal biased (50%) toward an exact zone-map boundary of `column` in
/// some partition, occasionally nudged by ±1 to sit just inside/outside.
Value BoundaryBiasedLiteral(Rng* rng, const Table& table, size_t column,
                            bool integer) {
  if (table.num_partitions() > 0 && rng->Bernoulli(0.5)) {
    auto pid = static_cast<PartitionId>(
        rng->UniformInt(0, static_cast<int64_t>(table.num_partitions()) - 1));
    const ColumnStats& s = table.stats(pid, column);
    const Value& v = rng->Bernoulli(0.5) ? s.min : s.max;
    if (!v.is_null()) {
      if (integer && v.is_int64() && rng->Bernoulli(0.3)) {
        return Value(v.int64_value() + rng->UniformInt(-1, 1));
      }
      return v;
    }
  }
  if (integer) return Value(rng->UniformInt(-100, 2100));
  return Value(rng->Uniform() * 2.0 - 0.5);
}

CompareOp RandomOp(Rng* rng) {
  switch (rng->UniformInt(0, 5)) {
    case 0: return CompareOp::kEq;
    case 1: return CompareOp::kNe;
    case 2: return CompareOp::kLt;
    case 3: return CompareOp::kLe;
    case 4: return CompareOp::kGt;
    default: return CompareOp::kGe;
  }
}

/// Schema: id(int64) key(int64) val(float64, nullable) cat(string) ts(int64).
ExprPtr RandomPredicate(Rng* rng, const Table& table, int depth) {
  if (depth > 0 && rng->Bernoulli(0.45)) {
    int n = rng->Bernoulli(0.3) ? 3 : 2;
    std::vector<ExprPtr> terms;
    for (int i = 0; i < n; ++i) {
      terms.push_back(RandomPredicate(rng, table, depth - 1));
    }
    ExprPtr combo =
        rng->Bernoulli(0.5) ? And(std::move(terms)) : Or(std::move(terms));
    if (rng->Bernoulli(0.2)) return Not(std::move(combo));
    return combo;
  }
  switch (rng->UniformInt(0, 8)) {
    case 0:  // int column vs boundary constant
    case 1: {
      bool use_key = rng->Bernoulli(0.6);
      return Cmp(RandomOp(rng), Col(use_key ? "key" : "ts"),
                 Lit(BoundaryBiasedLiteral(rng, table, use_key ? 1 : 4, true)));
    }
    case 2:  // float column vs constant (nullable column)
      return Cmp(RandomOp(rng), Col("val"),
                 Lit(BoundaryBiasedLiteral(rng, table, 2, false)));
    case 3: {  // BETWEEN spanning a boundary
      Value a = BoundaryBiasedLiteral(rng, table, 1, true);
      Value b = BoundaryBiasedLiteral(rng, table, 1, true);
      if (Value::Compare(a, b) > 0) std::swap(a, b);
      return Between(Col("key"), a, b);
    }
    case 4: {  // arithmetic on the pruning column
      ExprPtr lhs = rng->Bernoulli(0.5)
                        ? Add(Col("key"), Lit(rng->UniformInt(-20, 20)))
                        : Mul(Col("key"), Lit(int64_t{2}));
      return Cmp(RandomOp(rng), std::move(lhs),
                 Lit(BoundaryBiasedLiteral(rng, table, 1, true)));
    }
    case 5: {  // NULL tests, division, IF, and mixed-type comparisons
      switch (rng->UniformInt(0, 4)) {
        case 0:
          return rng->Bernoulli(0.5) ? IsNull(Col("val"))
                                     : IsNotNull(Col("val"));
        case 1:  // division (result may be NULL on divide-by-zero)
          return Cmp(RandomOp(rng),
                     Div(Col("key"), Lit(rng->UniformInt(-2, 3))),
                     Lit(rng->UniformInt(-50, 500)));
        case 2:  // int column against a fractional constant
          return Cmp(RandomOp(rng), Col("key"),
                     Lit(static_cast<double>(rng->UniformInt(0, 2000)) + 0.5));
        case 3:  // float column against an int constant
          return Cmp(RandomOp(rng), Col("val"), Lit(rng->UniformInt(0, 1)));
        default:  // IF used as a value (§3's altitude example shape)
          return Cmp(RandomOp(rng),
                     If(Gt(Col("ts"), Lit(BoundaryBiasedLiteral(rng, table, 4,
                                                                true))),
                        Mul(Col("key"), Lit(int64_t{2})), Col("key")),
                     Lit(BoundaryBiasedLiteral(rng, table, 1, true)));
      }
    }
    case 6: {  // string prefix / LIKE on cat ("c0000".."cNNNN")
      std::string prefix = rng->Bernoulli(0.5) ? "c0" : "c000";
      return rng->Bernoulli(0.5) ? StartsWith(Col("cat"), prefix)
                                 : Like(Col("cat"), prefix + "%");
    }
    case 7: {  // IN list with boundary values
      std::vector<Value> vals;
      int n = static_cast<int>(rng->UniformInt(1, 4));
      for (int i = 0; i < n; ++i) {
        vals.push_back(BoundaryBiasedLiteral(rng, table, 1, true));
      }
      return In(Col("key"), std::move(vals));
    }
    default:  // column-to-column, or string ordering on cat
      if (rng->Bernoulli(0.3)) {
        Value v = BoundaryBiasedLiteral(rng, table, 3, false);
        if (!v.is_string()) v = Value(std::string("c0100"));
        return Cmp(RandomOp(rng), Col("cat"), Lit(std::move(v)));
      }
      return Cmp(RandomOp(rng), Col("key"), Col("ts"));
  }
}

std::string Serialize(const std::vector<Row>& rows) {
  std::string s;
  for (const auto& row : rows) {
    for (const auto& v : row) {
      // Value::type() asserts on NULL (a NULL has no type); tag NULLs out
      // of band so serialized comparisons still distinguish NULL from any
      // typed value.
      s += v.is_null() ? "null" : std::to_string(static_cast<int>(v.type()));
      s += ':';
      s += v.ToString();
      s += ',';
    }
    s += '\n';
  }
  return s;
}

/// A random micro-partition matching the synthetic schema
/// (id int64, key int64, val float64 nullable, cat string, ts int64) —
/// the INSERT/UPDATE payload for the DML-churn fuzz.
MicroPartition RandomPartition(Rng* rng, PartitionId id) {
  const size_t rows = static_cast<size_t>(rng->UniformInt(3, 50));
  ColumnVector ids(DataType::kInt64), key(DataType::kInt64),
      val(DataType::kFloat64), cat(DataType::kString), ts(DataType::kInt64);
  for (size_t r = 0; r < rows; ++r) {
    ids.AppendInt64(rng->UniformInt(0, 1000000));
    key.AppendInt64(rng->UniformInt(-100, 2100));
    if (rng->Bernoulli(0.2)) {
      val.AppendNull();
    } else {
      val.AppendFloat64(rng->Uniform() * 2.0 - 0.5);
    }
    cat.AppendString("c" + std::to_string(rng->UniformInt(0, 30)));
    ts.AppendInt64(rng->UniformInt(-100, 2100));
  }
  std::vector<ColumnVector> cols;
  cols.push_back(std::move(ids));
  cols.push_back(std::move(key));
  cols.push_back(std::move(val));
  cols.push_back(std::move(cat));
  cols.push_back(std::move(ts));
  return MicroPartition(id, std::move(cols));
}

// --------------------------------------------------------------------------
// Pruner-level oracles
// --------------------------------------------------------------------------

TEST(FuzzPruneTest, FilterPrunerNeverDropsAMatchingPartition) {
  for (int iter = 0; iter < 140; ++iter) {
    Rng rng(9000 + iter);
    auto table = RandomTable(&rng, "f" + std::to_string(iter));
    ExprPtr pred = RandomPredicate(&rng, *table, 2);
    ASSERT_TRUE(BindExpr(pred, table->schema()).ok());
    std::vector<int64_t> oracle = MatchCountsPerPartition(*table, pred);

    FilterPruner pruner(pred);
    FilterPruneResult res = pruner.Prune(*table, table->FullScanSet());
    std::set<PartitionId> kept(res.scan_set.begin(), res.scan_set.end());

    for (size_t pid = 0; pid < table->num_partitions(); ++pid) {
      if (oracle[pid] > 0) {
        ASSERT_TRUE(kept.count(static_cast<PartitionId>(pid)) > 0)
            << "iter " << iter << ": partition " << pid << " with "
            << oracle[pid] << " matching rows was falsely pruned";
      }
    }
    // Fully-matching partitions must match on *every* row (§4.2 precision).
    for (PartitionId pid : res.fully_matching) {
      ASSERT_TRUE(kept.count(pid) > 0);
      ASSERT_EQ(oracle[pid], table->partition_metadata(pid).row_count())
          << "iter " << iter << ": partition " << pid
          << " misclassified as fully matching";
    }
    // The runtime path (§3.2) must agree with the oracle too.
    FilterPruner runtime(pred);
    for (size_t pid = 0; pid < table->num_partitions(); ++pid) {
      if (runtime.CanPrune(*table, static_cast<PartitionId>(pid))) {
        ASSERT_EQ(oracle[pid], 0)
            << "iter " << iter << ": runtime CanPrune dropped partition "
            << pid << " with matches";
      }
    }
  }
}

/// The sharpest oracle: AnalyzePredicate's three outcome-set flags, checked
/// per partition against a row-by-row evaluation histogram. Every cleared
/// flag is a metadata *proof* ("no row produces this outcome") and must
/// never be contradicted by an actual row — this is where open-vs-closed
/// boundary mistakes at partition min/max surface first.
TEST(FuzzPruneTest, AnalyzePredicateFlagsMatchRowOutcomes) {
  for (int iter = 0; iter < 220; ++iter) {
    Rng rng(61000 + iter);
    auto table = RandomTable(&rng, "a" + std::to_string(iter));
    ExprPtr pred = RandomPredicate(&rng, *table, 2);
    ASSERT_TRUE(BindExpr(pred, table->schema()).ok());

    for (size_t pid = 0; pid < table->num_partitions(); ++pid) {
      const MicroPartition& part =
          table->partition_metadata(static_cast<PartitionId>(pid));
      std::vector<ColumnStats> stats;
      for (size_t c = 0; c < part.num_columns(); ++c) {
        stats.push_back(part.stats(c));
      }
      BoolRange range = AnalyzePredicate(*pred, stats);

      int64_t true_rows = 0, false_rows = 0, null_rows = 0;
      const size_t n = static_cast<size_t>(part.row_count());
      for (size_t r = 0; r < n; ++r) {
        Row row;
        for (size_t c = 0; c < part.num_columns(); ++c) {
          row.push_back(part.column(c).ValueAt(r));
        }
        auto outcome = EvalRowPredicate(*pred, row);
        if (!outcome.has_value()) {
          ++null_rows;
        } else if (*outcome) {
          ++true_rows;
        } else {
          ++false_rows;
        }
      }
      ASSERT_TRUE(range.can_true || true_rows == 0)
          << "iter " << iter << " partition " << pid << ": " << true_rows
          << " TRUE rows but analysis claims none (" << range.ToString()
          << ") — this partition would be falsely pruned";
      ASSERT_TRUE(range.can_false || false_rows == 0)
          << "iter " << iter << " partition " << pid << ": " << false_rows
          << " FALSE rows but analysis claims none (" << range.ToString()
          << ") — this partition would be falsely fully-matching";
      ASSERT_TRUE(range.can_null || null_rows == 0)
          << "iter " << iter << " partition " << pid << ": " << null_rows
          << " NULL rows but analysis claims none (" << range.ToString()
          << ")";
    }
  }
}

TEST(FuzzPruneTest, LimitPrunerAlwaysKeepsEnoughMatchingRows) {
  for (int iter = 0; iter < 120; ++iter) {
    Rng rng(17000 + iter);
    auto table = RandomTable(&rng, "l" + std::to_string(iter));
    ExprPtr pred =
        rng.Bernoulli(0.15) ? nullptr : RandomPredicate(&rng, *table, 2);
    if (pred) ASSERT_TRUE(BindExpr(pred, table->schema()).ok());
    std::vector<int64_t> oracle = MatchCountsPerPartition(*table, pred);
    int64_t total_matches = 0;
    for (int64_t c : oracle) total_matches += c;

    FilterPruner pruner(pred);
    FilterPruneResult filtered = pruner.Prune(*table, table->FullScanSet());
    for (int64_t k :
         {int64_t{0}, int64_t{1}, int64_t{7}, rng.UniformInt(1, 500)}) {
      LimitPruneResult res = LimitPruner::Prune(*table, filtered, k);
      int64_t kept_matches = 0;
      for (PartitionId pid : res.scan_set) kept_matches += oracle[pid];
      ASSERT_GE(kept_matches, std::min(k, total_matches))
          << "iter " << iter << " k=" << k << " outcome "
          << ToString(res.outcome)
          << ": LIMIT pruning kept too few matching rows";
    }
  }
}

// --------------------------------------------------------------------------
// Engine-level oracle: pruning on == pruning off, parallel == serial
// --------------------------------------------------------------------------

class FuzzEngine {
 public:
  explicit FuzzEngine(std::shared_ptr<Table> table) {
    EXPECT_TRUE(catalog_.RegisterTable(std::move(table)).ok());
  }

  Catalog* catalog() { return &catalog_; }

  QueryResult RunFull(const PlanPtr& plan, bool pruning, int threads,
                      bool force_parallel = false, Trace* trace = nullptr) {
    EngineConfig config;
    config.enable_filter_pruning = pruning;
    config.enable_limit_pruning = pruning;
    config.enable_topk_pruning = pruning;
    config.enable_join_pruning = pruning;
    config.exec.num_threads = threads;
    config.exec.force_parallel = force_parallel;
    Engine engine(&catalog_, config);
    ExecuteOptions opts;
    opts.trace = trace;
    auto result = engine.Execute(plan, opts);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(result).value();
  }

  std::vector<Row> Run(const PlanPtr& plan, bool pruning, int threads) {
    return RunFull(plan, pruning, threads).rows;
  }

  /// Default config except for the expression-specialization tier, forced
  /// fully eager (compile every filter at plan time) or fully off.
  QueryResult RunSpecialized(const PlanPtr& plan, int threads,
                             bool specialize) {
    EngineConfig config;
    config.exec.num_threads = threads;
    config.exec.specialize = specialize;
    config.exec.specialize_after = 0;
    Engine engine(&catalog_, config);
    ExecuteOptions opts;
    auto result = engine.Execute(plan, opts);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(result).value();
  }

 private:
  Catalog catalog_;
};

/// All-pruning-on results must be byte-identical across thread counts —
/// and tracing must be observation only: at every thread count, a traced
/// run returns the same rows and the same deterministic PruningStats as
/// the untraced run next to it.
void ExpectParallelIdentical(FuzzEngine* engine, const PlanPtr& plan,
                             const std::vector<Row>& serial_rows,
                             const std::string& context) {
  std::string serial = Serialize(serial_rows);
  for (int threads : {2, 8}) {
    QueryResult untraced = engine->RunFull(plan, true, threads);
    ASSERT_EQ(serial, Serialize(untraced.rows))
        << context << ": parallel rows diverged at num_threads=" << threads;
    Trace trace;
    QueryResult traced =
        engine->RunFull(plan, true, threads, false, &trace);
    ASSERT_EQ(serial, Serialize(traced.rows))
        << context << ": traced rows diverged at num_threads=" << threads;
    ASSERT_EQ(testing_util::DiffStats(traced.stats, untraced.stats), "")
        << context << ": tracing changed stats at num_threads=" << threads;
  }
}

TEST(FuzzPruneTest, EngineAgreesWithUnprunedExecution) {
  for (int iter = 0; iter < 70; ++iter) {
    Rng rng(31000 + iter);
    auto table = RandomTable(&rng, "t");
    const std::string ctx = "iter " + std::to_string(iter);
    FuzzEngine engine(table);

    ExprPtr pred = RandomPredicate(&rng, *table, 2);
    ASSERT_TRUE(BindExpr(pred, table->schema()).ok());
    std::vector<int64_t> oracle = MatchCountsPerPartition(*table, pred);
    int64_t total_matches = 0;
    for (int64_t c : oracle) total_matches += c;

    // --- Filtered scan: pruning must not change the row stream at all. ---
    auto scan = ScanPlan("t", pred);
    std::vector<Row> pruned_rows = engine.Run(scan, true, 1);
    ASSERT_EQ(Serialize(engine.Run(scan, false, 1)), Serialize(pruned_rows))
        << ctx << ": filter pruning changed scan results";
    ASSERT_EQ(static_cast<int64_t>(pruned_rows.size()), total_matches) << ctx;
    ExpectParallelIdentical(&engine, scan, pruned_rows, ctx);

    // --- Top-k: the k best order values are unique even with ties. -------
    const char* order_col =
        rng.Bernoulli(0.4) ? "key" : (rng.Bernoulli(0.5) ? "ts" : "val");
    bool desc = rng.Bernoulli(0.5);
    int64_t k = rng.UniformInt(1, 30);
    auto topk = TopKPlan(ScanPlan("t", pred), order_col, desc, k);
    std::vector<Row> topk_on = engine.Run(topk, true, 1);
    std::vector<Row> topk_off = engine.Run(topk, false, 1);
    ASSERT_EQ(topk_on.size(), topk_off.size()) << ctx;
    auto order_idx = table->schema().FindColumn(order_col);
    ASSERT_TRUE(order_idx.has_value());
    auto order_values = [&](const std::vector<Row>& rows) {
      std::vector<std::string> v;
      for (const auto& r : rows) v.push_back(r[*order_idx].ToString());
      std::sort(v.begin(), v.end());
      return v;
    };
    ASSERT_EQ(order_values(topk_on), order_values(topk_off))
        << ctx << ": top-k pruning changed the winning order values";
    for (const auto& row : topk_on) {
      auto keep = EvalRowPredicate(*pred, row);
      ASSERT_TRUE(keep.has_value() && *keep)
          << ctx << ": top-k returned a row failing the predicate";
    }
    ExpectParallelIdentical(&engine, topk, topk_on, ctx);

    // --- LIMIT: any min(k, matches) matching rows are a valid answer. ----
    auto limit = LimitPlan(ScanPlan("t", pred), k);
    std::vector<Row> limit_on = engine.Run(limit, true, 1);
    ASSERT_EQ(static_cast<int64_t>(limit_on.size()),
              std::min(k, total_matches))
        << ctx << ": LIMIT pruning returned the wrong row count";
    for (const auto& row : limit_on) {
      auto keep = EvalRowPredicate(*pred, row);
      ASSERT_TRUE(keep.has_value() && *keep) << ctx;
    }
    ExpectParallelIdentical(&engine, limit, limit_on, ctx);

    // --- Aggregation: emission order is key-sorted, so exact equality. ---
    auto agg = AggregatePlan(ScanPlan("t", pred), {"cat"},
                             {AggPlanSpec{AggFunc::kCount, "", "n"},
                              AggPlanSpec{AggFunc::kSum, "key", "key_sum"},
                              AggPlanSpec{AggFunc::kMin, "ts", "ts_min"}});
    std::vector<Row> agg_on = engine.Run(agg, true, 1);
    ASSERT_EQ(Serialize(engine.Run(agg, false, 1)), Serialize(agg_on)) << ctx;
    ExpectParallelIdentical(&engine, agg, agg_on, ctx);
  }
}

/// The vectorized selection path (ColumnBatch hot path) must agree with the
/// brute-force scalar mask on every random table × predicate — including
/// the shapes that take the per-row fallback (arithmetic, IF).
TEST(FuzzPruneTest, VectorizedSelectionAgreesWithScalarOracle) {
  for (int iter = 0; iter < 150; ++iter) {
    Rng rng(73000 + iter);
    auto table = RandomTable(&rng, "v" + std::to_string(iter));
    ExprPtr pred = RandomPredicate(&rng, *table, 2);
    ASSERT_TRUE(BindExpr(pred, table->schema()).ok());
    for (size_t pid = 0; pid < table->num_partitions(); ++pid) {
      const MicroPartition& part =
          table->partition_metadata(static_cast<PartitionId>(pid));
      std::vector<uint8_t> oracle = EvalPredicateMask(*pred, part);
      std::vector<uint32_t> selection;
      ComputeSelection(*pred, part, &selection);
      std::vector<uint32_t> expected;
      for (uint32_t r = 0; r < oracle.size(); ++r) {
        if (oracle[r]) expected.push_back(r);
      }
      ASSERT_EQ(selection, expected)
          << "iter " << iter << " partition " << pid << " predicate "
          << pred->ToString();
    }
  }
}

/// A random numeric *value* expression over the synthetic schema: nested
/// arithmetic (all four operators, division by possibly-zero constants),
/// IF-as-value with predicate conditions, numeric columns and literals —
/// the shapes the typed-lane evaluator (PR 4) covers, plus the odd
/// non-numeric leaf to exercise its scalar fallback.
ExprPtr RandomValueExpr(Rng* rng, const Table& table, int depth) {
  if (depth <= 0 || rng->Bernoulli(0.3)) {
    switch (rng->UniformInt(0, 4)) {
      case 0: return Col("key");
      case 1: return Col("ts");
      case 2: return Col("val");  // nullable float64
      case 3: return Lit(rng->UniformInt(-30, 30));
      default:
        return rng->Bernoulli(0.5) ? Lit(rng->Uniform() * 10.0 - 5.0)
                                   : Lit(rng->UniformInt(-3, 3));
    }
  }
  switch (rng->UniformInt(0, 4)) {
    case 0:
      return Add(RandomValueExpr(rng, table, depth - 1),
                 RandomValueExpr(rng, table, depth - 1));
    case 1:
      return Sub(RandomValueExpr(rng, table, depth - 1),
                 RandomValueExpr(rng, table, depth - 1));
    case 2:
      return Mul(RandomValueExpr(rng, table, depth - 1),
                 RandomValueExpr(rng, table, depth - 1));
    case 3:  // divisor often hits zero → NULL rows
      return Div(RandomValueExpr(rng, table, depth - 1),
                 rng->Bernoulli(0.4) ? Lit(rng->UniformInt(-2, 2))
                                     : RandomValueExpr(rng, table, depth - 1));
    default:
      return If(RandomPredicate(rng, table, 1),
                RandomValueExpr(rng, table, depth - 1),
                RandomValueExpr(rng, table, depth - 1));
  }
}

/// A predicate built to stress exactly what PR 4 vectorized: comparisons
/// over arithmetic/IF value lanes, IF in predicate position, and deeply
/// nested AND/OR (whose terms now evaluate selection-aware).
ExprPtr RandomArithIfPredicate(Rng* rng, const Table& table, int depth) {
  if (depth > 0 && rng->Bernoulli(0.5)) {
    if (rng->Bernoulli(0.25)) {
      // IF in predicate position, both branches predicates themselves.
      return If(RandomArithIfPredicate(rng, table, depth - 1),
                RandomArithIfPredicate(rng, table, depth - 1),
                RandomArithIfPredicate(rng, table, depth - 1));
    }
    int n = rng->Bernoulli(0.3) ? 3 : 2;
    std::vector<ExprPtr> terms;
    for (int i = 0; i < n; ++i) {
      terms.push_back(RandomArithIfPredicate(rng, table, depth - 1));
    }
    ExprPtr combo =
        rng->Bernoulli(0.5) ? And(std::move(terms)) : Or(std::move(terms));
    if (rng->Bernoulli(0.2)) return Not(std::move(combo));
    return combo;
  }
  return Cmp(RandomOp(rng), RandomValueExpr(rng, table, 2),
             rng->Bernoulli(0.5)
                 ? RandomValueExpr(rng, table, 1)
                 : Lit(BoundaryBiasedLiteral(rng, table, 1, true)));
}

/// The typed arithmetic/IF lanes and selection-aware connectives must agree
/// with the brute-force scalar evaluator on every row — including NULL
/// propagation through arithmetic, divide-by-zero, int64 overflow fallback
/// to double, and per-row IF branch selection.
TEST(FuzzPruneTest, VectorizedArithIfAgreesWithScalarOracle) {
  for (int iter = 0; iter < 150; ++iter) {
    Rng rng(101000 + iter);
    auto table = RandomTable(&rng, "ai" + std::to_string(iter));
    ExprPtr pred = RandomArithIfPredicate(&rng, *table, 3);
    ASSERT_TRUE(BindExpr(pred, table->schema()).ok());
    EvalScratch scratch;  // reused across partitions, as the scan does
    for (size_t pid = 0; pid < table->num_partitions(); ++pid) {
      const MicroPartition& part =
          table->partition_metadata(static_cast<PartitionId>(pid));
      std::vector<uint8_t> oracle = EvalPredicateMask(*pred, part);
      std::vector<uint32_t> selection;
      ComputeSelection(*pred, part, &selection, &scratch);
      std::vector<uint32_t> expected;
      for (uint32_t r = 0; r < oracle.size(); ++r) {
        if (oracle[r]) expected.push_back(r);
      }
      ASSERT_EQ(selection, expected)
          << "iter " << iter << " partition " << pid << " predicate "
          << pred->ToString();
    }
  }
}

// --------------------------------------------------------------------------
// Expression-specialization (bytecode) oracle
// --------------------------------------------------------------------------

/// Specialization compile oracle: every random predicate that compiles to
/// bytecode must produce a selection byte-identical to the vectorized
/// interpreter on every partition — over the same two random-predicate
/// streams the interpreter oracles above use. The sweep must also hit all
/// three compiler outcomes (fully native, per-term interpreter fallback,
/// whole-shape rejection) non-vacuously, so the fallback rules are actually
/// exercised, not just never triggered.
TEST(FuzzPruneTest, SpecializedSelectionAgreesWithInterpreter) {
  int64_t compiled = 0;
  int64_t with_fallback_terms = 0;
  int64_t rejected = 0;
  auto check = [&](int iter, const Table& table, const ExprPtr& pred) {
    jit::CompileResult result = jit::CompilePredicate(pred, table.schema());
    if (result.program == nullptr) {
      ASSERT_NE(result.reason, jit::RejectReason::kNone)
          << "iter " << iter << ": rejection must carry a reason";
      ++rejected;
      return;
    }
    ++compiled;
    if (!result.program->fallback_terms.empty()) ++with_fallback_terms;
    EvalScratch scratch;  // shared with the interpreter, as the scan does
    for (size_t pid = 0; pid < table.num_partitions(); ++pid) {
      const MicroPartition& part =
          table.partition_metadata(static_cast<PartitionId>(pid));
      std::vector<uint32_t> specialized;
      ASSERT_TRUE(jit::ExecuteSelection(*result.program, part, &specialized,
                                        &scratch))
          << "iter " << iter << " partition " << pid
          << ": program refused the batch it was compiled for";
      std::vector<uint32_t> interpreted;
      ComputeSelection(*pred, part, &interpreted, &scratch);
      ASSERT_EQ(specialized, interpreted)
          << "iter " << iter << " partition " << pid << " predicate "
          << pred->ToString();
    }
  };
  for (int iter = 0; iter < 150; ++iter) {
    Rng rng(73000 + iter);  // RandomPredicate stream of the oracle above
    auto table = RandomTable(&rng, "js");
    ExprPtr pred = RandomPredicate(&rng, *table, 2);
    ASSERT_TRUE(BindExpr(pred, table->schema()).ok());
    check(iter, *table, pred);
  }
  for (int iter = 0; iter < 150; ++iter) {
    Rng rng(101000 + iter);  // RandomArithIfPredicate stream
    auto table = RandomTable(&rng, "ja");
    ExprPtr pred = RandomArithIfPredicate(&rng, *table, 3);
    ASSERT_TRUE(BindExpr(pred, table->schema()).ok());
    check(1000 + iter, *table, pred);
  }
  EXPECT_GT(compiled, 0);
  EXPECT_GT(with_fallback_terms, 0);
  EXPECT_GT(rejected, 0);
}

/// Engine-level specialization oracle: with the tier forced eager
/// (specialize_after = 0), every plan shape must return rows AND
/// deterministic PruningStats byte-identical to the interpreter-only
/// engine at every thread count — specialization must be a pure
/// performance tier, invisible to results and pruning decisions.
TEST(FuzzPruneTest, SpecializedEngineIsByteIdentical) {
  for (int iter = 0; iter < 40; ++iter) {
    Rng rng(141000 + iter);
    auto table = RandomTable(&rng, "je");
    const std::string ctx = "iter " + std::to_string(iter);
    FuzzEngine engine(table);
    ExprPtr pred = RandomPredicate(&rng, *table, 2);
    ASSERT_TRUE(BindExpr(pred, table->schema()).ok());

    const int64_t k = rng.UniformInt(1, 25);
    std::vector<PlanPtr> plans;
    plans.push_back(ScanPlan("je", pred));
    plans.push_back(
        TopKPlan(ScanPlan("je", pred), "key", rng.Bernoulli(0.5), k));
    plans.push_back(
        AggregatePlan(ScanPlan("je", pred), {"cat"},
                      {AggPlanSpec{AggFunc::kCount, "", "n"},
                       AggPlanSpec{AggFunc::kSum, "key", "key_sum"}}));

    for (size_t p = 0; p < plans.size(); ++p) {
      QueryResult interpreted = engine.RunSpecialized(plans[p], 1, false);
      for (int threads : {1, 2, 4}) {
        QueryResult specialized =
            engine.RunSpecialized(plans[p], threads, true);
        const std::string sctx = ctx + " plan " + std::to_string(p) +
                                 " threads " + std::to_string(threads);
        ASSERT_EQ(Serialize(interpreted.rows), Serialize(specialized.rows))
            << sctx << ": specialization changed the rows";
        ASSERT_EQ(
            testing_util::DiffStats(interpreted.stats, specialized.stats), "")
            << sctx << ": specialization changed PruningStats";
      }
    }
  }
}

/// Sharded specialization oracle: the coordinator compiles each filter once
/// and ships the program to every shard engine; at shards {1, 2}, with the
/// tier on and off, rows and deterministic PruningStats must stay
/// byte-identical to the serial interpreter-only run.
TEST(FuzzPruneTest, ShardedSpecializationMatchesSerialOracle) {
  for (int iter = 0; iter < 25; ++iter) {
    Rng rng(151000 + iter);
    auto table = RandomTable(&rng, "jh");
    const std::string ctx = "iter " + std::to_string(iter);
    FuzzEngine engine(table);
    ExprPtr pred = RandomPredicate(&rng, *table, 2);
    ASSERT_TRUE(BindExpr(pred, table->schema()).ok());

    const int64_t k = rng.UniformInt(1, 25);
    std::vector<PlanPtr> plans;
    plans.push_back(ScanPlan("jh", pred));
    plans.push_back(
        TopKPlan(ScanPlan("jh", pred), "key", rng.Bernoulli(0.5), k));

    for (size_t p = 0; p < plans.size(); ++p) {
      QueryResult serial = engine.RunSpecialized(plans[p], 1, false);
      for (size_t shards : {1u, 2u}) {
        for (bool specialize : {false, true}) {
          shard::ShardExecConfig config;
          config.num_shards = shards;
          config.engine.exec.specialize = specialize;
          config.engine.exec.specialize_after = 0;
          shard::ShardCoordinator coordinator(engine.catalog(), config);
          auto result = coordinator.Execute(plans[p]);
          const std::string sctx = ctx + " plan " + std::to_string(p) +
                                   " shards " + std::to_string(shards) +
                                   " specialize " +
                                   (specialize ? "on" : "off");
          ASSERT_TRUE(result.ok())
              << sctx << ": " << result.status().ToString();
          ASSERT_EQ(Serialize(serial.rows), Serialize(result.value().rows))
              << sctx << ": sharded specialization changed the rows";
          ASSERT_EQ(
              testing_util::DiffStats(serial.stats, result.value().stats), "")
              << sctx << ": sharded specialization changed PruningStats";
        }
      }
    }
  }
}

/// Columnar-vs-boxed pipeline identity: a join / top-k / sort directly over
/// a scan takes the unboxed ColumnBatch path; the same pipeline over an
/// identity projection of the scan is forced onto the boxed-row path. Rows
/// AND PruningStats must be byte-identical between the two, serially and
/// in parallel (1/2/4 threads) — and the columnar pipelines must never call
/// the Materialize() adapter.
TEST(FuzzPruneTest, ColumnarPipelinesMatchBoxedOracle) {
  auto identity = [](PlanPtr scan) {
    // SELECT id, key, val, cat, ts FROM (...): same values, same names, but
    // the ProjectOp input forces every consumer above onto boxed rows.
    std::vector<ExprPtr> exprs;
    std::vector<std::string> names;
    for (const char* c : {"id", "key", "val", "cat", "ts"}) {
      exprs.push_back(Col(c));
      names.push_back(c);
    }
    return ProjectPlan(std::move(scan), std::move(exprs), std::move(names));
  };

  for (int iter = 0; iter < 40; ++iter) {
    Rng rng(111000 + iter);
    auto probe = RandomTable(&rng, "p");
    FuzzEngine engine(probe);
    workload::TableGenConfig bcfg;
    bcfg.name = "b";
    bcfg.num_partitions = static_cast<size_t>(rng.UniformInt(1, 4));
    bcfg.rows_per_partition = static_cast<size_t>(rng.UniformInt(2, 20));
    bcfg.domain_min = rng.UniformInt(-50, 500);
    bcfg.domain_max = bcfg.domain_min + rng.UniformInt(5, 800);
    bcfg.null_fraction = 0.1;
    bcfg.seed = rng.Next();
    ASSERT_TRUE(
        engine.catalog()->RegisterTable(workload::SyntheticTable(bcfg)).ok());

    ExprPtr pred = RandomPredicate(&rng, *probe, 2);
    ASSERT_TRUE(BindExpr(pred, probe->schema()).ok());
    ExprPtr bpred = RandomPredicate(&rng, *probe, 1);
    const char* order_col = rng.Bernoulli(0.5) ? "key" : "val";
    const bool desc = rng.Bernoulli(0.5);
    const int64_t k = rng.UniformInt(1, 25);
    const JoinKind jkind = rng.Bernoulli(0.3)
                               ? (rng.Bernoulli(0.5) ? JoinKind::kProbeOuter
                                                     : JoinKind::kBuildOuter)
                               : JoinKind::kInner;

    struct Shape {
      const char* name;
      PlanPtr columnar;
      PlanPtr boxed;
    };
    const Shape shapes[] = {
        {"join",
         JoinPlan(ScanPlan("p", pred), ScanPlan("b", bpred), "key", "key",
                  jkind),
         JoinPlan(identity(ScanPlan("p", pred)),
                  identity(ScanPlan("b", bpred)), "key", "key", jkind)},
        {"topk", TopKPlan(ScanPlan("p", pred), order_col, desc, k),
         TopKPlan(identity(ScanPlan("p", pred)), order_col, desc, k)},
        {"sort", SortPlan(ScanPlan("p", pred), order_col, desc),
         SortPlan(identity(ScanPlan("p", pred)), order_col, desc)},
    };
    for (const Shape& shape : shapes) {
      const std::string ctx =
          "iter " + std::to_string(iter) + " shape " + shape.name;
      QueryResult boxed = engine.RunFull(shape.boxed, true, 1);
      // threads=1 is the serial poolless path; 2/4 run the morsel pipeline
      // WITH the operator stages (parallel join build / top-k candidate
      // filter / sorted runs, PR 5); {1, force_parallel} runs the full
      // pipeline machinery on a one-worker pool — stage scheduling with
      // serial timing, the tightest determinism check.
      struct Mode {
        int threads;
        bool force;
      };
      for (const Mode mode :
           {Mode{1, false}, Mode{2, false}, Mode{4, false}, Mode{1, true}}) {
        const int64_t materialized_before = ColumnBatch::materialize_calls();
        const int64_t stages_before = PipelineCounters::stage_tasks();
        QueryResult columnar =
            engine.RunFull(shape.columnar, true, mode.threads, mode.force);
        ASSERT_EQ(ColumnBatch::materialize_calls(), materialized_before)
            << ctx << ": columnar pipeline materialized a batch at threads="
            << mode.threads;
        ASSERT_EQ(Serialize(boxed.rows), Serialize(columnar.rows))
            << ctx << " threads=" << mode.threads << " force=" << mode.force;
        ASSERT_EQ(testing_util::DiffStats(boxed.stats, columnar.stats), "")
            << ctx << " threads=" << mode.threads << " force=" << mode.force;
        // The forced-parallel run must execute operator pipeline stages
        // whenever the (single-scan) top-k / sort shapes had any morsel to
        // process — a silently-serial fallback would hide real regressions.
        if (mode.force &&
            (std::string(shape.name) == "topk" ||
             std::string(shape.name) == "sort") &&
            columnar.stats.scanned_partitions + columnar.stats.pruned_by_topk >
                0) {
          ASSERT_GT(PipelineCounters::stage_tasks(), stages_before)
              << ctx << ": no pipeline stage ran under force_parallel";
        }
      }
    }
  }
}

/// §8.1: partitions whose zone maps were dropped (external files without
/// metadata) must never be pruned — there is no proof — and query results
/// must stay identical to unpruned execution, serially and in parallel.
TEST(FuzzPruneTest, MissingMetadataIsNeverFalselyPruned) {
  for (int iter = 0; iter < 60; ++iter) {
    Rng rng(83000 + iter);
    auto table = RandomTable(&rng, "m");
    const double fraction = 0.2 + rng.Uniform() * 0.6;
    const size_t dropped = table->DropStatsOnFraction(fraction, rng.Next());
    const std::string ctx =
        "iter " + std::to_string(iter) + " (" + std::to_string(dropped) +
        " partitions without stats)";

    ExprPtr pred = RandomPredicate(&rng, *table, 2);
    ASSERT_TRUE(BindExpr(pred, table->schema()).ok());
    std::vector<int64_t> oracle = MatchCountsPerPartition(*table, pred);

    // Pruner level: a stats-less partition can never be pruned (no proof),
    // and no matching partition may be dropped regardless of stats.
    FilterPruner pruner(pred);
    FilterPruneResult res = pruner.Prune(*table, table->FullScanSet());
    std::set<PartitionId> kept(res.scan_set.begin(), res.scan_set.end());
    for (size_t pid = 0; pid < table->num_partitions(); ++pid) {
      const auto id = static_cast<PartitionId>(pid);
      if (!table->partition_metadata(id).has_stats()) {
        ASSERT_TRUE(kept.count(id) > 0)
            << ctx << ": stats-less partition " << pid << " was pruned";
      }
      if (oracle[pid] > 0) {
        ASSERT_TRUE(kept.count(id) > 0)
            << ctx << ": matching partition " << pid << " was pruned";
      }
    }
    // Fully-matching classification still needs to be row-exact.
    for (PartitionId pid : res.fully_matching) {
      ASSERT_EQ(oracle[pid], table->partition_metadata(pid).row_count())
          << ctx;
    }

    // Engine level: pruning on == off, parallel == serial, for the shapes
    // §8.1 stresses (scan, top-k, LIMIT).
    FuzzEngine engine(table);
    auto scan = ScanPlan("m", pred);
    std::vector<Row> rows = engine.Run(scan, true, 1);
    ASSERT_EQ(Serialize(engine.Run(scan, false, 1)), Serialize(rows)) << ctx;
    ExpectParallelIdentical(&engine, scan, rows, ctx);

    int64_t k = rng.UniformInt(1, 20);
    auto topk = TopKPlan(ScanPlan("m", pred), "key", rng.Bernoulli(0.5), k);
    std::vector<Row> topk_rows = engine.Run(topk, true, 1);
    ASSERT_EQ(engine.Run(topk, false, 1).size(), topk_rows.size()) << ctx;
    ExpectParallelIdentical(&engine, topk, topk_rows, ctx);

    int64_t total_matches = 0;
    for (int64_t c : oracle) total_matches += c;
    auto limit = LimitPlan(ScanPlan("m", pred), k);
    std::vector<Row> limit_rows = engine.Run(limit, true, 1);
    ASSERT_EQ(static_cast<int64_t>(limit_rows.size()),
              std::min(k, total_matches))
        << ctx;
    ExpectParallelIdentical(&engine, limit, limit_rows, ctx);
  }
}

/// DML churn between queries: inserts, whole-partition deletes, and
/// replaces (plus occasional zone-map drops) must never desynchronize
/// pruned execution from the brute-force row oracle, serially or in
/// parallel.
TEST(FuzzPruneTest, DmlChurnKeepsOracleAgreement) {
  for (int iter = 0; iter < 25; ++iter) {
    Rng rng(91000 + iter);
    auto table = RandomTable(&rng, "d");
    FuzzEngine engine(table);

    for (int round = 0; round < 6; ++round) {
      // One DML operation between queries.
      switch (rng.UniformInt(0, 3)) {
        case 0:  // INSERT: append a fresh partition
          table->AppendPartition(RandomPartition(
              &rng, static_cast<PartitionId>(table->num_partitions())));
          break;
        case 1:  // DELETE: drop a random partition (ids compact)
          if (table->num_partitions() > 1) {
            table->DeletePartition(static_cast<PartitionId>(rng.UniformInt(
                0, static_cast<int64_t>(table->num_partitions()) - 1)));
          }
          break;
        case 2:  // UPDATE: replace a random partition's contents
          if (table->num_partitions() > 0) {
            auto pid = static_cast<PartitionId>(rng.UniformInt(
                0, static_cast<int64_t>(table->num_partitions()) - 1));
            table->ReplacePartition(pid, RandomPartition(&rng, pid));
          }
          break;
        default:  // §8.1 drift: some new files arrive without metadata
          table->DropStatsOnFraction(0.2, rng.Next());
          break;
      }

      ExprPtr pred = RandomPredicate(&rng, *table, 2);
      ASSERT_TRUE(BindExpr(pred, table->schema()).ok());
      std::vector<int64_t> oracle = MatchCountsPerPartition(*table, pred);
      int64_t total_matches = 0;
      for (int64_t c : oracle) total_matches += c;
      const std::string ctx =
          "iter " + std::to_string(iter) + " round " + std::to_string(round);

      auto scan = ScanPlan("d", pred);
      std::vector<Row> rows = engine.Run(scan, true, 1);
      ASSERT_EQ(static_cast<int64_t>(rows.size()), total_matches)
          << ctx << ": pruned scan disagrees with the row oracle after DML";
      ASSERT_EQ(Serialize(engine.Run(scan, false, 1)), Serialize(rows))
          << ctx;
      ExpectParallelIdentical(&engine, scan, rows, ctx);

      int64_t k = rng.UniformInt(1, 15);
      auto limit = LimitPlan(ScanPlan("d", pred), k);
      ASSERT_EQ(static_cast<int64_t>(engine.Run(limit, true, 1).size()),
                std::min(k, total_matches))
          << ctx;

      auto topk = TopKPlan(ScanPlan("d", pred), "key", rng.Bernoulli(0.5), k);
      std::vector<Row> topk_rows = engine.Run(topk, true, 1);
      std::vector<Row> topk_off = engine.Run(topk, false, 1);
      // Ties in the order column make several row sets equally valid; the
      // winning order values must agree (multiset equality), as in
      // EngineAgreesWithUnprunedExecution.
      ASSERT_EQ(topk_rows.size(), topk_off.size()) << ctx;
      auto order_values = [&](const std::vector<Row>& rows) {
        std::vector<std::string> v;
        for (const auto& r : rows) v.push_back(r[1].ToString());  // key
        std::sort(v.begin(), v.end());
        return v;
      };
      ASSERT_EQ(order_values(topk_rows), order_values(topk_off)) << ctx;
      ExpectParallelIdentical(&engine, topk, topk_rows, ctx);
    }
  }
}

TEST(FuzzPruneTest, JoinPruningNeverDropsMatchingProbePartitions) {
  for (int iter = 0; iter < 50; ++iter) {
    Rng rng(47000 + iter);
    auto probe = RandomTable(&rng, "probe");
    FuzzEngine engine(probe);
    // Small build side over a random slice of the probe key domain; ~15%
    // chance of an empty build (the paper's 100%-pruned join case).
    workload::TableGenConfig bcfg;
    bcfg.name = "build";
    bcfg.num_partitions = static_cast<size_t>(rng.UniformInt(1, 4));
    bcfg.rows_per_partition = static_cast<size_t>(rng.UniformInt(2, 20));
    bcfg.domain_min = rng.UniformInt(-50, 1000);
    bcfg.domain_max = bcfg.domain_min + rng.UniformInt(5, 500);
    bcfg.seed = rng.Next();
    auto build = workload::SyntheticTable(bcfg);
    ASSERT_TRUE(engine.catalog()->RegisterTable(build).ok());

    ExprPtr build_pred = rng.Bernoulli(0.15)
                             ? Lt(Col("key"), Lit(int64_t{-10000}))
                             : RandomPredicate(&rng, *build, 1);

    auto join = JoinPlan(ScanPlan("probe"),
                         ScanPlan("build", std::move(build_pred)), "key",
                         "key");
    const std::string ctx = "iter " + std::to_string(iter);
    std::vector<Row> on_rows = engine.Run(join, true, 1);
    std::vector<Row> off_rows = engine.Run(join, false, 1);
    ASSERT_EQ(Serialize(off_rows), Serialize(on_rows))
        << ctx << ": join pruning changed inner-join results";
    ExpectParallelIdentical(&engine, join, on_rows, ctx);
  }
}

// --------------------------------------------------------------------------
// Sharded scatter-gather oracle
// --------------------------------------------------------------------------

/// Sharded execution at every (shard count × shard-engine thread count)
/// must return rows and deterministic PruningStats byte-identical to a
/// serial single-engine run — with the cross-shard counters additive on
/// top — and a shard excluded by its merged zone maps must hold zero
/// matching rows (no false shard prunes), checked against the brute-force
/// row oracle per partition.
TEST(FuzzPruneTest, ShardedExecutionMatchesSerialOracle) {
  int64_t total_shards_pruned = 0;
  int64_t summary_pruned_shards = 0;
  for (int iter = 0; iter < 35; ++iter) {
    Rng rng(131000 + iter);
    auto table = RandomTable(&rng, "s");
    const std::string ctx = "iter " + std::to_string(iter);
    FuzzEngine engine(table);

    ExprPtr pred =
        rng.Bernoulli(0.1) ? nullptr : RandomPredicate(&rng, *table, 2);
    if (pred) ASSERT_TRUE(BindExpr(pred, table->schema()).ok());
    std::vector<int64_t> oracle = MatchCountsPerPartition(*table, pred);

    // A mixed bag of shapes; top-k over "key" keeps ties harmless for
    // byte-identity (row order within the pipeline is deterministic).
    const int64_t k = rng.UniformInt(1, 25);
    std::vector<PlanPtr> plans;
    plans.push_back(ScanPlan("s", pred));
    plans.push_back(TopKPlan(ScanPlan("s", pred), "key",
                             rng.Bernoulli(0.5), k));
    plans.push_back(LimitPlan(ScanPlan("s", pred), k));
    plans.push_back(SortPlan(ScanPlan("s", pred), "ts", rng.Bernoulli(0.5)));
    plans.push_back(
        AggregatePlan(ScanPlan("s", pred), {"cat"},
                      {AggPlanSpec{AggFunc::kCount, "", "n"},
                       AggPlanSpec{AggFunc::kSum, "key", "key_sum"}}));

    const shard::ShardPolicy policy = rng.Bernoulli(0.5)
                                          ? shard::ShardPolicy::kRange
                                          : shard::ShardPolicy::kHash;
    for (size_t p = 0; p < plans.size(); ++p) {
      QueryResult serial = engine.RunFull(plans[p], true, 1);
      for (size_t shards : {1u, 2u, 4u}) {
        shard::ShardMap map =
            shard::ShardMap::Build(*table, shards, policy);
        for (int threads : {1, 2, 4}) {
          shard::ShardExecConfig config;
          config.num_shards = shards;
          config.policy = policy;
          config.engine.exec.num_threads = threads;
          shard::ShardCoordinator coordinator(engine.catalog(), config);
          auto result = coordinator.Execute(plans[p]);
          ASSERT_TRUE(result.ok()) << ctx << ": " << result.status().ToString();
          const QueryResult& r = result.value();
          // Traced coordinator run: same rows, same deterministic stats —
          // tracing must be observation-only on the sharded path too.
          Trace shard_trace;
          auto traced = coordinator.Execute(plans[p], nullptr, &shard_trace);
          ASSERT_TRUE(traced.ok()) << ctx << ": "
                                   << traced.status().ToString();
          const std::string sctx = ctx + " plan " + std::to_string(p) +
                                   " shards " + std::to_string(shards) +
                                   " threads " + std::to_string(threads) +
                                   " policy " + ToString(policy);
          ASSERT_TRUE(coordinator.last_exec().sharded) << sctx;
          ASSERT_EQ(Serialize(serial.rows), Serialize(r.rows)) << sctx;
          ASSERT_EQ(testing_util::DiffStats(serial.stats, r.stats), "")
              << sctx;
          ASSERT_EQ(Serialize(r.rows), Serialize(traced.value().rows))
              << sctx << " (traced)";
          ASSERT_EQ(
              testing_util::DiffStats(r.stats, traced.value().stats), "")
              << sctx << " (traced)";
          ASSERT_EQ(r.stats.shards_pruned, traced.value().stats.shards_pruned)
              << sctx << " (traced)";

          // Shard-counter consistency against the shard map itself.
          const auto& info = coordinator.last_exec();
          ASSERT_EQ(r.stats.shards_total,
                    static_cast<int64_t>(map.assigned_shards()))
              << sctx;
          ASSERT_EQ(r.stats.shards_pruned,
                    r.stats.shards_total -
                        static_cast<int64_t>(info.shards_contacted))
              << sctx;
          ASSERT_GE(r.stats.shards_pruned, 0) << sctx;
          total_shards_pruned += r.stats.shards_pruned;

          // No false shard prunes: a summary-excluded shard must hold zero
          // matching rows in EVERY partition it owns (brute force).
          for (size_t s = 0; s < info.summary_pruned.size(); ++s) {
            if (!info.summary_pruned[s]) continue;
            ++summary_pruned_shards;
            for (PartitionId pid : map.shard_partitions(s)) {
              ASSERT_EQ(oracle[pid], 0)
                  << sctx << ": shard " << s << " was summary-pruned but its"
                  << " partition " << pid << " holds " << oracle[pid]
                  << " matching rows";
            }
          }
        }
      }
    }
  }
  // The sweep must actually exercise the cross-shard level, not just pass
  // vacuously.
  EXPECT_GT(total_shards_pruned, 0);
  EXPECT_GT(summary_pruned_shards, 0);
}

// --------------------------------------------------------------------------
// Chaos oracle: random fault injection at every site
// --------------------------------------------------------------------------

/// Under random fault injection at every failpoint site, every query must
/// either return rows AND deterministic PruningStats byte-identical to its
/// fault-free run (the retry layer absorbed the faults) or fail with a
/// clean, well-typed error — never a crash, hang, partial result, or a
/// diverging "success". Runs the engine at several thread counts and the
/// shard coordinator at several shard counts under every random arming.
TEST(FuzzPruneTest, ChaosInjectionNeverCorruptsOrHangs) {
  // Sites are process-global: guarantee a clean slate and a clean exit even
  // when an ASSERT unwinds out of the loop.
  struct DisarmGuard {
    DisarmGuard() { FailPointRegistry::Instance().DisarmAll(); }
    ~DisarmGuard() { FailPointRegistry::Instance().DisarmAll(); }
  } guard;
  const char* const sites[] = {
      "scan.partition_load",  "pool.dispatch",          "predcache.populate",
      "shard.scatter_launch", "shard.scatter_complete", "shard.gather_replay",
  };
  for (const char* site : sites) FailPointRegistry::Instance().Register(site);

  /// Arms each site independently (40% chance) with a random policy drawn
  /// from the iteration's seeded Rng — probability, every-Nth, or
  /// once-after-K — so the storm is diverse but exactly reproducible.
  auto arm_randomly = [&](Rng* rng) {
    for (const char* site : sites) {
      FailPoint* fp = FailPointRegistry::Instance().Find(site);
      if (!rng->Bernoulli(0.4)) {
        fp->Disarm();
        continue;
      }
      switch (rng->UniformInt(0, 2)) {
        case 0:
          fp->ArmProbability(0.05 + rng->Uniform() * 0.35, rng->Next());
          break;
        case 1:
          fp->ArmEveryNth(static_cast<uint64_t>(rng->UniformInt(2, 6)));
          break;
        default:
          fp->ArmOnceAfterK(static_cast<uint64_t>(rng->UniformInt(0, 3)));
          break;
      }
    }
  };

  int64_t ok_runs = 0, failed_runs = 0, absorbed_retries = 0;
  for (int iter = 0; iter < 200; ++iter) {
    Rng rng(171000 + iter);
    auto table = RandomTable(&rng, "c");
    const std::string ctx = "iter " + std::to_string(iter);
    FuzzEngine engine(table);

    ExprPtr pred =
        rng.Bernoulli(0.2) ? nullptr : RandomPredicate(&rng, *table, 2);
    if (pred) ASSERT_TRUE(BindExpr(pred, table->schema()).ok());
    PlanPtr plan;
    switch (rng.UniformInt(0, 3)) {
      case 0: plan = ScanPlan("c", pred); break;
      case 1:
        plan = TopKPlan(ScanPlan("c", pred), "key", rng.Bernoulli(0.5),
                        rng.UniformInt(1, 20));
        break;
      case 2: plan = LimitPlan(ScanPlan("c", pred), rng.UniformInt(1, 20)); break;
      default:
        plan = AggregatePlan(ScanPlan("c", pred), {"cat"},
                             {AggPlanSpec{AggFunc::kCount, "", "n"}});
        break;
    }

    // Fault-free baseline, then the same plan under a random storm.
    FailPointRegistry::Instance().DisarmAll();
    QueryResult baseline = engine.RunFull(plan, true, 1);
    const std::string base_rows = Serialize(baseline.rows);

    auto check = [&](Result<QueryResult> result, const std::string& sctx) {
      if (result.ok()) {
        ++ok_runs;
        absorbed_retries += result.value().shard_retries;
        ASSERT_EQ(base_rows, Serialize(result.value().rows))
            << sctx << ": an injected-fault run 'succeeded' with different "
            << "rows than the fault-free run";
        ASSERT_EQ(testing_util::DiffStats(baseline.stats,
                                          result.value().stats), "")
            << sctx << ": an injected-fault run diverged in PruningStats";
      } else {
        ++failed_runs;
        ASSERT_FALSE(result.status().message().empty()) << sctx;
        ASSERT_TRUE(result.status().code() == StatusCode::kUnavailable ||
                    result.status().code() == StatusCode::kResourceExhausted)
            << sctx << ": unexpected failure type "
            << result.status().ToString();
      }
    };

    arm_randomly(&rng);
    for (int threads : {1, 2, 4}) {
      EngineConfig config;
      config.exec.num_threads = threads;
      Engine chaos_engine(engine.catalog(), config);
      check(chaos_engine.Execute(plan),
            ctx + " engine threads=" + std::to_string(threads));
    }
    for (size_t shards : {2u, 4u}) {
      shard::ShardExecConfig config;
      config.num_shards = shards;
      config.engine.exec.num_threads = 2;
      config.retry.base_backoff_us = 10;  // keep 200 storms fast
      config.retry.max_backoff_us = 100;
      shard::ShardCoordinator coordinator(engine.catalog(), config);
      check(coordinator.Execute(plan),
            ctx + " shards=" + std::to_string(shards));
    }
    FailPointRegistry::Instance().DisarmAll();

    // Fault-free again after the storm: nothing latches.
    QueryResult after = engine.RunFull(plan, true, 2);
    ASSERT_EQ(base_rows, Serialize(after.rows))
        << ctx << ": results changed after the storm was disarmed";
  }
  // The sweep must exercise both outcomes — storms that are absorbed
  // (including via shard retries) and storms that surface clean errors —
  // or the oracle is vacuous.
  EXPECT_GT(ok_runs, 0);
  EXPECT_GT(failed_runs, 0);
  EXPECT_GT(absorbed_retries, 0)
      << "no successful run ever absorbed a retry — the retry layer was "
      << "never exercised";
}

// --------------------------------------------------------------------------
// Production-mix queries via workload/query_gen
// --------------------------------------------------------------------------

TEST(FuzzPruneTest, GeneratedProductionQueriesAreParallelSafe) {
  Catalog catalog;
  Rng seed_rng(555);
  for (const char* name : {"probe_a", "probe_b"}) {
    workload::TableGenConfig cfg;
    cfg.name = name;
    cfg.num_partitions = 30;
    cfg.rows_per_partition = 50;
    cfg.layout = name[6] == 'a' ? workload::Layout::kClustered
                                : workload::Layout::kRandom;
    cfg.null_fraction = 0.1;
    cfg.seed = seed_rng.Next();
    ASSERT_TRUE(catalog.RegisterTable(workload::SyntheticTable(cfg)).ok());
  }
  {
    workload::TableGenConfig cfg;
    cfg.name = "build_small";
    cfg.num_partitions = 2;
    cfg.rows_per_partition = 30;
    cfg.seed = seed_rng.Next();
    ASSERT_TRUE(catalog.RegisterTable(workload::SyntheticTable(cfg)).ok());
  }

  workload::QueryGenerator::Config gcfg;
  gcfg.seed = 8844;
  workload::QueryGenerator gen(&catalog, {"probe_a", "probe_b"},
                               {"build_small"}, workload::ProductionModel(),
                               gcfg);

  EngineConfig serial_config;
  serial_config.exec.num_threads = 1;
  Engine serial(&catalog, serial_config);
  EngineConfig parallel_config;
  parallel_config.exec.num_threads = 8;
  Engine parallel(&catalog, parallel_config);

  for (int i = 0; i < 120; ++i) {
    workload::GeneratedQuery q = gen.Generate();
    auto r1 = serial.Execute(q.plan);
    ASSERT_TRUE(r1.ok()) << r1.status().ToString();
    auto r2 = parallel.Execute(q.plan);
    ASSERT_TRUE(r2.ok()) << r2.status().ToString();
    ASSERT_EQ(Serialize(r1.value().rows), Serialize(r2.value().rows))
        << "query " << i << " (" << ToString(q.query_class)
        << ") diverged between serial and 8-thread execution";
    ASSERT_EQ(r1.value().stats.scanned_partitions,
              r2.value().stats.scanned_partitions)
        << "query " << i << " (" << ToString(q.query_class) << ")";
  }
}

}  // namespace
}  // namespace snowprune
