/// Observability layer: the metrics registry under concurrent writers,
/// trace span nesting and worker-buffer/child-trace merge determinism, and
/// the EXPLAIN ANALYZE profile's contract — per-node pruning counters that
/// reconcile exactly against the query's PruningStats, with rows and stats
/// byte-identical whether tracing is on or off.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/trace.h"
#include "exec/engine.h"
#include "exec/profile.h"
#include "expr/builder.h"
#include "service/query_service.h"
#include "shard/coordinator.h"
#include "test_util.h"

namespace snowprune {
namespace {

using shard::ShardCoordinator;
using shard::ShardExecConfig;
using testing_util::DiffStats;
using testing_util::IntTable;
using testing_util::Serialize;

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

/// Many writer threads on one counter/gauge/histogram while a reader loops
/// SnapshotJson: no races (TSan job), and exact totals once writers join.
TEST(MetricsTest, ConcurrentWritersAndSnapshots) {
  MetricsRegistry& registry = MetricsRegistry::Instance();
  Counter* counter = registry.GetCounter("test.concurrent_counter");
  Gauge* gauge = registry.GetGauge("test.concurrent_gauge");
  Histogram* histogram = registry.GetHistogram("test.concurrent_histogram",
                                               {1.0, 10.0, 100.0});
  const int64_t counter_before = counter->Value();
  const int64_t histogram_before = histogram->Count();

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 5000;
  std::atomic<bool> stop{false};
  std::thread snapshotter([&] {
    while (!stop.load(std::memory_order_acquire)) {
      std::string json = registry.SnapshotJson();
      EXPECT_NE(json.find("test.concurrent_counter"), std::string::npos);
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        counter->Add();
        gauge->Add(1);
        gauge->Add(-1);
        histogram->Record(static_cast<double>((t + i) % 200));
      }
    });
  }
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  snapshotter.join();

  EXPECT_EQ(counter->Value() - counter_before, kThreads * kOpsPerThread);
  EXPECT_EQ(gauge->Value(), 0);
  EXPECT_EQ(histogram->Count() - histogram_before, kThreads * kOpsPerThread);
  int64_t bucket_sum = 0;
  for (int64_t b : histogram->BucketCounts()) bucket_sum += b;
  EXPECT_EQ(bucket_sum, histogram->Count());
}

/// Get* with the same name returns the same instrument — call sites may
/// cache the pointer forever.
TEST(MetricsTest, RegistryReturnsStablePointers) {
  MetricsRegistry& registry = MetricsRegistry::Instance();
  EXPECT_EQ(registry.GetCounter("test.stable"),
            registry.GetCounter("test.stable"));
  EXPECT_EQ(registry.GetGauge("test.stable_gauge"),
            registry.GetGauge("test.stable_gauge"));
  EXPECT_EQ(registry.GetHistogram("test.stable_hist", {1.0, 2.0}),
            registry.GetHistogram("test.stable_hist", {1.0, 2.0}));
}

// ---------------------------------------------------------------------------
// Trace spans
// ---------------------------------------------------------------------------

/// BeginSpan/EndSpan nesting: ids are 1-based in open order, parents link
/// the tree, EndSpan stamps a duration.
TEST(TraceTest, SpanNesting) {
  Trace trace;
  const uint32_t root = trace.BeginSpan("query");
  const uint32_t child = trace.BeginSpan("compile", root);
  trace.AnnotateInt(child, "total_partitions", 8);
  trace.EndSpan(child);
  {
    ScopedSpan scoped(&trace, "execute", root);
    EXPECT_EQ(scoped.id(), 3u);
  }
  trace.EndSpan(root);

  ASSERT_EQ(trace.spans().size(), 3u);
  EXPECT_EQ(trace.spans()[0].name, "query");
  EXPECT_EQ(trace.spans()[0].parent, 0u);
  EXPECT_EQ(trace.spans()[1].name, "compile");
  EXPECT_EQ(trace.spans()[1].parent, root);
  ASSERT_EQ(trace.spans()[1].annotations.size(), 1u);
  EXPECT_EQ(trace.spans()[1].annotations[0].key, "total_partitions");
  EXPECT_EQ(trace.spans()[1].annotations[0].int_value, 8);
  EXPECT_EQ(trace.spans()[2].parent, root);
  for (const TraceSpan& span : trace.spans()) {
    EXPECT_GT(span.duration_ns, 0) << span.name;
  }
}

/// A null trace makes ScopedSpan a no-op with id 0 — the id is safe to pass
/// straight through as a parent.
TEST(TraceTest, NullTraceScopedSpanIsNoop) {
  ScopedSpan span(nullptr, "anything");
  EXPECT_EQ(span.id(), 0u);
  span.AnnotateInt("ignored", 1);
}

/// Merging worker buffers re-bases buffer-local ids (and intra-buffer
/// parent links) under the given parent, deterministically: two traces
/// merging identical buffers in the same order describe identical trees.
TEST(TraceTest, MergeBufferRebasesIdsDeterministically) {
  auto build = [] {
    auto trace = std::make_unique<Trace>();
    const uint32_t scan = trace->BeginSpan("scan");
    for (int worker = 0; worker < 3; ++worker) {
      SpanBuffer buffer;
      const uint32_t morsel = buffer.Begin("morsel");
      buffer.AnnotateInt(morsel, "partition", worker);
      const uint32_t inner = buffer.Begin("load", morsel);
      buffer.End(inner);
      buffer.End(morsel);
      trace->MergeBuffer(&buffer, scan);
    }
    trace->EndSpan(scan);
    return trace;
  };
  auto a = build();
  auto b = build();
  ASSERT_EQ(a->spans().size(), 7u);  // scan + 3 × (morsel, load)
  ASSERT_EQ(a->spans().size(), b->spans().size());
  for (size_t i = 0; i < a->spans().size(); ++i) {
    const TraceSpan& sa = a->spans()[i];
    const TraceSpan& sb = b->spans()[i];
    EXPECT_EQ(sa.id, sb.id);
    EXPECT_EQ(sa.parent, sb.parent);
    EXPECT_EQ(sa.name, sb.name);
  }
  // The merged morsel spans hang under "scan"; their "load" children hang
  // under the re-based morsel ids, not the buffer-local ones.
  const uint32_t scan_id = a->spans()[0].id;
  for (size_t i = 1; i < a->spans().size(); i += 2) {
    EXPECT_EQ(a->spans()[i].name, "morsel");
    EXPECT_EQ(a->spans()[i].parent, scan_id);
    EXPECT_EQ(a->spans()[i + 1].name, "load");
    EXPECT_EQ(a->spans()[i + 1].parent, a->spans()[i].id);
  }
}

/// MergeChildTrace splices a shard sub-query's whole trace under a parent
/// span and folds its stage/barrier counters into the parent's.
TEST(TraceTest, MergeChildTraceFoldsCounters) {
  Trace parent;
  const uint32_t scatter = parent.BeginSpan("scatter");
  Trace child;
  const uint32_t sub = child.BeginSpan("query");
  child.EndSpan(sub);
  child.IncStageTasks();
  child.IncStageTasks();
  child.IncBarrierTasks(3);
  parent.MergeChildTrace(&child, scatter);
  parent.EndSpan(scatter);

  ASSERT_EQ(parent.spans().size(), 2u);
  EXPECT_EQ(parent.spans()[1].name, "query");
  EXPECT_EQ(parent.spans()[1].parent, scatter);
  EXPECT_EQ(parent.stage_tasks(), 2);
  EXPECT_EQ(parent.barrier_tasks(), 3);
  EXPECT_FALSE(parent.ToText().empty());
  EXPECT_NE(parent.ToJson().find("\"scatter\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// EXPLAIN ANALYZE profile vs PruningStats
// ---------------------------------------------------------------------------

/// A clustered table where filter and top-k pruning both fire.
std::shared_ptr<Table> RangedTable(const std::string& name,
                                   size_t partitions = 8,
                                   size_t rows_per_partition = 10) {
  std::vector<std::vector<int64_t>> parts;
  int64_t v = 0;
  for (size_t p = 0; p < partitions; ++p) {
    std::vector<int64_t> rows;
    for (size_t r = 0; r < rows_per_partition; ++r) rows.push_back(v++);
    parts.push_back(std::move(rows));
  }
  return IntTable(name, "key", parts);
}

Result<QueryResult> RunTraced(Catalog* catalog, const PlanPtr& plan,
                              Trace* trace, int num_threads = 1) {
  EngineConfig config;
  config.exec.num_threads = num_threads;
  Engine engine(catalog, config);
  ExecuteOptions opts;
  opts.trace = trace;
  return engine.Execute(plan, opts);
}

/// The profile's per-node pruning counters sum to the query's PruningStats
/// exactly, for plans covering every engine pruning level.
TEST(ProfileTest, SumPruningReconcilesWithQueryStats) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterTable(RangedTable("t", 8, 10)).ok());
  ASSERT_TRUE(
      catalog.RegisterTable(IntTable("build", "key", {{5, 6, 7}})).ok());
  const std::vector<PlanPtr> plans = {
      ScanPlan("t", Between(Col("key"), Value(int64_t{12}), Value(int64_t{25}))),
      LimitPlan(ScanPlan("t"), 5),
      TopKPlan(ScanPlan("t", Gt(Col("key"), Lit(int64_t{30}))), "key",
               /*descending=*/true, 3),
      SortPlan(ScanPlan("t", Lt(Col("key"), Lit(int64_t{20}))), "key",
               /*descending=*/false),
      JoinPlan(ScanPlan("t"), ScanPlan("build"), "key", "key"),
      AggregatePlan(ScanPlan("t"), {},
                    {AggPlanSpec{AggFunc::kCount, "", "n"}}),
  };
  for (const PlanPtr& plan : plans) {
    Trace trace;
    auto result = RunTraced(&catalog, plan, &trace);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    const QueryResult& r = result.value();
    ASSERT_NE(r.profile, nullptr);
    ASSERT_NE(r.profile->root, nullptr);
    const PruningStats sum = r.profile->SumPruning();
    EXPECT_EQ(DiffStats(sum, r.stats), "");
    EXPECT_EQ(sum.speculative_loads, r.stats.speculative_loads);
    // The root node's row count is the query's result cardinality.
    EXPECT_EQ(r.profile->root->rows_out,
              static_cast<int64_t>(r.rows.size()));
    EXPECT_FALSE(r.profile->ToText().empty());
    EXPECT_NE(r.profile->ToJson().find("\"plan\""), std::string::npos);
  }
}

/// Tracing must be observation only: rows and deterministic PruningStats
/// byte-identical with tracing on vs off, at every thread count.
TEST(ProfileTest, TracedRunIsByteIdenticalToUntraced) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterTable(RangedTable("t", 12, 16)).ok());
  const std::vector<PlanPtr> plans = {
      TopKPlan(ScanPlan("t", Gt(Col("key"), Lit(int64_t{40}))), "key",
               /*descending=*/true, 7),
      SortPlan(ScanPlan("t", Between(Col("key"), Value(int64_t{10}),
                                     Value(int64_t{120}))),
               "key", /*descending=*/false),
      LimitPlan(ScanPlan("t"), 33),
  };
  for (const PlanPtr& plan : plans) {
    for (int threads : {1, 2, 4}) {
      auto untraced = RunTraced(&catalog, plan, nullptr, threads);
      ASSERT_TRUE(untraced.ok());
      EXPECT_EQ(untraced.value().profile, nullptr);
      Trace trace;
      auto traced = RunTraced(&catalog, plan, &trace, threads);
      ASSERT_TRUE(traced.ok());
      EXPECT_EQ(Serialize(traced.value()), Serialize(untraced.value()));
      EXPECT_EQ(DiffStats(traced.value().stats, untraced.value().stats), "");
      EXPECT_FALSE(trace.spans().empty());
    }
  }
}

/// Sharded top-k through the coordinator: the Gather node carries every
/// pruning level including the cross-shard one, and the tree sum still
/// reconciles exactly — shards_total/shards_pruned included.
TEST(ProfileTest, ShardedTopKProfileReconciles) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterTable(RangedTable("t", 8, 10)).ok());
  auto plan = TopKPlan(
      ScanPlan("t", Between(Col("key"), Value(int64_t{20}), Value(int64_t{55}))),
      "key", /*descending=*/true, 4);

  ShardExecConfig config;
  config.num_shards = 4;
  ShardCoordinator coordinator(&catalog, config);
  Trace trace;
  auto result = coordinator.Execute(plan, nullptr, &trace);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const QueryResult& r = result.value();
  EXPECT_GT(r.stats.shards_total, 0);
  ASSERT_NE(r.profile, nullptr);

  const PruningStats sum = r.profile->SumPruning();
  EXPECT_EQ(DiffStats(sum, r.stats), "");
  EXPECT_EQ(sum.speculative_loads, r.stats.speculative_loads);
  EXPECT_EQ(sum.shards_total, r.stats.shards_total);
  EXPECT_EQ(sum.shards_pruned, r.stats.shards_pruned);

  const std::string text = r.profile->ToText();
  EXPECT_NE(text.find("TopK"), std::string::npos);
  EXPECT_NE(text.find("Gather"), std::string::npos);
  EXPECT_NE(text.find("shards"), std::string::npos);
  // The trace shows the coordinator phases with the shard sub-queries
  // stitched under the scatter span.
  bool saw_scatter = false;
  bool saw_gather = false;
  for (const TraceSpan& span : trace.spans()) {
    saw_scatter |= span.name == "scatter";
    saw_gather |= span.name == "gather";
  }
  EXPECT_TRUE(saw_scatter);
  EXPECT_TRUE(saw_gather);

  // And the traced coordinator run matches an untraced one byte for byte.
  auto untraced = coordinator.Execute(plan);
  ASSERT_TRUE(untraced.ok());
  EXPECT_EQ(Serialize(r), Serialize(untraced.value()));
  EXPECT_EQ(DiffStats(r.stats, untraced.value().stats), "");
}

// ---------------------------------------------------------------------------
// Service-side sampling
// ---------------------------------------------------------------------------

/// trace_every=2 samples queries 1, 3, 5, ... (the first submitted query is
/// sampled); sampled handles expose a trace and a profile, unsampled ones
/// expose neither.
TEST(ServiceTraceTest, TraceSamplingFollowsConfig) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterTable(RangedTable("t", 8, 10)).ok());
  service::QueryServiceConfig config;
  config.num_threads = 2;
  config.max_in_flight = 1;  // one driver: completion order == submit order
  config.trace_every = 2;
  service::QueryService service(&catalog, config);

  std::vector<service::QueryService::Handle> handles;
  for (int i = 0; i < 4; ++i) {
    auto submitted = service.Submit(
        TopKPlan(ScanPlan("t", Gt(Col("key"), Lit(int64_t{30}))), "key",
                 /*descending=*/true, 3));
    ASSERT_TRUE(submitted.ok());
    handles.push_back(submitted.value());
  }
  for (size_t i = 0; i < handles.size(); ++i) {
    auto result = handles[i].Await();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    const bool sampled = i % 2 == 0;
    EXPECT_EQ(handles[i].trace() != nullptr, sampled) << "query " << i;
    EXPECT_EQ(handles[i].profile() != nullptr, sampled) << "query " << i;
    if (sampled) {
      EXPECT_FALSE(handles[i].trace()->spans().empty());
      const PruningStats sum = handles[i].profile()->SumPruning();
      EXPECT_EQ(DiffStats(sum, result.value().stats), "");
    }
  }
}

}  // namespace
}  // namespace snowprune
