#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "exec/engine.h"
#include "exec/parallel/parallel_scan.h"
#include "exec/parallel/thread_pool.h"
#include "expr/builder.h"
#include "test_util.h"
#include "workload/table_gen.h"

namespace snowprune {
namespace {

using testing_util::DiffStats;
using testing_util::MakeTable;
using testing_util::Serialize;

// --------------------------------------------------------------------------
// ThreadPool
// --------------------------------------------------------------------------

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::atomic<int> done{0};
  constexpr int kTasks = 200;
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&] {
      counter.fetch_add(1);
      done.fetch_add(1);
    });
  }
  while (done.load() < kTasks) std::this_thread::yield();
  EXPECT_EQ(counter.load(), kTasks);
}

TEST(ThreadPoolTest, TasksMaySubmitTasks) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  pool.Submit([&] {
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&] { done.fetch_add(1); });
    }
    done.fetch_add(1);
  });
  while (done.load() < 11) std::this_thread::yield();
  EXPECT_EQ(done.load(), 11);
}

TEST(ThreadPoolTest, DestructorDrainsCleanly) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 50; ++i) pool.Submit([&] { ran.fetch_add(1); });
  }  // must not hang or crash; queued tasks may or may not have run
  SUCCEED();
}

TEST(ThreadPoolTest, DefaultConcurrencyIsAtLeastOne) {
  EXPECT_GE(ThreadPool::DefaultConcurrency(), 1u);
}

// --------------------------------------------------------------------------
// ParallelScanScheduler
// --------------------------------------------------------------------------

/// A morsel function that tags each result with its index (via the
/// scanned_rows stat, since ColumnBatch payloads need a real partition);
/// odd indexes are "pruned" (loaded = false).
MorselResult IndexMorsel(size_t index) {
  MorselResult r;
  r.items.resize(1);
  MorselItem& item = r.items[0];
  item.loaded = (index % 2 == 0);
  if (item.loaded) {
    item.stats.scanned_partitions = 1;
    item.stats.scanned_rows = static_cast<int64_t>(index);
  } else {
    item.stats.pruned_by_filter = 1;
  }
  return r;
}

TEST(ParallelScanSchedulerTest, DeliversAllMorselsInOrder) {
  ThreadPool pool(4);
  for (size_t window : {size_t{1}, size_t{3}, size_t{64}}) {
    ParallelScanScheduler sched(&pool, 37, IndexMorsel, window);
    MorselResult morsel;
    int64_t expected = 0;
    PruningStats stats;
    while (sched.Next(&morsel)) {
      ASSERT_EQ(morsel.items.size(), 1u);
      stats.Merge(morsel.items[0].stats);
      if (morsel.items[0].loaded) {
        EXPECT_EQ(morsel.items[0].stats.scanned_rows, expected);
      }
      ++expected;
    }
    EXPECT_EQ(expected, 37);
    EXPECT_EQ(stats.scanned_partitions, 19);  // even indexes 0..36
    EXPECT_EQ(stats.pruned_by_filter, 18);
    EXPECT_FALSE(sched.Next(&morsel));  // exhausted stays exhausted
  }
}

TEST(ParallelScanSchedulerTest, EmptyScanSet) {
  ThreadPool pool(2);
  ParallelScanScheduler sched(&pool, 0, IndexMorsel, 8);
  MorselResult morsel;
  EXPECT_FALSE(sched.Next(&morsel));
}

TEST(ParallelScanSchedulerTest, AbandonedMidwayCancelsCleanly) {
  ThreadPool pool(4);
  std::atomic<int> processed{0};
  {
    ParallelScanScheduler sched(
        &pool, 1000,
        [&](size_t index) {
          processed.fetch_add(1);
          return IndexMorsel(index);
        },
        8);
    MorselResult morsel;
    for (int i = 0; i < 5; ++i) ASSERT_TRUE(sched.Next(&morsel));
  }  // destructor cancels the remaining ~995 morsels
  EXPECT_LT(processed.load(), 1000);
}

// --------------------------------------------------------------------------
// Engine-level serial/parallel equivalence
// --------------------------------------------------------------------------

/// Row serialization and deterministic-stats comparison live in
/// tests/test_util.h (shared with the service concurrency suite).
void ExpectSameStats(const PruningStats& a, const PruningStats& b) {
  EXPECT_EQ(DiffStats(a, b), "");
}

class ParallelEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::TableGenConfig cfg;
    cfg.name = "fact";
    cfg.num_partitions = 40;
    cfg.rows_per_partition = 120;
    cfg.layout = workload::Layout::kClustered;
    cfg.overlap = 0.02;
    cfg.null_fraction = 0.1;
    cfg.num_categories = 12;
    cfg.seed = 77;
    ASSERT_TRUE(catalog_.RegisterTable(workload::SyntheticTable(cfg)).ok());

    Schema dim_schema({Field{"dkey", DataType::kInt64, false},
                       Field{"dname", DataType::kString, false}});
    std::vector<std::vector<Value>> rows;
    for (int i = 0; i < 30; ++i) {
      rows.push_back(
          {Value(int64_t{i * 40000}), Value("d" + std::to_string(i))});
    }
    ASSERT_TRUE(catalog_.RegisterTable(MakeTable("dim", dim_schema, rows, 8))
                    .ok());
  }

  QueryResult Run(const PlanPtr& plan, int num_threads,
                  EngineConfig config = EngineConfig()) {
    config.exec.num_threads = num_threads;
    Engine engine(&catalog_, config);
    auto result = engine.Execute(plan);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(result).value();
  }

  /// Runs `plan` serially and with 2 and 8 workers (plus a 1-morsel window,
  /// the tightest scheduling) and requires byte-identical rows and identical
  /// deterministic stats.
  void ExpectParallelMatchesSerial(const PlanPtr& plan,
                                   EngineConfig config = EngineConfig()) {
    QueryResult serial = Run(plan, 1, config);
    EXPECT_EQ(serial.stats.speculative_loads, 0);
    for (int threads : {2, 8}) {
      QueryResult parallel = Run(plan, threads, config);
      EXPECT_EQ(Serialize(serial), Serialize(parallel))
          << "rows diverged at num_threads=" << threads;
      ExpectSameStats(serial.stats, parallel.stats);
    }
    EngineConfig tight = config;
    tight.exec.morsel_window = 1;
    QueryResult windowed = Run(plan, 4, tight);
    EXPECT_EQ(Serialize(serial), Serialize(windowed));
    ExpectSameStats(serial.stats, windowed.stats);
  }

  Catalog catalog_;
};

TEST_F(ParallelEquivalenceTest, FullScan) {
  ExpectParallelMatchesSerial(ScanPlan("fact"));
}

TEST_F(ParallelEquivalenceTest, FilteredScanCompileTime) {
  ExpectParallelMatchesSerial(ScanPlan(
      "fact", Between(Col("key"), Value(int64_t{100000}),
                      Value(int64_t{400000}))));
}

TEST_F(ParallelEquivalenceTest, FilteredScanRuntimePhase) {
  EngineConfig config;
  config.filter_pruning_phase = FilterPruningPhase::kRuntime;
  ExpectParallelMatchesSerial(
      ScanPlan("fact", Gt(Col("key"), Lit(int64_t{800000}))), config);
}

TEST_F(ParallelEquivalenceTest, ComplexPredicate) {
  ExpectParallelMatchesSerial(ScanPlan(
      "fact",
      And({Or({Lt(Col("key"), Lit(int64_t{200000})),
               Gt(Add(Col("key"), Col("id")), Lit(int64_t{900000}))}),
           Not(IsNull(Col("val"))), StartsWith(Col("cat"), "c0")})));
}

TEST_F(ParallelEquivalenceTest, TopKDescending) {
  ExpectParallelMatchesSerial(
      TopKPlan(ScanPlan("fact"), "key", /*descending=*/true, 25));
}

TEST_F(ParallelEquivalenceTest, TopKAscendingWithPredicate) {
  ExpectParallelMatchesSerial(
      TopKPlan(ScanPlan("fact", Gt(Col("val"), Lit(0.25))), "key",
               /*descending=*/false, 10));
}

TEST_F(ParallelEquivalenceTest, Limit) {
  ExpectParallelMatchesSerial(
      LimitPlan(ScanPlan("fact", Lt(Col("key"), Lit(int64_t{500000}))), 40));
}

TEST_F(ParallelEquivalenceTest, JoinWithPruning) {
  ExpectParallelMatchesSerial(
      JoinPlan(ScanPlan("fact"),
               ScanPlan("dim", Lt(Col("dkey"), Lit(int64_t{200000}))), "key",
               "dkey"));
}

TEST_F(ParallelEquivalenceTest, AggregateExactPreAgg) {
  // COUNT/SUM/MIN/MAX/AVG over int64 inputs: the parallel pre-aggregation
  // path must engage and still match serial bit-for-bit.
  ExpectParallelMatchesSerial(AggregatePlan(
      ScanPlan("fact"), {"cat"},
      {AggPlanSpec{AggFunc::kCount, "", "n"},
       AggPlanSpec{AggFunc::kSum, "key", "key_sum"},
       AggPlanSpec{AggFunc::kAvg, "id", "id_avg"},
       AggPlanSpec{AggFunc::kMin, "ts", "ts_min"},
       AggPlanSpec{AggFunc::kMax, "key", "key_max"}}));
}

TEST_F(ParallelEquivalenceTest, AggregateFloatFallsBackToSerialConsumption) {
  // SUM over a float column is not exactly mergeable; the operator must
  // fall back to consuming ordered row batches (still parallel loads).
  ExpectParallelMatchesSerial(AggregatePlan(
      ScanPlan("fact", Gt(Col("key"), Lit(int64_t{250000}))), {"cat"},
      {AggPlanSpec{AggFunc::kSum, "val", "val_sum"},
       AggPlanSpec{AggFunc::kCount, "", "n"}}));
}

TEST_F(ParallelEquivalenceTest, GroupLimitTopK) {
  // Figure 7d shape: GROUP BY key ORDER BY key LIMIT k.
  ExpectParallelMatchesSerial(
      TopKPlan(AggregatePlan(ScanPlan("fact"), {"key"},
                             {AggPlanSpec{AggFunc::kCount, "", "n"}}),
               "key", /*descending=*/true, 12));
}

TEST_F(ParallelEquivalenceTest, ScanSetSmallerThanPoolAndWindow) {
  // 40-partition table, 8 threads, giant window: degenerate sizing must
  // neither deadlock nor duplicate work. Also a single-partition slice.
  EngineConfig config;
  config.exec.morsel_window = 4096;
  ExpectParallelMatchesSerial(ScanPlan("fact"), config);
  ExpectParallelMatchesSerial(
      ScanPlan("fact", Eq(Col("id"), Lit(int64_t{5}))), config);
}

TEST_F(ParallelEquivalenceTest, SpeculativeLoadsStaySerialEquivalent) {
  // With a deliberately topk-hostile setup (no boundary init, arrival
  // order) parallel workers race ahead; the consumer-side re-check must
  // keep rows and stats serial-identical, surfacing only speculation.
  EngineConfig config;
  config.topk_order_strategy = OrderStrategy::kNone;
  config.topk_boundary_init = BoundaryInitMode::kNone;
  auto plan = TopKPlan(ScanPlan("fact"), "key", true, 5);
  QueryResult serial = Run(plan, 1, config);
  QueryResult parallel = Run(plan, 8, config);
  EXPECT_EQ(Serialize(serial), Serialize(parallel));
  ExpectSameStats(serial.stats, parallel.stats);
  EXPECT_GE(parallel.stats.speculative_loads, 0);
}

TEST_F(ParallelEquivalenceTest, SpeculativeLoadsAccountExactlyForWastedLoads) {
  // The accounting audit: under the columnar path, every partition load the
  // table meters must be either a delivered scan (scanned_partitions) or a
  // re-check drop (speculative_loads) — never both, never neither — and
  // every partition of a single-scan top-k query must end up scanned or
  // pruned. Checked across thread counts, windows, and morsel budgets,
  // with the topk-hostile config that maximizes speculation.
  auto table = catalog_.GetTable("fact");
  ASSERT_NE(table, nullptr);
  auto plan = TopKPlan(ScanPlan("fact"), "key", true, 5);
  for (bool hostile : {false, true}) {
    EngineConfig config;
    if (hostile) {
      config.topk_order_strategy = OrderStrategy::kNone;
      config.topk_boundary_init = BoundaryInitMode::kNone;
    }
    table->ResetMeters();
    QueryResult serial = Run(plan, 1, config);
    EXPECT_EQ(serial.stats.speculative_loads, 0);
    EXPECT_EQ(table->load_count(), serial.stats.scanned_partitions);

    for (size_t morsel_min_rows : {size_t{0}, size_t{250}, size_t{100000}}) {
      for (int threads : {2, 8}) {
        EngineConfig pconfig = config;
        pconfig.exec.morsel_min_rows = morsel_min_rows;
        table->ResetMeters();
        QueryResult parallel = Run(plan, threads, pconfig);
        ExpectSameStats(serial.stats, parallel.stats);
        EXPECT_EQ(table->load_count(), parallel.stats.scanned_partitions +
                                           parallel.stats.speculative_loads)
            << "threads=" << threads << " morsel_min_rows=" << morsel_min_rows
            << " hostile=" << hostile;
        EXPECT_EQ(parallel.stats.scanned_partitions +
                      parallel.stats.TotalPruned(),
                  parallel.stats.total_partitions);
      }
    }
  }
  table->ResetMeters();
}

TEST_F(ParallelEquivalenceTest, MorselBatchingMatchesSerialAtEveryBudget) {
  // Small partitions batched into multi-partition morsels must not change
  // results or stats for any budget (0 = one partition per morsel; huge =
  // the whole scan set in one morsel).
  auto scan = ScanPlan(
      "fact", Between(Col("key"), Value(int64_t{50000}),
                      Value(int64_t{700000})));
  auto agg = AggregatePlan(ScanPlan("fact"), {"cat"},
                           {AggPlanSpec{AggFunc::kCount, "", "n"},
                            AggPlanSpec{AggFunc::kSum, "key", "key_sum"}});
  for (const auto& plan : {scan, agg}) {
    QueryResult serial = Run(plan, 1);
    for (size_t budget : {size_t{0}, size_t{100}, size_t{500},
                          size_t{1000000}}) {
      EngineConfig config;
      config.exec.morsel_min_rows = budget;
      QueryResult parallel = Run(plan, 4, config);
      EXPECT_EQ(Serialize(serial), Serialize(parallel))
          << "morsel_min_rows=" << budget;
      ExpectSameStats(serial.stats, parallel.stats);
    }
  }
}

TEST_F(ParallelEquivalenceTest, ForceParallelSingleWorkerMatchesSerial) {
  // force_parallel runs the whole morsel machinery on a one-worker pool —
  // the configuration bench_headline uses to meter pure parallel-path
  // overhead. Must be byte-identical to the poolless serial path.
  for (const auto& plan :
       {ScanPlan("fact"),
        AggregatePlan(ScanPlan("fact"), {"cat"},
                      {AggPlanSpec{AggFunc::kCount, "", "n"},
                       AggPlanSpec{AggFunc::kMax, "key", "key_max"}}),
        TopKPlan(ScanPlan("fact"), "key", true, 10)}) {
    QueryResult serial = Run(plan, 1);
    EngineConfig config;
    config.exec.force_parallel = true;
    QueryResult forced = Run(plan, 1, config);
    EXPECT_EQ(Serialize(serial), Serialize(forced));
    ExpectSameStats(serial.stats, forced.stats);
  }
}

}  // namespace
}  // namespace snowprune
