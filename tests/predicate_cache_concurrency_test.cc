#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/predicate_cache.h"
#include "test_util.h"

namespace snowprune {
namespace {

using testing_util::IntTable;

std::shared_ptr<Table> CacheTable(const std::string& name, int partitions) {
  std::vector<std::vector<int64_t>> parts;
  for (int p = 0; p < partitions; ++p) {
    parts.push_back({p * 10 + 1, p * 10 + 5, p * 10 + 9});
  }
  return IntTable(name, "key", parts);
}

/// N threads hammering distinct and shared fingerprints: every lookup must
/// be counted exactly once in hits+misses (no torn counters) and every hit
/// must return a sane scan set.
TEST(PredicateCacheConcurrencyTest, CountersConsistentUnderContention) {
  PredicateCache cache(/*capacity=*/1024);
  auto table = CacheTable("t", 16);
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  constexpr int kFingerprints = 32;

  std::atomic<int64_t> observed_hits{0};
  std::atomic<int64_t> observed_misses{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        std::string fp = "q" + std::to_string((t + i) % kFingerprints);
        auto cached = cache.Lookup(fp, *table);
        if (cached.has_value()) {
          observed_hits.fetch_add(1);
          // Entries only ever contain partitions of this 16-partition
          // table (the table is never mutated, so no lookup-time appends).
          for (PartitionId pid : *cached) {
            ASSERT_LT(pid, static_cast<PartitionId>(16));
          }
        } else {
          observed_misses.fetch_add(1);
          cache.Insert(fp, *table, "key",
                       {static_cast<PartitionId>(i % 16),
                        static_cast<PartitionId>((i + 7) % 16)});
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(cache.hits() + cache.misses(), int64_t{kThreads} * kIters);
  EXPECT_EQ(cache.hits(), observed_hits.load());
  EXPECT_EQ(cache.misses(), observed_misses.load());
  EXPECT_LE(cache.size(), size_t{kFingerprints});
  // The allowed race window: several threads may miss the same fingerprint
  // before the first Insert lands. Once it has landed every later lookup
  // hits, so with 32 fingerprints and 16000 lookups hits must dominate.
  EXPECT_GT(cache.hits(), cache.misses());
}

/// Lookups racing DML invalidation: OnUpdate/OnDelete rewrite the entry map
/// while readers iterate it. Correctness here is "no crash, no torn entry,
/// counters add up" — the cache may legitimately answer hit or miss on
/// either side of the invalidation.
TEST(PredicateCacheConcurrencyTest, LookupsRaceInvalidation) {
  PredicateCache cache(/*capacity=*/256);
  auto table = CacheTable("t", 16);
  auto other = CacheTable("other", 16);
  constexpr int kThreads = 6;
  constexpr int kIters = 1500;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads - 1; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        std::string fp = "q" + std::to_string((t * 31 + i) % 24);
        if (!cache.Lookup(fp, *table).has_value()) {
          cache.Insert(fp, *table, (i % 2 == 0) ? "key" : "other_col",
                       {static_cast<PartitionId>(i % 16)});
        }
      }
    });
  }
  threads.emplace_back([&] {
    for (int i = 0; i < kIters; ++i) {
      switch (i % 3) {
        case 0: cache.OnUpdate(*table, "key"); break;
        case 1: cache.OnDelete(*table, static_cast<PartitionId>(i % 16)); break;
        default: cache.OnUpdate(*other, "key"); break;
      }
    }
  });
  for (auto& th : threads) th.join();

  EXPECT_EQ(cache.hits() + cache.misses(), int64_t{kThreads - 1} * kIters);
}

/// Single-threaded sanity: after one Insert, repeats hit; eviction respects
/// capacity FIFO; size() never exceeds capacity under churn.
TEST(PredicateCacheConcurrencyTest, CapacityRespectedUnderChurn) {
  PredicateCache cache(/*capacity=*/8);
  auto table = CacheTable("t", 4);
  for (int i = 0; i < 100; ++i) {
    cache.Insert("q" + std::to_string(i), *table, "key", {0, 1});
    EXPECT_LE(cache.size(), size_t{8});
  }
  EXPECT_EQ(cache.size(), size_t{8});
  EXPECT_FALSE(cache.Lookup("q0", *table).has_value());
  EXPECT_TRUE(cache.Lookup("q99", *table).has_value());
}

}  // namespace
}  // namespace snowprune
