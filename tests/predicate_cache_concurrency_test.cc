#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/predicate_cache.h"
#include "exec/engine.h"
#include "expr/builder.h"
#include "test_util.h"
#include "workload/table_gen.h"

namespace snowprune {
namespace {

using testing_util::IntTable;

std::shared_ptr<Table> CacheTable(const std::string& name, int partitions) {
  std::vector<std::vector<int64_t>> parts;
  for (int p = 0; p < partitions; ++p) {
    parts.push_back({p * 10 + 1, p * 10 + 5, p * 10 + 9});
  }
  return IntTable(name, "key", parts);
}

/// N threads hammering distinct and shared fingerprints: every lookup must
/// be counted exactly once in hits+misses (no torn counters) and every hit
/// must return a sane scan set.
TEST(PredicateCacheConcurrencyTest, CountersConsistentUnderContention) {
  PredicateCache cache(/*capacity=*/1024);
  auto table = CacheTable("t", 16);
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  constexpr int kFingerprints = 32;

  std::atomic<int64_t> observed_hits{0};
  std::atomic<int64_t> observed_misses{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        std::string fp = "q" + std::to_string((t + i) % kFingerprints);
        auto cached = cache.Lookup(fp, *table);
        if (cached.has_value()) {
          observed_hits.fetch_add(1);
          // Entries only ever contain partitions of this 16-partition
          // table (the table is never mutated, so no lookup-time appends).
          for (PartitionId pid : *cached) {
            ASSERT_LT(pid, static_cast<PartitionId>(16));
          }
        } else {
          observed_misses.fetch_add(1);
          cache.Insert(fp, *table, "key",
                       {static_cast<PartitionId>(i % 16),
                        static_cast<PartitionId>((i + 7) % 16)});
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(cache.hits() + cache.misses(), int64_t{kThreads} * kIters);
  EXPECT_EQ(cache.hits(), observed_hits.load());
  EXPECT_EQ(cache.misses(), observed_misses.load());
  EXPECT_LE(cache.size(), size_t{kFingerprints});
  // The allowed race window: several threads may miss the same fingerprint
  // before the first Insert lands. Once it has landed every later lookup
  // hits, so with 32 fingerprints and 16000 lookups hits must dominate.
  EXPECT_GT(cache.hits(), cache.misses());
}

/// Lookups racing DML invalidation: OnUpdate/OnDelete rewrite the entry map
/// while readers iterate it. Correctness here is "no crash, no torn entry,
/// counters add up" — the cache may legitimately answer hit or miss on
/// either side of the invalidation.
TEST(PredicateCacheConcurrencyTest, LookupsRaceInvalidation) {
  PredicateCache cache(/*capacity=*/256);
  auto table = CacheTable("t", 16);
  auto other = CacheTable("other", 16);
  constexpr int kThreads = 6;
  constexpr int kIters = 1500;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads - 1; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        std::string fp = "q" + std::to_string((t * 31 + i) % 24);
        if (!cache.Lookup(fp, *table).has_value()) {
          cache.Insert(fp, *table, (i % 2 == 0) ? "key" : "other_col",
                       {static_cast<PartitionId>(i % 16)});
        }
      }
    });
  }
  threads.emplace_back([&] {
    for (int i = 0; i < kIters; ++i) {
      switch (i % 3) {
        case 0: cache.OnUpdate(*table, "key"); break;
        case 1: cache.OnDelete(*table, static_cast<PartitionId>(i % 16)); break;
        default: cache.OnUpdate(*other, "key"); break;
      }
    }
  });
  for (auto& th : threads) th.join();

  EXPECT_EQ(cache.hits() + cache.misses(), int64_t{kThreads - 1} * kIters);
}

// --------------------------------------------------------------------------
// Request coalescing (LookupOrPopulate)
// --------------------------------------------------------------------------

/// Concurrent identical queries must trigger exactly ONE population: the
/// first thread owns the computation, every other thread blocks and then
/// hits the freshly published entry.
TEST(PredicateCacheConcurrencyTest, CoalescingYieldsSinglePopulation) {
  PredicateCache cache(/*capacity=*/64);
  auto table = CacheTable("t", 16);
  constexpr int kWaiters = 6;

  // The owner (this thread) acquires the population ticket first.
  PredicateCache::PopulateTicket ticket;
  auto first = cache.LookupOrPopulate("fp", *table, &ticket);
  ASSERT_FALSE(first.has_value());
  ASSERT_TRUE(ticket.owns());

  std::atomic<int> populations{0};
  std::atomic<int> hits_seen{0};
  std::vector<std::thread> threads;
  threads.reserve(kWaiters);
  for (int t = 0; t < kWaiters; ++t) {
    threads.emplace_back([&] {
      PredicateCache::PopulateTicket mine;
      auto cached = cache.LookupOrPopulate("fp", *table, &mine);
      if (mine.owns()) {
        populations.fetch_add(1);
        cache.Insert("fp", *table, "key", {1, 2});
      } else {
        ASSERT_TRUE(cached.has_value());
        hits_seen.fetch_add(1);
      }
    });
  }
  // Let the waiters pile up on the in-flight population, then publish.
  while (cache.coalesced_waits() < kWaiters) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  cache.Insert("fp", *table, "key", {0, 3});
  for (auto& th : threads) th.join();

  EXPECT_EQ(populations.load(), 0);  // only this thread computed
  EXPECT_EQ(hits_seen.load(), kWaiters);
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_EQ(cache.hits(), kWaiters);
  EXPECT_EQ(cache.coalesced_waits(), kWaiters);
}

/// An abandoned population (query failed, ticket destroyed without Insert)
/// must release the waiters and let exactly one of them take over.
TEST(PredicateCacheConcurrencyTest, AbandonedPopulationHandsOffOwnership) {
  PredicateCache cache(/*capacity=*/64);
  auto table = CacheTable("t", 16);
  constexpr int kWaiters = 4;

  auto ticket = std::make_unique<PredicateCache::PopulateTicket>();
  auto first = cache.LookupOrPopulate("fp", *table, ticket.get());
  ASSERT_FALSE(first.has_value());

  std::atomic<int> populations{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kWaiters; ++t) {
    threads.emplace_back([&] {
      PredicateCache::PopulateTicket mine;
      auto cached = cache.LookupOrPopulate("fp", *table, &mine);
      if (mine.owns()) {
        populations.fetch_add(1);
        cache.Insert("fp", *table, "key", {5});
      } else {
        ASSERT_TRUE(cached.has_value());
      }
    });
  }
  while (cache.coalesced_waits() < kWaiters) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ticket.reset();  // abandon without publishing
  for (auto& th : threads) th.join();

  EXPECT_EQ(populations.load(), 1);  // exactly one waiter took over
  EXPECT_EQ(cache.misses(), 2);      // original owner + successor
  EXPECT_EQ(cache.hits(), kWaiters - 1);
}

/// End-to-end through the engine: two engines sharing one cache run the
/// same top-k query concurrently. Coalescing must make the second query
/// wait for (and reuse) the first one's population — one miss, one hit —
/// with byte-identical results.
TEST(PredicateCacheConcurrencyTest, ConcurrentIdenticalQueriesCoalesce) {
  Catalog catalog;
  workload::TableGenConfig cfg;
  cfg.name = "t";
  cfg.num_partitions = 24;
  cfg.rows_per_partition = 80;
  cfg.layout = workload::Layout::kClustered;
  cfg.seed = 321;
  ASSERT_TRUE(catalog.RegisterTable(workload::SyntheticTable(cfg)).ok());

  PredicateCache cache(/*capacity=*/64);
  auto plan = TopKPlan(ScanPlan("t"), "key", /*descending=*/true, 7);

  auto run = [&]() {
    EngineConfig config;
    config.predicate_cache = &cache;
    config.exec.num_threads = 1;
    Engine engine(&catalog, config);
    auto result = engine.Execute(plan);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(result).value();
  };

  QueryResult r1, r2;
  std::thread t1([&] { r1 = run(); });
  std::thread t2([&] { r2 = run(); });
  t1.join();
  t2.join();

  // Exactly one population: one engine missed (and computed), the other
  // either waited on the in-flight population or arrived after the publish
  // — a hit either way.
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_EQ(cache.hits(), 1);
  ASSERT_EQ(r1.rows.size(), r2.rows.size());
  for (size_t i = 0; i < r1.rows.size(); ++i) {
    ASSERT_EQ(r1.rows[i].size(), r2.rows[i].size());
    for (size_t j = 0; j < r1.rows[i].size(); ++j) {
      EXPECT_TRUE(r1.rows[i][j] == r2.rows[i][j]);
    }
  }
  EXPECT_TRUE(r1.predicate_cache_hit || r2.predicate_cache_hit);
}

/// Regression: a plan with TWO cache-eligible top-k scans must not
/// hold-and-wait across fingerprints. Two engines compiling mirror-image
/// join-of-top-k plans concurrently would ABBA-deadlock if a compile could
/// block on one fingerprint while owning another's population ticket; the
/// engine therefore coalesces only the first cache-eligible scan per plan.
/// (A regression here shows up as this test hanging.)
TEST(PredicateCacheConcurrencyTest, MirrorJoinTopKPlansDoNotDeadlock) {
  Catalog catalog;
  for (const char* name : {"a", "b"}) {
    workload::TableGenConfig cfg;
    cfg.name = name;
    cfg.num_partitions = 8;
    cfg.rows_per_partition = 40;
    cfg.seed = name[0];
    ASSERT_TRUE(catalog.RegisterTable(workload::SyntheticTable(cfg)).ok());
  }
  PredicateCache cache(/*capacity=*/64);
  auto plan1 = JoinPlan(TopKPlan(ScanPlan("a"), "key", true, 5),
                        TopKPlan(ScanPlan("b"), "key", true, 5), "key", "key");
  auto plan2 = JoinPlan(TopKPlan(ScanPlan("b"), "key", true, 5),
                        TopKPlan(ScanPlan("a"), "key", true, 5), "key", "key");

  auto run = [&](const PlanPtr& plan) {
    for (int i = 0; i < 25; ++i) {
      EngineConfig config;
      config.predicate_cache = &cache;
      config.exec.num_threads = 1;
      Engine engine(&catalog, config);
      auto result = engine.Execute(plan);
      EXPECT_TRUE(result.ok()) << result.status().ToString();
    }
  };
  std::thread t1([&] { run(plan1); });
  std::thread t2([&] { run(plan2); });
  t1.join();
  t2.join();
  EXPECT_GT(cache.hits() + cache.misses(), 0);
}

/// Single-threaded sanity: after one Insert, repeats hit; eviction respects
/// capacity FIFO; size() never exceeds capacity under churn.
TEST(PredicateCacheConcurrencyTest, CapacityRespectedUnderChurn) {
  PredicateCache cache(/*capacity=*/8);
  auto table = CacheTable("t", 4);
  for (int i = 0; i < 100; ++i) {
    cache.Insert("q" + std::to_string(i), *table, "key", {0, 1});
    EXPECT_LE(cache.size(), size_t{8});
  }
  EXPECT_EQ(cache.size(), size_t{8});
  EXPECT_FALSE(cache.Lookup("q0", *table).has_value());
  EXPECT_TRUE(cache.Lookup("q99", *table).has_value());
}

}  // namespace
}  // namespace snowprune
