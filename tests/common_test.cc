#include <gtest/gtest.h>

#include <cmath>

#include "common/interval.h"
#include "common/rng.h"
#include "common/stats_collector.h"
#include "common/tribool.h"
#include "common/value.h"

namespace snowprune {
namespace {

// ---------------------------------------------------------------- Value ----

TEST(ValueTest, NullAndTypes) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_TRUE(Value(int64_t{5}).is_int64());
  EXPECT_TRUE(Value(2.5).is_float64());
  EXPECT_TRUE(Value("abc").is_string());
  EXPECT_TRUE(Value(true).is_bool());
  EXPECT_EQ(Value(int64_t{5}).type(), DataType::kInt64);
}

TEST(ValueTest, NumericCrossCompare) {
  EXPECT_EQ(Value::Compare(Value(int64_t{2}), Value(2.0)), 0);
  EXPECT_LT(Value::Compare(Value(int64_t{2}), Value(2.5)), 0);
  EXPECT_GT(Value::Compare(Value(3.1), Value(int64_t{3})), 0);
}

TEST(ValueTest, StringCompare) {
  EXPECT_LT(Value::Compare(Value("abc"), Value("abd")), 0);
  EXPECT_EQ(Value::Compare(Value("x"), Value("x")), 0);
}

TEST(ValueTest, EqualityTreatsNullAsNull) {
  EXPECT_EQ(Value::Null(), Value::Null());
  EXPECT_NE(Value::Null(), Value(int64_t{0}));
  EXPECT_EQ(Value(int64_t{7}), Value(7.0));
  EXPECT_NE(Value("7"), Value(int64_t{7}));
}

TEST(ValueTest, HashIntegralNumericsCollide) {
  EXPECT_EQ(HashValue(Value(int64_t{42})), HashValue(Value(42.0)));
  EXPECT_NE(HashValue(Value(int64_t{42})), HashValue(Value(int64_t{43})));
  EXPECT_NE(HashValue(Value("a")), HashValue(Value("b")));
}

TEST(ValueTest, ToStringRendersSqlStyle) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value(int64_t{3}).ToString(), "3");
  EXPECT_EQ(Value("hi").ToString(), "'hi'");
  EXPECT_EQ(Value(true).ToString(), "true");
}

// -------------------------------------------------------------- TriBool ----

TEST(TriBoolTest, KleeneTables) {
  EXPECT_EQ(TriAnd(TriBool::kTrue, TriBool::kMaybe), TriBool::kMaybe);
  EXPECT_EQ(TriAnd(TriBool::kFalse, TriBool::kMaybe), TriBool::kFalse);
  EXPECT_EQ(TriOr(TriBool::kTrue, TriBool::kMaybe), TriBool::kTrue);
  EXPECT_EQ(TriOr(TriBool::kFalse, TriBool::kMaybe), TriBool::kMaybe);
  EXPECT_EQ(TriNot(TriBool::kMaybe), TriBool::kMaybe);
  EXPECT_EQ(TriNot(TriBool::kTrue), TriBool::kFalse);
}

// ------------------------------------------------------------- Interval ----

TEST(IntervalTest, PointAndRange) {
  Interval p = Interval::Point(Value(int64_t{5}));
  EXPECT_TRUE(p.IsConstant());
  Interval r = Interval::Range(Value(int64_t{1}), Value(int64_t{9}), false);
  EXPECT_FALSE(r.IsConstant());
  EXPECT_TRUE(Interval::Point(Value::Null()).all_null);
}

TEST(IntervalTest, UnionTakesHull) {
  Interval a = Interval::Range(Value(int64_t{0}), Value(int64_t{10}), false);
  Interval b = Interval::Range(Value(int64_t{5}), Value(int64_t{20}), true);
  Interval u = Union(a, b);
  EXPECT_EQ(u.lo->int64_value(), 0);
  EXPECT_EQ(u.hi->int64_value(), 20);
  EXPECT_TRUE(u.maybe_null);
}

TEST(IntervalTest, AddExactInt) {
  Interval a = Interval::Range(Value(int64_t{1}), Value(int64_t{2}), false);
  Interval b = Interval::Range(Value(int64_t{10}), Value(int64_t{20}), false);
  Interval sum = Add(a, b);
  EXPECT_EQ(sum.lo->int64_value(), 11);
  EXPECT_EQ(sum.hi->int64_value(), 22);
}

TEST(IntervalTest, MulCoversSignCombinations) {
  Interval a = Interval::Range(Value(int64_t{-3}), Value(int64_t{2}), false);
  Interval b = Interval::Range(Value(int64_t{-5}), Value(int64_t{4}), false);
  Interval prod = Mul(a, b);
  // Candidates: 15, -12, -10, 8 -> [-12, 15].
  EXPECT_EQ(prod.lo->int64_value(), -12);
  EXPECT_EQ(prod.hi->int64_value(), 15);
}

TEST(IntervalTest, MulWidensFloatConservatively) {
  Interval a = Interval::Range(Value(0.1), Value(0.3), false);
  Interval b = Interval::Point(Value(3.0));
  Interval prod = Mul(a, b);
  EXPECT_LE(prod.lo->AsDouble(), 0.1 * 3.0);
  EXPECT_GE(prod.hi->AsDouble(), 0.3 * 3.0);
}

TEST(IntervalTest, DivByRangeContainingZeroIsUnbounded) {
  Interval a = Interval::Range(Value(int64_t{1}), Value(int64_t{2}), false);
  Interval b = Interval::Range(Value(int64_t{-1}), Value(int64_t{1}), false);
  Interval q = Div(a, b);
  EXPECT_FALSE(q.lo.has_value());
  EXPECT_FALSE(q.hi.has_value());
}

TEST(IntervalTest, AddOverflowDegradesToDouble) {
  Interval a = Interval::Point(Value(std::numeric_limits<int64_t>::max()));
  Interval b = Interval::Point(Value(int64_t{10}));
  Interval sum = Add(a, b);
  ASSERT_TRUE(sum.hi.has_value());
  EXPECT_TRUE(sum.hi->is_float64());
  EXPECT_GE(sum.hi->AsDouble(), 9.2e18);
}

TEST(IntervalTest, CompareDisjointRanges) {
  Interval a = Interval::Range(Value(int64_t{0}), Value(int64_t{9}), false);
  Interval b = Interval::Range(Value(int64_t{10}), Value(int64_t{19}), false);
  EXPECT_EQ(CompareIntervals(a, CompareOp::kLt, b), TriBool::kTrue);
  EXPECT_EQ(CompareIntervals(a, CompareOp::kGe, b), TriBool::kFalse);
  EXPECT_EQ(CompareIntervals(a, CompareOp::kEq, b), TriBool::kFalse);
  EXPECT_EQ(CompareIntervals(a, CompareOp::kNe, b), TriBool::kTrue);
}

TEST(IntervalTest, CompareOverlappingRangesIsMaybe) {
  Interval a = Interval::Range(Value(int64_t{0}), Value(int64_t{15}), false);
  Interval b = Interval::Range(Value(int64_t{10}), Value(int64_t{19}), false);
  EXPECT_EQ(CompareIntervals(a, CompareOp::kLt, b), TriBool::kMaybe);
  EXPECT_EQ(CompareIntervals(a, CompareOp::kEq, b), TriBool::kMaybe);
}

TEST(IntervalTest, NullDegradesTrueToMaybe) {
  Interval a = Interval::Range(Value(int64_t{0}), Value(int64_t{9}), true);
  Interval b = Interval::Point(Value(int64_t{100}));
  // All non-null values are < 100, but NULL rows don't satisfy it.
  EXPECT_EQ(CompareIntervals(a, CompareOp::kLt, b), TriBool::kMaybe);
  // False stays false: no value (null or not) satisfies >.
  EXPECT_EQ(CompareIntervals(a, CompareOp::kGt, b), TriBool::kFalse);
}

TEST(IntervalTest, AllNullComparesFalse) {
  EXPECT_EQ(CompareIntervals(Interval::AllNull(), CompareOp::kEq,
                             Interval::Point(Value(int64_t{1}))),
            TriBool::kFalse);
}

TEST(IntervalTest, EqOnEqualConstants) {
  Interval a = Interval::Point(Value("feet"));
  Interval b = Interval::Point(Value("feet"));
  EXPECT_EQ(CompareIntervals(a, CompareOp::kEq, b), TriBool::kTrue);
  EXPECT_EQ(CompareIntervals(a, CompareOp::kNe, b), TriBool::kFalse);
}

TEST(IntervalTest, MixedKindsAreMaybe) {
  Interval a = Interval::Point(Value("abc"));
  Interval b = Interval::Point(Value(int64_t{3}));
  EXPECT_EQ(CompareIntervals(a, CompareOp::kEq, b), TriBool::kMaybe);
}

TEST(CompareOpTest, InvertAndMirror) {
  EXPECT_EQ(Invert(CompareOp::kLt), CompareOp::kGe);
  EXPECT_EQ(Invert(CompareOp::kEq), CompareOp::kNe);
  EXPECT_EQ(Mirror(CompareOp::kLt), CompareOp::kGt);
  EXPECT_EQ(Mirror(CompareOp::kEq), CompareOp::kEq);
}

// ------------------------------------------------------------------ Rng ----

TEST(RngTest, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng rng(2);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, DiscreteRespectsWeights) {
  Rng rng(3);
  std::vector<double> w = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) ++counts[rng.Discrete(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_GT(counts[2], counts[0] * 2);
}

TEST(ZipfTest, RankOneDominates) {
  Rng rng(4);
  ZipfSampler zipf(100, 1.2);
  int64_t first = 0, total = 0;
  for (int i = 0; i < 10000; ++i) {
    size_t r = zipf.Sample(&rng);
    EXPECT_GE(r, 1u);
    EXPECT_LE(r, 100u);
    if (r == 1) ++first;
    ++total;
  }
  EXPECT_GT(first, total / 10);
}

// ------------------------------------------------------- StatsCollector ----

TEST(StatsCollectorTest, PercentilesAndMean) {
  StatsCollector c;
  for (int i = 1; i <= 100; ++i) c.Add(i);
  EXPECT_DOUBLE_EQ(c.Mean(), 50.5);
  EXPECT_NEAR(c.Median(), 50.5, 0.5);
  EXPECT_DOUBLE_EQ(c.Percentile(0), 1);
  EXPECT_DOUBLE_EQ(c.Percentile(100), 100);
  EXPECT_NEAR(c.Percentile(90), 90.1, 0.5);
}

/// One sample: every percentile (including the 0 and 100 edges) is that
/// sample — the degenerate case the service's latency printout hits when a
/// run completed a single query.
TEST(StatsCollectorTest, PercentileSingleSample) {
  StatsCollector c;
  c.Add(7.25);
  EXPECT_DOUBLE_EQ(c.Percentile(0), 7.25);
  EXPECT_DOUBLE_EQ(c.Percentile(50), 7.25);
  EXPECT_DOUBLE_EQ(c.Percentile(99), 7.25);
  EXPECT_DOUBLE_EQ(c.Percentile(100), 7.25);
  EXPECT_DOUBLE_EQ(c.Mean(), 7.25);
}

/// p<=0 clamps to the minimum and p>=100 to the maximum, even when asked
/// for out-of-range percentiles.
TEST(StatsCollectorTest, PercentileEdgeClamping) {
  StatsCollector c;
  c.AddAll({5, 1, 9, 3});
  EXPECT_DOUBLE_EQ(c.Percentile(0), 1);
  EXPECT_DOUBLE_EQ(c.Percentile(-10), 1);
  EXPECT_DOUBLE_EQ(c.Percentile(100), 9);
  EXPECT_DOUBLE_EQ(c.Percentile(250), 9);
}

/// Percentile sorts lazily; an Add after a Percentile query must
/// invalidate the cached sort so later queries see the new sample.
TEST(StatsCollectorTest, PercentileResortsAfterAdd) {
  StatsCollector c;
  c.AddAll({10, 20, 30});
  EXPECT_DOUBLE_EQ(c.Percentile(100), 30);
  c.Add(5);  // out of order vs the cached sorted copy
  EXPECT_DOUBLE_EQ(c.Percentile(0), 5);
  EXPECT_DOUBLE_EQ(c.Percentile(100), 30);
  c.Add(99);
  EXPECT_DOUBLE_EQ(c.Percentile(100), 99);
  EXPECT_DOUBLE_EQ(c.Median(), 20);  // sorted: 5 10 20 30 99
}

TEST(StatsCollectorTest, CdfAt) {
  StatsCollector c;
  c.AddAll({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(c.CdfAt(2.5), 0.5);
  EXPECT_DOUBLE_EQ(c.CdfAt(0), 0.0);
  EXPECT_DOUBLE_EQ(c.CdfAt(4), 1.0);
}

TEST(StatsCollectorTest, BoxPlotRowMarksMedianAndMean) {
  StatsCollector c;
  c.AddAll({0, 0.5, 1});
  std::string row = c.BoxPlotRow(0, 1, 21);
  EXPECT_EQ(row.size(), 21u);
  EXPECT_NE(row.find('#'), std::string::npos);
  EXPECT_EQ(row.front(), '|');
  EXPECT_EQ(row.back(), '|');
}

}  // namespace
}  // namespace snowprune
