#include "exec/agg_op.h"

#include <algorithm>
#include <cassert>

namespace snowprune {

const char* ToString(AggFunc func) {
  switch (func) {
    case AggFunc::kCount: return "count";
    case AggFunc::kSum: return "sum";
    case AggFunc::kMin: return "min";
    case AggFunc::kMax: return "max";
    case AggFunc::kAvg: return "avg";
  }
  return "?";
}

bool HashAggregateOp::KeyLess::operator()(const Row& a, const Row& b) const {
  assert(a.size() == b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    const bool an = a[i].is_null(), bn = b[i].is_null();
    if (an != bn) return an;  // NULL keys group together, sorting first
    if (an) continue;
    int c = Value::Compare(a[i], b[i]);
    if (c != 0) return c < 0;
  }
  return false;
}

HashAggregateOp::HashAggregateOp(OperatorPtr input,
                                 std::vector<size_t> group_columns,
                                 std::vector<AggSpec> aggregates)
    : input_(std::move(input)),
      group_columns_(std::move(group_columns)),
      aggregates_(std::move(aggregates)) {
  std::vector<Field> fields;
  for (size_t col : group_columns_) {
    fields.push_back(input_->output_schema().field(col));
  }
  for (const auto& spec : aggregates_) {
    DataType type = DataType::kFloat64;
    if (spec.func == AggFunc::kCount) {
      type = DataType::kInt64;
    } else if (spec.func == AggFunc::kMin || spec.func == AggFunc::kMax) {
      type = input_->output_schema().field(spec.column).type;
    }
    fields.push_back(Field{spec.name, type, /*nullable=*/true});
  }
  schema_ = Schema(std::move(fields));
}

void HashAggregateOp::EnableGroupLimit(size_t order_group_index,
                                       bool descending, int64_t k,
                                       TopKPruner* pruner) {
  assert(order_group_index < group_columns_.size());
  assert(pruner == nullptr || !pruner->config().inclusive_updates);
  group_limit_enabled_ = true;
  order_group_index_ = order_group_index;
  order_descending_ = descending;
  group_limit_k_ = k;
  pruner_ = pruner;
}

void HashAggregateOp::Open() {
  groups_.clear();
  emitted_ = false;
  input_->Open();
}

void HashAggregateOp::Accumulate(GroupState* state, const Row& row) {
  ++state->group_rows;
  for (size_t i = 0; i < aggregates_.size(); ++i) {
    const AggSpec& spec = aggregates_[i];
    if (spec.func == AggFunc::kCount) {
      ++state->counts[i];
      continue;
    }
    const Value& v = row[spec.column];
    if (v.is_null()) continue;
    ++state->counts[i];
    switch (spec.func) {
      case AggFunc::kSum:
      case AggFunc::kAvg:
        state->sums[i] += v.AsDouble();
        break;
      case AggFunc::kMin:
        if (state->min_max[i].is_null() ||
            Value::Compare(v, state->min_max[i]) < 0) {
          state->min_max[i] = v;
        }
        break;
      case AggFunc::kMax:
        if (state->min_max[i].is_null() ||
            Value::Compare(v, state->min_max[i]) > 0) {
          state->min_max[i] = v;
        }
        break;
      case AggFunc::kCount:
        break;
    }
  }
}

Row HashAggregateOp::Finalize(const GroupState& state) const {
  Row out = state.key;
  for (size_t i = 0; i < aggregates_.size(); ++i) {
    switch (aggregates_[i].func) {
      case AggFunc::kCount:
        out.push_back(Value(state.counts[i]));
        break;
      case AggFunc::kSum:
        out.push_back(state.counts[i] == 0 ? Value::Null()
                                           : Value(state.sums[i]));
        break;
      case AggFunc::kAvg:
        out.push_back(state.counts[i] == 0
                          ? Value::Null()
                          : Value(state.sums[i] /
                                  static_cast<double>(state.counts[i])));
        break;
      case AggFunc::kMin:
      case AggFunc::kMax:
        out.push_back(state.min_max[i]);
        break;
    }
  }
  return out;
}

void HashAggregateOp::PublishGroupBoundary() {
  if (pruner_ == nullptr ||
      static_cast<int64_t>(groups_.size()) < group_limit_k_) {
    return;
  }
  // k-th strictest distinct group order-key value.
  std::vector<Value> keys;
  keys.reserve(groups_.size());
  for (const auto& [key, state] : groups_) {
    const Value& v = key[order_group_index_];
    if (!v.is_null()) keys.push_back(v);
  }
  if (static_cast<int64_t>(keys.size()) < group_limit_k_) return;
  std::sort(keys.begin(), keys.end(), [&](const Value& a, const Value& b) {
    int c = Value::Compare(a, b);
    return order_descending_ ? c > 0 : c < 0;
  });
  pruner_->UpdateBoundary(keys[static_cast<size_t>(group_limit_k_) - 1]);
}

bool HashAggregateOp::Next(Batch* out) {
  if (emitted_) return false;
  Batch in;
  while (input_->Next(&in)) {
    for (const Row& row : in.rows) {
      Row key;
      key.reserve(group_columns_.size());
      for (size_t col : group_columns_) key.push_back(row[col]);
      if (group_limit_enabled_ && pruner_ != nullptr &&
          pruner_->boundary().has_value()) {
        // A row strictly weaker than the group boundary can neither found a
        // top-k group nor feed one (its group key is its own).
        const Value& v = key[order_group_index_];
        if (!v.is_null()) {
          int c = Value::Compare(v, *pruner_->boundary());
          if (order_descending_ ? c < 0 : c > 0) continue;
        }
      }
      auto it = groups_.find(key);
      if (it == groups_.end()) {
        GroupState state;
        state.key = key;
        state.min_max.assign(aggregates_.size(), Value::Null());
        state.sums.assign(aggregates_.size(), 0.0);
        state.counts.assign(aggregates_.size(), 0);
        it = groups_.emplace(std::move(key), std::move(state)).first;
        if (group_limit_enabled_) PublishGroupBoundary();
      }
      Accumulate(&it->second, row);
    }
  }

  out->rows.clear();
  out->source.clear();
  std::vector<Row> result;
  result.reserve(groups_.size());
  for (const auto& [key, state] : groups_) result.push_back(Finalize(state));
  if (group_limit_enabled_) {
    std::stable_sort(result.begin(), result.end(),
                     [&](const Row& a, const Row& b) {
                       const Value& va = a[order_group_index_];
                       const Value& vb = b[order_group_index_];
                       if (va.is_null()) return false;
                       if (vb.is_null()) return true;
                       int c = Value::Compare(va, vb);
                       return order_descending_ ? c > 0 : c < 0;
                     });
    if (static_cast<int64_t>(result.size()) > group_limit_k_) {
      result.resize(static_cast<size_t>(group_limit_k_));
    }
  }
  out->rows = std::move(result);
  emitted_ = true;
  return !out->rows.empty();
}

}  // namespace snowprune
