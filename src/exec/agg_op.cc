#include "exec/agg_op.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/trace.h"
#include "exec/profile.h"

namespace snowprune {

const char* ToString(AggFunc func) {
  switch (func) {
    case AggFunc::kCount: return "count";
    case AggFunc::kSum: return "sum";
    case AggFunc::kMin: return "min";
    case AggFunc::kMax: return "max";
    case AggFunc::kAvg: return "avg";
  }
  return "?";
}

bool HashAggregateOp::KeyLess::operator()(const Row& a, const Row& b) const {
  assert(a.size() == b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    const bool an = a[i].is_null(), bn = b[i].is_null();
    if (an != bn) return an;  // NULL keys group together, sorting first
    if (an) continue;
    int c = Value::Compare(a[i], b[i]);
    if (c != 0) return c < 0;
  }
  return false;
}

HashAggregateOp::HashAggregateOp(OperatorPtr input,
                                 std::vector<size_t> group_columns,
                                 std::vector<AggSpec> aggregates)
    : input_(std::move(input)),
      group_columns_(std::move(group_columns)),
      aggregates_(std::move(aggregates)) {
  std::vector<Field> fields;
  for (size_t col : group_columns_) {
    fields.push_back(input_->output_schema().field(col));
  }
  for (const auto& spec : aggregates_) {
    DataType type = DataType::kFloat64;
    if (spec.func == AggFunc::kCount) {
      type = DataType::kInt64;
    } else if (spec.func == AggFunc::kMin || spec.func == AggFunc::kMax) {
      type = input_->output_schema().field(spec.column).type;
    }
    fields.push_back(Field{spec.name, type, /*nullable=*/true});
  }
  schema_ = Schema(std::move(fields));
}

HashAggregateOp::~HashAggregateOp() {
  // The worker-side morsel transform reads this operator's members
  // (group_columns_, aggregates_), which member-destruction order tears
  // down *before* input_ (and with it the scan's scheduler + workers).
  // Close() normally joins the workers first, but exception unwinding can
  // skip it — join here; TableScanOp::Close() is idempotent.
  if (scan_input_ != nullptr) scan_input_->Close();
}

void HashAggregateOp::EnableGroupLimit(size_t order_group_index,
                                       bool descending, int64_t k,
                                       TopKPruner* pruner) {
  assert(order_group_index < group_columns_.size());
  assert(pruner == nullptr || !pruner->config().inclusive_updates);
  group_limit_enabled_ = true;
  order_group_index_ = order_group_index;
  order_descending_ = descending;
  group_limit_k_ = k;
  pruner_ = pruner;
}

bool HashAggregateOp::AggsMergeExactly(const TableScanOp& scan) const {
  // Every intermediate double sum must stay an exactly-representable
  // integer (|sum| < 2^53); only then is accumulation associative and the
  // morsel-merge order guaranteed to reproduce serial results bit-for-bit.
  constexpr double kExactLimit = 9007199254740992.0;  // 2^53
  for (const AggSpec& spec : aggregates_) {
    if (spec.func != AggFunc::kSum && spec.func != AggFunc::kAvg) continue;
    // Float inputs could differ in the last ulp under any reassociation.
    if (input_->output_schema().field(spec.column).type != DataType::kInt64) {
      return false;
    }
    // Bound the worst-case running |sum| from zone maps: if the scan's
    // partitions could push any prefix past 2^53, stay serial. (spec.column
    // indexes the scan's output schema, which is the table schema.)
    double bound = 0.0;
    const Table& table = *scan.table();
    for (PartitionId pid : scan.scan_set()) {
      const ColumnStats& s = table.stats(pid, spec.column);
      if (!s.has_stats) return false;  // §8.1 external file: no proof
      if (s.min.is_null()) continue;   // all-NULL column contributes 0
      double extreme =
          std::max(std::abs(s.min.AsDouble()), std::abs(s.max.AsDouble()));
      bound += extreme * static_cast<double>(s.row_count - s.null_count);
      if (bound >= kExactLimit) return false;
    }
  }
  return true;
}

void HashAggregateOp::Open() {
  groups_.clear();
  emitted_ = false;
  parallel_path_ = false;
  scan_input_ = nullptr;
  columnar_input_ = nullptr;
  auto* scan = dynamic_cast<TableScanOp*>(input_.get());
  // A scan input is consumed unboxed (NextColumns) unless the group-limit
  // shape (Figure 7d) is active — its boundary feedback filters and
  // publishes per row, which stays on the boxed path.
  if (scan != nullptr && !group_limit_enabled_) columnar_input_ = scan;
  // The group-limit shape also stays serial for fusion: its boundary
  // feedback depends on seeing rows in scan order. Likewise a scan with a
  // top-k pruner attached: pre-aggregated morsels cannot be un-accumulated
  // if the consumer-side boundary re-check would have dropped them.
  if (parallel_preagg_allowed_ && scan != nullptr && scan->parallel_enabled() &&
      !scan->has_topk_pruner() && !group_limit_enabled_ &&
      AggsMergeExactly(*scan)) {
    parallel_path_ = true;
    scan_input_ = scan;
    // Worker-side morsel reduction stage: columns never reach the consumer
    // thread; each loaded batch folds into the morsel's partial group map,
    // in scan-set order within the morsel (coarse morsels: the per-morsel
    // merge cost is a whole partial map).
    scan->set_morsel_stage(
        [this](MorselResult* morsel) {
          for (MorselItem& item : morsel->items) {
            if (!item.loaded) continue;
            if (morsel->payload == nullptr) {
              morsel->payload = std::make_shared<GroupMap>();
            }
            AccumulateColumns(static_cast<GroupMap*>(morsel->payload.get()),
                              item.batch);
            item.batch.Clear();
          }
        },
        /*coarse_morsels=*/true);
  }
  input_->Open();  // parallel scans start their scheduler here
}

void HashAggregateOp::MergePartial(GroupMap* partial) {
  if (groups_.empty()) {
    // First partial (typically the largest share of the groups): adopt the
    // whole map instead of merging entry by entry.
    groups_ = std::move(*partial);
    return;
  }
  for (auto& [key, state] : *partial) {
    auto it = groups_.find(key);
    if (it == groups_.end()) {
      groups_.emplace(key, std::move(state));
      continue;
    }
    GroupState& dst = it->second;
    dst.group_rows += state.group_rows;
    for (size_t i = 0; i < aggregates_.size(); ++i) {
      dst.counts[i] += state.counts[i];
      dst.sums[i] += state.sums[i];
      const Value& v = state.min_max[i];
      if (v.is_null()) continue;
      if (dst.min_max[i].is_null()) {
        dst.min_max[i] = v;
      } else if (aggregates_[i].func == AggFunc::kMin
                     ? Value::Compare(v, dst.min_max[i]) < 0
                     : Value::Compare(v, dst.min_max[i]) > 0) {
        dst.min_max[i] = v;
      }
    }
  }
}

HashAggregateOp::GroupState& HashAggregateOp::FindOrCreateGroup(
    GroupMap* groups, Row key, bool* created) {
  auto it = groups->find(key);
  if (it == groups->end()) {
    GroupState state;
    state.key = key;
    state.min_max.assign(aggregates_.size(), Value::Null());
    state.sums.assign(aggregates_.size(), 0.0);
    state.counts.assign(aggregates_.size(), 0);
    it = groups->emplace(std::move(key), std::move(state)).first;
    if (created != nullptr) *created = true;
  }
  return it->second;
}

namespace {

/// Unboxed equality of two physical rows of one column (NULLs compare
/// equal, matching the NULL grouping rule of HashAggregateOp::KeyLess).
bool ColumnRowsEqual(const ColumnVector& col, uint32_t a, uint32_t b) {
  const bool an = col.IsNull(a), bn = col.IsNull(b);
  if (an || bn) return an == bn;
  switch (col.type()) {
    case DataType::kInt64: return col.Int64At(a) == col.Int64At(b);
    case DataType::kFloat64: return col.Float64At(a) == col.Float64At(b);
    case DataType::kString: return col.StringAt(a) == col.StringAt(b);
    case DataType::kBool: return col.BoolAt(a) == col.BoolAt(b);
  }
  return false;
}

}  // namespace

bool HashAggregateOp::SameGroupKeys(const ColumnBatch& batch, uint32_t a,
                                    uint32_t b) const {
  for (size_t col : group_columns_) {
    if (!ColumnRowsEqual(batch.column(col), a, b)) return false;
  }
  return true;
}

void HashAggregateOp::AccumulateUnboxed(GroupState* state,
                                        const ColumnBatch& batch, uint32_t r) {
  ++state->group_rows;
  for (size_t i = 0; i < aggregates_.size(); ++i) {
    const AggSpec& spec = aggregates_[i];
    if (spec.func == AggFunc::kCount) {
      ++state->counts[i];
      continue;
    }
    const ColumnVector& col = batch.column(spec.column);
    if (col.IsNull(r)) continue;
    ++state->counts[i];
    switch (spec.func) {
      case AggFunc::kSum:
      case AggFunc::kAvg:
        // Mirrors Value::AsDouble() on the boxed path; a non-numeric input
        // column takes the boxed accessor (and throws) exactly as before.
        if (col.type() == DataType::kInt64) {
          state->sums[i] += static_cast<double>(col.Int64At(r));
        } else if (col.type() == DataType::kFloat64) {
          state->sums[i] += col.Float64At(r);
        } else {
          state->sums[i] += col.ValueAt(r).AsDouble();
        }
        break;
      case AggFunc::kMin:
        if (state->min_max[i].is_null() ||
            CompareCellVsValue(col, r, state->min_max[i]) < 0) {
          state->min_max[i] = col.ValueAt(r);
        }
        break;
      case AggFunc::kMax:
        if (state->min_max[i].is_null() ||
            CompareCellVsValue(col, r, state->min_max[i]) > 0) {
          state->min_max[i] = col.ValueAt(r);
        }
        break;
      case AggFunc::kCount:
        break;
    }
  }
}

void HashAggregateOp::AccumulateColumns(GroupMap* groups,
                                        const ColumnBatch& batch) {
  const size_t n = batch.num_rows();
  GroupState* state = nullptr;
  uint32_t prev_row = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint32_t r = batch.row_index(i);
    // Group-key run detection: clustered/sorted inputs repeat the same key
    // for long stretches, so comparing unboxed against the previous row
    // skips key construction and the map lookup for every repeat.
    if (state == nullptr || !SameGroupKeys(batch, r, prev_row)) {
      Row key;
      key.reserve(group_columns_.size());
      for (size_t col : group_columns_) {
        key.push_back(batch.column(col).ValueAt(r));
      }
      state = &FindOrCreateGroup(groups, std::move(key));
    }
    prev_row = r;
    AccumulateUnboxed(state, batch, r);
  }
}

void HashAggregateOp::Accumulate(GroupState* state, const Row& row) {
  ++state->group_rows;
  for (size_t i = 0; i < aggregates_.size(); ++i) {
    const AggSpec& spec = aggregates_[i];
    if (spec.func == AggFunc::kCount) {
      ++state->counts[i];
      continue;
    }
    const Value& v = row[spec.column];
    if (v.is_null()) continue;
    ++state->counts[i];
    switch (spec.func) {
      case AggFunc::kSum:
      case AggFunc::kAvg:
        state->sums[i] += v.AsDouble();
        break;
      case AggFunc::kMin:
        if (state->min_max[i].is_null() ||
            Value::Compare(v, state->min_max[i]) < 0) {
          state->min_max[i] = v;
        }
        break;
      case AggFunc::kMax:
        if (state->min_max[i].is_null() ||
            Value::Compare(v, state->min_max[i]) > 0) {
          state->min_max[i] = v;
        }
        break;
      case AggFunc::kCount:
        break;
    }
  }
}

Row HashAggregateOp::Finalize(const GroupState& state) const {
  Row out = state.key;
  for (size_t i = 0; i < aggregates_.size(); ++i) {
    switch (aggregates_[i].func) {
      case AggFunc::kCount:
        out.push_back(Value(state.counts[i]));
        break;
      case AggFunc::kSum:
        out.push_back(state.counts[i] == 0 ? Value::Null()
                                           : Value(state.sums[i]));
        break;
      case AggFunc::kAvg:
        out.push_back(state.counts[i] == 0
                          ? Value::Null()
                          : Value(state.sums[i] /
                                  static_cast<double>(state.counts[i])));
        break;
      case AggFunc::kMin:
      case AggFunc::kMax:
        out.push_back(state.min_max[i]);
        break;
    }
  }
  return out;
}

void HashAggregateOp::PublishGroupBoundary() {
  if (pruner_ == nullptr ||
      static_cast<int64_t>(groups_.size()) < group_limit_k_) {
    return;
  }
  // k-th strictest distinct group order-key value.
  std::vector<Value> keys;
  keys.reserve(groups_.size());
  for (const auto& [key, state] : groups_) {
    const Value& v = key[order_group_index_];
    if (!v.is_null()) keys.push_back(v);
  }
  if (static_cast<int64_t>(keys.size()) < group_limit_k_) return;
  std::sort(keys.begin(), keys.end(), [&](const Value& a, const Value& b) {
    int c = Value::Compare(a, b);
    return order_descending_ ? c > 0 : c < 0;
  });
  pruner_->UpdateBoundary(keys[static_cast<size_t>(group_limit_k_) - 1]);
}

bool HashAggregateOp::Next(Batch* out) {
  if (profile_ == nullptr) return NextInner(out);
  return ProfiledNext(
      profile_, [&] { return NextInner(out); },
      [&] { return static_cast<int64_t>(out->rows.size()); });
}

bool HashAggregateOp::NextInner(Batch* out) {
  if (emitted_) return false;
  // Accumulate-everything-then-emit is the pipeline break; span it whole.
  ScopedSpan drain_span(trace_, "agg.drain", trace_parent_);
  if (parallel_path_) {
    TableScanOp::MorselPayload payload;
    while (scan_input_->NextPayload(&payload)) {
      if (payload != nullptr) {
        MergePartial(static_cast<GroupMap*>(payload.get()));
      }
    }
    return EmitGroups(out);
  }
  if (columnar_input_ != nullptr) {
    // The unboxed hot path: consume the scan's ColumnBatches directly
    // (serial, or parallel in-order delivery when fusion was not exact —
    // either way the accumulation order equals serial execution, so the
    // result is bit-identical).
    ColumnBatch columns;
    while (columnar_input_->NextColumns(&columns)) {
      AccumulateColumns(&groups_, columns);
    }
    return EmitGroups(out);
  }
  Batch in;
  while (input_->Next(&in)) {
    for (const Row& row : in.rows) {
      Row key;
      key.reserve(group_columns_.size());
      for (size_t col : group_columns_) key.push_back(row[col]);
      if (group_limit_enabled_ && pruner_ != nullptr) {
        // One boundary snapshot per row: the pruner's accessor locks, and
        // the stored boundary may tighten between calls.
        const std::optional<Value> boundary = pruner_->boundary();
        if (boundary.has_value()) {
          // A row strictly weaker than the group boundary can neither found
          // a top-k group nor feed one (its group key is its own).
          const Value& v = key[order_group_index_];
          if (!v.is_null()) {
            int c = Value::Compare(v, *boundary);
            if (order_descending_ ? c < 0 : c > 0) continue;
          }
        }
      }
      bool created = false;
      GroupState& state = FindOrCreateGroup(&groups_, std::move(key), &created);
      if (created && group_limit_enabled_) PublishGroupBoundary();
      Accumulate(&state, row);
    }
  }
  return EmitGroups(out);
}

bool HashAggregateOp::EmitGroups(Batch* out) {
  out->rows.clear();
  out->source.clear();
  std::vector<Row> result;
  result.reserve(groups_.size());
  for (const auto& [key, state] : groups_) result.push_back(Finalize(state));
  if (group_limit_enabled_) {
    std::stable_sort(result.begin(), result.end(),
                     [&](const Row& a, const Row& b) {
                       const Value& va = a[order_group_index_];
                       const Value& vb = b[order_group_index_];
                       if (va.is_null()) return false;
                       if (vb.is_null()) return true;
                       int c = Value::Compare(va, vb);
                       return order_descending_ ? c > 0 : c < 0;
                     });
    if (static_cast<int64_t>(result.size()) > group_limit_k_) {
      result.resize(static_cast<size_t>(group_limit_k_));
    }
  }
  out->rows = std::move(result);
  emitted_ = true;
  return !out->rows.empty();
}

}  // namespace snowprune
