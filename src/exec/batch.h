#ifndef SNOWPRUNE_EXEC_BATCH_H_
#define SNOWPRUNE_EXEC_BATCH_H_

#include <vector>

#include "common/value.h"
#include "storage/partition.h"

namespace snowprune {

/// A materialized row exchanged between operators (boxed; the engine trades
/// raw scan speed for uniformity — pruning, not per-row throughput, is what
/// this library studies).
using Row = std::vector<Value>;

/// A unit of data flow: the rows surviving one partition scan (or produced
/// by a pipeline breaker). `source` optionally carries per-row provenance
/// (originating micro-partition), consumed by the top-k predicate cache
/// (§8.2); operators that cannot preserve provenance emit it empty.
struct Batch {
  std::vector<Row> rows;
  std::vector<PartitionId> source;

  size_t num_rows() const { return rows.size(); }
  bool has_source() const { return source.size() == rows.size(); }
};

}  // namespace snowprune

#endif  // SNOWPRUNE_EXEC_BATCH_H_
