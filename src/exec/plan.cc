#include "exec/plan.h"

namespace snowprune {

namespace {

PlanPtr MakeNode(PlanNode::Kind kind) {
  auto node = std::make_shared<PlanNode>();
  node->kind = kind;
  return node;
}

}  // namespace

PlanPtr ScanPlan(std::string table, ExprPtr predicate) {
  PlanPtr node = MakeNode(PlanNode::Kind::kScan);
  node->table = std::move(table);
  node->predicate = std::move(predicate);
  return node;
}

PlanPtr ProjectPlan(PlanPtr child, std::vector<ExprPtr> exprs,
                    std::vector<std::string> names) {
  PlanPtr node = MakeNode(PlanNode::Kind::kProject);
  node->child = std::move(child);
  node->exprs = std::move(exprs);
  node->names = std::move(names);
  return node;
}

PlanPtr LimitPlan(PlanPtr child, int64_t k, int64_t offset) {
  PlanPtr node = MakeNode(PlanNode::Kind::kLimit);
  node->child = std::move(child);
  node->limit_k = k;
  node->limit_offset = offset;
  return node;
}

PlanPtr TopKPlan(PlanPtr child, std::string order_column, bool descending,
                 int64_t k) {
  PlanPtr node = MakeNode(PlanNode::Kind::kTopK);
  node->child = std::move(child);
  node->order_column = std::move(order_column);
  node->descending = descending;
  node->limit_k = k;
  return node;
}

PlanPtr JoinPlan(PlanPtr probe, PlanPtr build, std::string left_key,
                 std::string right_key, JoinKind kind) {
  PlanPtr node = MakeNode(PlanNode::Kind::kJoin);
  node->left = std::move(probe);
  node->right = std::move(build);
  node->left_key = std::move(left_key);
  node->right_key = std::move(right_key);
  node->join_kind = kind;
  return node;
}

PlanPtr AggregatePlan(PlanPtr child, std::vector<std::string> group_columns,
                      std::vector<AggPlanSpec> aggregates) {
  PlanPtr node = MakeNode(PlanNode::Kind::kAggregate);
  node->child = std::move(child);
  node->group_columns = std::move(group_columns);
  node->aggregates = std::move(aggregates);
  return node;
}

PlanPtr SortPlan(PlanPtr child, std::string order_column, bool descending) {
  PlanPtr node = MakeNode(PlanNode::Kind::kSort);
  node->child = std::move(child);
  node->order_column = std::move(order_column);
  node->descending = descending;
  return node;
}

std::string PlanNode::Fingerprint() const {
  std::string s;
  switch (kind) {
    case Kind::kScan:
      s = "Scan(" + table;
      if (predicate) s += ", " + predicate->ToString();
      s += ")";
      break;
    case Kind::kProject: {
      s = "Project(";
      for (size_t i = 0; i < exprs.size(); ++i) {
        if (i > 0) s += ", ";
        s += exprs[i]->ToString() + " AS " + names[i];
      }
      s += ")[" + child->Fingerprint() + "]";
      break;
    }
    case Kind::kLimit:
      s = "Limit(" + std::to_string(limit_k) + "," +
          std::to_string(limit_offset) + ")[" + child->Fingerprint() + "]";
      break;
    case Kind::kTopK:
      s = "TopK(" + order_column + (descending ? " DESC" : " ASC") + ", " +
          std::to_string(limit_k) + ")[" + child->Fingerprint() + "]";
      break;
    case Kind::kSort:
      s = "Sort(" + order_column + (descending ? " DESC" : " ASC") + ")[" +
          child->Fingerprint() + "]";
      break;
    case Kind::kJoin:
      s = std::string("Join(") + ToString(join_kind) + ", " + left_key + "=" +
          right_key + ")[" + left->Fingerprint() + ", " + right->Fingerprint() +
          "]";
      break;
    case Kind::kAggregate: {
      s = "Agg(by=";
      for (size_t i = 0; i < group_columns.size(); ++i) {
        if (i > 0) s += ",";
        s += group_columns[i];
      }
      s += "; ";
      for (size_t i = 0; i < aggregates.size(); ++i) {
        if (i > 0) s += ",";
        s += std::string(ToString(aggregates[i].func)) + "(" +
             aggregates[i].column + ")";
      }
      s += ")[" + child->Fingerprint() + "]";
      break;
    }
  }
  return s;
}

}  // namespace snowprune
