#ifndef SNOWPRUNE_EXEC_ROW_EVAL_H_
#define SNOWPRUNE_EXEC_ROW_EVAL_H_

#include <optional>

#include "exec/batch.h"
#include "expr/expr.h"

namespace snowprune {

/// Scalar evaluation of a bound expression against a materialized row
/// (operator-pipeline counterpart of expr/evaluator.h, which works on
/// partitions). Semantics are identical; a property test asserts agreement.
Value EvalRow(const Expr& expr, const Row& row);

/// Predicate form: true/false, or nullopt for NULL.
std::optional<bool> EvalRowPredicate(const Expr& expr, const Row& row);

}  // namespace snowprune

#endif  // SNOWPRUNE_EXEC_ROW_EVAL_H_
