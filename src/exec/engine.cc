#include "exec/engine.h"

#include <algorithm>
#include <chrono>
#include <map>

#include "common/check.h"
#include "common/clock.h"
#include "common/failpoint.h"
#include "common/trace.h"
#include "exec/ops.h"
#include "exec/profile.h"
#include "exec/parallel/thread_pool.h"
#include "exec/scan_op.h"
#include "exec/topk_op.h"
#include "expr/jit/compiler.h"

namespace snowprune {

const char* ToString(LimitClassification c) {
  switch (c) {
    case LimitClassification::kNotALimitQuery: return "not-a-limit-query";
    case LimitClassification::kAlreadyMinimal: return "already-minimal";
    case LimitClassification::kUnsupportedShape: return "unsupported-shape";
    case LimitClassification::kNoFullyMatching: return "no-fully-matching";
    case LimitClassification::kPrunedToZero: return "pruned-to-0";
    case LimitClassification::kPrunedToOne: return "pruned-to-1";
    case LimitClassification::kPrunedToMany: return "pruned-to->1";
  }
  return "?";
}

namespace {

/// Where a column traced back to, walking from an operator down to a scan.
struct ColumnTrace {
  const PlanNode* scan = nullptr;
  std::string column;                        ///< Name at the scan's table.
  bool via_aggregate = false;                ///< Figure 7d.
  const PlanNode* agg_node = nullptr;
  const PlanNode* build_join_node = nullptr; ///< Figure 7c (build-outer join).
};

/// Per-query table snapshot: every table name the plan references is
/// resolved against the (shared, mutable) catalog exactly once, before
/// compilation; every later compile step — plan analysis included — reads
/// the snapshot. A concurrent Catalog::ReplaceTable/DropTable therefore can
/// never hand one query two versions of a table, or a mid-compile nullptr.
using TableSnapshot = std::map<std::string, std::shared_ptr<Table>>;

std::shared_ptr<Table> FindTable(const TableSnapshot& tables,
                                 const std::string& name) {
  auto it = tables.find(name);
  return it == tables.end() ? nullptr : it->second;
}

/// Missing tables are simply left out; the scan compile reports NotFound.
void CollectTables(const Catalog& catalog, const PlanPtr& plan,
                   TableSnapshot* out) {
  if (!plan) return;
  if (plan->kind == PlanNode::Kind::kScan &&
      out->find(plan->table) == out->end()) {
    auto table = catalog.GetTable(plan->table);
    if (table) (*out)[plan->table] = std::move(table);
  }
  CollectTables(catalog, plan->child, out);
  CollectTables(catalog, plan->left, out);
  CollectTables(catalog, plan->right, out);
}

/// Specialization-tier entry point shared by every compile site (eager scan
/// attach, top-k promotion, shard coordinator): compile the bound predicate
/// to bytecode, stamp the table version it may run against, and record the
/// decision as a "compile.specialize" span under the query's compile span
/// (bytecode length, per-term fallback count, and the reject reason as a
/// jit::RejectReason code — 0 means compiled).
std::shared_ptr<const jit::CompiledPredicate> CompileSpecialized(
    const ExprPtr& predicate, const Schema& schema, uint64_t table_instance,
    Trace* trace, uint32_t parent_span) {
  const uint32_t span = trace != nullptr
                            ? trace->BeginSpan("compile.specialize", parent_span)
                            : 0;
  jit::CompileResult compiled = jit::CompilePredicate(predicate, schema);
  if (compiled.program != nullptr) {
    compiled.program->table_instance = table_instance;
  }
  if (trace != nullptr) {
    trace->AnnotateInt(span, "bytecode_len",
                       compiled.program != nullptr
                           ? static_cast<int64_t>(compiled.program->code.size())
                           : 0);
    trace->AnnotateInt(span, "fallback_terms", compiled.fallback_terms);
    trace->AnnotateInt(span, "reject_reason",
                       static_cast<int64_t>(compiled.reason));
    trace->EndSpan(span);
  }
  return std::move(compiled.program);
}

}  // namespace

/// Per-query compilation state: scan bookkeeping, pending runtime-pruning
/// attachments discovered by plan analysis, and operator back-pointers.
struct Engine::CompileContext {
  struct ScanInfo {
    TableScanOp* op = nullptr;
    std::shared_ptr<Table> table;
    FilterPruneResult filter_result;
  };

  struct PendingTopK {
    const PlanNode* scan_node = nullptr;
    const PlanNode* build_join_node = nullptr;  // wrap this join's build input
    const PlanNode* agg_node = nullptr;
    std::string scan_column;
    TopKPruner* pruner = nullptr;
    int64_t k = 0;
    bool descending = true;
  };

  PruningStats stats;
  QueryResult* result = nullptr;
  /// Per-call options (never null during Compile/Execute).
  const ExecuteOptions* opts = nullptr;
  /// The query's catalog snapshot (see TableSnapshot above).
  TableSnapshot tables;
  std::map<const PlanNode*, ScanInfo> scans;
  std::map<const PlanNode*, HashAggregateOp*> agg_ops;
  /// Operators eligible for pipeline-parallel stages (join build, top-k
  /// candidate filter, sorted runs), enabled after compile when the engine
  /// runs parallel and ExecConfig::parallel_pipeline is on.
  std::vector<HashJoinOp*> join_ops;
  std::vector<TopKOp*> topk_ops;
  std::vector<SortOp*> sort_ops;
  std::vector<std::unique_ptr<TopKPruner>> pruners;
  std::vector<std::unique_ptr<FilterPruner>> runtime_filter_pruners;
  std::vector<PendingTopK> pending_topk;
  /// Traced queries only: the profile the compiled operators meter into
  /// (one ProfileNode per operator) and the operators that got one — the
  /// engine hands them the trace pointer once the execute span exists.
  QueryProfile* profile = nullptr;
  std::vector<Operator*> profiled_ops;
  /// The open "compile" span id (traced queries; 0 untraced) —
  /// "compile.specialize" spans nest under it.
  uint32_t compile_span = 0;
  bool track_source = false;
  /// True once this compile owns a predicate-cache population ticket.
  /// Later cache-eligible scans in the same plan then use the
  /// non-blocking lookup: a compile may wait on a fingerprint only while
  /// holding no ticket, so two queries can never hold-and-wait on each
  /// other's populations (ABBA deadlock).
  bool cache_populate_held = false;

  PendingTopK* FindPendingForScan(const PlanNode* scan_node) {
    for (auto& p : pending_topk) {
      if (p.scan_node == scan_node) return &p;
    }
    return nullptr;
  }
  PendingTopK* FindPendingForJoinBuild(const PlanNode* join_node) {
    for (auto& p : pending_topk) {
      if (p.build_join_node == join_node) return &p;
    }
    return nullptr;
  }
};

namespace {

/// Does the subtree's output contain a column named `name`?
bool PlanOutputsColumn(const TableSnapshot& tables, const PlanPtr& plan,
                       const std::string& name) {
  switch (plan->kind) {
    case PlanNode::Kind::kScan: {
      auto table = FindTable(tables, plan->table);
      return table && table->schema().FindColumn(name).has_value();
    }
    case PlanNode::Kind::kProject:
      return std::find(plan->names.begin(), plan->names.end(), name) !=
             plan->names.end();
    case PlanNode::Kind::kJoin:
      return PlanOutputsColumn(tables, plan->left, name) ||
             PlanOutputsColumn(tables, plan->right, name);
    case PlanNode::Kind::kAggregate: {
      if (std::find(plan->group_columns.begin(), plan->group_columns.end(),
                    name) != plan->group_columns.end()) {
        return true;
      }
      for (const auto& agg : plan->aggregates) {
        if (agg.output_name == name) return true;
      }
      return false;
    }
    default:
      return PlanOutputsColumn(tables, plan->child, name);
  }
}

/// Traces `column` from the top of `plan` down to a producing scan,
/// validating the Figure 7 / §5.2 legality rules along the way. Returns an
/// empty trace (scan == nullptr) when the shape is unsupported.
ColumnTrace TraceColumnToScan(const TableSnapshot& tables, const PlanPtr& plan,
                              const std::string& column) {
  switch (plan->kind) {
    case PlanNode::Kind::kScan: {
      auto table = FindTable(tables, plan->table);
      if (table && table->schema().FindColumn(column).has_value()) {
        ColumnTrace t;
        t.scan = plan.get();
        t.column = column;
        return t;
      }
      return {};
    }
    case PlanNode::Kind::kProject: {
      auto it = std::find(plan->names.begin(), plan->names.end(), column);
      if (it == plan->names.end()) return {};
      size_t idx = static_cast<size_t>(it - plan->names.begin());
      if (plan->exprs[idx]->kind() != ExprKind::kColumnRef) return {};
      const auto& ref = static_cast<const ColumnRefExpr&>(*plan->exprs[idx]);
      return TraceColumnToScan(tables, plan->child, ref.name());
    }
    case PlanNode::Kind::kLimit:
    case PlanNode::Kind::kTopK:
    case PlanNode::Kind::kSort:
      return TraceColumnToScan(tables, plan->child, column);
    case PlanNode::Kind::kJoin: {
      if (PlanOutputsColumn(tables, plan->left, column)) {
        // Probe side: boundary-based skipping is safe for any join kind —
        // rows below the boundary cannot enter the heap even if they
        // survive the join (Figure 7b).
        return TraceColumnToScan(tables, plan->left, column);
      }
      if (PlanOutputsColumn(tables, plan->right, column)) {
        // Build side: only legal when the build side is preserved by the
        // join, where the TopK can be replicated below it (Figure 7c).
        if (plan->join_kind != JoinKind::kBuildOuter) return {};
        ColumnTrace t = TraceColumnToScan(tables, plan->right, column);
        if (t.scan != nullptr && t.build_join_node == nullptr) {
          t.build_join_node = plan.get();
        }
        return t;
      }
      return {};
    }
    case PlanNode::Kind::kAggregate: {
      // Legal only when the order column is one of the GROUP BY keys
      // (§5.2, Figure 7d) — ordering by an aggregate output is not.
      if (std::find(plan->group_columns.begin(), plan->group_columns.end(),
                    column) == plan->group_columns.end()) {
        return {};
      }
      ColumnTrace t = TraceColumnToScan(tables, plan->child, column);
      if (t.scan != nullptr) {
        if (t.via_aggregate) return {};  // nested aggregates unsupported
        t.via_aggregate = true;
        t.agg_node = plan.get();
      }
      return t;
    }
  }
  return {};
}

/// §4.3: can the LIMIT be pushed down to a scan? Row-count-reducing
/// operators block the pushdown, except the build side of a build-preserving
/// outer join. Scans' own predicates are fine: fully-matching partitions
/// account for them.
const PlanNode* TraceLimitTarget(const PlanPtr& plan) {
  switch (plan->kind) {
    case PlanNode::Kind::kScan:
      return plan.get();
    case PlanNode::Kind::kProject:
      return TraceLimitTarget(plan->child);
    case PlanNode::Kind::kJoin:
      if (plan->join_kind == JoinKind::kBuildOuter) {
        return TraceLimitTarget(plan->right);
      }
      return nullptr;
    default:
      return nullptr;
  }
}

LimitClassification MapOutcome(LimitPruneOutcome outcome) {
  switch (outcome) {
    case LimitPruneOutcome::kAlreadyMinimal:
      return LimitClassification::kAlreadyMinimal;
    case LimitPruneOutcome::kNoFullyMatching:
      return LimitClassification::kNoFullyMatching;
    case LimitPruneOutcome::kPrunedToZero:
      return LimitClassification::kPrunedToZero;
    case LimitPruneOutcome::kPrunedToOne:
      return LimitClassification::kPrunedToOne;
    case LimitPruneOutcome::kPrunedToMany:
      return LimitClassification::kPrunedToMany;
  }
  return LimitClassification::kUnsupportedShape;
}

/// True when the subtree is a pure scan/project chain (provenance survives
/// to the TopK operator, enabling the predicate cache).
bool IsScanProjectChain(const PlanPtr& plan) {
  if (plan->kind == PlanNode::Kind::kScan) return true;
  if (plan->kind == PlanNode::Kind::kProject) {
    return IsScanProjectChain(plan->child);
  }
  return false;
}

}  // namespace

Engine::Engine(Catalog* catalog, EngineConfig config)
    : catalog_(catalog), config_(std::move(config)) {}

Engine::~Engine() = default;

Result<OperatorPtr> Engine::Compile(const PlanPtr& plan, CompileContext* ctx) {
  switch (plan->kind) {
    case PlanNode::Kind::kScan: {
      auto table = FindTable(ctx->tables, plan->table);
      if (!table) return Status::NotFound("no table named " + plan->table);
      if (ctx->opts->scan_sets != nullptr) {
        auto it = ctx->opts->scan_sets->find(plan->table);
        if (it != ctx->opts->scan_sets->end()) {
          // Sharded sub-query: execute exactly the coordinator's slice. All
          // compile-time pruning already ran globally on the coordinator,
          // which also pre-bound the predicate against this snapshot's
          // schema — re-binding here would race with the other shards'
          // sub-queries sharing the same predicate tree. No stats: the
          // coordinator meters the gathered stream itself.
#if SNOW_DCHECK_IS_ON
          // Scatter-edge contract: an override scan set must be a subset of
          // this snapshot's partitions. The coordinator pruned against the
          // same Table objects this sub-query binds to, so any out-of-range
          // id means the shard map and snapshot went out of sync.
          for (PartitionId pid : it->second) {
            SNOW_DCHECK_LT(static_cast<size_t>(pid), table->num_partitions());
          }
#endif
          auto op = std::make_unique<TableScanOp>(table, it->second,
                                                  plan->predicate, nullptr);
          if (config_.exec.specialize && ctx->opts->compiled_filters != nullptr) {
            // The coordinator compiled once and shares the program with
            // every shard sub-query; a sub-query never compiles locally.
            auto cf = ctx->opts->compiled_filters->find(plan->table);
            if (cf != ctx->opts->compiled_filters->end() &&
                cf->second != nullptr &&
                cf->second->table_instance == table->instance_id()) {
              op->set_compiled_filter(cf->second);
            }
          }
          if (ctx->profile != nullptr) {
            // Rows/batches/time only: pruning already happened (and was
            // metered) on the coordinator, so this node claims none of it.
            op->set_profile(ctx->profile->NewNode("Scan", plan->table));
            ctx->profiled_ops.push_back(op.get());
          }
          ctx->scans[plan.get()] =
              CompileContext::ScanInfo{op.get(), table, FilterPruneResult{}};
          return OperatorPtr(std::move(op));
        }
      }
      if (plan->predicate) {
        Status s = BindExpr(plan->predicate, table->schema());
        if (!s.ok()) return s;
      }
      ScanSet full = table->FullScanSet();
      ctx->stats.total_partitions += static_cast<int64_t>(full.size());

      FilterPruneResult filter_result;
      const bool compile_time_pruning =
          config_.enable_filter_pruning &&
          config_.filter_pruning_phase == FilterPruningPhase::kCompileTime;
      if (compile_time_pruning) {
        FilterPruner pruner(plan->predicate, config_.filter);
        filter_result = pruner.Prune(*table, full);
        ctx->stats.pruned_by_filter += filter_result.pruned;
      } else {
        filter_result.scan_set = full;
        filter_result.input_partitions = static_cast<int64_t>(full.size());
        if (!plan->predicate) {
          for (PartitionId pid : full) {
            filter_result.fully_matching.push_back(pid);
            filter_result.fully_matching_rows +=
                table->partition_metadata(pid).row_count();
          }
        }
      }

      auto op = std::make_unique<TableScanOp>(table, filter_result.scan_set,
                                              plan->predicate, &ctx->stats);
      if (config_.exec.specialize && config_.exec.specialize_after == 0 &&
          plan->predicate) {
        // Eager mode: specialize every compiled filter at query-compile
        // time, no promotion threshold. The program is per-query (it dies
        // with the operator tree), so it carries no table-instance claim.
        auto program =
            CompileSpecialized(plan->predicate, table->schema(),
                               /*table_instance=*/0, ctx->opts->trace,
                               ctx->compile_span);
        if (program != nullptr) op->set_compiled_filter(std::move(program));
      }
      if (config_.enable_filter_pruning && !compile_time_pruning &&
          plan->predicate) {
        // §3.2: pruning deferred to the execution layer. The pruner must
        // outlive the operator tree; the compile context owns it.
        ctx->runtime_filter_pruners.push_back(
            std::make_unique<FilterPruner>(plan->predicate, config_.filter));
        op->AttachRuntimeFilterPruner(ctx->runtime_filter_pruners.back().get());
      }
      if (ctx->profile != nullptr) {
        ProfileNode* node = ctx->profile->NewNode("Scan", plan->table);
        // Compile-time pruning attribution: this scan's share of the
        // query-wide counters bumped above. Runtime deltas flow in through
        // the profile-stats mirror; LIMIT pruning lands here from kLimit.
        node->pruning.total_partitions += static_cast<int64_t>(full.size());
        node->pruning.pruned_by_filter += filter_result.pruned;
        op->set_profile(node);
        op->set_profile_stats(&node->pruning);
        ctx->profiled_ops.push_back(op.get());
      }
      if (ctx->track_source) op->set_track_source(true);
      if (auto* pending = ctx->FindPendingForScan(plan.get())) {
        op->AttachTopKPruner(pending->pruner);
        ScanSet prepared = pending->pruner->Prepare(
            *table, op->scan_set(), filter_result.fully_matching);
        op->ReplaceScanSet(std::move(prepared));
      }
      ctx->scans[plan.get()] =
          CompileContext::ScanInfo{op.get(), table, std::move(filter_result)};
      return OperatorPtr(std::move(op));
    }

    case PlanNode::Kind::kProject: {
      auto child = Compile(plan->child, ctx);
      if (!child.ok()) return child.status();
      OperatorPtr input = std::move(child).value();
      for (const auto& e : plan->exprs) {
        Status s = BindExpr(e, input->output_schema());
        if (!s.ok()) return s;
      }
      ProfileNode* child_node = input->profile();
      auto project = std::make_unique<ProjectOp>(std::move(input), plan->exprs,
                                                 plan->names);
      if (ctx->profile != nullptr) {
        ProfileNode* node = ctx->profile->NewNode(
            "Project", std::to_string(plan->exprs.size()) + " exprs");
        if (child_node != nullptr) node->children.push_back(child_node);
        project->set_profile(node);
        ctx->profiled_ops.push_back(project.get());
      }
      return OperatorPtr(std::move(project));
    }

    case PlanNode::Kind::kLimit: {
      const PlanNode* target = TraceLimitTarget(plan->child);
      auto child = Compile(plan->child, ctx);
      if (!child.ok()) return child.status();
      OperatorPtr input = std::move(child).value();
      if (config_.enable_limit_pruning) {
        if (target == nullptr) {
          ctx->result->limit_class = LimitClassification::kUnsupportedShape;
        } else {
          auto& info = ctx->scans.at(target);
          // Pruning must cover offset + k rows (Figure 6's convention).
          LimitPruneResult res = LimitPruner::Prune(
              *info.table, info.filter_result,
              plan->limit_k + plan->limit_offset);
          info.op->ReplaceScanSet(res.scan_set);
          ctx->stats.pruned_by_limit += res.pruned;
          // LIMIT pruning acts on the target scan's partitions, so the
          // profile charges it to that source node (keeping the per-node
          // sum reconcilable against the query's PruningStats).
          if (info.op->profile() != nullptr) {
            info.op->profile()->pruning.pruned_by_limit += res.pruned;
          }
          ctx->result->limit_class = MapOutcome(res.outcome);
        }
      }
      ProfileNode* child_node = input->profile();
      auto limit = std::make_unique<LimitOp>(std::move(input), plan->limit_k,
                                             plan->limit_offset);
      if (ctx->profile != nullptr) {
        ProfileNode* node = ctx->profile->NewNode(
            "Limit", "k=" + std::to_string(plan->limit_k) + " offset=" +
                         std::to_string(plan->limit_offset));
        if (child_node != nullptr) node->children.push_back(child_node);
        limit->set_profile(node);
        ctx->profiled_ops.push_back(limit.get());
      }
      return OperatorPtr(std::move(limit));
    }

    case PlanNode::Kind::kTopK: {
      // Plan analysis must run before the child compiles so the scan (and
      // join / aggregate) pick up their pruning attachments.
      ColumnTrace trace;
      TopKPruner* pruner = nullptr;
      if (config_.enable_topk_pruning) {
        trace = TraceColumnToScan(ctx->tables, plan->child, plan->order_column);
        if (trace.scan != nullptr) {
          TopKPrunerConfig pcfg;
          pcfg.k = plan->limit_k;
          pcfg.descending = plan->descending;
          pcfg.order_strategy = config_.topk_order_strategy;
          pcfg.boundary_init = config_.topk_boundary_init;
          pcfg.inclusive_updates = !trace.via_aggregate;
          // Snapshot lookup can't fail: a non-null trace.scan means the
          // trace already found this table in the snapshot.
          auto table = FindTable(ctx->tables, trace.scan->table);
          auto col = table->schema().FindColumn(trace.column);
          ctx->pruners.push_back(
              std::make_unique<TopKPruner>(pcfg, col.value()));
          pruner = ctx->pruners.back().get();
          CompileContext::PendingTopK pending;
          pending.scan_node = trace.scan;
          pending.build_join_node = trace.build_join_node;
          pending.agg_node = trace.agg_node;
          pending.scan_column = trace.column;
          pending.pruner = pruner;
          pending.k = plan->limit_k;
          pending.descending = plan->descending;
          ctx->pending_topk.push_back(pending);
          ctx->result->topk_pruning_attached = true;
        }
      }

      // §8.2 predicate cache: only for scan/project chains (provenance).
      bool cache_eligible = config_.predicate_cache != nullptr &&
                            trace.scan != nullptr &&
                            trace.build_join_node == nullptr &&
                            trace.agg_node == nullptr &&
                            IsScanProjectChain(plan->child);
      if (cache_eligible) ctx->track_source = true;

      auto child = Compile(plan->child, ctx);
      if (!child.ok()) return child.status();
      OperatorPtr input = std::move(child).value();

      std::string cache_fingerprint;
      std::shared_ptr<PredicateCache::PopulateTicket> cache_ticket;
      if (cache_eligible) {
        cache_fingerprint = plan->Fingerprint();
        auto& info = ctx->scans.at(trace.scan);
        // Coalesced lookup: concurrent identical queries block here while
        // the first one computes and publishes, instead of all recomputing.
        // The ticket is held by the post-run hook so the population is
        // released (publish via Insert, or abandon on any error path) no
        // matter how execution ends. Only the first cache-eligible scan of
        // a plan may coalesce (own a ticket or wait); any further one
        // falls back to the non-blocking lookup, so a compile never waits
        // while holding a ticket — see CompileContext::cache_populate_held.
        std::optional<std::vector<PartitionId>> cached;
        if (!ctx->cache_populate_held) {
          cache_ticket = std::make_shared<PredicateCache::PopulateTicket>();
          cached = config_.predicate_cache->LookupOrPopulate(
              cache_fingerprint, *info.table, cache_ticket.get());
          if (cache_ticket->owns()) ctx->cache_populate_held = true;
        } else {
          cached =
              config_.predicate_cache->Lookup(cache_fingerprint, *info.table);
        }
        if (cached.has_value()) {
          // Restrict the scan set to cached ∪ newly-added partitions,
          // preserving the pruner-prepared order.
          std::vector<PartitionId> keep;
          for (PartitionId pid : info.op->scan_set()) {
            if (std::find(cached->begin(), cached->end(), pid) !=
                cached->end()) {
              keep.push_back(pid);
            }
          }
          info.op->ReplaceScanSet(ScanSet(std::move(keep)));
          ctx->result->predicate_cache_hit = true;
        }
        if (config_.exec.specialize && config_.exec.specialize_after > 0 &&
            trace.scan->predicate != nullptr) {
          // Promotion lifecycle: every repeat of a cached query shape bumps
          // the entry's hit count; past the threshold the entry's predicate
          // is compiled exactly once (under the cache mutex — concurrent
          // promoters share the one program) and attached to this query's
          // scan. Below the threshold an already-promoted entry still
          // serves its program, so one stream's promotion accelerates all.
          const int64_t entry_hits =
              config_.predicate_cache->NoteHit(cache_fingerprint);
          std::shared_ptr<const jit::CompiledPredicate> program;
          if (entry_hits >= config_.exec.specialize_after) {
            const ExprPtr& predicate = trace.scan->predicate;
            const Table& table = *info.table;
            Trace* query_trace = ctx->opts->trace;
            const uint32_t parent_span = ctx->compile_span;
            program = config_.predicate_cache->GetOrCompileProgram(
                cache_fingerprint, table,
                [&predicate, &table, query_trace, parent_span]() {
                  return CompileSpecialized(predicate, table.schema(),
                                            table.instance_id(), query_trace,
                                            parent_span);
                });
          } else if (entry_hits > 0) {
            program =
                config_.predicate_cache->GetProgram(cache_fingerprint,
                                                    *info.table);
          }
          if (program != nullptr) {
            info.op->set_compiled_filter(std::move(program));
          }
        }
      }

      auto idx = input->output_schema().FindColumn(plan->order_column);
      if (!idx.has_value()) {
        return Status::NotFound("no order column " + plan->order_column);
      }
      // The boundary publisher: the outer TopK for plain/probe-side shapes;
      // the replicated build-side TopK or the aggregate for the others.
      TopKPruner* publisher = pruner;
      if (trace.build_join_node != nullptr) publisher = nullptr;
      if (trace.agg_node != nullptr) {
        publisher = nullptr;
        auto agg_it = ctx->agg_ops.find(trace.agg_node);
        if (agg_it != ctx->agg_ops.end()) {
          const auto& gcols = trace.agg_node->group_columns;
          auto git = std::find(gcols.begin(), gcols.end(), plan->order_column);
          if (git != gcols.end()) {
            agg_it->second->EnableGroupLimit(
                static_cast<size_t>(git - gcols.begin()), plan->descending,
                plan->limit_k, pruner);
          }
        }
      }
      ProfileNode* child_node = input->profile();
      auto topk = std::make_unique<TopKOp>(std::move(input), idx.value(),
                                           plan->descending, plan->limit_k,
                                           publisher);
      ctx->topk_ops.push_back(topk.get());
      if (ctx->profile != nullptr) {
        ProfileNode* node = ctx->profile->NewNode(
            "TopK", plan->order_column + " k=" + std::to_string(plan->limit_k) +
                        (plan->descending ? " desc" : " asc"));
        if (child_node != nullptr) node->children.push_back(child_node);
        topk->set_profile(node);
        ctx->profiled_ops.push_back(topk.get());
      }
      if (cache_eligible) {
        // Record contributions post-execution; stash what we need. Insert
        // publishes the coalesced population; if the hook is destroyed
        // without running, the captured ticket abandons it instead.
        TopKOp* topk_ptr = topk.get();
        auto& info = ctx->scans.at(trace.scan);
        post_run_hooks_.push_back([this, topk_ptr, cache_fingerprint,
                                   cache_ticket, table = info.table,
                                   column = trace.column]() {
          // Injection site: the population write-back fails after a
          // successful query (cache node fault). Returning before Insert
          // leaves the captured ticket to die with the hook — abandonment
          // wakes coalesced waiters, who fall back to populating themselves.
          if (SNOW_FAILPOINT("predcache.populate")) return;
          config_.predicate_cache->Insert(cache_fingerprint, *table, column,
                                          topk_ptr->contributing_partitions());
        });
      }
      return OperatorPtr(std::move(topk));
    }

    case PlanNode::Kind::kSort: {
      auto child = Compile(plan->child, ctx);
      if (!child.ok()) return child.status();
      OperatorPtr input = std::move(child).value();
      auto idx = input->output_schema().FindColumn(plan->order_column);
      if (!idx.has_value()) {
        return Status::NotFound("no order column " + plan->order_column);
      }
      ProfileNode* child_node = input->profile();
      auto sort = std::make_unique<SortOp>(std::move(input), idx.value(),
                                           plan->descending);
      ctx->sort_ops.push_back(sort.get());
      if (ctx->profile != nullptr) {
        ProfileNode* node = ctx->profile->NewNode(
            "Sort",
            plan->order_column + (plan->descending ? " desc" : " asc"));
        if (child_node != nullptr) node->children.push_back(child_node);
        sort->set_profile(node);
        ctx->profiled_ops.push_back(sort.get());
      }
      return OperatorPtr(std::move(sort));
    }

    case PlanNode::Kind::kJoin: {
      auto left = Compile(plan->left, ctx);
      if (!left.ok()) return left.status();
      OperatorPtr probe = std::move(left).value();
      auto right = Compile(plan->right, ctx);
      if (!right.ok()) return right.status();
      OperatorPtr build = std::move(right).value();

      // Figure 7c: replicate the TopK onto the preserved build side.
      if (auto* pending = ctx->FindPendingForJoinBuild(plan.get())) {
        auto idx = build->output_schema().FindColumn(pending->scan_column);
        if (idx.has_value()) {
          ProfileNode* build_node = build->profile();
          auto replicated = std::make_unique<TopKOp>(
              std::move(build), idx.value(), pending->descending, pending->k,
              pending->pruner);
          ctx->topk_ops.push_back(replicated.get());
          if (ctx->profile != nullptr) {
            ProfileNode* node = ctx->profile->NewNode(
                "TopK", pending->scan_column + " k=" +
                            std::to_string(pending->k) + " (replicated)");
            if (build_node != nullptr) node->children.push_back(build_node);
            replicated->set_profile(node);
            ctx->profiled_ops.push_back(replicated.get());
          }
          build = std::move(replicated);
        }
      }

      auto pidx = probe->output_schema().FindColumn(plan->left_key);
      auto bidx = build->output_schema().FindColumn(plan->right_key);
      if (!pidx.has_value() || !bidx.has_value()) {
        return Status::NotFound("join key not found: " + plan->left_key + "/" +
                                plan->right_key);
      }
      HashJoinOp::Config jcfg;
      jcfg.enable_partition_pruning = config_.enable_join_pruning;
      jcfg.summary_kind = config_.join_summary_kind;
      jcfg.summary_budget_bytes = config_.join_summary_budget_bytes;
      jcfg.row_level_bloom = config_.join_row_level_bloom;
      ProfileNode* probe_node = probe->profile();
      ProfileNode* build_child_node = build->profile();
      auto join = std::make_unique<HashJoinOp>(std::move(probe),
                                               std::move(build), pidx.value(),
                                               bidx.value(), plan->join_kind,
                                               jcfg);
      ctx->join_ops.push_back(join.get());
      if (ctx->profile != nullptr) {
        ProfileNode* node = ctx->profile->NewNode(
            "HashJoin", plan->left_key + "=" + plan->right_key);
        if (probe_node != nullptr) node->children.push_back(probe_node);
        if (build_child_node != nullptr) {
          node->children.push_back(build_child_node);
        }
        join->set_profile(node);
        ctx->profiled_ops.push_back(join.get());
      }
      // §6: wire the probe-side scan for partition-level summary pruning.
      // Not for probe-preserved (LEFT OUTER) joins: their unmatched probe
      // rows are emitted null-padded, so a probe partition that cannot
      // match the build side still contributes rows and must not be pruned.
      if (config_.enable_join_pruning &&
          plan->join_kind != JoinKind::kProbeOuter) {
        ColumnTrace key_trace =
            TraceColumnToScan(ctx->tables, plan->left, plan->left_key);
        if (key_trace.scan != nullptr && key_trace.agg_node == nullptr &&
            key_trace.build_join_node == nullptr) {
          auto it = ctx->scans.find(key_trace.scan);
          if (it != ctx->scans.end()) {
            auto col =
                it->second.table->schema().FindColumn(key_trace.column);
            if (col.has_value()) {
              join->AttachProbeScan(it->second.op, col.value());
            }
          }
        }
      }
      return OperatorPtr(std::move(join));
    }

    case PlanNode::Kind::kAggregate: {
      auto child = Compile(plan->child, ctx);
      if (!child.ok()) return child.status();
      OperatorPtr input = std::move(child).value();
      std::vector<size_t> group_cols;
      for (const auto& name : plan->group_columns) {
        auto idx = input->output_schema().FindColumn(name);
        if (!idx.has_value()) return Status::NotFound("no column " + name);
        group_cols.push_back(idx.value());
      }
      std::vector<AggSpec> aggs;
      for (const auto& spec : plan->aggregates) {
        AggSpec a;
        a.func = spec.func;
        a.name = spec.output_name;
        if (spec.func != AggFunc::kCount) {
          auto idx = input->output_schema().FindColumn(spec.column);
          if (!idx.has_value()) {
            return Status::NotFound("no column " + spec.column);
          }
          a.column = idx.value();
        }
        aggs.push_back(std::move(a));
      }
      ProfileNode* child_node = input->profile();
      auto agg = std::make_unique<HashAggregateOp>(
          std::move(input), std::move(group_cols), std::move(aggs));
      ctx->agg_ops[plan.get()] = agg.get();
      if (ctx->profile != nullptr) {
        ProfileNode* node = ctx->profile->NewNode(
            "HashAggregate",
            "groups=" + std::to_string(plan->group_columns.size()) +
                " aggs=" + std::to_string(plan->aggregates.size()));
        if (child_node != nullptr) node->children.push_back(child_node);
        agg->set_profile(node);
        ctx->profiled_ops.push_back(agg.get());
      }
      return OperatorPtr(std::move(agg));
    }
  }
  return Status::Internal("unknown plan node");
}

Result<QueryResult> Engine::Execute(const PlanPtr& plan,
                                    const std::atomic<bool>* cancel) {
  ExecuteOptions opts;
  opts.cancel = cancel;
  return Execute(plan, opts);
}

Result<QueryResult> Engine::Execute(const PlanPtr& plan,
                                    const ExecuteOptions& opts) {
  if (!plan) return Status::InvalidArgument("null plan");
  if (DeadlinePassed(opts.deadline_ns)) {
    // Dead on arrival: don't spend compile work on a query whose caller has
    // already given up on the answer.
    return Status::DeadlineExceeded("deadline passed before execution");
  }
  const std::atomic<bool>* cancel = opts.cancel;
  QueryResult result;
  CompileContext ctx;
  ctx.result = &result;
  ctx.opts = &opts;
  post_run_hooks_.clear();

  // Traced execution: the whole call becomes one "query" span with compile
  // and execute children, and the compiled operators meter themselves into
  // a QueryProfile. Untraced queries skip every site on a null test.
  ScopedSpan query_span(opts.trace, "query");
  std::shared_ptr<QueryProfile> profile;
  if (opts.trace != nullptr) {
    profile = std::make_shared<QueryProfile>();
    ctx.profile = profile.get();
  }
  const uint32_t compile_span =
      opts.trace != nullptr ? opts.trace->BeginSpan("compile", query_span.id())
                            : 0;
  ctx.compile_span = compile_span;

  // Snapshot every referenced table once: DML (ReplaceTable/DropTable) that
  // lands after this point does not affect this query. An injected snapshot
  // (shard sub-queries) extends the same guarantee across a whole scatter.
  if (opts.tables != nullptr) {
    ctx.tables = *opts.tables;
  } else {
    CollectTables(*catalog_, plan, &ctx.tables);
  }

  auto compiled = Compile(plan, &ctx);
  if (opts.trace != nullptr) {
    // Compile-time pruning decisions, readable straight off the span.
    opts.trace->AnnotateInt(compile_span, "total_partitions",
                            ctx.stats.total_partitions);
    opts.trace->AnnotateInt(compile_span, "pruned_by_filter",
                            ctx.stats.pruned_by_filter);
    opts.trace->AnnotateInt(compile_span, "pruned_by_limit",
                            ctx.stats.pruned_by_limit);
    opts.trace->EndSpan(compile_span);
  }
  if (!compiled.ok()) {
    // Dropping the hooks releases any coalescing ticket a partial compile
    // acquired, so cache waiters are never stranded by a failed query.
    post_run_hooks_.clear();
    return compiled.status();
  }
  OperatorPtr root = std::move(compiled).value();

  // Partition-parallel execution (§2's "highly parallel execution layer"):
  // fan every scan's post-pruning scan set out across the worker pool. An
  // injected pool (service mode) is shared with other queries and its width
  // overrides num_threads; otherwise the engine lazily owns a private pool.
  // A one-worker fleet leaves the scans untouched — the serial path runs
  // bit-for-bit as before, with no pool or scheduler involved.
  ThreadPool* pool = config_.exec.pool;
  const size_t num_threads =
      pool != nullptr ? pool->num_threads()
      : config_.exec.num_threads > 0
          ? static_cast<size_t>(config_.exec.num_threads)
          : ThreadPool::DefaultConcurrency();
  if (num_threads > 1 || config_.exec.force_parallel) {
    if (pool == nullptr) {
      if (!pool_ || pool_->num_threads() != num_threads) {
        pool_ = std::make_unique<ThreadPool>(num_threads);
      }
      pool = pool_.get();
    }
    // The default window budgets against the executing pool's real width —
    // for a shared pool that is the service-wide worker fleet, not the
    // per-query thread knob.
    const size_t window = config_.exec.morsel_window > 0
                              ? config_.exec.morsel_window
                              : pool->num_threads() * 4;
    for (auto& [node, info] : ctx.scans) {
      info.op->EnableParallel(pool, window, config_.exec.morsel_min_rows);
    }
    if (config_.exec.parallel_preagg) {
      // Aggregates sitting directly on a parallel scan may fuse: workers
      // pre-aggregate their morsel and ship a partial group map instead of
      // rows. The operator itself checks the exact-merge eligibility rules.
      for (auto& [node, agg] : ctx.agg_ops) agg->EnableParallelPreAgg();
    }
    if (config_.exec.parallel_pipeline) {
      // Pipeline-parallel operators above the scan: each checks at Open()
      // whether its input really is a parallel scan (and, for top-k, k > 0)
      // before installing its worker stage. Note a scan feeds at most one
      // stage: an aggregate's fold, a join build, a top-k filter, and a
      // sort run can never compete for the same scan in one plan shape.
      for (auto* op : ctx.join_ops) op->EnablePipelineParallel();
      for (auto* op : ctx.topk_ops) op->EnablePipelineParallel();
      for (auto* op : ctx.sort_ops) op->EnablePipelineParallel();
    }
  }

  // Per-query cancellation: every scan polls the flag (serial and parallel
  // alike), so pipeline breakers draining a scan abort within one
  // partition/morsel instead of at operator boundaries.
  if (cancel != nullptr) {
    for (auto& [node, info] : ctx.scans) info.op->set_cancel_flag(cancel);
    if (cancel->load(std::memory_order_relaxed)) {
      // Dropping the hooks abandons any predicate-cache population ticket.
      post_run_hooks_.clear();
      return Status::Cancelled("query cancelled before execution");
    }
  }
  // Per-query deadline: rides the same scan plumbing as cancellation, so a
  // query past its deadline frees its pool share within ~a morsel window.
  if (opts.deadline_ns != 0) {
    for (auto& [node, info] : ctx.scans) {
      info.op->set_deadline_ns(opts.deadline_ns);
    }
  }

  for (const auto& [node, info] : ctx.scans) {
    result.scan_set_bytes +=
        static_cast<int64_t>(info.op->scan_set().SerializedBytes());
  }

  // The execute span parents every operator-recorded span: pipeline-breaker
  // drains, join builds, and the workers' morsel spans (merged at delivery).
  // Handing the trace to the operators must precede Open() — scans snapshot
  // the pointer before their schedulers start fanning out.
  ScopedSpan exec_span(opts.trace, "execute", query_span.id());
  if (opts.trace != nullptr) {
    for (Operator* op : ctx.profiled_ops) {
      op->set_trace(opts.trace, exec_span.id());
    }
  }

  auto t0 = std::chrono::steady_clock::now();
  root->Open();
  Batch batch;
  while (root->Next(&batch)) {
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) break;
    if (DeadlinePassed(opts.deadline_ns)) break;
    if (opts.collect_batch_rows) result.batch_rows.push_back(batch.rows.size());
    for (auto& row : batch.rows) result.rows.push_back(std::move(row));
  }
  root->Close();
  result.wall_ms = MsSince(t0);

  if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
    // The operator tree tore down above (Close joins any in-flight
    // workers); partial output is discarded, tickets are abandoned.
    post_run_hooks_.clear();
    return Status::Cancelled("query cancelled");
  }

  // A scan that stopped on a load/dispatch fault reported end-of-scan to its
  // consumers; surface the fault instead of the truncated result. Checked
  // before the deadline so an injected (retryable) error is not masked by a
  // deadline that expired during teardown.
  for (const auto& [node, info] : ctx.scans) {
    if (!info.op->error().ok()) {
      post_run_hooks_.clear();
      return info.op->error();
    }
  }

  if (DeadlinePassed(opts.deadline_ns)) {
    post_run_hooks_.clear();
    return Status::DeadlineExceeded("deadline exceeded during execution");
  }

  for (auto& hook : post_run_hooks_) hook();
  post_run_hooks_.clear();

  result.schema = root->output_schema();
  result.stats = ctx.stats;
  // Debug-build soundness audit: no pruning level may claim more partitions
  // than the query had (see PruningStats::DCheckInvariants).
  result.stats.DCheckInvariants();

  if (profile != nullptr) {
    profile->root = root->profile();
    profile->stage_tasks = opts.trace->stage_tasks();
    profile->barrier_tasks = opts.trace->barrier_tasks();
    result.profile = profile;
#if SNOW_DCHECK_IS_ON
    if (opts.scan_sets == nullptr) {
      // Per-node attribution must reconcile exactly: the profile's summed
      // pruning counters are the query's PruningStats, redistributed over
      // the source nodes. (Scan-set overrides skip compile-time metering —
      // the coordinator accounts the whole sharded query itself.)
      const PruningStats sum = profile->SumPruning();
      SNOW_DCHECK_EQ(sum.total_partitions, result.stats.total_partitions);
      SNOW_DCHECK_EQ(sum.pruned_by_filter, result.stats.pruned_by_filter);
      SNOW_DCHECK_EQ(sum.pruned_by_limit, result.stats.pruned_by_limit);
      SNOW_DCHECK_EQ(sum.pruned_by_join, result.stats.pruned_by_join);
      SNOW_DCHECK_EQ(sum.pruned_by_topk, result.stats.pruned_by_topk);
      SNOW_DCHECK_EQ(sum.scanned_partitions, result.stats.scanned_partitions);
      SNOW_DCHECK_EQ(sum.scanned_rows, result.stats.scanned_rows);
      SNOW_DCHECK_EQ(sum.speculative_loads, result.stats.speculative_loads);
    }
#endif
  }
  return result;
}

}  // namespace snowprune
