#ifndef SNOWPRUNE_EXEC_PLAN_H_
#define SNOWPRUNE_EXEC_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "exec/agg_op.h"
#include "exec/join_op.h"
#include "expr/expr.h"

namespace snowprune {

struct PlanNode;
using PlanPtr = std::shared_ptr<PlanNode>;

/// Aggregate description at the plan level (column by name).
struct AggPlanSpec {
  AggFunc func;
  std::string column;  ///< Ignored for kCount (pass "").
  std::string output_name;
};

/// A logical query plan. Built via the factory functions below (the
/// engine's plan-building API in lieu of a SQL frontend), compiled and
/// executed by Engine. Scans carry their WHERE clause; the engine performs
/// compile-time pruning, LIMIT pushdown (§4.3), top-k pruner attachment
/// (Figure 7), and join-summary wiring (§6) during compilation.
struct PlanNode {
  enum class Kind { kScan, kProject, kLimit, kTopK, kJoin, kAggregate, kSort };

  Kind kind;

  // kScan
  std::string table;
  ExprPtr predicate;  ///< May be null.

  // kProject
  std::vector<ExprPtr> exprs;
  std::vector<std::string> names;

  // kLimit / kTopK / kSort
  int64_t limit_k = 0;
  int64_t limit_offset = 0;  ///< kLimit only (OFFSET clause).
  std::string order_column;
  bool descending = true;

  // kJoin: left = probe, right = build.
  JoinKind join_kind = JoinKind::kInner;
  std::string left_key;
  std::string right_key;

  // kAggregate
  std::vector<std::string> group_columns;
  std::vector<AggPlanSpec> aggregates;

  // Children: unary operators use child; joins use left/right.
  PlanPtr child;
  PlanPtr left;
  PlanPtr right;

  /// Canonical plan-shape fingerprint (used by the predicate cache and the
  /// Figure 12 repetitiveness analysis).
  std::string Fingerprint() const;
};

/// SELECT * FROM `table` [WHERE predicate].
PlanPtr ScanPlan(std::string table, ExprPtr predicate = nullptr);
/// SELECT exprs AS names FROM child.
PlanPtr ProjectPlan(PlanPtr child, std::vector<ExprPtr> exprs,
                    std::vector<std::string> names);
/// ... LIMIT k [OFFSET offset]. Pruning accounts for offset + k rows
/// (Figure 6's convention: "if the query contained an OFFSET, the value for
/// the offset is included" in k).
PlanPtr LimitPlan(PlanPtr child, int64_t k, int64_t offset = 0);
/// ... ORDER BY order_column [DESC|ASC] LIMIT k.
PlanPtr TopKPlan(PlanPtr child, std::string order_column, bool descending,
                 int64_t k);
/// probe JOIN build ON probe.left_key = build.right_key.
PlanPtr JoinPlan(PlanPtr probe, PlanPtr build, std::string left_key,
                 std::string right_key, JoinKind kind = JoinKind::kInner);
/// GROUP BY group_columns with aggregates.
PlanPtr AggregatePlan(PlanPtr child, std::vector<std::string> group_columns,
                      std::vector<AggPlanSpec> aggregates);
/// ... ORDER BY order_column [DESC|ASC] (full sort, no limit).
PlanPtr SortPlan(PlanPtr child, std::string order_column, bool descending);

}  // namespace snowprune

#endif  // SNOWPRUNE_EXEC_PLAN_H_
