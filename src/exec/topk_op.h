#ifndef SNOWPRUNE_EXEC_TOPK_OP_H_
#define SNOWPRUNE_EXEC_TOPK_OP_H_

#include <utility>
#include <vector>

#include "core/topk_pruner.h"
#include "exec/operator.h"
#include "exec/scan_op.h"

namespace snowprune {

/// Heap-based top-k (§5, "Standard Heap-Based Approach") extended with
/// boundary publication: whenever the heap is full, its weakest element is
/// pushed to the attached TopKPruner, which the table scan in the same
/// pipeline consults before loading further partitions (§5.2).
///
/// When the input is a table scan the operator consumes ColumnBatches
/// directly: the order-key column is read unboxed for the NULL test and the
/// against-the-boundary comparison, and a row is boxed only at the moment
/// it actually enters the heap — at most k rows live boxed at any time, so
/// the hot loop over the (typically much larger) rejected remainder never
/// constructs a Value. The consumer-side boundary re-check that keeps
/// parallel results and stats byte-identical to serial lives in the scan's
/// ordered delivery (TableScanOp::NextColumns) and is unaffected.
///
/// Rows whose order key is NULL never enter the heap (and thus never appear
/// in results). Output rows are emitted best-first.
class TopKOp : public Operator {
 public:
  /// `pruner` may be null (pruning disabled); the operator then degrades to
  /// the plain heap scan every other system uses.
  TopKOp(OperatorPtr input, size_t order_column, bool descending, int64_t k,
         TopKPruner* pruner);

  void Open() override;
  bool Next(Batch* out) override;
  void Close() override { input_->Close(); }
  const Schema& output_schema() const override {
    return input_->output_schema();
  }

  /// Partitions that contributed rows to the final result; recorded for the
  /// top-k predicate cache (§8.2) when the input carries provenance.
  const std::vector<PartitionId>& contributing_partitions() const {
    return contributing_;
  }

 private:
  struct HeapRow {
    Row row;
    PartitionId source;
  };

  /// True if `a` is weaker than `b` under the query's direction (min-heap
  /// root = weakest element = the boundary).
  bool Weaker(const Value& a, const Value& b) const;

  /// Consumes the columnar input (scan), feeding the heap unboxed.
  void ConsumeColumns();
  /// Consumes the boxed input.
  void ConsumeRows();
  /// Publishes the boundary once the heap is full (§5.2).
  void MaybePublishBoundary();
  /// Sorts the heap best-first and emits it.
  bool EmitHeap(Batch* out);

  OperatorPtr input_;
  size_t order_column_;
  bool descending_;
  int64_t k_;
  TopKPruner* pruner_;
  /// Set when the input is a TableScanOp consumed via NextColumns().
  TableScanOp* columnar_input_ = nullptr;
  std::vector<HeapRow> heap_;
  std::vector<PartitionId> contributing_;
  bool emitted_ = false;
};

}  // namespace snowprune

#endif  // SNOWPRUNE_EXEC_TOPK_OP_H_
