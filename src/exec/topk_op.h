#ifndef SNOWPRUNE_EXEC_TOPK_OP_H_
#define SNOWPRUNE_EXEC_TOPK_OP_H_

#include <utility>
#include <vector>

#include "common/mutex.h"
#include "core/topk_pruner.h"
#include "exec/operator.h"
#include "exec/scan_op.h"

namespace snowprune {

/// Heap-based top-k (§5, "Standard Heap-Based Approach") extended with
/// boundary publication: whenever the heap is full, its weakest element is
/// pushed to the attached TopKPruner, which the table scan in the same
/// pipeline consults before loading further partitions (§5.2).
///
/// When the input is a table scan the operator consumes ColumnBatches
/// directly: the order-key column is read unboxed for the NULL test and the
/// against-the-boundary comparison, and a row is boxed only at the moment
/// it actually enters the heap — at most k rows live boxed at any time, so
/// the hot loop over the (typically much larger) rejected remainder never
/// constructs a Value. The consumer-side boundary re-check that keeps
/// parallel results and stats byte-identical to serial lives in the scan's
/// ordered delivery (TableScanOp::NextColumns) and is unaffected.
///
/// Pipeline-parallel mode (EnablePipelineParallel + a parallel scan input):
/// the boundary test over every row — the dominant cost — moves onto the
/// scan workers as a per-morsel candidate filter. Each worker keeps a
/// bounded heap over its morsel and a snapshot of the consumer heap's
/// full-heap root; a row is dropped only when one of two *proofs* shows
/// serial execution would also have rejected it at that row's position:
///   1. it is not strictly better than a root the consumer heap had when
///      it was already full (boundaries only tighten, so the serial heap's
///      root at the row's consumption position is at least as strict), or
///   2. at least k earlier rows of the same morsel are at least as good
///      (so the serial heap is full there with an even stricter root).
/// The consumer replays only the surviving candidates — in row order —
/// through the real heap, so the heap's evolution, every published
/// boundary, all pruning stats, and the emitted rows are byte-identical to
/// serial execution at any thread count.
///
/// Rows whose order key is NULL never enter the heap (and thus never appear
/// in results). Output rows are emitted best-first.
class TopKOp : public Operator {
 public:
  /// `pruner` may be null (pruning disabled); the operator then degrades to
  /// the plain heap scan every other system uses.
  TopKOp(OperatorPtr input, size_t order_column, bool descending, int64_t k,
         TopKPruner* pruner);
  /// Joins any in-flight scan workers whose filter stage reads this
  /// operator's shared-root members (member destruction order tears those
  /// down before input_; Close() normally joins first but unwinding can
  /// skip it — TableScanOp::Close() is idempotent).
  ~TopKOp() override;

  /// Engine hook: allow the worker-side candidate-filter stage when the
  /// input is a parallel table scan.
  void EnablePipelineParallel() { pipeline_parallel_ = true; }

  void Open() override;
  bool Next(Batch* out) override;
  void Close() override { input_->Close(); }
  const Schema& output_schema() const override {
    return input_->output_schema();
  }

  /// Partitions that contributed rows to the final result; recorded for the
  /// top-k predicate cache (§8.2) when the input carries provenance.
  const std::vector<PartitionId>& contributing_partitions() const {
    return contributing_;
  }

 private:
  bool NextInner(Batch* out);

  struct HeapRow {
    Row row;
    PartitionId source;
  };

  /// True if `a` is weaker than `b` under the query's direction (min-heap
  /// root = weakest element = the boundary).
  bool Weaker(const Value& a, const Value& b) const;

  /// Installs the worker-side candidate filter on the scan input.
  void InstallFilterStage();
  /// Consumes the columnar input (scan), feeding the heap unboxed.
  void ConsumeColumns();
  /// Consumes the boxed input.
  void ConsumeRows();
  /// Publishes the boundary once the heap is full (§5.2).
  void MaybePublishBoundary();
  /// Sorts the heap best-first and emits it.
  bool EmitHeap(Batch* out);

  OperatorPtr input_;
  size_t order_column_;
  bool descending_;
  int64_t k_;
  TopKPruner* pruner_;
  bool pipeline_parallel_ = false;
  /// Set when the input is a TableScanOp consumed via NextColumns().
  TableScanOp* columnar_input_ = nullptr;
  /// True while the candidate-filter stage is installed this execution.
  bool filter_stage_active_ = false;
  std::vector<HeapRow> heap_;
  std::vector<PartitionId> contributing_;
  bool emitted_ = false;

  /// The consumer heap's root, shared with worker filter stages. Written
  /// by the consumer only once the heap is full; monotonically tightening.
  /// Distinct from the TopKPruner boundary: the pruner may hold a stricter
  /// §5.4 *initialization* bound, which proves final-result membership but
  /// not per-row heap admission — filtering against it would change the
  /// heap's evolution (and the published-boundary sequence) vs. serial.
  Mutex shared_root_mutex_;
  bool shared_root_full_ SNOW_GUARDED_BY(shared_root_mutex_) = false;
  Value shared_root_ SNOW_GUARDED_BY(shared_root_mutex_);
  /// True once a NaN order key entered the heap. NaN ties everything under
  /// Value::Compare, so a NaN inside the heap voids root monotonicity (a
  /// replacement can surface a buried weaker element) — the shared root is
  /// then never published and workers filter nothing. A NaN can only enter
  /// while the heap is FILLING (a replacement needs strictly-better, which
  /// NaN never is), so the flag is always set before the first possible
  /// publication: no worker can ever hold an unsound snapshot.
  bool heap_has_nan_ = false;
};

}  // namespace snowprune

#endif  // SNOWPRUNE_EXEC_TOPK_OP_H_
