#include "exec/column_batch.h"

#include <atomic>

namespace snowprune {

namespace {
std::atomic<int64_t> g_materialize_calls{0};
}  // namespace

int64_t ColumnBatch::materialize_calls() {
  return g_materialize_calls.load(std::memory_order_relaxed);
}

void ColumnBatch::MaterializeInto(Batch* out, bool track_source) const {
  g_materialize_calls.fetch_add(1, std::memory_order_relaxed);
  out->rows.clear();
  out->source.clear();
  if (partition_ == nullptr) return;
  const size_t n = num_rows();
  const size_t num_cols = partition_->num_columns();
  out->rows.reserve(n);
  if (track_source) out->source.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const size_t r = row_index(i);
    Row row;
    row.reserve(num_cols);
    for (size_t c = 0; c < num_cols; ++c) {
      row.push_back(partition_->column(c).ValueAt(r));
    }
    out->rows.push_back(std::move(row));
    if (track_source) out->source.push_back(source_);
  }
}

void ColumnBatch::AppendRowValues(uint32_t r, Row* out) const {
  const size_t num_cols = partition_->num_columns();
  out->reserve(out->size() + num_cols);
  for (size_t c = 0; c < num_cols; ++c) {
    out->push_back(partition_->column(c).ValueAt(r));
  }
}

}  // namespace snowprune
