#include "exec/join_op.h"

namespace snowprune {

const char* ToString(JoinKind kind) {
  switch (kind) {
    case JoinKind::kInner: return "inner";
    case JoinKind::kProbeOuter: return "probe-outer";
    case JoinKind::kBuildOuter: return "build-outer";
  }
  return "?";
}

namespace {

/// HashValue of a non-null column cell, without boxing it. Dispatches to
/// the per-type component hashes HashValue itself uses, so a cell and its
/// boxed Value can never hash differently.
uint64_t HashCell(const ColumnVector& col, uint32_t r) {
  switch (col.type()) {
    case DataType::kBool: return HashBoolValue(col.BoolAt(r));
    case DataType::kInt64: return HashInt64Value(col.Int64At(r));
    case DataType::kFloat64: return HashFloat64Value(col.Float64At(r));
    case DataType::kString: return HashStringValue(col.StringAt(r));
  }
  return 0;
}

/// "Equal" exactly as Value::Compare reports 0 for doubles: neither less
/// nor greater. This deliberately differs from operator== on NaN (NaN
/// compares "equal" to everything under Value::Compare); the columnar and
/// boxed join paths must make identical decisions on every input.
bool DoubleCompareEqual(double x, double y) { return !(x < y) && !(x > y); }

/// Join-key equality of two non-null cells; mirrors the boxed check
/// (is_string/is_bool kind agreement, then Value::Compare == 0: int64 pairs
/// compare exactly, mixed numerics through double).
bool CellsJoinEqual(const ColumnVector& a, uint32_t ar, const ColumnVector& b,
                    uint32_t br) {
  const bool a_str = a.type() == DataType::kString;
  const bool b_str = b.type() == DataType::kString;
  const bool a_bool = a.type() == DataType::kBool;
  const bool b_bool = b.type() == DataType::kBool;
  if (a_str != b_str || a_bool != b_bool) return false;
  if (a_str) return a.StringAt(ar) == b.StringAt(br);
  if (a_bool) return a.BoolAt(ar) == b.BoolAt(br);
  if (a.type() == DataType::kInt64 && b.type() == DataType::kInt64) {
    return a.Int64At(ar) == b.Int64At(br);
  }
  const double x = a.type() == DataType::kInt64
                       ? static_cast<double>(a.Int64At(ar))
                       : a.Float64At(ar);
  const double y = b.type() == DataType::kInt64
                       ? static_cast<double>(b.Int64At(br))
                       : b.Float64At(br);
  return DoubleCompareEqual(x, y);
}

/// Join-key equality of a non-null cell against a non-null boxed key.
bool CellJoinEqualsValue(const ColumnVector& col, uint32_t r, const Value& v) {
  switch (col.type()) {
    case DataType::kString:
      return v.is_string() && col.StringAt(r) == v.string_value();
    case DataType::kBool:
      return v.is_bool() && col.BoolAt(r) == v.bool_value();
    case DataType::kInt64:
      if (v.is_int64()) return col.Int64At(r) == v.int64_value();
      if (v.is_float64()) {
        return DoubleCompareEqual(static_cast<double>(col.Int64At(r)),
                                  v.float64_value());
      }
      return false;
    case DataType::kFloat64:
      return v.is_numeric() &&
             DoubleCompareEqual(col.Float64At(r), v.AsDouble());
  }
  return false;
}

}  // namespace

HashJoinOp::HashJoinOp(OperatorPtr probe, OperatorPtr build, size_t probe_key,
                       size_t build_key, JoinKind kind, Config config)
    : probe_(std::move(probe)),
      build_(std::move(build)),
      probe_key_(probe_key),
      build_key_(build_key),
      kind_(kind),
      config_(config) {
  std::vector<Field> fields = probe_->output_schema().fields();
  for (const auto& f : build_->output_schema().fields()) fields.push_back(f);
  schema_ = Schema(std::move(fields));
}

void HashJoinOp::Open() {
  build_rows_.clear();
  build_batches_.clear();
  build_refs_.clear();
  build_matched_.clear();
  hash_table_.clear();
  bloom_skipped_rows_ = 0;
  hash_probes_ = 0;
  emitted_unmatched_build_ = false;
  build_columnar_ = false;
  probe_columnar_ = nullptr;

  // --- Build phase: drain the build side, hash it, summarize it (§6.1
  // step 1). NULL keys never participate in an equi-join.
  build_->Open();
  SummaryBuilder summary_builder;
  if (auto* build_scan = dynamic_cast<TableScanOp*>(build_.get())) {
    // Unboxed build: hash typed key cells straight out of the scan's
    // ColumnBatches; entries are (batch, row) locators into the retained
    // batches, so no build row is boxed until it appears in an output row.
    build_columnar_ = true;
    ColumnBatch batch;
    while (build_scan->NextColumns(&batch)) {
      const auto bidx = static_cast<uint32_t>(build_batches_.size());
      const ColumnVector& keys = batch.column(build_key_);
      const auto& nulls = keys.null_mask();
      const size_t n = batch.num_rows();
      for (size_t i = 0; i < n; ++i) {
        const uint32_t r = batch.row_index(i);
        if (!nulls[r]) {
          summary_builder.Add(keys.ValueAt(r));
          hash_table_.emplace(HashCell(keys, r), build_refs_.size());
        }
        build_refs_.push_back(BuildRef{bidx, r});
      }
      build_batches_.push_back(std::move(batch));
    }
  } else {
    Batch batch;
    while (build_->Next(&batch)) {
      for (auto& row : batch.rows) {
        const Value& key = row[build_key_];
        if (!key.is_null()) {
          summary_builder.Add(key);
          hash_table_.emplace(HashValue(key), build_rows_.size());
        }
        build_rows_.push_back(std::move(row));
      }
    }
  }
  build_->Close();
  build_matched_.assign(BuildSize(), false);

  // --- Ship the summary to the probe side (§6.1 steps 2-4).
  if (config_.enable_partition_pruning) {
    summary_ = summary_builder.Build(config_.summary_kind,
                                     config_.summary_budget_bytes);
    if (probe_scan_ != nullptr) {
      probe_scan_->ApplyJoinSummary(*summary_, probe_scan_key_column_);
    }
  }
  if (config_.row_level_bloom) {
    bloom_ = summary_builder.Build(SummaryKind::kBloom,
                                   config_.bloom_budget_bytes);
  }

  probe_->Open();
  probe_columnar_ = dynamic_cast<TableScanOp*>(probe_.get());
}

Row HashJoinOp::NullBuildRow() const {
  return Row(build_->output_schema().num_columns(), Value::Null());
}

Row HashJoinOp::NullProbeRow() const {
  return Row(probe_->output_schema().num_columns(), Value::Null());
}

bool HashJoinOp::EntryKeyEqualsCell(const ColumnVector& pcol, uint32_t r,
                                    size_t entry) const {
  if (build_columnar_) {
    const BuildRef& ref = build_refs_[entry];
    return CellsJoinEqual(pcol, r,
                          build_batches_[ref.batch].column(build_key_),
                          ref.row);
  }
  return CellJoinEqualsValue(pcol, r, build_rows_[entry][build_key_]);
}

bool HashJoinOp::EntryKeyEqualsValue(const Value& key, size_t entry) const {
  if (build_columnar_) {
    const BuildRef& ref = build_refs_[entry];
    return CellJoinEqualsValue(build_batches_[ref.batch].column(build_key_),
                               ref.row, key);
  }
  const Value& bkey = build_rows_[entry][build_key_];
  return bkey.is_string() == key.is_string() &&
         bkey.is_bool() == key.is_bool() && Value::Compare(bkey, key) == 0;
}

void HashJoinOp::AppendBuildValues(size_t entry, Row* out) const {
  if (build_columnar_) {
    const BuildRef& ref = build_refs_[entry];
    build_batches_[ref.batch].AppendRowValues(ref.row, out);
    return;
  }
  const Row& row = build_rows_[entry];
  out->insert(out->end(), row.begin(), row.end());
}

template <typename AppendProbe, typename KeyEqual>
bool HashJoinOp::ProbeHash(uint64_t hash, Batch* out,
                           AppendProbe&& append_probe, KeyEqual&& key_equal) {
  auto [lo, hi] = hash_table_.equal_range(hash);
  ++hash_probes_;
  bool matched = false;
  for (auto it = lo; it != hi; ++it) {
    if (!key_equal(it->second)) continue;
    matched = true;
    build_matched_[it->second] = true;
    Row joined;
    joined.reserve(schema_.num_columns());
    append_probe(&joined);
    AppendBuildValues(it->second, &joined);
    out->rows.push_back(std::move(joined));
  }
  return matched;
}

bool HashJoinOp::Next(Batch* out) {
  if (probe_columnar_ != nullptr) {
    // Columnar probe: the scan's selection vector drives the per-row
    // probes; only surviving output rows are boxed, here at the join's
    // output boundary.
    ColumnBatch in;
    while (probe_columnar_->NextColumns(&in)) {
      out->rows.clear();
      out->source.clear();
      const ColumnVector& keys = in.column(probe_key_);
      const auto& nulls = keys.null_mask();
      const size_t n = in.num_rows();
      for (size_t i = 0; i < n; ++i) {
        const uint32_t r = in.row_index(i);
        bool matched = false;
        if (!nulls[r]) {
          const uint64_t h = HashCell(keys, r);
          // Row-level bloom-join check: skip the hash-table probe entirely
          // when the filter proves absence (CPU saving, not IO — §6.1).
          if (bloom_ != nullptr && !bloom_->MayContainHash(h)) {
            ++bloom_skipped_rows_;
          } else {
            matched = ProbeHash(
                h, out, [&](Row* joined) { in.AppendRowValues(r, joined); },
                [&](size_t entry) {
                  return EntryKeyEqualsCell(keys, r, entry);
                });
          }
        }
        if (!matched && kind_ == JoinKind::kProbeOuter) {
          Row joined;
          joined.reserve(schema_.num_columns());
          in.AppendRowValues(r, &joined);
          Row nulls_row = NullBuildRow();
          joined.insert(joined.end(), nulls_row.begin(), nulls_row.end());
          out->rows.push_back(std::move(joined));
        }
      }
      return true;
    }
  } else {
    Batch in;
    while (probe_->Next(&in)) {
      out->rows.clear();
      out->source.clear();
      for (auto& probe_row : in.rows) {
        const Value& key = probe_row[probe_key_];
        bool matched = false;
        if (!key.is_null()) {
          if (bloom_ != nullptr && !bloom_->MayContain(key)) {
            ++bloom_skipped_rows_;
          } else {
            matched = ProbeHash(
                HashValue(key), out,
                [&](Row* joined) {
                  joined->insert(joined->end(), probe_row.begin(),
                                 probe_row.end());
                },
                [&](size_t entry) { return EntryKeyEqualsValue(key, entry); });
          }
        }
        if (!matched && kind_ == JoinKind::kProbeOuter) {
          Row joined = std::move(probe_row);
          Row nulls = NullBuildRow();
          joined.insert(joined.end(), nulls.begin(), nulls.end());
          out->rows.push_back(std::move(joined));
        }
      }
      return true;
    }
  }

  if (kind_ == JoinKind::kBuildOuter && !emitted_unmatched_build_) {
    emitted_unmatched_build_ = true;
    out->rows.clear();
    out->source.clear();
    for (size_t i = 0; i < BuildSize(); ++i) {
      if (build_matched_[i]) continue;
      Row joined = NullProbeRow();
      joined.reserve(schema_.num_columns());
      AppendBuildValues(i, &joined);
      out->rows.push_back(std::move(joined));
    }
    return !out->rows.empty();
  }
  return false;
}

void HashJoinOp::Close() { probe_->Close(); }

}  // namespace snowprune
