#include "exec/join_op.h"

#include <algorithm>

#include "common/trace.h"
#include "exec/parallel/pipeline.h"
#include "exec/profile.h"

namespace snowprune {

namespace {

/// Entry counts below this build serially: the two O(n) passes are cheaper
/// than any fan-out for small builds.
constexpr size_t kParallelTableBuildMin = 1u << 15;

size_t NextPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

// ---------------------------------------------------------------------------
// JoinHashTable
// ---------------------------------------------------------------------------

void JoinHashTable::Clear() {
  mask_ = 0;
  offsets_.clear();
  slots_.clear();
}

void JoinHashTable::BuildSerial(const std::vector<Entry>& entries) {
  // Two-pass counting sort by bucket; iterating in build order makes each
  // bucket's slice ascend in insertion order.
  for (const Entry& e : entries) {
    ++offsets_[(static_cast<size_t>(e.hash) & mask_) + 1];
  }
  for (size_t b = 1; b < offsets_.size(); ++b) offsets_[b] += offsets_[b - 1];
  std::vector<uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const Entry& e : entries) {
    slots_[cursor[static_cast<size_t>(e.hash) & mask_]++] = e;
  }
}

void JoinHashTable::BuildParallel(const std::vector<Entry>& entries,
                                  ThreadPool* pool, size_t window,
                                  const std::atomic<bool>* cancel,
                                  Trace* trace) {
  // Partitioned stable counting sort. The bucket index's HIGH bits pick one
  // of kParts contiguous bucket ranges, so grouping by partition first and
  // by bucket second (phase C) yields exactly the serial layout. Stability
  // holds throughout: chunks are contiguous slices in build order, per-
  // (chunk, partition) regions are filled in chunk order, and phase C's
  // counting scatter preserves the staging order within each bucket.
  constexpr size_t kParts = 256;
  const size_t num_buckets = mask_ + 1;
  const size_t part_shift =
      num_buckets > kParts ? __builtin_ctzll(num_buckets / kParts) : 0;
  const size_t parts = std::min(kParts, num_buckets);
  const size_t num_chunks =
      std::min<size_t>(pool->num_threads() * 2, entries.size());
  const size_t chunk_len = (entries.size() + num_chunks - 1) / num_chunks;
  auto part_of = [&](const Entry& e) {
    return (static_cast<size_t>(e.hash) & mask_) >> part_shift;
  };

  // Phase A: per-chunk partition histograms.
  std::vector<std::vector<uint32_t>> hist(num_chunks);
  ParallelFor(
      pool, num_chunks, window,
      [&](size_t c) {
        auto& h = hist[c];
        h.assign(parts, 0);
        const size_t lo = c * chunk_len;
        const size_t hi = std::min(entries.size(), lo + chunk_len);
        for (size_t i = lo; i < hi; ++i) ++h[part_of(entries[i])];
      },
      cancel, trace);
  if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) return;

  // Per-(chunk, partition) write cursors: partitions laid out in order,
  // chunks in order within each partition.
  std::vector<uint32_t> part_base(parts + 1, 0);
  {
    uint32_t sum = 0;
    for (size_t p = 0; p < parts; ++p) {
      part_base[p] = sum;
      for (size_t c = 0; c < num_chunks; ++c) {
        const uint32_t count = hist[c][p];
        hist[c][p] = sum;  // becomes this chunk's cursor for partition p
        sum += count;
      }
    }
    part_base[parts] = sum;
  }

  // Phase B: scatter into staging, grouped by partition, stable.
  std::vector<Entry> staging(entries.size());
  ParallelFor(
      pool, num_chunks, window,
      [&](size_t c) {
        auto& cursor = hist[c];
        const size_t lo = c * chunk_len;
        const size_t hi = std::min(entries.size(), lo + chunk_len);
        for (size_t i = lo; i < hi; ++i) {
          staging[cursor[part_of(entries[i])]++] = entries[i];
        }
      },
      cancel, trace);
  if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) return;

  // Phase C: per partition, counting-sort its staging slice by bucket into
  // the final slots and publish its (disjoint) range of bucket offsets.
  const size_t buckets_per_part = num_buckets / parts;
  ParallelFor(
      pool, parts, window,
      [&](size_t p) {
        const uint32_t lo = part_base[p];
        const uint32_t hi = part_base[p + 1];
        const size_t first_bucket = p * buckets_per_part;
        std::vector<uint32_t> counts(buckets_per_part, 0);
        for (uint32_t i = lo; i < hi; ++i) {
          ++counts[(static_cast<size_t>(staging[i].hash) & mask_) -
                   first_bucket];
        }
        uint32_t sum = lo;
        for (size_t b = 0; b < buckets_per_part; ++b) {
          offsets_[first_bucket + b] = sum;
          sum += counts[b];
          counts[b] = offsets_[first_bucket + b];  // becomes the cursor
        }
        for (uint32_t i = lo; i < hi; ++i) {
          slots_[counts[(static_cast<size_t>(staging[i].hash) & mask_) -
                        first_bucket]++] = staging[i];
        }
      },
      cancel, trace);
  offsets_[num_buckets] = static_cast<uint32_t>(entries.size());
}

void JoinHashTable::Build(std::vector<Entry> entries, ThreadPool* pool,
                          size_t window, const std::atomic<bool>* cancel,
                          Trace* trace) {
  Clear();
  if (entries.empty()) return;
  const size_t num_buckets = NextPow2(entries.size());
  mask_ = num_buckets - 1;
  offsets_.assign(num_buckets + 1, 0);
  slots_.resize(entries.size());
  if (pool != nullptr && pool->num_threads() > 1 &&
      entries.size() >= kParallelTableBuildMin && num_buckets >= 256) {
    BuildParallel(entries, pool, window, cancel, trace);
  } else {
    BuildSerial(entries);
  }
}

const char* ToString(JoinKind kind) {
  switch (kind) {
    case JoinKind::kInner: return "inner";
    case JoinKind::kProbeOuter: return "probe-outer";
    case JoinKind::kBuildOuter: return "build-outer";
  }
  return "?";
}

namespace {

/// HashValue of a non-null column cell, without boxing it. Dispatches to
/// the per-type component hashes HashValue itself uses, so a cell and its
/// boxed Value can never hash differently.
uint64_t HashCell(const ColumnVector& col, uint32_t r) {
  switch (col.type()) {
    case DataType::kBool: return HashBoolValue(col.BoolAt(r));
    case DataType::kInt64: return HashInt64Value(col.Int64At(r));
    case DataType::kFloat64: return HashFloat64Value(col.Float64At(r));
    case DataType::kString: return HashStringValue(col.StringAt(r));
  }
  return 0;
}

/// "Equal" exactly as Value::Compare reports 0 for doubles: neither less
/// nor greater. This deliberately differs from operator== on NaN (NaN
/// compares "equal" to everything under Value::Compare); the columnar and
/// boxed join paths must make identical decisions on every input.
bool DoubleCompareEqual(double x, double y) { return !(x < y) && !(x > y); }

/// Join-key equality of two non-null cells; mirrors the boxed check
/// (is_string/is_bool kind agreement, then Value::Compare == 0: int64 pairs
/// compare exactly, mixed numerics through double).
bool CellsJoinEqual(const ColumnVector& a, uint32_t ar, const ColumnVector& b,
                    uint32_t br) {
  const bool a_str = a.type() == DataType::kString;
  const bool b_str = b.type() == DataType::kString;
  const bool a_bool = a.type() == DataType::kBool;
  const bool b_bool = b.type() == DataType::kBool;
  if (a_str != b_str || a_bool != b_bool) return false;
  if (a_str) return a.StringAt(ar) == b.StringAt(br);
  if (a_bool) return a.BoolAt(ar) == b.BoolAt(br);
  if (a.type() == DataType::kInt64 && b.type() == DataType::kInt64) {
    return a.Int64At(ar) == b.Int64At(br);
  }
  const double x = a.type() == DataType::kInt64
                       ? static_cast<double>(a.Int64At(ar))
                       : a.Float64At(ar);
  const double y = b.type() == DataType::kInt64
                       ? static_cast<double>(b.Int64At(br))
                       : b.Float64At(br);
  return DoubleCompareEqual(x, y);
}

/// Join-key equality of a non-null cell against a non-null boxed key.
/// One partition's worker-side build partial: the key hash of every
/// non-null key row (in row order) and a summary partial over the same
/// rows in the same order. Produced by the build scan's pipeline stage,
/// consumed — in scan-set order — by the consumer's build loop.
struct JoinBuildItemPartial {
  std::vector<uint64_t> hashes;
  SummaryBuilder summary;
};

bool CellJoinEqualsValue(const ColumnVector& col, uint32_t r, const Value& v) {
  switch (col.type()) {
    case DataType::kString:
      return v.is_string() && col.StringAt(r) == v.string_value();
    case DataType::kBool:
      return v.is_bool() && col.BoolAt(r) == v.bool_value();
    case DataType::kInt64:
      if (v.is_int64()) return col.Int64At(r) == v.int64_value();
      if (v.is_float64()) {
        return DoubleCompareEqual(static_cast<double>(col.Int64At(r)),
                                  v.float64_value());
      }
      return false;
    case DataType::kFloat64:
      return v.is_numeric() &&
             DoubleCompareEqual(col.Float64At(r), v.AsDouble());
  }
  return false;
}

}  // namespace

HashJoinOp::HashJoinOp(OperatorPtr probe, OperatorPtr build, size_t probe_key,
                       size_t build_key, JoinKind kind, Config config)
    : probe_(std::move(probe)),
      build_(std::move(build)),
      probe_key_(probe_key),
      build_key_(build_key),
      kind_(kind),
      config_(config) {
  std::vector<Field> fields = probe_->output_schema().fields();
  for (const auto& f : build_->output_schema().fields()) fields.push_back(f);
  schema_ = Schema(std::move(fields));
}

void HashJoinOp::Open() {
  // One span over the whole pipeline-breaking build phase: drain build
  // side, construct the hash table, build + ship the §6 summary.
  ScopedSpan build_span(trace_, "join.build", trace_parent_);
  build_rows_.clear();
  build_batches_.clear();
  build_refs_.clear();
  build_matched_.clear();
  hash_table_.Clear();
  bloom_skipped_rows_ = 0;
  hash_probes_ = 0;
  emitted_unmatched_build_ = false;
  build_columnar_ = false;
  probe_columnar_ = nullptr;

  // --- Build phase: drain the build side, hash it, summarize it (§6.1
  // step 1). NULL keys never participate in an equi-join. The hash table
  // is constructed once from flat (hash, entry) pairs collected in build
  // order, so serial and parallel builds produce the same structure.
  auto* build_scan = dynamic_cast<TableScanOp*>(build_.get());
  const bool parallel_build = pipeline_parallel_ && build_scan != nullptr &&
                              build_scan->parallel_enabled();
  if (parallel_build) {
    // Per-worker build stage: hash each partition's key cells and collect
    // a summary partial while the morsel is still on the worker — the
    // consumer is left with the merge (append partials in scan-set order)
    // and the entry bookkeeping.
    const size_t key = build_key_;
    build_scan->set_morsel_stage([key](MorselResult* morsel) {
      for (MorselItem& item : morsel->items) {
        if (!item.loaded) continue;
        auto partial = std::make_shared<JoinBuildItemPartial>();
        const ColumnVector& keys = item.batch.column(key);
        const auto& nulls = keys.null_mask();
        const size_t n = item.batch.num_rows();
        for (size_t i = 0; i < n; ++i) {
          const uint32_t r = item.batch.row_index(i);
          if (nulls[r]) continue;
          partial->summary.Add(keys.ValueAt(r));
          partial->hashes.push_back(HashCell(keys, r));
        }
        item.payload = std::move(partial);
      }
    });
  }
  build_->Open();
  SummaryBuilder summary_builder;
  std::vector<JoinHashTable::Entry> entries;
  if (build_scan != nullptr) {
    // Unboxed build: hash typed key cells straight out of the scan's
    // ColumnBatches; entries are (batch, row) locators into the retained
    // batches, so no build row is boxed until it appears in an output row.
    build_columnar_ = true;
    ColumnBatch batch;
    TableScanOp::MorselPayload payload;
    while (build_scan->NextColumns(&batch, &payload)) {
      const auto bidx = static_cast<uint32_t>(build_batches_.size());
      const ColumnVector& keys = batch.column(build_key_);
      const auto& nulls = keys.null_mask();
      const size_t n = batch.num_rows();
      if (payload != nullptr) {
        // Worker-prepared partial: merge the summary exactly (value order
        // == scan-set row order == serial order) and zip the precomputed
        // hashes back onto the non-null rows.
        auto* partial = static_cast<JoinBuildItemPartial*>(payload.get());
        summary_builder.Append(std::move(partial->summary));
        size_t next_hash = 0;
        for (size_t i = 0; i < n; ++i) {
          const uint32_t r = batch.row_index(i);
          if (!nulls[r]) {
            entries.push_back(JoinHashTable::Entry{
                partial->hashes[next_hash++], build_refs_.size()});
          }
          build_refs_.push_back(BuildRef{bidx, r});
        }
      } else {
        for (size_t i = 0; i < n; ++i) {
          const uint32_t r = batch.row_index(i);
          if (!nulls[r]) {
            summary_builder.Add(keys.ValueAt(r));
            entries.push_back(
                JoinHashTable::Entry{HashCell(keys, r), build_refs_.size()});
          }
          build_refs_.push_back(BuildRef{bidx, r});
        }
      }
      build_batches_.push_back(std::move(batch));
    }
  } else {
    Batch batch;
    while (build_->Next(&batch)) {
      for (auto& row : batch.rows) {
        const Value& key = row[build_key_];
        if (!key.is_null()) {
          summary_builder.Add(key);
          entries.push_back(
              JoinHashTable::Entry{HashValue(key), build_rows_.size()});
        }
        build_rows_.push_back(std::move(row));
      }
    }
  }
  build_->Close();
  build_matched_.assign(BuildSize(), false);
  build_span.AnnotateInt("build_rows", static_cast<int64_t>(BuildSize()));
  hash_table_.Build(std::move(entries),
                    parallel_build ? build_scan->pool() : nullptr,
                    parallel_build ? build_scan->morsel_window() : 0,
                    parallel_build ? build_scan->cancel_flag() : nullptr,
                    trace_);

  // --- Ship the summary to the probe side (§6.1 steps 2-4).
  if (config_.enable_partition_pruning) {
    summary_ = summary_builder.Build(config_.summary_kind,
                                     config_.summary_budget_bytes);
    if (probe_scan_ != nullptr) {
      probe_scan_->ApplyJoinSummary(*summary_, probe_scan_key_column_);
    }
  }
  if (config_.row_level_bloom) {
    bloom_ = summary_builder.Build(SummaryKind::kBloom,
                                   config_.bloom_budget_bytes);
  }

  probe_->Open();
  probe_columnar_ = dynamic_cast<TableScanOp*>(probe_.get());
}

Row HashJoinOp::NullBuildRow() const {
  return Row(build_->output_schema().num_columns(), Value::Null());
}

Row HashJoinOp::NullProbeRow() const {
  return Row(probe_->output_schema().num_columns(), Value::Null());
}

bool HashJoinOp::EntryKeyEqualsCell(const ColumnVector& pcol, uint32_t r,
                                    size_t entry) const {
  if (build_columnar_) {
    const BuildRef& ref = build_refs_[entry];
    return CellsJoinEqual(pcol, r,
                          build_batches_[ref.batch].column(build_key_),
                          ref.row);
  }
  return CellJoinEqualsValue(pcol, r, build_rows_[entry][build_key_]);
}

bool HashJoinOp::EntryKeyEqualsValue(const Value& key, size_t entry) const {
  if (build_columnar_) {
    const BuildRef& ref = build_refs_[entry];
    return CellJoinEqualsValue(build_batches_[ref.batch].column(build_key_),
                               ref.row, key);
  }
  const Value& bkey = build_rows_[entry][build_key_];
  return bkey.is_string() == key.is_string() &&
         bkey.is_bool() == key.is_bool() && Value::Compare(bkey, key) == 0;
}

void HashJoinOp::AppendBuildValues(size_t entry, Row* out) const {
  if (build_columnar_) {
    const BuildRef& ref = build_refs_[entry];
    build_batches_[ref.batch].AppendRowValues(ref.row, out);
    return;
  }
  const Row& row = build_rows_[entry];
  out->insert(out->end(), row.begin(), row.end());
}

template <typename AppendProbe, typename KeyEqual>
bool HashJoinOp::ProbeHash(uint64_t hash, Batch* out,
                           AppendProbe&& append_probe, KeyEqual&& key_equal) {
  ++hash_probes_;
  bool matched = false;
  // Matches come out in build order (JoinHashTable buckets ascend by
  // insertion order), so the emitted row order is deterministic and equal
  // under serial and parallel builds.
  hash_table_.ForEachMatch(hash, [&](size_t entry) {
    if (!key_equal(entry)) return;
    matched = true;
    build_matched_[entry] = true;
    Row joined;
    joined.reserve(schema_.num_columns());
    append_probe(&joined);
    AppendBuildValues(entry, &joined);
    out->rows.push_back(std::move(joined));
  });
  return matched;
}

bool HashJoinOp::Next(Batch* out) {
  if (profile_ == nullptr) return NextInner(out);
  return ProfiledNext(
      profile_, [&] { return NextInner(out); },
      [&] { return static_cast<int64_t>(out->rows.size()); });
}

bool HashJoinOp::NextInner(Batch* out) {
  if (probe_columnar_ != nullptr) {
    // Columnar probe: the scan's selection vector drives the per-row
    // probes; only surviving output rows are boxed, here at the join's
    // output boundary.
    ColumnBatch in;
    while (probe_columnar_->NextColumns(&in)) {
      out->rows.clear();
      out->source.clear();
      const ColumnVector& keys = in.column(probe_key_);
      const auto& nulls = keys.null_mask();
      const size_t n = in.num_rows();
      for (size_t i = 0; i < n; ++i) {
        const uint32_t r = in.row_index(i);
        bool matched = false;
        if (!nulls[r]) {
          const uint64_t h = HashCell(keys, r);
          // Row-level bloom-join check: skip the hash-table probe entirely
          // when the filter proves absence (CPU saving, not IO — §6.1).
          if (bloom_ != nullptr && !bloom_->MayContainHash(h)) {
            ++bloom_skipped_rows_;
          } else {
            matched = ProbeHash(
                h, out, [&](Row* joined) { in.AppendRowValues(r, joined); },
                [&](size_t entry) {
                  return EntryKeyEqualsCell(keys, r, entry);
                });
          }
        }
        if (!matched && kind_ == JoinKind::kProbeOuter) {
          Row joined;
          joined.reserve(schema_.num_columns());
          in.AppendRowValues(r, &joined);
          Row nulls_row = NullBuildRow();
          joined.insert(joined.end(), nulls_row.begin(), nulls_row.end());
          out->rows.push_back(std::move(joined));
        }
      }
      return true;
    }
  } else {
    Batch in;
    while (probe_->Next(&in)) {
      out->rows.clear();
      out->source.clear();
      for (auto& probe_row : in.rows) {
        const Value& key = probe_row[probe_key_];
        bool matched = false;
        if (!key.is_null()) {
          if (bloom_ != nullptr && !bloom_->MayContain(key)) {
            ++bloom_skipped_rows_;
          } else {
            matched = ProbeHash(
                HashValue(key), out,
                [&](Row* joined) {
                  joined->insert(joined->end(), probe_row.begin(),
                                 probe_row.end());
                },
                [&](size_t entry) { return EntryKeyEqualsValue(key, entry); });
          }
        }
        if (!matched && kind_ == JoinKind::kProbeOuter) {
          Row joined = std::move(probe_row);
          Row nulls = NullBuildRow();
          joined.insert(joined.end(), nulls.begin(), nulls.end());
          out->rows.push_back(std::move(joined));
        }
      }
      return true;
    }
  }

  if (kind_ == JoinKind::kBuildOuter && !emitted_unmatched_build_) {
    emitted_unmatched_build_ = true;
    out->rows.clear();
    out->source.clear();
    for (size_t i = 0; i < BuildSize(); ++i) {
      if (build_matched_[i]) continue;
      Row joined = NullProbeRow();
      joined.reserve(schema_.num_columns());
      AppendBuildValues(i, &joined);
      out->rows.push_back(std::move(joined));
    }
    return !out->rows.empty();
  }
  return false;
}

void HashJoinOp::Close() { probe_->Close(); }

}  // namespace snowprune
