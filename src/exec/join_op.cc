#include "exec/join_op.h"

namespace snowprune {

const char* ToString(JoinKind kind) {
  switch (kind) {
    case JoinKind::kInner: return "inner";
    case JoinKind::kProbeOuter: return "probe-outer";
    case JoinKind::kBuildOuter: return "build-outer";
  }
  return "?";
}

HashJoinOp::HashJoinOp(OperatorPtr probe, OperatorPtr build, size_t probe_key,
                       size_t build_key, JoinKind kind, Config config)
    : probe_(std::move(probe)),
      build_(std::move(build)),
      probe_key_(probe_key),
      build_key_(build_key),
      kind_(kind),
      config_(config) {
  std::vector<Field> fields = probe_->output_schema().fields();
  for (const auto& f : build_->output_schema().fields()) fields.push_back(f);
  schema_ = Schema(std::move(fields));
}

void HashJoinOp::Open() {
  build_rows_.clear();
  build_matched_.clear();
  hash_table_.clear();
  bloom_skipped_rows_ = 0;
  hash_probes_ = 0;
  emitted_unmatched_build_ = false;

  // --- Build phase: drain the build side, hash it, summarize it (§6.1
  // step 1). NULL keys never participate in an equi-join.
  build_->Open();
  SummaryBuilder summary_builder;
  Batch batch;
  while (build_->Next(&batch)) {
    for (auto& row : batch.rows) {
      const Value& key = row[build_key_];
      if (!key.is_null()) {
        summary_builder.Add(key);
        hash_table_.emplace(HashValue(key), build_rows_.size());
      }
      build_rows_.push_back(std::move(row));
    }
  }
  build_->Close();
  build_matched_.assign(build_rows_.size(), false);

  // --- Ship the summary to the probe side (§6.1 steps 2-4).
  if (config_.enable_partition_pruning) {
    summary_ = summary_builder.Build(config_.summary_kind,
                                     config_.summary_budget_bytes);
    if (probe_scan_ != nullptr) {
      probe_scan_->ApplyJoinSummary(*summary_, probe_scan_key_column_);
    }
  }
  if (config_.row_level_bloom) {
    bloom_ = summary_builder.Build(SummaryKind::kBloom,
                                   config_.bloom_budget_bytes);
  }

  probe_->Open();
}

Row HashJoinOp::NullBuildRow() const {
  return Row(build_->output_schema().num_columns(), Value::Null());
}

Row HashJoinOp::NullProbeRow() const {
  return Row(probe_->output_schema().num_columns(), Value::Null());
}

bool HashJoinOp::Next(Batch* out) {
  Batch in;
  while (probe_->Next(&in)) {
    out->rows.clear();
    out->source.clear();
    for (auto& probe_row : in.rows) {
      const Value& key = probe_row[probe_key_];
      bool matched = false;
      if (!key.is_null()) {
        // Row-level bloom-join check: skip the hash-table probe entirely
        // when the filter proves absence (CPU saving, not IO — §6.1).
        if (bloom_ != nullptr && !bloom_->MayContain(key)) {
          ++bloom_skipped_rows_;
        } else {
          auto [lo, hi] = hash_table_.equal_range(HashValue(key));
          ++hash_probes_;
          for (auto it = lo; it != hi; ++it) {
            const Row& build_row = build_rows_[it->second];
            const Value& bkey = build_row[build_key_];
            if (bkey.is_string() == key.is_string() &&
                bkey.is_bool() == key.is_bool() &&
                Value::Compare(bkey, key) == 0) {
              matched = true;
              build_matched_[it->second] = true;
              Row joined = probe_row;
              joined.insert(joined.end(), build_row.begin(), build_row.end());
              out->rows.push_back(std::move(joined));
            }
          }
        }
      }
      if (!matched && kind_ == JoinKind::kProbeOuter) {
        Row joined = std::move(probe_row);
        Row nulls = NullBuildRow();
        joined.insert(joined.end(), nulls.begin(), nulls.end());
        out->rows.push_back(std::move(joined));
      }
    }
    return true;
  }

  if (kind_ == JoinKind::kBuildOuter && !emitted_unmatched_build_) {
    emitted_unmatched_build_ = true;
    out->rows.clear();
    out->source.clear();
    for (size_t i = 0; i < build_rows_.size(); ++i) {
      if (build_matched_[i]) continue;
      Row joined = NullProbeRow();
      joined.insert(joined.end(), build_rows_[i].begin(), build_rows_[i].end());
      out->rows.push_back(std::move(joined));
    }
    return !out->rows.empty();
  }
  return false;
}

void HashJoinOp::Close() { probe_->Close(); }

}  // namespace snowprune
