#ifndef SNOWPRUNE_EXEC_PROFILE_H_
#define SNOWPRUNE_EXEC_PROFILE_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/pruning_stats.h"

namespace snowprune {

/// One plan operator's runtime accounting — the per-node row of an
/// EXPLAIN ANALYZE report. `pruning` is populated only on source nodes
/// (table scan, shard gather source): those are where partitions live, so
/// summing `pruning` over the tree reconciles exactly against the query's
/// whole-query PruningStats (DCHECK-enforced by the engine).
struct ProfileNode {
  std::string name;    ///< Operator kind, e.g. "TopK", "Scan".
  std::string detail;  ///< Operator parameters, e.g. "lineitem", "k=10".
  int64_t rows_out = 0;
  int64_t batches = 0;
  int64_t ns = 0;  ///< Wall ns inside this operator's Next (children incl.).
  PruningStats pruning;
  std::vector<ProfileNode*> children;  ///< Non-owning; owned by the profile.
};

/// The per-query operator profile, assembled at compile time (one node per
/// plan operator, linked into the plan tree) and filled during execution by
/// the operators' instrumented Next wrappers. Built only for traced
/// queries; untraced queries carry a null profile and skip all metering.
class QueryProfile {
 public:
  QueryProfile() = default;
  QueryProfile(const QueryProfile&) = delete;
  QueryProfile& operator=(const QueryProfile&) = delete;

  /// Creates a node owned by this profile. Callers link parents/children.
  ProfileNode* NewNode(std::string name, std::string detail = std::string());

  /// Sum of every node's pruning counters — must equal the query's
  /// PruningStats for a fully profiled plan.
  PruningStats SumPruning() const;

  /// EXPLAIN ANALYZE text: one line per operator (rows, batches, time),
  /// with per-level pruning counts under each source node.
  std::string ToText() const;
  std::string ToJson() const;

  ProfileNode* root = nullptr;
  /// Per-query pipeline-task counts (from the trace's atomic counters).
  int64_t stage_tasks = 0;
  int64_t barrier_tasks = 0;

 private:
  std::vector<std::unique_ptr<ProfileNode>> nodes_;
};

/// Times one `Next`-shaped call into `node`. `next` produces the batch;
/// `rows` reports how many rows the produced batch carries (only consulted
/// when `next` returned true). Operators call this from a thin wrapper
/// whose first instruction is the `profile_ == nullptr` fast-path test, so
/// untraced queries never reach the clock.
template <typename NextFn, typename RowsFn>
inline bool ProfiledNext(ProfileNode* node, NextFn&& next, RowsFn&& rows) {
  const auto t0 = std::chrono::steady_clock::now();
  const bool ok = next();
  node->ns += std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
  if (ok) {
    ++node->batches;
    node->rows_out += rows();
  }
  return ok;
}

}  // namespace snowprune

#endif  // SNOWPRUNE_EXEC_PROFILE_H_
