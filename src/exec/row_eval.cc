#include "exec/row_eval.h"

#include <cassert>

#include "expr/like.h"

namespace snowprune {

namespace {

Value ArithRow(const ArithExpr& e, const Row& row) {
  Value l = EvalRow(*e.left(), row);
  Value r = EvalRow(*e.right(), row);
  if (l.is_null() || r.is_null() || !l.is_numeric() || !r.is_numeric()) {
    return Value::Null();
  }
  bool both_int = l.is_int64() && r.is_int64();
  switch (e.op()) {
    case ArithOp::kAdd: {
      int64_t out;
      if (both_int &&
          !__builtin_add_overflow(l.int64_value(), r.int64_value(), &out)) {
        return Value(out);
      }
      return Value(l.AsDouble() + r.AsDouble());
    }
    case ArithOp::kSub: {
      int64_t out;
      if (both_int &&
          !__builtin_sub_overflow(l.int64_value(), r.int64_value(), &out)) {
        return Value(out);
      }
      return Value(l.AsDouble() - r.AsDouble());
    }
    case ArithOp::kMul: {
      int64_t out;
      if (both_int &&
          !__builtin_mul_overflow(l.int64_value(), r.int64_value(), &out)) {
        return Value(out);
      }
      return Value(l.AsDouble() * r.AsDouble());
    }
    case ArithOp::kDiv: {
      double d = r.AsDouble();
      if (d == 0.0) return Value::Null();
      return Value(l.AsDouble() / d);
    }
  }
  return Value::Null();
}

Value CompareRow(const CompareExpr& e, const Row& row) {
  Value l = EvalRow(*e.left(), row);
  Value r = EvalRow(*e.right(), row);
  if (l.is_null() || r.is_null()) return Value::Null();
  if (l.is_string() != r.is_string() || l.is_bool() != r.is_bool()) {
    return Value::Null();
  }
  int c = Value::Compare(l, r);
  switch (e.op()) {
    case CompareOp::kEq: return Value(c == 0);
    case CompareOp::kNe: return Value(c != 0);
    case CompareOp::kLt: return Value(c < 0);
    case CompareOp::kLe: return Value(c <= 0);
    case CompareOp::kGt: return Value(c > 0);
    case CompareOp::kGe: return Value(c >= 0);
  }
  return Value::Null();
}

}  // namespace

Value EvalRow(const Expr& expr, const Row& row) {
  switch (expr.kind()) {
    case ExprKind::kColumnRef: {
      const auto& ref = static_cast<const ColumnRefExpr&>(expr);
      assert(ref.bound() && ref.index() < row.size());
      return row[ref.index()];
    }
    case ExprKind::kLiteral:
      return static_cast<const LiteralExpr&>(expr).value();
    case ExprKind::kArith:
      return ArithRow(static_cast<const ArithExpr&>(expr), row);
    case ExprKind::kCompare:
      return CompareRow(static_cast<const CompareExpr&>(expr), row);
    case ExprKind::kAnd:
    case ExprKind::kOr: {
      const auto& e = static_cast<const BoolConnectiveExpr&>(expr);
      const bool is_and = expr.kind() == ExprKind::kAnd;
      bool saw_null = false;
      for (const auto& term : e.terms()) {
        Value v = EvalRow(*term, row);
        if (v.is_null()) {
          saw_null = true;
          continue;
        }
        if (is_and && !v.bool_value()) return Value(false);
        if (!is_and && v.bool_value()) return Value(true);
      }
      return saw_null ? Value::Null() : Value(is_and);
    }
    case ExprKind::kNot: {
      Value v = EvalRow(*static_cast<const NotExpr&>(expr).input(), row);
      return v.is_null() ? Value::Null() : Value(!v.bool_value());
    }
    case ExprKind::kNotTrue: {
      Value v = EvalRow(*static_cast<const NotTrueExpr&>(expr).input(), row);
      return Value(!(!v.is_null() && v.bool_value()));
    }
    case ExprKind::kIf: {
      const auto& e = static_cast<const IfExpr&>(expr);
      Value c = EvalRow(*e.cond(), row);
      bool take_then = !c.is_null() && c.bool_value();
      return EvalRow(take_then ? *e.then_expr() : *e.else_expr(), row);
    }
    case ExprKind::kLike: {
      const auto& e = static_cast<const LikeExpr&>(expr);
      Value v = EvalRow(*e.input(), row);
      if (v.is_null() || !v.is_string()) return Value::Null();
      return Value(LikeMatch(v.string_value(), e.pattern()));
    }
    case ExprKind::kStartsWith: {
      const auto& e = static_cast<const StartsWithExpr&>(expr);
      Value v = EvalRow(*e.input(), row);
      if (v.is_null() || !v.is_string()) return Value::Null();
      return Value(v.string_value().compare(0, e.prefix().size(), e.prefix()) ==
                   0);
    }
    case ExprKind::kInList: {
      const auto& e = static_cast<const InListExpr&>(expr);
      Value v = EvalRow(*e.input(), row);
      if (v.is_null()) return Value::Null();
      for (const auto& cand : e.values()) {
        if (!cand.is_null() && cand.is_string() == v.is_string() &&
            cand.is_bool() == v.is_bool() && Value::Compare(v, cand) == 0) {
          return Value(true);
        }
      }
      return Value(false);
    }
    case ExprKind::kIsNull: {
      const auto& e = static_cast<const IsNullExpr&>(expr);
      Value v = EvalRow(*e.input(), row);
      return Value(e.negate() ? !v.is_null() : v.is_null());
    }
  }
  return Value::Null();
}

std::optional<bool> EvalRowPredicate(const Expr& expr, const Row& row) {
  Value v = EvalRow(expr, row);
  if (v.is_null()) return std::nullopt;
  return v.bool_value();
}

}  // namespace snowprune
