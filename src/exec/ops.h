#ifndef SNOWPRUNE_EXEC_OPS_H_
#define SNOWPRUNE_EXEC_OPS_H_

#include <string>
#include <utility>
#include <vector>

#include "exec/operator.h"
#include "expr/expr.h"

namespace snowprune {

/// Row-level filter (a WHERE clause not merged into the scan, e.g. between
/// a join and a TopK operator — Figure 7a).
class FilterOp : public Operator {
 public:
  FilterOp(OperatorPtr input, ExprPtr predicate);

  void Open() override { input_->Open(); }
  bool Next(Batch* out) override;
  void Close() override { input_->Close(); }
  const Schema& output_schema() const override {
    return input_->output_schema();
  }

 private:
  bool NextInner(Batch* out);

  OperatorPtr input_;
  ExprPtr predicate_;
};

/// Computes one output column per expression.
class ProjectOp : public Operator {
 public:
  ProjectOp(OperatorPtr input, std::vector<ExprPtr> exprs,
            std::vector<std::string> names);

  void Open() override { input_->Open(); }
  bool Next(Batch* out) override;
  void Close() override { input_->Close(); }
  const Schema& output_schema() const override { return schema_; }

 private:
  bool NextInner(Batch* out);

  OperatorPtr input_;
  std::vector<ExprPtr> exprs_;
  Schema schema_;
};

/// Stops the pipeline after offset + k rows (discarding the first offset) —
/// the "most existing database systems simply halt query processing when
/// the LIMIT has been reached" baseline the paper's §4 improves on.
class LimitOp : public Operator {
 public:
  LimitOp(OperatorPtr input, int64_t k, int64_t offset = 0);

  void Open() override;
  bool Next(Batch* out) override;
  void Close() override { input_->Close(); }
  const Schema& output_schema() const override {
    return input_->output_schema();
  }

 private:
  bool NextInner(Batch* out);

  OperatorPtr input_;
  int64_t k_;
  int64_t offset_;
  int64_t consumed_ = 0;  ///< Rows pulled, including the skipped offset.
};

/// Full in-memory sort (pipeline breaker); the non-pruning baseline for
/// ORDER BY ... LIMIT and the final ordering stage of top-k results.
/// A table-scan input is consumed as ColumnBatches and sorted via an index
/// permutation over the unboxed order-key column — rows are boxed once, in
/// output order, at this operator's boundary.
///
/// Pipeline-parallel mode (EnablePipelineParallel + a parallel scan input):
/// scan workers decorate and stable-sort each partition's surviving rows
/// into a typed-key run while the morsel is still on the worker; the
/// consumer k-way-merges the runs in scan-set order, breaking key ties by
/// run order — exactly the stable_sort-over-concatenation the serial path
/// computes, so the output is byte-identical at any thread count.
class SortOp : public Operator {
 public:
  SortOp(OperatorPtr input, size_t order_column, bool descending);

  /// Engine hook: allow the worker-side sorted-run stage when the input is
  /// a parallel table scan.
  void EnablePipelineParallel() { pipeline_parallel_ = true; }

  void Open() override;
  bool Next(Batch* out) override;
  void Close() override { input_->Close(); }
  const Schema& output_schema() const override {
    return input_->output_schema();
  }

 private:
  bool NextInner(Batch* out);

  OperatorPtr input_;
  size_t order_column_;
  bool descending_;
  bool pipeline_parallel_ = false;
  Batch buffered_;
  bool done_ = false;
};

}  // namespace snowprune

#endif  // SNOWPRUNE_EXEC_OPS_H_
