#ifndef SNOWPRUNE_EXEC_ENGINE_H_
#define SNOWPRUNE_EXEC_ENGINE_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/filter_pruner.h"
#include "core/join_pruner.h"
#include "core/limit_pruner.h"
#include "core/predicate_cache.h"
#include "core/pruning_stats.h"
#include "core/topk_pruner.h"
#include "exec/batch.h"
#include "exec/plan.h"
#include "storage/catalog.h"

namespace snowprune {

/// When filter pruning runs (§2.1/§3.2). Compile-time pruning enables
/// downstream optimizations (LIMIT pruning needs the fully-matching set,
/// scan sets shrink before being shipped); runtime pruning defers the
/// per-partition metadata checks to the highly parallel execution layer —
/// the right choice when compile-time pruning is too slow for huge scan
/// sets with complex predicates.
enum class FilterPruningPhase { kCompileTime, kRuntime };

class ThreadPool;

/// Execution-layer configuration: how the post-pruning scan sets are fanned
/// out across worker threads ("the highly parallel execution layer", §2).
struct ExecConfig {
  /// Worker threads per query. 0 = hardware concurrency. 1 runs today's
  /// serial path bit-for-bit (no pool, no scheduler); >1 enables
  /// partition-parallel scans, which return byte-identical results AND
  /// identical PruningStats (batches are delivered in scan-set order and
  /// the consumer re-checks the top-k boundary at delivery time; wasted
  /// worker lookahead is surfaced as PruningStats::speculative_loads).
  /// Exception: the opt-in time-based PruningTree cutoff makes filter
  /// stats timing-dependent regardless of thread count (see scan_op.h).
  /// Ignored when `pool` is injected (the pool's width decides).
  int num_threads = 0;
  /// Injected worker pool (not owned; must outlive the engine). Service
  /// mode: many engines run queries concurrently against ONE shared pool
  /// instead of each constructing its own, so total worker-thread count —
  /// and the morsel backlog competing for it — is bounded service-wide.
  /// nullptr (default): the engine lazily creates a private pool of
  /// `num_threads` workers, as before.
  ThreadPool* pool = nullptr;
  /// Morsels buffered or in flight ahead of the consumer per scan
  /// (memory bound). 0 = 4 * the executing pool's width — the *shared*
  /// pool's thread count when one is injected, so service-mode memory
  /// bounds follow the real worker fleet, not a per-query knob.
  size_t morsel_window = 0;
  /// Row budget for morsel formation: consecutive scan-set partitions are
  /// batched into one morsel until their combined (zone-map) row count
  /// reaches this, so many tiny post-pruning partitions amortize scheduling
  /// overhead instead of drowning in it. 0 = one partition per morsel.
  size_t morsel_min_rows = 4096;
  /// Run the morsel machinery even when num_threads == 1 (a pool with one
  /// worker). Off by default — the serial path needs no pool at all; this
  /// exists to measure pure parallel-path overhead (bench_headline).
  bool force_parallel = false;
  /// Pipeline-parallel operators above the scan: when the engine runs
  /// parallel, the join build (per-worker key hashing + summary partials,
  /// deterministic hash-table construction), the top-k heap (per-worker
  /// bounded-heap candidate filters) and the sort (per-worker sorted runs +
  /// consumer k-way merge) each push their per-row work onto the same scan
  /// workers as morsel pipeline stages. Rows AND PruningStats stay
  /// byte-identical to serial at every thread count (see the operators'
  /// headers for the per-operator exactness arguments). Streaming operators
  /// (project, filter, limit) stay on the consumer: they are O(rows kept)
  /// and not pipeline breakers.
  bool parallel_pipeline = true;
  /// Allow worker-side partial aggregation (scan+aggregate fusion) for
  /// GROUP BY plans whose aggregates merge exactly (COUNT/MIN/MAX always;
  /// SUM/AVG only over int64 inputs whose zone-map-bounded running sum
  /// provably stays below 2^53, where double accumulation is exact and
  /// therefore merge-order-independent).
  bool parallel_preagg = true;
  /// Expression specialization tier (src/expr/jit/): compile hot predicates
  /// into fused bytecode kernels. Off disables every compile/attach site —
  /// scans run the vectorized interpreter unconditionally.
  bool specialize = true;
  /// Predicate-cache hits before a cached query shape is promoted to a
  /// compiled program. 0 = eager: every compiled query's scan filter is
  /// specialized at compile time (benches, fuzz oracle, sharded scatter).
  int specialize_after = 8;
};

/// Engine-wide configuration: which pruning techniques run and how they are
/// parameterized. Defaults mirror the paper's production setup (everything
/// on); benches toggle individual techniques for ablations.
struct EngineConfig {
  bool enable_filter_pruning = true;
  FilterPruningPhase filter_pruning_phase = FilterPruningPhase::kCompileTime;
  bool enable_limit_pruning = true;
  bool enable_topk_pruning = true;
  bool enable_join_pruning = true;

  FilterPrunerConfig filter;

  OrderStrategy topk_order_strategy = OrderStrategy::kFullSort;
  BoundaryInitMode topk_boundary_init = BoundaryInitMode::kStricter;

  SummaryKind join_summary_kind = SummaryKind::kRangeSet;
  size_t join_summary_budget_bytes = 1024;
  bool join_row_level_bloom = false;

  /// Optional §8.2 top-k predicate cache (not owned).
  PredicateCache* predicate_cache = nullptr;

  ExecConfig exec;
};

/// How a LIMIT query fared under LIMIT pruning — the categories of the
/// paper's Table 2, plus plan-shape rejection.
enum class LimitClassification {
  kNotALimitQuery,
  kAlreadyMinimal,
  kUnsupportedShape,  ///< LIMIT not pushable to any scan (§4.3).
  kNoFullyMatching,
  kPrunedToZero,
  kPrunedToOne,
  kPrunedToMany,
};

const char* ToString(LimitClassification c);

class QueryProfile;
class Trace;

/// Everything a query execution reports back.
struct QueryResult {
  std::vector<Row> rows;
  Schema schema;
  PruningStats stats;
  double wall_ms = 0.0;
  LimitClassification limit_class = LimitClassification::kNotALimitQuery;
  bool topk_pruning_attached = false;
  bool predicate_cache_hit = false;
  int64_t scan_set_bytes = 0;  ///< Serialized scan-set size shipped to compute.
  /// Row count of each batch the root operator emitted, in delivery order
  /// (only recorded under ExecuteOptions::collect_batch_rows). For a bare
  /// scan with a scan-set override this aligns 1:1 with the override's
  /// partition ids — the shard coordinator uses it to split `rows` back
  /// into per-partition fragments without any row-level provenance.
  std::vector<size_t> batch_rows;
  /// EXPLAIN ANALYZE-style per-operator report. Built only for traced
  /// executions (ExecuteOptions::trace set); null otherwise. Shared so the
  /// service can keep it on the query handle after the result moves on.
  std::shared_ptr<QueryProfile> profile;
  /// Shard sub-queries this query re-ran after transient faults (sharded
  /// execution only; 0 elsewhere). A non-zero count with an OK status means
  /// the retry layer absorbed the faults — the rows above are byte-identical
  /// to a fault-free run.
  int64_t shard_retries = 0;
};

/// Per-call execution options (the plain Execute(plan, cancel) overload is
/// the common path; the sharded coordinator uses the extended knobs).
struct ExecuteOptions {
  /// Caller-owned cancellation flag (see Execute's contract).
  const std::atomic<bool>* cancel = nullptr;
  /// Pre-resolved table snapshot. When set, the engine skips its own catalog
  /// snapshot and compiles against exactly these table versions — the shard
  /// coordinator passes one snapshot to every shard sub-query so DML
  /// (Catalog::ReplaceTable) stays snapshot-atomic across the whole scatter.
  const std::map<std::string, std::shared_ptr<Table>>* tables = nullptr;
  /// Per-table scan-set override. A scan of a listed table executes exactly
  /// the given partitions, in the given order: compile-time pruning, runtime
  /// pruner attachment, pending top-k preparation, predicate binding and
  /// stats metering are all skipped for it — the caller (the coordinator)
  /// already ran every compile-time pass globally and pre-bound the
  /// predicate against the snapshot's schema. Skipping the re-bind is what
  /// lets concurrent shard sub-queries share one predicate tree without
  /// racing on its binding state.
  const std::map<std::string, ScanSet>* scan_sets = nullptr;
  /// Record QueryResult::batch_rows.
  bool collect_batch_rows = false;
  /// Per-query trace (caller-owned, one query at a time). When set, the
  /// engine records compile/execute spans, operators meter themselves into
  /// a QueryProfile attached to the result, and pool workers record morsel
  /// spans (merged at delivery). Null — the default — skips every metering
  /// site on its first branch.
  Trace* trace = nullptr;
  /// Absolute steady-clock deadline in ns (see SteadyNowNs); 0 = none. Past
  /// it, execution stops on the cancellation plumbing (scans abandon their
  /// schedulers within ~a morsel window) and Execute returns
  /// kDeadlineExceeded. Checked at entry, per root batch, and per partition
  /// on workers.
  int64_t deadline_ns = 0;
  /// Pre-compiled specialization programs, keyed by table name (set by the
  /// shard coordinator so every shard sub-query shares one compilation).
  /// Only consulted on the scan-set-override path — the same path that
  /// shares the pre-bound predicate tree.
  const std::map<std::string,
                 std::shared_ptr<const jit::CompiledPredicate>>*
      compiled_filters = nullptr;
};

/// Compiles and executes plans against a catalog, applying the paper's four
/// pruning techniques in their §7 order: filter pruning and LIMIT pruning at
/// compile time; join pruning and top-k pruning at runtime via sideways
/// information passing.
class Engine {
 public:
  explicit Engine(Catalog* catalog, EngineConfig config = EngineConfig());
  ~Engine();

  /// Compiles and runs `plan`. The plan's expressions get (re)bound to the
  /// referenced tables' schemas as a side effect.
  ///
  /// `cancel`, when non-null, is a caller-owned flag polled throughout
  /// execution (it must outlive the call): once set, scans stop delivering
  /// and abandon their schedulers — unstarted morsels never reach the pool,
  /// so a cancelled query frees its share of a shared pool within about one
  /// in-flight window — and Execute returns Status::Cancelled.
  Result<QueryResult> Execute(const PlanPtr& plan,
                              const std::atomic<bool>* cancel = nullptr);

  /// Extended entry point: snapshot injection, scan-set overrides, and
  /// per-batch row accounting (see ExecuteOptions).
  Result<QueryResult> Execute(const PlanPtr& plan, const ExecuteOptions& opts);

  const EngineConfig& config() const { return config_; }
  EngineConfig* mutable_config() { return &config_; }

 private:
  struct CompileContext;

  Result<OperatorPtr> Compile(const PlanPtr& plan, CompileContext* ctx);

  Catalog* catalog_;
  EngineConfig config_;
  /// Lazily created worker pool, shared across this engine's queries;
  /// recreated when ExecConfig::num_threads changes between executions.
  std::unique_ptr<ThreadPool> pool_;
  /// Actions deferred to after execution (predicate-cache population).
  std::vector<std::function<void()>> post_run_hooks_;
};

}  // namespace snowprune

#endif  // SNOWPRUNE_EXEC_ENGINE_H_
