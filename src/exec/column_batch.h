#ifndef SNOWPRUNE_EXEC_COLUMN_BATCH_H_
#define SNOWPRUNE_EXEC_COLUMN_BATCH_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.h"
#include "exec/batch.h"
#include "storage/partition.h"

namespace snowprune {

/// The unboxed unit of data flow on the scan→filter→aggregate hot path: the
/// rows of one scanned micro-partition that survived the WHERE clause,
/// represented as the partition's own typed column vectors (borrowed, never
/// copied) plus an optional selection vector of surviving row indexes.
/// Provenance is the partition id itself, so the per-row `Batch::source`
/// tracking of the boxed path degenerates to a single value here.
///
/// Lifetime: the batch borrows the MicroPartition, which is owned by its
/// Table and immutable while a query executes (DML never runs concurrently
/// with execution in this engine); a ColumnBatch must not outlive the query
/// that produced it.
///
/// Operators that need boxed rows (join, top-k, project, plan boundaries)
/// convert through Materialize() — the single, well-tested adapter out of
/// the unboxed world — so the hot path never constructs a `Value` per row.
class ColumnBatch {
 public:
  ColumnBatch() = default;

  /// A batch covering every row of `partition` (no filter, or a filter the
  /// whole partition satisfies). No selection vector is allocated.
  /// `source` is the scan-set partition id — passed explicitly because
  /// MicroPartition::id() can go stale after DML compaction
  /// (Table::DeletePartition re-indexes positions, not stored ids).
  static ColumnBatch AllOf(const MicroPartition& partition,
                           PartitionId source) {
    ColumnBatch b;
    b.partition_ = &partition;
    b.source_ = source;
    b.select_all_ = true;
    return b;
  }

  /// A batch covering the rows of `partition` listed in `selection`
  /// (ascending physical row indexes).
  ///
  /// Everything downstream leans on the selection-vector contract —
  /// strictly ascending, in-bounds physical row indexes. Vectorized
  /// evaluators produce per-lane results positionally, Materialize preserves
  /// row order, and the top-k/sort replay paths assume batch row order
  /// equals physical row order. Debug builds verify the contract at this
  /// single entry point into the unboxed world.
  static ColumnBatch Selected(const MicroPartition& partition,
                              PartitionId source,
                              std::vector<uint32_t> selection) {
#if SNOW_DCHECK_IS_ON
    for (size_t i = 0; i < selection.size(); ++i) {
      SNOW_DCHECK_LT(static_cast<int64_t>(selection[i]),
                     partition.row_count());
      if (i > 0) SNOW_DCHECK_LT(selection[i - 1], selection[i]);
    }
#endif
    ColumnBatch b;
    b.partition_ = &partition;
    b.source_ = source;
    b.selection_ = std::move(selection);
    return b;
  }

  bool valid() const { return partition_ != nullptr; }
  const MicroPartition* partition() const { return partition_; }

  /// Provenance: the originating micro-partition (predicate cache, §8.2).
  PartitionId source() const { return source_; }

  size_t num_rows() const {
    if (partition_ == nullptr) return 0;
    return select_all_ ? static_cast<size_t>(partition_->row_count())
                       : selection_.size();
  }
  size_t num_columns() const {
    return partition_ == nullptr ? 0 : partition_->num_columns();
  }

  /// Physical row index (into the partition's columns) of logical row `i`.
  uint32_t row_index(size_t i) const {
    return select_all_ ? static_cast<uint32_t>(i) : selection_[i];
  }

  const ColumnVector& column(size_t c) const { return partition_->column(c); }

  bool select_all() const { return select_all_; }
  const std::vector<uint32_t>& selection() const { return selection_; }

  void Clear() {
    partition_ = nullptr;
    source_ = 0;
    select_all_ = false;
    selection_.clear();
  }

  /// The boxed-row adapter: materializes the surviving rows into `out`
  /// (replacing its contents). With `track_source`, every row is tagged
  /// with this batch's partition id.
  void MaterializeInto(Batch* out, bool track_source) const;

  Batch Materialize(bool track_source = false) const {
    Batch out;
    MaterializeInto(&out, track_source);
    return out;
  }

  /// Boxes one physical row (all columns), appending to `out` — the bounded
  /// per-row escape hatch for operators that keep only a few rows boxed at
  /// a time (the top-k heap, join output assembly) instead of
  /// materializing every batch.
  void AppendRowValues(uint32_t r, Row* out) const;

  /// Process-wide count of MaterializeInto() calls. Tests assert the boxed
  /// adapter stays off the fully columnar pipelines (scan→aggregate,
  /// scan→join, scan→top-k, scan→sort): the count must not move while one
  /// of those plans executes.
  static int64_t materialize_calls();

 private:
  const MicroPartition* partition_ = nullptr;
  PartitionId source_ = 0;
  bool select_all_ = false;
  std::vector<uint32_t> selection_;
};

/// Three-way comparison of physical row `r` of `col` against a boxed value
/// previously taken from the *same column* (so the kinds always match),
/// without constructing a Value. Mirrors Value::Compare. Inline: callers
/// (aggregate min/max, top-k boundary checks) hit this once per row.
inline int CompareCellVsValue(const ColumnVector& col, uint32_t r,
                              const Value& v) {
  switch (col.type()) {
    case DataType::kInt64: {
      const int64_t x = col.Int64At(r), y = v.int64_value();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    case DataType::kFloat64: {
      const double x = col.Float64At(r), y = v.float64_value();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    case DataType::kString:
      return col.StringAt(r).compare(v.string_value());
    case DataType::kBool:
      return static_cast<int>(col.BoolAt(r)) -
             static_cast<int>(v.bool_value());
  }
  return 0;
}

/// Three-way comparison of two non-null cells drawn from columns of the
/// SAME type (e.g. the same table column across two batches), without
/// constructing Values. Mirrors Value::Compare exactly (double NaN ties the
/// way !(x<y)&&!(x>y) does), so worker-side pipeline stages (top-k
/// candidate filters, sorted runs) order rows identically to the boxed
/// consumer path.
inline int CompareCells(const ColumnVector& a, uint32_t ar,
                        const ColumnVector& b, uint32_t br) {
  switch (a.type()) {
    case DataType::kInt64: {
      const int64_t x = a.Int64At(ar), y = b.Int64At(br);
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    case DataType::kFloat64: {
      const double x = a.Float64At(ar), y = b.Float64At(br);
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    case DataType::kString:
      return a.StringAt(ar).compare(b.StringAt(br));
    case DataType::kBool:
      return static_cast<int>(a.BoolAt(ar)) - static_cast<int>(b.BoolAt(br));
  }
  return 0;
}

}  // namespace snowprune

#endif  // SNOWPRUNE_EXEC_COLUMN_BATCH_H_
