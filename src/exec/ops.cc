#include "exec/ops.h"

#include <algorithm>
#include <cassert>
#include <string_view>

#include "exec/column_batch.h"
#include "exec/row_eval.h"
#include "exec/scan_op.h"

namespace snowprune {

FilterOp::FilterOp(OperatorPtr input, ExprPtr predicate)
    : input_(std::move(input)), predicate_(std::move(predicate)) {}

bool FilterOp::Next(Batch* out) {
  Batch in;
  while (input_->Next(&in)) {
    out->rows.clear();
    out->source.clear();
    const bool track = in.has_source();
    for (size_t i = 0; i < in.rows.size(); ++i) {
      auto keep = EvalRowPredicate(*predicate_, in.rows[i]);
      if (keep.has_value() && *keep) {
        out->rows.push_back(std::move(in.rows[i]));
        if (track) out->source.push_back(in.source[i]);
      }
    }
    return true;  // preserve batch boundaries (partition granularity)
  }
  return false;
}

ProjectOp::ProjectOp(OperatorPtr input, std::vector<ExprPtr> exprs,
                     std::vector<std::string> names)
    : input_(std::move(input)), exprs_(std::move(exprs)) {
  assert(exprs_.size() == names.size());
  std::vector<Field> fields;
  for (size_t i = 0; i < names.size(); ++i) {
    // Projected expressions are dynamically typed; record the column name
    // and a nominal type (refined by consumers via values, not the schema).
    DataType type = DataType::kFloat64;
    if (exprs_[i]->kind() == ExprKind::kColumnRef) {
      const auto& ref = static_cast<const ColumnRefExpr&>(*exprs_[i]);
      if (ref.bound()) {
        type = input_->output_schema().field(ref.index()).type;
      }
    }
    fields.push_back(Field{names[i], type, /*nullable=*/true});
  }
  schema_ = Schema(std::move(fields));
}

bool ProjectOp::Next(Batch* out) {
  Batch in;
  if (!input_->Next(&in)) return false;
  out->rows.clear();
  out->source.clear();
  const bool track = in.has_source();
  out->rows.reserve(in.rows.size());
  for (size_t i = 0; i < in.rows.size(); ++i) {
    Row projected;
    projected.reserve(exprs_.size());
    for (const auto& e : exprs_) projected.push_back(EvalRow(*e, in.rows[i]));
    out->rows.push_back(std::move(projected));
    if (track) out->source.push_back(in.source[i]);
  }
  return true;
}

LimitOp::LimitOp(OperatorPtr input, int64_t k, int64_t offset)
    : input_(std::move(input)), k_(k), offset_(offset) {}

void LimitOp::Open() {
  consumed_ = 0;
  input_->Open();
}

bool LimitOp::Next(Batch* out) {
  const int64_t target = offset_ + k_;
  if (consumed_ >= target) return false;
  Batch in;
  while (input_->Next(&in)) {
    out->rows.clear();
    out->source.clear();
    const bool track = in.has_source();
    for (size_t i = 0; i < in.rows.size() && consumed_ < target; ++i) {
      ++consumed_;
      if (consumed_ <= offset_) continue;  // discard the OFFSET prefix
      out->rows.push_back(std::move(in.rows[i]));
      if (track) out->source.push_back(in.source[i]);
    }
    if (!out->rows.empty() || consumed_ >= target) return true;
    // Empty batch (fully filtered partition): keep pulling.
  }
  return false;
}

SortOp::SortOp(OperatorPtr input, size_t order_column, bool descending)
    : input_(std::move(input)),
      order_column_(order_column),
      descending_(descending) {}

void SortOp::Open() {
  done_ = false;
  buffered_.rows.clear();
  buffered_.source.clear();
  input_->Open();
}

bool SortOp::Next(Batch* out) {
  if (done_) return false;
  if (auto* scan = dynamic_cast<TableScanOp*>(input_.get())) {
    // Columnar sort: buffer the scan's ColumnBatches (borrowed partitions,
    // alive for the query) and stable-sort an index permutation over the
    // unboxed order-key cells; rows are boxed once, in output order, at
    // this pipeline-breaker's boundary. The permutation entries are
    // decorated with the typed key (decorate-sort-undecorate), so the
    // comparator never chases batch/column indirections. Same comparator
    // semantics as the boxed path (NULLs last either direction) on the
    // same input order, so the output is byte-identical.
    std::vector<ColumnBatch> batches;
    ColumnBatch cb;
    while (scan->NextColumns(&cb)) batches.push_back(std::move(cb));
    size_t total = 0;
    for (const ColumnBatch& b : batches) total += b.num_rows();

    // KeyT must order exactly like Value::Compare for the column's type.
    auto sort_typed = [&](auto key_of, auto null_key) {
      using KeyT = decltype(null_key);
      struct Entry {
        KeyT key;
        uint8_t null;
        uint32_t batch;
        uint32_t row;  ///< Physical row index within the partition.
      };
      std::vector<Entry> order;
      order.reserve(total);
      for (size_t bi = 0; bi < batches.size(); ++bi) {
        const ColumnVector& col = batches[bi].column(order_column_);
        const auto& nulls = col.null_mask();
        const size_t n = batches[bi].num_rows();
        for (size_t i = 0; i < n; ++i) {
          const uint32_t r = batches[bi].row_index(i);
          order.push_back(Entry{nulls[r] ? null_key : key_of(col, r),
                                nulls[r], static_cast<uint32_t>(bi), r});
        }
      }
      const bool desc = descending_;
      std::stable_sort(order.begin(), order.end(),
                       [desc](const Entry& x, const Entry& y) {
                         if (x.null) return false;  // NULLs sort last
                         if (y.null) return true;
                         return desc ? y.key < x.key : x.key < y.key;
                       });
      out->rows.clear();
      out->source.clear();
      out->rows.reserve(order.size());
      for (const Entry& e : order) {
        Row row;
        batches[e.batch].AppendRowValues(e.row, &row);
        out->rows.push_back(std::move(row));
      }
    };

    const DataType type =
        input_->output_schema().field(order_column_).type;
    switch (type) {
      case DataType::kInt64:
        sort_typed([](const ColumnVector& c, uint32_t r) { return c.Int64At(r); },
                   int64_t{0});
        break;
      case DataType::kFloat64:
        sort_typed(
            [](const ColumnVector& c, uint32_t r) { return c.Float64At(r); },
            0.0);
        break;
      case DataType::kBool:
        sort_typed([](const ColumnVector& c, uint32_t r) { return c.BoolAt(r); },
                   false);
        break;
      case DataType::kString:
        // Decorate with string views into the immutable partitions;
        // std::string_view orders like std::string::compare.
        sort_typed(
            [](const ColumnVector& c, uint32_t r) {
              return std::string_view(c.StringAt(r));
            },
            std::string_view());
        break;
    }
    done_ = true;
    return !out->rows.empty();
  }
  Batch in;
  while (input_->Next(&in)) {
    for (auto& row : in.rows) buffered_.rows.push_back(std::move(row));
  }
  // NULL order keys sort last regardless of direction (and are excluded
  // from top-k results by the TopK operator; SortOp keeps them for
  // completeness).
  std::stable_sort(buffered_.rows.begin(), buffered_.rows.end(),
                   [&](const Row& a, const Row& b) {
                     const Value& va = a[order_column_];
                     const Value& vb = b[order_column_];
                     if (va.is_null()) return false;
                     if (vb.is_null()) return true;
                     int c = Value::Compare(va, vb);
                     return descending_ ? c > 0 : c < 0;
                   });
  *out = std::move(buffered_);
  buffered_ = Batch{};
  done_ = true;
  return !out->rows.empty();
}

}  // namespace snowprune
