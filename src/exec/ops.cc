#include "exec/ops.h"

#include <algorithm>
#include <cassert>

#include "exec/row_eval.h"

namespace snowprune {

FilterOp::FilterOp(OperatorPtr input, ExprPtr predicate)
    : input_(std::move(input)), predicate_(std::move(predicate)) {}

bool FilterOp::Next(Batch* out) {
  Batch in;
  while (input_->Next(&in)) {
    out->rows.clear();
    out->source.clear();
    const bool track = in.has_source();
    for (size_t i = 0; i < in.rows.size(); ++i) {
      auto keep = EvalRowPredicate(*predicate_, in.rows[i]);
      if (keep.has_value() && *keep) {
        out->rows.push_back(std::move(in.rows[i]));
        if (track) out->source.push_back(in.source[i]);
      }
    }
    return true;  // preserve batch boundaries (partition granularity)
  }
  return false;
}

ProjectOp::ProjectOp(OperatorPtr input, std::vector<ExprPtr> exprs,
                     std::vector<std::string> names)
    : input_(std::move(input)), exprs_(std::move(exprs)) {
  assert(exprs_.size() == names.size());
  std::vector<Field> fields;
  for (size_t i = 0; i < names.size(); ++i) {
    // Projected expressions are dynamically typed; record the column name
    // and a nominal type (refined by consumers via values, not the schema).
    DataType type = DataType::kFloat64;
    if (exprs_[i]->kind() == ExprKind::kColumnRef) {
      const auto& ref = static_cast<const ColumnRefExpr&>(*exprs_[i]);
      if (ref.bound()) {
        type = input_->output_schema().field(ref.index()).type;
      }
    }
    fields.push_back(Field{names[i], type, /*nullable=*/true});
  }
  schema_ = Schema(std::move(fields));
}

bool ProjectOp::Next(Batch* out) {
  Batch in;
  if (!input_->Next(&in)) return false;
  out->rows.clear();
  out->source.clear();
  const bool track = in.has_source();
  out->rows.reserve(in.rows.size());
  for (size_t i = 0; i < in.rows.size(); ++i) {
    Row projected;
    projected.reserve(exprs_.size());
    for (const auto& e : exprs_) projected.push_back(EvalRow(*e, in.rows[i]));
    out->rows.push_back(std::move(projected));
    if (track) out->source.push_back(in.source[i]);
  }
  return true;
}

LimitOp::LimitOp(OperatorPtr input, int64_t k, int64_t offset)
    : input_(std::move(input)), k_(k), offset_(offset) {}

void LimitOp::Open() {
  consumed_ = 0;
  input_->Open();
}

bool LimitOp::Next(Batch* out) {
  const int64_t target = offset_ + k_;
  if (consumed_ >= target) return false;
  Batch in;
  while (input_->Next(&in)) {
    out->rows.clear();
    out->source.clear();
    const bool track = in.has_source();
    for (size_t i = 0; i < in.rows.size() && consumed_ < target; ++i) {
      ++consumed_;
      if (consumed_ <= offset_) continue;  // discard the OFFSET prefix
      out->rows.push_back(std::move(in.rows[i]));
      if (track) out->source.push_back(in.source[i]);
    }
    if (!out->rows.empty() || consumed_ >= target) return true;
    // Empty batch (fully filtered partition): keep pulling.
  }
  return false;
}

SortOp::SortOp(OperatorPtr input, size_t order_column, bool descending)
    : input_(std::move(input)),
      order_column_(order_column),
      descending_(descending) {}

void SortOp::Open() {
  done_ = false;
  buffered_.rows.clear();
  buffered_.source.clear();
  input_->Open();
}

bool SortOp::Next(Batch* out) {
  if (done_) return false;
  Batch in;
  while (input_->Next(&in)) {
    for (auto& row : in.rows) buffered_.rows.push_back(std::move(row));
  }
  // NULL order keys sort last regardless of direction (and are excluded
  // from top-k results by the TopK operator; SortOp keeps them for
  // completeness).
  std::stable_sort(buffered_.rows.begin(), buffered_.rows.end(),
                   [&](const Row& a, const Row& b) {
                     const Value& va = a[order_column_];
                     const Value& vb = b[order_column_];
                     if (va.is_null()) return false;
                     if (vb.is_null()) return true;
                     int c = Value::Compare(va, vb);
                     return descending_ ? c > 0 : c < 0;
                   });
  *out = std::move(buffered_);
  buffered_ = Batch{};
  done_ = true;
  return !out->rows.empty();
}

}  // namespace snowprune
