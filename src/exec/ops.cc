#include "exec/ops.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>
#include <string_view>

#include "common/trace.h"
#include "exec/column_batch.h"
#include "exec/profile.h"
#include "exec/row_eval.h"
#include "exec/scan_op.h"

namespace snowprune {

namespace {

/// One partition's decorated, stable-sorted run produced by the sort's
/// worker stage. KeyT orders exactly like Value::Compare for the column's
/// type; NULL keys carry null=1 and sort last in either direction.
template <typename KeyT>
struct SortedRun {
  struct Entry {
    KeyT key;
    uint8_t null;
    uint32_t row;  ///< Physical row index within the partition.
  };
  std::vector<Entry> entries;
};

/// THE sort comparator, shared by the serial decorate-sort path and the
/// worker-side run builder so the two can never drift: NULLs last in either
/// direction, then `<` on the typed key. Works for any decorated entry type
/// exposing `.key` and `.null`.
template <typename Entry>
void StableSortDecorated(std::vector<Entry>* entries, bool desc) {
  std::stable_sort(entries->begin(), entries->end(),
                   [desc](const Entry& x, const Entry& y) {
                     if (x.null) return false;  // NULLs sort last
                     if (y.null) return true;
                     return desc ? y.key < x.key : x.key < y.key;
                   });
}

template <typename KeyT, typename KeyOf>
std::shared_ptr<void> BuildSortedRun(const ColumnBatch& batch, size_t column,
                                     bool desc, KeyOf key_of, KeyT null_key) {
  auto run = std::make_shared<SortedRun<KeyT>>();
  const ColumnVector& col = batch.column(column);
  const auto& nulls = col.null_mask();
  const size_t n = batch.num_rows();
  run->entries.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const uint32_t r = batch.row_index(i);
    run->entries.push_back(typename SortedRun<KeyT>::Entry{
        nulls[r] ? null_key : key_of(col, r),
        static_cast<uint8_t>(nulls[r] ? 1 : 0), r});
  }
  StableSortDecorated(&run->entries, desc);
  return run;
}

/// Type dispatch for the worker stage. String keys decorate with views into
/// the immutable partition, valid for the life of the query.
std::shared_ptr<void> BuildSortedRunFor(DataType type, const ColumnBatch& batch,
                                        size_t column, bool desc) {
  switch (type) {
    case DataType::kInt64:
      return BuildSortedRun<int64_t>(
          batch, column, desc,
          [](const ColumnVector& c, uint32_t r) { return c.Int64At(r); },
          int64_t{0});
    case DataType::kFloat64: {
      // NaN order keys make `<` a non-strict-weak ordering: per-run sorting
      // plus a k-way merge is then NOT equivalent to one stable_sort over
      // the concatenated input, and the parallel output could diverge from
      // serial. Leave such partitions run-less — the consumer falls back to
      // the serial whole-input sort and byte-identity is preserved.
      const ColumnVector& col = batch.column(column);
      const auto& nulls = col.null_mask();
      const size_t n = batch.num_rows();
      for (size_t i = 0; i < n; ++i) {
        const uint32_t r = batch.row_index(i);
        if (!nulls[r] && std::isnan(col.Float64At(r))) return nullptr;
      }
      return BuildSortedRun<double>(
          batch, column, desc,
          [](const ColumnVector& c, uint32_t r) { return c.Float64At(r); },
          0.0);
    }
    case DataType::kBool:
      return BuildSortedRun<bool>(
          batch, column, desc,
          [](const ColumnVector& c, uint32_t r) { return c.BoolAt(r); },
          false);
    case DataType::kString:
      return BuildSortedRun<std::string_view>(
          batch, column, desc,
          [](const ColumnVector& c, uint32_t r) {
            return std::string_view(c.StringAt(r));
          },
          std::string_view());
  }
  return nullptr;
}

/// K-way merge of per-partition sorted runs into boxed output rows. Key
/// ties (and the all-NULL tail) break to the earlier run — runs arrive in
/// scan-set order, and entries within a run are already stable — so the
/// merged order equals the serial stable_sort over the concatenated input.
template <typename KeyT>
void MergeSortedRuns(const std::vector<ColumnBatch>& batches,
                     const std::vector<std::shared_ptr<void>>& runs,
                     bool desc, Batch* out) {
  using Run = SortedRun<KeyT>;
  struct Head {
    uint32_t run;
    uint32_t pos;
  };
  auto entries_of = [&](uint32_t run) -> const std::vector<typename Run::Entry>& {
    return static_cast<const Run*>(runs[run].get())->entries;
  };
  /// Is `a` strictly before `b` in output order?
  auto before = [&](const Head& a, const Head& b) {
    const auto& ea = entries_of(a.run)[a.pos];
    const auto& eb = entries_of(b.run)[b.pos];
    if (ea.null != eb.null) return eb.null != 0;  // non-NULL first
    if (!ea.null) {
      if (desc ? (eb.key < ea.key) : (ea.key < eb.key)) return true;
      if (desc ? (ea.key < eb.key) : (eb.key < ea.key)) return false;
    }
    return a.run < b.run;  // stable: earlier scan-set batch wins ties
  };
  auto heap_cmp = [&](const Head& a, const Head& b) { return before(b, a); };
  std::vector<Head> heads;
  size_t total = 0;
  for (size_t i = 0; i < runs.size(); ++i) {
    const size_t n = entries_of(static_cast<uint32_t>(i)).size();
    total += n;
    if (n > 0) heads.push_back(Head{static_cast<uint32_t>(i), 0});
  }
  std::make_heap(heads.begin(), heads.end(), heap_cmp);
  out->rows.reserve(total);
  while (!heads.empty()) {
    std::pop_heap(heads.begin(), heads.end(), heap_cmp);
    Head h = heads.back();
    heads.pop_back();
    Row row;
    batches[h.run].AppendRowValues(entries_of(h.run)[h.pos].row, &row);
    out->rows.push_back(std::move(row));
    if (h.pos + 1 < entries_of(h.run).size()) {
      heads.push_back(Head{h.run, h.pos + 1});
      std::push_heap(heads.begin(), heads.end(), heap_cmp);
    }
  }
}

void MergeSortedRunsFor(DataType type, const std::vector<ColumnBatch>& batches,
                        const std::vector<std::shared_ptr<void>>& runs,
                        bool desc, Batch* out) {
  switch (type) {
    case DataType::kInt64:
      MergeSortedRuns<int64_t>(batches, runs, desc, out);
      return;
    case DataType::kFloat64:
      MergeSortedRuns<double>(batches, runs, desc, out);
      return;
    case DataType::kBool:
      MergeSortedRuns<bool>(batches, runs, desc, out);
      return;
    case DataType::kString:
      MergeSortedRuns<std::string_view>(batches, runs, desc, out);
      return;
  }
}

}  // namespace

FilterOp::FilterOp(OperatorPtr input, ExprPtr predicate)
    : input_(std::move(input)), predicate_(std::move(predicate)) {}

bool FilterOp::Next(Batch* out) {
  if (profile_ == nullptr) return NextInner(out);
  return ProfiledNext(
      profile_, [&] { return NextInner(out); },
      [&] { return static_cast<int64_t>(out->rows.size()); });
}

bool FilterOp::NextInner(Batch* out) {
  Batch in;
  while (input_->Next(&in)) {
    out->rows.clear();
    out->source.clear();
    const bool track = in.has_source();
    for (size_t i = 0; i < in.rows.size(); ++i) {
      auto keep = EvalRowPredicate(*predicate_, in.rows[i]);
      if (keep.has_value() && *keep) {
        out->rows.push_back(std::move(in.rows[i]));
        if (track) out->source.push_back(in.source[i]);
      }
    }
    return true;  // preserve batch boundaries (partition granularity)
  }
  return false;
}

ProjectOp::ProjectOp(OperatorPtr input, std::vector<ExprPtr> exprs,
                     std::vector<std::string> names)
    : input_(std::move(input)), exprs_(std::move(exprs)) {
  assert(exprs_.size() == names.size());
  std::vector<Field> fields;
  for (size_t i = 0; i < names.size(); ++i) {
    // Projected expressions are dynamically typed; record the column name
    // and a nominal type (refined by consumers via values, not the schema).
    DataType type = DataType::kFloat64;
    if (exprs_[i]->kind() == ExprKind::kColumnRef) {
      const auto& ref = static_cast<const ColumnRefExpr&>(*exprs_[i]);
      if (ref.bound()) {
        type = input_->output_schema().field(ref.index()).type;
      }
    }
    fields.push_back(Field{names[i], type, /*nullable=*/true});
  }
  schema_ = Schema(std::move(fields));
}

bool ProjectOp::Next(Batch* out) {
  if (profile_ == nullptr) return NextInner(out);
  return ProfiledNext(
      profile_, [&] { return NextInner(out); },
      [&] { return static_cast<int64_t>(out->rows.size()); });
}

bool ProjectOp::NextInner(Batch* out) {
  Batch in;
  if (!input_->Next(&in)) return false;
  out->rows.clear();
  out->source.clear();
  const bool track = in.has_source();
  out->rows.reserve(in.rows.size());
  for (size_t i = 0; i < in.rows.size(); ++i) {
    Row projected;
    projected.reserve(exprs_.size());
    for (const auto& e : exprs_) projected.push_back(EvalRow(*e, in.rows[i]));
    out->rows.push_back(std::move(projected));
    if (track) out->source.push_back(in.source[i]);
  }
  return true;
}

LimitOp::LimitOp(OperatorPtr input, int64_t k, int64_t offset)
    : input_(std::move(input)), k_(k), offset_(offset) {}

void LimitOp::Open() {
  consumed_ = 0;
  input_->Open();
}

bool LimitOp::Next(Batch* out) {
  if (profile_ == nullptr) return NextInner(out);
  return ProfiledNext(
      profile_, [&] { return NextInner(out); },
      [&] { return static_cast<int64_t>(out->rows.size()); });
}

bool LimitOp::NextInner(Batch* out) {
  const int64_t target = offset_ + k_;
  if (consumed_ >= target) return false;
  Batch in;
  while (input_->Next(&in)) {
    out->rows.clear();
    out->source.clear();
    const bool track = in.has_source();
    for (size_t i = 0; i < in.rows.size() && consumed_ < target; ++i) {
      ++consumed_;
      if (consumed_ <= offset_) continue;  // discard the OFFSET prefix
      out->rows.push_back(std::move(in.rows[i]));
      if (track) out->source.push_back(in.source[i]);
    }
    if (!out->rows.empty() || consumed_ >= target) return true;
    // Empty batch (fully filtered partition): keep pulling.
  }
  return false;
}

SortOp::SortOp(OperatorPtr input, size_t order_column, bool descending)
    : input_(std::move(input)),
      order_column_(order_column),
      descending_(descending) {}

void SortOp::Open() {
  done_ = false;
  buffered_.rows.clear();
  buffered_.source.clear();
  if (pipeline_parallel_) {
    auto* scan = dynamic_cast<TableScanOp*>(input_.get());
    if (scan != nullptr && scan->parallel_enabled()) {
      // Worker-side sorted-run stage: each partition's decorate + sort —
      // the O(n log n) share of the operator — happens on the worker that
      // scanned it. Captures by value only; no SortOp member is touched
      // from workers.
      const size_t col = order_column_;
      const bool desc = descending_;
      const DataType type = input_->output_schema().field(col).type;
      scan->set_morsel_stage([col, desc, type](MorselResult* morsel) {
        for (MorselItem& item : morsel->items) {
          if (!item.loaded) continue;
          item.payload = BuildSortedRunFor(type, item.batch, col, desc);
        }
      });
    }
  }
  input_->Open();
}

bool SortOp::Next(Batch* out) {
  if (profile_ == nullptr) return NextInner(out);
  return ProfiledNext(
      profile_, [&] { return NextInner(out); },
      [&] { return static_cast<int64_t>(out->rows.size()); });
}

bool SortOp::NextInner(Batch* out) {
  if (done_) return false;
  // The whole pipeline-breaking drain (buffer input, sort, box) happens on
  // this first call — one span covers it.
  ScopedSpan drain_span(trace_, "sort.drain", trace_parent_);
  if (auto* scan = dynamic_cast<TableScanOp*>(input_.get())) {
    // Columnar sort: buffer the scan's ColumnBatches (borrowed partitions,
    // alive for the query) and stable-sort an index permutation over the
    // unboxed order-key cells; rows are boxed once, in output order, at
    // this pipeline-breaker's boundary. The permutation entries are
    // decorated with the typed key (decorate-sort-undecorate), so the
    // comparator never chases batch/column indirections. Same comparator
    // semantics as the boxed path (NULLs last either direction) on the
    // same input order, so the output is byte-identical.
    std::vector<ColumnBatch> batches;
    std::vector<std::shared_ptr<void>> runs;  // aligned with batches
    bool all_runs = true;
    ColumnBatch cb;
    TableScanOp::MorselPayload payload;
    while (scan->NextColumns(&cb, &payload)) {
      all_runs = all_runs && payload != nullptr;
      batches.push_back(std::move(cb));
      runs.push_back(std::move(payload));
    }
    if (all_runs && !batches.empty()) {
      // Pipeline-parallel path: workers pre-sorted every partition; only
      // the k-way merge (and output boxing) remains on the consumer.
      out->rows.clear();
      out->source.clear();
      MergeSortedRunsFor(input_->output_schema().field(order_column_).type,
                         batches, runs, descending_, out);
      done_ = true;
      return !out->rows.empty();
    }
    size_t total = 0;
    for (const ColumnBatch& b : batches) total += b.num_rows();

    // KeyT must order exactly like Value::Compare for the column's type.
    auto sort_typed = [&](auto key_of, auto null_key) {
      using KeyT = decltype(null_key);
      struct Entry {
        KeyT key;
        uint8_t null;
        uint32_t batch;
        uint32_t row;  ///< Physical row index within the partition.
      };
      std::vector<Entry> order;
      order.reserve(total);
      for (size_t bi = 0; bi < batches.size(); ++bi) {
        const ColumnVector& col = batches[bi].column(order_column_);
        const auto& nulls = col.null_mask();
        const size_t n = batches[bi].num_rows();
        for (size_t i = 0; i < n; ++i) {
          const uint32_t r = batches[bi].row_index(i);
          order.push_back(Entry{nulls[r] ? null_key : key_of(col, r),
                                nulls[r], static_cast<uint32_t>(bi), r});
        }
      }
      StableSortDecorated(&order, descending_);
      out->rows.clear();
      out->source.clear();
      out->rows.reserve(order.size());
      for (const Entry& e : order) {
        Row row;
        batches[e.batch].AppendRowValues(e.row, &row);
        out->rows.push_back(std::move(row));
      }
    };

    const DataType type =
        input_->output_schema().field(order_column_).type;
    switch (type) {
      case DataType::kInt64:
        sort_typed([](const ColumnVector& c, uint32_t r) { return c.Int64At(r); },
                   int64_t{0});
        break;
      case DataType::kFloat64:
        sort_typed(
            [](const ColumnVector& c, uint32_t r) { return c.Float64At(r); },
            0.0);
        break;
      case DataType::kBool:
        sort_typed([](const ColumnVector& c, uint32_t r) { return c.BoolAt(r); },
                   false);
        break;
      case DataType::kString:
        // Decorate with string views into the immutable partitions;
        // std::string_view orders like std::string::compare.
        sort_typed(
            [](const ColumnVector& c, uint32_t r) {
              return std::string_view(c.StringAt(r));
            },
            std::string_view());
        break;
    }
    done_ = true;
    return !out->rows.empty();
  }
  Batch in;
  while (input_->Next(&in)) {
    for (auto& row : in.rows) buffered_.rows.push_back(std::move(row));
  }
  // NULL order keys sort last regardless of direction (and are excluded
  // from top-k results by the TopK operator; SortOp keeps them for
  // completeness).
  std::stable_sort(buffered_.rows.begin(), buffered_.rows.end(),
                   [&](const Row& a, const Row& b) {
                     const Value& va = a[order_column_];
                     const Value& vb = b[order_column_];
                     if (va.is_null()) return false;
                     if (vb.is_null()) return true;
                     int c = Value::Compare(va, vb);
                     return descending_ ? c > 0 : c < 0;
                   });
  *out = std::move(buffered_);
  buffered_ = Batch{};
  done_ = true;
  return !out->rows.empty();
}

}  // namespace snowprune
