#ifndef SNOWPRUNE_EXEC_SCAN_OP_H_
#define SNOWPRUNE_EXEC_SCAN_OP_H_

#include <atomic>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "core/filter_pruner.h"
#include "core/join_pruner.h"
#include "common/mutex.h"
#include "core/pruning_stats.h"
#include "core/topk_pruner.h"
#include "exec/column_batch.h"
#include "exec/operator.h"
#include "exec/parallel/parallel_scan.h"
#include "exec/parallel/thread_pool.h"
#include "expr/evaluator.h"
#include "expr/expr.h"
#include "storage/table.h"

namespace snowprune {

namespace jit {
struct CompiledPredicate;
}  // namespace jit

/// Table scan over a (compile-time pruned) scan set. One output batch per
/// partition. Runtime pruning hooks:
///   - a TopKPruner attached by the planner is consulted before every load
///     (§5.2); skipped partitions never touch storage,
///   - a build-side summary installed by a hash join at Open() time prunes
///     the remaining scan set (§6.1, step 4).
/// The optional row-level `filter` is the query's WHERE clause; it runs
/// after the load (the part pruning could not avoid).
///
/// Data flow is unboxed: the scan's native output is a ColumnBatch — the
/// partition's own typed column vectors plus a selection vector filled by
/// vectorized predicate evaluation (NextColumns()). The Operator-interface
/// Next() materializes boxed rows through ColumnBatch::Materialize() for
/// consumers outside the scan→filter→aggregate hot path.
///
/// Parallel execution: when the engine attaches a ThreadPool via
/// EnableParallel(), Open() fans the scan set out across workers
/// morsel-style. A morsel covers one or more *consecutive* scan-set
/// partitions — small post-pruning partitions are batched until their
/// combined (metadata) row count reaches `morsel_min_rows`, so scheduling
/// overhead amortizes. Loading, predicate evaluation, runtime pruning
/// checks, and an optional per-morsel reduction run on workers; batches are
/// still delivered to the consumer in scan-set order, so every downstream
/// operator — and the query result — is bit-identical to serial execution.
/// Per-partition PruningStats are merged into the query's stats on the
/// consumer thread, in scan-set order.
///
/// One stats-parity exception: with runtime filter pruning AND the adaptive
/// tree's time-based cutoff opted in (PruningTreeConfig::enable_cutoff,
/// default off), CanPrune outcomes depend on wall-clock measurements, so
/// pruned_by_filter/scanned_partitions become timing-dependent under any
/// thread count — results stay correct (cutoff only ever keeps more
/// partitions), but exact stats parity is only guaranteed with the cutoff
/// at its default (disabled).
class TableScanOp : public Operator {
 public:
  /// A worker-side stage result (type-erased; producer and consumer agree
  /// on the concrete type, e.g. HashAggregateOp's partial group map, a
  /// top-k candidate list, a sorted run, a join-build hash partial).
  using MorselPayload = std::shared_ptr<void>;
  /// A per-morsel pipeline stage: runs on the worker that scanned the
  /// morsel, right after its partitions were loaded and filtered, and may
  /// attach per-item payloads (delivered with each batch), set the
  /// morsel-level payload (delivered via NextPayload), and/or clear item
  /// batches it fully consumed. Must be safe to run concurrently for
  /// distinct morsels and must not touch consumer-side state.
  using MorselStage = std::function<void(MorselResult*)>;

  TableScanOp(std::shared_ptr<Table> table, ScanSet scan_set, ExprPtr filter,
              PruningStats* stats);
  ~TableScanOp() override;

  /// Planner hook (§5): the TopK operator in the same pipeline publishes
  /// boundary updates through this pruner.
  void AttachTopKPruner(TopKPruner* pruner) { topk_pruner_ = pruner; }
  bool has_topk_pruner() const { return topk_pruner_ != nullptr; }

  /// Planner hook (§3.2): deferred filter pruning. When compile-time
  /// pruning was skipped (FilterPruningPhase::kRuntime), the scan checks
  /// each partition's zone maps right before loading it.
  void AttachRuntimeFilterPruner(FilterPruner* pruner) {
    runtime_filter_pruner_ = pruner;
  }

  /// Join hook (§6): prunes the not-yet-scanned part of the scan set with a
  /// freshly built summary. `key_column` indexes this scan's output schema.
  /// Returns the number of partitions pruned.
  int64_t ApplyJoinSummary(const BuildSummary& summary, size_t key_column);

  /// Emit per-row provenance (source partition ids) for the predicate cache
  /// when materializing boxed batches (NextColumns() always carries
  /// provenance — it is the batch's partition id).
  void set_track_source(bool track) { track_source_ = track; }

  /// Planner hook: replaces the scan set before execution (LIMIT pruning,
  /// top-k ordering/initialization, predicate-cache restriction).
  void ReplaceScanSet(ScanSet scan_set) { scan_set_ = std::move(scan_set); }

  /// Engine hook (specialization tier): a bytecode program compiled from
  /// this scan's filter. Each batch tries the fused executor first and falls
  /// back to the vectorized interpreter when the program cannot run against
  /// it (column drift) — selections are byte-identical either way. Shared:
  /// the same program may be attached to many scans across streams/shards.
  void set_compiled_filter(
      std::shared_ptr<const jit::CompiledPredicate> program) {
    compiled_filter_ = std::move(program);
  }
  const std::shared_ptr<const jit::CompiledPredicate>& compiled_filter() const {
    return compiled_filter_;
  }
  /// EXPLAIN ANALYZE attribution: batches filtered by the compiled program
  /// vs. ones that fell back to the interpreter (this execution).
  int64_t specialized_batches() const {
    return specialized_batches_.load(std::memory_order_relaxed);
  }
  int64_t interpreted_batches() const {
    return interpreted_batches_.load(std::memory_order_relaxed);
  }

  /// Engine hook: execute this scan partition-parallel on `pool`. Must be
  /// called before Open(). `window` bounds how many morsels may be buffered
  /// or in flight ahead of the consumer; `morsel_min_rows` is the row
  /// budget below which consecutive partitions are batched into one morsel
  /// (0 = one partition per morsel).
  void EnableParallel(ThreadPool* pool, size_t window, size_t morsel_min_rows);
  bool parallel_enabled() const { return pool_ != nullptr; }

  /// Installs a worker-side pipeline stage (see MorselStage). Parallel mode
  /// only; must be set before Open(). `coarse_morsels` requests far coarser
  /// morsel formation (~2 per worker) — right for reduction stages whose
  /// per-morsel merge cost is a whole partial state (aggregate fold), wrong
  /// for per-row stages (candidate filters, sorted runs) that want the scan
  /// default.
  void set_morsel_stage(MorselStage fn, bool coarse_morsels = false) {
    morsel_stage_ = std::move(fn);
    stage_coarse_morsels_ = coarse_morsels;
  }

  /// Consumer loop for reduction stages: delivers the next morsel's
  /// morsel-level payload in scan-set order (skipping pruned/empty
  /// morsels). False at end of scan.
  bool NextPayload(MorselPayload* out);

  /// The native, unboxed pull API: the next partition's surviving rows as a
  /// ColumnBatch (possibly with an empty selection — one batch is emitted
  /// per loaded partition even if the filter kept no rows). Works in serial
  /// and parallel mode; parallel delivery is in scan-set order with the
  /// consumer-side top-k boundary re-check applied. False at end of scan.
  /// `item_payload`, when non-null, receives the delivered partition's
  /// stage payload (null when no stage is installed or in serial mode).
  bool NextColumns(ColumnBatch* out, MorselPayload* item_payload = nullptr);

  /// Engine hook: per-query cancellation. When `*cancel` becomes true the
  /// scan stops delivering (NextColumns/NextPayload report end-of-scan),
  /// abandons its scheduler so unstarted morsels never run, and workers
  /// stop scanning mid-morsel — the query's share of the shared pool frees
  /// up within one in-flight window.
  void set_cancel_flag(const std::atomic<bool>* cancel) { cancel_ = cancel; }

  /// Engine hook: per-query deadline (absolute steady-clock ns, 0 = none).
  /// Past the deadline the scan behaves exactly like a cancelled one —
  /// delivery stops, the scheduler is abandoned, workers stop mid-morsel —
  /// and the engine surfaces kDeadlineExceeded.
  void set_deadline_ns(int64_t deadline_ns) { deadline_ns_ = deadline_ns; }

  /// Non-OK when the scan stopped on a partition-load / dispatch fault
  /// rather than exhausting its scan set. Delivery APIs report end-of-scan
  /// in that case; the engine checks here and surfaces the error instead of
  /// a truncated result.
  const Status& error() const { return error_; }

  void Open() override;
  bool Next(Batch* out) override;
  void Close() override;
  const Schema& output_schema() const override { return table_->schema(); }

  const ScanSet& scan_set() const { return scan_set_; }
  const std::shared_ptr<Table>& table() const { return table_; }

  /// Profiling hook (traced queries only): a second PruningStats that
  /// receives exactly the runtime deltas this scan contributes to the
  /// query's stats_, attributed to this scan's profile node. Kept separate
  /// from stats_ so the untraced path's metering code is byte-unchanged.
  void set_profile_stats(PruningStats* stats) { profile_stats_ = stats; }
  /// Observability: how many morsels the last Open() planned (parallel
  /// mode; 0 before Open or in serial mode).
  size_t num_morsels() const { return morsel_ranges_.size(); }
  /// The executing pool and per-scan window (operators reuse them for
  /// their own barrier fan-outs so pipeline tasks respect the same
  /// per-query budget as the scan's morsels). Null / 0 in serial mode.
  ThreadPool* pool() const { return pool_; }
  size_t morsel_window() const { return morsel_window_; }
  const std::atomic<bool>* cancel_flag() const { return cancel_; }

 private:
  /// NextColumns minus the profile wrapper.
  bool NextColumnsInner(ColumnBatch* out, MorselPayload* item_payload);
  /// Worker body: prune checks + load + vectorized filter for every
  /// partition in morsel `morsel_index`'s scan-set range.
  MorselResult ProcessMorsel(size_t morsel_index);
  /// True when the query was cancelled or its deadline passed; abandons the
  /// scheduler on first sight so the shared pool stops receiving this
  /// scan's morsels.
  bool Cancelled();
  /// The shared serial/parallel per-partition scan body. Returns false when
  /// runtime pruning skipped the partition (stats deltas still recorded).
  /// `scratch` is the calling thread's reusable predicate-eval buffer set —
  /// per-partition mask/selection allocations hit the allocator hard on the
  /// hot path, so each evaluating thread keeps one scratch for its lifetime.
  /// A load fault (the scan.partition_load failpoint) sets `*error` and
  /// returns false; callers must check the error before treating false as
  /// "pruned".
  bool ScanPartition(PartitionId pid, ColumnBatch* out, PruningStats* stats,
                     EvalScratch* scratch, Status* error);
  /// Groups consecutive scan-set positions into morsel ranges under the
  /// row-count budget.
  void PlanMorsels();

  std::shared_ptr<Table> table_;
  ScanSet scan_set_;
  ExprPtr filter_;
  /// Specialized filter kernel (see set_compiled_filter); counters are
  /// atomics because parallel workers filter batches concurrently.
  std::shared_ptr<const jit::CompiledPredicate> compiled_filter_;
  std::atomic<int64_t> specialized_batches_{0};
  std::atomic<int64_t> interpreted_batches_{0};
  PruningStats* stats_;
  PruningStats* profile_stats_ = nullptr;
  TopKPruner* topk_pruner_ = nullptr;
  FilterPruner* runtime_filter_pruner_
      SNOW_PT_GUARDED_BY(runtime_prune_mutex_) = nullptr;
  bool track_source_ = false;
  size_t cursor_ = 0;
  /// Consumer-thread predicate-eval scratch (serial path; workers use a
  /// thread-local scratch that outlives queries — see ProcessMorsel).
  EvalScratch eval_scratch_;

  ThreadPool* pool_ = nullptr;
  size_t morsel_window_ = 0;
  size_t morsel_min_rows_ = 0;
  /// Morsel i covers scan-set positions [first, second).
  std::vector<std::pair<size_t, size_t>> morsel_ranges_;
  /// Consumer-side iteration state over the current morsel's items.
  MorselResult current_morsel_;
  size_t item_cursor_ = 0;
  /// Serializes FilterPruner::CanPrune across workers (the adaptive
  /// PruningTree mutates per-node statistics on every probe). The pruner is
  /// external state reached through a pointer, so the protected object is
  /// the pointee: SNOW_PT_GUARDED_BY on runtime_filter_pruner_ above.
  Mutex runtime_prune_mutex_;
  MorselStage morsel_stage_;
  bool stage_coarse_morsels_ = false;
  const std::atomic<bool>* cancel_ = nullptr;
  int64_t deadline_ns_ = 0;
  /// First fault seen by the consumer thread (see error()).
  Status error_;
  std::unique_ptr<ParallelScanScheduler> scheduler_;
};

}  // namespace snowprune

#endif  // SNOWPRUNE_EXEC_SCAN_OP_H_
