#ifndef SNOWPRUNE_EXEC_SCAN_OP_H_
#define SNOWPRUNE_EXEC_SCAN_OP_H_

#include <memory>

#include "core/filter_pruner.h"
#include "core/join_pruner.h"
#include "core/pruning_stats.h"
#include "core/topk_pruner.h"
#include "exec/operator.h"
#include "expr/expr.h"
#include "storage/table.h"

namespace snowprune {

/// Table scan over a (compile-time pruned) scan set. One output batch per
/// partition. Runtime pruning hooks:
///   - a TopKPruner attached by the planner is consulted before every load
///     (§5.2); skipped partitions never touch storage,
///   - a build-side summary installed by a hash join at Open() time prunes
///     the remaining scan set (§6.1, step 4).
/// The optional row-level `filter` is the query's WHERE clause; it runs
/// after the load (the part pruning could not avoid).
class TableScanOp : public Operator {
 public:
  TableScanOp(std::shared_ptr<Table> table, ScanSet scan_set, ExprPtr filter,
              PruningStats* stats);

  /// Planner hook (§5): the TopK operator in the same pipeline publishes
  /// boundary updates through this pruner.
  void AttachTopKPruner(TopKPruner* pruner) { topk_pruner_ = pruner; }

  /// Planner hook (§3.2): deferred filter pruning. When compile-time
  /// pruning was skipped (FilterPruningPhase::kRuntime), the scan checks
  /// each partition's zone maps right before loading it.
  void AttachRuntimeFilterPruner(FilterPruner* pruner) {
    runtime_filter_pruner_ = pruner;
  }

  /// Join hook (§6): prunes the not-yet-scanned part of the scan set with a
  /// freshly built summary. `key_column` indexes this scan's output schema.
  /// Returns the number of partitions pruned.
  int64_t ApplyJoinSummary(const BuildSummary& summary, size_t key_column);

  /// Emit per-row provenance (source partition ids) for the predicate cache.
  void set_track_source(bool track) { track_source_ = track; }

  /// Planner hook: replaces the scan set before execution (LIMIT pruning,
  /// top-k ordering/initialization, predicate-cache restriction).
  void ReplaceScanSet(ScanSet scan_set) { scan_set_ = std::move(scan_set); }

  void Open() override;
  bool Next(Batch* out) override;
  void Close() override;
  const Schema& output_schema() const override { return table_->schema(); }

  const ScanSet& scan_set() const { return scan_set_; }
  const std::shared_ptr<Table>& table() const { return table_; }

 private:
  std::shared_ptr<Table> table_;
  ScanSet scan_set_;
  ExprPtr filter_;
  PruningStats* stats_;
  TopKPruner* topk_pruner_ = nullptr;
  FilterPruner* runtime_filter_pruner_ = nullptr;
  bool track_source_ = false;
  size_t cursor_ = 0;
};

}  // namespace snowprune

#endif  // SNOWPRUNE_EXEC_SCAN_OP_H_
