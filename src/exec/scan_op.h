#ifndef SNOWPRUNE_EXEC_SCAN_OP_H_
#define SNOWPRUNE_EXEC_SCAN_OP_H_

#include <functional>
#include <memory>
#include <mutex>

#include "core/filter_pruner.h"
#include "core/join_pruner.h"
#include "core/pruning_stats.h"
#include "core/topk_pruner.h"
#include "exec/operator.h"
#include "exec/parallel/parallel_scan.h"
#include "exec/parallel/thread_pool.h"
#include "expr/expr.h"
#include "storage/table.h"

namespace snowprune {

/// Table scan over a (compile-time pruned) scan set. One output batch per
/// partition. Runtime pruning hooks:
///   - a TopKPruner attached by the planner is consulted before every load
///     (§5.2); skipped partitions never touch storage,
///   - a build-side summary installed by a hash join at Open() time prunes
///     the remaining scan set (§6.1, step 4).
/// The optional row-level `filter` is the query's WHERE clause; it runs
/// after the load (the part pruning could not avoid).
///
/// Parallel execution: when the engine attaches a ThreadPool via
/// EnableParallel(), Open() fans the scan set out across workers
/// morsel-style (one partition per task, see ParallelScanScheduler). Loading,
/// row materialization, the WHERE filter, runtime pruning checks, and an
/// optional per-morsel reduction run on workers; batches are still delivered
/// to the consumer in scan-set order, so every downstream operator — and the
/// query result — is bit-identical to serial execution. Per-worker
/// PruningStats are merged into the query's stats on the consumer thread.
///
/// One stats-parity exception: with runtime filter pruning AND the adaptive
/// tree's time-based cutoff opted in (PruningTreeConfig::enable_cutoff,
/// default off), CanPrune outcomes depend on wall-clock measurements, so
/// pruned_by_filter/scanned_partitions become timing-dependent under any
/// thread count — results stay correct (cutoff only ever keeps more
/// partitions), but exact stats parity is only guaranteed with the cutoff
/// at its default (disabled).
class TableScanOp : public Operator {
 public:
  /// A worker-side reduction result (type-erased; producer and consumer
  /// agree on the concrete type, e.g. HashAggregateOp's partial group map).
  using MorselPayload = std::shared_ptr<void>;

  TableScanOp(std::shared_ptr<Table> table, ScanSet scan_set, ExprPtr filter,
              PruningStats* stats);
  ~TableScanOp() override;

  /// Planner hook (§5): the TopK operator in the same pipeline publishes
  /// boundary updates through this pruner.
  void AttachTopKPruner(TopKPruner* pruner) { topk_pruner_ = pruner; }
  bool has_topk_pruner() const { return topk_pruner_ != nullptr; }

  /// Planner hook (§3.2): deferred filter pruning. When compile-time
  /// pruning was skipped (FilterPruningPhase::kRuntime), the scan checks
  /// each partition's zone maps right before loading it.
  void AttachRuntimeFilterPruner(FilterPruner* pruner) {
    runtime_filter_pruner_ = pruner;
  }

  /// Join hook (§6): prunes the not-yet-scanned part of the scan set with a
  /// freshly built summary. `key_column` indexes this scan's output schema.
  /// Returns the number of partitions pruned.
  int64_t ApplyJoinSummary(const BuildSummary& summary, size_t key_column);

  /// Emit per-row provenance (source partition ids) for the predicate cache.
  void set_track_source(bool track) { track_source_ = track; }

  /// Planner hook: replaces the scan set before execution (LIMIT pruning,
  /// top-k ordering/initialization, predicate-cache restriction).
  void ReplaceScanSet(ScanSet scan_set) { scan_set_ = std::move(scan_set); }

  /// Engine hook: execute this scan partition-parallel on `pool`. Must be
  /// called before Open(). `window` bounds how many morsels may be buffered
  /// or in flight ahead of the consumer.
  void EnableParallel(ThreadPool* pool, size_t window);
  bool parallel_enabled() const { return pool_ != nullptr; }

  /// Installs a worker-side reduction: each loaded morsel's batch is handed
  /// to `fn` on the worker and only the payload is shipped to the consumer
  /// (via NextPayload). Parallel mode only; must be set before Open().
  void set_morsel_transform(std::function<MorselPayload(Batch&&)> fn) {
    morsel_transform_ = std::move(fn);
  }

  /// Consumer loop for transformed scans: delivers the next morsel's payload
  /// in scan-set order (skipping pruned partitions). False at end of scan.
  bool NextPayload(MorselPayload* out);

  void Open() override;
  bool Next(Batch* out) override;
  void Close() override;
  const Schema& output_schema() const override { return table_->schema(); }

  const ScanSet& scan_set() const { return scan_set_; }
  const std::shared_ptr<Table>& table() const { return table_; }

 private:
  /// Worker body: prune checks + load + materialize + filter for the
  /// partition at scan-set position `index`.
  MorselResult ProcessMorsel(size_t index);
  /// The shared serial/parallel per-partition scan body. Returns false when
  /// runtime pruning skipped the partition (stats deltas still recorded).
  bool ScanPartition(PartitionId pid, Batch* out, PruningStats* stats);

  std::shared_ptr<Table> table_;
  ScanSet scan_set_;
  ExprPtr filter_;
  PruningStats* stats_;
  TopKPruner* topk_pruner_ = nullptr;
  FilterPruner* runtime_filter_pruner_ = nullptr;
  bool track_source_ = false;
  size_t cursor_ = 0;

  ThreadPool* pool_ = nullptr;
  size_t morsel_window_ = 0;
  /// Serializes FilterPruner::CanPrune across workers (the adaptive
  /// PruningTree mutates per-node statistics on every probe).
  std::mutex runtime_prune_mutex_;
  std::function<MorselPayload(Batch&&)> morsel_transform_;
  std::unique_ptr<ParallelScanScheduler> scheduler_;
};

}  // namespace snowprune

#endif  // SNOWPRUNE_EXEC_SCAN_OP_H_
