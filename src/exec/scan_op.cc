#include "exec/scan_op.h"

#include <algorithm>

#include "common/clock.h"
#include "common/failpoint.h"
#include "exec/parallel/pipeline.h"
#include "exec/profile.h"
#include "expr/evaluator.h"
#include "expr/jit/executor.h"

namespace snowprune {

TableScanOp::TableScanOp(std::shared_ptr<Table> table, ScanSet scan_set,
                         ExprPtr filter, PruningStats* stats)
    : table_(std::move(table)),
      scan_set_(std::move(scan_set)),
      filter_(std::move(filter)),
      stats_(stats) {}

TableScanOp::~TableScanOp() = default;

void TableScanOp::EnableParallel(ThreadPool* pool, size_t window,
                                 size_t morsel_min_rows) {
  pool_ = pool;
  morsel_window_ = window;
  morsel_min_rows_ = morsel_min_rows;
}

void TableScanOp::PlanMorsels() {
  morsel_ranges_.clear();
  int64_t budget = static_cast<int64_t>(morsel_min_rows_);
  if (stage_coarse_morsels_) {
    // Reduction stages pay a per-morsel merge cost (a partial group map
    // built and merged per morsel), so they want far coarser morsels than
    // plain scans: target ~2 morsels per worker, floored at the configured
    // budget. Plain scans — and per-row stages like candidate filters or
    // sorted runs — keep fine morsels; their per-morsel handoff is small.
    int64_t total_rows = 0;
    for (PartitionId pid : scan_set_) {
      total_rows += table_->partition_metadata(pid).row_count();
    }
    budget = std::max(
        budget,
        total_rows / static_cast<int64_t>(2 * pool_->num_threads()));
  }
  size_t i = 0;
  while (i < scan_set_.size()) {
    const size_t begin = i;
    int64_t rows = 0;
    // Batch consecutive partitions until the (metadata, load-free) row
    // budget is met; budget 0 degenerates to one partition per morsel.
    do {
      rows += table_->partition_metadata(scan_set_[i]).row_count();
      ++i;
    } while (i < scan_set_.size() && rows < budget);
    morsel_ranges_.emplace_back(begin, i);
  }
}

void TableScanOp::Open() {
  cursor_ = 0;
  item_cursor_ = 0;
  specialized_batches_.store(0, std::memory_order_relaxed);
  interpreted_batches_.store(0, std::memory_order_relaxed);
  error_ = Status::OK();
  current_morsel_ = MorselResult();
  scheduler_.reset();
  morsel_ranges_.clear();
  if (pool_ != nullptr) {
    // The scan set is final here: LIMIT/top-k/cache restrictions happen at
    // compile time and join summaries are applied before the probe side
    // opens (HashJoinOp::Open), so fan-out can start immediately.
    PlanMorsels();
    scheduler_ = std::make_unique<ParallelScanScheduler>(
        pool_, morsel_ranges_.size(),
        [this](size_t index) { return ProcessMorsel(index); }, morsel_window_);
  }
}

int64_t TableScanOp::ApplyJoinSummary(const BuildSummary& summary,
                                      size_t key_column) {
  // Only the unscanned tail is eligible; in practice joins install the
  // summary at Open() before any probe-side partition was read (and, in
  // parallel mode, before this scan's scheduler exists).
  ScanSet remaining(std::vector<PartitionId>(
      scan_set_.ids().begin() + static_cast<long>(cursor_),
      scan_set_.ids().end()));
  JoinPruneResult pruned =
      JoinPruner::PruneProbe(*table_, remaining, key_column, summary);
  std::vector<PartitionId> new_ids(scan_set_.ids().begin(),
                                   scan_set_.ids().begin() +
                                       static_cast<long>(cursor_));
  new_ids.insert(new_ids.end(), pruned.scan_set.begin(), pruned.scan_set.end());
  scan_set_ = ScanSet(std::move(new_ids));
  if (stats_ != nullptr) stats_->pruned_by_join += pruned.pruned;
  if (profile_stats_ != nullptr) profile_stats_->pruned_by_join += pruned.pruned;
  return pruned.pruned;
}

bool TableScanOp::Cancelled() {
  const bool cancelled =
      cancel_ != nullptr && cancel_->load(std::memory_order_relaxed);
  if (!cancelled && !DeadlinePassed(deadline_ns_)) return false;
  // Stop feeding the pool: unstarted morsels are abandoned, running ones
  // finish on their own (and check the flag per partition themselves). A
  // passed deadline rides the same plumbing — the engine tells the two
  // apart afterwards.
  if (scheduler_ != nullptr) scheduler_->Abandon();
  return true;
}

bool TableScanOp::ScanPartition(PartitionId pid, ColumnBatch* out,
                                PruningStats* stats, EvalScratch* scratch,
                                Status* error) {
  // Deferred filter pruning (§3.2): the same zone-map check the compile
  // phase would have done, executed just before the load. The adaptive tree
  // keeps per-node counters, so concurrent workers must take turns.
  if (runtime_filter_pruner_ != nullptr) {
    MutexLock lock(&runtime_prune_mutex_);
    if (runtime_filter_pruner_->CanPrune(*table_, pid)) {
      if (stats != nullptr) ++stats->pruned_by_filter;
      return false;
    }
  }
  // Runtime top-k pruning: consult the boundary *before* loading (§5.2).
  if (topk_pruner_ != nullptr && topk_pruner_->ShouldSkip(*table_, pid)) {
    if (stats != nullptr) ++stats->pruned_by_topk;
    return false;
  }
  // Injection site: the partition survived every prune but its load fails
  // (storage fault). Placed after the prune checks so injected faults only
  // hit partitions the query would actually read.
  if (SNOW_FAILPOINT("scan.partition_load")) {
    *error = InjectedFault("scan.partition_load");
    return false;
  }
  const MicroPartition& part = table_->LoadPartition(pid);
  if (stats != nullptr) {
    ++stats->scanned_partitions;
    stats->scanned_rows += part.row_count();
  }
  if (filter_) {
    std::vector<uint32_t> selection;
    // Specialization tier: the fused bytecode kernel filters the batch when
    // a program is attached and validates against it; otherwise (or on
    // column drift) the vectorized interpreter runs. Byte-identical
    // selections either way — the fuzz oracle asserts it.
    if (compiled_filter_ != nullptr &&
        jit::ExecuteSelection(*compiled_filter_, part, &selection, scratch)) {
      specialized_batches_.fetch_add(1, std::memory_order_relaxed);
    } else {
      if (compiled_filter_ != nullptr) {
        interpreted_batches_.fetch_add(1, std::memory_order_relaxed);
      }
      ComputeSelection(*filter_, part, &selection, scratch);
    }
    *out = ColumnBatch::Selected(part, pid, std::move(selection));
  } else {
    *out = ColumnBatch::AllOf(part, pid);
  }
  return true;
}

MorselResult TableScanOp::ProcessMorsel(size_t morsel_index) {
  // One eval scratch per pool worker, living as long as the thread: morsels
  // of every scan, query, and client stream that lands on this worker reuse
  // the same mask/selection buffers (ROADMAP allocator-pressure note).
  thread_local EvalScratch worker_scratch;
  MorselResult result;
  const auto range = morsel_ranges_[morsel_index];
  // Traced queries: the morsel's whole worker-side life becomes one span in
  // the result's buffer — recorded lock-free here, merged by the consumer
  // at delivery. trace_ is set before Open() and read-only on workers.
  const uint32_t morsel_span =
      trace_ != nullptr ? result.spans.Begin("scan.morsel") : 0;
  result.items.resize(range.second - range.first);
  for (size_t pos = range.first; pos < range.second; ++pos) {
    if ((cancel_ != nullptr && cancel_->load(std::memory_order_relaxed)) ||
        DeadlinePassed(deadline_ns_)) {
      // Cancelled (or past deadline) mid-morsel: the remaining partitions
      // stay unloaded with zero stats. The consumer has stopped delivering,
      // so nothing reads the partial result; stopping here frees the worker
      // promptly.
      break;
    }
    MorselItem& item = result.items[pos - range.first];
    Status load_error;
    item.loaded = ScanPartition(scan_set_[pos], &item.batch, &item.stats,
                                &worker_scratch, &load_error);
    if (!load_error.ok()) {
      // A load fault poisons the whole morsel: later partitions stay
      // unloaded so the consumer sees the error at this scan-set position
      // with nothing delivered past it.
      result.error = std::move(load_error);
      break;
    }
  }
  if (morsel_stage_) {
    // Operator-installed pipeline stage: per-worker partial work (fold,
    // candidate filter, sorted run, hash partial) over the scanned items,
    // in scan-set order within the morsel. Morsels are merged in order by
    // the consumer, so stage outputs compose exactly like serial execution.
    morsel_stage_(&result);
    PipelineCounters::IncStageTasks();
    // The per-query view of the same counter: an atomic on the Trace, the
    // one Trace member workers may touch.
    if (trace_ != nullptr) trace_->IncStageTasks();
  }
  if (trace_ != nullptr) {
    int64_t scanned = 0;
    int64_t rows = 0;
    for (const MorselItem& item : result.items) {
      scanned += item.stats.scanned_partitions;
      rows += item.stats.scanned_rows;
    }
    result.spans.AnnotateInt(morsel_span, "partitions",
                             static_cast<int64_t>(result.items.size()));
    result.spans.AnnotateInt(morsel_span, "scanned", scanned);
    result.spans.AnnotateInt(morsel_span, "rows", rows);
    result.spans.End(morsel_span);
  }
  return result;
}

bool TableScanOp::NextColumns(ColumnBatch* out, MorselPayload* item_payload) {
  if (profile_ == nullptr) return NextColumnsInner(out, item_payload);
  return ProfiledNext(
      profile_, [&] { return NextColumnsInner(out, item_payload); },
      [&] { return static_cast<int64_t>(out->num_rows()); });
}

bool TableScanOp::NextColumnsInner(ColumnBatch* out,
                                   MorselPayload* item_payload) {
  out->Clear();
  if (item_payload != nullptr) item_payload->reset();
  if (Cancelled()) return false;
  if (scheduler_ != nullptr) {
    for (;;) {
      while (item_cursor_ < current_morsel_.items.size()) {
        MorselItem& item = current_morsel_.items[item_cursor_++];
        // Ordered delivery: this item is scan_set_[cursor_].
        PartitionId pid = scan_set_[cursor_++];
        if (item.loaded && topk_pruner_ != nullptr &&
            topk_pruner_->ShouldSkip(*table_, pid)) {
          // The worker loaded this partition under a stale (looser)
          // boundary. Re-checking here — after every earlier batch has been
          // consumed — sees exactly the boundary state the serial engine
          // would have had before loading it, so dropping the batch now
          // reproduces serial pruning decisions (and stats) bit-for-bit.
          // The wasted background load is surfaced as speculative_loads.
          // Any stage payload (candidates computed from the speculative
          // batch) is dropped with it.
          item.stats.speculative_loads += item.stats.scanned_partitions;
          item.stats.scanned_partitions = 0;
          item.stats.scanned_rows = 0;
          item.stats.pruned_by_topk += 1;
          item.loaded = false;
          item.payload.reset();
        }
        // Per-partition stats merge on the consumer thread, in scan-set
        // order.
        if (stats_ != nullptr) stats_->Merge(item.stats);
        if (profile_stats_ != nullptr) profile_stats_->Merge(item.stats);
        if (!item.loaded) continue;
        *out = std::move(item.batch);
        if (item_payload != nullptr) *item_payload = std::move(item.payload);
        return true;  // one batch per partition, even with no surviving rows
      }
      if (Cancelled()) return false;
      if (!scheduler_->Next(&current_morsel_)) return false;
      if (!current_morsel_.error.ok()) {
        // A worker hit a load/dispatch fault at this scan-set position.
        // Stop the fan-out and report end-of-scan; the engine reads
        // error() and surfaces the fault instead of a truncated result.
        error_ = std::move(current_morsel_.error);
        current_morsel_ = MorselResult();
        scheduler_->Abandon();
        return false;
      }
      if (trace_ != nullptr && !current_morsel_.spans.empty()) {
        trace_->MergeBuffer(&current_morsel_.spans, trace_parent_);
      }
      item_cursor_ = 0;
    }
  }
  while (cursor_ < scan_set_.size()) {
    if (Cancelled()) return false;
    PartitionId pid = scan_set_[cursor_++];
    Status load_error;
    if (profile_stats_ == nullptr) {
      if (ScanPartition(pid, out, stats_, &eval_scratch_, &load_error)) {
        return true;
      }
    } else {
      // Profiled serial path: meter into a local delta, then fan it out to
      // the query stats and the profile node — the unprofiled branch above
      // stays byte-identical to what it always was.
      PruningStats delta;
      const bool loaded =
          ScanPartition(pid, out, &delta, &eval_scratch_, &load_error);
      if (stats_ != nullptr) stats_->Merge(delta);
      profile_stats_->Merge(delta);
      if (loaded) return true;
    }
    if (!load_error.ok()) {
      error_ = std::move(load_error);
      return false;
    }
  }
  return false;
}

bool TableScanOp::Next(Batch* out) {
  ColumnBatch columns;
  if (!NextColumns(&columns)) {
    out->rows.clear();
    out->source.clear();
    return false;
  }
  columns.MaterializeInto(out, track_source_);
  return true;
}

bool TableScanOp::NextPayload(MorselPayload* out) {
  while (scheduler_ != nullptr && !Cancelled() &&
         scheduler_->Next(&current_morsel_)) {
    if (!current_morsel_.error.ok()) {
      error_ = std::move(current_morsel_.error);
      current_morsel_ = MorselResult();
      scheduler_->Abandon();
      return false;
    }
    if (trace_ != nullptr && !current_morsel_.spans.empty()) {
      trace_->MergeBuffer(&current_morsel_.spans, trace_parent_);
    }
    for (MorselItem& item : current_morsel_.items) {
      ++cursor_;
      if (stats_ != nullptr) stats_->Merge(item.stats);
      if (profile_stats_ != nullptr) profile_stats_->Merge(item.stats);
    }
    // Folded scans never have a top-k pruner attached (the aggregate only
    // fuses without one), so no delivery-time re-check is needed here.
    if (current_morsel_.payload == nullptr) continue;
    *out = std::move(current_morsel_.payload);
    return true;
  }
  return false;
}

void TableScanOp::Close() {
  if (profile_ != nullptr && compiled_filter_ != nullptr) {
    // EXPLAIN ANALYZE attribution: which execution tier filtered the
    // batches. Appended at Close so parallel workers are done counting.
    profile_->detail +=
        " [specialized " +
        std::to_string(specialized_batches_.load(std::memory_order_relaxed)) +
        "/" +
        std::to_string(specialized_batches_.load(std::memory_order_relaxed) +
                       interpreted_batches_.load(std::memory_order_relaxed)) +
        " batches]";
  }
  scheduler_.reset();
  current_morsel_ = MorselResult();
  item_cursor_ = 0;
}

}  // namespace snowprune
