#include "exec/scan_op.h"

#include "exec/row_eval.h"

namespace snowprune {

TableScanOp::TableScanOp(std::shared_ptr<Table> table, ScanSet scan_set,
                         ExprPtr filter, PruningStats* stats)
    : table_(std::move(table)),
      scan_set_(std::move(scan_set)),
      filter_(std::move(filter)),
      stats_(stats) {}

void TableScanOp::Open() { cursor_ = 0; }

int64_t TableScanOp::ApplyJoinSummary(const BuildSummary& summary,
                                      size_t key_column) {
  // Only the unscanned tail is eligible; in practice joins install the
  // summary at Open() before any probe-side partition was read.
  ScanSet remaining(std::vector<PartitionId>(
      scan_set_.ids().begin() + static_cast<long>(cursor_),
      scan_set_.ids().end()));
  JoinPruneResult pruned =
      JoinPruner::PruneProbe(*table_, remaining, key_column, summary);
  std::vector<PartitionId> new_ids(scan_set_.ids().begin(),
                                   scan_set_.ids().begin() +
                                       static_cast<long>(cursor_));
  new_ids.insert(new_ids.end(), pruned.scan_set.begin(), pruned.scan_set.end());
  scan_set_ = ScanSet(std::move(new_ids));
  if (stats_ != nullptr) stats_->pruned_by_join += pruned.pruned;
  return pruned.pruned;
}

bool TableScanOp::Next(Batch* out) {
  out->rows.clear();
  out->source.clear();
  while (cursor_ < scan_set_.size()) {
    PartitionId pid = scan_set_[cursor_++];
    // Deferred filter pruning (§3.2): the same zone-map check the compile
    // phase would have done, executed just before the load.
    if (runtime_filter_pruner_ != nullptr &&
        runtime_filter_pruner_->CanPrune(*table_, pid)) {
      if (stats_ != nullptr) ++stats_->pruned_by_filter;
      continue;
    }
    // Runtime top-k pruning: consult the boundary *before* loading (§5.2).
    if (topk_pruner_ != nullptr && topk_pruner_->ShouldSkip(*table_, pid)) {
      if (stats_ != nullptr) ++stats_->pruned_by_topk;
      continue;
    }
    const MicroPartition& part = table_->LoadPartition(pid);
    if (stats_ != nullptr) {
      ++stats_->scanned_partitions;
      stats_->scanned_rows += part.row_count();
    }
    const size_t n = static_cast<size_t>(part.row_count());
    const size_t num_cols = part.num_columns();
    for (size_t r = 0; r < n; ++r) {
      Row row;
      row.reserve(num_cols);
      for (size_t c = 0; c < num_cols; ++c) {
        row.push_back(part.column(c).ValueAt(r));
      }
      if (filter_) {
        auto keep = EvalRowPredicate(*filter_, row);
        if (!keep.has_value() || !*keep) continue;
      }
      out->rows.push_back(std::move(row));
      if (track_source_) out->source.push_back(pid);
    }
    return true;  // one batch per partition, even if all rows were filtered
  }
  return false;
}

void TableScanOp::Close() {}

}  // namespace snowprune
