#include "exec/scan_op.h"

#include "exec/row_eval.h"

namespace snowprune {

TableScanOp::TableScanOp(std::shared_ptr<Table> table, ScanSet scan_set,
                         ExprPtr filter, PruningStats* stats)
    : table_(std::move(table)),
      scan_set_(std::move(scan_set)),
      filter_(std::move(filter)),
      stats_(stats) {}

TableScanOp::~TableScanOp() = default;

void TableScanOp::EnableParallel(ThreadPool* pool, size_t window) {
  pool_ = pool;
  morsel_window_ = window;
}

void TableScanOp::Open() {
  cursor_ = 0;
  scheduler_.reset();
  if (pool_ != nullptr) {
    // The scan set is final here: LIMIT/top-k/cache restrictions happen at
    // compile time and join summaries are applied before the probe side
    // opens (HashJoinOp::Open), so fan-out can start immediately.
    scheduler_ = std::make_unique<ParallelScanScheduler>(
        pool_, scan_set_.size(),
        [this](size_t index) { return ProcessMorsel(index); }, morsel_window_);
  }
}

int64_t TableScanOp::ApplyJoinSummary(const BuildSummary& summary,
                                      size_t key_column) {
  // Only the unscanned tail is eligible; in practice joins install the
  // summary at Open() before any probe-side partition was read (and, in
  // parallel mode, before this scan's scheduler exists).
  ScanSet remaining(std::vector<PartitionId>(
      scan_set_.ids().begin() + static_cast<long>(cursor_),
      scan_set_.ids().end()));
  JoinPruneResult pruned =
      JoinPruner::PruneProbe(*table_, remaining, key_column, summary);
  std::vector<PartitionId> new_ids(scan_set_.ids().begin(),
                                   scan_set_.ids().begin() +
                                       static_cast<long>(cursor_));
  new_ids.insert(new_ids.end(), pruned.scan_set.begin(), pruned.scan_set.end());
  scan_set_ = ScanSet(std::move(new_ids));
  if (stats_ != nullptr) stats_->pruned_by_join += pruned.pruned;
  return pruned.pruned;
}

bool TableScanOp::ScanPartition(PartitionId pid, Batch* out,
                                PruningStats* stats) {
  // Deferred filter pruning (§3.2): the same zone-map check the compile
  // phase would have done, executed just before the load. The adaptive tree
  // keeps per-node counters, so concurrent workers must take turns.
  if (runtime_filter_pruner_ != nullptr) {
    std::lock_guard<std::mutex> lock(runtime_prune_mutex_);
    if (runtime_filter_pruner_->CanPrune(*table_, pid)) {
      if (stats != nullptr) ++stats->pruned_by_filter;
      return false;
    }
  }
  // Runtime top-k pruning: consult the boundary *before* loading (§5.2).
  if (topk_pruner_ != nullptr && topk_pruner_->ShouldSkip(*table_, pid)) {
    if (stats != nullptr) ++stats->pruned_by_topk;
    return false;
  }
  const MicroPartition& part = table_->LoadPartition(pid);
  if (stats != nullptr) {
    ++stats->scanned_partitions;
    stats->scanned_rows += part.row_count();
  }
  const size_t n = static_cast<size_t>(part.row_count());
  const size_t num_cols = part.num_columns();
  for (size_t r = 0; r < n; ++r) {
    Row row;
    row.reserve(num_cols);
    for (size_t c = 0; c < num_cols; ++c) {
      row.push_back(part.column(c).ValueAt(r));
    }
    if (filter_) {
      auto keep = EvalRowPredicate(*filter_, row);
      if (!keep.has_value() || !*keep) continue;
    }
    out->rows.push_back(std::move(row));
    if (track_source_) out->source.push_back(pid);
  }
  return true;
}

MorselResult TableScanOp::ProcessMorsel(size_t index) {
  MorselResult result;
  result.loaded = ScanPartition(scan_set_[index], &result.batch, &result.stats);
  if (result.loaded && morsel_transform_) {
    result.payload = morsel_transform_(std::move(result.batch));
    result.batch = Batch();
  }
  return result;
}

bool TableScanOp::Next(Batch* out) {
  out->rows.clear();
  out->source.clear();
  if (scheduler_ != nullptr) {
    MorselResult morsel;
    while (scheduler_->Next(&morsel)) {
      // Ordered delivery: this morsel is scan_set_[cursor_].
      PartitionId pid = scan_set_[cursor_++];
      if (morsel.loaded && topk_pruner_ != nullptr &&
          topk_pruner_->ShouldSkip(*table_, pid)) {
        // The worker loaded this partition under a stale (looser) boundary.
        // Re-checking here — after every earlier batch has been consumed —
        // sees exactly the boundary state the serial engine would have had
        // before loading it, so dropping the batch now reproduces serial
        // pruning decisions (and stats) bit-for-bit. The wasted background
        // load is surfaced as speculative_loads.
        morsel.stats.speculative_loads += morsel.stats.scanned_partitions;
        morsel.stats.scanned_partitions = 0;
        morsel.stats.scanned_rows = 0;
        morsel.stats.pruned_by_topk += 1;
        morsel.loaded = false;
      }
      // Per-worker stats merge on the consumer thread, in scan-set order.
      if (stats_ != nullptr) stats_->Merge(morsel.stats);
      if (!morsel.loaded) continue;
      *out = std::move(morsel.batch);
      return true;  // one batch per partition, even if all rows were filtered
    }
    return false;
  }
  while (cursor_ < scan_set_.size()) {
    PartitionId pid = scan_set_[cursor_++];
    if (ScanPartition(pid, out, stats_)) return true;
  }
  return false;
}

bool TableScanOp::NextPayload(MorselPayload* out) {
  MorselResult morsel;
  while (scheduler_ != nullptr && scheduler_->Next(&morsel)) {
    if (stats_ != nullptr) stats_->Merge(morsel.stats);
    if (!morsel.loaded) continue;
    *out = std::move(morsel.payload);
    return true;
  }
  return false;
}

void TableScanOp::Close() { scheduler_.reset(); }

}  // namespace snowprune
