#ifndef SNOWPRUNE_EXEC_AGG_OP_H_
#define SNOWPRUNE_EXEC_AGG_OP_H_

#include <map>
#include <string>
#include <vector>

#include "core/topk_pruner.h"
#include "exec/operator.h"
#include "exec/scan_op.h"

namespace snowprune {

/// Aggregate functions supported by HashAggregateOp.
enum class AggFunc { kCount, kSum, kMin, kMax, kAvg };

const char* ToString(AggFunc func);

/// One aggregate: func(input column) AS name.
struct AggSpec {
  AggFunc func;
  size_t column = 0;  ///< Ignored for kCount.
  std::string name;
};

/// Hash aggregation (GROUP BY). Output: group columns then aggregates.
///
/// Supports the Figure 7d top-k shape: when the query is
/// GROUP BY g... ORDER BY g1 LIMIT k with the order column among the group
/// keys, EnableGroupLimit() makes the operator keep a top-k heap of group
/// keys and publish a *strict* boundary to the scan's TopKPruner — rows
/// whose key is strictly weaker than the k-th group key can no longer
/// found a top-k group nor contribute to one ("requires changes to the
/// GROUP BY operator to maintain its own top-k heap", §5.2).
class HashAggregateOp : public Operator {
 public:
  HashAggregateOp(OperatorPtr input, std::vector<size_t> group_columns,
                  std::vector<AggSpec> aggregates);
  /// Joins any in-flight parallel-scan workers whose morsel transform
  /// reads this operator's members (Close() may be skipped by unwinding).
  ~HashAggregateOp() override;

  /// `order_group_index` indexes into group_columns. The pruner (owned by
  /// the planner) must have inclusive_updates == false.
  void EnableGroupLimit(size_t order_group_index, bool descending, int64_t k,
                        TopKPruner* pruner);

  /// Engine hook: permit scan+aggregate fusion when the input is a parallel
  /// TableScanOp. Workers then pre-aggregate each morsel into a partial
  /// group map which the consumer merges in scan-set order. Only taken when
  /// every aggregate merges exactly (COUNT/MIN/MAX always; SUM/AVG only
  /// over int64 inputs, whose double accumulation is exact), so results
  /// stay byte-identical to serial execution; otherwise the operator
  /// silently falls back to consuming ordered column batches.
  void EnableParallelPreAgg() { parallel_preagg_allowed_ = true; }

  void Open() override;
  bool Next(Batch* out) override;
  void Close() override { input_->Close(); }
  const Schema& output_schema() const override { return schema_; }

 private:
  bool NextInner(Batch* out);

  struct GroupState {
    Row key;
    std::vector<Value> min_max;   ///< Running min/max per aggregate slot.
    std::vector<double> sums;
    std::vector<int64_t> counts;  ///< Non-null inputs per aggregate slot.
    int64_t group_rows = 0;
  };

  struct KeyLess {
    bool operator()(const Row& a, const Row& b) const;
  };

  using GroupMap = std::map<Row, GroupState, KeyLess>;

  /// Looks `key` up in `groups`, inserting a zero-initialized state on
  /// first sight (`created` set true then, if provided). Shared by the
  /// serial accumulation loop and the worker-side morsel transform so the
  /// two paths cannot drift apart.
  GroupState& FindOrCreateGroup(GroupMap* groups, Row key,
                                bool* created = nullptr);
  void Accumulate(GroupState* state, const Row& row);
  /// Unboxed accumulation over a ColumnBatch (the scan→aggregate hot
  /// path): group keys are boxed only when they change between consecutive
  /// rows (run detection), aggregate inputs are read straight from the
  /// typed column vectors. Bit-identical to Accumulate() row-by-row.
  void AccumulateColumns(GroupMap* groups, const ColumnBatch& batch);
  /// Accumulates physical row `r` of `batch` into `state` without boxing.
  void AccumulateUnboxed(GroupState* state, const ColumnBatch& batch,
                         uint32_t r);
  /// True when the group-key columns compare equal between physical rows
  /// `a` and `b` of `batch` (NULLs equal, matching KeyLess grouping).
  bool SameGroupKeys(const ColumnBatch& batch, uint32_t a, uint32_t b) const;
  Row Finalize(const GroupState& state) const;
  /// Recomputes the k-th best group key and publishes it (strictly).
  void PublishGroupBoundary();
  /// True when merging per-morsel partials reproduces serial accumulation
  /// bit-for-bit: SUM/AVG inputs are int64 AND the zone-map-derived bound
  /// on every running sum stays below 2^53 (exact double integers).
  bool AggsMergeExactly(const TableScanOp& scan) const;
  /// Folds a worker-produced partial group map into groups_.
  void MergePartial(GroupMap* partial);
  /// Finalizes groups_ into the single output batch (sort/limit included).
  bool EmitGroups(Batch* out);

  OperatorPtr input_;
  std::vector<size_t> group_columns_;
  std::vector<AggSpec> aggregates_;
  Schema schema_;

  bool group_limit_enabled_ = false;
  size_t order_group_index_ = 0;
  bool order_descending_ = true;
  int64_t group_limit_k_ = 0;
  TopKPruner* pruner_ = nullptr;

  bool parallel_preagg_allowed_ = false;
  bool parallel_path_ = false;
  TableScanOp* scan_input_ = nullptr;  ///< Set iff parallel_path_.
  /// Set when the input is a TableScanOp whose batches this operator
  /// consumes unboxed via NextColumns() (serial, or parallel ordered
  /// delivery when fusion is not exact). Group-limit queries stay on the
  /// boxed path (their per-row boundary feedback is row-oriented).
  TableScanOp* columnar_input_ = nullptr;

  GroupMap groups_;
  bool emitted_ = false;
};

}  // namespace snowprune

#endif  // SNOWPRUNE_EXEC_AGG_OP_H_
