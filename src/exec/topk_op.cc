#include "exec/topk_op.h"

#include <algorithm>

#include "exec/column_batch.h"

namespace snowprune {

TopKOp::TopKOp(OperatorPtr input, size_t order_column, bool descending,
               int64_t k, TopKPruner* pruner)
    : input_(std::move(input)),
      order_column_(order_column),
      descending_(descending),
      k_(k),
      pruner_(pruner) {}

bool TopKOp::Weaker(const Value& a, const Value& b) const {
  int c = Value::Compare(a, b);
  return descending_ ? c < 0 : c > 0;
}

void TopKOp::Open() {
  heap_.clear();
  contributing_.clear();
  emitted_ = false;
  columnar_input_ = dynamic_cast<TableScanOp*>(input_.get());
  input_->Open();
}

void TopKOp::MaybePublishBoundary() {
  // Publish the boundary once the heap is full (§5.2): the k-th best
  // value seen so far, enabling the scan to skip partitions.
  if (pruner_ != nullptr && static_cast<int64_t>(heap_.size()) == k_) {
    pruner_->UpdateBoundary(heap_.front().row[order_column_]);
  }
}

void TopKOp::ConsumeColumns() {
  // std::push_heap builds a max-heap; invert so the *weakest* row is at
  // the root (classic top-k min-heap for DESC queries).
  auto heap_cmp = [this](const HeapRow& a, const HeapRow& b) {
    return Weaker(b.row[order_column_], a.row[order_column_]);
  };
  ColumnBatch in;
  while (columnar_input_->NextColumns(&in)) {
    const ColumnVector& keys = in.column(order_column_);
    const auto& nulls = keys.null_mask();
    const PartitionId src = in.source();
    const size_t n = in.num_rows();
    for (size_t i = 0; i < n; ++i) {
      const uint32_t r = in.row_index(i);
      if (nulls[r]) continue;  // NULL keys never qualify
      if (static_cast<int64_t>(heap_.size()) < k_) {
        Row row;
        in.AppendRowValues(r, &row);
        heap_.push_back(HeapRow{std::move(row), src});
        std::push_heap(heap_.begin(), heap_.end(), heap_cmp);
      } else if (!heap_.empty()) {
        // Boundary check against the unboxed key cell: Weaker(boundary,
        // cell) without boxing the candidate. CompareCellVsValue flips the
        // operand order, hence the negation.
        const int c =
            -CompareCellVsValue(keys, r, heap_.front().row[order_column_]);
        if (!(descending_ ? c < 0 : c > 0)) continue;  // weaker than boundary
        std::pop_heap(heap_.begin(), heap_.end(), heap_cmp);
        Row row;
        in.AppendRowValues(r, &row);
        heap_.back() = HeapRow{std::move(row), src};
        std::push_heap(heap_.begin(), heap_.end(), heap_cmp);
      } else {
        continue;
      }
      MaybePublishBoundary();
    }
  }
}

void TopKOp::ConsumeRows() {
  auto heap_cmp = [this](const HeapRow& a, const HeapRow& b) {
    return Weaker(b.row[order_column_], a.row[order_column_]);
  };
  Batch in;
  while (input_->Next(&in)) {
    const bool track = in.has_source();
    for (size_t i = 0; i < in.rows.size(); ++i) {
      Row& row = in.rows[i];
      const Value& key = row[order_column_];
      if (key.is_null()) continue;  // NULL keys never qualify
      PartitionId src = track ? in.source[i] : 0;
      if (static_cast<int64_t>(heap_.size()) < k_) {
        heap_.push_back(HeapRow{std::move(row), src});
        std::push_heap(heap_.begin(), heap_.end(), heap_cmp);
      } else if (!heap_.empty() &&
                 Weaker(heap_.front().row[order_column_], key)) {
        std::pop_heap(heap_.begin(), heap_.end(), heap_cmp);
        heap_.back() = HeapRow{std::move(row), src};
        std::push_heap(heap_.begin(), heap_.end(), heap_cmp);
      } else {
        continue;  // weaker than the current boundary
      }
      MaybePublishBoundary();
    }
  }
}

bool TopKOp::EmitHeap(Batch* out) {
  // Emit best-first.
  std::sort(heap_.begin(), heap_.end(),
            [this](const HeapRow& a, const HeapRow& b) {
              return Weaker(b.row[order_column_], a.row[order_column_]);
            });
  out->rows.clear();
  out->source.clear();
  for (auto& hr : heap_) {
    out->rows.push_back(std::move(hr.row));
    out->source.push_back(hr.source);
    if (std::find(contributing_.begin(), contributing_.end(), hr.source) ==
        contributing_.end()) {
      contributing_.push_back(hr.source);
    }
  }
  emitted_ = true;
  return !out->rows.empty();
}

bool TopKOp::Next(Batch* out) {
  if (emitted_) return false;
  if (columnar_input_ != nullptr) {
    ConsumeColumns();
  } else {
    ConsumeRows();
  }
  return EmitHeap(out);
}

}  // namespace snowprune
