#include "exec/topk_op.h"

#include <algorithm>

namespace snowprune {

TopKOp::TopKOp(OperatorPtr input, size_t order_column, bool descending,
               int64_t k, TopKPruner* pruner)
    : input_(std::move(input)),
      order_column_(order_column),
      descending_(descending),
      k_(k),
      pruner_(pruner) {}

bool TopKOp::Weaker(const Value& a, const Value& b) const {
  int c = Value::Compare(a, b);
  return descending_ ? c < 0 : c > 0;
}

void TopKOp::Open() {
  heap_.clear();
  contributing_.clear();
  emitted_ = false;
  input_->Open();
}

bool TopKOp::Next(Batch* out) {
  if (emitted_) return false;

  auto heap_cmp = [this](const HeapRow& a, const HeapRow& b) {
    // std::push_heap builds a max-heap; invert so the *weakest* row is at
    // the root (classic top-k min-heap for DESC queries).
    return Weaker(b.row[order_column_], a.row[order_column_]);
  };

  Batch in;
  while (input_->Next(&in)) {
    const bool track = in.has_source();
    for (size_t i = 0; i < in.rows.size(); ++i) {
      Row& row = in.rows[i];
      const Value& key = row[order_column_];
      if (key.is_null()) continue;  // NULL keys never qualify
      PartitionId src = track ? in.source[i] : 0;
      if (static_cast<int64_t>(heap_.size()) < k_) {
        heap_.push_back(HeapRow{std::move(row), src});
        std::push_heap(heap_.begin(), heap_.end(), heap_cmp);
      } else if (!heap_.empty() &&
                 Weaker(heap_.front().row[order_column_], key)) {
        std::pop_heap(heap_.begin(), heap_.end(), heap_cmp);
        heap_.back() = HeapRow{std::move(row), src};
        std::push_heap(heap_.begin(), heap_.end(), heap_cmp);
      } else {
        continue;  // weaker than the current boundary
      }
      // Publish the boundary once the heap is full (§5.2): the k-th best
      // value seen so far, enabling the scan to skip partitions.
      if (pruner_ != nullptr && static_cast<int64_t>(heap_.size()) == k_) {
        pruner_->UpdateBoundary(heap_.front().row[order_column_]);
      }
    }
  }

  // Emit best-first.
  std::sort(heap_.begin(), heap_.end(), [this](const HeapRow& a, const HeapRow& b) {
    return Weaker(b.row[order_column_], a.row[order_column_]);
  });
  out->rows.clear();
  out->source.clear();
  for (auto& hr : heap_) {
    out->rows.push_back(std::move(hr.row));
    out->source.push_back(hr.source);
    if (std::find(contributing_.begin(), contributing_.end(), hr.source) ==
        contributing_.end()) {
      contributing_.push_back(hr.source);
    }
  }
  emitted_ = true;
  return !out->rows.empty();
}

}  // namespace snowprune
