#include "exec/topk_op.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/trace.h"
#include "exec/column_batch.h"
#include "exec/profile.h"

namespace snowprune {

namespace {

/// One partition's candidate rows (physical indexes, ascending) that
/// survived the worker-side filter; everything else is provably rejected
/// by the serial heap too.
struct TopKItemCandidates {
  std::vector<uint32_t> rows;
};

}  // namespace

TopKOp::TopKOp(OperatorPtr input, size_t order_column, bool descending,
               int64_t k, TopKPruner* pruner)
    : input_(std::move(input)),
      order_column_(order_column),
      descending_(descending),
      k_(k),
      pruner_(pruner) {}

TopKOp::~TopKOp() {
  if (filter_stage_active_ && columnar_input_ != nullptr) {
    columnar_input_->Close();
  }
}

bool TopKOp::Weaker(const Value& a, const Value& b) const {
  int c = Value::Compare(a, b);
  return descending_ ? c < 0 : c > 0;
}

void TopKOp::Open() {
  heap_.clear();
  contributing_.clear();
  emitted_ = false;
  filter_stage_active_ = false;
  heap_has_nan_ = false;
  {
    MutexLock lock(&shared_root_mutex_);
    shared_root_full_ = false;
    shared_root_ = Value::Null();
  }
  columnar_input_ = dynamic_cast<TableScanOp*>(input_.get());
  if (pipeline_parallel_ && columnar_input_ != nullptr &&
      columnar_input_->parallel_enabled() && k_ > 0) {
    InstallFilterStage();
  }
  input_->Open();
}

void TopKOp::InstallFilterStage() {
  filter_stage_active_ = true;
  const size_t col = order_column_;
  const bool desc = descending_;
  const int64_t k = k_;
  // Float64 keys may contain NaN, which ties with everything under
  // Value::Compare. A NaN buried in the *serial* heap can make the root
  // DECREASE on a later replacement, so "≥ k earlier rows are at least as
  // good" (the local-heap proof) no longer implies serial rejection — and
  // the worker cannot know whether an earlier morsel held a NaN. Float64
  // therefore filters by the snapshot proof only (whose publication the
  // consumer suppresses the moment a NaN enters its heap; see header).
  const bool local_heap_sound =
      columnar_input_->output_schema().field(col).type != DataType::kFloat64;
  columnar_input_->set_morsel_stage([this, col, desc, k,
                                     local_heap_sound](MorselResult* m) {
    // Snapshot of the consumer heap's root, taken once per morsel. Only a
    // *full*-heap root is usable (proof 1 in the class comment); it can be
    // stale — staleness only keeps extra candidates, never drops a row the
    // serial heap would have admitted.
    bool snap_full = false;
    Value snap_root;
    {
      MutexLock lock(&shared_root_mutex_);
      snap_full = shared_root_full_;
      if (snap_full) snap_root = shared_root_;
    }
    // Bounded local heap over the morsel's rows (proof 2): weakest at the
    // root, exactly like the consumer heap, but holding (column, row)
    // references — no boxing on the rejection path.
    struct Ref {
      const ColumnVector* col;
      uint32_t row;
    };
    auto heap_cmp = [desc](const Ref& a, const Ref& b) {
      // True iff b is weaker than a — mirrors the consumer's heap_cmp, so
      // the cmp-max root is the weakest element. c < 0 ⇔ b's key < a's.
      const int c = CompareCells(*b.col, b.row, *a.col, a.row);
      return desc ? c < 0 : c > 0;
    };
    std::vector<Ref> local;
    size_t morsel_rows = 0;
    for (const MorselItem& item : m->items) {
      if (item.loaded) morsel_rows += item.batch.num_rows();
    }
    local.reserve(std::min(static_cast<size_t>(k), morsel_rows));
    for (MorselItem& item : m->items) {
      if (!item.loaded) continue;
      auto cands = std::make_shared<TopKItemCandidates>();
      const ColumnVector& keys = item.batch.column(col);
      const auto& nulls = keys.null_mask();
      const size_t n = item.batch.num_rows();
      for (size_t i = 0; i < n; ++i) {
        const uint32_t r = item.batch.row_index(i);
        if (nulls[r]) continue;  // NULL keys never qualify
        if (snap_full) {
          // Not strictly better than a full consumer root → serial rejects
          // (sound for NaN candidates too: NaN is never strictly better,
          // and a full serial heap admits only strictly-better rows).
          const int c = -CompareCellVsValue(keys, r, snap_root);
          if (!(desc ? c < 0 : c > 0)) continue;
        }
        if (!local_heap_sound) {
          cands->rows.push_back(r);
          continue;
        }
        if (static_cast<int64_t>(local.size()) == k) {
          // ≥ k earlier rows of this morsel are at least as good → the
          // serial heap is full here with a root at least this strict.
          const Ref& root = local.front();
          const int c = CompareCells(keys, r, *root.col, root.row);
          if (!(desc ? c > 0 : c < 0)) continue;
          std::pop_heap(local.begin(), local.end(), heap_cmp);
          local.back() = Ref{&keys, r};
          std::push_heap(local.begin(), local.end(), heap_cmp);
        } else {
          local.push_back(Ref{&keys, r});
          std::push_heap(local.begin(), local.end(), heap_cmp);
        }
        cands->rows.push_back(r);
      }
      item.payload = std::move(cands);
    }
  });
}

void TopKOp::MaybePublishBoundary() {
  if (static_cast<int64_t>(heap_.size()) != k_) return;
  // Publish the boundary once the heap is full (§5.2): the k-th best
  // value seen so far, enabling the scan to skip partitions.
  if (pruner_ != nullptr) {
    pruner_->UpdateBoundary(heap_.front().row[order_column_]);
  }
  if (filter_stage_active_ && !heap_has_nan_) {
    // Feed the worker filters the raw full-heap root (monotone — only
    // while the heap is NaN-free, hence the guard — and never mixed with
    // the pruner's initialization bound; see header).
    MutexLock lock(&shared_root_mutex_);
    shared_root_full_ = true;
    shared_root_ = heap_.front().row[order_column_];
  }
}

void TopKOp::ConsumeColumns() {
  // std::push_heap builds a max-heap; invert so the *weakest* row is at
  // the root (classic top-k min-heap for DESC queries).
  auto heap_cmp = [this](const HeapRow& a, const HeapRow& b) {
    return Weaker(b.row[order_column_], a.row[order_column_]);
  };
  ColumnBatch in;
  TableScanOp::MorselPayload payload;
  while (columnar_input_->NextColumns(&in, &payload)) {
    const ColumnVector& keys = in.column(order_column_);
    const auto& nulls = keys.null_mask();
    const PartitionId src = in.source();
    const bool float_keys = keys.type() == DataType::kFloat64;
    // The exact serial per-row heap step, shared by the full scan loop and
    // the candidate replay; `r` is non-null in both.
    auto process_row = [&](uint32_t r) {
      if (static_cast<int64_t>(heap_.size()) < k_) {
        // The fill path is the only way a NaN key can ever enter the heap
        // (replacement requires strictly-better, which NaN never is);
        // flagging here therefore always precedes the first publication.
        if (float_keys && std::isnan(keys.Float64At(r))) {
          heap_has_nan_ = true;
        }
        Row row;
        in.AppendRowValues(r, &row);
        heap_.push_back(HeapRow{std::move(row), src});
        std::push_heap(heap_.begin(), heap_.end(), heap_cmp);
      } else if (!heap_.empty()) {
        // Boundary check against the unboxed key cell: Weaker(boundary,
        // cell) without boxing the candidate. CompareCellVsValue flips the
        // operand order, hence the negation.
        const int c =
            -CompareCellVsValue(keys, r, heap_.front().row[order_column_]);
        if (!(descending_ ? c < 0 : c > 0)) return;  // weaker than boundary
        std::pop_heap(heap_.begin(), heap_.end(), heap_cmp);
        Row row;
        in.AppendRowValues(r, &row);
        heap_.back() = HeapRow{std::move(row), src};
        std::push_heap(heap_.begin(), heap_.end(), heap_cmp);
      } else {
        return;
      }
      MaybePublishBoundary();
    };
    if (payload != nullptr) {
      // Candidate replay: the worker already dropped every row the serial
      // heap would reject at its position; surviving candidates go through
      // the identical heap step in identical order.
      const auto* cands = static_cast<const TopKItemCandidates*>(payload.get());
      for (uint32_t r : cands->rows) process_row(r);
    } else {
      const size_t n = in.num_rows();
      for (size_t i = 0; i < n; ++i) {
        const uint32_t r = in.row_index(i);
        if (nulls[r]) continue;  // NULL keys never qualify
        process_row(r);
      }
    }
  }
}

void TopKOp::ConsumeRows() {
  auto heap_cmp = [this](const HeapRow& a, const HeapRow& b) {
    return Weaker(b.row[order_column_], a.row[order_column_]);
  };
  Batch in;
  while (input_->Next(&in)) {
    const bool track = in.has_source();
    for (size_t i = 0; i < in.rows.size(); ++i) {
      Row& row = in.rows[i];
      const Value& key = row[order_column_];
      if (key.is_null()) continue;  // NULL keys never qualify
      PartitionId src = track ? in.source[i] : 0;
      if (static_cast<int64_t>(heap_.size()) < k_) {
        heap_.push_back(HeapRow{std::move(row), src});
        std::push_heap(heap_.begin(), heap_.end(), heap_cmp);
      } else if (!heap_.empty() &&
                 Weaker(heap_.front().row[order_column_], key)) {
        std::pop_heap(heap_.begin(), heap_.end(), heap_cmp);
        heap_.back() = HeapRow{std::move(row), src};
        std::push_heap(heap_.begin(), heap_.end(), heap_cmp);
      } else {
        continue;  // weaker than the current boundary
      }
      MaybePublishBoundary();
    }
  }
}

bool TopKOp::EmitHeap(Batch* out) {
  // Emit best-first.
  std::sort(heap_.begin(), heap_.end(),
            [this](const HeapRow& a, const HeapRow& b) {
              return Weaker(b.row[order_column_], a.row[order_column_]);
            });
  out->rows.clear();
  out->source.clear();
  for (auto& hr : heap_) {
    out->rows.push_back(std::move(hr.row));
    out->source.push_back(hr.source);
    if (std::find(contributing_.begin(), contributing_.end(), hr.source) ==
        contributing_.end()) {
      contributing_.push_back(hr.source);
    }
  }
  emitted_ = true;
  return !out->rows.empty();
}

bool TopKOp::Next(Batch* out) {
  if (profile_ == nullptr) return NextInner(out);
  return ProfiledNext(
      profile_, [&] { return NextInner(out); },
      [&] { return static_cast<int64_t>(out->rows.size()); });
}

bool TopKOp::NextInner(Batch* out) {
  if (emitted_) return false;
  // The heap consume is the pipeline break; one span covers it plus the
  // final best-first emit.
  ScopedSpan drain_span(trace_, "topk.drain", trace_parent_);
  if (columnar_input_ != nullptr) {
    ConsumeColumns();
  } else {
    ConsumeRows();
  }
  return EmitHeap(out);
}

}  // namespace snowprune
