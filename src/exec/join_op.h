#ifndef SNOWPRUNE_EXEC_JOIN_OP_H_
#define SNOWPRUNE_EXEC_JOIN_OP_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/join_pruner.h"
#include "exec/operator.h"
#include "exec/scan_op.h"

namespace snowprune {

/// Build-once bucketed hash table for the join build side, replacing the
/// previous std::unordered_multimap. Two properties matter:
///
///   - *Deterministic probe order*: entries within a bucket are stored in
///     ascending insertion (build) order, so the matches a probe row emits
///     come out in build order — identical whether the (hash, index) pairs
///     were produced serially on the consumer or by parallel build stages
///     merged in scan-set order. (A node-based multimap's equal-range order
///     is an implementation accident; deterministic structure is what lets
///     the parallel build stay byte-identical to serial.)
///   - *Build-once construction*: the input is a flat entry vector, so
///     construction is a two-pass counting sort — O(n), allocator-quiet,
///     and parallelizable (partitioned by the bucket index's high bits)
///     without changing the result.
class JoinHashTable {
 public:
  struct Entry {
    uint64_t hash;
    uint64_t index;  ///< Build-order ordinal (row locator) of the entry.
  };

  /// Builds from `entries` listed in build order. With a non-null `pool`
  /// and a large input, construction fans out through ParallelFor under
  /// `window` (the owning query's morsel budget); the resulting layout is
  /// byte-identical to the serial construction. `cancel` aborts the fan-out
  /// early (the table is then unusable, but the query is being torn down).
  /// `trace`, when set, receives the fan-out's per-query barrier-task
  /// counts.
  void Build(std::vector<Entry> entries, ThreadPool* pool = nullptr,
             size_t window = 0, const std::atomic<bool>* cancel = nullptr,
             Trace* trace = nullptr);

  void Clear();

  size_t size() const { return slots_.size(); }

  /// Invokes fn(index) for every entry whose hash equals `hash`, in build
  /// order.
  template <typename Fn>
  void ForEachMatch(uint64_t hash, Fn&& fn) const {
    if (slots_.empty()) return;
    const size_t b = static_cast<size_t>(hash) & mask_;
    const uint32_t end = offsets_[b + 1];
    for (uint32_t i = offsets_[b]; i < end; ++i) {
      if (slots_[i].hash == hash) fn(static_cast<size_t>(slots_[i].index));
    }
  }

 private:
  void BuildSerial(const std::vector<Entry>& entries);
  void BuildParallel(const std::vector<Entry>& entries, ThreadPool* pool,
                     size_t window, const std::atomic<bool>* cancel,
                     Trace* trace);

  size_t mask_ = 0;
  /// offsets_[b] .. offsets_[b+1] is bucket b's slice of slots_.
  std::vector<uint32_t> offsets_;
  std::vector<Entry> slots_;
};

/// Join variants. The engine always builds on the right child and probes
/// with the left child.
enum class JoinKind {
  kInner,
  kProbeOuter,  ///< Probe (left) side preserved: LEFT OUTER JOIN.
  kBuildOuter,  ///< Build (right) side preserved: RIGHT OUTER JOIN. Legal
                ///< target for TopK/LIMIT replication onto the build side
                ///< (§4.3, Figure 7c): every build row survives the join.
};

const char* ToString(JoinKind kind);

/// Hash join with §6 join pruning: the build phase summarizes all build-side
/// key values; at Open() the summary is "shipped" to the probe-side scan,
/// which drops micro-partitions whose key min/max cannot intersect it —
/// before they are loaded from storage. Optionally a row-level Bloom filter
/// (the classic bloom-join the paper contrasts with) skips hash-table probes
/// for rows that cannot match.
///
/// Data flow is unboxed end to end when a child is a table scan: the build
/// phase hashes typed key-column cells out of ColumnBatches (keeping the
/// batches and per-entry row locators instead of boxed rows), and the probe
/// phase consumes the probe scan's ColumnBatches directly — the selection
/// vector drives the per-row probes and only the *surviving* output rows
/// are ever boxed, at this operator's output boundary (the pipeline's
/// project/result boundary). Non-scan children use the classic boxed path.
class HashJoinOp : public Operator {
 public:
  struct Config {
    bool enable_partition_pruning = true;
    SummaryKind summary_kind = SummaryKind::kRangeSet;
    size_t summary_budget_bytes = 1024;
    bool row_level_bloom = false;
    size_t bloom_budget_bytes = 4096;
  };

  HashJoinOp(OperatorPtr probe, OperatorPtr build, size_t probe_key,
             size_t build_key, JoinKind kind, Config config);

  /// Planner hook: the probe-side scan to prune and their join-key column
  /// index in that scan's (table) schema.
  void AttachProbeScan(TableScanOp* scan, size_t scan_key_column) {
    probe_scan_ = scan;
    probe_scan_key_column_ = scan_key_column;
  }

  /// Engine hook: parallelize the build phase when the build child is a
  /// parallel table scan. Workers hash each morsel's key cells and collect
  /// per-item summary partials alongside the scan itself; the consumer
  /// merges partials in scan-set order (so the BuildSummary — and the §6
  /// pruning it drives — is byte-identical to serial) and constructs the
  /// deterministic hash table from the flat pairs, itself fanned out when
  /// large. Off (fully serial build) unless the engine enables it.
  void EnablePipelineParallel() { pipeline_parallel_ = true; }

  void Open() override;
  bool Next(Batch* out) override;
  void Close() override;
  const Schema& output_schema() const override { return schema_; }

  /// Observability for the §6 ablation.
  const BuildSummary* summary() const { return summary_.get(); }
  int64_t bloom_skipped_rows() const { return bloom_skipped_rows_; }
  int64_t hash_probes() const { return hash_probes_; }

 private:
  bool NextInner(Batch* out);

  /// Locator of one build-side row inside build_batches_ (columnar build).
  struct BuildRef {
    uint32_t batch;
    uint32_t row;
  };

  Row NullBuildRow() const;
  Row NullProbeRow() const;

  /// Number of build entries (either storage).
  size_t BuildSize() const {
    return build_columnar_ ? build_refs_.size() : build_rows_.size();
  }
  /// Does hash-table entry `entry`'s key equal the probe cell (pcol, r)?
  bool EntryKeyEqualsCell(const ColumnVector& pcol, uint32_t r,
                          size_t entry) const;
  /// Boxed-probe variant: does entry `entry`'s key equal `key`?
  bool EntryKeyEqualsValue(const Value& key, size_t entry) const;
  /// Appends entry `entry`'s full build row to `out` (boxing on demand).
  void AppendBuildValues(size_t entry, Row* out) const;
  /// Probes one key hash and emits all matches; `append_probe` boxes the
  /// probe-side columns into the output row. Returns true if any matched.
  template <typename AppendProbe, typename KeyEqual>
  bool ProbeHash(uint64_t hash, Batch* out, AppendProbe&& append_probe,
                 KeyEqual&& key_equal);

  OperatorPtr probe_;
  OperatorPtr build_;
  size_t probe_key_;
  size_t build_key_;
  JoinKind kind_;
  Config config_;
  Schema schema_;

  TableScanOp* probe_scan_ = nullptr;
  size_t probe_scan_key_column_ = 0;

  /// Boxed build storage (non-scan build child).
  std::vector<Row> build_rows_;
  /// Unboxed build storage (scan build child): the scan's surviving
  /// batches, kept alive for the query, plus per-entry row locators.
  std::vector<ColumnBatch> build_batches_;
  std::vector<BuildRef> build_refs_;
  bool build_columnar_ = false;
  /// Set when the probe child is a table scan: probe ColumnBatches
  /// directly instead of materialized rows.
  TableScanOp* probe_columnar_ = nullptr;

  bool pipeline_parallel_ = false;

  std::vector<bool> build_matched_;
  JoinHashTable hash_table_;
  std::unique_ptr<BuildSummary> summary_;
  std::unique_ptr<BuildSummary> bloom_;
  int64_t bloom_skipped_rows_ = 0;
  int64_t hash_probes_ = 0;
  bool emitted_unmatched_build_ = false;
};

}  // namespace snowprune

#endif  // SNOWPRUNE_EXEC_JOIN_OP_H_
