#ifndef SNOWPRUNE_EXEC_OPERATOR_H_
#define SNOWPRUNE_EXEC_OPERATOR_H_

#include <cstdint>
#include <memory>

#include "exec/batch.h"
#include "storage/schema.h"

namespace snowprune {

struct ProfileNode;
class Trace;

/// Pull-based (Volcano-style, batch-at-a-time) physical operator. The batch
/// granularity is one micro-partition, which is what lets runtime pruning
/// react between batches: the TopK operator tightens its boundary after each
/// batch, and the scan consults it before loading the next partition —
/// "passing information both horizontally and vertically" (§2.1).
class Operator {
 public:
  virtual ~Operator() = default;

  /// Prepares the subtree for execution (recursively).
  virtual void Open() = 0;

  /// Produces the next batch; false at end of stream.
  virtual bool Next(Batch* out) = 0;

  /// Releases resources (recursively).
  virtual void Close() = 0;

  /// The schema of produced rows.
  virtual const Schema& output_schema() const = 0;

  /// Observability hooks, set by the compiler for traced queries only.
  /// `profile` receives rows/batches/ns from the operator's instrumented
  /// Next wrapper (and pruning counters, for source operators); `trace`
  /// lets pipeline-breaking operators record their build/drain phases as
  /// spans under `trace_parent`. Both null on the untraced fast path.
  void set_profile(ProfileNode* profile) { profile_ = profile; }
  ProfileNode* profile() const { return profile_; }
  void set_trace(Trace* trace, uint32_t trace_parent) {
    trace_ = trace;
    trace_parent_ = trace_parent;
  }

 protected:
  ProfileNode* profile_ = nullptr;
  Trace* trace_ = nullptr;
  uint32_t trace_parent_ = 0;
};

using OperatorPtr = std::unique_ptr<Operator>;

}  // namespace snowprune

#endif  // SNOWPRUNE_EXEC_OPERATOR_H_
