#ifndef SNOWPRUNE_EXEC_PARALLEL_PARALLEL_SCAN_H_
#define SNOWPRUNE_EXEC_PARALLEL_PARALLEL_SCAN_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "core/pruning_stats.h"
#include "exec/column_batch.h"
#include "exec/parallel/thread_pool.h"

namespace snowprune {

/// The outcome of scanning one micro-partition within a morsel.
/// `loaded == false` means runtime pruning skipped the partition before it
/// touched storage; `stats` carries the per-partition pruning/scan deltas
/// either way, and is merged into the query's PruningStats by the consumer,
/// in scan-set order.
struct MorselItem {
  bool loaded = false;
  ColumnBatch batch;
  PruningStats stats;
  /// Optional per-partition output of an operator-installed pipeline stage
  /// (type-erased; producer and consumer agree on the concrete type —
  /// top-k candidate lists, sorted runs, join-build hash partials). Travels
  /// with the batch and is dropped with it if the consumer-side top-k
  /// boundary re-check discards the partition.
  std::shared_ptr<void> payload;
};

/// The outcome of processing one morsel: a consecutive run of scan-set
/// partitions (small partitions are batched up to a row budget so
/// post-pruning scan sets of many tiny partitions do not drown in
/// scheduling overhead). `items` holds one entry per scan-set position in
/// the morsel's range, in order.
struct MorselResult {
  std::vector<MorselItem> items;
  /// Optional worker-side reduction output (e.g. a partial aggregation
  /// state) folded over the morsel's loaded batches when a fold is
  /// installed; the batches themselves are then cleared.
  std::shared_ptr<void> payload;
};

/// Fans a post-pruning scan set out across a ThreadPool, morsel-style: each
/// morsel covers one or more consecutive micro-partitions. Results are
/// delivered to the (single) consumer strictly in scan-set order, which
/// keeps downstream operators — and therefore query results — bit-identical
/// to serial execution; only the loading, predicate evaluation, and optional
/// per-morsel reduction move off the consumer thread.
///
/// A bounded scheduling window (results buffered or in flight ahead of the
/// consumer) caps memory: morsel `i + window` is only submitted once morsel
/// `i` has been consumed.
class ParallelScanScheduler {
 public:
  /// Processes morsel `index` (an index into the morsel list, not a
  /// partition id). Runs on pool workers; must be safe to call concurrently
  /// for distinct indexes.
  using MorselFn = std::function<MorselResult(size_t index)>;

  ParallelScanScheduler(ThreadPool* pool, size_t num_morsels, MorselFn fn,
                        size_t window);
  /// Cancels all unstarted morsels and waits for running ones.
  ~ParallelScanScheduler();

  ParallelScanScheduler(const ParallelScanScheduler&) = delete;
  ParallelScanScheduler& operator=(const ParallelScanScheduler&) = delete;

  /// Blocks until the next morsel (in scan-set order) completes and moves
  /// its result out. Returns false once every morsel has been consumed.
  bool Next(MorselResult* out);

  /// Cancellation path: stops submitting unscheduled morsels (already
  /// running ones finish). The consumer abandons the scan — per-query
  /// cancellation releases the query's share of the shared pool as soon as
  /// the in-flight window drains, instead of after the whole scan set.
  void Abandon();

  size_t num_morsels() const { return slots_.size(); }

 private:
  enum class SlotState : char { kUnscheduled, kScheduled, kDone };

  struct Slot {
    SlotState state = SlotState::kUnscheduled;
    MorselResult result;
  };

  /// Submits morsels while the window allows. Caller holds `mutex_`.
  void ScheduleLocked();
  void RunMorsel(size_t index);

  ThreadPool* pool_;
  MorselFn fn_;
  size_t window_;

  std::mutex mutex_;
  std::condition_variable slot_done_;
  std::vector<Slot> slots_;
  size_t next_to_schedule_ = 0;
  size_t next_to_consume_ = 0;
  size_t outstanding_ = 0;  ///< Submitted but not yet finished tasks.
  bool cancelled_ = false;
};

}  // namespace snowprune

#endif  // SNOWPRUNE_EXEC_PARALLEL_PARALLEL_SCAN_H_
