#ifndef SNOWPRUNE_EXEC_PARALLEL_PARALLEL_SCAN_H_
#define SNOWPRUNE_EXEC_PARALLEL_PARALLEL_SCAN_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/trace.h"
#include "core/pruning_stats.h"
#include "exec/column_batch.h"
#include "exec/parallel/thread_pool.h"

namespace snowprune {

/// The outcome of scanning one micro-partition within a morsel.
/// `loaded == false` means runtime pruning skipped the partition before it
/// touched storage; `stats` carries the per-partition pruning/scan deltas
/// either way, and is merged into the query's PruningStats by the consumer,
/// in scan-set order.
struct MorselItem {
  bool loaded = false;
  ColumnBatch batch;
  PruningStats stats;
  /// Optional per-partition output of an operator-installed pipeline stage
  /// (type-erased; producer and consumer agree on the concrete type —
  /// top-k candidate lists, sorted runs, join-build hash partials). Travels
  /// with the batch and is dropped with it if the consumer-side top-k
  /// boundary re-check discards the partition.
  std::shared_ptr<void> payload;
};

/// The outcome of processing one morsel: a consecutive run of scan-set
/// partitions (small partitions are batched up to a row budget so
/// post-pruning scan sets of many tiny partitions do not drown in
/// scheduling overhead). `items` holds one entry per scan-set position in
/// the morsel's range, in order.
struct MorselResult {
  std::vector<MorselItem> items;
  /// Optional worker-side reduction output (e.g. a partial aggregation
  /// state) folded over the morsel's loaded batches when a fold is
  /// installed; the batches themselves are then cleared.
  std::shared_ptr<void> payload;
  /// Worker-recorded trace spans for this morsel (traced queries only;
  /// stays empty otherwise). Recorded lock-free on the worker and merged
  /// into the query's Trace by the consumer when the morsel is delivered —
  /// the scheduler's existing hand-off is the only synchronization.
  SpanBuffer spans;
  /// Non-OK when the morsel failed instead of producing items (an injected
  /// dispatch fault, a partition-load error). The slot still completes
  /// normally — failure never stalls the in-order delivery window — and the
  /// consumer surfaces the first error after abandoning the rest of the
  /// scan.
  Status error;
};

/// Fans a post-pruning scan set out across a ThreadPool, morsel-style: each
/// morsel covers one or more consecutive micro-partitions. Results are
/// delivered to the (single) consumer strictly in scan-set order, which
/// keeps downstream operators — and therefore query results — bit-identical
/// to serial execution; only the loading, predicate evaluation, and optional
/// per-morsel reduction move off the consumer thread.
///
/// A bounded scheduling window (results buffered or in flight ahead of the
/// consumer) caps memory: morsel `i + window` is only submitted once morsel
/// `i` has been consumed.
///
/// Concurrency contract (compile-checked): every slot and cursor is
/// SNOW_GUARDED_BY(mutex_); `fn_` / `pool_` / `window_` / `num_morsels_`
/// are immutable after construction and shared read-only with the workers.
class ParallelScanScheduler {
 public:
  /// Processes morsel `index` (an index into the morsel list, not a
  /// partition id). Runs on pool workers; must be safe to call concurrently
  /// for distinct indexes.
  using MorselFn = std::function<MorselResult(size_t index)>;

  ParallelScanScheduler(ThreadPool* pool, size_t num_morsels, MorselFn fn,
                        size_t window);
  /// Cancels all unstarted morsels and waits for running ones.
  ~ParallelScanScheduler();

  ParallelScanScheduler(const ParallelScanScheduler&) = delete;
  ParallelScanScheduler& operator=(const ParallelScanScheduler&) = delete;

  /// Blocks until the next morsel (in scan-set order) completes and moves
  /// its result out. Returns false once every morsel has been consumed.
  bool Next(MorselResult* out) SNOW_EXCLUDES(mutex_);

  /// Cancellation path: stops submitting unscheduled morsels (already
  /// running ones finish). The consumer abandons the scan — per-query
  /// cancellation releases the query's share of the shared pool as soon as
  /// the in-flight window drains, instead of after the whole scan set.
  void Abandon() SNOW_EXCLUDES(mutex_);

  size_t num_morsels() const { return num_morsels_; }

 private:
  enum class SlotState : char { kUnscheduled, kScheduled, kDone };

  struct Slot {
    SlotState state = SlotState::kUnscheduled;
    MorselResult result;
  };

  /// Submits morsels while the window allows.
  void ScheduleLocked() SNOW_REQUIRES(mutex_);
  void RunMorsel(size_t index) SNOW_EXCLUDES(mutex_);

  ThreadPool* pool_;
  MorselFn fn_;
  size_t window_;
  size_t num_morsels_;

  Mutex mutex_;
  CondVar slot_done_;
  std::vector<Slot> slots_ SNOW_GUARDED_BY(mutex_);
  size_t next_to_schedule_ SNOW_GUARDED_BY(mutex_) = 0;
  size_t next_to_consume_ SNOW_GUARDED_BY(mutex_) = 0;
  /// Submitted but not yet finished tasks.
  size_t outstanding_ SNOW_GUARDED_BY(mutex_) = 0;
  bool cancelled_ SNOW_GUARDED_BY(mutex_) = false;
};

}  // namespace snowprune

#endif  // SNOWPRUNE_EXEC_PARALLEL_PARALLEL_SCAN_H_
