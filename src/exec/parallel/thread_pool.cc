#include "exec/parallel/thread_pool.h"

#include <algorithm>

#include "common/metrics.h"

namespace snowprune {

namespace {

/// Process-wide pool instruments, fetched once (registry pointers are
/// immortal). "pool.queue_depth" is a plain up/down gauge — NOT a callback
/// over a pool member, since pools die while the registry lives forever.
struct PoolMetrics {
  Counter* tasks;
  Gauge* queue_depth;
  Histogram* queue_us;
};

PoolMetrics& GetPoolMetrics() {
  static PoolMetrics m{
      MetricsRegistry::Instance().GetCounter("pool.tasks"),
      MetricsRegistry::Instance().GetGauge("pool.queue_depth"),
      MetricsRegistry::Instance().GetHistogram(
          "pool.task_queue_us",
          {10.0, 50.0, 100.0, 500.0, 1000.0, 5000.0, 10000.0, 50000.0,
           100000.0})};
  return m;
}

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mutex_);
    shutting_down_ = true;
  }
  work_available_.NotifyAll();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  PoolMetrics& metrics = GetPoolMetrics();
  {
    MutexLock lock(&mutex_);
    queue_.push_back(
        QueuedTask{std::move(task), std::chrono::steady_clock::now()});
    queue_high_water_ = std::max(queue_high_water_, queue_.size());
  }
  metrics.tasks->Add();
  metrics.queue_depth->Add(1);
  work_available_.NotifyOne();
}

size_t ThreadPool::queue_depth() const {
  MutexLock lock(&mutex_);
  return queue_.size();
}

size_t ThreadPool::queue_depth_high_water() const {
  MutexLock lock(&mutex_);
  return queue_high_water_;
}

size_t ThreadPool::DefaultConcurrency() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ThreadPool::WorkerLoop() {
  PoolMetrics& metrics = GetPoolMetrics();
  for (;;) {
    QueuedTask task;
    {
      MutexLock lock(&mutex_);
      while (!shutting_down_ && queue_.empty()) work_available_.Wait(&mutex_);
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    metrics.queue_depth->Add(-1);
    metrics.queue_us->Record(
        std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
            std::chrono::steady_clock::now() - task.enqueued)
            .count());
    task.fn();
  }
}

}  // namespace snowprune
