#include "exec/parallel/thread_pool.h"

#include <algorithm>

namespace snowprune {

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mutex_);
    shutting_down_ = true;
  }
  work_available_.NotifyAll();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(&mutex_);
    queue_.push_back(std::move(task));
    queue_high_water_ = std::max(queue_high_water_, queue_.size());
  }
  work_available_.NotifyOne();
}

size_t ThreadPool::queue_depth() const {
  MutexLock lock(&mutex_);
  return queue_.size();
}

size_t ThreadPool::queue_depth_high_water() const {
  MutexLock lock(&mutex_);
  return queue_high_water_;
}

size_t ThreadPool::DefaultConcurrency() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mutex_);
      while (!shutting_down_ && queue_.empty()) work_available_.Wait(&mutex_);
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace snowprune
