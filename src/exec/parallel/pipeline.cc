#include "exec/parallel/pipeline.h"

#include <algorithm>
#include <condition_variable>
#include <mutex>

namespace snowprune {

namespace {

std::atomic<int64_t> g_stage_tasks{0};
std::atomic<int64_t> g_barrier_tasks{0};

/// Shared control block of one ParallelFor call; lives on the caller's
/// stack — safe because the caller blocks until outstanding_ drains to
/// zero, and workers' last touch happens under the mutex.
struct ForCtl {
  ForCtl(ThreadPool* pool, const std::function<void(size_t)>& fn,
         const std::atomic<bool>* cancel, size_t num_tasks, size_t window)
      : pool(pool), fn(fn), cancel(cancel), num_tasks(num_tasks),
        window(window) {}

  ThreadPool* pool;
  const std::function<void(size_t)>& fn;
  const std::atomic<bool>* cancel;
  const size_t num_tasks;
  const size_t window;

  std::mutex mutex;
  std::condition_variable done;
  size_t next = 0;         ///< Next index to submit.
  size_t outstanding = 0;  ///< Submitted but not yet finished.
  size_t ran = 0;

  bool Cancelled() const {
    return cancel != nullptr && cancel->load(std::memory_order_relaxed);
  }

  /// Submits tasks while the window allows. Caller holds `mutex`.
  void ScheduleLocked() {
    while (!Cancelled() && next < num_tasks && outstanding < window) {
      const size_t index = next++;
      ++outstanding;
      pool->Submit([this, index] { Run(index); });
    }
  }

  void Run(size_t index) {
    const bool skip = Cancelled();
    if (!skip) fn(index);
    std::lock_guard<std::mutex> lock(mutex);
    if (!skip) ++ran;
    --outstanding;
    ScheduleLocked();
    // Last touch under the mutex: once outstanding hits 0 the caller may
    // unwind the stack this control block lives on.
    done.notify_all();
  }
};

}  // namespace

int64_t PipelineCounters::stage_tasks() {
  return g_stage_tasks.load(std::memory_order_relaxed);
}

int64_t PipelineCounters::barrier_tasks() {
  return g_barrier_tasks.load(std::memory_order_relaxed);
}

void PipelineCounters::IncStageTasks() {
  g_stage_tasks.fetch_add(1, std::memory_order_relaxed);
}

void PipelineCounters::IncBarrierTasks(int64_t n) {
  g_barrier_tasks.fetch_add(n, std::memory_order_relaxed);
}

size_t ParallelFor(ThreadPool* pool, size_t num_tasks, size_t window,
                   const std::function<void(size_t)>& fn,
                   const std::atomic<bool>* cancel) {
  if (num_tasks == 0 || pool == nullptr) return 0;
  if (window == 0) window = pool->num_threads();
  window = std::max<size_t>(1, window);

  ForCtl ctl(pool, fn, cancel, num_tasks, window);
  std::unique_lock<std::mutex> lock(ctl.mutex);
  ctl.ScheduleLocked();
  ctl.done.wait(lock, [&] {
    return ctl.outstanding == 0 &&
           (ctl.next == ctl.num_tasks || ctl.Cancelled());
  });
  PipelineCounters::IncBarrierTasks(static_cast<int64_t>(ctl.ran));
  return ctl.ran;
}

}  // namespace snowprune
