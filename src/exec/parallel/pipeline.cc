#include "exec/parallel/pipeline.h"

#include <algorithm>

#include "common/metrics.h"
#include "common/mutex.h"
#include "common/trace.h"

namespace snowprune {

namespace {

std::atomic<int64_t> g_stage_tasks{0};
std::atomic<int64_t> g_barrier_tasks{0};

// The process-wide counters double as registry gauges (the per-query view
// lives on each traced query's Trace). Callback targets are these
// namespace-scope atomics — immortal, so the registry's lifetime rule
// holds trivially.
[[maybe_unused]] const bool g_pipeline_gauges_registered = [] {
  MetricsRegistry::Instance().RegisterCallbackGauge(
      "pipeline.stage_tasks",
      [] { return g_stage_tasks.load(std::memory_order_relaxed); });
  MetricsRegistry::Instance().RegisterCallbackGauge(
      "pipeline.barrier_tasks",
      [] { return g_barrier_tasks.load(std::memory_order_relaxed); });
  return true;
}();

/// Shared control block of one ParallelFor call; lives on the caller's
/// stack — safe because the caller blocks until outstanding_ drains to
/// zero, and workers' last touch happens under the mutex. All scheduling
/// state is SNOW_GUARDED_BY(mutex); `fn` / `cancel` / bounds are immutable.
struct ForCtl {
  ForCtl(ThreadPool* pool, const std::function<void(size_t)>& fn,
         const std::atomic<bool>* cancel, size_t num_tasks, size_t window)
      : pool(pool), fn(fn), cancel(cancel), num_tasks(num_tasks),
        window(window) {}

  ThreadPool* pool;
  const std::function<void(size_t)>& fn;
  const std::atomic<bool>* cancel;
  const size_t num_tasks;
  const size_t window;

  Mutex mutex;
  CondVar done;
  size_t next SNOW_GUARDED_BY(mutex) = 0;         ///< Next index to submit.
  size_t outstanding SNOW_GUARDED_BY(mutex) = 0;  ///< Submitted, unfinished.
  size_t ran SNOW_GUARDED_BY(mutex) = 0;

  bool Cancelled() const {
    return cancel != nullptr && cancel->load(std::memory_order_relaxed);
  }

  /// Submits tasks while the window allows.
  void ScheduleLocked() SNOW_REQUIRES(mutex) {
    while (!Cancelled() && next < num_tasks && outstanding < window) {
      const size_t index = next++;
      ++outstanding;
      pool->Submit([this, index] { Run(index); });
    }
  }

  void Run(size_t index) SNOW_EXCLUDES(mutex) {
    const bool skip = Cancelled();
    if (!skip) fn(index);
    MutexLock lock(&mutex);
    if (!skip) ++ran;
    --outstanding;
    ScheduleLocked();
    // Last touch under the mutex: once outstanding hits 0 the caller may
    // unwind the stack this control block lives on.
    done.NotifyAll();
  }
};

}  // namespace

int64_t PipelineCounters::stage_tasks() {
  return g_stage_tasks.load(std::memory_order_relaxed);
}

int64_t PipelineCounters::barrier_tasks() {
  return g_barrier_tasks.load(std::memory_order_relaxed);
}

void PipelineCounters::IncStageTasks() {
  g_stage_tasks.fetch_add(1, std::memory_order_relaxed);
}

void PipelineCounters::IncBarrierTasks(int64_t n) {
  g_barrier_tasks.fetch_add(n, std::memory_order_relaxed);
}

size_t ParallelFor(ThreadPool* pool, size_t num_tasks, size_t window,
                   const std::function<void(size_t)>& fn,
                   const std::atomic<bool>* cancel, Trace* trace) {
  if (num_tasks == 0 || pool == nullptr) return 0;
  if (window == 0) window = pool->num_threads();
  window = std::max<size_t>(1, window);

  ForCtl ctl(pool, fn, cancel, num_tasks, window);
  size_t ran = 0;
  {
    MutexLock lock(&ctl.mutex);
    ctl.ScheduleLocked();
    while (ctl.outstanding != 0 ||
           (ctl.next != ctl.num_tasks && !ctl.Cancelled())) {
      ctl.done.Wait(&ctl.mutex);
    }
    ran = ctl.ran;
  }
  PipelineCounters::IncBarrierTasks(static_cast<int64_t>(ran));
  if (trace != nullptr) trace->IncBarrierTasks(static_cast<int64_t>(ran));
  return ran;
}

}  // namespace snowprune
