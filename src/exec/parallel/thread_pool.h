#ifndef SNOWPRUNE_EXEC_PARALLEL_THREAD_POOL_H_
#define SNOWPRUNE_EXEC_PARALLEL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace snowprune {

/// A fixed-size worker pool with a single FIFO task queue — deliberately
/// work-stealing-free: morsels (one micro-partition each) are coarse enough
/// that a shared queue is not a bottleneck, and FIFO dispatch keeps the
/// completion order close to the scan-set order the consumer wants, which
/// minimizes result buffering in ParallelScanScheduler.
///
/// The pool is owned by the Engine and shared across queries; schedulers
/// submit tasks and track their own completion.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` for execution on some worker. Safe from any thread,
  /// including from within a running task.
  void Submit(std::function<void()> task);

  size_t num_threads() const { return workers_.size(); }

  /// Tasks submitted but not yet picked up by a worker — the shared-queue
  /// backlog. With several queries sharing one pool this is the head-of-line
  /// pressure the per-query morsel-window budget bounds (each in-flight
  /// query can contribute at most its window's worth of queued morsels).
  size_t queue_depth() const;

  /// Deepest the backlog ever got over the pool's lifetime (updated at every
  /// Submit). The service surfaces this as ServiceStats::
  /// peak_pool_queue_depth — the measured worst case of the head-of-line
  /// pressure the windows are budgeted against.
  size_t queue_depth_high_water() const;

  /// std::thread::hardware_concurrency with a floor of 1 (the standard
  /// permits 0 for "unknown").
  static size_t DefaultConcurrency();

 private:
  void WorkerLoop();

  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::deque<std::function<void()>> queue_;
  size_t queue_high_water_ = 0;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace snowprune

#endif  // SNOWPRUNE_EXEC_PARALLEL_THREAD_POOL_H_
