#ifndef SNOWPRUNE_EXEC_PARALLEL_THREAD_POOL_H_
#define SNOWPRUNE_EXEC_PARALLEL_THREAD_POOL_H_

#include <chrono>
#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"

namespace snowprune {

/// A fixed-size worker pool with a single FIFO task queue — deliberately
/// work-stealing-free: morsels (one micro-partition each) are coarse enough
/// that a shared queue is not a bottleneck, and FIFO dispatch keeps the
/// completion order close to the scan-set order the consumer wants, which
/// minimizes result buffering in ParallelScanScheduler.
///
/// The pool is owned by the Engine and shared across queries; schedulers
/// submit tasks and track their own completion.
///
/// Concurrency contract (compile-checked by clang thread-safety analysis):
/// all queue state is SNOW_GUARDED_BY(mutex_); `workers_` is written only in
/// the constructor and joined only in the destructor, when no other thread
/// can hold a reference.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` for execution on some worker. Safe from any thread,
  /// including from within a running task.
  void Submit(std::function<void()> task) SNOW_EXCLUDES(mutex_);

  size_t num_threads() const { return workers_.size(); }

  /// Tasks submitted but not yet picked up by a worker — the shared-queue
  /// backlog. With several queries sharing one pool this is the head-of-line
  /// pressure the per-query morsel-window budget bounds (each in-flight
  /// query can contribute at most its window's worth of queued morsels).
  size_t queue_depth() const SNOW_EXCLUDES(mutex_);

  /// Deepest the backlog ever got over the pool's lifetime (updated at every
  /// Submit). The service surfaces this as ServiceStats::
  /// peak_pool_queue_depth — the measured worst case of the head-of-line
  /// pressure the windows are budgeted against.
  size_t queue_depth_high_water() const SNOW_EXCLUDES(mutex_);

  /// std::thread::hardware_concurrency with a floor of 1 (the standard
  /// permits 0 for "unknown").
  static size_t DefaultConcurrency();

 private:
  /// A queued task plus its submission time: the gap to dequeue is the
  /// shared-queue wait, recorded into the process-wide "pool.task_queue_us"
  /// histogram when a worker picks the task up.
  struct QueuedTask {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued;
  };

  void WorkerLoop() SNOW_EXCLUDES(mutex_);

  mutable Mutex mutex_;
  CondVar work_available_;
  std::deque<QueuedTask> queue_ SNOW_GUARDED_BY(mutex_);
  size_t queue_high_water_ SNOW_GUARDED_BY(mutex_) = 0;
  bool shutting_down_ SNOW_GUARDED_BY(mutex_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace snowprune

#endif  // SNOWPRUNE_EXEC_PARALLEL_THREAD_POOL_H_
