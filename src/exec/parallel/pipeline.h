#ifndef SNOWPRUNE_EXEC_PARALLEL_PIPELINE_H_
#define SNOWPRUNE_EXEC_PARALLEL_PIPELINE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>

#include "exec/parallel/thread_pool.h"

namespace snowprune {

class Trace;

/// Process-wide observability for the task-pipeline layer (the morsel
/// executor generalized beyond scans). Two kinds of parallel work exist:
///
///   - *stage tasks*: an operator-installed per-morsel pipeline stage
///     (join-build hashing, top-k candidate filtering, sort-run building,
///     aggregate folding) that ran on a worker right after the morsel's
///     partitions were scanned, and
///   - *barrier tasks*: bounded fan-out units run through ParallelFor
///     (e.g. the partitioned hash-table construction of a parallel join
///     build), where the consumer blocks until every unit completes.
///
/// Counters are monotonic across the process lifetime, like
/// ColumnBatch::materialize_calls(): benches and tests snapshot before /
/// after a query to prove the parallel path actually executed (a
/// silently-serial regression shows up as a zero delta).
class PipelineCounters {
 public:
  static int64_t stage_tasks();
  static int64_t barrier_tasks();
  static void IncStageTasks();
  static void IncBarrierTasks(int64_t n);
};

/// Bounded-window barrier fan-out: runs `fn(i)` for every i in
/// [0, num_tasks) on `pool` workers, with at most `window` tasks submitted
/// or running at once (the same per-query budget that caps a scan's morsel
/// backlog — a pipeline barrier must not be able to flood the shared pool
/// either), and blocks the calling thread until every task has finished.
/// `window` 0 defaults to the pool's width.
///
/// Tasks are independent and may run in any order; callers own any output
/// buffers, which ParallelFor guarantees are quiescent on return.
///
/// Cancellation: when `cancel` is non-null and becomes true, tasks that
/// have not started are skipped (started ones run to completion). Returns
/// the number of tasks that actually ran — num_tasks unless cancelled.
///
/// Must not be called from inside a pool task: a worker blocking on a
/// barrier would deadlock a width-1 pool (the engine only calls it from
/// consumer/driver threads).
///
/// `trace`, when set, additionally receives the ran count on its per-query
/// barrier-task counter (the query-scoped view of PipelineCounters).
size_t ParallelFor(ThreadPool* pool, size_t num_tasks, size_t window,
                   const std::function<void(size_t)>& fn,
                   const std::atomic<bool>* cancel = nullptr,
                   Trace* trace = nullptr);

}  // namespace snowprune

#endif  // SNOWPRUNE_EXEC_PARALLEL_PIPELINE_H_
