#include "exec/parallel/parallel_scan.h"

#include <algorithm>

#include "common/failpoint.h"

namespace snowprune {

ParallelScanScheduler::ParallelScanScheduler(ThreadPool* pool,
                                            size_t num_morsels, MorselFn fn,
                                            size_t window)
    : pool_(pool),
      fn_(std::move(fn)),
      window_(std::max<size_t>(1, window)),
      num_morsels_(num_morsels) {
  slots_.resize(num_morsels);
  MutexLock lock(&mutex_);
  ScheduleLocked();
}

ParallelScanScheduler::~ParallelScanScheduler() {
  MutexLock lock(&mutex_);
  cancelled_ = true;
  while (outstanding_ != 0) slot_done_.Wait(&mutex_);
}

void ParallelScanScheduler::ScheduleLocked() {
  while (!cancelled_ && next_to_schedule_ < slots_.size() &&
         next_to_schedule_ < next_to_consume_ + window_) {
    size_t index = next_to_schedule_++;
    slots_[index].state = SlotState::kScheduled;
    ++outstanding_;
    pool_->Submit([this, index] { RunMorsel(index); });
  }
}

void ParallelScanScheduler::RunMorsel(size_t index) {
  bool run = false;
  {
    MutexLock lock(&mutex_);
    run = !cancelled_;
  }
  MorselResult result;
  if (run) {
    // Injection site: a pool task lost before the morsel function runs (a
    // crashed worker, a dropped dispatch). The slot still completes — with
    // an error instead of items — so in-order delivery never hangs.
    if (SNOW_FAILPOINT("pool.dispatch")) {
      result.error = InjectedFault("pool.dispatch");
    } else {
      result = fn_(index);
    }
  }
  {
    MutexLock lock(&mutex_);
    slots_[index].result = std::move(result);
    slots_[index].state = SlotState::kDone;
    --outstanding_;
    // Wake both the consumer (possibly waiting on this slot) and a
    // destructor waiting for outstanding tasks to drain. The notify must
    // happen *under* the mutex: once it is released with outstanding_ == 0
    // the destructor's wait can return and free this object, so this is
    // the last touch. (A sibling worker's notify can also wake the
    // consumer into tearing the scheduler down; the held mutex blocks the
    // destructor until this worker is fully out.)
    slot_done_.NotifyAll();
  }
}

void ParallelScanScheduler::Abandon() {
  MutexLock lock(&mutex_);
  cancelled_ = true;
  slot_done_.NotifyAll();
}

bool ParallelScanScheduler::Next(MorselResult* out) {
  MutexLock lock(&mutex_);
  if (next_to_consume_ >= slots_.size()) return false;
  size_t index = next_to_consume_;
  // After Abandon() an unscheduled slot will never complete; report
  // end-of-scan instead of waiting forever (scheduled ones still finish and
  // are delivered, keeping the consumer's cancellation check race-free).
  while (slots_[index].state != SlotState::kDone &&
         !(cancelled_ && slots_[index].state == SlotState::kUnscheduled)) {
    slot_done_.Wait(&mutex_);
  }
  if (slots_[index].state != SlotState::kDone) return false;
  *out = std::move(slots_[index].result);
  slots_[index].result = MorselResult();
  ++next_to_consume_;
  ScheduleLocked();
  return true;
}

}  // namespace snowprune
