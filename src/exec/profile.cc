#include "exec/profile.h"

#include <functional>
#include <sstream>

namespace snowprune {

namespace {

void AppendJsonString(std::ostringstream* out, const std::string& s) {
  *out << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') *out << '\\';
    *out << c;
  }
  *out << '"';
}

bool HasPruning(const ProfileNode& node) {
  const PruningStats& p = node.pruning;
  return p.total_partitions != 0 || p.scanned_partitions != 0 ||
         p.shards_total != 0 || p.TotalPruned() != 0;
}

}  // namespace

ProfileNode* QueryProfile::NewNode(std::string name, std::string detail) {
  nodes_.push_back(std::make_unique<ProfileNode>());
  ProfileNode* node = nodes_.back().get();
  node->name = std::move(name);
  node->detail = std::move(detail);
  return node;
}

PruningStats QueryProfile::SumPruning() const {
  // The node pool holds every node exactly once, so a flat sum equals a
  // tree walk — and also covers nodes a compile error left unlinked.
  PruningStats sum;
  for (const auto& node : nodes_) sum.Merge(node->pruning);
  return sum;
}

std::string QueryProfile::ToText() const {
  std::ostringstream out;
  std::function<void(const ProfileNode*, int)> render =
      [&](const ProfileNode* node, int depth) {
        for (int i = 0; i < depth; ++i) out << "  ";
        out << node->name;
        if (!node->detail.empty()) out << ' ' << node->detail;
        out << "  (rows=" << node->rows_out << " batches=" << node->batches
            << " time=" << static_cast<double>(node->ns) / 1e6 << "ms)\n";
        if (HasPruning(*node)) {
          const PruningStats& p = node->pruning;
          for (int i = 0; i < depth + 1; ++i) out << "  ";
          // All four per-partition levels, always — a 0 is a statement.
          out << "pruned: filter=" << p.pruned_by_filter
              << " limit=" << p.pruned_by_limit << " join=" << p.pruned_by_join
              << " topk=" << p.pruned_by_topk
              << " | scanned " << p.scanned_partitions << "/"
              << p.total_partitions << " partitions, " << p.scanned_rows
              << " rows";
          if (p.speculative_loads > 0) {
            out << ", speculative=" << p.speculative_loads;
          }
          out << '\n';
          if (p.shards_total > 0) {
            for (int i = 0; i < depth + 1; ++i) out << "  ";
            out << "shards: pruned " << p.shards_pruned << "/"
                << p.shards_total << '\n';
          }
        }
        for (const ProfileNode* child : node->children) {
          render(child, depth + 1);
        }
      };
  if (root != nullptr) render(root, 0);
  out << "pipeline: stage_tasks=" << stage_tasks
      << " barrier_tasks=" << barrier_tasks << '\n';
  return out.str();
}

std::string QueryProfile::ToJson() const {
  std::ostringstream out;
  std::function<void(const ProfileNode*)> render = [&](const ProfileNode*
                                                           node) {
    out << "{\"name\":";
    AppendJsonString(&out, node->name);
    if (!node->detail.empty()) {
      out << ",\"detail\":";
      AppendJsonString(&out, node->detail);
    }
    out << ",\"rows_out\":" << node->rows_out
        << ",\"batches\":" << node->batches << ",\"ns\":" << node->ns;
    if (HasPruning(*node)) {
      const PruningStats& p = node->pruning;
      out << ",\"pruning\":{\"total_partitions\":" << p.total_partitions
          << ",\"pruned_by_filter\":" << p.pruned_by_filter
          << ",\"pruned_by_limit\":" << p.pruned_by_limit
          << ",\"pruned_by_join\":" << p.pruned_by_join
          << ",\"pruned_by_topk\":" << p.pruned_by_topk
          << ",\"scanned_partitions\":" << p.scanned_partitions
          << ",\"scanned_rows\":" << p.scanned_rows
          << ",\"speculative_loads\":" << p.speculative_loads
          << ",\"shards_total\":" << p.shards_total
          << ",\"shards_pruned\":" << p.shards_pruned << '}';
    }
    out << ",\"children\":[";
    for (size_t i = 0; i < node->children.size(); ++i) {
      if (i > 0) out << ',';
      render(node->children[i]);
    }
    out << "]}";
  };
  out << "{\"stage_tasks\":" << stage_tasks
      << ",\"barrier_tasks\":" << barrier_tasks << ",\"plan\":";
  if (root != nullptr) {
    render(root);
  } else {
    out << "null";
  }
  out << '}';
  return out.str();
}

}  // namespace snowprune
