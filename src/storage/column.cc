#include "storage/column.h"

#include <cassert>

namespace snowprune {

void ColumnVector::AppendNull() {
  null_mask_.push_back(1);
  switch (type_) {
    case DataType::kBool: bools_.push_back(0); break;
    case DataType::kInt64: ints_.push_back(0); break;
    case DataType::kFloat64: doubles_.push_back(0.0); break;
    case DataType::kString: strings_.emplace_back(); break;
  }
}

void ColumnVector::AppendBool(bool v) {
  assert(type_ == DataType::kBool);
  null_mask_.push_back(0);
  bools_.push_back(v ? 1 : 0);
}

void ColumnVector::AppendInt64(int64_t v) {
  assert(type_ == DataType::kInt64);
  null_mask_.push_back(0);
  ints_.push_back(v);
}

void ColumnVector::AppendFloat64(double v) {
  assert(type_ == DataType::kFloat64);
  null_mask_.push_back(0);
  doubles_.push_back(v);
}

void ColumnVector::AppendString(std::string v) {
  assert(type_ == DataType::kString);
  null_mask_.push_back(0);
  strings_.push_back(std::move(v));
}

void ColumnVector::AppendValue(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return;
  }
  switch (type_) {
    case DataType::kBool: AppendBool(v.bool_value()); break;
    case DataType::kInt64: AppendInt64(v.int64_value()); break;
    case DataType::kFloat64:
      // Allow int-typed literals to land in float columns.
      AppendFloat64(v.is_int64() ? static_cast<double>(v.int64_value())
                                 : v.float64_value());
      break;
    case DataType::kString: AppendString(v.string_value()); break;
  }
}

Value ColumnVector::ValueAt(size_t i) const {
  if (IsNull(i)) return Value::Null();
  switch (type_) {
    case DataType::kBool: return Value(BoolAt(i));
    case DataType::kInt64: return Value(Int64At(i));
    case DataType::kFloat64: return Value(Float64At(i));
    case DataType::kString: return Value(StringAt(i));
  }
  return Value::Null();
}

ColumnStats ColumnVector::ComputeStats() const {
  ColumnStats stats;
  stats.has_stats = true;
  stats.row_count = static_cast<int64_t>(size());
  bool seen = false;
  for (size_t i = 0; i < size(); ++i) {
    if (IsNull(i)) {
      ++stats.null_count;
      continue;
    }
    Value v = ValueAt(i);
    if (!seen) {
      stats.min = v;
      stats.max = v;
      seen = true;
    } else {
      if (Value::Compare(v, stats.min) < 0) stats.min = v;
      if (Value::Compare(v, stats.max) > 0) stats.max = v;
    }
  }
  return stats;
}

}  // namespace snowprune
