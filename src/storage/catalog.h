#ifndef SNOWPRUNE_STORAGE_CATALOG_H_
#define SNOWPRUNE_STORAGE_CATALOG_H_

#include <map>
#include <memory>
#include <string>

#include "common/mutex.h"
#include "common/status.h"
#include "storage/table.h"

namespace snowprune {

/// The metadata-service facade (§2, "Cloud Services"): name -> table
/// registry plus aggregate IO meters. Query compilation consults zone maps
/// through the catalog without touching data; execution loads partitions
/// through the owning Table, and the catalog aggregates the meters.
///
/// Thread safety: the registry is shared by every engine of a query service,
/// so all operations synchronize on an internal mutex (compile-checked:
/// tables_ is SNOW_GUARDED_BY(mutex_)). Lookups hand out
/// shared_ptr snapshots — a query that compiled against a table keeps that
/// table alive and immutable-for-it even if ReplaceTable/DropTable swaps the
/// name to a new version mid-flight (DML is snapshot-atomic per query).
class Catalog {
 public:
  /// Registers a table; fails if the name is taken.
  Status RegisterTable(std::shared_ptr<Table> table) SNOW_EXCLUDES(mutex_);

  /// Drops a table by name; fails if absent.
  Status DropTable(const std::string& name) SNOW_EXCLUDES(mutex_);

  /// Atomically swaps the name to a new table version (coarse
  /// DML-as-replacement: CREATE OR REPLACE). In-flight queries holding the
  /// previous shared_ptr are unaffected; new compiles see the new version.
  /// Registers the name if it was absent.
  Status ReplaceTable(std::shared_ptr<Table> table) SNOW_EXCLUDES(mutex_);

  /// Looks up a table by name; returns nullptr if absent.
  std::shared_ptr<Table> GetTable(const std::string& name) const
      SNOW_EXCLUDES(mutex_);

  /// Total partition loads across all registered tables.
  int64_t TotalLoads() const SNOW_EXCLUDES(mutex_);
  int64_t TotalLoadedRows() const SNOW_EXCLUDES(mutex_);
  /// Total partitions across all registered tables.
  int64_t TotalPartitions() const SNOW_EXCLUDES(mutex_);
  void ResetMeters() const SNOW_EXCLUDES(mutex_);

  size_t num_tables() const SNOW_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    return tables_.size();
  }

 private:
  mutable Mutex mutex_;
  std::map<std::string, std::shared_ptr<Table>> tables_ SNOW_GUARDED_BY(mutex_);
};

}  // namespace snowprune

#endif  // SNOWPRUNE_STORAGE_CATALOG_H_
