#ifndef SNOWPRUNE_STORAGE_CATALOG_H_
#define SNOWPRUNE_STORAGE_CATALOG_H_

#include <map>
#include <memory>
#include <string>

#include "common/status.h"
#include "storage/table.h"

namespace snowprune {

/// The metadata-service facade (§2, "Cloud Services"): name -> table
/// registry plus aggregate IO meters. Query compilation consults zone maps
/// through the catalog without touching data; execution loads partitions
/// through the owning Table, and the catalog aggregates the meters.
class Catalog {
 public:
  /// Registers a table; fails if the name is taken.
  Status RegisterTable(std::shared_ptr<Table> table);

  /// Drops a table by name; fails if absent.
  Status DropTable(const std::string& name);

  /// Looks up a table by name; returns nullptr if absent.
  std::shared_ptr<Table> GetTable(const std::string& name) const;

  /// Total partition loads across all registered tables.
  int64_t TotalLoads() const;
  int64_t TotalLoadedRows() const;
  /// Total partitions across all registered tables.
  int64_t TotalPartitions() const;
  void ResetMeters() const;

  size_t num_tables() const { return tables_.size(); }

 private:
  std::map<std::string, std::shared_ptr<Table>> tables_;
};

}  // namespace snowprune

#endif  // SNOWPRUNE_STORAGE_CATALOG_H_
