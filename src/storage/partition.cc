#include "storage/partition.h"

namespace snowprune {

void MicroPartition::DropStats() {
  has_stats_ = false;
  for (auto& s : stats_) {
    s = ColumnStats{};
    s.row_count = static_cast<int64_t>(row_count_);
  }
}

void MicroPartition::RecomputeStats() {
  stats_.clear();
  stats_.reserve(columns_.size());
  for (const auto& col : columns_) {
    stats_.push_back(col.ComputeStats());
  }
  has_stats_ = true;
}

}  // namespace snowprune
