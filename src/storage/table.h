#ifndef SNOWPRUNE_STORAGE_TABLE_H_
#define SNOWPRUNE_STORAGE_TABLE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/status.h"
#include "storage/partition.h"
#include "storage/scan_set.h"
#include "storage/schema.h"

namespace snowprune {

/// A table: a schema plus an ordered list of immutable micro-partitions.
///
/// Data access goes through LoadPartition(), which meters "loads" — the
/// stand-in for network IO against cloud object storage in the paper's
/// decoupled compute/storage architecture. Metadata access (stats()) is
/// free, modeling the dedicated metadata store.
class Table {
 public:
  Table(std::string name, Schema schema)
      : name_(std::move(name)),
        schema_(std::move(schema)),
        instance_id_(NextInstanceId()) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  /// Process-unique identity of this table *object*. A replacement table
  /// (Catalog::ReplaceTable, CREATE OR REPLACE) is a new object with a new
  /// id even under the same name; consumers caching per-version state (the
  /// predicate cache) validate against it so a swapped table can never be
  /// served another version's cached scan sets.
  uint64_t instance_id() const { return instance_id_; }

  size_t num_partitions() const { return partitions_.size(); }
  int64_t num_rows() const;

  /// Metadata-store access: zone map of (partition, column). Never counts
  /// as a load. Partition ids are dense positions that DML compaction
  /// re-assigns, so a stale id (a scan set outliving a DELETE) is a real
  /// bug class — debug builds bound-check every metadata and data access.
  const ColumnStats& stats(PartitionId pid, size_t column) const {
    SNOW_DCHECK_LT(static_cast<size_t>(pid), partitions_.size());
    return partitions_[pid].stats(column);
  }
  const MicroPartition& partition_metadata(PartitionId pid) const {
    SNOW_DCHECK_LT(static_cast<size_t>(pid), partitions_.size());
    return partitions_[pid];
  }

  /// Data access: returns the partition and increments the load meter.
  /// Safe to call from concurrent scan workers (the meters are atomic;
  /// partitions themselves are immutable during execution).
  const MicroPartition& LoadPartition(PartitionId pid) const {
    SNOW_DCHECK_LT(static_cast<size_t>(pid), partitions_.size());
    load_count_.fetch_add(1, std::memory_order_relaxed);
    loaded_rows_.fetch_add(partitions_[pid].row_count(),
                           std::memory_order_relaxed);
    return partitions_[pid];
  }

  /// Number of partition loads since the last ResetMeters().
  int64_t load_count() const {
    return load_count_.load(std::memory_order_relaxed);
  }
  int64_t loaded_rows() const {
    return loaded_rows_.load(std::memory_order_relaxed);
  }
  void ResetMeters() const {
    load_count_.store(0, std::memory_order_relaxed);
    loaded_rows_.store(0, std::memory_order_relaxed);
  }

  /// Appends a partition (INSERT path; partitions are immutable once added).
  void AppendPartition(MicroPartition partition) {
    partitions_.push_back(std::move(partition));
  }

  /// Deletes a whole partition (coarse DELETE used by the predicate-cache
  /// invalidation experiments, §8.2). Remaining ids are re-assigned densely.
  void DeletePartition(PartitionId pid);

  /// Replaces a partition's contents (coarse UPDATE, §8.2).
  void ReplacePartition(PartitionId pid, MicroPartition partition);

  /// A monotonically increasing counter bumped by every DML operation;
  /// consumers (e.g. the predicate cache) use it to detect staleness.
  uint64_t dml_version() const { return dml_version_; }

  /// Simulates external files without metadata on a fraction of partitions
  /// (§8.1). Returns the number of partitions whose stats were dropped.
  size_t DropStatsOnFraction(double fraction, uint64_t seed);

  /// Backfills missing zone maps via full scans of the affected partitions
  /// (§8.1); each backfilled partition counts as one load. Returns how many
  /// partitions were backfilled.
  size_t BackfillMissingStats();

  ScanSet FullScanSet() const { return ScanSet::AllOf(partitions_.size()); }

 private:
  static uint64_t NextInstanceId();

  std::string name_;
  Schema schema_;
  uint64_t instance_id_;
  std::vector<MicroPartition> partitions_;
  uint64_t dml_version_ = 0;
  mutable std::atomic<int64_t> load_count_{0};
  mutable std::atomic<int64_t> loaded_rows_{0};
};

/// Builds a table row-by-row, cutting micro-partitions at a target row count
/// (the analog of Snowflake's 50-500 MB micro-partition sizing) and
/// computing zone maps for each cut.
class TableBuilder {
 public:
  TableBuilder(std::string name, Schema schema, size_t target_partition_rows);

  /// Appends one row; `row` must have one Value per schema column with a
  /// matching type (or NULL).
  Status AppendRow(const std::vector<Value>& row);

  /// Flushes the trailing partial partition and returns the table.
  std::shared_ptr<Table> Finish();

 private:
  void CutPartition();

  std::string name_;
  Schema schema_;
  size_t target_partition_rows_;
  std::vector<ColumnVector> open_columns_;
  size_t open_rows_ = 0;
  std::shared_ptr<Table> table_;
};

}  // namespace snowprune

#endif  // SNOWPRUNE_STORAGE_TABLE_H_
