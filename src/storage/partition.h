#ifndef SNOWPRUNE_STORAGE_PARTITION_H_
#define SNOWPRUNE_STORAGE_PARTITION_H_

#include <cstdint>
#include <vector>

#include "storage/column.h"
#include "storage/schema.h"

namespace snowprune {

/// Identifier of a micro-partition within its table.
using PartitionId = uint32_t;

/// An immutable horizontal slice of a table (Snowflake micro-partition /
/// Parquet row-group analog) in PAX layout: all columns for a contiguous
/// range of rows, plus per-column zone maps.
///
/// The zone maps (`stats`) live logically in the metadata store and may be
/// consulted without "loading" the partition; accessing `columns` counts as
/// a load (metered by the owning Table) to model decoupled storage IO.
class MicroPartition {
 public:
  MicroPartition(PartitionId id, std::vector<ColumnVector> columns)
      : id_(id), columns_(std::move(columns)) {
    row_count_ = columns_.empty() ? 0 : columns_[0].size();
    RecomputeStats();
  }

  PartitionId id() const { return id_; }
  int64_t row_count() const { return static_cast<int64_t>(row_count_); }
  size_t num_columns() const { return columns_.size(); }

  const ColumnVector& column(size_t i) const { return columns_[i]; }
  const std::vector<ColumnVector>& columns() const { return columns_; }

  /// Zone map for column i. If metadata was dropped (external file without
  /// statistics, §8.1) the returned stats have has_stats == false.
  const ColumnStats& stats(size_t i) const { return stats_[i]; }
  const std::vector<ColumnStats>& all_stats() const { return stats_; }
  bool has_stats() const { return has_stats_; }

  /// Simulates an external file that carries no metadata (§8.1).
  void DropStats();

  /// Reconstructs zone maps by scanning the data — the "backfill" path for
  /// data lakes (§8.1). The caller is responsible for metering the scan.
  void RecomputeStats();

 private:
  PartitionId id_;
  size_t row_count_;
  std::vector<ColumnVector> columns_;
  std::vector<ColumnStats> stats_;
  bool has_stats_ = true;
};

}  // namespace snowprune

#endif  // SNOWPRUNE_STORAGE_PARTITION_H_
