#ifndef SNOWPRUNE_STORAGE_COLUMN_H_
#define SNOWPRUNE_STORAGE_COLUMN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/interval.h"
#include "common/value.h"

namespace snowprune {

/// Zone-map metadata (min/max "small materialized aggregates", §2.1) kept
/// per column per micro-partition in the metadata store. This is the only
/// information compile-time pruning may look at.
struct ColumnStats {
  bool has_stats = false;   ///< False for external files lacking metadata (§8.1).
  Value min;                ///< Smallest non-null value; NULL iff all-null column.
  Value max;                ///< Largest non-null value; NULL iff all-null column.
  int64_t null_count = 0;
  int64_t row_count = 0;

  /// The value range this zone map admits, as a pruning interval.
  Interval ToInterval() const {
    if (!has_stats) return Interval::Unknown();
    if (row_count == 0 || min.is_null()) return Interval::AllNull();
    return Interval::Range(min, max, null_count > 0);
  }
};

/// A typed, nullable column of values inside one micro-partition. Storage is
/// unboxed (PAX-style): one contiguous vector per physical type plus a null
/// mask; NULL rows occupy a default-valued slot so indexes stay aligned.
class ColumnVector {
 public:
  explicit ColumnVector(DataType type) : type_(type) {}

  DataType type() const { return type_; }
  size_t size() const { return null_mask_.size(); }

  void AppendNull();
  void AppendBool(bool v);
  void AppendInt64(int64_t v);
  void AppendFloat64(double v);
  void AppendString(std::string v);
  /// Boxed append; the value's type must match (or be NULL).
  void AppendValue(const Value& v);

  bool IsNull(size_t i) const { return null_mask_[i] != 0; }
  bool BoolAt(size_t i) const { return bools_[i] != 0; }
  int64_t Int64At(size_t i) const { return ints_[i]; }
  double Float64At(size_t i) const { return doubles_[i]; }
  const std::string& StringAt(size_t i) const { return strings_[i]; }

  /// Raw typed storage for vectorized consumers (the ColumnBatch hot path).
  /// Only the vector matching type() is populated; NULL rows hold a
  /// default-valued slot, so indexes align with the null mask.
  const std::vector<uint8_t>& null_mask() const { return null_mask_; }
  const std::vector<uint8_t>& bool_data() const { return bools_; }
  const std::vector<int64_t>& int64_data() const { return ints_; }
  const std::vector<double>& float64_data() const { return doubles_; }
  const std::vector<std::string>& string_data() const { return strings_; }

  /// Boxed accessor (returns Value::Null() for null rows).
  Value ValueAt(size_t i) const;

  /// Scans the column to produce its zone map.
  ColumnStats ComputeStats() const;

 private:
  DataType type_;
  std::vector<uint8_t> null_mask_;
  std::vector<uint8_t> bools_;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;
};

}  // namespace snowprune

#endif  // SNOWPRUNE_STORAGE_COLUMN_H_
