#ifndef SNOWPRUNE_STORAGE_SCHEMA_H_
#define SNOWPRUNE_STORAGE_SCHEMA_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/value.h"

namespace snowprune {

/// One column of a table schema.
struct Field {
  std::string name;
  DataType type;
  bool nullable = true;
};

/// An ordered list of named, typed columns.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  size_t num_columns() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the column with the given name, or nullopt.
  std::optional<size_t> FindColumn(const std::string& name) const {
    for (size_t i = 0; i < fields_.size(); ++i) {
      if (fields_[i].name == name) return i;
    }
    return std::nullopt;
  }

 private:
  std::vector<Field> fields_;
};

}  // namespace snowprune

#endif  // SNOWPRUNE_STORAGE_SCHEMA_H_
