#ifndef SNOWPRUNE_STORAGE_SCAN_SET_H_
#define SNOWPRUNE_STORAGE_SCAN_SET_H_

#include <cstdint>
#include <vector>

#include "storage/partition.h"

namespace snowprune {

/// The serialized list of micro-partition identifiers a table scan must
/// process (§2, "Virtual Warehouses"). Compile-time pruning shrinks the scan
/// set before it is shipped to the execution layer; runtime pruning drops
/// further entries before loading. Smaller scan sets mean less
/// (de)serialization and network traffic (§2.1 benefit 4), which
/// SerializedBytes() makes measurable.
class ScanSet {
 public:
  ScanSet() = default;
  explicit ScanSet(std::vector<PartitionId> ids) : ids_(std::move(ids)) {}

  /// A scan set covering partitions [0, n).
  static ScanSet AllOf(size_t n) {
    std::vector<PartitionId> ids(n);
    for (size_t i = 0; i < n; ++i) ids[i] = static_cast<PartitionId>(i);
    return ScanSet(std::move(ids));
  }

  size_t size() const { return ids_.size(); }
  bool empty() const { return ids_.empty(); }
  PartitionId operator[](size_t i) const { return ids_[i]; }

  const std::vector<PartitionId>& ids() const { return ids_; }
  std::vector<PartitionId>* mutable_ids() { return &ids_; }

  void Add(PartitionId id) { ids_.push_back(id); }
  void Clear() { ids_.clear(); }

  /// Wire size of the serialized scan set (8-byte header + 4 bytes/id).
  size_t SerializedBytes() const { return 8 + 4 * ids_.size(); }

  auto begin() const { return ids_.begin(); }
  auto end() const { return ids_.end(); }

 private:
  std::vector<PartitionId> ids_;
};

}  // namespace snowprune

#endif  // SNOWPRUNE_STORAGE_SCAN_SET_H_
