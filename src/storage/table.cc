#include "storage/table.h"

#include <cassert>

#include "common/rng.h"

namespace snowprune {

uint64_t Table::NextInstanceId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

int64_t Table::num_rows() const {
  int64_t total = 0;
  for (const auto& p : partitions_) total += p.row_count();
  return total;
}

void Table::DeletePartition(PartitionId pid) {
  assert(pid < partitions_.size());
  partitions_.erase(partitions_.begin() + pid);
  ++dml_version_;
}

void Table::ReplacePartition(PartitionId pid, MicroPartition partition) {
  assert(pid < partitions_.size());
  partitions_[pid] = std::move(partition);
  ++dml_version_;
}

size_t Table::DropStatsOnFraction(double fraction, uint64_t seed) {
  Rng rng(seed);
  size_t dropped = 0;
  for (auto& p : partitions_) {
    if (rng.Bernoulli(fraction)) {
      p.DropStats();
      ++dropped;
    }
  }
  return dropped;
}

size_t Table::BackfillMissingStats() {
  size_t backfilled = 0;
  for (size_t i = 0; i < partitions_.size(); ++i) {
    if (!partitions_[i].has_stats()) {
      // Backfilling requires reading the data: meter it as a load.
      ++load_count_;
      loaded_rows_ += partitions_[i].row_count();
      partitions_[i].RecomputeStats();
      ++backfilled;
    }
  }
  return backfilled;
}

TableBuilder::TableBuilder(std::string name, Schema schema,
                           size_t target_partition_rows)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      target_partition_rows_(target_partition_rows) {
  assert(target_partition_rows_ > 0);
  table_ = std::make_shared<Table>(name_, schema_);
  open_columns_.reserve(schema_.num_columns());
  for (const auto& f : schema_.fields()) {
    open_columns_.emplace_back(f.type);
  }
}

Status TableBuilder::AppendRow(const std::vector<Value>& row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument("row arity does not match schema");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    const Value& v = row[i];
    if (!v.is_null()) {
      DataType expect = schema_.field(i).type;
      DataType got = v.type();
      bool ok = got == expect ||
                (expect == DataType::kFloat64 && got == DataType::kInt64);
      if (!ok) {
        return Status::InvalidArgument("type mismatch in column " +
                                       schema_.field(i).name);
      }
    } else if (!schema_.field(i).nullable) {
      return Status::InvalidArgument("NULL in non-nullable column " +
                                     schema_.field(i).name);
    }
    open_columns_[i].AppendValue(v);
  }
  if (++open_rows_ >= target_partition_rows_) CutPartition();
  return Status::OK();
}

void TableBuilder::CutPartition() {
  if (open_rows_ == 0) return;
  auto pid = static_cast<PartitionId>(table_->num_partitions());
  table_->AppendPartition(MicroPartition(pid, std::move(open_columns_)));
  open_columns_.clear();
  for (const auto& f : schema_.fields()) {
    open_columns_.emplace_back(f.type);
  }
  open_rows_ = 0;
}

std::shared_ptr<Table> TableBuilder::Finish() {
  CutPartition();
  return table_;
}

}  // namespace snowprune
