#include "storage/catalog.h"

namespace snowprune {

Status Catalog::RegisterTable(std::shared_ptr<Table> table) {
  if (!table) return Status::InvalidArgument("null table");
  MutexLock lock(&mutex_);
  auto [it, inserted] = tables_.emplace(table->name(), std::move(table));
  (void)it;
  if (!inserted) return Status::InvalidArgument("table already registered");
  return Status::OK();
}

Status Catalog::DropTable(const std::string& name) {
  MutexLock lock(&mutex_);
  if (tables_.erase(name) == 0) return Status::NotFound("no table " + name);
  return Status::OK();
}

Status Catalog::ReplaceTable(std::shared_ptr<Table> table) {
  if (!table) return Status::InvalidArgument("null table");
  MutexLock lock(&mutex_);
  tables_[table->name()] = std::move(table);
  return Status::OK();
}

std::shared_ptr<Table> Catalog::GetTable(const std::string& name) const {
  MutexLock lock(&mutex_);
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second;
}

int64_t Catalog::TotalLoads() const {
  MutexLock lock(&mutex_);
  int64_t total = 0;
  for (const auto& [name, t] : tables_) total += t->load_count();
  return total;
}

int64_t Catalog::TotalLoadedRows() const {
  MutexLock lock(&mutex_);
  int64_t total = 0;
  for (const auto& [name, t] : tables_) total += t->loaded_rows();
  return total;
}

int64_t Catalog::TotalPartitions() const {
  MutexLock lock(&mutex_);
  int64_t total = 0;
  for (const auto& [name, t] : tables_) {
    total += static_cast<int64_t>(t->num_partitions());
  }
  return total;
}

void Catalog::ResetMeters() const {
  MutexLock lock(&mutex_);
  for (const auto& [name, t] : tables_) t->ResetMeters();
}

}  // namespace snowprune
