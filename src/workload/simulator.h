#ifndef SNOWPRUNE_WORKLOAD_SIMULATOR_H_
#define SNOWPRUNE_WORKLOAD_SIMULATOR_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/stats_collector.h"
#include "exec/engine.h"
#include "workload/query_gen.h"

namespace snowprune {
namespace workload {

/// Table 2-style breakdown of LIMIT pruning outcomes.
struct LimitBreakdown {
  int64_t already_minimal = 0;
  int64_t unsupported = 0;
  int64_t no_fully_matching = 0;
  int64_t pruned_to_one = 0;   ///< Includes LIMIT 0 (scan set emptied).
  int64_t pruned_to_many = 0;
  int64_t total() const {
    return already_minimal + unsupported + no_fully_matching + pruned_to_one +
           pruned_to_many;
  }
};

/// Aggregates produced by a simulation run; the figure/table benches print
/// slices of this.
struct SimulationResult {
  // Figure 1: pruning-ratio distributions over *eligible* queries.
  StatsCollector filter_ratios;
  StatsCollector limit_ratios;
  StatsCollector topk_ratios;
  StatsCollector join_ratios;

  // §9 conclusion numbers: ratios over queries where the technique
  // *successfully applied* (a stricter population than "eligible").
  StatsCollector limit_ratios_applied;
  StatsCollector filter_ratios_applied;

  // Partition-weighted filter pruning over predicated queries.
  int64_t filter_total_partitions = 0;
  int64_t filter_pruned_partitions = 0;
  double FilterPartitionWeightedRatio() const {
    return filter_total_partitions == 0
               ? 0.0
               : static_cast<double>(filter_pruned_partitions) /
                     static_cast<double>(filter_total_partitions);
  }

  // Table 1 mix.
  std::map<QueryClass, int64_t> class_counts;
  int64_t total_queries = 0;

  // Table 2.
  LimitBreakdown limit_with_predicate;
  LimitBreakdown limit_without_predicate;

  // Figure 11 flow: queries where a technique pruned >= 1 partition.
  int64_t flow_filter = 0;
  int64_t flow_limit = 0;
  int64_t flow_join = 0;
  int64_t flow_topk = 0;
  /// Key = technique subset string like "filter+join"; value = query count.
  std::map<std::string, int64_t> flow_combinations;

  // Headline (§1): partition-weighted global pruning.
  int64_t total_partitions = 0;
  int64_t total_pruned = 0;
  double OverallPruningRatio() const {
    return total_partitions == 0
               ? 0.0
               : static_cast<double>(total_pruned) /
                     static_cast<double>(total_partitions);
  }

  // Figure 12: occurrences per plan shape.
  std::map<std::string, int64_t> shape_occurrences;
};

/// Runs a sampled query population through the engine and aggregates
/// pruning statistics. The paper's measurement conventions are preserved:
/// ratios are relative to all partitions the query would otherwise process,
/// and each technique's distribution only includes queries where the
/// technique was applicable.
class Simulator {
 public:
  Simulator(QueryGenerator* generator, Engine* engine)
      : generator_(generator), engine_(engine) {}

  SimulationResult Run(size_t num_queries);

 private:
  QueryGenerator* generator_;
  Engine* engine_;
};

}  // namespace workload
}  // namespace snowprune

#endif  // SNOWPRUNE_WORKLOAD_SIMULATOR_H_
