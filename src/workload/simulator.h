#ifndef SNOWPRUNE_WORKLOAD_SIMULATOR_H_
#define SNOWPRUNE_WORKLOAD_SIMULATOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/stats_collector.h"
#include "exec/engine.h"
#include "service/query_service.h"
#include "workload/query_gen.h"

namespace snowprune {
namespace workload {

/// Table 2-style breakdown of LIMIT pruning outcomes.
struct LimitBreakdown {
  int64_t already_minimal = 0;
  int64_t unsupported = 0;
  int64_t no_fully_matching = 0;
  int64_t pruned_to_one = 0;   ///< Includes LIMIT 0 (scan set emptied).
  int64_t pruned_to_many = 0;
  int64_t total() const {
    return already_minimal + unsupported + no_fully_matching + pruned_to_one +
           pruned_to_many;
  }
};

/// Aggregates produced by a simulation run; the figure/table benches print
/// slices of this.
struct SimulationResult {
  // Figure 1: pruning-ratio distributions over *eligible* queries.
  StatsCollector filter_ratios;
  StatsCollector limit_ratios;
  StatsCollector topk_ratios;
  StatsCollector join_ratios;

  // §9 conclusion numbers: ratios over queries where the technique
  // *successfully applied* (a stricter population than "eligible").
  StatsCollector limit_ratios_applied;
  StatsCollector filter_ratios_applied;

  // Partition-weighted filter pruning over predicated queries.
  int64_t filter_total_partitions = 0;
  int64_t filter_pruned_partitions = 0;
  double FilterPartitionWeightedRatio() const {
    return filter_total_partitions == 0
               ? 0.0
               : static_cast<double>(filter_pruned_partitions) /
                     static_cast<double>(filter_total_partitions);
  }

  // Table 1 mix.
  std::map<QueryClass, int64_t> class_counts;
  int64_t total_queries = 0;

  // Table 2.
  LimitBreakdown limit_with_predicate;
  LimitBreakdown limit_without_predicate;

  // Figure 11 flow: queries where a technique pruned >= 1 partition.
  int64_t flow_filter = 0;
  int64_t flow_limit = 0;
  int64_t flow_join = 0;
  int64_t flow_topk = 0;
  /// Key = technique subset string like "filter+join"; value = query count.
  std::map<std::string, int64_t> flow_combinations;

  // Headline (§1): partition-weighted global pruning.
  int64_t total_partitions = 0;
  int64_t total_pruned = 0;
  double OverallPruningRatio() const {
    return total_partitions == 0
               ? 0.0
               : static_cast<double>(total_pruned) /
                     static_cast<double>(total_partitions);
  }

  // Figure 12: occurrences per plan shape.
  std::map<std::string, int64_t> shape_occurrences;
};

/// Runs a sampled query population through the engine and aggregates
/// pruning statistics. The paper's measurement conventions are preserved:
/// ratios are relative to all partitions the query would otherwise process,
/// and each technique's distribution only includes queries where the
/// technique was applicable.
class Simulator {
 public:
  Simulator(QueryGenerator* generator, Engine* engine)
      : generator_(generator), engine_(engine) {}

  SimulationResult Run(size_t num_queries);

 private:
  QueryGenerator* generator_;
  Engine* engine_;
};

/// Multi-stream run parameters. Each client stream owns a QueryGenerator
/// configured from `gen`; stream i runs with seed `gen.seed + i` so streams
/// draw independent-but-reproducible query sequences. `identical_streams`
/// instead gives every stream the SAME seed — all streams replay one query
/// sequence, the extreme of the paper's §8.2 repetitive production traffic,
/// which maximizes predicate-cache hits and coalesced populations.
struct StreamDriverConfig {
  size_t num_streams = 4;
  size_t queries_per_stream = 200;
  bool identical_streams = false;
  /// Open-loop mode: instead of each stream keeping exactly one query
  /// outstanding (closed loop — the offered load self-throttles to the
  /// service's capacity), every stream submits on a Poisson arrival process
  /// and does NOT wait for completions between arrivals. This is the only
  /// mode that can show latency under overload: offered load above capacity
  /// makes queueing delay grow without bound (or spill into rejections when
  /// the admission queue is bounded) instead of silently flattening QPS.
  bool open_loop = false;
  /// Aggregate target arrival rate (queries/second) across all streams in
  /// open-loop mode; each stream runs an independent Poisson process of
  /// rate offered_qps / num_streams. Ignored in closed-loop mode.
  double offered_qps = 100.0;
  /// After the streams join, print the *service-side* latency breakdown —
  /// p50/p95/p99 of ServiceStats::queue_wait_ms and ::exec_ms — next to the
  /// client-observed numbers the driver already collects. The two views
  /// bracket the admission layer: client latency minus service execution
  /// latency is time spent queued.
  bool print_service_stats = false;
  QueryGenerator::Config gen;
};

/// What a multi-stream run measured, across all streams.
struct StreamDriverResult {
  double wall_ms = 0.0;  ///< First submit to last completion.
  int64_t queries_ok = 0;
  int64_t queries_failed = 0;
  /// Submissions bounced by the bounded admission queue (open-loop overload
  /// spills here rather than into unbounded latency). Not counted in
  /// queries_failed.
  int64_t queries_rejected = 0;
  /// Queries that completed with kDeadlineExceeded (shed while queued or
  /// stopped mid-execution). Not counted in queries_failed.
  int64_t queries_deadline_exceeded = 0;
  /// Shard sub-query retries absorbed by successful queries — the overhead
  /// side of graceful degradation (retries/query in the bench ladder).
  int64_t shard_retries = 0;
  int64_t cache_hit_queries = 0;  ///< Queries served off the predicate cache.
  /// Cross-shard pruning level, summed across successful queries: shards
  /// holding partitions vs shards a query never contacted. Both zero when
  /// the service runs unsharded.
  int64_t shards_total = 0;
  int64_t shards_pruned = 0;

  /// Client-observed latency (admission-queue wait + execution), ms.
  StatsCollector latency_ms;
  /// Admission-queue wait alone, ms.
  StatsCollector queue_ms;
  /// Latency split by query class — the starvation check: p95 of point
  /// lookups vs full scans under mixed load.
  std::map<QueryClass, StatsCollector> latency_by_class;

  /// Successfully served queries per second. Rejected submissions and
  /// failed executions are excluded — they must not inflate throughput in
  /// exactly the overload regime a sweep is meant to characterize.
  double Qps() const {
    return wall_ms <= 0.0
               ? 0.0
               : static_cast<double>(queries_ok) / (wall_ms / 1000.0);
  }
};

/// Multi-stream workload driver: N client threads, each replaying the
/// production model against one shared QueryService. Closed-loop (default):
/// one query outstanding per stream — the classic capacity probe. Open-loop
/// (StreamDriverConfig::open_loop): Poisson arrivals at a configured
/// offered rate, submissions never wait for completions — the overload
/// probe. The service's admission layer decides how many queries actually
/// execute concurrently; the driver records what the clients see — QPS,
/// rejections, and the latency distribution (p50/p95/p99 via
/// StatsCollector::Percentile), where open-loop latency runs from a query's
/// arrival to its completion (queueing included).
class MultiStreamDriver {
 public:
  MultiStreamDriver(const Catalog* catalog,
                    std::vector<std::string> probe_tables,
                    std::vector<std::string> build_tables,
                    ProductionModel model)
      : catalog_(catalog),
        probe_tables_(std::move(probe_tables)),
        build_tables_(std::move(build_tables)),
        model_(std::move(model)) {}

  StreamDriverResult Run(service::QueryService* service,
                         const StreamDriverConfig& config);

 private:
  const Catalog* catalog_;
  std::vector<std::string> probe_tables_;
  std::vector<std::string> build_tables_;
  ProductionModel model_;
};

}  // namespace workload
}  // namespace snowprune

#endif  // SNOWPRUNE_WORKLOAD_SIMULATOR_H_
