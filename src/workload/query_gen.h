#ifndef SNOWPRUNE_WORKLOAD_QUERY_GEN_H_
#define SNOWPRUNE_WORKLOAD_QUERY_GEN_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "exec/plan.h"
#include "storage/catalog.h"
#include "workload/production_model.h"

namespace snowprune {
namespace workload {

/// One sampled query plus the labels the simulator aggregates by.
struct GeneratedQuery {
  PlanPtr plan;
  QueryClass query_class = QueryClass::kSelectPredicate;
  bool has_predicate = false;
  int64_t limit_k = -1;          ///< For LIMIT/top-k classes.
  double target_selectivity = 1; ///< For predicated classes.
  std::string shape_id;          ///< Plan-shape identity (Figure 12).
  int64_t probe_partitions = 0;  ///< Probe-table partition count (joins).
};

/// Draws query plans over a set of registered tables according to the
/// ProductionModel. Probe tables should be large (they are what pruning
/// operates on); build tables are small join build sides.
class QueryGenerator {
 public:
  struct Config {
    uint64_t seed = 1234;
    /// Plan shapes are drawn from a zipf-distributed pool so that repeated
    /// execution of the same shape follows the Figure 12 distribution
    /// (~85% of shapes occur once over a window).
    size_t shape_pool_size = 4000;
    double shape_zipf_s = 1.05;
    /// Probability that a join build-side predicate selects nothing
    /// (Figure 10: ~13% of join-pruning queries prune 100%, "might be
    /// caused by an empty build-side").
    double empty_build_fraction = 0.10;
    /// Production full-table scans and schema-probing LIMIT queries hit
    /// small (dimension-sized) tables far more often than fact tables;
    /// these fractions route such queries to the small-table pool.
    double fullscan_small_table_fraction = 0.8;
    double limit_small_table_fraction = 0.65;
  };

  QueryGenerator(const Catalog* catalog, std::vector<std::string> probe_tables,
                 std::vector<std::string> build_tables, ProductionModel model,
                 Config config);

  GeneratedQuery Generate();

  Rng* rng() { return &rng_; }
  const ProductionModel& model() const { return model_; }

 private:
  struct KeyDomain {
    int64_t min = 0;
    int64_t max = 0;
  };

  /// Global min/max of `column` over all partitions (metadata only).
  KeyDomain DomainOf(const std::string& table, const std::string& column) const;

  /// A predicate on `key` matching roughly `selectivity` of the rows.
  ExprPtr MakePredicate(const std::string& table, double selectivity);

  const std::string& PickProbe();
  const std::string& PickBuild();

  const Catalog* catalog_;
  std::vector<std::string> probe_tables_;
  std::vector<std::string> build_tables_;
  ProductionModel model_;
  Config config_;
  Rng rng_;
  ZipfSampler shape_sampler_;
};

}  // namespace workload
}  // namespace snowprune

#endif  // SNOWPRUNE_WORKLOAD_QUERY_GEN_H_
