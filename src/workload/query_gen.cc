#include "workload/query_gen.h"

#include <algorithm>
#include <cassert>

#include "expr/builder.h"

namespace snowprune {
namespace workload {

QueryGenerator::QueryGenerator(const Catalog* catalog,
                               std::vector<std::string> probe_tables,
                               std::vector<std::string> build_tables,
                               ProductionModel model, Config config)
    : catalog_(catalog),
      probe_tables_(std::move(probe_tables)),
      build_tables_(std::move(build_tables)),
      model_(std::move(model)),
      config_(config),
      rng_(config.seed),
      shape_sampler_(config.shape_pool_size, config.shape_zipf_s) {
  assert(!probe_tables_.empty());
}

QueryGenerator::KeyDomain QueryGenerator::DomainOf(
    const std::string& table, const std::string& column) const {
  auto t = catalog_->GetTable(table);
  assert(t != nullptr);
  auto col = t->schema().FindColumn(column);
  assert(col.has_value());
  KeyDomain d;
  bool first = true;
  for (size_t pid = 0; pid < t->num_partitions(); ++pid) {
    const ColumnStats& s = t->stats(static_cast<PartitionId>(pid), *col);
    if (!s.has_stats || s.min.is_null()) continue;
    int64_t lo = s.min.int64_value(), hi = s.max.int64_value();
    if (first) {
      d.min = lo;
      d.max = hi;
      first = false;
    } else {
      d.min = std::min(d.min, lo);
      d.max = std::max(d.max, hi);
    }
  }
  return d;
}

ExprPtr QueryGenerator::MakePredicate(const std::string& table,
                                      double selectivity) {
  KeyDomain d = DomainOf(table, "key");
  double span = static_cast<double>(d.max - d.min);
  double width = std::max(1.0, selectivity * span);
  double budget = span - width;
  int64_t lo = d.min + static_cast<int64_t>(rng_.Uniform() * std::max(0.0, budget));
  int64_t hi = lo + static_cast<int64_t>(width);
  double dice = rng_.Uniform();
  if (dice < 0.65) {
    // Plain range slice.
    return Between(Col("key"), Value(lo), Value(hi));
  }
  if (dice < 0.80) {
    // Conjunction with a categorical filter (multi-leaf pruning tree).
    char cat[16];
    std::snprintf(cat, sizeof(cat), "c%04lld",
                  static_cast<long long>(rng_.UniformInt(0, 200)));
    return And({Between(Col("key"), Value(lo), Value(hi)),
                Eq(Col("cat"), Lit(std::string(cat)))});
  }
  if (dice < 0.90) {
    // Point lookup.
    return Eq(Col("key"), Lit(Value(lo)));
  }
  // Disjunction of two slices (exercises OR pruning-tree nodes).
  int64_t width2 = std::max<int64_t>(1, static_cast<int64_t>(width) / 2);
  int64_t lo2 = d.min + static_cast<int64_t>(rng_.Uniform() *
                                             std::max(0.0, span - 2.0 * width));
  return Or({Between(Col("key"), Value(lo), Value(lo + width2)),
             Between(Col("key"), Value(lo2), Value(lo2 + width2))});
}

const std::string& QueryGenerator::PickProbe() {
  return probe_tables_[static_cast<size_t>(
      rng_.UniformInt(0, static_cast<int64_t>(probe_tables_.size()) - 1))];
}

const std::string& QueryGenerator::PickBuild() {
  return build_tables_[static_cast<size_t>(
      rng_.UniformInt(0, static_cast<int64_t>(build_tables_.size()) - 1))];
}

GeneratedQuery QueryGenerator::Generate() {
  GeneratedQuery q;
  q.query_class = model_.SampleClass(&rng_);
  q.shape_id = "shape-" + std::to_string(shape_sampler_.Sample(&rng_));
  std::string probe = PickProbe();
  // Full scans and LIMIT-only probes hit dimension-sized tables most of the
  // time, as in production (big tables are essentially always filtered).
  if (!build_tables_.empty()) {
    bool small = false;
    if (q.query_class == QueryClass::kSelectNoPredicate) {
      small = rng_.Bernoulli(config_.fullscan_small_table_fraction);
    } else if (q.query_class == QueryClass::kLimitNoPredicate ||
               q.query_class == QueryClass::kLimitWithPredicate) {
      small = rng_.Bernoulli(config_.limit_small_table_fraction);
    }
    if (small) probe = PickBuild();
  }

  switch (q.query_class) {
    case QueryClass::kSelectNoPredicate:
      q.plan = ScanPlan(probe);
      break;

    case QueryClass::kSelectPredicate: {
      q.has_predicate = true;
      q.target_selectivity = model_.SampleSelectivity(&rng_);
      q.plan = ScanPlan(probe, MakePredicate(probe, q.target_selectivity));
      break;
    }

    case QueryClass::kLimitNoPredicate: {
      q.limit_k = model_.SampleLimitK(&rng_);
      q.plan = LimitPlan(ScanPlan(probe), q.limit_k);
      break;
    }

    case QueryClass::kLimitWithPredicate: {
      q.has_predicate = true;
      q.limit_k = model_.SampleLimitK(&rng_);
      q.target_selectivity = model_.SampleSelectivity(&rng_);
      q.plan = LimitPlan(ScanPlan(probe, MakePredicate(probe, q.target_selectivity)),
                         q.limit_k);
      break;
    }

    case QueryClass::kTopK: {
      q.limit_k = std::max<int64_t>(1, std::min<int64_t>(
                                           model_.SampleLimitK(&rng_), 1000));
      ExprPtr pred;
      if (rng_.Bernoulli(0.5)) {
        q.has_predicate = true;
        q.target_selectivity = model_.SampleSelectivity(&rng_);
        pred = MakePredicate(probe, q.target_selectivity);
      }
      const char* order_col = rng_.Bernoulli(0.6) ? "key" : "ts";
      q.plan = TopKPlan(ScanPlan(probe, std::move(pred)), order_col,
                        /*descending=*/rng_.Bernoulli(0.8), q.limit_k);
      break;
    }

    case QueryClass::kTopKGroupBySame: {
      q.limit_k = std::max<int64_t>(1, std::min<int64_t>(
                                           model_.SampleLimitK(&rng_), 100));
      auto agg = AggregatePlan(ScanPlan(probe), {"key"},
                               {{AggFunc::kCount, "", "n"},
                                {AggFunc::kSum, "val", "total"}});
      q.plan = TopKPlan(std::move(agg), "key", /*descending=*/true, q.limit_k);
      break;
    }

    case QueryClass::kTopKGroupByAgg: {
      q.limit_k = std::max<int64_t>(1, std::min<int64_t>(
                                           model_.SampleLimitK(&rng_), 100));
      auto agg = AggregatePlan(ScanPlan(probe), {"cat"},
                               {{AggFunc::kSum, "val", "total"}});
      // ORDER BY an aggregate output: top-k pruning unsupported (§5.2).
      q.plan = TopKPlan(std::move(agg), "total", /*descending=*/true,
                        q.limit_k);
      break;
    }

    case QueryClass::kJoin: {
      q.has_predicate = true;
      q.probe_partitions = static_cast<int64_t>(
          catalog_->GetTable(probe)->num_partitions());
      const std::string& build = PickBuild();
      ExprPtr build_pred;
      if (rng_.Bernoulli(config_.empty_build_fraction)) {
        // Build side selects nothing: probe prunes 100% (Figure 10).
        KeyDomain d = DomainOf(build, "key");
        build_pred = Lt(Col("key"), Lit(Value(d.min - 1)));
        q.target_selectivity = 0.0;
      } else {
        // Build sides are filtered dimensions: selective, but far less
        // extreme than the needle predicates of plain filter queries.
        q.target_selectivity = 0.01 + 0.4 * rng_.Uniform();
        build_pred = MakePredicate(build, q.target_selectivity);
      }
      q.plan = JoinPlan(ScanPlan(probe), ScanPlan(build, std::move(build_pred)),
                        "key", "key");
      break;
    }
  }
  return q;
}

}  // namespace workload
}  // namespace snowprune
