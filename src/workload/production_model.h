#ifndef SNOWPRUNE_WORKLOAD_PRODUCTION_MODEL_H_
#define SNOWPRUNE_WORKLOAD_PRODUCTION_MODEL_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace snowprune {
namespace workload {

/// Query archetypes, mirroring the paper's Table 1 taxonomy plus the
/// non-LIMIT bulk of the workload.
enum class QueryClass {
  kSelectNoPredicate,   ///< Full scans (ETL/DML-ish); no pruning possible.
  kSelectPredicate,     ///< Filtered SELECT.
  kLimitNoPredicate,    ///< SELECT ... LIMIT k (0.37% in Table 1).
  kLimitWithPredicate,  ///< SELECT ... WHERE ... LIMIT k (2.23%).
  kTopK,                ///< ORDER BY x LIMIT k (4.47%).
  kTopKGroupBySame,     ///< GROUP BY x ORDER BY x LIMIT k (0.12%).
  kTopKGroupByAgg,      ///< GROUP BY y ORDER BY agg(x) LIMIT k (0.96%;
                        ///< never prunable, §5.2).
  kJoin,                ///< Selective-build hash join (join pruning, §6).
};

const char* ToString(QueryClass c);

/// A stand-in for Snowflake's production query population (see DESIGN.md,
/// "Substitutions"). All marginals are calibrated to the paper's published
/// statistics: the Table 1 query-type mix, the Figure 6 LIMIT-k CDF
/// (97% of k <= 10,000; heavy mass at 0 and 1), and the Figure 4 predicate
/// selectivity shape (real-world queries are far more selective than
/// synthetic benchmarks).
class ProductionModel {
 public:
  struct Config {
    /// Weights for the QueryClass mix, in enum order. Defaults reproduce
    /// Table 1 percentages with the remainder split between plain SELECTs
    /// and joins.
    std::vector<double> class_weights = {18.0, 67.73, 0.37, 2.23,
                                         4.47, 0.12,  0.96, 6.12};
    double zero_k_fraction = 0.20;  ///< BI tools probing schemas (Figure 6).
  };

  ProductionModel() : ProductionModel(Config()) {}
  explicit ProductionModel(Config config) : config_(std::move(config)) {}

  QueryClass SampleClass(Rng* rng) const;

  /// Samples k for LIMIT/top-k clauses following the Figure 6 CDF.
  int64_t SampleLimitK(Rng* rng) const;

  /// Samples a target predicate selectivity (fraction of rows matching)
  /// with the heavy high-selectivity skew of Figure 4: most real predicates
  /// match well under 1% of the data, but a sizable minority match nothing
  /// the layout can exploit.
  double SampleSelectivity(Rng* rng) const;

  const Config& config() const { return config_; }

 private:
  Config config_;
};

}  // namespace workload
}  // namespace snowprune

#endif  // SNOWPRUNE_WORKLOAD_PRODUCTION_MODEL_H_
