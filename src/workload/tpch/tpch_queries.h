#ifndef SNOWPRUNE_WORKLOAD_TPCH_TPCH_QUERIES_H_
#define SNOWPRUNE_WORKLOAD_TPCH_TPCH_QUERIES_H_

#include <string>
#include <vector>

#include "expr/expr.h"

namespace snowprune {
namespace workload {
namespace tpch {

/// One base-table scan of a TPC-H query: the table and the scan's
/// pruning-relevant predicate (null for unfiltered scans — they still count
/// in the query's pruning-ratio denominator, Figure 13's convention).
struct ScanProfile {
  std::string table;
  ExprPtr predicate;
};

/// The scan/predicate profile of one TPC-H query.
struct QueryProfile {
  int id = 0;
  std::vector<ScanProfile> scans;
};

/// Scan/predicate profiles for all 22 TPC-H queries with the standard
/// validation substitution parameters — the inputs to the Figure 13
/// per-query pruning-ratio measurement. (Join-derived pruning such as Q2's
/// region->nation chain is out of scope here, matching the paper's finding
/// that TPC-H pruning comes almost entirely from date filters on LINEITEM
/// and ORDERS.)
std::vector<QueryProfile> AllQueryProfiles();

}  // namespace tpch
}  // namespace workload
}  // namespace snowprune

#endif  // SNOWPRUNE_WORKLOAD_TPCH_TPCH_QUERIES_H_
