#ifndef SNOWPRUNE_WORKLOAD_TPCH_TPCH_GEN_H_
#define SNOWPRUNE_WORKLOAD_TPCH_TPCH_GEN_H_

#include <cstdint>
#include <memory>

#include "storage/catalog.h"
#include "storage/table.h"

namespace snowprune {
namespace workload {
namespace tpch {

/// Days since 1992-01-01 for a proleptic-Gregorian civil date; both the
/// generator and the query profiles use this so date predicates line up.
int64_t DateToDays(int year, int month, int day);

/// Configuration for the dbgen-style generator (§8.3 substrate). The paper
/// ran SF100; pruning *ratios* depend on partition counts and the
/// predicate/layout interaction rather than absolute bytes, so laptop-scale
/// SF with proportional partition sizing reproduces the Figure 13 shape.
struct TpchConfig {
  double scale_factor = 0.05;
  /// Rows per micro-partition of the two big tables; small tables use
  /// proportionally smaller partitions (at least 1 partition each).
  size_t lineitem_rows_per_partition = 3000;
  size_t orders_rows_per_partition = 1500;
  /// Cluster lineitem by l_shipdate and orders by o_orderdate, as the
  /// paper's setup does; false keeps dbgen's natural (orderkey) order —
  /// "no pruning happened with default data clustering" (§8.3).
  bool clustered = true;
  uint64_t seed = 19920101;
};

/// The eight TPC-H tables (pruning-relevant column subset).
struct TpchTables {
  std::shared_ptr<Table> lineitem;
  std::shared_ptr<Table> orders;
  std::shared_ptr<Table> customer;
  std::shared_ptr<Table> part;
  std::shared_ptr<Table> supplier;
  std::shared_ptr<Table> partsupp;
  std::shared_ptr<Table> nation;
  std::shared_ptr<Table> region;

  /// Registers all tables with the catalog.
  Status RegisterAll(Catalog* catalog) const;
};

/// Generates the TPC-H dataset.
TpchTables GenerateTpch(const TpchConfig& config);

}  // namespace tpch
}  // namespace workload
}  // namespace snowprune

#endif  // SNOWPRUNE_WORKLOAD_TPCH_TPCH_GEN_H_
