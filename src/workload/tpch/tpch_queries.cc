#include "workload/tpch/tpch_queries.h"

#include "expr/builder.h"
#include "workload/tpch/tpch_gen.h"

namespace snowprune {
namespace workload {
namespace tpch {

namespace {

Value D(int y, int m, int d) { return Value(DateToDays(y, m, d)); }

ScanProfile Scan(std::string table, ExprPtr pred = nullptr) {
  return ScanProfile{std::move(table), std::move(pred)};
}

}  // namespace

std::vector<QueryProfile> AllQueryProfiles() {
  std::vector<QueryProfile> out;

  // Q1: pricing summary report — ships nearly everything.
  out.push_back({1,
                 {Scan("lineitem", Le(Col("l_shipdate"),
                                      Lit(Value(DateToDays(1998, 12, 1) - 90))))}});

  // Q2: minimum cost supplier — no date predicates anywhere.
  out.push_back({2,
                 {Scan("part", And({Eq(Col("p_size"), Lit(15)),
                                    Like(Col("p_type"), "%BRASS")})),
                  Scan("supplier"), Scan("partsupp"), Scan("nation"),
                  Scan("region", Eq(Col("r_name"), Lit("EUROPE")))}});

  // Q3: shipping priority.
  out.push_back({3,
                 {Scan("customer", Eq(Col("c_mktsegment"), Lit("BUILDING"))),
                  Scan("orders", Lt(Col("o_orderdate"), Lit(D(1995, 3, 15)))),
                  Scan("lineitem", Gt(Col("l_shipdate"), Lit(D(1995, 3, 15))))}});

  // Q4: order priority checking.
  out.push_back({4,
                 {Scan("orders", And({Ge(Col("o_orderdate"), Lit(D(1993, 7, 1))),
                                      Lt(Col("o_orderdate"), Lit(D(1993, 10, 1)))})),
                  Scan("lineitem",
                       Lt(Col("l_commitdate"), Col("l_receiptdate")))}});

  // Q5: local supplier volume.
  out.push_back({5,
                 {Scan("customer"),
                  Scan("orders", And({Ge(Col("o_orderdate"), Lit(D(1994, 1, 1))),
                                      Lt(Col("o_orderdate"), Lit(D(1995, 1, 1)))})),
                  Scan("lineitem"), Scan("supplier"), Scan("nation"),
                  Scan("region", Eq(Col("r_name"), Lit("ASIA")))}});

  // Q6: forecasting revenue change — the classic pruning showcase.
  out.push_back({6,
                 {Scan("lineitem",
                       And({Ge(Col("l_shipdate"), Lit(D(1994, 1, 1))),
                            Lt(Col("l_shipdate"), Lit(D(1995, 1, 1))),
                            Between(Col("l_discount"), Value(0.05), Value(0.07)),
                            Lt(Col("l_quantity"), Lit(24))}))}});

  // Q7: volume shipping.
  out.push_back({7,
                 {Scan("supplier"),
                  Scan("lineitem", Between(Col("l_shipdate"), D(1995, 1, 1),
                                           D(1996, 12, 31))),
                  Scan("orders"), Scan("customer"),
                  Scan("nation",
                       Or({Eq(Col("n_name"), Lit("FRANCE")),
                           Eq(Col("n_name"), Lit("GERMANY"))}))}});

  // Q8: national market share.
  out.push_back({8,
                 {Scan("part", Eq(Col("p_type"), Lit("ECONOMY ANODIZED STEEL"))),
                  Scan("supplier"), Scan("lineitem"),
                  Scan("orders", Between(Col("o_orderdate"), D(1995, 1, 1),
                                         D(1996, 12, 31))),
                  Scan("customer"), Scan("nation"),
                  Scan("region", Eq(Col("r_name"), Lit("AMERICA")))}});

  // Q9: product type profit measure — like '%green%' is unprunable.
  out.push_back({9,
                 {Scan("part", Like(Col("p_name"), "%green%")),
                  Scan("supplier"), Scan("lineitem"), Scan("partsupp"),
                  Scan("orders"), Scan("nation")}});

  // Q10: returned item reporting.
  out.push_back({10,
                 {Scan("customer"),
                  Scan("orders", And({Ge(Col("o_orderdate"), Lit(D(1993, 10, 1))),
                                      Lt(Col("o_orderdate"), Lit(D(1994, 1, 1)))})),
                  Scan("lineitem", Eq(Col("l_returnflag"), Lit("R"))),
                  Scan("nation")}});

  // Q11: important stock identification.
  out.push_back({11,
                 {Scan("partsupp"), Scan("supplier"),
                  Scan("nation", Eq(Col("n_name"), Lit("GERMANY")))}});

  // Q12: shipping modes and order priority.
  out.push_back({12,
                 {Scan("orders"),
                  Scan("lineitem",
                       And({In(Col("l_shipmode"), {Value("MAIL"), Value("SHIP")}),
                            Lt(Col("l_commitdate"), Col("l_receiptdate")),
                            Lt(Col("l_shipdate"), Col("l_commitdate")),
                            Ge(Col("l_receiptdate"), Lit(D(1994, 1, 1))),
                            Lt(Col("l_receiptdate"), Lit(D(1995, 1, 1)))}))}});

  // Q13: customer distribution — NOT LIKE on comments, unprunable.
  out.push_back({13,
                 {Scan("customer"),
                  Scan("orders",
                       Not(Like(Col("o_comment"), "%special%requests%")))}});

  // Q14: promotion effect — one month of shipdate.
  out.push_back({14,
                 {Scan("lineitem", And({Ge(Col("l_shipdate"), Lit(D(1995, 9, 1))),
                                        Lt(Col("l_shipdate"), Lit(D(1995, 10, 1)))})),
                  Scan("part")}});

  // Q15: top supplier — three months of shipdate.
  out.push_back({15,
                 {Scan("lineitem", And({Ge(Col("l_shipdate"), Lit(D(1996, 1, 1))),
                                        Lt(Col("l_shipdate"), Lit(D(1996, 4, 1)))})),
                  Scan("supplier")}});

  // Q16: parts/supplier relationship — anti-selective part predicates.
  out.push_back({16,
                 {Scan("partsupp"),
                  Scan("part",
                       And({Ne(Col("p_brand"), Lit("Brand#45")),
                            Not(Like(Col("p_type"), "MEDIUM POLISHED%")),
                            In(Col("p_size"),
                               {Value(int64_t{49}), Value(int64_t{14}),
                                Value(int64_t{23}), Value(int64_t{45}),
                                Value(int64_t{19}), Value(int64_t{3}),
                                Value(int64_t{36}), Value(int64_t{9})})})),
                  Scan("supplier")}});

  // Q17: small-quantity-order revenue.
  out.push_back({17,
                 {Scan("lineitem"),
                  Scan("part", And({Eq(Col("p_brand"), Lit("Brand#23")),
                                    Eq(Col("p_container"), Lit("MED BOX"))}))}});

  // Q18: large volume customer — only a HAVING over an aggregate.
  out.push_back({18, {Scan("customer"), Scan("orders"), Scan("lineitem")}});

  // Q19: discounted revenue — OR of brand/container/quantity conjuncts.
  {
    auto quantity_clause = [](int lo, int hi) {
      return And({Ge(Col("l_quantity"), Lit(lo)), Le(Col("l_quantity"), Lit(hi)),
                  In(Col("l_shipmode"), {Value("AIR"), Value("REG AIR")}),
                  Eq(Col("l_shipinstruct"), Lit("DELIVER IN PERSON"))});
    };
    auto part_clause = [](const char* brand, const char* c1, const char* c2,
                          int size_hi) {
      return And({Eq(Col("p_brand"), Lit(brand)),
                  In(Col("p_container"), {Value(c1), Value(c2)}),
                  Between(Col("p_size"), Value(int64_t{1}),
                          Value(static_cast<int64_t>(size_hi)))});
    };
    out.push_back(
        {19,
         {Scan("lineitem", Or({quantity_clause(1, 11), quantity_clause(10, 20),
                               quantity_clause(20, 30)})),
          Scan("part",
               Or({part_clause("Brand#12", "SM CASE", "SM BOX", 5),
                   part_clause("Brand#23", "MED BAG", "MED BOX", 10),
                   part_clause("Brand#34", "LG CASE", "LG BOX", 15)}))}});
  }

  // Q20: potential part promotion.
  out.push_back({20,
                 {Scan("supplier"),
                  Scan("nation", Eq(Col("n_name"), Lit("CANADA"))),
                  Scan("partsupp"),
                  Scan("part", Like(Col("p_name"), "forest%")),
                  Scan("lineitem", And({Ge(Col("l_shipdate"), Lit(D(1994, 1, 1))),
                                        Lt(Col("l_shipdate"), Lit(D(1995, 1, 1)))}))}});

  // Q21: suppliers who kept orders waiting (lineitem referenced 3x).
  out.push_back({21,
                 {Scan("supplier"),
                  Scan("lineitem",
                       Gt(Col("l_receiptdate"), Col("l_commitdate"))),
                  Scan("lineitem"), Scan("lineitem"),
                  Scan("orders", Eq(Col("o_orderstatus"), Lit("F"))),
                  Scan("nation", Eq(Col("n_name"), Lit("SAUDI ARABIA")))}});

  // Q22: global sales opportunity — phone-prefix membership.
  out.push_back({22,
                 {Scan("customer",
                       And({Gt(Col("c_acctbal"), Lit(0.0)),
                            Or({StartsWith(Col("c_phone"), "13"),
                                StartsWith(Col("c_phone"), "31"),
                                StartsWith(Col("c_phone"), "23"),
                                StartsWith(Col("c_phone"), "29"),
                                StartsWith(Col("c_phone"), "30"),
                                StartsWith(Col("c_phone"), "18"),
                                StartsWith(Col("c_phone"), "17")})})),
                  Scan("orders")}});

  return out;
}

}  // namespace tpch
}  // namespace workload
}  // namespace snowprune
