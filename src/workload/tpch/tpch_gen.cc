#include "workload/tpch/tpch_gen.h"

#include <algorithm>
#include <cstdio>

#include "common/rng.h"

namespace snowprune {
namespace workload {
namespace tpch {

namespace {

/// Howard Hinnant's days-from-civil algorithm, rebased to 1992-01-01.
int64_t DaysFromCivil(int y, int m, int d) {
  y -= m <= 2;
  const int era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy =
      (153 * static_cast<unsigned>(m + (m > 2 ? -3 : 9)) + 2) / 5 +
      static_cast<unsigned>(d) - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097LL + static_cast<int64_t>(doe) - 719468LL;
}

const char* kTypes1[] = {"STANDARD", "SMALL", "MEDIUM",
                         "LARGE",    "ECONOMY", "PROMO"};
const char* kTypes2[] = {"ANODIZED", "BURNISHED", "PLATED", "POLISHED",
                         "BRUSHED"};
const char* kTypes3[] = {"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"};
const char* kContainers1[] = {"SM", "LG", "MED", "JUMBO", "WRAP"};
const char* kContainers2[] = {"CASE", "BOX", "BAG", "JAR",
                              "PKG",  "PACK", "CAN", "DRUM"};
const char* kShipModes[] = {"REG AIR", "AIR",   "RAIL", "SHIP",
                            "TRUCK",   "MAIL", "FOB"};
const char* kShipInstruct[] = {"DELIVER IN PERSON", "COLLECT COD", "NONE",
                               "TAKE BACK RETURN"};
const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY",
                           "HOUSEHOLD"};
const char* kColors[] = {"almond", "antique", "aquamarine", "azure",  "beige",
                         "bisque", "black",   "blanched",   "blue",   "blush",
                         "brown",  "burlywood", "chartreuse", "chiffon",
                         "chocolate", "coral", "cornflower", "cream", "cyan",
                         "dark",   "deep",    "dim",        "dodger", "drab",
                         "firebrick", "floral", "forest",    "frosted",
                         "gainsboro", "ghost", "goldenrod",  "green", "grey",
                         "honeydew",  "hot",   "hunter",     "indian", "ivory",
                         "khaki",  "lace",    "lavender",   "lawn",   "lemon"};
const char* kNations[] = {"ALGERIA",   "ARGENTINA",  "BRAZIL", "CANADA",
                          "EGYPT",     "ETHIOPIA",   "FRANCE", "GERMANY",
                          "INDIA",     "INDONESIA",  "IRAN",   "IRAQ",
                          "JAPAN",     "JORDAN",     "KENYA",  "MOROCCO",
                          "MOZAMBIQUE", "PERU",      "CHINA",  "ROMANIA",
                          "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM",
                          "UNITED STATES"};
// region of each nation (TPC-H mapping).
const int kNationRegion[] = {0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2,
                             4, 0, 0, 0, 1, 2, 3, 4, 2, 3, 3, 1};
const char* kRegions[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                          "MIDDLE EAST"};

template <size_t N>
const char* Pick(Rng* rng, const char* (&arr)[N]) {
  return arr[rng->UniformInt(0, static_cast<int64_t>(N) - 1)];
}

struct LineitemRow {
  int64_t orderkey, partkey, suppkey;
  double quantity, extendedprice, discount, tax;
  std::string returnflag, linestatus;
  int64_t shipdate, commitdate, receiptdate;
  std::string shipmode, shipinstruct;
};

}  // namespace

int64_t DateToDays(int year, int month, int day) {
  return DaysFromCivil(year, month, day) - DaysFromCivil(1992, 1, 1);
}

Status TpchTables::RegisterAll(Catalog* catalog) const {
  for (const auto& t : {lineitem, orders, customer, part, supplier, partsupp,
                        nation, region}) {
    Status s = catalog->RegisterTable(t);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

TpchTables GenerateTpch(const TpchConfig& config) {
  Rng rng(config.seed);
  const double sf = config.scale_factor;
  const int64_t num_orders = std::max<int64_t>(100, static_cast<int64_t>(1500000 * sf));
  const int64_t num_customers = std::max<int64_t>(50, static_cast<int64_t>(150000 * sf));
  const int64_t num_parts = std::max<int64_t>(50, static_cast<int64_t>(200000 * sf));
  const int64_t num_suppliers = std::max<int64_t>(10, static_cast<int64_t>(10000 * sf));
  const int64_t kStartDate = 0;                        // 1992-01-01
  const int64_t kEndDate = DateToDays(1998, 8, 2);     // dbgen's last orderdate
  const int64_t kCurrentDate = DateToDays(1995, 6, 17);

  TpchTables out;

  // --- region & nation ------------------------------------------------------
  {
    Schema schema({Field{"r_regionkey", DataType::kInt64, false},
                   Field{"r_name", DataType::kString, false}});
    TableBuilder b("region", schema, 8);
    for (int64_t i = 0; i < 5; ++i) {
      (void)b.AppendRow({Value(i), Value(std::string(kRegions[i]))});
    }
    out.region = b.Finish();
  }
  {
    Schema schema({Field{"n_nationkey", DataType::kInt64, false},
                   Field{"n_name", DataType::kString, false},
                   Field{"n_regionkey", DataType::kInt64, false}});
    TableBuilder b("nation", schema, 32);
    for (int64_t i = 0; i < 25; ++i) {
      (void)b.AppendRow({Value(i), Value(std::string(kNations[i])),
                         Value(static_cast<int64_t>(kNationRegion[i]))});
    }
    out.nation = b.Finish();
  }

  // --- supplier --------------------------------------------------------------
  {
    Schema schema({Field{"s_suppkey", DataType::kInt64, false},
                   Field{"s_nationkey", DataType::kInt64, false},
                   Field{"s_acctbal", DataType::kFloat64, false}});
    TableBuilder b("supplier", schema,
                   std::max<size_t>(64, static_cast<size_t>(num_suppliers / 8)));
    for (int64_t i = 1; i <= num_suppliers; ++i) {
      (void)b.AppendRow({Value(i), Value(rng.UniformInt(0, 24)),
                         Value(rng.Uniform() * 11000.0 - 1000.0)});
    }
    out.supplier = b.Finish();
  }

  // --- customer --------------------------------------------------------------
  {
    Schema schema({Field{"c_custkey", DataType::kInt64, false},
                   Field{"c_nationkey", DataType::kInt64, false},
                   Field{"c_mktsegment", DataType::kString, false},
                   Field{"c_acctbal", DataType::kFloat64, false},
                   Field{"c_phone", DataType::kString, false}});
    TableBuilder b("customer", schema,
                   std::max<size_t>(256, static_cast<size_t>(num_customers / 16)));
    char phone[48];
    for (int64_t i = 1; i <= num_customers; ++i) {
      int64_t nation = rng.UniformInt(0, 24);
      std::snprintf(phone, sizeof(phone), "%02lld-%03lld-%03lld-%04lld",
                    static_cast<long long>(nation + 10),
                    static_cast<long long>(rng.UniformInt(100, 999)),
                    static_cast<long long>(rng.UniformInt(100, 999)),
                    static_cast<long long>(rng.UniformInt(1000, 9999)));
      (void)b.AppendRow({Value(i), Value(nation),
                         Value(std::string(Pick(&rng, kSegments))),
                         Value(rng.Uniform() * 10998.0 - 999.0),
                         Value(std::string(phone))});
    }
    out.customer = b.Finish();
  }

  // --- part ------------------------------------------------------------------
  {
    Schema schema({Field{"p_partkey", DataType::kInt64, false},
                   Field{"p_name", DataType::kString, false},
                   Field{"p_brand", DataType::kString, false},
                   Field{"p_type", DataType::kString, false},
                   Field{"p_size", DataType::kInt64, false},
                   Field{"p_container", DataType::kString, false},
                   Field{"p_retailprice", DataType::kFloat64, false}});
    TableBuilder b("part", schema,
                   std::max<size_t>(256, static_cast<size_t>(num_parts / 16)));
    char brand[16];
    for (int64_t i = 1; i <= num_parts; ++i) {
      std::string name = std::string(Pick(&rng, kColors)) + " " +
                         Pick(&rng, kColors);
      std::snprintf(brand, sizeof(brand), "Brand#%lld%lld",
                    static_cast<long long>(rng.UniformInt(1, 5)),
                    static_cast<long long>(rng.UniformInt(1, 5)));
      std::string type = std::string(Pick(&rng, kTypes1)) + " " +
                         Pick(&rng, kTypes2) + " " + Pick(&rng, kTypes3);
      std::string container = std::string(Pick(&rng, kContainers1)) + " " +
                              Pick(&rng, kContainers2);
      (void)b.AppendRow({Value(i), Value(std::move(name)),
                         Value(std::string(brand)), Value(std::move(type)),
                         Value(rng.UniformInt(1, 50)),
                         Value(std::move(container)),
                         Value(900.0 + (i % 1000) + rng.Uniform() * 100.0)});
    }
    out.part = b.Finish();
  }

  // --- partsupp --------------------------------------------------------------
  {
    Schema schema({Field{"ps_partkey", DataType::kInt64, false},
                   Field{"ps_suppkey", DataType::kInt64, false},
                   Field{"ps_availqty", DataType::kInt64, false},
                   Field{"ps_supplycost", DataType::kFloat64, false}});
    TableBuilder b("partsupp", schema,
                   std::max<size_t>(512, static_cast<size_t>(num_parts / 4)));
    for (int64_t i = 1; i <= num_parts; ++i) {
      for (int j = 0; j < 4; ++j) {
        (void)b.AppendRow({Value(i),
                           Value(rng.UniformInt(1, num_suppliers)),
                           Value(rng.UniformInt(1, 9999)),
                           Value(rng.Uniform() * 999.0 + 1.0)});
      }
    }
    out.partsupp = b.Finish();
  }

  // --- orders + lineitem ------------------------------------------------------
  {
    Schema orders_schema({Field{"o_orderkey", DataType::kInt64, false},
                          Field{"o_custkey", DataType::kInt64, false},
                          Field{"o_orderstatus", DataType::kString, false},
                          Field{"o_totalprice", DataType::kFloat64, false},
                          Field{"o_orderdate", DataType::kInt64, false},
                          Field{"o_comment", DataType::kString, false}});
    Schema lineitem_schema({Field{"l_orderkey", DataType::kInt64, false},
                            Field{"l_partkey", DataType::kInt64, false},
                            Field{"l_suppkey", DataType::kInt64, false},
                            Field{"l_quantity", DataType::kFloat64, false},
                            Field{"l_extendedprice", DataType::kFloat64, false},
                            Field{"l_discount", DataType::kFloat64, false},
                            Field{"l_tax", DataType::kFloat64, false},
                            Field{"l_returnflag", DataType::kString, false},
                            Field{"l_linestatus", DataType::kString, false},
                            Field{"l_shipdate", DataType::kInt64, false},
                            Field{"l_commitdate", DataType::kInt64, false},
                            Field{"l_receiptdate", DataType::kInt64, false},
                            Field{"l_shipmode", DataType::kString, false},
                            Field{"l_shipinstruct", DataType::kString, false}});

    struct OrderRow {
      int64_t orderkey, custkey, orderdate;
      std::string status, comment;
      double totalprice;
    };
    std::vector<OrderRow> orders;
    orders.reserve(static_cast<size_t>(num_orders));
    std::vector<LineitemRow> lineitems;
    lineitems.reserve(static_cast<size_t>(num_orders) * 4);

    for (int64_t i = 1; i <= num_orders; ++i) {
      OrderRow o;
      o.orderkey = i;
      o.custkey = rng.UniformInt(1, num_customers);
      o.orderdate = rng.UniformInt(kStartDate, kEndDate - 151);
      o.totalprice = 0.0;
      // ~1% of comments carry the Q13 "special ... requests" motif.
      o.comment = rng.Bernoulli(0.01) ? "special deposits requests"
                                      : "regular pending accounts";
      int nlines = static_cast<int>(rng.UniformInt(1, 7));
      bool all_filled = true;
      for (int l = 0; l < nlines; ++l) {
        LineitemRow li;
        li.orderkey = i;
        li.partkey = rng.UniformInt(1, num_parts);
        li.suppkey = rng.UniformInt(1, num_suppliers);
        li.quantity = static_cast<double>(rng.UniformInt(1, 50));
        li.extendedprice = li.quantity * (900.0 + rng.Uniform() * 1200.0);
        li.discount = rng.UniformInt(0, 10) / 100.0;
        li.tax = rng.UniformInt(0, 8) / 100.0;
        li.shipdate = o.orderdate + rng.UniformInt(1, 121);
        li.commitdate = o.orderdate + rng.UniformInt(30, 90);
        li.receiptdate = li.shipdate + rng.UniformInt(1, 30);
        li.returnflag = li.receiptdate <= kCurrentDate
                            ? (rng.Bernoulli(0.5) ? "R" : "A")
                            : "N";
        li.linestatus = li.shipdate > kCurrentDate ? "O" : "F";
        li.shipmode = Pick(&rng, kShipModes);
        li.shipinstruct = Pick(&rng, kShipInstruct);
        o.totalprice += li.extendedprice;
        if (li.shipdate > kCurrentDate) all_filled = false;
        lineitems.push_back(std::move(li));
      }
      o.status = all_filled ? "F" : (rng.Bernoulli(0.5) ? "O" : "P");
      orders.push_back(std::move(o));
    }

    if (config.clustered) {
      // The paper's §8.3 setup: cluster by l_shipdate and o_orderdate.
      std::sort(orders.begin(), orders.end(),
                [](const OrderRow& a, const OrderRow& b) {
                  return a.orderdate < b.orderdate;
                });
      std::sort(lineitems.begin(), lineitems.end(),
                [](const LineitemRow& a, const LineitemRow& b) {
                  return a.shipdate < b.shipdate;
                });
    }

    TableBuilder ob("orders", orders_schema, config.orders_rows_per_partition);
    for (const auto& o : orders) {
      (void)ob.AppendRow({Value(o.orderkey), Value(o.custkey), Value(o.status),
                          Value(o.totalprice), Value(o.orderdate),
                          Value(o.comment)});
    }
    out.orders = ob.Finish();

    TableBuilder lb("lineitem", lineitem_schema,
                    config.lineitem_rows_per_partition);
    for (const auto& li : lineitems) {
      (void)lb.AppendRow({Value(li.orderkey), Value(li.partkey),
                          Value(li.suppkey), Value(li.quantity),
                          Value(li.extendedprice), Value(li.discount),
                          Value(li.tax), Value(li.returnflag),
                          Value(li.linestatus), Value(li.shipdate),
                          Value(li.commitdate), Value(li.receiptdate),
                          Value(li.shipmode), Value(li.shipinstruct)});
    }
    out.lineitem = lb.Finish();
  }

  return out;
}

}  // namespace tpch
}  // namespace workload
}  // namespace snowprune
