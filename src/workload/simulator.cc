#include "workload/simulator.h"

namespace snowprune {
namespace workload {

namespace {

void Classify(LimitBreakdown* breakdown, LimitClassification c) {
  switch (c) {
    case LimitClassification::kAlreadyMinimal:
      ++breakdown->already_minimal;
      break;
    case LimitClassification::kUnsupportedShape:
      ++breakdown->unsupported;
      break;
    case LimitClassification::kNoFullyMatching:
      ++breakdown->no_fully_matching;
      break;
    case LimitClassification::kPrunedToZero:
    case LimitClassification::kPrunedToOne:
      ++breakdown->pruned_to_one;
      break;
    case LimitClassification::kPrunedToMany:
      ++breakdown->pruned_to_many;
      break;
    case LimitClassification::kNotALimitQuery:
      break;
  }
}

}  // namespace

SimulationResult Simulator::Run(size_t num_queries) {
  SimulationResult result;
  for (size_t i = 0; i < num_queries; ++i) {
    GeneratedQuery q = generator_->Generate();
    auto executed = engine_->Execute(q.plan);
    if (!executed.ok()) continue;
    const QueryResult& r = executed.value();
    const PruningStats& s = r.stats;

    ++result.total_queries;
    ++result.class_counts[q.query_class];
    ++result.shape_occurrences[q.shape_id];
    result.total_partitions += s.total_partitions;
    result.total_pruned += s.TotalPruned();

    // Eligibility follows the paper: filter pruning for predicated queries,
    // LIMIT pruning for LIMIT queries, etc.
    if (q.has_predicate && q.query_class != QueryClass::kJoin) {
      result.filter_ratios.Add(s.FilterRatio());
      if (s.pruned_by_filter > 0) {
        result.filter_ratios_applied.Add(s.FilterRatio());
      }
      result.filter_total_partitions += s.total_partitions;
      result.filter_pruned_partitions += s.pruned_by_filter;
    }
    const bool is_limit = q.query_class == QueryClass::kLimitNoPredicate ||
                          q.query_class == QueryClass::kLimitWithPredicate;
    if (is_limit) {
      result.limit_ratios.Add(s.LimitRatio());
      if (r.limit_class == LimitClassification::kPrunedToZero ||
          r.limit_class == LimitClassification::kPrunedToOne ||
          r.limit_class == LimitClassification::kPrunedToMany) {
        result.limit_ratios_applied.Add(s.LimitRatio());
      }
      Classify(q.has_predicate ? &result.limit_with_predicate
                               : &result.limit_without_predicate,
               r.limit_class);
    }
    if (r.topk_pruning_attached) {
      result.topk_ratios.Add(s.TopKRatio());
    }
    if (q.query_class == QueryClass::kJoin) {
      // Figure 10 plots probe-scan-level ratios.
      double probe_ratio =
          q.probe_partitions > 0
              ? static_cast<double>(s.pruned_by_join) /
                    static_cast<double>(q.probe_partitions)
              : s.JoinRatio();
      result.join_ratios.Add(probe_ratio);
    }

    // Figure 11 flow.
    std::string combo;
    if (s.pruned_by_filter > 0) {
      ++result.flow_filter;
      combo += "filter";
    }
    if (s.pruned_by_limit > 0) {
      ++result.flow_limit;
      combo += combo.empty() ? "limit" : "+limit";
    }
    if (s.pruned_by_join > 0) {
      ++result.flow_join;
      combo += combo.empty() ? "join" : "+join";
    }
    if (s.pruned_by_topk > 0) {
      ++result.flow_topk;
      combo += combo.empty() ? "topk" : "+topk";
    }
    if (combo.empty()) combo = "none";
    ++result.flow_combinations[combo];
  }
  return result;
}

}  // namespace workload
}  // namespace snowprune
