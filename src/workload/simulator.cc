#include "workload/simulator.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/rng.h"

namespace snowprune {
namespace workload {

namespace {

void Classify(LimitBreakdown* breakdown, LimitClassification c) {
  switch (c) {
    case LimitClassification::kAlreadyMinimal:
      ++breakdown->already_minimal;
      break;
    case LimitClassification::kUnsupportedShape:
      ++breakdown->unsupported;
      break;
    case LimitClassification::kNoFullyMatching:
      ++breakdown->no_fully_matching;
      break;
    case LimitClassification::kPrunedToZero:
    case LimitClassification::kPrunedToOne:
      ++breakdown->pruned_to_one;
      break;
    case LimitClassification::kPrunedToMany:
      ++breakdown->pruned_to_many;
      break;
    case LimitClassification::kNotALimitQuery:
      break;
  }
}

}  // namespace

SimulationResult Simulator::Run(size_t num_queries) {
  SimulationResult result;
  for (size_t i = 0; i < num_queries; ++i) {
    GeneratedQuery q = generator_->Generate();
    auto executed = engine_->Execute(q.plan);
    if (!executed.ok()) continue;
    const QueryResult& r = executed.value();
    const PruningStats& s = r.stats;

    ++result.total_queries;
    ++result.class_counts[q.query_class];
    ++result.shape_occurrences[q.shape_id];
    result.total_partitions += s.total_partitions;
    result.total_pruned += s.TotalPruned();

    // Eligibility follows the paper: filter pruning for predicated queries,
    // LIMIT pruning for LIMIT queries, etc.
    if (q.has_predicate && q.query_class != QueryClass::kJoin) {
      result.filter_ratios.Add(s.FilterRatio());
      if (s.pruned_by_filter > 0) {
        result.filter_ratios_applied.Add(s.FilterRatio());
      }
      result.filter_total_partitions += s.total_partitions;
      result.filter_pruned_partitions += s.pruned_by_filter;
    }
    const bool is_limit = q.query_class == QueryClass::kLimitNoPredicate ||
                          q.query_class == QueryClass::kLimitWithPredicate;
    if (is_limit) {
      result.limit_ratios.Add(s.LimitRatio());
      if (r.limit_class == LimitClassification::kPrunedToZero ||
          r.limit_class == LimitClassification::kPrunedToOne ||
          r.limit_class == LimitClassification::kPrunedToMany) {
        result.limit_ratios_applied.Add(s.LimitRatio());
      }
      Classify(q.has_predicate ? &result.limit_with_predicate
                               : &result.limit_without_predicate,
               r.limit_class);
    }
    if (r.topk_pruning_attached) {
      result.topk_ratios.Add(s.TopKRatio());
    }
    if (q.query_class == QueryClass::kJoin) {
      // Figure 10 plots probe-scan-level ratios.
      double probe_ratio =
          q.probe_partitions > 0
              ? static_cast<double>(s.pruned_by_join) /
                    static_cast<double>(q.probe_partitions)
              : s.JoinRatio();
      result.join_ratios.Add(probe_ratio);
    }

    // Figure 11 flow.
    std::string combo;
    if (s.pruned_by_filter > 0) {
      ++result.flow_filter;
      combo += "filter";
    }
    if (s.pruned_by_limit > 0) {
      ++result.flow_limit;
      combo += combo.empty() ? "limit" : "+limit";
    }
    if (s.pruned_by_join > 0) {
      ++result.flow_join;
      combo += combo.empty() ? "join" : "+join";
    }
    if (s.pruned_by_topk > 0) {
      ++result.flow_topk;
      combo += combo.empty() ? "topk" : "+topk";
    }
    if (combo.empty()) combo = "none";
    ++result.flow_combinations[combo];
  }
  return result;
}

StreamDriverResult MultiStreamDriver::Run(service::QueryService* service,
                                          const StreamDriverConfig& config) {
  StreamDriverResult result;
  Mutex merge_mutex;

  /// One stream's private tallies, merged once at stream end so the hot
  /// loop never contends on the shared result.
  struct StreamLocal {
    StatsCollector latency_ms;
    StatsCollector queue_ms;
    std::map<QueryClass, StatsCollector> latency_by_class;
    int64_t ok = 0;
    int64_t failed = 0;
    int64_t rejected = 0;
    int64_t deadline_exceeded = 0;
    int64_t shard_retries = 0;
    int64_t cache_hits = 0;
    int64_t shards_total = 0;
    int64_t shards_pruned = 0;

    /// Shared failure bookkeeping for a completed query: deadline misses are
    /// their own outcome (QoS working as designed), everything else fails.
    void CountNonOk(const Status& status) {
      if (status.code() == StatusCode::kDeadlineExceeded) {
        ++deadline_exceeded;
      } else {
        ++failed;
      }
    }
  };

  auto merge_local = [&](StreamLocal& local) {
    MutexLock lock(&merge_mutex);
    result.queries_ok += local.ok;
    result.queries_failed += local.failed;
    result.queries_rejected += local.rejected;
    result.queries_deadline_exceeded += local.deadline_exceeded;
    result.shard_retries += local.shard_retries;
    result.cache_hit_queries += local.cache_hits;
    result.shards_total += local.shards_total;
    result.shards_pruned += local.shards_pruned;
    result.latency_ms.AddAll(local.latency_ms.samples());
    result.queue_ms.AddAll(local.queue_ms.samples());
    for (const auto& [cls, collector] : local.latency_by_class) {
      result.latency_by_class[cls].AddAll(collector.samples());
    }
  };

  auto make_generator = [&](size_t stream_index) {
    QueryGenerator::Config gcfg = config.gen;
    if (!config.identical_streams) gcfg.seed += stream_index;
    return QueryGenerator(catalog_, probe_tables_, build_tables_, model_,
                          gcfg);
  };

  /// Closed loop: one query outstanding per stream; latency = submit→done
  /// as observed on the calling thread.
  auto run_stream_closed = [&](size_t stream_index) {
    QueryGenerator generator = make_generator(stream_index);
    StreamLocal local;
    for (size_t i = 0; i < config.queries_per_stream; ++i) {
      GeneratedQuery q = generator.Generate();
      const auto t0 = std::chrono::steady_clock::now();
      auto submitted = service->Submit(std::move(q.plan));
      if (!submitted.ok()) {
        ++(submitted.status().code() == StatusCode::kResourceExhausted
               ? local.rejected
               : local.failed);
        continue;
      }
      auto executed = submitted.value().Await();
      const double ms = MsSince(t0);
      if (!executed.ok()) {
        local.CountNonOk(executed.status());
        continue;
      }
      ++local.ok;
      local.shard_retries += executed.value().shard_retries;
      if (executed.value().predicate_cache_hit) ++local.cache_hits;
      local.shards_total += executed.value().stats.shards_total;
      local.shards_pruned += executed.value().stats.shards_pruned;
      local.latency_ms.Add(ms);
      local.queue_ms.Add(submitted.value().queue_ms());
      local.latency_by_class[q.query_class].Add(ms);
    }
    merge_local(local);
  };

  /// Open loop: Poisson arrivals at offered_qps / num_streams, never
  /// waiting for completions between submissions; latencies (arrival →
  /// Handle::done_at) are collected after the arrival schedule finishes.
  auto run_stream_open = [&](size_t stream_index) {
    QueryGenerator generator = make_generator(stream_index);
    Rng arrivals(config.gen.seed * 1000003 + stream_index * 7919 + 13);
    const double per_stream_qps =
        config.offered_qps / static_cast<double>(config.num_streams);
    const double mean_gap_ms =
        per_stream_qps > 0.0 ? 1000.0 / per_stream_qps : 0.0;
    StreamLocal local;
    struct Pending {
      service::QueryService::Handle handle;
      QueryClass cls;
      std::chrono::steady_clock::time_point arrival;
    };
    std::vector<Pending> pending;
    pending.reserve(config.queries_per_stream);
    auto next_arrival = std::chrono::steady_clock::now();
    for (size_t i = 0; i < config.queries_per_stream; ++i) {
      // Exponential inter-arrival gap; Uniform() ∈ [0,1) keeps the log
      // argument positive.
      const double gap_ms = -mean_gap_ms * std::log(1.0 - arrivals.Uniform());
      next_arrival += std::chrono::microseconds(
          static_cast<int64_t>(gap_ms * 1000.0));
      std::this_thread::sleep_until(next_arrival);
      GeneratedQuery q = generator.Generate();
      const auto arrival = std::chrono::steady_clock::now();
      auto submitted = service->Submit(std::move(q.plan));
      if (!submitted.ok()) {
        ++(submitted.status().code() == StatusCode::kResourceExhausted
               ? local.rejected
               : local.failed);
        continue;
      }
      pending.push_back(Pending{submitted.value(), q.query_class, arrival});
    }
    for (Pending& p : pending) {
      auto executed = p.handle.Await();
      if (!executed.ok()) {
        local.CountNonOk(executed.status());
        continue;
      }
      ++local.ok;
      local.shard_retries += executed.value().shard_retries;
      if (executed.value().predicate_cache_hit) ++local.cache_hits;
      local.shards_total += executed.value().stats.shards_total;
      local.shards_pruned += executed.value().stats.shards_pruned;
      const double ms = MsBetween(p.arrival, p.handle.done_at());
      local.latency_ms.Add(ms);
      local.queue_ms.Add(p.handle.queue_ms());
      local.latency_by_class[p.cls].Add(ms);
    }
    merge_local(local);
  };

  auto run_stream = [&](size_t stream_index) {
    if (config.open_loop) {
      run_stream_open(stream_index);
    } else {
      run_stream_closed(stream_index);
    }
  };

  const auto wall0 = std::chrono::steady_clock::now();
  std::vector<std::thread> streams;
  streams.reserve(config.num_streams);
  for (size_t s = 0; s < config.num_streams; ++s) {
    streams.emplace_back(run_stream, s);
  }
  for (std::thread& s : streams) s.join();
  result.wall_ms = MsSince(wall0);

  if (config.print_service_stats) {
    const service::ServiceStats stats = service->stats();
    auto print_dist = [](const char* name, const StatsCollector& c) {
      if (c.empty()) {
        std::printf("service %-14s (no samples)\n", name);
        return;
      }
      std::printf("service %-14s p50=%.3fms p95=%.3fms p99=%.3fms (n=%zu)\n",
                  name, c.Percentile(50.0), c.Percentile(95.0),
                  c.Percentile(99.0), c.count());
    };
    print_dist("queue_wait_ms", stats.queue_wait_ms);
    print_dist("exec_ms", stats.exec_ms);
  }
  return result;
}

}  // namespace workload
}  // namespace snowprune
