#include "workload/table_gen.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace snowprune {
namespace workload {

const char* ToString(Layout layout) {
  switch (layout) {
    case Layout::kSorted: return "sorted";
    case Layout::kClustered: return "clustered";
    case Layout::kRandom: return "random";
  }
  return "?";
}

std::shared_ptr<Table> SyntheticTable(const TableGenConfig& config) {
  Rng rng(config.seed);
  const size_t total_rows = config.num_partitions * config.rows_per_partition;
  const double span =
      static_cast<double>(config.domain_max - config.domain_min);

  // Key sequence per layout. Sorted/clustered keys ascend with row position
  // so consecutive partitions cover consecutive (noisy) ranges.
  std::vector<int64_t> keys(total_rows);
  for (size_t i = 0; i < total_rows; ++i) {
    double position = total_rows <= 1
                          ? 0.0
                          : static_cast<double>(i) /
                                static_cast<double>(total_rows - 1);
    switch (config.layout) {
      case Layout::kSorted:
        keys[i] = config.domain_min + static_cast<int64_t>(position * span);
        break;
      case Layout::kClustered: {
        double noisy = position * span + rng.Normal(0.0, config.overlap * span);
        noisy = std::clamp(noisy, 0.0, span);
        keys[i] = config.domain_min + static_cast<int64_t>(noisy);
        break;
      }
      case Layout::kRandom:
        keys[i] = rng.UniformInt(config.domain_min, config.domain_max);
        break;
    }
  }

  Schema schema({
      Field{"id", DataType::kInt64, /*nullable=*/false},
      Field{"key", DataType::kInt64, /*nullable=*/false},
      Field{"val", DataType::kFloat64, /*nullable=*/true},
      Field{"cat", DataType::kString, /*nullable=*/false},
      Field{"ts", DataType::kInt64, /*nullable=*/false},
  });
  TableBuilder builder(config.name, schema, config.rows_per_partition);
  ZipfSampler cat_sampler(std::max<size_t>(1, config.num_categories), 1.1);
  char cat_buf[16];
  for (size_t i = 0; i < total_rows; ++i) {
    Value val = rng.Bernoulli(config.null_fraction)
                    ? Value::Null()
                    : Value(rng.Uniform() * 1000.0);
    std::snprintf(cat_buf, sizeof(cat_buf), "c%04zu",
                  cat_sampler.Sample(&rng) - 1);
    Status s = builder.AppendRow({
        Value(static_cast<int64_t>(i)),
        Value(keys[i]),
        val,
        Value(std::string(cat_buf)),
        Value(static_cast<int64_t>(i)),
    });
    (void)s;
  }
  return builder.Finish();
}

}  // namespace workload
}  // namespace snowprune
