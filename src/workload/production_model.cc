#include "workload/production_model.h"

#include <cmath>

namespace snowprune {
namespace workload {

const char* ToString(QueryClass c) {
  switch (c) {
    case QueryClass::kSelectNoPredicate: return "select-no-predicate";
    case QueryClass::kSelectPredicate: return "select-predicate";
    case QueryClass::kLimitNoPredicate: return "limit-no-predicate";
    case QueryClass::kLimitWithPredicate: return "limit-with-predicate";
    case QueryClass::kTopK: return "order-by-x-limit-k";
    case QueryClass::kTopKGroupBySame: return "group-by-x-order-by-x-limit-k";
    case QueryClass::kTopKGroupByAgg: return "group-by-y-order-by-agg-limit-k";
    case QueryClass::kJoin: return "join";
  }
  return "?";
}

QueryClass ProductionModel::SampleClass(Rng* rng) const {
  return static_cast<QueryClass>(rng->Discrete(config_.class_weights));
}

int64_t ProductionModel::SampleLimitK(Rng* rng) const {
  // Figure 6: mass points at k = 0 and small k; 97% of queries have
  // k <= 10,000, 99.9% have k <= 2,000,000.
  if (rng->Bernoulli(config_.zero_k_fraction)) return 0;
  // Decade mixture over the remaining mass (renormalized).
  static const std::vector<double> kDecadeWeights = {
      28.0,  // exactly 1
      12.0,  // 2..10
      10.0,  // 11..100
      14.0,  // 101..1,000
      13.0,  // 1,001..10,000
      2.0,   // 10,001..100,000
      0.9,   // 100,001..2,000,000
      0.1,   // heavier tail
  };
  switch (rng->Discrete(kDecadeWeights)) {
    case 0: return 1;
    case 1: return rng->UniformInt(2, 10);
    case 2: return rng->UniformInt(11, 100);
    case 3: return rng->UniformInt(101, 1000);
    case 4: return rng->UniformInt(1001, 10000);
    case 5: return rng->UniformInt(10001, 100000);
    case 6: return rng->UniformInt(100001, 2000000);
    default: return rng->UniformInt(2000001, 10000000);
  }
}

double ProductionModel::SampleSelectivity(Rng* rng) const {
  // Figure 4 shape: a heavy high-selectivity head (36% of predicated
  // queries prune >= 90% of partitions) and a non-selective tail (27%
  // prune nothing).
  static const std::vector<double> kBucketWeights = {34.0, 16.0, 14.0, 36.0};
  switch (rng->Discrete(kBucketWeights)) {
    case 0: {
      // Needle-in-haystack: 1e-6 .. 1e-3, log-uniform.
      double exponent = -6.0 + 3.0 * rng->Uniform();
      return std::pow(10.0, exponent);
    }
    case 1: {
      // Narrow analytical slice: 0.1% .. 5%.
      double exponent = -3.0 + 1.7 * rng->Uniform();
      return std::pow(10.0, exponent);
    }
    case 2:
      // Moderate: 5% .. 40%.
      return 0.05 + 0.35 * rng->Uniform();
    default:
      // Non-selective: 40% .. 100% (little to prune even on sorted data).
      return 0.4 + 0.6 * rng->Uniform();
  }
}

}  // namespace workload
}  // namespace snowprune
