#ifndef SNOWPRUNE_WORKLOAD_TABLE_GEN_H_
#define SNOWPRUNE_WORKLOAD_TABLE_GEN_H_

#include <memory>
#include <string>

#include "common/rng.h"
#include "storage/table.h"

namespace snowprune {
namespace workload {

/// Physical data layout of the generated `key` column — the knob that
/// controls how much zone maps overlap and therefore how prunable the table
/// is. The paper (§1) deliberately treats layout as given; these three
/// layouts span the spectrum its experiments encounter.
enum class Layout {
  kSorted,     ///< Perfectly sorted: disjoint zone maps, ideal pruning.
  kClustered,  ///< Sorted with noise (natural ingestion order, e.g. event
               ///< time): mostly-disjoint zone maps.
  kRandom,     ///< Uniformly shuffled: every zone map spans the domain.
};

const char* ToString(Layout layout);

/// Configuration for SyntheticTable().
struct TableGenConfig {
  std::string name = "t";
  size_t num_partitions = 100;
  size_t rows_per_partition = 1000;
  Layout layout = Layout::kClustered;
  /// Clustering noise as a fraction of the whole domain (kClustered only):
  /// each key is displaced by a normal with this relative stddev.
  double overlap = 0.01;
  int64_t domain_min = 0;
  int64_t domain_max = 1'000'000;
  /// Fraction of NULLs in the nullable measure column `val`.
  double null_fraction = 0.0;
  /// Number of distinct categories in the `cat` column (zipf-distributed).
  size_t num_categories = 1000;
  uint64_t seed = 42;
};

/// Generates a synthetic table with schema
///   id   int64   — unique, ascending (never null)
///   key  int64   — layout-controlled prunable column
///   val  float64 — uniform measure, null_fraction NULLs
///   cat  string  — zipf-distributed category "c0000".."cNNNN"
///   ts   int64   — ingestion timestamp, ascending (sorted layout)
/// partitioned into num_partitions micro-partitions.
std::shared_ptr<Table> SyntheticTable(const TableGenConfig& config);

}  // namespace workload
}  // namespace snowprune

#endif  // SNOWPRUNE_WORKLOAD_TABLE_GEN_H_
