#include "shard/shard_map.h"

#include <algorithm>

#include "common/check.h"

namespace snowprune {
namespace shard {

const char* ToString(ShardPolicy policy) {
  switch (policy) {
    case ShardPolicy::kRange: return "range";
    case ShardPolicy::kHash: return "hash";
  }
  return "?";
}

namespace {

/// Merges one partition's zone map into the shard's running summary. The
/// merged stats must admit every value any member admits: min/max widen
/// (NULL min/max means "no non-null values" and is skipped), null and row
/// counts sum, and a single member without stats poisons the whole shard's
/// summary (ColumnStats::ToInterval then yields Unknown — never prunable).
void MergeStats(const ColumnStats& in, ColumnStats* out) {
  if (!in.has_stats) out->has_stats = false;
  out->null_count += in.null_count;
  out->row_count += in.row_count;
  if (!in.min.is_null() &&
      (out->min.is_null() || Value::Compare(in.min, out->min) < 0)) {
    out->min = in.min;
  }
  if (!in.max.is_null() &&
      (out->max.is_null() || Value::Compare(in.max, out->max) > 0)) {
    out->max = in.max;
  }
}

}  // namespace

ShardMap ShardMap::Build(const Table& table, size_t num_shards,
                         ShardPolicy policy) {
  ShardMap map;
  map.table_instance_ = table.instance_id();
  num_shards = std::max<size_t>(1, num_shards);
  map.shards_.resize(num_shards);
  const size_t n = table.num_partitions();
  map.owner_.resize(n, 0);

  int64_t total_rows = 0;
  for (size_t pid = 0; pid < n; ++pid) {
    total_rows +=
        table.partition_metadata(static_cast<PartitionId>(pid)).row_count();
  }

  int64_t cum_rows = 0;
  for (size_t pid = 0; pid < n; ++pid) {
    size_t s = 0;
    switch (policy) {
      case ShardPolicy::kRange:
        // Row-count-balanced contiguous cut: place the partition by how far
        // through the table's total rows the range has come. Row-empty
        // tables (or all-empty prefixes) fall back to a count-based cut.
        s = total_rows > 0
                ? static_cast<size_t>((cum_rows * static_cast<int64_t>(
                                                      num_shards)) /
                                      total_rows)
                : (pid * num_shards) / std::max<size_t>(1, n);
        s = std::min(s, num_shards - 1);
        break;
      case ShardPolicy::kHash:
        s = static_cast<size_t>(
            (static_cast<uint64_t>(pid) * 2654435761ull) % num_shards);
        break;
    }
    map.owner_[pid] = static_cast<uint32_t>(s);
    Shard& shard = map.shards_[s];
    const MicroPartition& meta =
        table.partition_metadata(static_cast<PartitionId>(pid));
    shard.partitions.push_back(static_cast<PartitionId>(pid));
    shard.rows += meta.row_count();
    cum_rows += meta.row_count();
    if (shard.summary.empty()) {
      shard.summary.resize(table.schema().num_columns());
      for (auto& col : shard.summary) col.has_stats = true;
    }
    for (size_t c = 0; c < shard.summary.size(); ++c) {
      MergeStats(meta.stats(c), &shard.summary[c]);
    }
  }

  for (const Shard& s : map.shards_) {
    if (!s.partitions.empty()) ++map.assigned_;
  }

#if SNOW_DCHECK_IS_ON
  // Monotonicity audit: a shard's merged summary must be weaker-or-equal
  // than every member partition's zone map — the cross-shard pruning level
  // is only sound if the summary admits everything any member admits. A
  // violation here would surface as silently wrong results (a shard pruned
  // even though one of its partitions matched), so debug builds prove the
  // containment for every (partition, column) right after the build.
  for (size_t pid = 0; pid < n; ++pid) {
    const Shard& shard = map.shards_[map.owner_[pid]];
    const MicroPartition& meta =
        table.partition_metadata(static_cast<PartitionId>(pid));
    for (size_t c = 0; c < shard.summary.size(); ++c) {
      const ColumnStats& member = meta.stats(c);
      const ColumnStats& merged = shard.summary[c];
      if (!member.has_stats) {
        // A stats-less member must poison the summary (never prunable).
        SNOW_DCHECK(!merged.has_stats);
        continue;
      }
      if (!merged.has_stats) continue;  // poisoned by a sibling: weaker.
      if (!member.min.is_null()) {
        SNOW_DCHECK(!merged.min.is_null());
        SNOW_DCHECK_LE(Value::Compare(merged.min, member.min), 0);
      }
      if (!member.max.is_null()) {
        SNOW_DCHECK(!merged.max.is_null());
        SNOW_DCHECK_GE(Value::Compare(merged.max, member.max), 0);
      }
      SNOW_DCHECK_LE(member.null_count, merged.null_count);
      SNOW_DCHECK_LE(member.row_count, merged.row_count);
    }
  }
#endif

  return map;
}

}  // namespace shard
}  // namespace snowprune
