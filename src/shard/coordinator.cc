#include "shard/coordinator.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/check.h"
#include "common/clock.h"
#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "core/limit_pruner.h"
#include "exec/agg_op.h"
#include "exec/ops.h"
#include "exec/profile.h"
#include "exec/topk_op.h"
#include "expr/jit/compiler.h"

namespace snowprune {
namespace shard {

int64_t RetryBackoffUs(const RetryPolicy& policy, int retry) {
  if (retry < 1) retry = 1;
  if (policy.base_backoff_us <= 0) return 0;
  // Capped exponential, saturating well before the shift could overflow.
  int64_t backoff = policy.base_backoff_us;
  for (int i = 1; i < retry && backoff < policy.max_backoff_us; ++i) {
    backoff *= 2;
  }
  backoff = std::min(backoff, policy.max_backoff_us);
  // ±25% deterministic jitter: hash (seed, retry) to a [0,1) draw, the same
  // splitmix construction the failpoint layer uses. Deterministic so tests
  // can assert the exact schedule; jittered so a storm of shards retrying
  // in lockstep decorrelates.
  uint64_t x = policy.jitter_seed ^ (static_cast<uint64_t>(retry) *
                                     0x9e3779b97f4a7c15ULL);
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  const double u = static_cast<double>(x >> 11) * 0x1.0p-53;
  return static_cast<int64_t>(static_cast<double>(backoff) *
                              (0.75 + 0.5 * u));
}

namespace {

/// The coordinator-side stand-in for the table scan: iterates the final
/// global scan set in order, consults the (evolving) top-k boundary before
/// each partition exactly where the serial scan would — before the "load" —
/// and emits the shard-delivered row fragment as one batch per partition
/// (even an empty one, matching TableScanOp's one-batch-per-partition
/// contract). Per-partition stats are metered here, in scan-set order, so
/// the gathered PruningStats reproduce a serial run's counters bit-for-bit;
/// a fragment dropped by a boundary that tightened after the scatter is the
/// sharded analog of a parallel worker's stale lookahead load and is
/// surfaced as speculative_loads.
class GatherSourceOp : public Operator {
 public:
  GatherSourceOp(std::shared_ptr<Table> table, ScanSet scan_set,
                 PruningStats* stats)
      : table_(std::move(table)),
        scan_set_(std::move(scan_set)),
        stats_(stats) {}

  void AttachTopKPruner(TopKPruner* pruner) { topk_pruner_ = pruner; }
  TopKPruner* topk_pruner() const { return topk_pruner_; }
  void ReplaceScanSet(ScanSet scan_set) { scan_set_ = std::move(scan_set); }
  const ScanSet& scan_set() const { return scan_set_; }
  void set_fragments(std::unordered_map<PartitionId, std::vector<Row>>* f) {
    fragments_ = f;
  }

  /// Profiling mirror (traced queries): receives the same deltas as
  /// `stats_`, attributed to this node. The coordinator meters the whole
  /// sharded query here — sub-engines run with metering off — so the
  /// profile's summed pruning reconciles against the query's PruningStats.
  void set_profile_stats(PruningStats* stats) { profile_stats_ = stats; }

  void Open() override { cursor_ = 0; }

  bool Next(Batch* out) override {
    if (profile_ == nullptr) return NextInner(out);
    return ProfiledNext(
        profile_, [&] { return NextInner(out); },
        [&] { return static_cast<int64_t>(out->rows.size()); });
  }

  bool NextInner(Batch* out) {
    out->rows.clear();
    out->source.clear();
    while (cursor_ < scan_set_.size()) {
      PartitionId pid = scan_set_[cursor_++];
      if (topk_pruner_ != nullptr && topk_pruner_->ShouldSkip(*table_, pid)) {
        // Exactly the serial scan's pre-load check. A fragment the scatter
        // already produced for this partition was a speculative load.
        ++stats_->pruned_by_topk;
        if (profile_stats_ != nullptr) ++profile_stats_->pruned_by_topk;
        if (fragments_ != nullptr && fragments_->count(pid) > 0) {
          ++stats_->speculative_loads;
          if (profile_stats_ != nullptr) ++profile_stats_->speculative_loads;
        }
        continue;
      }
      ++stats_->scanned_partitions;
      stats_->scanned_rows += table_->partition_metadata(pid).row_count();
      if (profile_stats_ != nullptr) {
        ++profile_stats_->scanned_partitions;
        profile_stats_->scanned_rows +=
            table_->partition_metadata(pid).row_count();
      }
      if (fragments_ != nullptr) {
        auto it = fragments_->find(pid);
        if (it != fragments_->end()) out->rows = std::move(it->second);
      }
      return true;  // one batch per partition, even with no surviving rows
    }
    return false;
  }

  void Close() override {}
  const Schema& output_schema() const override { return table_->schema(); }

 private:
  std::shared_ptr<Table> table_;
  ScanSet scan_set_;
  PruningStats* stats_;
  PruningStats* profile_stats_ = nullptr;
  TopKPruner* topk_pruner_ = nullptr;
  std::unordered_map<PartitionId, std::vector<Row>>* fragments_ = nullptr;
  size_t cursor_ = 0;
};

/// Join-free single-scan chain? That is the shape the scatter compile can
/// mirror; everything else falls back to the single-engine path.
bool SupportedShape(const PlanPtr& plan, size_t* scans) {
  if (!plan) return false;
  switch (plan->kind) {
    case PlanNode::Kind::kScan:
      return ++*scans == 1;
    case PlanNode::Kind::kProject:
    case PlanNode::Kind::kLimit:
    case PlanNode::Kind::kTopK:
    case PlanNode::Kind::kSort:
    case PlanNode::Kind::kAggregate:
      return SupportedShape(plan->child, scans);
    case PlanNode::Kind::kJoin:
      return false;
  }
  return false;
}

const PlanNode* FindScan(const PlanPtr& plan) {
  return plan->kind == PlanNode::Kind::kScan ? plan.get()
                                             : FindScan(plan->child);
}

/// Mirrors engine.cc's TraceColumnToScan for the join-free chains the
/// scatter path supports (§5.2 / Figure 7a+7d legality).
struct GatherTrace {
  const PlanNode* scan = nullptr;
  std::string column;
  bool via_aggregate = false;
  const PlanNode* agg_node = nullptr;
};

GatherTrace TraceColumn(const Table& table, const PlanPtr& plan,
                        const std::string& column) {
  switch (plan->kind) {
    case PlanNode::Kind::kScan: {
      if (table.schema().FindColumn(column).has_value()) {
        GatherTrace t;
        t.scan = plan.get();
        t.column = column;
        return t;
      }
      return {};
    }
    case PlanNode::Kind::kProject: {
      auto it = std::find(plan->names.begin(), plan->names.end(), column);
      if (it == plan->names.end()) return {};
      size_t idx = static_cast<size_t>(it - plan->names.begin());
      if (plan->exprs[idx]->kind() != ExprKind::kColumnRef) return {};
      const auto& ref = static_cast<const ColumnRefExpr&>(*plan->exprs[idx]);
      return TraceColumn(table, plan->child, ref.name());
    }
    case PlanNode::Kind::kLimit:
    case PlanNode::Kind::kTopK:
    case PlanNode::Kind::kSort:
      return TraceColumn(table, plan->child, column);
    case PlanNode::Kind::kAggregate: {
      if (std::find(plan->group_columns.begin(), plan->group_columns.end(),
                    column) == plan->group_columns.end()) {
        return {};
      }
      GatherTrace t = TraceColumn(table, plan->child, column);
      if (t.scan != nullptr) {
        if (t.via_aggregate) return {};  // nested aggregates unsupported
        t.via_aggregate = true;
        t.agg_node = plan.get();
      }
      return t;
    }
    case PlanNode::Kind::kJoin:
      return {};
  }
  return {};
}

/// Mirrors engine.cc's TraceLimitTarget (§4.3), join branch excluded.
const PlanNode* TraceLimitTarget(const PlanPtr& plan) {
  switch (plan->kind) {
    case PlanNode::Kind::kScan:
      return plan.get();
    case PlanNode::Kind::kProject:
      return TraceLimitTarget(plan->child);
    default:
      return nullptr;
  }
}

LimitClassification MapOutcome(LimitPruneOutcome outcome) {
  switch (outcome) {
    case LimitPruneOutcome::kAlreadyMinimal:
      return LimitClassification::kAlreadyMinimal;
    case LimitPruneOutcome::kNoFullyMatching:
      return LimitClassification::kNoFullyMatching;
    case LimitPruneOutcome::kPrunedToZero:
      return LimitClassification::kPrunedToZero;
    case LimitPruneOutcome::kPrunedToOne:
      return LimitClassification::kPrunedToOne;
    case LimitPruneOutcome::kPrunedToMany:
      return LimitClassification::kPrunedToMany;
  }
  return LimitClassification::kUnsupportedShape;
}

}  // namespace

/// Per-query gather compilation state — the single-scan analog of the
/// engine's CompileContext, mirrored step for step so the global scan set
/// evolves exactly as a single engine's would.
struct ShardCoordinator::GatherCompile {
  PruningStats stats;
  QueryResult* result = nullptr;
  std::shared_ptr<Table> table;
  const ShardMap* map = nullptr;

  GatherSourceOp* gather = nullptr;
  FilterPruneResult filter_result;
  std::map<const PlanNode*, HashAggregateOp*> agg_ops;
  std::vector<std::unique_ptr<TopKPruner>> pruners;

  struct PendingTopK {
    const PlanNode* scan_node = nullptr;
    const PlanNode* agg_node = nullptr;
    std::string scan_column;
    TopKPruner* pruner = nullptr;
    int64_t k = 0;
    bool descending = true;
  };
  std::vector<PendingTopK> pending_topk;

  /// Cross-shard level bookkeeping (filled during the scan compile).
  std::vector<uint8_t> summary_pruned;
  int64_t summary_pruned_partitions = 0;

  /// Traced queries only: one ProfileNode per gather-side operator, with
  /// every pruning counter attributed to the gather source node.
  QueryProfile* profile = nullptr;
  std::vector<Operator*> profiled_ops;
  ProfileNode* gather_node = nullptr;

  PendingTopK* FindPendingForScan(const PlanNode* scan_node) {
    for (auto& p : pending_topk) {
      if (p.scan_node == scan_node) return &p;
    }
    return nullptr;
  }
};

ShardCoordinator::ShardCoordinator(Catalog* catalog, ShardExecConfig config)
    : catalog_(catalog),
      config_(std::move(config)),
      fallback_(catalog, config_.engine) {
  config_.num_shards = std::max<size_t>(1, config_.num_shards);
  shard_engines_.reserve(config_.num_shards);
  for (size_t s = 0; s < config_.num_shards; ++s) {
    shard_engines_.push_back(
        std::make_unique<Engine>(catalog, config_.engine));
  }
}

ShardCoordinator::~ShardCoordinator() = default;

const ShardMap& ShardCoordinator::MapFor(const std::string& name,
                                         const Table& table) {
  auto it = map_cache_.find(name);
  if (it == map_cache_.end() ||
      it->second.table_instance() != table.instance_id()) {
    // First sight, or DML swapped the table object: (re)build from the new
    // version's metadata.
    it = map_cache_
             .insert_or_assign(
                 name, ShardMap::Build(table, config_.num_shards,
                                       config_.policy))
             .first;
  }
  return it->second;
}

Result<OperatorPtr> ShardCoordinator::CompileGather(const PlanPtr& plan,
                                                    GatherCompile* ctx) {
  const EngineConfig& config = config_.engine;
  switch (plan->kind) {
    case PlanNode::Kind::kScan: {
      const std::shared_ptr<Table>& table = ctx->table;
      if (plan->predicate) {
        Status s = BindExpr(plan->predicate, table->schema());
        if (!s.ok()) return s;
      }
      ScanSet full = table->FullScanSet();
      ctx->stats.total_partitions += static_cast<int64_t>(full.size());

      FilterPruneResult filter_result;
      const bool compile_time_pruning =
          config.enable_filter_pruning &&
          config.filter_pruning_phase == FilterPruningPhase::kCompileTime;
      if (compile_time_pruning) {
        ScanSet input = full;
        if (plan->predicate) {
          // Cross-shard pruning first: one merged-zone-map probe per shard.
          // Merged stats are monotone (they admit everything any member
          // admits), so a probe-excluded shard's partitions are exactly
          // partitions the per-partition pass below would have pruned
          // anyway — removing them up front changes no counter, it only
          // spares the metadata work and, crucially, the shard contact.
          FilterPruner probe(plan->predicate, config.filter);
          const ShardMap& map = *ctx->map;
          for (size_t s = 0; s < map.num_shards(); ++s) {
            if (map.shard_partitions(s).empty()) continue;
            if (probe.CanPruneFromStats(map.shard_summary(s),
                                        map.shard_rows(s))) {
              ctx->summary_pruned[s] = 1;
              ctx->summary_pruned_partitions +=
                  static_cast<int64_t>(map.shard_partitions(s).size());
            }
          }
          if (ctx->summary_pruned_partitions > 0) {
            std::vector<PartitionId> remaining;
            remaining.reserve(full.size());
            for (PartitionId pid : full) {
              if (!ctx->summary_pruned[map.shard_of(pid)]) {
                remaining.push_back(pid);
              }
            }
            input = ScanSet(std::move(remaining));
          }
        }
        FilterPruner pruner(plan->predicate, config.filter);
        filter_result = pruner.Prune(*table, input);
        filter_result.pruned += ctx->summary_pruned_partitions;
        filter_result.input_partitions = static_cast<int64_t>(full.size());
        ctx->stats.pruned_by_filter += filter_result.pruned;
      } else {
        filter_result.scan_set = full;
        filter_result.input_partitions = static_cast<int64_t>(full.size());
        if (!plan->predicate) {
          for (PartitionId pid : full) {
            filter_result.fully_matching.push_back(pid);
            filter_result.fully_matching_rows +=
                table->partition_metadata(pid).row_count();
          }
        }
      }

      auto op = std::make_unique<GatherSourceOp>(table, filter_result.scan_set,
                                                 &ctx->stats);
      if (ctx->profile != nullptr) {
        ProfileNode* node = ctx->profile->NewNode("Gather", plan->table);
        // Compile-time attribution: the whole sharded query's partitions
        // and filter prunes (cross-shard exclusions included) are this
        // node's — runtime deltas and the shard counters follow later.
        node->pruning.total_partitions += static_cast<int64_t>(full.size());
        node->pruning.pruned_by_filter += filter_result.pruned;
        op->set_profile(node);
        op->set_profile_stats(&node->pruning);
        ctx->gather_node = node;
        ctx->profiled_ops.push_back(op.get());
      }
      if (auto* pending = ctx->FindPendingForScan(plan.get())) {
        op->AttachTopKPruner(pending->pruner);
        ScanSet prepared = pending->pruner->Prepare(
            *table, op->scan_set(), filter_result.fully_matching);
        op->ReplaceScanSet(std::move(prepared));
      }
      ctx->gather = op.get();
      ctx->filter_result = std::move(filter_result);
      return OperatorPtr(std::move(op));
    }

    case PlanNode::Kind::kProject: {
      auto child = CompileGather(plan->child, ctx);
      if (!child.ok()) return child.status();
      OperatorPtr input = std::move(child).value();
      for (const auto& e : plan->exprs) {
        Status s = BindExpr(e, input->output_schema());
        if (!s.ok()) return s;
      }
      ProfileNode* child_node = input->profile();
      auto project = std::make_unique<ProjectOp>(std::move(input), plan->exprs,
                                                 plan->names);
      if (ctx->profile != nullptr) {
        ProfileNode* node = ctx->profile->NewNode(
            "Project", std::to_string(plan->exprs.size()) + " exprs");
        if (child_node != nullptr) node->children.push_back(child_node);
        project->set_profile(node);
        ctx->profiled_ops.push_back(project.get());
      }
      return OperatorPtr(std::move(project));
    }

    case PlanNode::Kind::kLimit: {
      const PlanNode* target = TraceLimitTarget(plan->child);
      auto child = CompileGather(plan->child, ctx);
      if (!child.ok()) return child.status();
      OperatorPtr input = std::move(child).value();
      if (config.enable_limit_pruning) {
        if (target == nullptr) {
          ctx->result->limit_class = LimitClassification::kUnsupportedShape;
        } else {
          LimitPruneResult res = LimitPruner::Prune(
              *ctx->table, ctx->filter_result,
              plan->limit_k + plan->limit_offset);
          ctx->gather->ReplaceScanSet(res.scan_set);
          ctx->stats.pruned_by_limit += res.pruned;
          if (ctx->gather_node != nullptr) {
            ctx->gather_node->pruning.pruned_by_limit += res.pruned;
          }
          ctx->result->limit_class = MapOutcome(res.outcome);
        }
      }
      ProfileNode* child_node = input->profile();
      auto limit = std::make_unique<LimitOp>(std::move(input), plan->limit_k,
                                             plan->limit_offset);
      if (ctx->profile != nullptr) {
        ProfileNode* node = ctx->profile->NewNode(
            "Limit", "k=" + std::to_string(plan->limit_k) + " offset=" +
                         std::to_string(plan->limit_offset));
        if (child_node != nullptr) node->children.push_back(child_node);
        limit->set_profile(node);
        ctx->profiled_ops.push_back(limit.get());
      }
      return OperatorPtr(std::move(limit));
    }

    case PlanNode::Kind::kTopK: {
      GatherTrace trace;
      TopKPruner* pruner = nullptr;
      if (config.enable_topk_pruning) {
        trace = TraceColumn(*ctx->table, plan->child, plan->order_column);
        if (trace.scan != nullptr) {
          TopKPrunerConfig pcfg;
          pcfg.k = plan->limit_k;
          pcfg.descending = plan->descending;
          pcfg.order_strategy = config.topk_order_strategy;
          pcfg.boundary_init = config.topk_boundary_init;
          pcfg.inclusive_updates = !trace.via_aggregate;
          auto col = ctx->table->schema().FindColumn(trace.column);
          ctx->pruners.push_back(
              std::make_unique<TopKPruner>(pcfg, col.value()));
          pruner = ctx->pruners.back().get();
          GatherCompile::PendingTopK pending;
          pending.scan_node = trace.scan;
          pending.agg_node = trace.agg_node;
          pending.scan_column = trace.column;
          pending.pruner = pruner;
          pending.k = plan->limit_k;
          pending.descending = plan->descending;
          ctx->pending_topk.push_back(pending);
          ctx->result->topk_pruning_attached = true;
        }
      }

      auto child = CompileGather(plan->child, ctx);
      if (!child.ok()) return child.status();
      OperatorPtr input = std::move(child).value();

      auto idx = input->output_schema().FindColumn(plan->order_column);
      if (!idx.has_value()) {
        return Status::NotFound("no order column " + plan->order_column);
      }
      TopKPruner* publisher = pruner;
      if (trace.agg_node != nullptr) {
        publisher = nullptr;
        auto agg_it = ctx->agg_ops.find(trace.agg_node);
        if (agg_it != ctx->agg_ops.end()) {
          const auto& gcols = trace.agg_node->group_columns;
          auto git = std::find(gcols.begin(), gcols.end(), plan->order_column);
          if (git != gcols.end()) {
            agg_it->second->EnableGroupLimit(
                static_cast<size_t>(git - gcols.begin()), plan->descending,
                plan->limit_k, pruner);
          }
        }
      }
      ProfileNode* child_node = input->profile();
      auto topk = std::make_unique<TopKOp>(std::move(input), idx.value(),
                                           plan->descending, plan->limit_k,
                                           publisher);
      if (ctx->profile != nullptr) {
        ProfileNode* node = ctx->profile->NewNode(
            "TopK", plan->order_column + " k=" + std::to_string(plan->limit_k) +
                        (plan->descending ? " desc" : " asc"));
        if (child_node != nullptr) node->children.push_back(child_node);
        topk->set_profile(node);
        ctx->profiled_ops.push_back(topk.get());
      }
      return OperatorPtr(std::move(topk));
    }

    case PlanNode::Kind::kSort: {
      auto child = CompileGather(plan->child, ctx);
      if (!child.ok()) return child.status();
      OperatorPtr input = std::move(child).value();
      auto idx = input->output_schema().FindColumn(plan->order_column);
      if (!idx.has_value()) {
        return Status::NotFound("no order column " + plan->order_column);
      }
      ProfileNode* child_node = input->profile();
      auto sort = std::make_unique<SortOp>(std::move(input), idx.value(),
                                           plan->descending);
      if (ctx->profile != nullptr) {
        ProfileNode* node = ctx->profile->NewNode(
            "Sort",
            plan->order_column + (plan->descending ? " desc" : " asc"));
        if (child_node != nullptr) node->children.push_back(child_node);
        sort->set_profile(node);
        ctx->profiled_ops.push_back(sort.get());
      }
      return OperatorPtr(std::move(sort));
    }

    case PlanNode::Kind::kAggregate: {
      auto child = CompileGather(plan->child, ctx);
      if (!child.ok()) return child.status();
      OperatorPtr input = std::move(child).value();
      std::vector<size_t> group_cols;
      for (const auto& name : plan->group_columns) {
        auto idx = input->output_schema().FindColumn(name);
        if (!idx.has_value()) return Status::NotFound("no column " + name);
        group_cols.push_back(idx.value());
      }
      std::vector<AggSpec> aggs;
      for (const auto& spec : plan->aggregates) {
        AggSpec a;
        a.func = spec.func;
        a.name = spec.output_name;
        if (spec.func != AggFunc::kCount) {
          auto idx = input->output_schema().FindColumn(spec.column);
          if (!idx.has_value()) {
            return Status::NotFound("no column " + spec.column);
          }
          a.column = idx.value();
        }
        aggs.push_back(std::move(a));
      }
      ProfileNode* child_node = input->profile();
      auto agg = std::make_unique<HashAggregateOp>(
          std::move(input), std::move(group_cols), std::move(aggs));
      ctx->agg_ops[plan.get()] = agg.get();
      if (ctx->profile != nullptr) {
        ProfileNode* node = ctx->profile->NewNode(
            "HashAggregate",
            "groups=" + std::to_string(plan->group_columns.size()) +
                " aggs=" + std::to_string(plan->aggregates.size()));
        if (child_node != nullptr) node->children.push_back(child_node);
        agg->set_profile(node);
        ctx->profiled_ops.push_back(agg.get());
      }
      return OperatorPtr(std::move(agg));
    }

    case PlanNode::Kind::kJoin:
      break;  // unreachable: SupportedShape rejected joins
  }
  return Status::Internal("unsupported plan node in gather compile");
}

Result<QueryResult> ShardCoordinator::Execute(
    const PlanPtr& plan, const std::atomic<bool>* cancel) {
  return Execute(plan, cancel, nullptr, 0);
}

Result<QueryResult> ShardCoordinator::Execute(const PlanPtr& plan,
                                              const std::atomic<bool>* cancel,
                                              Trace* trace) {
  return Execute(plan, cancel, trace, 0);
}

Result<QueryResult> ShardCoordinator::Execute(const PlanPtr& plan,
                                              const std::atomic<bool>* cancel,
                                              Trace* trace,
                                              int64_t deadline_ns) {
  if (!plan) return Status::InvalidArgument("null plan");
  last_exec_ = ExecInfo{};

  size_t scans = 0;
  const bool supported =
      SupportedShape(plan, &scans) && scans == 1 &&
      config_.engine.predicate_cache == nullptr &&
      (!config_.engine.enable_filter_pruning ||
       config_.engine.filter_pruning_phase == FilterPruningPhase::kCompileTime);
  if (!supported) {
    ExecuteOptions opts;
    opts.cancel = cancel;
    opts.trace = trace;
    opts.deadline_ns = deadline_ns;
    return fallback_.Execute(plan, opts);
  }
  return ExecuteSharded(plan, FindScan(plan), cancel, trace, deadline_ns);
}

Result<QueryResult> ShardCoordinator::ExecuteSharded(
    const PlanPtr& plan, const PlanNode* scan_node,
    const std::atomic<bool>* cancel, Trace* trace, int64_t deadline_ns) {
  // Snapshot the one referenced table: the whole scatter — gather compile
  // and every shard sub-query — executes against this version, so DML
  // stays snapshot-atomic across shards.
  std::shared_ptr<Table> table = catalog_->GetTable(scan_node->table);
  if (!table) {
    ExecuteOptions fopts;
    fopts.cancel = cancel;
    fopts.trace = trace;
    fopts.deadline_ns = deadline_ns;
    return fallback_.Execute(plan, fopts);
  }
  const ShardMap& map = MapFor(scan_node->table, *table);
  static Counter* const queries_sharded =
      MetricsRegistry::Instance().GetCounter("shard.queries_sharded");
  queries_sharded->Add();

  auto t0 = std::chrono::steady_clock::now();
  QueryResult result;
  GatherCompile ctx;
  ctx.result = &result;
  ctx.table = table;
  ctx.map = &map;
  ctx.summary_pruned.assign(map.num_shards(), 0);

  // Traced execution: the coordinator owns the "query" root span; each
  // contacted shard's sub-query records into its own child trace, stitched
  // under the scatter span once the scatter joins.
  ScopedSpan query_span(trace, "query");
  std::shared_ptr<QueryProfile> profile;
  if (trace != nullptr) {
    profile = std::make_shared<QueryProfile>();
    ctx.profile = profile.get();
  }
  const uint32_t compile_span =
      trace != nullptr ? trace->BeginSpan("compile", query_span.id()) : 0;

  auto compiled = CompileGather(plan, &ctx);
  if (trace != nullptr) {
    trace->AnnotateInt(compile_span, "total_partitions",
                       ctx.stats.total_partitions);
    trace->AnnotateInt(compile_span, "pruned_by_filter",
                       ctx.stats.pruned_by_filter);
    trace->AnnotateInt(compile_span, "pruned_by_limit",
                       ctx.stats.pruned_by_limit);
    trace->EndSpan(compile_span);
  }
  if (!compiled.ok()) return compiled.status();
  OperatorPtr root = std::move(compiled).value();
  last_exec_.sharded = true;
  last_exec_.summary_pruned = ctx.summary_pruned;

  // Slice the final global scan set by shard ownership. Partitions already
  // skippable under the initialized top-k boundary (§5.4) are dropped
  // before contact — boundaries only ever tighten, so the gather's own
  // pre-partition check is guaranteed to skip them too.
  TopKPruner* pruner = ctx.gather->topk_pruner();
  const ScanSet& final_set = ctx.gather->scan_set();
  std::vector<ScanSet> slices(map.num_shards());
  for (PartitionId pid : final_set) {
    if (pruner != nullptr && pruner->ShouldSkip(*table, pid)) continue;
    // Scatter-edge contract, debug-checked: every scattered partition id is
    // a real partition of the shared snapshot, and lands exactly on the
    // shard that owns it — the sub-queries' slice-subset DCHECK on the
    // engine side and the fragment realignment below both build on this.
    SNOW_DCHECK_LT(static_cast<size_t>(pid), table->num_partitions());
    SNOW_DCHECK_LT(map.shard_of(pid), map.num_shards());
    slices[map.shard_of(pid)].Add(pid);
  }

  last_exec_.contacted.assign(map.num_shards(), 0);
  std::vector<size_t> contacted;
  for (size_t s = 0; s < map.num_shards(); ++s) {
    if (!slices[s].empty()) {
      last_exec_.contacted[s] = 1;
      contacted.push_back(s);
    }
  }
  last_exec_.shards_contacted = contacted.size();
  ctx.stats.shards_total += static_cast<int64_t>(map.assigned_shards());
  ctx.stats.shards_pruned +=
      static_cast<int64_t>(map.assigned_shards() - contacted.size());
  if (ctx.gather_node != nullptr) {
    // The cross-shard level belongs to the gather source too: it is the
    // scan-side of this query, where all partition work is accounted.
    ctx.gather_node->pruning.shards_total +=
        static_cast<int64_t>(map.assigned_shards());
    ctx.gather_node->pruning.shards_pruned +=
        static_cast<int64_t>(map.assigned_shards() - contacted.size());
  }
  static Counter* const scatter_fanout =
      MetricsRegistry::Instance().GetCounter("shard.scatter_fanout");
  static Counter* const shards_pruned_counter =
      MetricsRegistry::Instance().GetCounter("shard.shards_pruned");
  scatter_fanout->Add(static_cast<int64_t>(contacted.size()));
  shards_pruned_counter->Add(
      static_cast<int64_t>(map.assigned_shards() - contacted.size()));

  if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
    return Status::Cancelled("query cancelled before execution");
  }
  if (DeadlinePassed(deadline_ns)) {
    return Status::DeadlineExceeded("deadline passed before scatter");
  }

  // Scatter: a bare scan sub-plan (all other operators run gather-side)
  // over exactly the shard's slice, against the shared snapshot, with the
  // caller's cancel flag fanned out to every sub-query. The predicate was
  // bound by the gather compile above; the scan-set override makes the
  // shard engines skip re-binding, so concurrent sub-queries share the
  // tree read-only.
  PlanPtr sub_plan = ScanPlan(scan_node->table, scan_node->predicate);
  std::map<std::string, std::shared_ptr<Table>> snapshot;
  snapshot[scan_node->table] = table;

  // Specialization tier, eager mode: compile the scatter predicate ONCE on
  // the coordinator (it was bound by the gather compile above) and share
  // the program with every shard sub-query via
  // ExecuteOptions::compiled_filters — the same sharing model as the
  // pre-bound predicate tree. The program is stamped with the snapshot's
  // table instance; sub-engines attach it only when their snapshot agrees,
  // and never compile locally on the override path. The threshold-based
  // promotion path does not apply here: sharded scatters bypass the
  // predicate cache entirely.
  std::map<std::string, std::shared_ptr<const jit::CompiledPredicate>>
      compiled_filters;
  if (config_.engine.exec.specialize &&
      config_.engine.exec.specialize_after == 0 &&
      scan_node->predicate != nullptr) {
    const uint32_t specialize_span =
        trace != nullptr ? trace->BeginSpan("compile.specialize", compile_span)
                         : 0;
    jit::CompileResult compiled_filter =
        jit::CompilePredicate(scan_node->predicate, table->schema());
    if (trace != nullptr) {
      trace->AnnotateInt(
          specialize_span, "bytecode_len",
          compiled_filter.program != nullptr
              ? static_cast<int64_t>(compiled_filter.program->code.size())
              : 0);
      trace->AnnotateInt(specialize_span, "fallback_terms",
                         compiled_filter.fallback_terms);
      trace->AnnotateInt(specialize_span, "reject_reason",
                         static_cast<int64_t>(compiled_filter.reason));
      trace->EndSpan(specialize_span);
    }
    if (compiled_filter.program != nullptr) {
      compiled_filter.program->table_instance = table->instance_id();
      compiled_filters[scan_node->table] = std::move(compiled_filter.program);
    }
  }

  std::vector<Result<QueryResult>> shard_results;
  shard_results.reserve(contacted.size());
  for (size_t i = 0; i < contacted.size(); ++i) {
    shard_results.emplace_back(Status::Internal("shard sub-query unrun"));
  }
  // Traced scatter: each sub-query records into its own Trace (scatter
  // threads never touch the parent), stitched under the scatter span after
  // the joins below — the join is the only synchronization needed.
  const uint32_t scatter_span =
      trace != nullptr ? trace->BeginSpan("scatter", query_span.id()) : 0;
  std::vector<std::unique_ptr<Trace>> shard_traces;
  if (trace != nullptr) {
    shard_traces.reserve(contacted.size());
    for (size_t i = 0; i < contacted.size(); ++i) {
      shard_traces.push_back(std::make_unique<Trace>());
    }
  }
  // Concurrency contract (lock-free by structure, so nothing here is
  // mutex-annotated): each scatter thread i writes only shard_results[i] —
  // pre-sized above, never resized while threads run — and reads only
  // shared state that is frozen for the scatter's duration (slices,
  // snapshot, sub_plan, the pre-bound predicate tree). The retry budget and
  // retry tally are shared atomics. The joins below are the sole
  // synchronization edge back to the coordinator thread.
  static Counter* const retries_counter =
      MetricsRegistry::Instance().GetCounter("shard.retries");
  static Counter* const retry_exhausted_counter =
      MetricsRegistry::Instance().GetCounter("shard.retry_exhausted");
  std::atomic<int> retry_budget{config_.retry.retry_budget};
  std::atomic<int64_t> total_retries{0};
  auto run_shard = [&](size_t i) {
    const size_t s = contacted[i];
    std::map<std::string, ScanSet> overrides;
    overrides[scan_node->table] = slices[s];
    ExecuteOptions opts;
    opts.cancel = cancel;
    opts.tables = &snapshot;
    opts.scan_sets = &overrides;
    opts.collect_batch_rows = true;
    opts.deadline_ns = deadline_ns;
    if (!compiled_filters.empty()) opts.compiled_filters = &compiled_filters;
    if (!shard_traces.empty()) opts.trace = shard_traces[i].get();
    // Transient-failure retry loop. Each attempt executes against the same
    // snapshot and scan-set slice, so a successful retry is byte-identical
    // to a first-try success: the fragments gathered below cannot tell the
    // attempts apart.
    for (int attempt = 1;; ++attempt) {
      Result<QueryResult> sub = [&]() -> Result<QueryResult> {
        // Injection sites: the sub-query is lost on the way out (launch) or
        // its response is lost on the way back (complete — the work was
        // done, the answer is gone). Both are the retryable wire faults a
        // real scatter sees.
        if (SNOW_FAILPOINT("shard.scatter_launch")) {
          return InjectedFault("shard.scatter_launch");
        }
        Result<QueryResult> r = shard_engines_[s]->Execute(sub_plan, opts);
        if (r.ok() && SNOW_FAILPOINT("shard.scatter_complete")) {
          return InjectedFault("shard.scatter_complete");
        }
        return r;
      }();
      if (sub.ok() || !IsRetryable(sub.status().code()) ||
          (cancel != nullptr && cancel->load(std::memory_order_relaxed)) ||
          DeadlinePassed(deadline_ns)) {
        shard_results[i] = std::move(sub);
        return;
      }
      if (attempt >= config_.retry.max_attempts ||
          retry_budget.fetch_sub(1, std::memory_order_acq_rel) <= 0) {
        // Out of attempts or out of per-query budget: surface the
        // underlying transient error untouched.
        retry_exhausted_counter->Add();
        shard_results[i] = std::move(sub);
        return;
      }
      const int64_t backoff_us = RetryBackoffUs(config_.retry, attempt);
      if (opts.trace != nullptr) {
        // The retry lands in this shard's own sub-trace (stitched under the
        // scatter span later), next to the failed attempt's spans.
        const uint32_t span = opts.trace->BeginSpan("shard.retry");
        opts.trace->AnnotateInt(span, "attempt", attempt);
        opts.trace->AnnotateInt(span, "backoff_us", backoff_us);
        opts.trace->AnnotateStr(span, "error", sub.status().ToString());
        opts.trace->EndSpan(span);
      }
      total_retries.fetch_add(1, std::memory_order_relaxed);
      retries_counter->Add();
      if (backoff_us > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
      }
    }
  };
  if (contacted.size() == 1) {
    // Single-survivor fast path: no thread handoff, the sub-query runs on
    // the coordinator's own thread.
    run_shard(0);
  } else if (!contacted.empty()) {
    // Dedicated scatter threads — never the shared worker pool, whose
    // workers the sub-queries' own morsels need (a sub-query blocking on a
    // pool occupied by the sub-queries themselves would deadlock).
    std::vector<std::thread> threads;
    threads.reserve(contacted.size());
    for (size_t i = 0; i < contacted.size(); ++i) {
      threads.emplace_back(run_shard, i);
    }
    last_exec_.scatter_threads = threads.size();
    for (auto& t : threads) t.join();
  }
  last_exec_.retries = total_retries.load(std::memory_order_relaxed);
  result.shard_retries = last_exec_.retries;
  if (trace != nullptr) {
    trace->AnnotateInt(scatter_span, "fanout",
                       static_cast<int64_t>(contacted.size()));
    trace->AnnotateInt(scatter_span, "threads",
                       static_cast<int64_t>(last_exec_.scatter_threads));
    trace->AnnotateInt(scatter_span, "retries", last_exec_.retries);
    for (auto& sub_trace : shard_traces) {
      trace->MergeChildTrace(sub_trace.get(), scatter_span);
    }
    trace->EndSpan(scatter_span);
  }

  if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
    return Status::Cancelled("query cancelled");
  }
  if (DeadlinePassed(deadline_ns)) {
    return Status::DeadlineExceeded("deadline exceeded during scatter");
  }
  std::unordered_map<PartitionId, std::vector<Row>> fragments;
  for (size_t i = 0; i < contacted.size(); ++i) {
    if (!shard_results[i].ok()) return shard_results[i].status();
    QueryResult& sub = shard_results[i].value();
    const ScanSet& slice = slices[contacted[i]];
    if (sub.batch_rows.size() != slice.size()) {
      return Status::Internal("shard sub-query fragment misalignment");
    }
    size_t row = 0;
    for (size_t b = 0; b < sub.batch_rows.size(); ++b) {
      std::vector<Row>& frag = fragments[slice[b]];
      frag.reserve(sub.batch_rows[b]);
      for (size_t r = 0; r < sub.batch_rows[b]; ++r) {
        frag.push_back(std::move(sub.rows[row++]));
      }
    }
  }
  ctx.gather->set_fragments(&fragments);

  result.scan_set_bytes =
      static_cast<int64_t>(ctx.gather->scan_set().SerializedBytes());

  // Gather: replay the fragments through the real operator pipeline, in
  // global scan-set order — identical operator state evolution, identical
  // rows, identical stats.
  ScopedSpan gather_span(trace, "gather", query_span.id());
  if (trace != nullptr) {
    for (Operator* op : ctx.profiled_ops) {
      op->set_trace(trace, gather_span.id());
    }
  }
  // Injection site: the gathered fragments are lost before replay (a
  // coordinator-side buffer fault). The scatter work is gone with them —
  // this is the one site where a fault costs a whole query's worth of
  // sub-query work, which is exactly what the chaos oracle should see.
  if (SNOW_FAILPOINT("shard.gather_replay")) {
    return InjectedFault("shard.gather_replay");
  }
  root->Open();
  Batch batch;
  while (root->Next(&batch)) {
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) break;
    if (DeadlinePassed(deadline_ns)) break;
    for (auto& row : batch.rows) result.rows.push_back(std::move(row));
  }
  root->Close();
  result.wall_ms = MsSince(t0);

  if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
    return Status::Cancelled("query cancelled");
  }
  if (DeadlinePassed(deadline_ns)) {
    return Status::DeadlineExceeded("deadline exceeded during gather");
  }

  result.schema = root->output_schema();
  result.stats = ctx.stats;
  // Same soundness audit as the unsharded engine, now covering the shard
  // counters too (shards_pruned <= shards_total, etc.).
  result.stats.DCheckInvariants();

  if (profile != nullptr) {
    profile->root = root->profile();
    // The sub-engines' pipeline-task counts were folded into this trace by
    // MergeChildTrace, so the profile covers the whole scatter.
    profile->stage_tasks = trace->stage_tasks();
    profile->barrier_tasks = trace->barrier_tasks();
    result.profile = profile;
#if SNOW_DCHECK_IS_ON
    // Coordinator-side reconciliation: every pruning counter — partition
    // levels and the cross-shard level — was attributed to the gather
    // source node, so the profile's sum is the query's stats, exactly.
    const PruningStats sum = profile->SumPruning();
    SNOW_DCHECK_EQ(sum.total_partitions, result.stats.total_partitions);
    SNOW_DCHECK_EQ(sum.pruned_by_filter, result.stats.pruned_by_filter);
    SNOW_DCHECK_EQ(sum.pruned_by_limit, result.stats.pruned_by_limit);
    SNOW_DCHECK_EQ(sum.pruned_by_join, result.stats.pruned_by_join);
    SNOW_DCHECK_EQ(sum.pruned_by_topk, result.stats.pruned_by_topk);
    SNOW_DCHECK_EQ(sum.scanned_partitions, result.stats.scanned_partitions);
    SNOW_DCHECK_EQ(sum.scanned_rows, result.stats.scanned_rows);
    SNOW_DCHECK_EQ(sum.speculative_loads, result.stats.speculative_loads);
    SNOW_DCHECK_EQ(sum.shards_total, result.stats.shards_total);
    SNOW_DCHECK_EQ(sum.shards_pruned, result.stats.shards_pruned);
#endif
  }
  return result;
}

}  // namespace shard
}  // namespace snowprune
