#ifndef SNOWPRUNE_SHARD_COORDINATOR_H_
#define SNOWPRUNE_SHARD_COORDINATOR_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "exec/engine.h"
#include "shard/shard_map.h"
#include "storage/catalog.h"

namespace snowprune {
namespace shard {

/// Retry policy for transient shard sub-query failures. A failed shard is
/// re-executed against the same snapshot and scan-set slice, so a
/// successful retry is byte-identical to a first-try success; terminal
/// (non-retryable) failures surface immediately.
struct RetryPolicy {
  /// Attempts per shard, first try included. 1 disables retries.
  int max_attempts = 3;
  /// Total retries allowed across all shards of one query (a storm of
  /// failures gives up instead of multiplying scatter work).
  int retry_budget = 8;
  /// Backoff before retry r (1-based) is min(max_backoff_us,
  /// base_backoff_us << (r-1)) ± 25% deterministic jitter. The defaults are
  /// deliberately tiny: in-process retries shouldn't stall a query, and
  /// tests need storms to finish fast.
  int64_t base_backoff_us = 100;
  int64_t max_backoff_us = 10000;
  /// Seed for the jitter hash (see RetryBackoffUs).
  uint64_t jitter_seed = 42;
};

/// The exact backoff-with-jitter schedule the coordinator sleeps between
/// attempts — exposed so tests can assert the sequence is deterministic.
/// `retry` is 1-based (the delay before the first retry).
int64_t RetryBackoffUs(const RetryPolicy& policy, int retry);

/// Sharded-execution sizing: how many shards the catalog is partitioned
/// into and how partitions are placed. `engine` is the template for the
/// per-shard engines and the unsharded fallback engine alike (pool
/// injection, pruning toggles, ...).
struct ShardExecConfig {
  size_t num_shards = 1;
  ShardPolicy policy = ShardPolicy::kRange;
  EngineConfig engine;
  RetryPolicy retry;
};

/// Scatter-gather query execution over a sharded catalog — the paper's §4
/// scheduler setting: pruning consults partition metadata *before* any
/// worker is contacted, and a shard whose merged zone maps exclude the
/// predicate never sees the query at all (the new top level of the pruning
/// hierarchy, metered as PruningStats::shards_{total,pruned}).
///
/// Execution phases for a supported plan (a join-free single-scan chain of
/// scan / project / limit / top-k / sort / aggregate):
///
///  1. compile once: the coordinator runs the engine's compile-time pruning
///     sequence globally — cross-shard merged-zone-map exclusion, then §3
///     filter pruning, §5.3/§5.4 top-k ordering + boundary initialization,
///     §4 LIMIT pruning — producing one final global scan set.
///  2. scatter: the surviving scan set is sliced by shard ownership
///     (partitions already skippable under the initialized top-k boundary
///     are dropped before contact); each surviving shard's engine executes
///     a bare scan sub-plan over exactly its slice, against the one shared
///     table snapshot, on the shared worker pool.
///  3. gather: per-partition row fragments are replayed, in global scan-set
///     order, through the *real* operator pipeline (limit / top-k / sort /
///     aggregate) with the top-k boundary consulted before each partition —
///     the same consumer-side merge discipline the parallel engine uses, so
///     rows AND per-table PruningStats are byte-identical to a single-engine
///     serial run at every (shard count × thread count), with the shard
///     counters strictly additive on top.
///
/// Unsupported shapes (joins, multi-scan plans) and configurations the
/// scatter compile cannot mirror (runtime-phase filter pruning, a predicate
/// cache) fall back to an ordinary single engine — trivially identical.
///
/// Thread safety: a coordinator executes one query at a time (the query
/// service gives each driver thread its own coordinator); the shard
/// sub-queries it scatters run concurrently on internal threads.
class ShardCoordinator {
 public:
  /// Per-execution observability (valid until the next Execute call).
  struct ExecInfo {
    bool sharded = false;  ///< Scatter/gather path (vs single-engine fallback).
    size_t shards_contacted = 0;
    /// Threads spawned for the scatter: 0 when ≤1 shard survived pruning
    /// (the single-survivor fast path runs on the calling thread).
    size_t scatter_threads = 0;
    /// Per shard: excluded by the merged-zone-map probe (cross-shard level).
    std::vector<uint8_t> summary_pruned;
    /// Per shard: executed a sub-query (its slice of the final scan set,
    /// minus init-boundary skips, was non-empty).
    std::vector<uint8_t> contacted;
    /// Shard sub-query re-executions after transient faults (summed over
    /// shards; 0 on a fault-free run).
    int64_t retries = 0;
  };

  ShardCoordinator(Catalog* catalog, ShardExecConfig config);
  ~ShardCoordinator();

  /// Compiles, prunes the shard map, scatters, gathers. `cancel` fans out
  /// to every in-flight shard sub-query (they share the flag) and is polled
  /// between coordinator phases.
  Result<QueryResult> Execute(const PlanPtr& plan,
                              const std::atomic<bool>* cancel = nullptr);

  /// Traced execution: records compile/scatter/gather spans on `trace`,
  /// gives every contacted shard's sub-query its own child trace (stitched
  /// under the scatter span once the scatter joins), and attaches an
  /// EXPLAIN ANALYZE profile to the result whose per-node pruning counters
  /// — all attributed to the gather source, where the coordinator meters —
  /// reconcile exactly against the query's PruningStats. Null `trace`
  /// behaves like the plain overload.
  Result<QueryResult> Execute(const PlanPtr& plan,
                              const std::atomic<bool>* cancel, Trace* trace);

  /// Full-control entry point: adds a per-query deadline (absolute
  /// steady-clock ns, 0 = none). The deadline fans out to every shard
  /// sub-query and is checked between coordinator phases and before each
  /// retry backoff; past it the query returns kDeadlineExceeded.
  Result<QueryResult> Execute(const PlanPtr& plan,
                              const std::atomic<bool>* cancel, Trace* trace,
                              int64_t deadline_ns);

  const ExecInfo& last_exec() const { return last_exec_; }
  const ShardExecConfig& config() const { return config_; }

 private:
  struct GatherCompile;

  Result<QueryResult> ExecuteSharded(const PlanPtr& plan,
                                     const PlanNode* scan_node,
                                     const std::atomic<bool>* cancel,
                                     Trace* trace, int64_t deadline_ns);
  Result<OperatorPtr> CompileGather(const PlanPtr& plan, GatherCompile* ctx);
  /// The cached shard map for the table version, rebuilt after DML swapped
  /// the table object (instance_id mismatch).
  const ShardMap& MapFor(const std::string& name, const Table& table);

  Catalog* catalog_;
  ShardExecConfig config_;
  Engine fallback_;
  std::vector<std::unique_ptr<Engine>> shard_engines_;
  std::map<std::string, ShardMap> map_cache_;
  ExecInfo last_exec_;
};

}  // namespace shard
}  // namespace snowprune

#endif  // SNOWPRUNE_SHARD_COORDINATOR_H_
