#ifndef SNOWPRUNE_SHARD_SHARD_MAP_H_
#define SNOWPRUNE_SHARD_SHARD_MAP_H_

#include <cstdint>
#include <vector>

#include "storage/table.h"

namespace snowprune {
namespace shard {

/// How a table's micro-partitions are placed onto shards.
enum class ShardPolicy {
  /// Contiguous partition-id ranges, balanced by (zone-map) row count.
  /// Partition ids follow ingestion order, so ranges are effectively time
  /// ranges — the natural warehouse placement, and the one that keeps each
  /// shard's merged zone maps tight on clustered/sorted layouts (which is
  /// what makes the cross-shard pruning level bite).
  kRange,
  /// Hash placement: partitions are scattered across shards by a multiplicative
  /// hash of their id. Balances load for any layout, at the cost of every
  /// shard's merged zone maps spanning the whole domain (little cross-shard
  /// pruning — the same trade Layout::kRandom makes at the partition level).
  kHash,
};

const char* ToString(ShardPolicy policy);

/// The shard map of one table version: which shard owns each micro-partition,
/// plus one merged zone map per shard — min of member mins, max of member
/// maxes, summed null/row counts, has_stats ANDed — so the coordinator can
/// exclude a whole shard with one metadata probe (the cross-shard pruning
/// level). Built from metadata only (no loads); a map is valid for exactly
/// one Table::instance_id() — DML replaces the table object, and the
/// coordinator rebuilds the map on the new version.
class ShardMap {
 public:
  static ShardMap Build(const Table& table, size_t num_shards,
                        ShardPolicy policy);

  size_t num_shards() const { return shards_.size(); }
  uint64_t table_instance() const { return table_instance_; }

  /// The shard owning `pid` (every partition is owned by exactly one shard).
  size_t shard_of(PartitionId pid) const { return owner_[pid]; }

  /// The shard's partitions, ascending by id. May be empty (more shards than
  /// partitions); empty shards are not assigned and never counted.
  const std::vector<PartitionId>& shard_partitions(size_t s) const {
    return shards_[s].partitions;
  }
  /// Merged zone maps over the shard's partitions, one ColumnStats per
  /// schema column. Empty for unassigned shards.
  const std::vector<ColumnStats>& shard_summary(size_t s) const {
    return shards_[s].summary;
  }
  /// Total (zone-map) rows across the shard's partitions.
  int64_t shard_rows(size_t s) const { return shards_[s].rows; }

  /// Shards with at least one partition.
  size_t assigned_shards() const { return assigned_; }

 private:
  struct Shard {
    std::vector<PartitionId> partitions;
    std::vector<ColumnStats> summary;
    int64_t rows = 0;
  };

  std::vector<Shard> shards_;
  std::vector<uint32_t> owner_;  ///< partition id -> shard index.
  uint64_t table_instance_ = 0;
  size_t assigned_ = 0;
};

}  // namespace shard
}  // namespace snowprune

#endif  // SNOWPRUNE_SHARD_SHARD_MAP_H_
