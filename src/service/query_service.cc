#include "service/query_service.h"

#include <algorithm>
#include <utility>

#include "common/clock.h"
#include "common/metrics.h"
#include "exec/profile.h"

namespace snowprune {
namespace service {

namespace {

/// Process-wide service instruments (one registry entry covers every
/// QueryService instance; the per-instance view is ServiceStats).
struct ServiceMetrics {
  Counter* submitted;
  Counter* rejected;
  Counter* completed;
  Counter* ok;
  Counter* failed;
  Counter* cancelled;
  Counter* deadline_exceeded;
  Counter* shed_expired;
  Histogram* queue_ms;
  Histogram* exec_ms;
};

ServiceMetrics& GetServiceMetrics() {
  static ServiceMetrics m{
      MetricsRegistry::Instance().GetCounter("service.submitted"),
      MetricsRegistry::Instance().GetCounter("service.rejected"),
      MetricsRegistry::Instance().GetCounter("service.completed"),
      MetricsRegistry::Instance().GetCounter("service.ok"),
      MetricsRegistry::Instance().GetCounter("service.failed"),
      MetricsRegistry::Instance().GetCounter("service.cancelled"),
      MetricsRegistry::Instance().GetCounter("service.deadline_exceeded"),
      MetricsRegistry::Instance().GetCounter("service.shed_expired"),
      MetricsRegistry::Instance().GetHistogram(
          "service.queue_ms",
          {0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1000.0}),
      MetricsRegistry::Instance().GetHistogram(
          "service.exec_ms",
          {0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1000.0})};
  return m;
}

}  // namespace

// ---------------------------------------------------------------------------
// Handle
// ---------------------------------------------------------------------------

Result<QueryResult> QueryService::Handle::Await() {
  if (!state_) return Status::Internal("empty query handle");
  MutexLock lock(&state_->mutex);
  while (!state_->done) state_->cv.Wait(&state_->mutex);
  if (state_->consumed) {
    return Status::Internal("query result already consumed by a prior Await");
  }
  state_->consumed = true;
  return std::move(state_->result);
}

bool QueryService::Handle::done() const {
  if (!state_) return false;
  MutexLock lock(&state_->mutex);
  return state_->done;
}

double QueryService::Handle::queue_ms() const {
  if (!state_) return 0.0;
  MutexLock lock(&state_->mutex);
  return state_->queue_ms;
}

std::chrono::steady_clock::time_point QueryService::Handle::done_at() const {
  if (!state_) return {};
  MutexLock lock(&state_->mutex);
  return state_->done_at;
}

void QueryService::Handle::Cancel() {
  if (state_) state_->cancel.store(true, std::memory_order_release);
}

const Trace* QueryService::Handle::trace() const {
  return state_ ? state_->trace.get() : nullptr;
}

std::shared_ptr<const QueryProfile> QueryService::Handle::profile() const {
  if (!state_) return nullptr;
  MutexLock lock(&state_->mutex);
  return state_->profile;
}

// ---------------------------------------------------------------------------
// QueryService
// ---------------------------------------------------------------------------

QueryService::QueryService(Catalog* catalog, QueryServiceConfig config)
    : config_(std::move(config)),
      scan_pool_(config_.num_threads > 0 ? config_.num_threads
                                         : ThreadPool::DefaultConcurrency()) {
  if (config_.max_in_flight == 0) {
    config_.max_in_flight = std::max<size_t>(2, scan_pool_.num_threads());
  }
  // Per-query morsel-window budgeting: an equal share of the service-wide
  // in-flight-morsel budget, so the head-of-line queue pressure any single
  // query (read: one huge scan) can put in front of everyone else is capped
  // at its share regardless of its scan-set size. Under sharded execution
  // a query fans out into up to num_shards concurrent sub-scans, each with
  // its own window, so the share divides by that fan-out too — otherwise
  // one sharded query would claim num_shards budget shares.
  if (config_.engine.exec.morsel_window > 0) {
    per_query_window_ = config_.engine.exec.morsel_window;
  } else {
    const size_t budget = config_.morsel_window_budget > 0
                              ? config_.morsel_window_budget
                              : 4 * scan_pool_.num_threads();
    const size_t fan_out =
        config_.max_in_flight * std::max<size_t>(1, config_.num_shards);
    per_query_window_ = std::max<size_t>(2, budget / fan_out);
  }
  engines_.reserve(config_.max_in_flight);
  drivers_.reserve(config_.max_in_flight);
  for (size_t i = 0; i < config_.max_in_flight; ++i) {
    EngineConfig cfg = config_.engine;
    cfg.exec.pool = &scan_pool_;
    cfg.exec.morsel_window = per_query_window_;
    if (config_.num_shards > 1) {
      shard::ShardExecConfig scfg;
      scfg.num_shards = config_.num_shards;
      scfg.policy = config_.shard_policy;
      scfg.engine = cfg;
      scfg.retry = config_.retry;
      coordinators_.push_back(
          std::make_unique<shard::ShardCoordinator>(catalog, scfg));
    } else {
      engines_.push_back(std::make_unique<Engine>(catalog, cfg));
    }
  }
  for (size_t i = 0; i < config_.max_in_flight; ++i) {
    drivers_.emplace_back([this, i] { DriverLoop(i); });
  }
}

QueryService::~QueryService() {
  std::deque<Task> orphaned;
  {
    MutexLock lock(&mutex_);
    shutting_down_ = true;
    orphaned.swap(queue_);
  }
  work_available_.NotifyAll();
  for (Task& task : orphaned) {
    Finish(task.state, Status::Unavailable("query service shutting down"),
           MsSince(task.submitted_at));
  }
  for (std::thread& d : drivers_) d.join();
}

void QueryService::Finish(const std::shared_ptr<Handle::State>& state,
                          Result<QueryResult> result, double queue_ms) {
  {
    MutexLock lock(&state->mutex);
    if (result.ok()) state->profile = result.value().profile;
    state->result = std::move(result);
    state->queue_ms = queue_ms;
    state->done_at = std::chrono::steady_clock::now();
    state->done = true;
  }
  state->cv.NotifyAll();
}

Result<QueryService::Handle> QueryService::Submit(PlanPtr plan) {
  if (!plan) return Status::InvalidArgument("null plan");
  Task task;
  task.plan = std::move(plan);
  task.state = std::make_shared<Handle::State>();
  task.submitted_at = std::chrono::steady_clock::now();
  if (config_.default_deadline.count() > 0) {
    task.deadline_ns = SteadyNowNs() + config_.default_deadline.count();
  }
  Handle handle(task.state);
  std::vector<Task> expired;
  Status admitted = Status::OK();
  {
    MutexLock lock(&mutex_);
    if (shutting_down_) {
      return Status::Unavailable("query service shutting down");
    }
    // Eager shedding (the "timer check in Submit"): queued queries whose
    // deadline already passed are dead weight — drop them before they count
    // against the capacity bound, so a live submission is never rejected in
    // favor of a corpse ahead of it. Their handles are finished below,
    // outside the service lock.
    if (config_.default_deadline.count() > 0 && !queue_.empty()) {
      const int64_t now_ns = SteadyNowNs();
      ServiceMetrics& metrics = GetServiceMetrics();
      for (auto it = queue_.begin(); it != queue_.end();) {
        if (it->deadline_ns != 0 && now_ns >= it->deadline_ns) {
          ++stats_.completed;
          ++stats_.deadline_exceeded;
          ++stats_.shed_expired;
          const double waited_ms = MsSince(it->submitted_at);
          stats_.queue_wait_ms.Add(waited_ms);
          metrics.completed->Add();
          metrics.deadline_exceeded->Add();
          metrics.shed_expired->Add();
          metrics.queue_ms->Record(waited_ms);
          expired.push_back(std::move(*it));
          it = queue_.erase(it);
        } else {
          ++it;
        }
      }
    }
    if (config_.queue_capacity > 0 &&
        queue_.size() >= config_.queue_capacity) {
      ++stats_.rejected;
      GetServiceMetrics().rejected->Add();
      admitted = Status::ResourceExhausted("admission queue full");
    } else {
      // Trace sampling: every trace_every-th admitted query (the first one
      // included) carries a Trace; the driver threads the pointer through
      // to the engine / coordinator.
      if (config_.trace_every > 0 &&
          stats_.submitted % static_cast<int64_t>(config_.trace_every) == 0) {
        task.state->trace = std::make_unique<Trace>();
      }
      queue_.push_back(std::move(task));
      ++stats_.submitted;
      GetServiceMetrics().submitted->Add();
      stats_.peak_queue_depth = std::max(
          stats_.peak_queue_depth, static_cast<int64_t>(queue_.size()));
    }
  }
  // Outside the service lock: complete the shed queries' handles (Finish
  // takes the per-handle lock and wakes waiters) and wake a driver for the
  // admitted one.
  for (Task& t : expired) {
    Finish(t.state,
           Status::DeadlineExceeded("deadline expired in admission queue"),
           MsSince(t.submitted_at));
  }
  // Shedding can empty the queue with no driver involved; a concurrent
  // Drain() must get to re-check its predicate.
  if (!expired.empty()) idle_.NotifyAll();
  if (!admitted.ok()) return admitted;
  work_available_.NotifyOne();
  return handle;
}

Result<QueryResult> QueryService::Execute(PlanPtr plan) {
  Result<Handle> handle = Submit(std::move(plan));
  if (!handle.ok()) return handle.status();
  return handle.value().Await();
}

void QueryService::DriverLoop(size_t driver_index) {
  Engine* engine =
      engines_.empty() ? nullptr : engines_[driver_index].get();
  shard::ShardCoordinator* coordinator =
      coordinators_.empty() ? nullptr : coordinators_[driver_index].get();
  for (;;) {
    Task task;
    {
      MutexLock lock(&mutex_);
      while (!shutting_down_ && queue_.empty()) {
        work_available_.Wait(&mutex_);
      }
      if (shutting_down_) return;  // the destructor drained the queue
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
      stats_.peak_in_flight = std::max(stats_.peak_in_flight,
                                       static_cast<int64_t>(in_flight_));
    }
    const double queue_ms = MsSince(task.submitted_at);
    // A query cancelled while still queued is finished without executing;
    // an executing one polls the flag through its engine and aborts at the
    // next scan delivery.
    Trace* trace = task.state->trace.get();
    const auto exec_t0 = std::chrono::steady_clock::now();
    bool shed_expired = false;
    bool executed = false;
    Result<QueryResult> result = [&]() -> Result<QueryResult> {
      if (task.state->cancel.load(std::memory_order_acquire)) {
        return Status::Cancelled("query cancelled while queued");
      }
      // Lazy expiry at dequeue: a query whose deadline passed while it
      // waited is shed here, before it touches an engine or the shared
      // pool — expiry costs one clock read, not a pool share.
      if (DeadlinePassed(task.deadline_ns)) {
        shed_expired = true;
        return Status::DeadlineExceeded("deadline expired in admission queue");
      }
      executed = true;
      if (coordinator != nullptr) {
        return coordinator->Execute(task.plan, &task.state->cancel, trace,
                                    task.deadline_ns);
      }
      ExecuteOptions opts;
      opts.cancel = &task.state->cancel;
      opts.trace = trace;
      opts.deadline_ns = task.deadline_ns;
      return engine->Execute(task.plan, opts);
    }();
    const double exec_ms = MsSince(exec_t0);
    ServiceMetrics& metrics = GetServiceMetrics();
    metrics.completed->Add();
    metrics.queue_ms->Record(queue_ms);
    // Queries that never reached an engine (cancelled while queued, shed on
    // an expired deadline) contribute queue wait but no execution latency —
    // an exec_ms sample of ~0 would just dilute the percentiles.
    if (executed) metrics.exec_ms->Record(exec_ms);
    {
      // Completion counters settle before the waiter is released, so a
      // client reading stats() right after Await() sees its own query
      // completed...
      MutexLock lock(&mutex_);
      ++stats_.completed;
      stats_.queue_wait_ms.Add(queue_ms);
      if (executed) stats_.exec_ms.Add(exec_ms);
      if (result.ok()) {
        ++stats_.ok;
        metrics.ok->Add();
      } else if (result.status().code() == StatusCode::kCancelled) {
        ++stats_.cancelled;
        metrics.cancelled->Add();
      } else if (result.status().code() == StatusCode::kDeadlineExceeded) {
        // Not a failure: the service kept its latency promise by giving up.
        ++stats_.deadline_exceeded;
        metrics.deadline_exceeded->Add();
        if (shed_expired) {
          ++stats_.shed_expired;
          metrics.shed_expired->Add();
        }
      } else {
        ++stats_.failed;
        metrics.failed->Add();
      }
    }
    Finish(task.state, std::move(result), queue_ms);
    {
      // ...while the in-flight slot — what Drain() watches — only clears
      // after the handle is done, so Drain returning guarantees every
      // admitted query's Handle reports done.
      MutexLock lock(&mutex_);
      --in_flight_;
    }
    idle_.NotifyAll();
  }
}

void QueryService::Drain() {
  MutexLock lock(&mutex_);
  while (!queue_.empty() || in_flight_ != 0) idle_.Wait(&mutex_);
}

ServiceStats QueryService::stats() const {
  ServiceStats s;
  {
    MutexLock lock(&mutex_);
    s = stats_;
  }
  // The pool tracks its own high-water at Submit time; surfacing it here
  // keeps the gauge exact without a sampler thread.
  s.peak_pool_queue_depth =
      static_cast<int64_t>(scan_pool_.queue_depth_high_water());
  return s;
}

size_t QueryService::in_flight() const {
  MutexLock lock(&mutex_);
  return in_flight_;
}

size_t QueryService::queue_depth() const {
  MutexLock lock(&mutex_);
  return queue_.size();
}

}  // namespace service
}  // namespace snowprune
