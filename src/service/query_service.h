#ifndef SNOWPRUNE_SERVICE_QUERY_SERVICE_H_
#define SNOWPRUNE_SERVICE_QUERY_SERVICE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/stats_collector.h"
#include "common/status.h"
#include "common/trace.h"
#include "exec/engine.h"
#include "exec/parallel/thread_pool.h"
#include "shard/coordinator.h"
#include "storage/catalog.h"

namespace snowprune {
namespace service {

/// Service sizing and admission policy.
struct QueryServiceConfig {
  /// Width of the ONE scan-worker pool shared by every query the service
  /// runs (the paper's §2 "highly parallel execution layer", now also the
  /// inter-query layer). 0 = hardware concurrency.
  size_t num_threads = 0;
  /// Admission bound: queries executing at once (each on its own driver
  /// thread; their scans share the worker pool). Work beyond the bound
  /// queues FIFO. 0 = max(2, pool width).
  size_t max_in_flight = 0;
  /// Bounded admission queue: Submit is rejected with ResourceExhausted
  /// when this many queries are already waiting. 0 = unbounded.
  size_t queue_capacity = 0;
  /// Sizing target for morsels buffered/in flight across concurrent
  /// queries: each admitted query gets an equal share (budget /
  /// max_in_flight, floored at 2) as its per-SCAN morsel window, so one
  /// huge scan can only keep roughly its share of the shared pool's queue
  /// busy and point lookups behind it stay bounded. Note this is a
  /// per-query target, not a hard service-wide cap — the floor of 2 and
  /// multi-scan plans (each scan gets the window) can push the aggregate
  /// past the stated budget. 0 = 4 * pool width. Ignored when
  /// `engine.exec.morsel_window` is explicitly set (that value then
  /// applies per query).
  size_t morsel_window_budget = 0;
  /// Shards the catalog is partitioned into. <= 1 runs every query on a
  /// plain per-driver engine (exactly the unsharded service); > 1 gives
  /// each driver a ShardCoordinator instead — queries are compiled once,
  /// pruned against the shard map (the cross-shard level), scattered to
  /// surviving shards and gathered, with rows and per-table PruningStats
  /// still byte-identical to a single-engine serial run.
  size_t num_shards = 1;
  /// Partition placement when num_shards > 1.
  shard::ShardPolicy shard_policy = shard::ShardPolicy::kRange;
  /// Trace sampling: every `trace_every`-th submitted query (the first one
  /// included) executes with a per-query Trace and gets an EXPLAIN ANALYZE
  /// profile attached to its handle. 1 traces every query; 0 (default)
  /// traces none — the untraced path skips every metering site.
  size_t trace_every = 0;
  /// Per-query deadline, measured from Submit. Zero (default) = none.
  /// Queued queries whose deadline expires are shed without ever consuming
  /// pool share (lazily at dequeue, eagerly when a later Submit scans the
  /// queue); executing queries ride the cancellation plumbing and release
  /// their pool share within ~a morsel window. Either way the query
  /// completes with kDeadlineExceeded, counted in
  /// ServiceStats::deadline_exceeded (and shed_expired for pre-execution
  /// sheds).
  std::chrono::nanoseconds default_deadline{0};
  /// Per-shard sub-query retry policy (sharded configs; see RetryPolicy).
  shard::RetryPolicy retry;
  /// Template for the per-driver engines. `exec.pool`, `exec.num_threads`
  /// and (unless explicitly set) `exec.morsel_window` are overridden by the
  /// service; everything else (pruning toggles, predicate cache, ...)
  /// applies to every query as configured.
  EngineConfig engine;
};

/// Monotonic service counters (all under one lock; read via stats()).
struct ServiceStats {
  int64_t submitted = 0;   ///< Admitted into the queue.
  int64_t rejected = 0;    ///< Bounced by the bounded queue.
  /// Finished, any way. Invariant (asserted in service tests):
  /// completed == ok + failed + cancelled + deadline_exceeded.
  int64_t completed = 0;
  int64_t ok = 0;          ///< Completed with an OK result.
  int64_t failed = 0;      ///< Completed with another non-OK status.
  int64_t cancelled = 0;   ///< Completed via Handle::Cancel.
  /// Completed with kDeadlineExceeded — shed from the queue or stopped
  /// mid-execution. Deliberately NOT folded into `failed`: a deadline miss
  /// is the service keeping its latency promise, not a query bug.
  int64_t deadline_exceeded = 0;
  /// Subset of deadline_exceeded that never started executing (shed while
  /// queued, zero pool share consumed).
  int64_t shed_expired = 0;
  int64_t peak_in_flight = 0;    ///< Max queries executing at once.
  int64_t peak_queue_depth = 0;  ///< Max queries waiting at once.
  /// Deepest the shared worker pool's task backlog ever got (morsels +
  /// pipeline-stage barriers across every in-flight query) — the measured
  /// worst case of the head-of-line pressure the per-query morsel-window
  /// budget is meant to bound. Sampled inside ThreadPool::Submit, so no
  /// backlog spike can dodge it.
  int64_t peak_pool_queue_depth = 0;
  /// Per-query latency distributions (every completed query contributes,
  /// traced or not): admission-queue wait and engine execution time. Use
  /// Percentile(p) for p50/p95/p99 tail reporting.
  StatsCollector queue_wait_ms;
  StatsCollector exec_ms;
};

/// A concurrent query service: ONE shared scan-worker pool, a FIFO
/// admission queue, and a bounded set of driver threads executing many
/// queries at once against a shared Catalog (and, when configured, a shared
/// PredicateCache). This is the paper's production setting in miniature —
/// millions of repetitive queries arriving concurrently is what makes §8.2
/// predicate caching pay off — layered on the per-query parallel engine.
///
/// Correctness bar: a query's result and PruningStats are byte-identical to
/// a serial solo run of the same query, no matter how many other queries
/// are in flight (the per-query engines already guarantee parallel == serial
/// and all cross-query state — catalog, cache, top-k boundaries — is either
/// per-query or internally synchronized). The one caveat is shared-cache
/// interplay: a PredicateCache hit legitimately shrinks the scan set, so
/// solo-vs-service stats identity holds for cache-less configs (or equal
/// cache states).
///
/// Plans are bound to table schemas during execution; a PlanPtr may be
/// submitted again after its result arrives, but must not be in flight
/// twice concurrently.
class QueryService {
 public:
  /// Completion handle for a submitted query. Copyable (shared state);
  /// Await() is single-shot — it blocks until the query finishes and moves
  /// the result out.
  class Handle {
   public:
    /// An empty handle (Result<Handle> plumbing); every meaningful handle
    /// comes from Submit. Await on an empty handle returns an error.
    Handle() = default;
    /// Blocks until the query completes and returns its result. The second
    /// call on the same underlying submission returns an error (the result
    /// was moved out).
    Result<QueryResult> Await();
    bool done() const;
    /// Milliseconds the query waited in the admission queue before a driver
    /// picked it up. Valid once done.
    double queue_ms() const;
    /// When the query finished (steady clock). Valid once done; open-loop
    /// drivers use it for arrival→completion latency without having to
    /// observe the completion themselves.
    std::chrono::steady_clock::time_point done_at() const;

    /// Requests cancellation. Queued queries complete with
    /// Status::Cancelled when a driver reaches them (without executing);
    /// an executing query's engine aborts at its next scan delivery, its
    /// scans abandon their schedulers, and its share of the shared worker
    /// pool frees up within about one morsel window. Idempotent; a no-op
    /// once the query finished.
    void Cancel();

    /// The query's span trace (sampled queries only; null otherwise —
    /// see QueryServiceConfig::trace_every). Owned by the handle's shared
    /// state. Only read it once done(): earlier reads race with the
    /// executing driver.
    const Trace* trace() const;
    /// The query's EXPLAIN ANALYZE profile (sampled queries only; null
    /// otherwise, and null for queries that failed). Valid once done().
    std::shared_ptr<const QueryProfile> profile() const;

   private:
    friend class QueryService;
    /// Shared completion state. `cancel` is an atomic flag polled lock-free
    /// by the executing engine; everything else is SNOW_GUARDED_BY(mutex)
    /// and compile-checked.
    struct State {
      mutable Mutex mutex;
      CondVar cv;
      std::atomic<bool> cancel{false};
      bool done SNOW_GUARDED_BY(mutex) = false;
      bool consumed SNOW_GUARDED_BY(mutex) = false;
      double queue_ms SNOW_GUARDED_BY(mutex) = 0.0;
      std::chrono::steady_clock::time_point done_at SNOW_GUARDED_BY(mutex);
      Result<QueryResult> result SNOW_GUARDED_BY(mutex) =
          Status::Internal("pending");
      /// Set at Submit for sampled queries, written by the executing
      /// driver, stable (read-only) once `done` — the cv hand-off is the
      /// synchronization edge, so no guard annotation.
      std::unique_ptr<Trace> trace;
      std::shared_ptr<QueryProfile> profile SNOW_GUARDED_BY(mutex);
    };
    explicit Handle(std::shared_ptr<State> state)
        : state_(std::move(state)) {}
    std::shared_ptr<State> state_;
  };

  QueryService(Catalog* catalog, QueryServiceConfig config);
  /// Fails all still-queued queries with Unavailable, waits for the
  /// executing ones, then tears down drivers and the worker pool.
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Admission: enqueues the query FIFO. Fails with ResourceExhausted when
  /// the bounded queue is full and Unavailable after shutdown began.
  Result<Handle> Submit(PlanPtr plan) SNOW_EXCLUDES(mutex_);

  /// Closed-loop convenience: Submit + Await on the calling thread.
  Result<QueryResult> Execute(PlanPtr plan);

  /// Blocks until every admitted query has completed.
  void Drain() SNOW_EXCLUDES(mutex_);

  ServiceStats stats() const SNOW_EXCLUDES(mutex_);
  /// Queries currently executing (dequeued, not yet completed).
  size_t in_flight() const SNOW_EXCLUDES(mutex_);
  /// Queries waiting in the admission queue.
  size_t queue_depth() const SNOW_EXCLUDES(mutex_);

  size_t pool_width() const { return scan_pool_.num_threads(); }
  /// The per-query morsel window the budget resolved to.
  size_t per_query_morsel_window() const { return per_query_window_; }
  ThreadPool* scan_pool() { return &scan_pool_; }

 private:
  struct Task {
    PlanPtr plan;
    std::shared_ptr<Handle::State> state;
    std::chrono::steady_clock::time_point submitted_at;
    /// Absolute steady-clock deadline in ns (0 = none), fixed at Submit.
    int64_t deadline_ns = 0;
  };

  void DriverLoop(size_t driver_index) SNOW_EXCLUDES(mutex_);
  static void Finish(const std::shared_ptr<Handle::State>& state,
                     Result<QueryResult> result, double queue_ms);

  QueryServiceConfig config_;
  ThreadPool scan_pool_;
  size_t per_query_window_ = 0;
  /// One engine per driver thread (engines are single-query at a time);
  /// all point at the shared catalog, pool, and predicate cache.
  std::vector<std::unique_ptr<Engine>> engines_;
  /// One coordinator per driver thread when num_shards > 1 (empty
  /// otherwise); each wraps per-shard engines over the same shared pool.
  std::vector<std::unique_ptr<shard::ShardCoordinator>> coordinators_;

  mutable Mutex mutex_;
  CondVar work_available_;
  CondVar idle_;
  std::deque<Task> queue_ SNOW_GUARDED_BY(mutex_);
  size_t in_flight_ SNOW_GUARDED_BY(mutex_) = 0;
  bool shutting_down_ SNOW_GUARDED_BY(mutex_) = false;
  ServiceStats stats_ SNOW_GUARDED_BY(mutex_);

  std::vector<std::thread> drivers_;
};

}  // namespace service
}  // namespace snowprune

#endif  // SNOWPRUNE_SERVICE_QUERY_SERVICE_H_
