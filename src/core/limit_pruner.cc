#include "core/limit_pruner.h"

#include <algorithm>

namespace snowprune {

const char* ToString(LimitPruneOutcome outcome) {
  switch (outcome) {
    case LimitPruneOutcome::kAlreadyMinimal: return "already-minimal";
    case LimitPruneOutcome::kNoFullyMatching: return "no-fully-matching";
    case LimitPruneOutcome::kPrunedToZero: return "pruned-to-0";
    case LimitPruneOutcome::kPrunedToOne: return "pruned-to-1";
    case LimitPruneOutcome::kPrunedToMany: return "pruned-to->1";
  }
  return "?";
}

LimitPruneResult LimitPruner::Prune(const Table& table,
                                    const FilterPruneResult& filtered,
                                    int64_t limit_k) {
  LimitPruneResult result;

  if (limit_k == 0) {
    // LIMIT 0 (schema-probing BI queries, §4.1 footnote): nothing to read.
    result.outcome = LimitPruneOutcome::kPrunedToZero;
    result.pruned = static_cast<int64_t>(filtered.scan_set.size());
    return result;
  }

  if (filtered.scan_set.size() <= 1) {
    result.scan_set = filtered.scan_set;
    result.outcome = LimitPruneOutcome::kAlreadyMinimal;
    return result;
  }

  if (filtered.fully_matching_rows < limit_k) {
    // Cannot prune; still move fully-matching partitions to the front so
    // execution reaches k qualifying rows as early as possible.
    result.outcome = LimitPruneOutcome::kNoFullyMatching;
    for (PartitionId pid : filtered.fully_matching) result.scan_set.Add(pid);
    for (PartitionId pid : filtered.scan_set) {
      if (std::find(filtered.fully_matching.begin(),
                    filtered.fully_matching.end(),
                    pid) == filtered.fully_matching.end()) {
        result.scan_set.Add(pid);
      }
    }
    return result;
  }

  // Greedy minimal cover: biggest fully-matching partitions first, until
  // their row counts reach k.
  std::vector<PartitionId> fully = filtered.fully_matching;
  std::sort(fully.begin(), fully.end(), [&](PartitionId a, PartitionId b) {
    return table.partition_metadata(a).row_count() >
           table.partition_metadata(b).row_count();
  });
  int64_t covered = 0;
  for (PartitionId pid : fully) {
    if (covered >= limit_k) break;
    result.scan_set.Add(pid);
    covered += table.partition_metadata(pid).row_count();
  }
  result.pruned = static_cast<int64_t>(filtered.scan_set.size()) -
                  static_cast<int64_t>(result.scan_set.size());
  result.outcome = result.scan_set.size() == 1
                       ? LimitPruneOutcome::kPrunedToOne
                       : LimitPruneOutcome::kPrunedToMany;
  return result;
}

}  // namespace snowprune
