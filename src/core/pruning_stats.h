#ifndef SNOWPRUNE_CORE_PRUNING_STATS_H_
#define SNOWPRUNE_CORE_PRUNING_STATS_H_

#include <cstdint>

#include "common/check.h"

namespace snowprune {

/// Per-query pruning accounting, aggregated across all table scans of the
/// query. Ratios are reported relative to the total number of partitions the
/// query would otherwise process (the paper's Figure 4 convention).
struct PruningStats {
  int64_t total_partitions = 0;   ///< Before any pruning, all scans.
  int64_t pruned_by_filter = 0;   ///< §3 compile-time filter pruning.
  int64_t pruned_by_limit = 0;    ///< §4 LIMIT pruning.
  int64_t pruned_by_join = 0;     ///< §6 join pruning (probe side).
  int64_t pruned_by_topk = 0;     ///< §5 runtime top-k pruning.
  int64_t scanned_partitions = 0; ///< Actually loaded from storage.
  int64_t scanned_rows = 0;
  /// Partitions a parallel scan worker loaded ahead of the consumer that the
  /// serial engine would have skipped under its (later, tighter) top-k
  /// boundary. Such loads are *not* counted in scanned_partitions — the
  /// partition is accounted as pruned_by_topk, keeping every other counter
  /// identical to serial execution — but the wasted background work is worth
  /// observing. Always 0 when num_threads == 1.
  int64_t speculative_loads = 0;
  /// Cross-shard pruning level (sharded scatter-gather execution): shards a
  /// query's scans were assigned to, and how many of those were never
  /// contacted — excluded by the shard's merged zone maps, emptied by
  /// LIMIT/top-k pruning, or skippable under the initialized top-k boundary.
  /// Strictly additive on top of the per-partition counters above: a sharded
  /// run's partition-level stats stay byte-identical to a single-engine
  /// serial run, with the shard counters layered on. Always 0 for unsharded
  /// execution.
  int64_t shards_total = 0;
  int64_t shards_pruned = 0;

  double ShardRatio() const {
    if (shards_total == 0) return 0.0;
    return static_cast<double>(shards_pruned) /
           static_cast<double>(shards_total);
  }

  int64_t TotalPruned() const {
    return pruned_by_filter + pruned_by_limit + pruned_by_join +
           pruned_by_topk;
  }

  /// Fraction of the query's partitions that were never loaded.
  double OverallRatio() const {
    if (total_partitions == 0) return 0.0;
    return static_cast<double>(TotalPruned()) /
           static_cast<double>(total_partitions);
  }

  double FilterRatio() const { return Ratio(pruned_by_filter); }
  double LimitRatio() const { return Ratio(pruned_by_limit); }
  double JoinRatio() const { return Ratio(pruned_by_join); }
  double TopKRatio() const { return Ratio(pruned_by_topk); }

  /// Debug-build soundness audit, called on every finished query's
  /// aggregated stats (engine and shard coordinator). The level counters
  /// can never exceed the work that existed: each pruning level claims
  /// distinct partitions, so their sum is bounded by the total, and scanned
  /// plus pruned cannot exceed the total either. (It may be *less* — a
  /// predicate-cache hit shrinks the scan set without any level's counter
  /// taking credit, so equality would be a false alarm.) Speculative loads
  /// are re-accounted top-k prunes, hence bounded by them; shard counters
  /// mirror the same containment one level up.
  void DCheckInvariants() const {
    SNOW_DCHECK_GE(total_partitions, 0);
    SNOW_DCHECK_GE(pruned_by_filter, 0);
    SNOW_DCHECK_GE(pruned_by_limit, 0);
    SNOW_DCHECK_GE(pruned_by_join, 0);
    SNOW_DCHECK_GE(pruned_by_topk, 0);
    SNOW_DCHECK_GE(scanned_partitions, 0);
    SNOW_DCHECK_GE(scanned_rows, 0);
    SNOW_DCHECK_GE(speculative_loads, 0);
    SNOW_DCHECK_LE(TotalPruned(), total_partitions);
    SNOW_DCHECK_LE(scanned_partitions + TotalPruned(), total_partitions);
    SNOW_DCHECK_LE(speculative_loads, pruned_by_topk);
    SNOW_DCHECK_GE(shards_total, 0);
    SNOW_DCHECK_GE(shards_pruned, 0);
    SNOW_DCHECK_LE(shards_pruned, shards_total);
  }

  void Merge(const PruningStats& other) {
    total_partitions += other.total_partitions;
    pruned_by_filter += other.pruned_by_filter;
    pruned_by_limit += other.pruned_by_limit;
    pruned_by_join += other.pruned_by_join;
    pruned_by_topk += other.pruned_by_topk;
    scanned_partitions += other.scanned_partitions;
    scanned_rows += other.scanned_rows;
    speculative_loads += other.speculative_loads;
    shards_total += other.shards_total;
    shards_pruned += other.shards_pruned;
  }

 private:
  double Ratio(int64_t pruned) const {
    if (total_partitions == 0) return 0.0;
    return static_cast<double>(pruned) / static_cast<double>(total_partitions);
  }
};

}  // namespace snowprune

#endif  // SNOWPRUNE_CORE_PRUNING_STATS_H_
