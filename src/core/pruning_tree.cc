#include "core/pruning_tree.h"

#include <algorithm>
#include <chrono>

namespace snowprune {

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

/// Internal tree node: a connective (And/Or) with reorderable children, or a
/// leaf holding a pruning predicate.
struct PruningTree::Node {
  enum class Kind { kAnd, kOr, kLeaf };
  Kind kind;
  ExprPtr leaf_expr;  // only for kLeaf
  std::vector<std::unique_ptr<Node>> children;
  PruneNodeMetrics metrics;
};

namespace {

std::unique_ptr<PruningTree::Node> BuildNode(const ExprPtr& expr);

std::unique_ptr<PruningTree::Node> BuildConnective(
    PruningTree::Node::Kind kind, const BoolConnectiveExpr& e) {
  auto node = std::make_unique<PruningTree::Node>();
  node->kind = kind;
  for (const auto& term : e.terms()) {
    node->children.push_back(BuildNode(term));
  }
  return node;
}

std::unique_ptr<PruningTree::Node> BuildNode(const ExprPtr& expr) {
  if (expr->kind() == ExprKind::kAnd) {
    return BuildConnective(PruningTree::Node::Kind::kAnd,
                           static_cast<const BoolConnectiveExpr&>(*expr));
  }
  if (expr->kind() == ExprKind::kOr) {
    return BuildConnective(PruningTree::Node::Kind::kOr,
                           static_cast<const BoolConnectiveExpr&>(*expr));
  }
  auto node = std::make_unique<PruningTree::Node>();
  node->kind = PruningTree::Node::Kind::kLeaf;
  node->leaf_expr = expr;
  return node;
}

}  // namespace

PruningTree::PruningTree(ExprPtr pruning_expr, PruningTreeConfig config)
    : root_(BuildNode(pruning_expr)), config_(config) {}

PruningTree::~PruningTree() = default;
PruningTree::PruningTree(PruningTree&&) noexcept = default;
PruningTree& PruningTree::operator=(PruningTree&&) noexcept = default;

BoolRange PruningTree::Evaluate(const std::vector<ColumnStats>& stats) {
  ++evaluations_;
  BoolRange result = EvalNode(root_.get(), stats);
  if (evaluations_ % static_cast<int64_t>(config_.reorder_interval) == 0) {
    if (config_.enable_reorder) ReorderNode(root_.get());
    if (config_.enable_cutoff) CutoffNode(root_.get(), /*parent_is_and=*/true);
  }
  return result;
}

BoolRange PruningTree::EvalNode(Node* node, const std::vector<ColumnStats>& stats) {
  if (node->metrics.disabled) {
    // A cut-off filter keeps every partition and can never establish
    // fully-matching: exactly BoolRange::Unknown().
    return BoolRange::Unknown();
  }
  if (node->kind == Node::Kind::kLeaf) {
    int64_t t0 = NowNs();
    BoolRange r = AnalyzePredicate(*node->leaf_expr, stats);
    node->metrics.time_ns += NowNs() - t0;
    ++node->metrics.evaluations;
    return r;
  }

  const bool is_and = node->kind == Node::Kind::kAnd;
  int64_t t0 = NowNs();
  BoolRange acc = BoolRange::Exactly(is_and);
  for (auto& child : node->children) {
    BoolRange r = EvalNode(child.get(), stats);
    if (is_and) {
      if (!r.can_true) ++child->metrics.decisive;  // alone prunes the partition
      acc = AndRanges(acc, r);
      if (!acc.can_true) break;  // short-circuit: partition proven prunable
    } else {
      if (r.can_true) ++child->metrics.decisive;  // alone prevents pruning
      acc = OrRanges(acc, r);
      // Short-circuit once pruning is impossible *and* fully-matching is
      // already ruled out; otherwise later terms may still flip can_false.
      if (acc.can_true && acc.can_false) break;
    }
  }
  node->metrics.time_ns += NowNs() - t0;
  ++node->metrics.evaluations;
  return acc;
}

void PruningTree::ReorderNode(Node* node) {
  if (node->kind == Node::Kind::kLeaf) return;
  for (auto& child : node->children) ReorderNode(child.get());
  // Both connectives want their most decisive-per-nanosecond child first:
  // for AND that is the filter most likely to prune, for OR the one most
  // likely to short-circuit the disjunction (§3.2). Stable sort keeps the
  // heuristic initial order among unobserved children.
  std::stable_sort(node->children.begin(), node->children.end(),
                   [](const std::unique_ptr<Node>& a,
                      const std::unique_ptr<Node>& b) {
                     if (a->metrics.disabled != b->metrics.disabled) {
                       return b->metrics.disabled;  // disabled children last
                     }
                     double score_a =
                         a->metrics.DecisiveRate() / a->metrics.AvgTimeNs();
                     double score_b =
                         b->metrics.DecisiveRate() / b->metrics.AvgTimeNs();
                     return score_a > score_b;
                   });
}

void PruningTree::CutoffNode(Node* node, bool parent_is_and) {
  if (node->kind == Node::Kind::kLeaf) {
    // §3.2: only filters below an AND may be removed; removing an OR branch
    // would mark every partition as potentially matching and poison the
    // whole disjunction.
    if (!parent_is_and || node->metrics.disabled) return;
    if (node->metrics.evaluations <
        static_cast<int64_t>(config_.cutoff_min_observations)) {
      return;
    }
    // Model the two §3.2 scenarios over the remaining scan set: keep pruning
    // (pay evaluation, save pruned-partition scans) vs stop (scan them all).
    double n = static_cast<double>(remaining_partitions_);
    double cost_keep = node->metrics.AvgTimeNs() * n;
    double benefit_keep =
        node->metrics.DecisiveRate() * n * config_.partition_scan_cost_ns;
    if (cost_keep > benefit_keep) node->metrics.disabled = true;
    return;
  }
  const bool is_and = node->kind == Node::Kind::kAnd;
  for (auto& child : node->children) CutoffNode(child.get(), is_and);
}

namespace {

void CountLeaves(const PruningTree::Node* node, size_t* total, size_t* disabled);

void DebugNode(const PruningTree::Node* node, int depth, std::string* out);

}  // namespace

size_t PruningTree::disabled_leaves() const {
  size_t total = 0, disabled = 0;
  CountLeaves(root_.get(), &total, &disabled);
  return disabled;
}

size_t PruningTree::num_leaves() const {
  size_t total = 0, disabled = 0;
  CountLeaves(root_.get(), &total, &disabled);
  return total;
}

std::string PruningTree::DebugString() const {
  std::string out;
  DebugNode(root_.get(), 0, &out);
  return out;
}

namespace {

void CountLeaves(const PruningTree::Node* node, size_t* total,
                 size_t* disabled) {
  if (node->kind == PruningTree::Node::Kind::kLeaf) {
    ++*total;
    if (node->metrics.disabled) ++*disabled;
    return;
  }
  for (const auto& child : node->children) {
    CountLeaves(child.get(), total, disabled);
  }
}

void DebugNode(const PruningTree::Node* node, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  switch (node->kind) {
    case PruningTree::Node::Kind::kAnd: out->append("AND"); break;
    case PruningTree::Node::Kind::kOr: out->append("OR"); break;
    case PruningTree::Node::Kind::kLeaf:
      out->append(node->leaf_expr->ToString());
      break;
  }
  char buf[128];
  std::snprintf(buf, sizeof(buf), "  [evals=%lld decisive=%.2f avg_ns=%.0f%s]\n",
                static_cast<long long>(node->metrics.evaluations),
                node->metrics.DecisiveRate(), node->metrics.AvgTimeNs(),
                node->metrics.disabled ? " CUTOFF" : "");
  out->append(buf);
  for (const auto& child : node->children) {
    DebugNode(child.get(), depth + 1, out);
  }
}

void CollectLeafOrder(const PruningTree::Node* node,
                      std::vector<std::string>* out) {
  if (node->kind == PruningTree::Node::Kind::kLeaf) {
    out->push_back(node->leaf_expr->ToString());
    return;
  }
  for (const auto& child : node->children) CollectLeafOrder(child.get(), out);
}

}  // namespace

std::vector<std::string> PruningTree::LeafOrder() const {
  std::vector<std::string> out;
  CollectLeafOrder(root_.get(), &out);
  return out;
}

}  // namespace snowprune
