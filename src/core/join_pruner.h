#ifndef SNOWPRUNE_CORE_JOIN_PRUNER_H_
#define SNOWPRUNE_CORE_JOIN_PRUNER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/value.h"
#include "storage/table.h"

namespace snowprune {

/// Build-side value summary variants (§6.1): "a trade-off between accuracy
/// and the memory size of the employed data structure".
enum class SummaryKind {
  kMinMax,    ///< Global min/max of the build keys; ~16 bytes, coarse.
  kRangeSet,  ///< Budgeted set of disjoint [lo,hi] ranges; the summary
              ///< Snowflake-style partition pruning relies on.
  kExactSet,  ///< Sorted distinct values; exact, unbounded size.
  kBloom,     ///< Classic bloom-join filter: answers point membership only,
              ///< so it reduces CPU per row but cannot prune partitions.
};

const char* ToString(SummaryKind kind);

/// A summary of all join-key values observed on the hash join's build side.
/// Shipped (conceptually over the network) to the probe side, where it is
/// overlapped with micro-partition min/max metadata (§6.1 steps 1-4).
///
/// Probabilistic in the paper's sense: MayContain*() may return true for
/// values the build side lacks (false positives keep partitions), but never
/// false for values it has — so join pruning never drops a joinable row.
class BuildSummary {
 public:
  virtual ~BuildSummary() = default;

  virtual SummaryKind kind() const = 0;
  /// Approximate wire size if shipped to another worker.
  virtual size_t SizeBytes() const = 0;
  /// May the build side contain any value in [lo, hi]?
  virtual bool MayContainInRange(const Value& lo, const Value& hi) const = 0;
  /// May the build side contain exactly `v`? (Row-level check.)
  virtual bool MayContain(const Value& v) const = 0;
  /// MayContain by precomputed HashValue — the columnar probe path already
  /// holds the key's hash, so the Bloom check reuses it instead of boxing
  /// the cell. Hash-based summaries override; others answer a conservative
  /// "maybe" (row-level checks are only ever an optimization).
  virtual bool MayContainHash(uint64_t hash) const {
    (void)hash;
    return true;
  }
  /// Number of distinct build values summarized.
  virtual int64_t num_values() const = 0;
};

/// Accumulates build-side keys and materializes a summary. NULL keys are
/// ignored (they never match an equi-join).
class SummaryBuilder {
 public:
  void Add(const Value& v);

  /// Exact merge for parallel build stages: appends `other`'s values after
  /// this builder's, preserving their order. A consumer that appends
  /// per-morsel partials in scan-set order reproduces the serial value
  /// sequence byte-for-byte, so every summary Build() — and therefore every
  /// §6 pruning decision — is identical to a serial build.
  void Append(SummaryBuilder&& other);

  /// Builds a summary of the requested kind. `budget_bytes` caps the size of
  /// kRangeSet (number of ranges) and kBloom (bit array); it is ignored for
  /// kMinMax and kExactSet.
  std::unique_ptr<BuildSummary> Build(SummaryKind kind,
                                      size_t budget_bytes = 1024) const;

  int64_t num_added() const { return static_cast<int64_t>(values_.size()); }

 private:
  std::vector<Value> values_;
};

/// Result of pruning a probe-side scan set against a build summary.
struct JoinPruneResult {
  ScanSet scan_set;
  int64_t input_partitions = 0;
  int64_t pruned = 0;

  double PruningRatio() const {
    if (input_partitions == 0) return 0.0;
    return static_cast<double>(pruned) / static_cast<double>(input_partitions);
  }
};

/// Join pruning (§6): drops probe-side micro-partitions whose join-key
/// min/max range cannot intersect the build-side summary, before they are
/// loaded from storage.
class JoinPruner {
 public:
  static JoinPruneResult PruneProbe(const Table& probe_table,
                                    const ScanSet& scan_set, size_t key_column,
                                    const BuildSummary& summary);
};

}  // namespace snowprune

#endif  // SNOWPRUNE_CORE_JOIN_PRUNER_H_
