#include "core/join_pruner.h"

#include <algorithm>
#include <cassert>

namespace snowprune {

const char* ToString(SummaryKind kind) {
  switch (kind) {
    case SummaryKind::kMinMax: return "minmax";
    case SummaryKind::kRangeSet: return "rangeset";
    case SummaryKind::kExactSet: return "exactset";
    case SummaryKind::kBloom: return "bloom";
  }
  return "?";
}

namespace {

/// Comparable-kind guard: mismatched kinds can never certify absence, so
/// summaries answer "maybe" for them.
bool SameKind(const Value& a, const Value& b) {
  return a.is_string() == b.is_string() && a.is_bool() == b.is_bool();
}

class EmptySummary : public BuildSummary {
 public:
  explicit EmptySummary(SummaryKind kind) : kind_(kind) {}
  SummaryKind kind() const override { return kind_; }
  size_t SizeBytes() const override { return 8; }
  bool MayContainInRange(const Value&, const Value&) const override {
    return false;  // empty build side: everything on the probe side prunes
  }
  bool MayContain(const Value&) const override { return false; }
  int64_t num_values() const override { return 0; }

 private:
  SummaryKind kind_;
};

class MinMaxSummary : public BuildSummary {
 public:
  MinMaxSummary(Value min, Value max, int64_t n)
      : min_(std::move(min)), max_(std::move(max)), n_(n) {}

  SummaryKind kind() const override { return SummaryKind::kMinMax; }
  size_t SizeBytes() const override { return 16; }

  bool MayContainInRange(const Value& lo, const Value& hi) const override {
    if (!SameKind(lo, min_) || !SameKind(hi, min_)) return true;
    return Value::Compare(hi, min_) >= 0 && Value::Compare(lo, max_) <= 0;
  }

  bool MayContain(const Value& v) const override {
    return MayContainInRange(v, v);
  }

  int64_t num_values() const override { return n_; }

 private:
  Value min_, max_;
  int64_t n_;
};

/// Sorted disjoint closed ranges. Exact values collapse to point ranges when
/// the budget allows; otherwise nearby values are merged, trading pruning
/// power for size — the probabilistic behaviour §6.2 describes.
class RangeSetSummary : public BuildSummary {
 public:
  RangeSetSummary(SummaryKind kind, std::vector<std::pair<Value, Value>> ranges,
                  int64_t n)
      : kind_(kind), ranges_(std::move(ranges)), n_(n) {}

  SummaryKind kind() const override { return kind_; }
  size_t SizeBytes() const override { return 16 * ranges_.size() + 8; }

  bool MayContainInRange(const Value& lo, const Value& hi) const override {
    if (ranges_.empty()) return false;
    if (!SameKind(lo, ranges_[0].first) || !SameKind(hi, ranges_[0].first)) {
      return true;
    }
    // First range whose hi >= lo; overlap iff its lo <= hi.
    auto it = std::lower_bound(
        ranges_.begin(), ranges_.end(), lo,
        [](const std::pair<Value, Value>& range, const Value& probe) {
          return Value::Compare(range.second, probe) < 0;
        });
    if (it == ranges_.end()) return false;
    return Value::Compare(it->first, hi) <= 0;
  }

  bool MayContain(const Value& v) const override {
    return MayContainInRange(v, v);
  }

  int64_t num_values() const override { return n_; }

  size_t num_ranges() const { return ranges_.size(); }

 private:
  SummaryKind kind_;
  std::vector<std::pair<Value, Value>> ranges_;
  int64_t n_;
};

class BloomSummary : public BuildSummary {
 public:
  BloomSummary(const std::vector<Value>& values, size_t budget_bytes)
      : bits_(std::max<size_t>(64, budget_bytes * 8)),
        words_((bits_ + 63) / 64, 0),
        n_(static_cast<int64_t>(values.size())) {
    for (const Value& v : values) Set(v);
  }

  SummaryKind kind() const override { return SummaryKind::kBloom; }
  size_t SizeBytes() const override { return words_.size() * 8; }

  bool MayContainInRange(const Value&, const Value&) const override {
    // A Bloom filter cannot answer range-overlap questions, which is exactly
    // why it reduces per-row CPU but not partition IO (§6.1).
    return true;
  }

  bool MayContain(const Value& v) const override {
    return MayContainHash(HashValue(v));
  }

  bool MayContainHash(uint64_t h) const override {
    uint64_t h2 = (h >> 33) | 1;
    for (int i = 0; i < kNumHashes; ++i) {
      uint64_t bit = (h + static_cast<uint64_t>(i) * h2) % bits_;
      if ((words_[bit / 64] & (1ULL << (bit % 64))) == 0) return false;
    }
    return true;
  }

  int64_t num_values() const override { return n_; }

 private:
  static constexpr int kNumHashes = 6;

  void Set(const Value& v) {
    uint64_t h = HashValue(v);
    uint64_t h2 = (h >> 33) | 1;
    for (int i = 0; i < kNumHashes; ++i) {
      uint64_t bit = (h + static_cast<uint64_t>(i) * h2) % bits_;
      words_[bit / 64] |= 1ULL << (bit % 64);
    }
  }

  size_t bits_;
  std::vector<uint64_t> words_;
  int64_t n_;
};

std::vector<Value> SortedDistinct(std::vector<Value> values) {
  std::sort(values.begin(), values.end(), [](const Value& a, const Value& b) {
    return Value::Compare(a, b) < 0;
  });
  values.erase(std::unique(values.begin(), values.end(),
                           [](const Value& a, const Value& b) {
                             return Value::Compare(a, b) == 0;
                           }),
               values.end());
  return values;
}

/// Merges sorted distinct values into at most `max_ranges` disjoint ranges.
/// Numeric domains keep the largest gaps as separators (tightest possible
/// cover); other domains split into equal-count chunks.
std::vector<std::pair<Value, Value>> BuildRanges(const std::vector<Value>& vals,
                                                 size_t max_ranges) {
  assert(!vals.empty());
  max_ranges = std::max<size_t>(1, max_ranges);
  if (vals.size() <= max_ranges) {
    std::vector<std::pair<Value, Value>> out;
    out.reserve(vals.size());
    for (const Value& v : vals) out.emplace_back(v, v);
    return out;
  }
  std::vector<size_t> break_before;  // indexes where a new range starts
  if (vals[0].is_numeric()) {
    struct Gap {
      double width;
      size_t index;
    };
    std::vector<Gap> gaps;
    gaps.reserve(vals.size() - 1);
    for (size_t i = 1; i < vals.size(); ++i) {
      gaps.push_back({vals[i].AsDouble() - vals[i - 1].AsDouble(), i});
    }
    size_t keep = max_ranges - 1;
    std::partial_sort(gaps.begin(), gaps.begin() + static_cast<long>(keep),
                      gaps.end(),
                      [](const Gap& a, const Gap& b) { return a.width > b.width; });
    for (size_t i = 0; i < keep; ++i) break_before.push_back(gaps[i].index);
  } else {
    for (size_t r = 1; r < max_ranges; ++r) {
      break_before.push_back(r * vals.size() / max_ranges);
    }
  }
  std::sort(break_before.begin(), break_before.end());
  std::vector<std::pair<Value, Value>> out;
  size_t start = 0;
  for (size_t brk : break_before) {
    if (brk == start) continue;
    out.emplace_back(vals[start], vals[brk - 1]);
    start = brk;
  }
  out.emplace_back(vals[start], vals.back());
  return out;
}

}  // namespace

void SummaryBuilder::Add(const Value& v) {
  if (v.is_null()) return;
  values_.push_back(v);
}

void SummaryBuilder::Append(SummaryBuilder&& other) {
  if (values_.empty()) {
    values_ = std::move(other.values_);
    return;
  }
  values_.insert(values_.end(),
                 std::make_move_iterator(other.values_.begin()),
                 std::make_move_iterator(other.values_.end()));
  other.values_.clear();
}

std::unique_ptr<BuildSummary> SummaryBuilder::Build(SummaryKind kind,
                                                    size_t budget_bytes) const {
  std::vector<Value> vals = SortedDistinct(values_);
  if (vals.empty()) return std::make_unique<EmptySummary>(kind);
  const auto n = static_cast<int64_t>(vals.size());
  switch (kind) {
    case SummaryKind::kMinMax:
      return std::make_unique<MinMaxSummary>(vals.front(), vals.back(), n);
    case SummaryKind::kRangeSet: {
      size_t max_ranges = std::max<size_t>(1, budget_bytes / 16);
      return std::make_unique<RangeSetSummary>(
          kind, BuildRanges(vals, max_ranges), n);
    }
    case SummaryKind::kExactSet: {
      std::vector<std::pair<Value, Value>> points;
      points.reserve(vals.size());
      for (const Value& v : vals) points.emplace_back(v, v);
      return std::make_unique<RangeSetSummary>(kind, std::move(points), n);
    }
    case SummaryKind::kBloom:
      return std::make_unique<BloomSummary>(vals, budget_bytes);
  }
  return std::make_unique<EmptySummary>(kind);
}

JoinPruneResult JoinPruner::PruneProbe(const Table& probe_table,
                                       const ScanSet& scan_set,
                                       size_t key_column,
                                       const BuildSummary& summary) {
  JoinPruneResult result;
  result.input_partitions = static_cast<int64_t>(scan_set.size());
  for (PartitionId pid : scan_set) {
    const ColumnStats& s = probe_table.stats(pid, key_column);
    if (!s.has_stats) {
      result.scan_set.Add(pid);  // no metadata, no pruning (§8.1)
      continue;
    }
    if (s.min.is_null() || s.row_count == 0) {
      // Only NULL keys (or no rows): can never produce a join match.
      ++result.pruned;
      continue;
    }
    if (summary.MayContainInRange(s.min, s.max)) {
      result.scan_set.Add(pid);
    } else {
      ++result.pruned;
    }
  }
  return result;
}

}  // namespace snowprune
