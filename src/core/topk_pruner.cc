#include "core/topk_pruner.h"

#include <algorithm>

#include "common/rng.h"

namespace snowprune {

const char* ToString(OrderStrategy strategy) {
  switch (strategy) {
    case OrderStrategy::kNone: return "none";
    case OrderStrategy::kRandom: return "random";
    case OrderStrategy::kFullSort: return "full-sort";
  }
  return "?";
}

const char* ToString(BoundaryInitMode mode) {
  switch (mode) {
    case BoundaryInitMode::kNone: return "none";
    case BoundaryInitMode::kKthMax: return "kth-max";
    case BoundaryInitMode::kCumulativeMin: return "cumulative-min";
    case BoundaryInitMode::kStricter: return "stricter";
  }
  return "?";
}

TopKPruner::TopKPruner(TopKPrunerConfig config, size_t order_column)
    : config_(config), order_column_(order_column) {}

bool TopKPruner::Stricter(const Value& candidate, const Value& current) const {
  int c = Value::Compare(candidate, current);
  return config_.descending ? c > 0 : c < 0;
}

ScanSet TopKPruner::Prepare(const Table& table, const ScanSet& scan_set,
                            const std::vector<PartitionId>& fully_matching) {
  // --- Processing order (§5.3). -------------------------------------------
  std::vector<PartitionId> order(scan_set.begin(), scan_set.end());
  switch (config_.order_strategy) {
    case OrderStrategy::kNone:
      break;
    case OrderStrategy::kRandom: {
      Rng rng(config_.shuffle_seed);
      rng.Shuffle(&order);
      break;
    }
    case OrderStrategy::kFullSort: {
      // DESC: largest max first; ASC: smallest min first. Partitions without
      // usable metadata sort last.
      auto sort_key = [&](PartitionId pid) -> std::optional<Value> {
        const ColumnStats& s = table.stats(pid, order_column_);
        if (!s.has_stats) return std::nullopt;
        const Value& v = config_.descending ? s.max : s.min;
        if (v.is_null()) return std::nullopt;
        return v;
      };
      std::stable_sort(order.begin(), order.end(),
                       [&](PartitionId a, PartitionId b) {
                         auto ka = sort_key(a), kb = sort_key(b);
                         if (!ka.has_value()) return false;
                         if (!kb.has_value()) return true;
                         int c = Value::Compare(*ka, *kb);
                         return config_.descending ? c > 0 : c < 0;
                       });
      break;
    }
  }

  // --- Upfront boundary initialization (§5.4). -----------------------------
  // Computed into a local and published under the lock at the end: no scan
  // workers exist yet, but the guarded members are only ever touched with
  // boundary_mutex_ held so the lock discipline stays uniform.
  std::optional<Value> init_boundary;
  if (config_.boundary_init != BoundaryInitMode::kNone &&
      !fully_matching.empty()) {
    // Candidate A: k-th strictest max (DESC) / min (ASC) over fully-matching
    // partitions — each of the k partitions contributes at least one row at
    // least as good as that value.
    std::optional<Value> kth_extreme;
    {
      std::vector<Value> extremes;
      for (PartitionId pid : fully_matching) {
        const ColumnStats& s = table.stats(pid, order_column_);
        if (!s.has_stats) continue;
        const Value& v = config_.descending ? s.max : s.min;
        if (!v.is_null()) extremes.push_back(v);
      }
      if (static_cast<int64_t>(extremes.size()) >= config_.k) {
        std::sort(extremes.begin(), extremes.end(),
                  [&](const Value& a, const Value& b) {
                    int c = Value::Compare(a, b);
                    return config_.descending ? c > 0 : c < 0;
                  });
        kth_extreme = extremes[static_cast<size_t>(config_.k) - 1];
      }
    }
    // Candidate B: sort fully-matching partitions by min (DESC) / max (ASC),
    // strictest first; the bound of the partition whose cumulative non-null
    // row count reaches k guarantees k qualifying rows at least that good.
    std::optional<Value> cumulative_bound;
    {
      struct Cand {
        Value bound;
        int64_t rows;
      };
      std::vector<Cand> cands;
      for (PartitionId pid : fully_matching) {
        const ColumnStats& s = table.stats(pid, order_column_);
        if (!s.has_stats || s.min.is_null()) continue;
        cands.push_back(
            {config_.descending ? s.min : s.max, s.row_count - s.null_count});
      }
      std::sort(cands.begin(), cands.end(), [&](const Cand& a, const Cand& b) {
        int c = Value::Compare(a.bound, b.bound);
        return config_.descending ? c > 0 : c < 0;
      });
      int64_t cum = 0;
      for (const Cand& c : cands) {
        cum += c.rows;
        if (cum >= config_.k) {
          cumulative_bound = c.bound;
          break;
        }
      }
    }
    if (config_.boundary_init == BoundaryInitMode::kKthMax) {
      init_boundary = kth_extreme;
    } else if (config_.boundary_init == BoundaryInitMode::kCumulativeMin) {
      init_boundary = cumulative_bound;
    } else {  // kStricter
      init_boundary = kth_extreme;
      if (cumulative_bound &&
          (!init_boundary || Stricter(*cumulative_bound, *init_boundary))) {
        init_boundary = cumulative_bound;
      }
    }
  }
  {
    MutexLock lock(&boundary_mutex_);
    boundary_ = std::move(init_boundary);
    inclusive_ = false;  // init boundaries must not skip ties (§5.4)
  }

  return ScanSet(std::move(order));
}

bool TopKPruner::ShouldSkip(const Table& table, PartitionId pid) const {
  const ColumnStats& s = table.stats(pid, order_column_);
  if (!s.has_stats) return false;  // no metadata, no pruning (§8.1)
  const Value& extreme = config_.descending ? s.max : s.min;
  if (extreme.is_null()) return true;  // all-NULL keys never qualify
  std::optional<Value> boundary;
  bool inclusive;
  {
    MutexLock lock(&boundary_mutex_);
    boundary = boundary_;
    inclusive = inclusive_;
  }
  if (!boundary) return false;
  int c = Value::Compare(extreme, *boundary);
  if (config_.descending) {
    return inclusive ? c <= 0 : c < 0;
  }
  return inclusive ? c >= 0 : c > 0;
}

void TopKPruner::UpdateBoundary(const Value& v) {
  if (v.is_null()) return;
  MutexLock lock(&boundary_mutex_);
  if (!boundary_ || Stricter(v, *boundary_) ||
      (!inclusive_ && config_.inclusive_updates &&
       Value::Compare(v, *boundary_) == 0)) {
    boundary_ = v;
    inclusive_ = config_.inclusive_updates;
  }
}

}  // namespace snowprune
