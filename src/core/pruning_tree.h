#ifndef SNOWPRUNE_CORE_PRUNING_TREE_H_
#define SNOWPRUNE_CORE_PRUNING_TREE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "expr/expr.h"
#include "expr/range_analysis.h"

namespace snowprune {

/// Tuning knobs for the adaptive pruning tree (§3.2).
struct PruningTreeConfig {
  /// Re-rank children of every connective node each N partition evaluations.
  bool enable_reorder = true;
  size_t reorder_interval = 64;

  /// Disable leaves that prune too little for their cost (§3.2, "filter
  /// pruning cutoff"). Only leaves directly under an AND (or the root) are
  /// eligible; cutoff decisions are re-checked every reorder interval.
  bool enable_cutoff = false;
  /// Modeled cost of scanning one partition at execution time, in the same
  /// unit as leaf evaluation cost (nanoseconds). The default corresponds to
  /// "scanning a partition costs ~1ms of work"; leaves whose expected saved
  /// scan cost is below their own evaluation cost get cut off.
  double partition_scan_cost_ns = 1e6;
  /// Leaves are observed for this many evaluations before cutoff may fire.
  size_t cutoff_min_observations = 32;
};

/// Per-node adaptivity counters (§3.2: "Snowflake tracks the pruning ratio
/// and evaluation time for each node in the pruning tree").
struct PruneNodeMetrics {
  int64_t evaluations = 0;
  int64_t decisive = 0;   ///< AND child: outcomes proving "prunable";
                          ///< OR child: outcomes preventing pruning.
  int64_t time_ns = 0;
  bool disabled = false;  ///< Cut off; behaves as "keep everything".

  double DecisiveRate() const {
    return evaluations == 0
               ? 0.0
               : static_cast<double>(decisive) / static_cast<double>(evaluations);
  }
  double AvgTimeNs() const {
    return evaluations == 0
               ? 1.0
               : static_cast<double>(time_ns) / static_cast<double>(evaluations);
  }
};

/// A predicate tree prepared for partition pruning: inner nodes are AND/OR
/// connectives whose children may be freely re-ordered (Figure 3), leaves
/// are arbitrary pruning-capable predicates evaluated via range analysis.
///
/// The tree evaluates partitions' zone maps into BoolRange outcomes with
/// short-circuiting, records per-node pruning ratio and latency, adaptively
/// reorders children to put fast/decisive filters first, and can cut off
/// leaves whose modeled benefit no longer justifies their cost.
class PruningTree {
 public:
  /// `pruning_expr` should already have imprecise rewrites applied (it is
  /// used for pruning only, never for execution).
  PruningTree(ExprPtr pruning_expr, PruningTreeConfig config);
  ~PruningTree();

  PruningTree(PruningTree&&) noexcept;
  PruningTree& operator=(PruningTree&&) noexcept;

  /// Analyzes one partition's zone maps. Updates metrics; periodically
  /// reorders children and applies cutoff per the config.
  BoolRange Evaluate(const std::vector<ColumnStats>& stats);

  /// Signals how many partitions remain to be pruned; the cutoff cost model
  /// extrapolates each leaf's benefit over this horizon.
  void SetRemainingPartitions(int64_t n) { remaining_partitions_ = n; }

  /// Number of leaves currently disabled by cutoff.
  size_t disabled_leaves() const;
  /// Total leaves.
  size_t num_leaves() const;
  /// Pre-order rendering with metrics, for debugging and the tree ablation.
  std::string DebugString() const;

  /// Visible-for-testing: current left-to-right leaf evaluation order
  /// (leaf predicates' ToString).
  std::vector<std::string> LeafOrder() const;

  /// Implementation node type; public so the .cc's free helpers can walk the
  /// tree, but not part of the supported API.
  struct Node;

 private:
  std::unique_ptr<Node> root_;
  PruningTreeConfig config_;
  int64_t evaluations_ = 0;
  int64_t remaining_partitions_ = 1 << 20;

  BoolRange EvalNode(Node* node, const std::vector<ColumnStats>& stats);
  void ReorderNode(Node* node);
  void CutoffNode(Node* node, bool parent_is_and);
};

}  // namespace snowprune

#endif  // SNOWPRUNE_CORE_PRUNING_TREE_H_
