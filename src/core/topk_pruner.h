#ifndef SNOWPRUNE_CORE_TOPK_PRUNER_H_
#define SNOWPRUNE_CORE_TOPK_PRUNER_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/mutex.h"
#include "storage/table.h"

namespace snowprune {

/// Partition processing-order strategies evaluated in §5.3 / Figure 8.
enum class OrderStrategy {
  kNone,      ///< Arrival order (the scan set as produced upstream).
  kRandom,    ///< Explicitly randomized (the paper's "no sorting" baseline).
  kFullSort,  ///< Sort all partitions by max (DESC) / min (ASC) of the key.
};

const char* ToString(OrderStrategy strategy);

/// Upfront boundary initialization strategies (§5.4).
enum class BoundaryInitMode {
  kNone,
  kKthMax,         ///< k-th largest max over fully-matching partitions.
  kCumulativeMin,  ///< Largest min whose cumulative row count reaches k.
  kStricter,       ///< The stricter of the two (paper: "whichever yields a
                   ///< stricter boundary").
};

const char* ToString(BoundaryInitMode mode);

struct TopKPrunerConfig {
  int64_t k = 10;
  bool descending = true;  ///< ORDER BY <key> DESC LIMIT k.
  OrderStrategy order_strategy = OrderStrategy::kFullSort;
  BoundaryInitMode boundary_init = BoundaryInitMode::kStricter;
  uint64_t shuffle_seed = 7;  ///< For OrderStrategy::kRandom.
  /// Whether heap-driven boundary updates may skip ties. True for plain
  /// top-k (a tie cannot improve a full heap); must be false for the GROUP
  /// BY shape of Figure 7d, where rows tying with the k-th group key still
  /// contribute to that group's aggregates.
  bool inclusive_updates = true;
};

/// Runtime top-k pruning (§5): tracks the boundary value (the k-th best row
/// seen so far, published by the TopK operator) and decides, per partition,
/// whether its zone map proves no row can improve the heap.
///
/// Rows whose order key is NULL never qualify for the top-k heap (the engine
/// excludes NULL keys from results); partitions whose key column is entirely
/// NULL are therefore always skippable.
///
/// Thread safety: ShouldSkip() and UpdateBoundary() may race — under
/// partition-parallel execution, scan workers consult the boundary while the
/// consumer thread tightens it — and every boundary access synchronizes on an
/// internal mutex (compile-checked: boundary_ and inclusive_ are
/// SNOW_GUARDED_BY(boundary_mutex_)). A worker may observe a slightly stale
/// boundary; that only delays a skip, never causes one that serial execution
/// would reject. Prepare() itself is single-threaded (start of scan, before
/// workers exist), but still publishes the initialized boundary under the
/// lock.
class TopKPruner {
 public:
  TopKPruner(TopKPrunerConfig config, size_t order_column);

  /// Compile/start-of-scan step: applies the processing-order strategy to
  /// the scan set and initializes the boundary from fully-matching
  /// partitions (§5.4). `fully_matching` may be empty.
  ScanSet Prepare(const Table& table, const ScanSet& scan_set,
                  const std::vector<PartitionId>& fully_matching)
      SNOW_EXCLUDES(boundary_mutex_);

  /// Runtime check executed before loading a partition (§5.2): true when the
  /// partition's min/max for the order column proves no row would enter the
  /// current top-k heap.
  bool ShouldSkip(const Table& table, PartitionId pid) const
      SNOW_EXCLUDES(boundary_mutex_);

  /// Called by the TopK operator whenever the heap is full and its weakest
  /// element changed; `v` is the k-th best value. Boundary updates only ever
  /// tighten: a looser value than the current boundary is ignored.
  void UpdateBoundary(const Value& v) SNOW_EXCLUDES(boundary_mutex_);

  /// Snapshot of the current boundary (by value: the stored boundary can be
  /// tightened concurrently, so a reference would be a use-after-publish
  /// hazard). Callers needing the value more than once should take one
  /// snapshot, not call repeatedly.
  std::optional<Value> boundary() const SNOW_EXCLUDES(boundary_mutex_) {
    MutexLock lock(&boundary_mutex_);
    return boundary_;
  }
  /// True once the boundary comes from a full heap: ties can then be skipped
  /// as well. Initialization-derived boundaries are exclusive (a tie may
  /// still be needed to fill the heap).
  bool boundary_inclusive() const SNOW_EXCLUDES(boundary_mutex_) {
    MutexLock lock(&boundary_mutex_);
    return inclusive_;
  }

  const TopKPrunerConfig& config() const { return config_; }

 private:
  /// True if `candidate` is a stricter boundary than `current` under the
  /// configured sort direction.
  bool Stricter(const Value& candidate, const Value& current) const;

  TopKPrunerConfig config_;
  size_t order_column_;
  mutable Mutex boundary_mutex_;
  std::optional<Value> boundary_ SNOW_GUARDED_BY(boundary_mutex_);
  bool inclusive_ SNOW_GUARDED_BY(boundary_mutex_) = false;
};

}  // namespace snowprune

#endif  // SNOWPRUNE_CORE_TOPK_PRUNER_H_
