#ifndef SNOWPRUNE_CORE_FILTER_PRUNER_H_
#define SNOWPRUNE_CORE_FILTER_PRUNER_H_

#include <memory>
#include <vector>

#include "core/pruning_tree.h"
#include "expr/expr.h"
#include "storage/table.h"

namespace snowprune {

/// How fully-matching partitions (§4.2) are identified.
enum class FullyMatchingMode {
  /// The paper's algorithm: a second pruning pass with the inverted
  /// predicate ("P IS NOT TRUE"); partitions prunable under it are fully
  /// matching.
  kInvertedTwoPass,
  /// Equivalent single-pass method using the BoolRange tri-state directly.
  kDirectAnalysis,
  /// Skip identification (fully_matching stays empty).
  kOff,
};

struct FilterPrunerConfig {
  PruningTreeConfig tree;
  FullyMatchingMode fully_matching_mode = FullyMatchingMode::kInvertedTwoPass;
  /// Apply §3.1 imprecise rewrites (LIKE -> STARTSWITH etc.) to the pruning
  /// pass. Never affects fully-matching identification, which must stay
  /// precise.
  bool apply_imprecise_rewrites = true;
};

/// Outcome of filter pruning one table scan.
struct FilterPruneResult {
  ScanSet scan_set;                         ///< Partially + fully matching.
  std::vector<PartitionId> fully_matching;  ///< Subset of scan_set (§4.2).
  int64_t fully_matching_rows = 0;
  int64_t input_partitions = 0;
  int64_t pruned = 0;

  double PruningRatio() const {
    if (input_partitions == 0) return 0.0;
    return static_cast<double>(pruned) / static_cast<double>(input_partitions);
  }
};

/// Min/max filter pruning (§3): evaluates a query predicate against each
/// partition's zone maps through an adaptive PruningTree and removes
/// partitions that provably contain no matching rows. Guarantees no false
/// negatives. A null predicate means "no filter": nothing is pruned and all
/// partitions are trivially fully matching.
class FilterPruner {
 public:
  /// `predicate` must already be bound to the table's schema (BindExpr);
  /// it may be null for unfiltered scans.
  explicit FilterPruner(ExprPtr predicate, FilterPrunerConfig config = {});

  /// Prunes `input`, classifying every partition as not / partially / fully
  /// matching. Only metadata is accessed (no loads).
  FilterPruneResult Prune(const Table& table, const ScanSet& input);

  /// Runtime path: may partition `pid` be skipped under the predicate?
  bool CanPrune(const Table& table, PartitionId pid);

  /// Evaluates the pruning tree against caller-supplied zone maps — the
  /// cross-shard pruning level feeds per-shard *merged* stats (min of mins,
  /// max of maxes, summed null/row counts) through this. Interval analysis
  /// is monotone in the stats interval: a merged zone map admits every value
  /// any member partition admits, so a prunable merge proves every member
  /// individually prunable — the whole shard can be excluded without
  /// touching its per-partition metadata. `row_count` is the merged total
  /// (all members empty ⇒ prunable, mirroring Prune's empty-partition rule).
  bool CanPruneFromStats(const std::vector<ColumnStats>& stats,
                         int64_t row_count);

  /// The adaptive tree for the pruning pass (null when predicate is null).
  PruningTree* mutable_tree() { return prune_tree_ ? &*prune_tree_ : nullptr; }

  const ExprPtr& predicate() const { return predicate_; }

 private:
  ExprPtr predicate_;
  FilterPrunerConfig config_;
  std::optional<PruningTree> prune_tree_;     ///< Over the rewritten predicate.
  std::optional<PruningTree> inverted_tree_;  ///< Over "P IS NOT TRUE".
};

}  // namespace snowprune

#endif  // SNOWPRUNE_CORE_FILTER_PRUNER_H_
