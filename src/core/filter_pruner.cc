#include "core/filter_pruner.h"

#include "expr/range_analysis.h"
#include "expr/rewrite.h"

namespace snowprune {

FilterPruner::FilterPruner(ExprPtr predicate, FilterPrunerConfig config)
    : predicate_(std::move(predicate)), config_(config) {
  if (!predicate_) return;
  ExprPtr pruning_expr = Simplify(predicate_);
  if (config_.apply_imprecise_rewrites) {
    pruning_expr = Simplify(RewriteForPruning(pruning_expr));
  }
  prune_tree_.emplace(pruning_expr, config_.tree);
  if (config_.fully_matching_mode == FullyMatchingMode::kInvertedTwoPass) {
    // The inverted pass must be built from the *original* predicate:
    // widened rewrites over-admit rows and could falsely certify
    // fully-matching partitions.
    PruningTreeConfig inverted_cfg = config_.tree;
    inverted_cfg.enable_cutoff = false;  // correctness pass, no cutoff
    inverted_tree_.emplace(BuildInvertedPredicate(Simplify(predicate_)),
                           inverted_cfg);
  }
}

FilterPruneResult FilterPruner::Prune(const Table& table,
                                      const ScanSet& input) {
  FilterPruneResult result;
  result.input_partitions = static_cast<int64_t>(input.size());

  if (!predicate_) {
    // No filter: keep everything; every partition is trivially fully
    // matching (§4.2).
    result.scan_set = input;
    for (PartitionId pid : input) {
      result.fully_matching.push_back(pid);
      result.fully_matching_rows += table.partition_metadata(pid).row_count();
    }
    return result;
  }

  prune_tree_->SetRemainingPartitions(static_cast<int64_t>(input.size()));

  // Pass 1 (§3): drop partitions that cannot contain matching rows.
  std::vector<PartitionId> kept;
  std::vector<bool> fully_direct;  // parallel to `kept` in direct mode
  size_t position = 0;
  for (PartitionId pid : input) {
    const MicroPartition& meta = table.partition_metadata(pid);
    prune_tree_->SetRemainingPartitions(
        static_cast<int64_t>(input.size() - position++));
    if (meta.row_count() == 0) {
      ++result.pruned;
      continue;
    }
    BoolRange r = prune_tree_->Evaluate(meta.all_stats());
    if (r.prunable()) {
      ++result.pruned;
      continue;
    }
    kept.push_back(pid);
    if (config_.fully_matching_mode == FullyMatchingMode::kDirectAnalysis) {
      // The pruning tree may have been widened; re-analyze precisely.
      BoolRange precise = AnalyzePredicate(*predicate_, meta.all_stats());
      fully_direct.push_back(precise.fully_matching());
    }
  }

  // Pass 2 (§4.2): identify fully-matching partitions among the survivors.
  for (size_t i = 0; i < kept.size(); ++i) {
    PartitionId pid = kept[i];
    result.scan_set.Add(pid);
    bool fully = false;
    switch (config_.fully_matching_mode) {
      case FullyMatchingMode::kOff:
        break;
      case FullyMatchingMode::kDirectAnalysis:
        fully = fully_direct[i];
        break;
      case FullyMatchingMode::kInvertedTwoPass: {
        const MicroPartition& meta = table.partition_metadata(pid);
        BoolRange inv = inverted_tree_->Evaluate(meta.all_stats());
        // The partition is kept in the scan set either way; pruning under
        // the inverted predicate just *marks* it (§4.2).
        fully = inv.prunable();
        break;
      }
    }
    if (fully) {
      result.fully_matching.push_back(pid);
      result.fully_matching_rows += table.partition_metadata(pid).row_count();
    }
  }
  return result;
}

bool FilterPruner::CanPruneFromStats(const std::vector<ColumnStats>& stats,
                                     int64_t row_count) {
  if (!predicate_) return false;
  if (row_count == 0) return true;
  return prune_tree_->Evaluate(stats).prunable();
}

bool FilterPruner::CanPrune(const Table& table, PartitionId pid) {
  if (!predicate_) return false;
  const MicroPartition& meta = table.partition_metadata(pid);
  if (meta.row_count() == 0) return true;
  return prune_tree_->Evaluate(meta.all_stats()).prunable();
}

}  // namespace snowprune
