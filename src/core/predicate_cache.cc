#include "core/predicate_cache.h"

#include <algorithm>

namespace snowprune {

void PredicateCache::Insert(const std::string& fingerprint, const Table& table,
                            std::string order_column,
                            std::vector<PartitionId> partitions) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::sort(partitions.begin(), partitions.end());
  partitions.erase(std::unique(partitions.begin(), partitions.end()),
                   partitions.end());
  Entry entry{table.name(), std::move(order_column), std::move(partitions),
              table.num_partitions()};
  auto [it, inserted] = entries_.insert_or_assign(fingerprint, std::move(entry));
  (void)it;
  if (inserted) {
    insertion_order_.push_back(fingerprint);
    EvictIfNeeded();
  }
}

std::optional<std::vector<PartitionId>> PredicateCache::Lookup(
    const std::string& fingerprint, const Table& table) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(fingerprint);
  if (it == entries_.end() || it->second.table_name != table.name()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  std::vector<PartitionId> result = it->second.partitions;
  // INSERTs are safe (§8.2) but their partitions must be scanned too.
  for (size_t pid = it->second.table_partitions_at_insert;
       pid < table.num_partitions(); ++pid) {
    result.push_back(static_cast<PartitionId>(pid));
  }
  return result;
}

void PredicateCache::OnInsert(const Table& table) {
  // Nothing to do: Lookup() appends partitions past
  // table_partitions_at_insert automatically.
  (void)table;
}

void PredicateCache::OnUpdate(const Table& table, const std::string& column) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.table_name == table.name() &&
        it->second.order_column == column) {
      insertion_order_.remove(it->first);
      it = entries_.erase(it);  // reordering update: cache may be wrong
    } else {
      ++it;
    }
  }
}

void PredicateCache::OnDelete(const Table& table, PartitionId deleted_pid) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    Entry& e = it->second;
    if (e.table_name != table.name()) {
      ++it;
      continue;
    }
    bool contains = std::binary_search(e.partitions.begin(), e.partitions.end(),
                                       deleted_pid);
    if (contains) {
      // A contributing partition is gone: the replacement (k+1-th) row may
      // live anywhere, so the entry is unusable (§8.2).
      insertion_order_.remove(it->first);
      it = entries_.erase(it);
      continue;
    }
    // Table compacts ids after deletion; remap the survivors.
    for (PartitionId& pid : e.partitions) {
      if (pid > deleted_pid) --pid;
    }
    if (e.table_partitions_at_insert > 0) --e.table_partitions_at_insert;
    ++it;
  }
}

void PredicateCache::EvictIfNeeded() {
  while (entries_.size() > capacity_ && !insertion_order_.empty()) {
    entries_.erase(insertion_order_.front());
    insertion_order_.pop_front();
  }
}

}  // namespace snowprune
