#include "core/predicate_cache.h"

#include <algorithm>
#include <utility>

#include "common/metrics.h"
#include "expr/jit/bytecode.h"

namespace snowprune {

namespace {

/// Process-wide cache instruments, beside the per-instance counters the
/// tests read: one registry entry covers every cache in the process.
struct CacheMetrics {
  Counter* hits;
  Counter* misses;
  Counter* coalesced_waits;
};

CacheMetrics& GetCacheMetrics() {
  static CacheMetrics m{
      MetricsRegistry::Instance().GetCounter("predcache.hits"),
      MetricsRegistry::Instance().GetCounter("predcache.misses"),
      MetricsRegistry::Instance().GetCounter("predcache.coalesced_waits")};
  return m;
}

}  // namespace

void PredicateCache::NoteInvalidated(const Entry& entry) {
  if (entry.program != nullptr) jit::Counters().invalidations->Add();
}

void PredicateCache::Insert(const std::string& fingerprint, const Table& table,
                            std::string order_column,
                            std::vector<PartitionId> partitions) {
  MutexLock lock(&mutex_);
  std::sort(partitions.begin(), partitions.end());
  partitions.erase(std::unique(partitions.begin(), partitions.end()),
                   partitions.end());
  Entry entry;
  entry.table_name = table.name();
  entry.order_column = std::move(order_column);
  entry.partitions = std::move(partitions);
  entry.table_partitions_at_insert = table.num_partitions();
  entry.table_instance = table.instance_id();
  auto existing = entries_.find(fingerprint);
  if (existing != entries_.end()) NoteInvalidated(existing->second);
  auto [it, inserted] = entries_.insert_or_assign(fingerprint, std::move(entry));
  (void)it;
  if (inserted) {
    insertion_order_.push_back(fingerprint);
    EvictIfNeeded();
  }
  // Publishing resolves any coalesced population of this fingerprint:
  // blocked waiters wake and hit the fresh entry.
  ResolveInFlightLocked(fingerprint);
}

std::optional<std::vector<PartitionId>> PredicateCache::EntryScanSetLocked(
    const std::string& fingerprint, const Table& table) const {
  auto it = entries_.find(fingerprint);
  if (it == entries_.end() || it->second.table_name != table.name() ||
      it->second.table_instance != table.instance_id()) {
    // Name or version mismatch: a replaced table (new instance under the
    // same name) must never be served the old version's scan set.
    return std::nullopt;
  }
  std::vector<PartitionId> result = it->second.partitions;
  // INSERTs are safe (§8.2) but their partitions must be scanned too.
  for (size_t pid = it->second.table_partitions_at_insert;
       pid < table.num_partitions(); ++pid) {
    result.push_back(static_cast<PartitionId>(pid));
  }
  return result;
}

std::optional<std::vector<PartitionId>> PredicateCache::Lookup(
    const std::string& fingerprint, const Table& table) const {
  MutexLock lock(&mutex_);
  auto result = EntryScanSetLocked(fingerprint, table);
  if (result.has_value()) {
    ++hits_;
    GetCacheMetrics().hits->Add();
  } else {
    ++misses_;
    GetCacheMetrics().misses->Add();
  }
  return result;
}

std::optional<std::vector<PartitionId>> PredicateCache::LookupOrPopulate(
    const std::string& fingerprint, const Table& table,
    PopulateTicket* ticket) {
  MutexLock lock(&mutex_);
  bool waited = false;
  for (;;) {
    auto result = EntryScanSetLocked(fingerprint, table);
    if (result.has_value()) {
      ++hits_;
      GetCacheMetrics().hits->Add();
      return result;
    }
    auto it = inflight_.find(fingerprint);
    if (it == inflight_.end()) {
      // First to miss: become the populating owner.
      auto state = std::make_shared<InFlight>();
      inflight_.emplace(fingerprint, state);
      ++misses_;
      GetCacheMetrics().misses->Add();
      *ticket = PopulateTicket(this, fingerprint, std::move(state));
      return std::nullopt;
    }
    // Another thread is computing this entry; wait for it to publish or
    // abandon, then re-check (an abandon makes this thread re-race for
    // ownership).
    if (!waited) {
      ++coalesced_waits_;
      GetCacheMetrics().coalesced_waits->Add();
      waited = true;
    }
    std::shared_ptr<InFlight> state = it->second;
    while (!state->resolved) state->cv.Wait(&mutex_);
  }
}

void PredicateCache::ResolveInFlightLocked(const std::string& fingerprint) {
  auto it = inflight_.find(fingerprint);
  if (it == inflight_.end()) return;
  it->second->resolved = true;
  it->second->cv.NotifyAll();
  inflight_.erase(it);
}

void PredicateCache::AbandonPopulate(const std::string& fingerprint,
                                     const std::shared_ptr<InFlight>& state) {
  MutexLock lock(&mutex_);
  auto it = inflight_.find(fingerprint);
  if (it != inflight_.end() && it->second == state) {
    ResolveInFlightLocked(fingerprint);
  }
}

void PredicateCache::PopulateTicket::Abandon() {
  if (cache_ == nullptr) return;
  cache_->AbandonPopulate(fingerprint_, state_);
  cache_ = nullptr;
  state_.reset();
}

void PredicateCache::OnInsert(const Table& table) {
  // Nothing to do: Lookup() appends partitions past
  // table_partitions_at_insert automatically.
  (void)table;
}

void PredicateCache::OnUpdate(const Table& table, const std::string& column) {
  MutexLock lock(&mutex_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.table_name == table.name() &&
        it->second.order_column == column) {
      NoteInvalidated(it->second);
      insertion_order_.remove(it->first);
      it = entries_.erase(it);  // reordering update: cache may be wrong
    } else {
      ++it;
    }
  }
}

void PredicateCache::OnDelete(const Table& table, PartitionId deleted_pid) {
  MutexLock lock(&mutex_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    Entry& e = it->second;
    if (e.table_name != table.name()) {
      ++it;
      continue;
    }
    bool contains = std::binary_search(e.partitions.begin(), e.partitions.end(),
                                       deleted_pid);
    if (contains) {
      // A contributing partition is gone: the replacement (k+1-th) row may
      // live anywhere, so the entry is unusable (§8.2).
      NoteInvalidated(it->second);
      insertion_order_.remove(it->first);
      it = entries_.erase(it);
      continue;
    }
    // Table compacts ids after deletion; remap the survivors.
    for (PartitionId& pid : e.partitions) {
      if (pid > deleted_pid) --pid;
    }
    if (e.table_partitions_at_insert > 0) --e.table_partitions_at_insert;
    ++it;
  }
}

void PredicateCache::EvictIfNeeded() {
  while (entries_.size() > capacity_ && !insertion_order_.empty()) {
    auto it = entries_.find(insertion_order_.front());
    if (it != entries_.end()) {
      NoteInvalidated(it->second);
      entries_.erase(it);
    }
    insertion_order_.pop_front();
  }
}

int64_t PredicateCache::NoteHit(const std::string& fingerprint) {
  MutexLock lock(&mutex_);
  auto it = entries_.find(fingerprint);
  if (it == entries_.end()) return 0;
  return ++it->second.hits;
}

std::shared_ptr<const jit::CompiledPredicate> PredicateCache::GetProgram(
    const std::string& fingerprint, const Table& table) {
  MutexLock lock(&mutex_);
  auto it = entries_.find(fingerprint);
  if (it == entries_.end()) return nullptr;
  Entry& entry = it->second;
  if (entry.program != nullptr &&
      entry.program->table_instance != table.instance_id()) {
    // Stale program: DML swapped the table version under this name.
    NoteInvalidated(entry);
    entry.program = nullptr;
    entry.compile_declined = false;
  }
  return entry.program;
}

std::shared_ptr<const jit::CompiledPredicate>
PredicateCache::GetOrCompileProgram(
    const std::string& fingerprint, const Table& table,
    const std::function<std::shared_ptr<const jit::CompiledPredicate>()>&
        compile) {
  MutexLock lock(&mutex_);
  auto it = entries_.find(fingerprint);
  if (it == entries_.end()) return nullptr;
  Entry& entry = it->second;
  if (entry.program != nullptr) {
    if (entry.program->table_instance == table.instance_id()) {
      return entry.program;
    }
    NoteInvalidated(entry);
    entry.program = nullptr;
    entry.compile_declined = false;
  }
  if (entry.compile_declined) return nullptr;
  // Compiling under mutex_ makes exactly-once trivial: concurrent promoters
  // of the same entry block for the microseconds one compilation takes,
  // then read the published program — no duplicated work, no extra
  // synchronization protocol.
  entry.program = compile();
  if (entry.program == nullptr) entry.compile_declined = true;
  return entry.program;
}

}  // namespace snowprune
